// Package poddiagnosis is the public API of the POD-Diagnosis library, a
// reproduction of "POD-Diagnosis: Error Diagnosis of Sporadic Operations
// on Cloud Applications" (DSN 2014).
//
// POD-Diagnosis treats a sporadic operation — the canonical example is a
// rolling upgrade — as an explicit process. The process context (process
// instance id, step id, step outcomes) carried on annotated log events
// drives three mechanisms:
//
//   - conformance checking: token replay of log lines against the process
//     model detects unknown, erroneous and out-of-order events;
//   - assertion evaluation: pre-defined checks of cloud-resource state run
//     after each step, on one-off and periodic timers, and on demand;
//   - error diagnosis: fault trees — one per assertion — are instantiated
//     with the runtime request, pruned by process context, and visited
//     top-down, running diagnosis tests to confirm or exclude root causes.
//
// The library ships a complete simulated AWS substrate (EC2, ASG, ELB,
// launch configurations, eventual consistency, throttling), an
// Asgard-style rolling upgrade orchestrator, a process mining pipeline to
// discover models from logs, fault injectors, and the full evaluation
// harness reproducing the paper's figures and tables.
//
// A minimal deployment:
//
//	clk := poddiagnosis.NewScaledClock(100)
//	bus := poddiagnosis.NewLogBus()
//	cloud := poddiagnosis.NewSimulatedCloud(clk, poddiagnosis.PaperProfile(), bus, 1)
//	cloud.Start()
//	defer cloud.Stop()
//	// ... deploy a cluster, then:
//	mon, err := poddiagnosis.NewMonitor(poddiagnosis.Config{
//	    Cloud: cloud, Bus: bus,
//	    Expect: poddiagnosis.Expectation{ASGName: "pm--asg", ClusterSize: 4, ...},
//	})
//	mon.Start()
//	defer mon.Stop()
//	// run the upgrade; then inspect mon.Detections().
package poddiagnosis

import (
	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/mining"
	"poddiagnosis/internal/offline"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core engine types.
type (
	// Monitor is a running POD-Diagnosis deployment watching one
	// operation (a Manager with a single Session).
	Monitor = core.Engine
	// Config assembles a Monitor.
	Config = core.Config
	// Expectation declares the operation's desired end state.
	Expectation = core.Expectation
	// Detection is one detected anomaly with its diagnosis.
	Detection = core.Detection
)

// Multi-tenant monitoring types: one Manager watches many concurrent
// operations, each through its own Session.
type (
	// Manager owns the shared monitoring substrate — bus subscriptions,
	// log storage, the consistent API client, assertion evaluator,
	// diagnosis engine and worker pool — and routes annotated events to
	// per-operation Sessions sharded by process-instance id.
	Manager = core.Manager
	// ManagerConfig assembles a Manager.
	ManagerConfig = core.ManagerConfig
	// Session is one operation's monitoring context inside a Manager.
	Session = core.Session
	// SessionState is a session's lifecycle phase (active, ended).
	SessionState = core.SessionState
	// SessionSummary is the JSON-friendly view of one session.
	SessionSummary = core.SessionSummary
	// WatchOption customizes a session at Manager.Watch time.
	WatchOption = core.WatchOption
)

// Session lifecycle states.
const (
	SessionActive = core.SessionActive
	SessionEnded  = core.SessionEnded
)

// NewManager validates the config and builds the shared monitoring
// substrate. Call Start, register operations with Watch, Stop when done.
func NewManager(cfg ManagerConfig) (*Manager, error) { return core.NewManager(cfg) }

// Watch options, re-exported.
var (
	// WithSessionID names the session (default ids are op-1, op-2, ...).
	WithSessionID = core.WithSessionID
	// BindInstance pre-binds process instance ids to the session.
	BindInstance = core.BindInstance
	// MatchASGInstances adopts unknown instances referencing the
	// session's ASG.
	MatchASGInstances = core.MatchASGInstances
	// MatchAnyInstance adopts every unclaimed instance.
	MatchAnyInstance = core.MatchAnyInstance
	// WithAssertionSpec overrides the assertion specification per session.
	WithAssertionSpec = core.WithAssertionSpec
	// WithPeriodicInterval overrides the periodic assertion cadence.
	WithPeriodicInterval = core.WithPeriodicInterval
	// WithStepTimeoutSlack overrides the step-timer slack.
	WithStepTimeoutSlack = core.WithStepTimeoutSlack
	// WithMaxDetections overrides the per-session detection cap.
	WithMaxDetections = core.WithMaxDetections
)

// Log and cloud substrate types.
type (
	// LogBus is the in-process log event fabric.
	LogBus = logging.Bus
	// LogEvent is one structured log record.
	LogEvent = logging.Event
	// Cloud is the simulated AWS account.
	Cloud = simaws.Cloud
	// CloudProfile tunes the simulated cloud's timing and reliability.
	CloudProfile = simaws.Profile
	// Clock abstracts time (real or scaled).
	Clock = clock.Clock
)

// Process, assertion and diagnosis types.
type (
	// ProcessModel is a BPMN-style operation model.
	ProcessModel = process.Model
	// AssertionRegistry holds the check library.
	AssertionRegistry = assertion.Registry
	// AssertionParams parameterize evaluations.
	AssertionParams = assertion.Params
	// FaultTreeRepository is the root-cause knowledge base.
	FaultTreeRepository = faulttree.Repository
	// Diagnosis is the result of one root-cause analysis.
	Diagnosis = diagnosis.Diagnosis
	// Cluster records a deployed application's cloud resources.
	Cluster = upgrade.Cluster
	// UpgradeSpec describes one rolling upgrade task.
	UpgradeSpec = upgrade.Spec
	// Upgrader performs rolling upgrades (the watched operation).
	Upgrader = upgrade.Upgrader
)

// NewMonitor validates the config and builds a Monitor. Call Start to
// begin processing and Stop to shut down.
func NewMonitor(cfg Config) (*Monitor, error) { return core.NewEngine(cfg) }

// NewLogBus returns an empty log bus.
func NewLogBus() *LogBus { return logging.NewBus() }

// NewScaledClock returns a clock running scale times faster than real
// time, starting from the current time.
func NewScaledClock(scale float64) Clock {
	return clock.NewScaled(scale, clock.Wall.Now())
}

// NewRealClock returns the wall clock.
func NewRealClock() Clock { return clock.NewReal() }

// PaperProfile returns the cloud profile calibrated against the paper's
// environment (API latency, boot times, eventual consistency, account
// limits).
func PaperProfile() CloudProfile { return simaws.PaperProfile() }

// FastProfile returns a millisecond-scale profile for tests.
func FastProfile() CloudProfile { return simaws.FastProfile() }

// NewSimulatedCloud builds a simulated AWS account. The bus may be nil;
// seed fixes the randomness. Call Start before use and Stop when done.
func NewSimulatedCloud(clk Clock, profile CloudProfile, bus *LogBus, seed int64) *Cloud {
	opts := []simaws.Option{simaws.WithSeed(seed)}
	if bus != nil {
		opts = append(opts, simaws.WithBus(bus))
	}
	return simaws.New(clk, profile, opts...)
}

// RollingUpgradeModel returns the canonical rolling-upgrade process model
// (paper Figure 2).
func RollingUpgradeModel() *ProcessModel { return process.RollingUpgradeModel() }

// ScaleOutModel returns the process model of the scale-out operation —
// the second operation shipped with the library, demonstrating that a new
// model plus an assertion specification is all another sporadic operation
// needs (§III.C).
func ScaleOutModel() *ProcessModel { return process.ScaleOutModel() }

// ScaleOutAssertionSpecText is the assertion specification for the
// scale-out operation.
const ScaleOutAssertionSpecText = process.ScaleOutSpecText

// ScaleOutSpec describes one scale-out task for Upgrader.RunScaleOut.
type ScaleOutSpec = upgrade.ScaleOutSpec

// BlueGreenModel returns the process model of the blue/green deploy
// operation: a green fleet is launched on the new version beside the blue
// one, traffic is cut over at the load balancer, and the blue group is
// retired.
func BlueGreenModel() *ProcessModel { return process.BlueGreenModel() }

// BlueGreenAssertionSpecText is the assertion specification for the
// blue/green deploy operation.
const BlueGreenAssertionSpecText = process.BlueGreenSpecText

// BlueGreenSpec describes one blue/green deploy task for
// Upgrader.RunBlueGreen.
type BlueGreenSpec = upgrade.BlueGreenSpec

// SpotRebalanceModel returns the process model of the spot-rebalance
// operation: a capacity watch that waits out interruption storms while
// the group replaces reclaimed instances.
func SpotRebalanceModel() *ProcessModel { return process.SpotRebalanceModel() }

// SpotRebalanceAssertionSpecText is the assertion specification for the
// spot-rebalance operation.
const SpotRebalanceAssertionSpecText = process.SpotRebalanceSpecText

// SpotRebalanceSpec describes one spot-rebalance watch for
// Upgrader.RunSpotRebalance.
type SpotRebalanceSpec = upgrade.SpotRebalanceSpec

// Declarative diagnosis plans (the DAG generalization of fault trees).
type (
	// DiagnosisPlan is one declarative diagnosis DAG, selected by
	// assertion id and pruned by process-step context before walking.
	DiagnosisPlan = diagplan.Plan
	// DiagnosisPlanCatalog indexes plans by the assertion that triggers
	// them.
	DiagnosisPlanCatalog = diagplan.Catalog
)

// DefaultDiagnosisPlans returns the rolling-upgrade plan catalog: the
// fault-tree knowledge base of DefaultFaultTrees compiled to DAG plans.
func DefaultDiagnosisPlans() *DiagnosisPlanCatalog { return faulttree.DefaultCatalog() }

// FullDiagnosisPlans returns the complete shipped catalog: the compiled
// fault trees plus the declarative scenario plans (blue/green deploy,
// spot-interruption storms).
func FullDiagnosisPlans() *DiagnosisPlanCatalog { return faulttree.FullCatalog() }

// DefaultAssertions returns the pre-defined assertion library.
func DefaultAssertions() *AssertionRegistry { return assertion.DefaultRegistry() }

// DefaultFaultTrees returns the fault-tree knowledge base for the rolling
// upgrade operation (paper Figure 5).
func DefaultFaultTrees() *FaultTreeRepository { return faulttree.DefaultRepository() }

// Deploy provisions a complete application cluster (AMI, key pair,
// security group, launch configuration, ELB, ASG) on the simulated cloud.
var Deploy = upgrade.Deploy

// NewUpgrader returns the Asgard-style rolling upgrade orchestrator.
var NewUpgrader = upgrade.NewUpgrader

// Fault injection (the paper's §V.C catalog).
type (
	// FaultKind enumerates the 8 injected fault types.
	FaultKind = faultinject.Kind
	// Interference enumerates the simultaneous operations.
	Interference = faultinject.Interference
	// Injector injects faults and interferences into a running upgrade.
	Injector = faultinject.Injector
)

// Fault kinds, re-exported in paper order.
const (
	FaultAMIChanged          = faultinject.KindAMIChanged
	FaultKeyPairChanged      = faultinject.KindKeyPairChanged
	FaultSGChanged           = faultinject.KindSGChanged
	FaultInstanceTypeChanged = faultinject.KindInstanceTypeChanged
	FaultAMIUnavailable      = faultinject.KindAMIUnavailable
	FaultKeyPairUnavailable  = faultinject.KindKeyPairUnavailable
	FaultSGUnavailable       = faultinject.KindSGUnavailable
	FaultELBUnavailable      = faultinject.KindELBUnavailable
)

// Interference kinds, re-exported.
const (
	InterferenceScaleIn           = faultinject.InterferenceScaleIn
	InterferenceRandomTermination = faultinject.InterferenceRandomTermination
	InterferenceAccountPressure   = faultinject.InterferenceAccountPressure
)

// NewInjector returns a fault injector for the cluster.
var NewInjector = faultinject.NewInjector

// Process mining (§III.A).
type (
	// Miner discovers process models from operation logs.
	Miner = mining.Miner
	// MinedLine is one mining input line.
	MinedLine = mining.Line
	// MiningResult is the discovery outcome.
	MiningResult = mining.Result
)

// NewMiner returns a Miner with default settings.
var NewMiner = mining.NewMiner

// Assertion specification language (the paper's §VIII future work).
type (
	// AssertionSpec is a parsed assertion specification document.
	AssertionSpec = assertspec.Spec
	// AssertionBinding attaches one check to one process trigger.
	AssertionBinding = assertspec.Binding
)

// ParseAssertionSpec parses an assertion specification document against
// the default check registry.
func ParseAssertionSpec(src string) (*AssertionSpec, error) {
	return assertspec.Parse(src, assertion.DefaultRegistry())
}

// DefaultAssertionSpecText is the rolling-upgrade specification that
// reproduces the paper's experiment setup.
const DefaultAssertionSpecText = assertspec.DefaultSpecText

// ParseOperationLine splits an Asgard-style log line into timestamp, task
// and message.
var ParseOperationLine = logging.ParseOperationLine

// Offline post-mortem analysis over the central log storage.
type (
	// PostMortem is a whole-store offline analysis report.
	PostMortem = offline.Report
	// InstancePostMortem is the per-process-instance portion.
	InstancePostMortem = offline.InstanceReport
)

// AnalyzeStore replays the central log storage offline: conformance
// verdicts per instance, stored assertion failures, and the diagnosis
// conclusions reached online.
var AnalyzeStore = offline.Analyze
