package poddiagnosis

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/simaws"
)

// TestPublicAPIEndToEnd drives the whole library exactly as the package
// documentation advertises: simulated cloud, deployed cluster, monitor,
// rolling upgrade, detections.
func TestPublicAPIEndToEnd(t *testing.T) {
	clk := clock.NewScaled(1200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := NewLogBus()
	defer bus.Close()
	profile := FastProfile()
	profile.BootTime = clock.Fixed(30 * time.Second)
	profile.TickInterval = time.Second
	cloud := simaws.New(clk, profile, simaws.WithSeed(2), simaws.WithBus(bus))
	cloud.Start()
	defer cloud.Stop()

	ctx := context.Background()
	cluster, err := Deploy(ctx, cloud, "pm", 2, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	newAMI, err := cloud.RegisterImage(ctx, "pm-v2", "v2", nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.UpgradeSpec("pushing pm--asg", newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI

	mon, err := NewMonitor(Config{
		Cloud: cloud,
		Bus:   bus,
		Expect: Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	rep := NewUpgrader(cloud, bus).Run(ctx, spec)
	mon.Drain(ctx, 2*time.Minute)
	mon.Stop()

	if rep.Err != nil {
		t.Fatalf("upgrade: %v", rep.Err)
	}
	if !mon.Checker().Completed("pushing pm--asg") {
		t.Error("process did not complete per conformance")
	}
	for _, d := range mon.Detections() {
		if d.Diagnosis != nil && d.Diagnosis.Conclusion == "root cause identified" {
			t.Errorf("spurious root cause on clean run: %+v", d)
		}
	}
}

func TestFacadeConstructors(t *testing.T) {
	if Version == "" {
		t.Error("no version")
	}
	if NewScaledClock(10) == nil || NewRealClock() == nil {
		t.Error("clock constructors returned nil")
	}
	if RollingUpgradeModel() == nil {
		t.Error("no model")
	}
	if DefaultAssertions() == nil || len(DefaultAssertions().IDs()) < 15 {
		t.Error("assertion library incomplete")
	}
	if DefaultFaultTrees() == nil || len(DefaultFaultTrees().All()) < 6 {
		t.Error("fault trees incomplete")
	}
	bus := NewLogBus()
	defer bus.Close()
	c := NewSimulatedCloud(NewScaledClock(100), FastProfile(), bus, 1)
	if c == nil {
		t.Fatal("no cloud")
	}
	if PaperProfile().APILatency.IsZero() {
		t.Error("paper profile has no latency")
	}
}
