module poddiagnosis

go 1.22
