// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// exists per table/figure (see DESIGN.md's per-experiment index), plus the
// ablations DESIGN.md calls out. Simulated-time results are exposed as
// custom metrics (sim-ms/op, percentages), since wall-clock nanoseconds of
// a scaled simulation are not the quantity the paper reports.
package poddiagnosis

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/experiment"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/mining"
	"poddiagnosis/internal/pipeline"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/rest"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// happyTrace builds the log lines of one clean n-instance upgrade.
func happyTrace(n int) []string {
	lines := []string{
		"Starting rolling upgrade of group pm--asg to image ami-new",
		"Created launch configuration pm--asg-lc-ami-new with image ami-new",
		"Updated group pm--asg to launch configuration pm--asg-lc-ami-new",
		fmt.Sprintf("Sorted %d instances for replacement", n),
	}
	for i := 0; i < n; i++ {
		lines = append(lines,
			fmt.Sprintf("Removed and deregistered instance i-%04d from ELB pm-elb", i),
			fmt.Sprintf("Terminating old instance i-%04d", i),
			"Waiting for group pm--asg to start a new instance",
			fmt.Sprintf("Instance pm on i-9%03d is ready for use. %d of %d instance relaunches done.", i, i+1, n),
		)
	}
	return append(lines, "Rolling upgrade task completed")
}

// BenchmarkConformanceCheck measures single-event token replay — the
// paper's "responded on average in about 10 ms" figure covers the whole
// service call; this isolates the algorithm (E2).
func BenchmarkConformanceCheck(b *testing.B) {
	model := process.RollingUpgradeModel()
	trace := happyTrace(4)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker := conformance.NewChecker(model)
		for _, line := range trace {
			checker.Check("t", line, now)
		}
	}
	b.ReportMetric(float64(len(trace)), "events/op")
}

// BenchmarkProcessMining measures model discovery from the logs of 20
// clean 4-instance upgrades (E1, Figure 2).
func BenchmarkProcessMining(b *testing.B) {
	var lines []mining.Line
	base := time.Date(2013, 10, 24, 11, 0, 0, 0, time.UTC)
	for t := 0; t < 20; t++ {
		ts := base.Add(time.Duration(t) * time.Hour)
		for i, body := range happyTrace(4) {
			lines = append(lines, mining.Line{
				Timestamp:  ts.Add(time.Duration(i) * 20 * time.Second),
				InstanceID: fmt.Sprintf("trace-%d", t),
				Body:       body,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mining.NewMiner().Mine(lines, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if !res.HasLoop() {
			b.Fatal("loop lost")
		}
	}
	b.ReportMetric(float64(len(lines)), "lines/op")
}

// BenchmarkLogPipeline measures local log processor throughput (the
// Logstash-equivalent path of Figure 3).
func BenchmarkLogPipeline(b *testing.B) {
	model := process.RollingUpgradeModel()
	proc := pipeline.New(model, logging.NewMemorySink(), pipeline.Triggers{})
	ts := time.Now()
	events := make([]logging.Event, 0, 18)
	for _, body := range happyTrace(4) {
		events = append(events, logging.Event{
			Timestamp: ts, Type: logging.TypeOperation,
			Fields:  map[string]string{"taskid": "t"},
			Message: logging.FormatOperationLine(ts, "t", body),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ev := range events {
			proc.Process(ev)
		}
	}
	b.ReportMetric(float64(len(events)), "events/op")
}

// benchCloud deploys a cluster on a fast cloud for component benchmarks.
func benchCloud(b *testing.B, profile simaws.Profile, scale float64) (*simaws.Cloud, *upgrade.Cluster, *consistentapi.Client) {
	b.Helper()
	clk := clock.NewScaled(scale, time.Unix(0, 0))
	cloud := simaws.New(clk, profile, simaws.WithSeed(1))
	cloud.Start()
	b.Cleanup(cloud.Stop)
	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", 2, "v1")
	if err != nil {
		b.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		b.Fatal(err)
	}
	client := consistentapi.New(cloud, consistentapi.Config{
		MaxAttempts: 4, InitialBackoff: 500 * time.Millisecond,
		MaxBackoff: 4 * time.Second, CallTimeout: 45 * time.Second,
	})
	return cloud, cluster, client
}

func benchParams(cluster *upgrade.Cluster) assertion.Params {
	return assertion.Params{
		assertion.ParamASG:          cluster.ASGName,
		assertion.ParamELB:          cluster.ELBName,
		assertion.ParamAMI:          cluster.ImageID,
		assertion.ParamKeyPair:      cluster.KeyName,
		assertion.ParamSG:           cluster.SGName,
		assertion.ParamInstanceType: "m1.small",
		assertion.ParamVersion:      cluster.Version,
		assertion.ParamWant:         "2",
		assertion.ParamLC:           cluster.LCName,
	}
}

// BenchmarkAssertionEvaluation measures one high-level assertion through
// the consistent API layer under paper-like latency; sim-ms/op is the
// simulated evaluation time.
func BenchmarkAssertionEvaluation(b *testing.B) {
	profile := simaws.PaperProfile()
	profile.StaleProb = 0
	_, cluster, client := benchCloud(b, profile, 150)
	eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), nil)
	params := benchParams(cluster)
	ctx := context.Background()
	var sim time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.Evaluate(ctx, assertion.CheckASGVersionCount, params, assertion.Trigger{})
		if !res.Passed() {
			b.Fatalf("assertion failed: %s %s", res.Message, res.Err)
		}
		sim += res.Duration
	}
	b.ReportMetric(float64(sim.Milliseconds())/float64(b.N), "sim-ms/op")
}

// BenchmarkDiagnosisTime regenerates the Figure 6 quantity (E4): the
// simulated duration of one fault-tree diagnosis of a wrong-AMI fault,
// with paper-like API latency.
func BenchmarkDiagnosisTime(b *testing.B) {
	profile := simaws.PaperProfile()
	profile.StaleProb = 0
	cloud, cluster, client := benchCloud(b, profile, 150)
	ctx := context.Background()
	rogueAMI, _ := cloud.RegisterImage(ctx, "rogue", "v9", nil)
	_ = cloud.CreateLaunchConfiguration(ctx, simaws.LaunchConfig{
		Name: "rogue-lc", ImageID: rogueAMI, KeyName: cluster.KeyName,
		SecurityGroups: []string{cluster.SGName}, InstanceType: "m1.small",
	})
	_ = cloud.UpdateAutoScalingGroup(ctx, cluster.ASGName, "rogue-lc", -1, -1, -1)

	eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), nil)
	engine := diagnosis.NewEngine(faulttree.DefaultCatalog(), eval, nil, diagnosis.Options{})
	req := diagnosis.Request{
		AssertionID:       assertion.CheckASGVersionCount,
		Source:            diagnosis.SourceAssertion,
		ProcessInstanceID: "bench",
		StepID:            process.StepNewReady,
		Params:            benchParams(cluster),
	}
	var sim time.Duration
	var tests int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := engine.Diagnose(ctx, req)
		if !d.HasCause("wrong-ami") {
			b.Fatalf("diagnosis failed: %s", d.Conclusion)
		}
		sim += d.Duration
		tests += len(d.TestsRun)
	}
	b.ReportMetric(float64(sim.Milliseconds())/float64(b.N), "sim-ms/op")
	b.ReportMetric(float64(tests)/float64(b.N), "tests/op")
}

// BenchmarkAblationPruning is ablation A1: fault-tree diagnosis with and
// without process-context pruning, comparing diagnosis tests executed.
func BenchmarkAblationPruning(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts diagnosis.Options
	}{
		{"pruned", diagnosis.Options{ContinueAfterConfirm: true}},
		{"unpruned", diagnosis.Options{ContinueAfterConfirm: true, DisablePruning: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			profile := simaws.FastProfile()
			_, cluster, client := benchCloud(b, profile, 1000)
			eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), nil)
			engine := diagnosis.NewEngine(faulttree.DefaultCatalog(), eval, nil, tc.opts)
			req := diagnosis.Request{
				AssertionID: assertion.CheckASGVersionCount,
				StepID:      process.StepUpdateLC,
				Params:      benchParams(cluster),
			}
			ctx := context.Background()
			var tests, faults int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := engine.Diagnose(ctx, req)
				tests += len(d.TestsRun)
				faults += d.PotentialFaults
			}
			b.ReportMetric(float64(tests)/float64(b.N), "tests/op")
			b.ReportMetric(float64(faults)/float64(b.N), "candidates/op")
		})
	}
}

// BenchmarkAblationConsistentAPI is ablation A3: a count assertion under
// heavy eventual consistency, with the retry layer on vs off, reporting
// the false-failure rate.
func BenchmarkAblationConsistentAPI(b *testing.B) {
	for _, tc := range []struct {
		name        string
		maxAttempts int
	}{
		{"retries-on", 5},
		{"retries-off", 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			profile := simaws.FastProfile()
			profile.StaleProb = 0.6
			profile.StaleLag = clock.Fixed(400 * time.Millisecond)
			profile.TickInterval = 20 * time.Millisecond
			clk := clock.NewScaled(1000, time.Unix(0, 0))
			cloud := simaws.New(clk, profile, simaws.WithSeed(9))
			cloud.Start()
			b.Cleanup(cloud.Stop)
			ctx := context.Background()
			cluster, err := upgrade.Deploy(ctx, cloud, "pm", 2, "v1")
			if err != nil {
				b.Fatal(err)
			}
			if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
				b.Fatal(err)
			}
			client := consistentapi.New(cloud, consistentapi.Config{
				MaxAttempts: tc.maxAttempts, InitialBackoff: 200 * time.Millisecond,
				MaxBackoff: 2 * time.Second, CallTimeout: 30 * time.Second,
			})
			eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), nil)
			// Read-after-write: flip the ASG between two launch
			// configurations and immediately assert the new AMI is in
			// effect. Stale reads (60% within a 400ms-sim window) return
			// the previous configuration; only the retry layer masks
			// them.
			amiB, err := cloud.RegisterImage(ctx, "pm-b", "vb", nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := cloud.CreateLaunchConfiguration(ctx, simaws.LaunchConfig{
				Name: "lc-b", ImageID: amiB, KeyName: cluster.KeyName,
				SecurityGroups: []string{cluster.SGName}, InstanceType: "m1.small",
			}); err != nil {
				b.Fatal(err)
			}
			flips := []struct{ lc, ami string }{
				{cluster.LCName, cluster.ImageID},
				{"lc-b", amiB},
			}
			falseFails := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flip := flips[i%2]
				if err := cloud.UpdateAutoScalingGroup(ctx, cluster.ASGName, flip.lc, -1, -1, -1); err != nil {
					b.Fatal(err)
				}
				res := eval.Evaluate(ctx, assertion.CheckASGUsesAMI, assertion.Params{
					assertion.ParamASG: cluster.ASGName,
					assertion.ParamAMI: flip.ami,
				}, assertion.Trigger{})
				if !res.Passed() {
					falseFails++
				}
			}
			b.StopTimer()
			b.ReportMetric(100*float64(falseFails)/float64(b.N), "false-fail-%")
		})
	}
}

// miniCampaign runs a small evaluation campaign and reports the Table I
// metrics as benchmark metrics.
func miniCampaign(b *testing.B, cfg experiment.Config, specs []experiment.RunSpec) *experiment.Report {
	b.Helper()
	rep, err := experiment.RunSpecs(context.Background(), specs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkOverallMetrics regenerates the Table I quantities (E6) on a
// reduced campaign (one run per fault type per iteration).
func BenchmarkOverallMetrics(b *testing.B) {
	cfg := experiment.Config{RunsPerFault: 1, Seed: 7, Parallelism: 2, InterferenceProb: 0.25}
	var prec, rec, acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(7 + i)
		specs := experiment.Specs(cfg)
		rep := miniCampaign(b, cfg, specs)
		prec += rep.Overall.Precision()
		rec += rep.Overall.Recall()
		acc += rep.Overall.Accuracy()
	}
	b.ReportMetric(100*prec/float64(b.N), "precision-%")
	b.ReportMetric(100*rec/float64(b.N), "recall-%")
	b.ReportMetric(100*acc/float64(b.N), "accuracy-%")
}

// BenchmarkDetectionMetrics regenerates the Figure 7 per-fault quantities
// (E5) for one configuration fault and one resource fault per iteration.
func BenchmarkDetectionMetrics(b *testing.B) {
	for _, kind := range []faultinject.Kind{faultinject.KindAMIChanged, faultinject.KindAMIUnavailable} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			cfg := experiment.Config{RunsPerFault: 1, Parallelism: 1}
			var rec, acc float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				specs := []experiment.RunSpec{{ID: i, Fault: kind, ClusterSize: 4, Seed: int64(100 + i)}}
				rep := miniCampaign(b, cfg, specs)
				m := rep.PerFault[kind]
				rec += m.Recall()
				acc += m.Accuracy()
			}
			b.ReportMetric(100*rec/float64(b.N), "recall-%")
			b.ReportMetric(100*acc/float64(b.N), "accuracy-%")
		})
	}
}

// BenchmarkConformanceCoverage regenerates the §V.D observation (E3): the
// share of ELB-fault runs whose first detection is conformance-based vs a
// configuration fault (which conformance cannot see).
func BenchmarkConformanceCoverage(b *testing.B) {
	for _, kind := range []faultinject.Kind{faultinject.KindELBUnavailable, faultinject.KindKeyPairChanged} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			cfg := experiment.Config{RunsPerFault: 1, Parallelism: 1}
			confFirst := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				specs := []experiment.RunSpec{{ID: i, Fault: kind, ClusterSize: 4, Seed: int64(200 + i)}}
				rep := miniCampaign(b, cfg, specs)
				confFirst += rep.ConformanceFirstByFault[kind]
			}
			b.ReportMetric(100*float64(confFirst)/float64(b.N), "conformance-first-%")
		})
	}
}

// BenchmarkAblationTriggers is ablation A2: detection with both trigger
// families vs assertions-only vs conformance-only, reporting recall on an
// ELB fault (detectable by both) per iteration.
func BenchmarkAblationTriggers(b *testing.B) {
	for _, tc := range []struct {
		name string
		mut  func(*experiment.Config)
	}{
		{"both", func(*experiment.Config) {}},
		{"assertions-only", func(c *experiment.Config) { c.DisableConformance = true }},
		{"conformance-only", func(c *experiment.Config) { c.DisableAssertions = true }},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := experiment.Config{RunsPerFault: 1, Parallelism: 1}
			tc.mut(&cfg)
			detected := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				specs := []experiment.RunSpec{{
					ID: i, Fault: faultinject.KindELBUnavailable, ClusterSize: 4, Seed: int64(300 + i),
				}}
				rep := miniCampaign(b, cfg, specs)
				if rep.Runs[0].FaultDetected {
					detected++
				}
			}
			b.ReportMetric(100*float64(detected)/float64(b.N), "recall-%")
		})
	}
}

// BenchmarkFaultTreeOps measures pure tree instantiation + pruning.
func BenchmarkFaultTreeOps(b *testing.B) {
	repo := faulttree.DefaultRepository()
	tree := repo.Select(assertion.CheckASGVersionCount)[0]
	params := assertion.Params{
		assertion.ParamASG: "pm--asg", assertion.ParamWant: "4",
		assertion.ParamVersion: "v2", assertion.ParamAMI: "ami-1",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := tree.Instantiate(params).Prune(process.StepNewReady)
		if len(inst.PotentialRootCauses()) == 0 {
			b.Fatal("pruned everything")
		}
	}
}

// BenchmarkConformanceService measures the end-to-end conformance service
// call over HTTP — the quantity the paper reports as "responded on average
// in about 10 ms" when called locally (E2).
func BenchmarkConformanceService(b *testing.B) {
	srv := httptest.NewServer(rest.NewServer(
		conformance.NewChecker(process.RollingUpgradeModel()), nil, nil))
	defer srv.Close()
	client := rest.NewClient(srv.URL, nil)
	ctx := context.Background()
	trace := happyTrace(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := trace[i%len(trace)]
		if _, err := client.CheckConformance(ctx, rest.ConformanceRequest{
			TraceID: fmt.Sprintf("t%d", i/len(trace)), Line: line,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCloudTrail is ablation A4: diagnosability of a random
// instance termination under the three audit-trail regimes the paper
// discusses — no CloudTrail (§V.B), an idealized instant trail, and the
// real product's delayed delivery (§VII). Reported as the share of runs
// where the root cause was confirmed.
func BenchmarkAblationCloudTrail(b *testing.B) {
	for _, tc := range []struct {
		name  string
		trail bool
		delay time.Duration
	}{
		{"no-trail", false, 0},
		{"instant-trail", true, 0},
		{"delayed-15m", true, 15 * time.Minute},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			confirmed := 0
			for i := 0; i < b.N; i++ {
				profile := simaws.FastProfile()
				profile.BootTime = clock.Fixed(45 * time.Second)
				profile.TickInterval = 200 * time.Millisecond
				clk := clock.NewScaled(800, time.Unix(0, 0))
				cloud := simaws.New(clk, profile, simaws.WithSeed(int64(i+1)))
				if tc.trail {
					cloud.EnableAuditTrail(tc.delay)
				}
				cloud.Start()
				ctx := context.Background()
				cluster, err := upgrade.Deploy(ctx, cloud, "pm", 2, "v1")
				if err != nil {
					b.Fatal(err)
				}
				if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
					b.Fatal(err)
				}
				insts, _ := cloud.DescribeInstances(ctx)
				_ = cloud.TerminateInstance(ctx, insts[0].ID)
				client := consistentapi.New(cloud, consistentapi.Config{
					MaxAttempts: 3, InitialBackoff: 250 * time.Millisecond,
					MaxBackoff: time.Second, CallTimeout: 20 * time.Second,
				})
				eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), nil)
				engine := diagnosis.NewEngine(faulttree.DefaultCatalog(), eval, nil, diagnosis.Options{})
				d := engine.Diagnose(ctx, diagnosis.Request{
					AssertionID: assertion.CheckASGInstanceCount,
					Source:      diagnosis.SourceAssertion,
					StepID:      process.StepNewReady,
					Params: assertion.Params{
						assertion.ParamASG:  cluster.ASGName,
						assertion.ParamELB:  cluster.ELBName,
						assertion.ParamWant: "2",
					},
				})
				if d.HasCause("unexpected-termination") {
					confirmed++
				}
				cloud.Stop()
			}
			b.ReportMetric(100*float64(confirmed)/float64(b.N), "confirmed-%")
		})
	}
}
