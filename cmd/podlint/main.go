// Command podlint is the static-analysis gate for POD-Diagnosis. It lints
// on two fronts: the registered diagnosis artifacts (process models,
// assertion specifications, the diagnosis-plan catalog, the remediation
// action↔cause bindings, and the trigger chain connecting them) and the
// Go source tree (wall-clock reads, metric
// naming, mutexes held across blocking sends, context.Background on
// request paths).
//
// Usage:
//
//	podlint [flags] [target ...]
//
// Targets are directories of Go source to analyze ("./..." is accepted and
// means the directory tree, matching go-tool convention) and/or JSON
// documents (*.json) — process models or diagnosis plans, told apart by
// their top-level keys — which are linted structurally. With no targets
// the module root is analyzed. The built-in artifact bundles are always
// linted unless -source-only is given.
//
// Flags:
//
//	-json         emit findings as a JSON array instead of text
//	-rules        print the rule registry and exit
//	-fix          EXPERIMENTAL: rewrite time.Now/time.Since to use an
//	              in-scope clock.Clock parameter, then re-lint
//	-source-only  skip the built-in model/spec/tree bundles
//	-models-only  skip the Go source analyzers
//
// Exit status is 0 when no findings of severity error remain (warnings do
// not fail the build), 1 when at least one error finding is reported, and
// 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"poddiagnosis/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("podlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as JSON")
		rulesOut   = fs.Bool("rules", false, "print the rule registry and exit")
		fix        = fs.Bool("fix", false, "experimental: rewrite wall-clock reads onto an in-scope clock.Clock")
		sourceOnly = fs.Bool("source-only", false, "lint only Go source, skip the built-in bundles")
		modelsOnly = fs.Bool("models-only", false, "lint only models/specs/trees, skip Go source")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rulesOut {
		return printRules(stdout, *jsonOut)
	}
	if *sourceOnly && *modelsOnly {
		fmt.Fprintln(stderr, "podlint: -source-only and -models-only are mutually exclusive")
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "podlint:", err)
		return 2
	}
	dirs, docs := splitTargets(fs.Args(), root)

	var findings []lint.Finding

	if !*sourceOnly {
		bundles, err := lint.Builtins()
		if err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
		findings = append(findings, lint.LintBundles(bundles...)...)
		findings = append(findings, lint.BuiltinRemediation()...)
		for _, doc := range docs {
			data, err := os.ReadFile(doc)
			if err != nil {
				fmt.Fprintln(stderr, "podlint:", err)
				return 2
			}
			findings = append(findings, lintDoc(filepath.Base(doc), data)...)
		}
	}

	if !*modelsOnly {
		if *fix {
			fixed, err := lint.FixWallClock(root, dirs)
			if err != nil {
				fmt.Fprintln(stderr, "podlint:", err)
				return 2
			}
			for _, f := range fixed {
				fmt.Fprintf(stderr, "podlint: fixed wall-clock reads in %s\n", f)
			}
		}
		srcFindings, err := lint.LintSource(root, dirs)
		if err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
		findings = append(findings, srcFindings...)
	}

	lint.Sort(findings)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if n := lint.CountErrors(findings); n > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "podlint: %d error(s), %d finding(s)\n", n, len(findings))
		}
		return 1
	}
	return 0
}

// lintDoc routes a JSON document to the diagnosis-plan or process-model
// linter by sniffing its top-level keys: plan documents carry "entry" and
// "assertionId", model documents do not.
func lintDoc(name string, data []byte) []lint.Finding {
	var probe struct {
		Entry       *string `json:"entry"`
		AssertionID *string `json:"assertionId"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && (probe.Entry != nil || probe.AssertionID != nil) {
		return lint.LintPlanDoc(name, data)
	}
	return lint.LintModelDoc(name, data)
}

// printRules writes the rule registry.
func printRules(stdout *os.File, asJSON bool) int {
	rules := lint.Rules()
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rules); err != nil {
			return 2
		}
		return 0
	}
	for _, r := range rules {
		fmt.Fprintf(stdout, "%s  %-7s  %-6s  %s\n", r.ID, r.Severity, r.Front, r.Summary)
	}
	return 0
}

// splitTargets separates Go source directories from model JSON documents.
// The go-tool "/..." suffix is accepted and stripped: podlint always walks
// directory trees. Empty args default to the module root.
func splitTargets(args []string, root string) (dirs, docs []string) {
	for _, a := range args {
		if strings.HasSuffix(a, ".json") {
			docs = append(docs, a)
			continue
		}
		a = strings.TrimSuffix(a, "/...")
		if a == "" || a == "." {
			a = root
		}
		dirs = append(dirs, a)
	}
	if len(dirs) == 0 {
		dirs = []string{root}
	}
	return dirs, docs
}

// moduleRoot finds the enclosing module root (the directory holding go.mod)
// so findings are positioned relative to it regardless of the invocation
// directory. Falls back to the working directory outside a module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir, nil
		}
		d = parent
	}
}
