// Command podlint is the static-analysis gate for POD-Diagnosis. It lints
// on three fronts: the registered diagnosis artifacts (process models,
// assertion specifications, the diagnosis-plan catalog, the remediation
// action↔cause bindings, and the trigger chain connecting them), the Go
// source tree (wall-clock reads, metric naming, mutexes held across
// blocking sends, context.Background on request paths, goroutine leaks,
// lock ordering, timers in loops, hot-path allocation discipline), and —
// with -ratchet — benchmark performance against the committed BENCH_*.json
// baselines.
//
// Usage:
//
//	podlint [flags] [target ...]
//
// Targets are directories of Go source to analyze ("./..." is accepted and
// means the directory tree, matching go-tool convention) and/or JSON
// documents (*.json) — process models or diagnosis plans, told apart by
// their top-level keys — which are linted structurally. With no targets
// the module root is analyzed. The built-in artifact bundles are always
// linted unless -source-only is given.
//
// Flags:
//
//	-json            emit findings as a JSON array instead of text
//	-rules PATTERN   print the matching rules of the registry and exit;
//	                 comma-separated globs over rule IDs ("GO0*", "DG001"),
//	                 plus the aliases "all" (or "*"), "ratchet" (RT*),
//	                 "source" (GO*) and "model"
//	-escape          also run the compiler-assisted escape-budget check
//	                 (GO011): shells out to go build -gcflags=-m
//	-hotpath-report  measure the //podlint:hotpath functions and dump the
//	                 per-function escape budget table as JSON, then exit
//	-ratchet FILE    compare raw `go test -bench -benchmem` output (FILE,
//	                 or "-" for stdin) against the committed baselines and
//	                 exit; RT001/RT002 regressions are error findings
//	-baseline LIST   comma-separated baseline JSON files for -ratchet
//	                 (default: BENCH_ingest.json,BENCH_diagnosis.json at
//	                 the module root)
//	-fix             EXPERIMENTAL: rewrite time.Now/time.Since to use an
//	                 in-scope clock.Clock parameter, then re-lint
//	-source-only     skip the built-in model/spec/tree bundles
//	-models-only     skip the Go source analyzers
//
// Exit status is 0 when no findings of severity error remain (warnings do
// not fail the build), 1 when at least one error finding is reported, and
// 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"

	"poddiagnosis/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("podlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut    = fs.Bool("json", false, "emit findings as JSON")
		rulesPat   = fs.String("rules", "", "print matching rules and exit (globs over IDs; aliases: all, ratchet, source, model)")
		escape     = fs.Bool("escape", false, "also run the compiler-assisted escape-budget check (GO011)")
		hotReport  = fs.Bool("hotpath-report", false, "dump the per-function escape budget table as JSON and exit")
		ratchet    = fs.String("ratchet", "", "compare bench output (file, or - for stdin) against baselines and exit")
		baselines  = fs.String("baseline", "", "comma-separated baseline JSON files for -ratchet (default BENCH_ingest.json,BENCH_diagnosis.json)")
		fix        = fs.Bool("fix", false, "experimental: rewrite wall-clock reads onto an in-scope clock.Clock")
		sourceOnly = fs.Bool("source-only", false, "lint only Go source, skip the built-in bundles")
		modelsOnly = fs.Bool("models-only", false, "lint only models/specs/trees, skip Go source")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rulesPat != "" {
		return printRules(stdout, stderr, *jsonOut, *rulesPat)
	}
	if *sourceOnly && *modelsOnly {
		fmt.Fprintln(stderr, "podlint: -source-only and -models-only are mutually exclusive")
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "podlint:", err)
		return 2
	}
	dirs, docs := splitTargets(fs.Args(), root)

	if *ratchet != "" {
		return runRatchet(stdout, stderr, root, *ratchet, *baselines, *jsonOut)
	}
	if *hotReport {
		return runHotpathReport(stdout, stderr, root, dirs)
	}

	var findings []lint.Finding

	if !*sourceOnly {
		bundles, err := lint.Builtins()
		if err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
		findings = append(findings, lint.LintBundles(bundles...)...)
		findings = append(findings, lint.BuiltinRemediation()...)
		for _, doc := range docs {
			data, err := os.ReadFile(doc)
			if err != nil {
				fmt.Fprintln(stderr, "podlint:", err)
				return 2
			}
			findings = append(findings, lintDoc(filepath.Base(doc), data)...)
		}
	}

	if !*modelsOnly {
		if *fix {
			fixed, err := lint.FixWallClock(root, dirs)
			if err != nil {
				fmt.Fprintln(stderr, "podlint:", err)
				return 2
			}
			for _, f := range fixed {
				fmt.Fprintf(stderr, "podlint: fixed wall-clock reads in %s\n", f)
			}
		}
		srcFindings, err := lint.LintSource(root, dirs)
		if err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
		findings = append(findings, srcFindings...)
		if *escape {
			_, escFindings, err := lint.EscapeAnalysis(root, dirs)
			if err != nil {
				fmt.Fprintln(stderr, "podlint:", err)
				return 2
			}
			findings = append(findings, escFindings...)
		}
	}

	lint.Sort(findings)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if n := lint.CountErrors(findings); n > 0 {
		if !*jsonOut {
			fmt.Fprintf(stdout, "podlint: %d error(s), %d finding(s)\n", n, len(findings))
		}
		return 1
	}
	return 0
}

// lintDoc routes a JSON document to the diagnosis-plan or process-model
// linter by sniffing its top-level keys: plan documents carry "entry" and
// "assertionId", model documents do not.
func lintDoc(name string, data []byte) []lint.Finding {
	var probe struct {
		Entry       *string `json:"entry"`
		AssertionID *string `json:"assertionId"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && (probe.Entry != nil || probe.AssertionID != nil) {
		return lint.LintPlanDoc(name, data)
	}
	return lint.LintModelDoc(name, data)
}

// printRules writes the rules matching the pattern: comma-separated globs
// over rule IDs, with series aliases.
func printRules(stdout, stderr io.Writer, asJSON bool, pattern string) int {
	var rules []lint.RuleInfo
	for _, r := range lint.Rules() {
		if ruleMatches(r, pattern) {
			rules = append(rules, r)
		}
	}
	if len(rules) == 0 {
		fmt.Fprintf(stderr, "podlint: no rules match %q\n", pattern)
		return 2
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rules); err != nil {
			return 2
		}
		return 0
	}
	for _, r := range rules {
		fmt.Fprintf(stdout, "%s  %-7s  %-6s  %s\n", r.ID, r.Severity, r.Front, r.Summary)
	}
	return 0
}

// ruleMatches applies one comma-separated pattern list to a rule. Each
// element is a glob over the rule ID ("GO0*", "DG001") or an alias: "all"
// or "*" (everything), "ratchet" (the RT series), "source" (the GO
// series), "model" (the model front).
func ruleMatches(r lint.RuleInfo, pattern string) bool {
	for _, p := range strings.Split(pattern, ",") {
		p = strings.TrimSpace(p)
		switch p {
		case "":
			continue
		case "all", "*":
			return true
		case "ratchet":
			if strings.HasPrefix(r.ID, "RT") {
				return true
			}
			continue
		case "source":
			if strings.HasPrefix(r.ID, "GO") {
				return true
			}
			continue
		case "model":
			if r.Front == "model" {
				return true
			}
			continue
		}
		if ok, err := path.Match(p, r.ID); err == nil && ok {
			return true
		}
	}
	return false
}

// runHotpathReport measures the annotated hot-path functions with the
// compiler and dumps the budget table as JSON.
func runHotpathReport(stdout, stderr io.Writer, root string, dirs []string) int {
	infos, findings, err := lint.EscapeAnalysis(root, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "podlint:", err)
		return 2
	}
	if infos == nil {
		infos = []lint.HotFuncInfo{}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(infos); err != nil {
		fmt.Fprintln(stderr, "podlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f)
	}
	if lint.CountErrors(findings) > 0 {
		return 1
	}
	return 0
}

// runRatchet compares raw benchmark output against the committed
// baselines and reports RT findings.
func runRatchet(stdout, stderr io.Writer, root, benchPath, baselineList string, asJSON bool) int {
	var in io.Reader
	if benchPath == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(benchPath)
		if err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	results, err := lint.ParseBenchOutput(in)
	if err != nil {
		fmt.Fprintln(stderr, "podlint:", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "podlint: no benchmark results in input")
		return 2
	}
	var paths []string
	if baselineList == "" {
		paths = []string{filepath.Join(root, "BENCH_ingest.json"), filepath.Join(root, "BENCH_diagnosis.json")}
	} else {
		for _, p := range strings.Split(baselineList, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
	}
	base, err := lint.LoadBaselines(paths)
	if err != nil {
		fmt.Fprintln(stderr, "podlint:", err)
		return 2
	}
	findings := lint.CompareRatchet(results, base)
	lint.Sort(findings)
	if asJSON {
		if findings == nil {
			findings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "podlint:", err)
			return 2
		}
	} else {
		for _, r := range results {
			fmt.Fprintf(stdout, "podlint: ratchet %s: %.0f ns/op, %d allocs/op (best of %d)\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.Runs)
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if n := lint.CountErrors(findings); n > 0 {
		if !asJSON {
			fmt.Fprintf(stdout, "podlint: ratchet FAILED: %d regression(s)\n", n)
		}
		return 1
	}
	if !asJSON {
		fmt.Fprintln(stdout, "podlint: ratchet ok")
	}
	return 0
}

// splitTargets separates Go source directories from model JSON documents.
// The go-tool "/..." suffix is accepted and stripped: podlint always walks
// directory trees. Empty args default to the module root.
func splitTargets(args []string, root string) (dirs, docs []string) {
	for _, a := range args {
		if strings.HasSuffix(a, ".json") {
			docs = append(docs, a)
			continue
		}
		a = strings.TrimSuffix(a, "/...")
		if a == "" || a == "." {
			a = root
		}
		dirs = append(dirs, a)
	}
	if len(dirs) == 0 {
		dirs = []string{root}
	}
	return dirs, docs
}

// moduleRoot finds the enclosing module root (the directory holding go.mod)
// so findings are positioned relative to it regardless of the invocation
// directory. Falls back to the working directory outside a module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir, nil
		}
		d = parent
	}
}
