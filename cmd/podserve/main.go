// Command podserve hosts the three POD-Diagnosis services — conformance
// checking, assertion evaluation, and error diagnosis — as RESTful web
// services over a simulated cloud, mirroring the paper's RESTlet
// deployment (§IV). One shared monitoring Manager watches several demo
// clusters upgrading concurrently (one Session per cluster), so the
// multi-tenant /operations surface and the observability endpoints carry
// live data.
//
// Usage:
//
//	podserve [-addr :8077] [-clusters N] [-size N] [-scale X] [-diag-workers N] [-chaos-profile NAME] [-trace-capacity N] [-pprof addr]
//	podserve -federation N ...          federated mode: N in-process members behind a routing front
//	podserve -join URL -advertise URL   member mode: join the front at URL as a REST member
//
// Endpoints:
//
//	POST /conformance/check      {"traceId": "...", "line": "..."}
//	GET  /conformance/instances
//	POST /assertions/evaluate    {"checkId": "...", "params": {...}}
//	GET  /assertions/checks
//	POST /diagnosis              {"assertionId": "...", "stepId": "...", "params": {...}}
//	GET  /diagnosis/config       parallelism knob, budget, shared-cache stats
//	POST /operations             register a monitoring session
//	GET  /operations             list sessions
//	GET  /operations/{id}        one session's summary
//	GET  /operations/{id}/detections
//	GET  /operations/{id}/timeline  causal flight-recorder evidence chain (?kind= filters)
//	GET  /operations/{id}/remediations  remediation audit trail (needs -remediate-mode)
//	POST /remediations/{id}/approve     execute a pending approve-mode remediation
//	DELETE /operations/{id}      end and remove a session
//	GET  /model
//	GET  /healthz
//	GET  /readyz                 manager backlog, per-operation breakdown
//	GET  /metrics                Prometheus text exposition
//	GET  /traces                 completed spans as JSON (?op=ID filters to one operation)
//
// The span ring buffer behind /traces holds -trace-capacity completed
// spans (default 4096); raise it when correlating long chaos runs with
// timelines, lower it to bound memory.
//
// With -pprof ADDR, net/http/pprof is served on a second listener at
// ADDR (e.g. -pprof localhost:6060).
//
// With -federation N (N >= 2), the monitoring plane itself is
// fault-tolerant: N in-process Manager members stand behind a
// consistent-hash routing front with lease-based membership, the demo
// sessions spread across the member ring, and the /operations surface is
// proxied through the front (plus /federation/members and
// /federation/route/{id} for the membership view). With -join URL the
// process instead runs as a single member of a remote front: it
// advertises -advertise (its own reachable base URL) under -member-id,
// heartbeats lease renewals carrying session snapshots, and serves the
// member-side handoff endpoints (GET /operations/{id}/export, POST
// /operations/restore).
//
// With -chaos-profile NAME (light, lossy, storm, full), the server runs
// its own chaos harness: the demo clusters' log streams are dropped,
// duplicated, reordered and delayed before they reach the monitoring
// pipeline, and the simulated cloud injects RequestLimitExceeded storms
// and latency spikes into API calls. Watch the effect live on
// /diagnosis/resilience and /metrics (pod_chaos_*, pod_resilience_*,
// pod_reorder_*).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"poddiagnosis/internal/chaos"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/federate"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/rest"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", ":8077", "listen address")
		clusters    = flag.Int("clusters", 3, "number of demo clusters upgrading under the shared manager")
		size        = flag.Int("size", 4, "size of each backing demo cluster")
		scale       = flag.Float64("scale", 60, "clock speed-up factor")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		diagWorkers = flag.Int("diag-workers", 0, "parallel fault-tree walk width per diagnosis (0 = worker-pool size, 1 = sequential)")
		chaosName   = flag.String("chaos-profile", "", "self-chaos profile (off, light, lossy, storm, full)")
		traceCap    = flag.Int("trace-capacity", 4096, "completed spans retained for GET /traces")
		remMode     = flag.String("remediate-mode", "off", "closed-loop remediation policy: off, dry-run, approve or auto")
		federation  = flag.Int("federation", 0, "run N in-process manager members behind a routing front (0 = single manager)")
		joinURL     = flag.String("join", "", "run as a federation member of the front at this base URL")
		memberID    = flag.String("member-id", "member-1", "federation identity in -join mode")
		advertise   = flag.String("advertise", "", "this member's reachable base URL in -join mode (default derived from -addr)")
	)
	flag.Parse()
	if *federation != 0 && *joinURL != "" {
		fmt.Fprintln(os.Stderr, "-federation and -join are mutually exclusive")
		return 1
	}
	if *federation == 1 || *federation < 0 {
		fmt.Fprintln(os.Stderr, "-federation needs at least 2 members")
		return 1
	}
	mode, err := remediate.ParseMode(*remMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *clusters < 1 {
		*clusters = 1
	}
	obs.DefaultTracer.Resize(*traceCap)

	cp, ok := chaos.ByName(*chaosName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown chaos profile %q (known: %v)\n", *chaosName, chaos.Names())
		return 1
	}

	ctx := context.Background()
	clk := clock.NewScaled(*scale, clock.Wall.Now())
	bus := logging.NewBus()
	defer bus.Close()
	cloudOpts := []simaws.Option{simaws.WithSeed(1), simaws.WithBus(bus)}
	var logTap func(<-chan logging.Event) <-chan logging.Event
	if cp.Enabled() {
		fmt.Fprintf(os.Stderr, "chaos profile %q active: log stream and cloud API under injected faults\n", cp.Name)
		if inj := cp.FaultInjector(clk); inj != nil {
			cloudOpts = append(cloudOpts, simaws.WithFaultInjector(inj))
		}
		logTap = cp.LogTap(clk)
	}
	cloud := simaws.New(clk, simaws.PaperProfile(), cloudOpts...)
	cloud.Start()
	defer cloud.Stop()

	// One Manager shared by every demo operation: bus subscriptions, log
	// storage, evaluator, diagnosis engine and worker pool are common;
	// each cluster gets its own Session.
	// Generous retention: ended demo sessions stay queryable over
	// /operations long after their upgrade finishes.
	chaosLabel := ""
	if cp.Enabled() {
		chaosLabel = cp.Name
	}
	newManager := func() (*core.Manager, error) {
		m, err := core.NewManager(core.ManagerConfig{
			Cloud: cloud, Bus: bus, Retention: 24 * time.Hour,
			Diagnosis:   diagnosis.Options{Workers: *diagWorkers},
			LogTap:      logTap,
			ChaosLabel:  chaosLabel,
			Remediation: remediate.SuggestedPolicy(mode),
		})
		if err != nil {
			return nil, err
		}
		m.Start()
		return m, nil
	}

	// watchOp registers one demo operation; server is the HTTP surface.
	// Both depend on the serving mode: single manager (default), an
	// in-process federation behind a front, or one member of a remote
	// front.
	var (
		watchOp func(app string, x core.Expectation, taskID string) error
		server  *rest.Server
	)
	switch {
	case *federation >= 2:
		front := federate.NewFront(clk, federate.Config{})
		heartbeat := front.Config().LeaseTTL / 3
		for i := 1; i <= *federation; i++ {
			member, err := federate.NewLocalMember(federate.LocalConfig{
				ID: fmt.Sprintf("member-%d", i), NewManager: newManager,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if err := member.JoinFront(front); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			member.StartHeartbeats(heartbeat)
		}
		front.Start()
		defer front.Stop()
		fmt.Fprintf(os.Stderr, "federation of %d members behind the front (lease TTL %s)\n",
			*federation, front.Config().LeaseTTL)
		watchOp = func(app string, x core.Expectation, taskID string) error {
			_, owner, err := front.Watch(ctx, federate.WatchRequest{
				ID: app, Expect: x, InstanceIDs: []string{taskID},
			})
			if err == nil {
				fmt.Fprintf(os.Stderr, "operation %s placed on member %s\n", app, owner)
			}
			return err
		}
		server = rest.NewServer(nil, nil, nil, rest.WithFront(front))
	case *joinURL != "":
		mgr, err := newManager()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer mgr.Stop()
		base := *advertise
		if base == "" {
			// A bare ":port" listen address needs a reachable host; an
			// addr that already names one is used as-is.
			host := *addr
			if len(host) > 0 && host[0] == ':' {
				host = "127.0.0.1" + host
			}
			base = "http://" + host
		}
		frontCl := rest.NewClient(*joinURL, nil, rest.WithClientClock(clk))
		agent := &rest.FederationAgent{ID: *memberID, Base: base, Manager: mgr, Front: frontCl}
		if err := agent.Join(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "join %s: %v\n", *joinURL, err)
			return 1
		}
		go agent.Run(ctx, 3*time.Second)
		fmt.Fprintf(os.Stderr, "joined front %s as %s (advertising %s), epoch %d\n",
			*joinURL, *memberID, base, agent.Epoch())
		watchOp = func(app string, x core.Expectation, taskID string) error {
			_, err := frontCl.CreateOperation(ctx, rest.OperationRequest{
				ID: app, Expect: x, InstanceIDs: []string{taskID},
			})
			return err
		}
		server = rest.NewServer(mgr.Checker(), mgr.Evaluator(), mgr.Diagnoser(),
			rest.WithManager(mgr))
	default:
		mgr, err := newManager()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer mgr.Stop()
		watchOp = func(app string, x core.Expectation, taskID string) error {
			_, err := mgr.Watch(x, core.BindInstance(taskID), core.WithSessionID(app))
			return err
		}
		server = rest.NewServer(mgr.Checker(), mgr.Evaluator(), mgr.Diagnoser(),
			rest.WithManager(mgr))
	}

	// A joining member brings handoff capacity, not workload: its
	// simulated cloud is process-local, so deploying demo clusters here
	// and registering them through the front would collide with the
	// front's own pmN names and route watches onto members that cannot
	// see this cloud.
	demoClusters := *clusters
	if *joinURL != "" {
		demoClusters = 0
		fmt.Fprintln(os.Stderr, "member mode: no demo clusters, serving as handoff capacity")
	} else {
		fmt.Fprintf(os.Stderr, "deploying %d demo clusters of %d instances...\n", demoClusters, *size)
	}
	for i := 1; i <= demoClusters; i++ {
		app := fmt.Sprintf("pm%d", i)
		cluster, err := upgrade.Deploy(ctx, cloud, app, *size, "v1")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		newAMI, err := cloud.RegisterImage(ctx, app+"-v2", "v2", upgrade.AppServices)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		taskID := "pushing " + cluster.ASGName
		spec := cluster.UpgradeSpec(taskID, newAMI)
		spec.NewLCName = cluster.ASGName + "-lc-" + newAMI
		if err := watchOp(app, core.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  cluster.Size,
			OldLCName:    cluster.LCName,
		}, taskID); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		// Stagger the rolling upgrades so the sessions overlap but don't
		// start in lockstep; the server keeps serving while they run.
		delay := time.Duration(i-1) * time.Minute
		go func(spec upgrade.Spec, delay time.Duration) {
			if err := clk.Sleep(ctx, delay); err != nil {
				return
			}
			if rep := upgrade.NewUpgrader(cloud, bus).Run(ctx, spec); rep.Err != nil {
				fmt.Fprintf(os.Stderr, "upgrade %s: %v\n", spec.TaskID, rep.Err)
			}
		}(spec, delay)
		fmt.Fprintf(os.Stderr, "cluster %s ready behind %s; session %s watching %q\n",
			cluster.ASGName, cluster.ELBName, app, taskID)
	}

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	fmt.Fprintf(os.Stderr, "serving on %s\n", *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// servePprof hosts the pprof handlers on their own mux so profiling
// endpoints never leak onto the public API listener.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "pprof:", err)
	}
}
