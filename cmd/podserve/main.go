// Command podserve hosts the three POD-Diagnosis services — conformance
// checking, assertion evaluation, and error diagnosis — as RESTful web
// services over a simulated cloud, mirroring the paper's RESTlet
// deployment (§IV).
//
// Usage:
//
//	podserve [-addr :8077] [-size N] [-scale X]
//
// Endpoints:
//
//	POST /conformance/check      {"traceId": "...", "line": "..."}
//	GET  /conformance/instances
//	POST /assertions/evaluate    {"checkId": "...", "params": {...}}
//	GET  /assertions/checks
//	POST /diagnosis              {"assertionId": "...", "stepId": "...", "params": {...}}
//	GET  /model
//	GET  /healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/rest"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr  = flag.String("addr", ":8077", "listen address")
		size  = flag.Int("size", 4, "size of the backing demo cluster")
		scale = flag.Float64("scale", 60, "clock speed-up factor")
	)
	flag.Parse()

	ctx := context.Background()
	clk := clock.NewScaled(*scale, time.Now())
	bus := logging.NewBus()
	defer bus.Close()
	cloud := simaws.New(clk, simaws.PaperProfile(), simaws.WithSeed(1), simaws.WithBus(bus))
	cloud.Start()
	defer cloud.Stop()

	fmt.Fprintf(os.Stderr, "deploying a %d-instance demo cluster...\n", *size)
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", *size, "v1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	client := consistentapi.New(cloud, consistentapi.Config{})
	eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), bus)
	checker := conformance.NewChecker(process.RollingUpgradeModel())
	diag := diagnosis.NewEngine(faulttree.DefaultRepository(), eval, bus, diagnosis.Options{})
	server := rest.NewServer(checker, eval, diag)

	fmt.Fprintf(os.Stderr, "cluster %s ready behind %s; serving on %s\n", cluster.ASGName, cluster.ELBName, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}
