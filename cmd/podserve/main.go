// Command podserve hosts the three POD-Diagnosis services — conformance
// checking, assertion evaluation, and error diagnosis — as RESTful web
// services over a simulated cloud, mirroring the paper's RESTlet
// deployment (§IV). A full monitoring engine (local log processor,
// conformance checker, assertion timers, diagnosis) watches the demo
// cluster, so the observability endpoints carry live data.
//
// Usage:
//
//	podserve [-addr :8077] [-size N] [-scale X] [-pprof addr]
//
// Endpoints:
//
//	POST /conformance/check      {"traceId": "...", "line": "..."}
//	GET  /conformance/instances
//	POST /assertions/evaluate    {"checkId": "...", "params": {...}}
//	GET  /assertions/checks
//	POST /diagnosis              {"assertionId": "...", "stepId": "...", "params": {...}}
//	GET  /model
//	GET  /healthz
//	GET  /readyz                 engine drain / queue depth
//	GET  /metrics                Prometheus text exposition
//	GET  /traces                 completed spans as JSON
//
// With -pprof ADDR, net/http/pprof is served on a second listener at
// ADDR (e.g. -pprof localhost:6060).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/rest"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", ":8077", "listen address")
		size      = flag.Int("size", 4, "size of the backing demo cluster")
		scale     = flag.Float64("scale", 60, "clock speed-up factor")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	)
	flag.Parse()

	ctx := context.Background()
	clk := clock.NewScaled(*scale, time.Now())
	bus := logging.NewBus()
	defer bus.Close()
	cloud := simaws.New(clk, simaws.PaperProfile(), simaws.WithSeed(1), simaws.WithBus(bus))
	cloud.Start()
	defer cloud.Stop()

	fmt.Fprintf(os.Stderr, "deploying a %d-instance demo cluster...\n", *size)
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", *size, "v1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// A full engine (not just the three bare services) so that timers,
	// the local log processor and the diagnosis pipeline all run — and
	// show up in /metrics, /traces and /readyz.
	engine, err := core.NewEngine(core.Config{
		Cloud: cloud,
		Bus:   bus,
		Expect: core.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   cluster.ImageID,
			NewVersion:   cluster.Version,
			NewLCName:    cluster.LCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  cluster.Size,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	engine.Start()
	defer engine.Stop()

	server := rest.NewServer(engine.Checker(), engine.Evaluator(), engine.Diagnoser(),
		rest.WithReady(func() rest.ReadyStatus {
			q := engine.QueueDepth()
			return rest.ReadyStatus{
				Ready:      true,
				QueueDepth: q.Depth(),
				Detail: fmt.Sprintf("work=%d opEvents=%d centralEvents=%d",
					q.Work, q.OpEvents, q.CentralEvents),
			}
		}))

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	fmt.Fprintf(os.Stderr, "cluster %s ready behind %s; serving on %s\n", cluster.ASGName, cluster.ELBName, *addr)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := httpServer.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// servePprof hosts the pprof handlers on their own mux so profiling
// endpoints never leak onto the public API listener.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", addr)
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "pprof:", err)
	}
}
