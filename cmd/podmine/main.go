// Command podmine demonstrates offline process discovery (§III.A): it runs
// several successful rolling upgrades on the simulated cloud, collects the
// operation logs, mines a process model from them, and compares the
// discovered structure with the hand-built Figure 2 model.
//
// Usage:
//
//	podmine [-traces N] [-size M] [-scale X] [-json model.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/mining"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		traces  = flag.Int("traces", 5, "number of successful upgrades to mine from")
		size    = flag.Int("size", 3, "cluster size")
		scale   = flag.Float64("scale", 400, "clock speed-up factor")
		jsonOut = flag.String("json", "", "write the mined model JSON to this file")
		dotOut  = flag.String("dot", "", "write the mined model in Graphviz dot format to this file")
	)
	flag.Parse()

	ctx := context.Background()
	clk := clock.NewScaled(*scale, time.Date(2013, 10, 24, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	defer bus.Close()
	profile := simaws.PaperProfile()
	profile.StaleProb = 0 // keep training runs clean
	cloud := simaws.New(clk, profile, simaws.WithSeed(7), simaws.WithBus(bus))
	cloud.Start()
	defer cloud.Stop()

	sink := logging.NewMemorySink()
	sub := bus.Subscribe(16384, logging.TypeFilter(logging.TypeOperation))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			sink.Write(e)
		}
	}()

	fmt.Fprintf(os.Stderr, "running %d clean upgrades of a %d-instance cluster...\n", *traces, *size)
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", *size, "v1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	up := upgrade.NewUpgrader(cloud, bus)
	for i := 0; i < *traces; i++ {
		ami, err := cloud.RegisterImage(ctx, fmt.Sprintf("pm-v%d", i+2), fmt.Sprintf("v%d", i+2), upgrade.AppServices)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rep := up.Run(ctx, cluster.UpgradeSpec(fmt.Sprintf("push-%d", i), ami))
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "upgrade %d failed: %v\n", i, rep.Err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "  trace %d: replaced %d instances\n", i+1, len(rep.Replaced))
	}
	sub.Cancel()
	<-done

	var lines []mining.Line
	for _, ev := range sink.Events() {
		_, task, body, ok := logging.ParseOperationLine(ev.Message)
		if !ok {
			continue
		}
		lines = append(lines, mining.Line{Timestamp: ev.Timestamp, InstanceID: task, Body: body})
	}
	fmt.Fprintf(os.Stderr, "mining %d log lines...\n\n", len(lines))

	res, err := mining.NewMiner().Mine(lines, "mined-rolling-upgrade")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("discovered %d activities from %d traces (loop: %v)\n\n", len(res.Clusters), res.Traces, res.HasLoop())
	for _, c := range res.Clusters {
		fmt.Printf("  %-42s x%-4d %s\n", c.Name, c.Count, c.Template)
	}
	fmt.Println()
	fmt.Print(res.RenderDFG())

	// Compare with the hand-built Figure 2 model: every mined cluster
	// should map onto exactly one canonical activity.
	truth := process.RollingUpgradeModel()
	fmt.Println("\nmapping to the canonical Figure 2 model:")
	for _, c := range res.Clusters {
		name := "(unmapped)"
		for _, ex := range c.Examples {
			if n, ok := truth.Classify(ex); ok {
				name = n.Name
				break
			}
		}
		fmt.Printf("  %-42s -> %s\n", c.Name, name)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(res.Model, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "\nmined model written to %s\n", *jsonOut)
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(res.Model.DOT()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "mined model graph written to %s\n", *dotOut)
	}
	return 0
}
