// Command podexperiment runs the paper's evaluation campaign (§V): fault
// injection across the 8 fault types with simultaneous operations, and
// prints the reproduced tables and figures.
//
// Usage:
//
//	podexperiment                      # full 160-run campaign, all outputs
//	podexperiment -runs 5              # 5 runs per fault (40 total)
//	podexperiment -figure 6            # only Figure 6
//	podexperiment -figure 7            # only Figure 7
//	podexperiment -table 1             # only Table I
//	podexperiment -table conformance   # only the conformance coverage table
//	podexperiment -json results.json   # also dump raw run results
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"poddiagnosis/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runs     = flag.Int("runs", 20, "runs per fault type (paper: 20)")
		scale    = flag.Float64("scale", 0, "clock speed-up (0 = default)")
		seed     = flag.Int64("seed", 2013, "campaign seed")
		parallel = flag.Int("parallel", 0, "concurrent runs (0 = default)")
		figure   = flag.String("figure", "", "print only figure 6 or 7")
		table    = flag.String("table", "", "print only table 1 or conformance")
		jsonOut  = flag.String("json", "", "write raw run results to this file")
		ablation = flag.String("ablation", "", "detection ablation: no-conformance, no-assertions")
	)
	flag.Parse()

	cfg := experiment.Config{
		RunsPerFault: *runs,
		Scale:        *scale,
		Seed:         *seed,
		Parallelism:  *parallel,
	}
	switch *ablation {
	case "":
	case "no-conformance":
		cfg.DisableConformance = true
	case "no-assertions":
		cfg.DisableAssertions = true
	default:
		fmt.Fprintf(os.Stderr, "unknown ablation %q\n", *ablation)
		return 2
	}

	total := *runs * 8
	fmt.Fprintf(os.Stderr, "running %d fault-injection runs (8 fault types x %d)...\n", total, *runs)
	rep, err := experiment.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "campaign finished in %s wall time\n\n", rep.WallDuration.Round(1e9))

	switch {
	case *figure == "6":
		fmt.Print(rep.RenderFigure6())
	case *figure == "7":
		fmt.Print(rep.RenderFigure7())
	case *table == "1":
		fmt.Print(rep.RenderTable1())
	case *table == "conformance":
		fmt.Print(rep.RenderConformance())
	default:
		fmt.Print(rep.RenderAll())
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "raw results written to %s\n", *jsonOut)
	}
	return 0
}
