// Command podctl runs one rolling upgrade on the simulated cloud with
// POD-Diagnosis watching, optionally injecting one of the paper's eight
// fault types, and prints the live diagnosis results.
//
// Usage:
//
//	podctl [-size N] [-fault kind] [-interfere kind] [-scale X] [-seed S] [-v]
//	podctl -fault key-pair-changed -timeline   # render the causal evidence timeline
//	podctl -fault wrong-ami -spans             # print the operation's tracer spans (/traces?op= view)
//	podctl -fault ami-changed -remediate-mode auto -remediations   # heal the fault and print the audit
//	podctl -fault sg-changed -remediate-mode approve -approve      # hold actions, then approve them
//	podctl -plans                        # list the diagnosis-plan catalog
//	podctl -show-plan ft-version-count   # print one plan (the Figure 5 DAG)
//	podctl -list-faults                  # list injectable fault kinds
//
// With -timeline, the run ends by rendering the operation's causal
// flight-recorder timeline: every detection chains back through
// conformance verdicts (or assertion results) to the raw log event that
// triggered it, and forward through the fault-tree tests (with
// retry/breaker/cache annotations) to the confirmed root cause.
// -timeline-kind restricts the rendering to a comma-separated list of
// entry kinds (e.g. detection,diagnosis.cause).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/offline"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		size      = flag.Int("size", 4, "cluster size (paper: 4 or 20)")
		faultName = flag.String("fault", "", "fault to inject (see -list-faults; empty = clean run)")
		interfere = flag.String("interfere", "", "interference to inject: scale-in, random-termination, account-pressure")
		scale     = flag.Float64("scale", 120, "clock speed-up factor")
		seed      = flag.Int64("seed", 1, "random seed")
		verbose   = flag.Bool("v", false, "stream all log events")
		showPlan  = flag.String("show-plan", "", "print one diagnosis plan as an indented DAG and exit (see -plans)")
		plansList = flag.Bool("plans", false, "list the diagnosis-plan catalog and exit")
		listFault = flag.Bool("list-faults", false, "list fault kinds and exit")
		postmort  = flag.Bool("postmortem", false, "print the offline post-mortem from the central log store after the run")
		dumpPath  = flag.String("dump", "", "write the central log store to this JSON-lines file (analyze later with podanalyze)")
		timeline  = flag.Bool("timeline", false, "render the operation's causal flight-recorder timeline after the run")
		tlKinds   = flag.String("timeline-kind", "", "comma-separated entry kinds to keep in -timeline output (empty = all)")
		spans     = flag.Bool("spans", false, "print the operation's completed tracer spans after the run (the GET /traces?op= view)")
		remMode   = flag.String("remediate-mode", "off", "closed-loop remediation policy: off, dry-run, approve or auto")
		remList   = flag.Bool("remediations", false, "print the remediation audit trail after the run")
		approve   = flag.Bool("approve", false, "approve pending (approve-mode) remediations after the run")
	)
	flag.Parse()

	mode, err := remediate.ParseMode(*remMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	var kinds []flight.Kind
	for _, part := range strings.Split(*tlKinds, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k := flight.Kind(part)
		if !flight.KnownKind(k) {
			fmt.Fprintf(os.Stderr, "unknown timeline kind %q (known: %v)\n", part, flight.Kinds())
			return 2
		}
		kinds = append(kinds, k)
	}

	if *listFault {
		for _, k := range faultinject.AllKinds() {
			fmt.Printf("  %-24s expected root causes: %v\n", k, k.ExpectedRootCauses())
		}
		return 0
	}
	if *plansList {
		listPlans()
		return 0
	}
	if *showPlan != "" {
		return printPlan(*showPlan)
	}

	var fault faultinject.Kind
	if *faultName != "" {
		for _, k := range faultinject.AllKinds() {
			if k.String() == *faultName {
				fault = k
			}
		}
		if fault == 0 {
			fmt.Fprintf(os.Stderr, "unknown fault %q (see -list-faults)\n", *faultName)
			return 2
		}
	}

	ctx := context.Background()
	clk := clock.NewScaled(*scale, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	defer bus.Close()
	cloud := simaws.New(clk, simaws.PaperProfile(), simaws.WithSeed(*seed), simaws.WithBus(bus))
	cloud.Start()
	defer cloud.Stop()

	if *verbose {
		sub := bus.Subscribe(4096, nil)
		go func() {
			sink := logging.NewTextSink(os.Stderr)
			for e := range sub.C {
				sink.Write(e)
			}
		}()
		defer sub.Cancel()
	}

	fmt.Printf("deploying %d-instance cluster (sim clock x%.0f)...\n", *size, *scale)
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", *size, "v1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	newAMI, err := cloud.RegisterImage(ctx, "pm-v2", "v2", upgrade.AppServices)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	spec := cluster.UpgradeSpec("pushing pm--asg", newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI

	mon, err := core.NewEngine(core.Config{
		Cloud: cloud,
		Bus:   bus,
		Expect: core.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  *size,
			OldLCName:    cluster.LCName,
		},
		Remediation: remediate.SuggestedPolicy(mode),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	mon.Start()

	injector := faultinject.NewInjector(cloud, cluster, *seed)
	defer injector.Heal()
	if fault != 0 {
		fmt.Printf("injecting fault %q mid-upgrade...\n", fault)
		go func() {
			_ = injector.Inject(ctx, fault, 30*time.Second, spec.NewLCName, newAMI)
		}()
	}
	if *interfere != "" {
		for _, i := range []faultinject.Interference{
			faultinject.InterferenceScaleIn,
			faultinject.InterferenceRandomTermination,
			faultinject.InterferenceAccountPressure,
		} {
			if i.String() == *interfere {
				fmt.Printf("injecting interference %q...\n", i)
				go func() { _ = injector.Interfere(ctx, i, 40*time.Second) }()
			}
		}
	}

	fmt.Printf("starting rolling upgrade of %s to %s...\n", cluster.ASGName, newAMI)
	rep := upgrade.NewUpgrader(cloud, bus).Run(ctx, spec)
	_ = clk.Sleep(ctx, 30*time.Second)
	mon.Drain(ctx, 5*time.Minute)
	rem := mon.Manager().Remediator()
	if rem != nil && *approve {
		for _, rm := range rem.List(mon.Session().ID()) {
			if rm.State != remediate.StatePending {
				continue
			}
			res, err := rem.Approve(ctx, rm.ID)
			if err != nil {
				fmt.Fprintf(os.Stderr, "approve %s: %v\n", rm.ID, err)
				continue
			}
			fmt.Printf("approved %s: %s -> %s\n", res.ID, res.Action, res.State)
		}
	}
	mon.Stop()

	if rep.Err != nil {
		fmt.Printf("upgrade FAILED: %v\n", rep.Err)
	} else {
		fmt.Printf("upgrade completed: replaced %d instances in %s (simulated)\n",
			len(rep.Replaced), rep.Finished.Sub(rep.Started).Round(time.Second))
	}
	if *dumpPath != "" {
		if err := mon.Store().SaveFile(*dumpPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("central log store written to %s (%d events)\n", *dumpPath, mon.Store().Len())
	}
	if *postmort {
		rep, err := offline.Analyze(mon.Store(), process.RollingUpgradeModel())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Println()
		fmt.Print(rep.Render())
	}

	dets := mon.Detections()
	fmt.Printf("\n%d detection(s):\n", len(dets))
	for i, d := range dets {
		fmt.Printf("  [%d] source=%s trigger=%s step=%s\n      %s\n", i+1, d.Source, d.TriggerID, d.StepID, d.Message)
		if d.Diagnosis != nil {
			fmt.Printf("      diagnosis (%0.2fs, %d tests, %d/%d faults excluded): %s\n",
				d.Diagnosis.Duration.Seconds(), len(d.Diagnosis.TestsRun),
				d.Diagnosis.Excluded, d.Diagnosis.PotentialFaults, d.Diagnosis.Conclusion)
			for _, c := range d.Diagnosis.RootCauses {
				fmt.Printf("      root cause: %s — %s\n", c.NodeID, c.Description)
			}
			for _, c := range d.Diagnosis.Suspected {
				fmt.Printf("      suspected:  %s — %s\n", c.NodeID, c.Description)
			}
		}
	}
	if *remList && rem != nil {
		rms := rem.List(mon.Session().ID())
		fmt.Printf("\n%d remediation(s):\n", len(rms))
		for _, rm := range rms {
			fmt.Printf("  %-6s %-24s mode=%-8s state=%-9s cause=%s\n",
				rm.ID, rm.Action, rm.Mode, rm.State, rm.CauseNode)
			if rm.Detail != "" {
				fmt.Printf("         %s\n", rm.Detail)
			}
			if rm.Error != "" {
				fmt.Printf("         error: %s\n", rm.Error)
			}
		}
	}
	if *timeline {
		fmt.Println()
		flight.Render(os.Stdout, mon.Session().Timeline(kinds...))
	}
	if *spans {
		printOperationSpans(mon.Session().ID())
	}
	return 0
}

// printOperationSpans renders the completed tracer spans belonging to
// the operation's traces — the in-process equivalent of GET /traces?op=.
func printOperationSpans(op string) {
	all := obs.DefaultTracer.Spans()
	traces := make(map[uint64]bool)
	for _, s := range all {
		if s.Attrs["op"] == op {
			traces[s.TraceID] = true
		}
	}
	fmt.Printf("\nspans for operation %s:\n", op)
	for _, s := range all {
		if !traces[s.TraceID] {
			continue
		}
		fmt.Printf("  trace=%-6d span=%-6d parent=%-6d %-20s %6.1fms\n",
			s.TraceID, s.SpanID, s.ParentID, s.Name, float64(s.DurationUS)/1000)
	}
}

// listPlans prints the full diagnosis-plan catalog, one line per plan.
func listPlans() {
	for _, p := range faulttree.FullCatalog().All() {
		fmt.Printf("  %-24s assertion=%-20s nodes=%2d causes=%2d  %s\n",
			p.ID, p.AssertionID, len(p.Nodes), len(p.PotentialRootCauses()), p.Description)
	}
}

// printPlan renders one diagnosis plan as an indented DAG, probability
// order first. Fan-in nodes are expanded once; later visits print a
// shared-node reference instead of repeating the sub-graph.
func printPlan(id string) int {
	p := faulttree.FullCatalog().Get(id)
	if p == nil {
		fmt.Fprintf(os.Stderr, "unknown plan %q (see -plans)\n", id)
		return 2
	}
	fmt.Printf("Diagnosis plan %s — diagnoses assertion %q\n", p.ID, p.AssertionID)
	seen := make(map[string]bool)
	var walk func(n *diagplan.Node, depth int)
	walk = func(n *diagplan.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		marker := "▸"
		if n.IsCause() {
			marker = "●"
		}
		if seen[n.ID] {
			fmt.Printf("%s%s %s ↩ (shared sub-graph, expanded above)\n", indent, marker, n.ID)
			return
		}
		seen[n.ID] = true
		check := ""
		if n.CheckID != "" {
			check = " [test: " + n.CheckID + "]"
		}
		steps := ""
		if len(n.Steps) > 0 {
			steps = fmt.Sprintf(" (steps %v)", n.Steps)
		}
		fmt.Printf("%s%s %s%s%s\n", indent, marker, n.Description, check, steps)
		for _, c := range p.Children(n) {
			walk(c, depth+1)
		}
	}
	walk(p.EntryNode(), 0)
	return 0
}
