// Command podanalyze runs the offline post-mortem over an archived central
// log store (the JSON-lines file written by `podctl -dump` or by
// logstore.Store.SaveFile): per process instance, the replayed conformance
// verdicts, every anomaly, and the diagnosis conclusions reached online.
//
// Usage:
//
//	podanalyze -store store.jsonl [-model rolling-upgrade|scale-out|model.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"poddiagnosis/internal/logstore"
	"poddiagnosis/internal/offline"
	"poddiagnosis/internal/process"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		storePath = flag.String("store", "", "JSON-lines store dump to analyze (required)")
		modelName = flag.String("model", "rolling-upgrade", "process model: rolling-upgrade, scale-out, or a model JSON file")
	)
	flag.Parse()
	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "podanalyze: -store is required")
		flag.Usage()
		return 2
	}

	store, err := logstore.LoadFile(*storePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	var model *process.Model
	switch *modelName {
	case "rolling-upgrade":
		model = process.RollingUpgradeModel()
	case "scale-out":
		model = process.ScaleOutModel()
	default:
		data, err := os.ReadFile(*modelName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		model, err = process.UnmarshalModel(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	rep, err := offline.Analyze(store, model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(rep.Render())
	return 0
}
