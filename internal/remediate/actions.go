package remediate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"poddiagnosis/internal/simaws"
)

// Target carries everything an action may touch: the simulated cloud, the
// operation's expectation-derived identities, and an optional controller
// for the running operation itself.
type Target struct {
	// Cloud is the simulated AWS account the operation runs against.
	Cloud *simaws.Cloud
	// ASGName / ELBName identify the cluster under operation.
	ASGName string
	ELBName string
	// NewLCName is the operator-intended (post-upgrade) launch
	// configuration; OldLCName the pre-upgrade one to fall back to when
	// the intended one references unavailable resources.
	NewLCName string
	OldLCName string
	// ClusterSize is the expected fleet size.
	ClusterSize int
	// StepID is the process step the triggering detection blamed, if any.
	StepID string
	// Op controls the running operation (retry a step, abort). Nil when
	// the session has no controller attached; actions needing one report
	// ErrNoController.
	Op OperationController
}

// OperationController lets remediation steer the sporadic operation that
// the diagnosed fault interrupted.
type OperationController interface {
	// RetryStep re-runs the named failed process step (empty = the
	// current/failed step).
	RetryStep(ctx context.Context, stepID string) error
	// Abort stops the operation, recording the reason.
	Abort(ctx context.Context, reason string) error
}

// ErrNoController marks an action that needed an operation controller the
// session does not have. The engine records such outcomes as skipped
// rather than failed.
var ErrNoController = errors.New("remediate: no operation controller attached")

// DefaultCatalog binds the five built-in actions to the cause nodes of
// the shipped diagnosis plans (fault trees, blue/green, spot-rebalance)
// and marks the causes that deliberately stay manual.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	c.MustAdd(Action{
		Name:        "rollback-launch-config",
		Description: "Point the ASG back at the operator-intended launch configuration, or the pre-upgrade one when the intended configuration references unavailable resources.",
		Class:       ClassConfig,
		Causes: []string{
			"wrong-ami", "wrong-keypair", "wrong-sg", "wrong-instance-type",
			"lc-changed",
			"lc-ami-unavailable", "lc-keypair-unavailable", "lc-sg-unavailable",
			"launch-ami-unavailable", "launch-keypair-unavailable", "launch-sg-unavailable",
		},
		Run: runRollbackLaunchConfig,
	})
	c.MustAdd(Action{
		Name:        "replace-instance",
		Description: "Terminate (without decrementing capacity) every live instance not launched from the ASG's current launch configuration so the reconciler relaunches it correctly.",
		Class:       ClassConfig,
		Causes: []string{
			"wrong-ami", "wrong-keypair", "wrong-sg", "wrong-instance-type",
			"lc-changed",
		},
		Run: runReplaceInstance,
	})
	c.MustAdd(Action{
		Name:        "reregister-with-elb",
		Description: "Register the ASG's in-service instances that are missing from the load balancer.",
		Class:       ClassTraffic,
		Causes:      []string{"instance-not-registered"},
		Run:         runReregisterWithELB,
	})
	c.MustAdd(Action{
		Name:        "retry-failed-step",
		Description: "Re-run the failed process step of the sporadic operation once the environment fault has been repaired.",
		Class:       ClassOperation,
		Causes: []string{
			"wrong-ami", "wrong-keypair", "wrong-sg", "wrong-instance-type",
			"lc-changed",
			"lc-ami-unavailable", "lc-keypair-unavailable", "lc-sg-unavailable",
			"launch-ami-unavailable", "launch-keypair-unavailable", "launch-sg-unavailable",
			"instance-not-registered",
		},
		Run: runRetryFailedStep,
	})
	c.MustAdd(Action{
		Name:        "abort-operation",
		Description: "Abort the sporadic operation: the fault is environmental (ELB outage, account limit) and continuing would churn the fleet.",
		Class:       ClassEscalation,
		Causes:      []string{"elb-unreachable", "account-limit-reached"},
		Run:         runAbortOperation,
	})
	// Causes the catalog deliberately leaves to a human. An unexpected
	// termination or concurrent scale-in points at an actor outside the
	// upgrade (a second operator, a scaling policy, the platform itself);
	// any automatic response risks fighting that actor. Lint rule RM002
	// requires these markers, so a new plan cause cannot silently land
	// outside the remediation surface.
	c.MarkManual("unexpected-termination",
		"an external actor terminated instances mid-upgrade; investigate before re-converging the fleet")
	c.MarkManual("simultaneous-scale-in",
		"a concurrent scale-in changed the group's desired capacity; reconcile the two operations by hand")
	return c
}

// runRollbackLaunchConfig repairs launch-configuration drift: if the
// operator-intended configuration is launchable (its AMI, key pair and
// security groups still exist) the ASG is pointed back at it; otherwise
// the group rolls back to the pre-upgrade configuration.
func runRollbackLaunchConfig(ctx context.Context, t *Target) (string, error) {
	asg, err := t.Cloud.DescribeAutoScalingGroup(ctx, t.ASGName)
	if err != nil {
		return "", fmt.Errorf("describe ASG %s: %w", t.ASGName, err)
	}
	want := t.NewLCName
	reason := "operator-intended"
	if want == "" || !launchable(ctx, t.Cloud, want) {
		if t.OldLCName == "" || !launchable(ctx, t.Cloud, t.OldLCName) {
			return "", fmt.Errorf("neither intended launch configuration %q nor pre-upgrade %q is launchable", t.NewLCName, t.OldLCName)
		}
		want = t.OldLCName
		reason = "pre-upgrade fallback; intended configuration references unavailable resources"
	}
	if asg.LaunchConfigName == want {
		return fmt.Sprintf("ASG %s already on launch configuration %s (%s)", t.ASGName, want, reason), nil
	}
	if err := t.Cloud.UpdateAutoScalingGroup(ctx, t.ASGName, want, asg.Min, asg.Max, asg.Desired); err != nil {
		return "", fmt.Errorf("update ASG %s to %s: %w", t.ASGName, want, err)
	}
	return fmt.Sprintf("rolled ASG %s launch configuration back from %s to %s (%s)", t.ASGName, asg.LaunchConfigName, want, reason), nil
}

// launchable reports whether a launch configuration's referenced
// resources (AMI, key pair, security groups) all still exist.
func launchable(ctx context.Context, cloud *simaws.Cloud, lcName string) bool {
	lc, err := cloud.DescribeLaunchConfiguration(ctx, lcName)
	if err != nil {
		return false
	}
	if img, err := cloud.DescribeImage(ctx, lc.ImageID); err != nil || !img.Available {
		return false
	}
	if _, err := cloud.DescribeKeyPair(ctx, lc.KeyName); err != nil {
		return false
	}
	for _, sg := range lc.SecurityGroups {
		if _, err := cloud.DescribeSecurityGroup(ctx, sg); err != nil {
			return false
		}
	}
	return true
}

// runReplaceInstance terminates live ASG members whose launch
// configuration differs from the group's current one, without
// decrementing capacity, so the reconciler relaunches them from the
// (already repaired) configuration.
func runReplaceInstance(ctx context.Context, t *Target) (string, error) {
	asg, err := t.Cloud.DescribeAutoScalingGroup(ctx, t.ASGName)
	if err != nil {
		return "", fmt.Errorf("describe ASG %s: %w", t.ASGName, err)
	}
	var replaced []string
	for _, id := range asg.Instances {
		inst, err := t.Cloud.DescribeInstance(ctx, id)
		if err != nil {
			if simaws.IsNotFound(err) {
				continue
			}
			return "", fmt.Errorf("describe instance %s: %w", id, err)
		}
		if !inst.Live() || inst.State == simaws.StateTerminating || inst.LaunchConfigName == asg.LaunchConfigName {
			continue
		}
		if err := t.Cloud.TerminateInstanceInAutoScalingGroup(ctx, id, false); err != nil {
			if simaws.IsNotFound(err) {
				continue
			}
			return "", fmt.Errorf("terminate %s: %w", id, err)
		}
		replaced = append(replaced, id)
	}
	if len(replaced) == 0 {
		return fmt.Sprintf("no off-configuration instances in ASG %s", t.ASGName), nil
	}
	sort.Strings(replaced)
	return fmt.Sprintf("terminated %d off-configuration instance(s) %s for relaunch from %s",
		len(replaced), strings.Join(replaced, ","), asg.LaunchConfigName), nil
}

// runReregisterWithELB registers in-service ASG members missing from the
// load balancer.
func runReregisterWithELB(ctx context.Context, t *Target) (string, error) {
	asg, err := t.Cloud.DescribeAutoScalingGroup(ctx, t.ASGName)
	if err != nil {
		return "", fmt.Errorf("describe ASG %s: %w", t.ASGName, err)
	}
	health, err := t.Cloud.DescribeInstanceHealth(ctx, t.ELBName)
	if err != nil {
		return "", fmt.Errorf("describe ELB %s health: %w", t.ELBName, err)
	}
	registered := make(map[string]bool, len(health))
	for _, h := range health {
		registered[h.InstanceID] = true
	}
	var missing []string
	for _, id := range asg.Instances {
		if registered[id] {
			continue
		}
		inst, err := t.Cloud.DescribeInstance(ctx, id)
		if err != nil || inst.State != simaws.StateInService {
			continue
		}
		missing = append(missing, id)
	}
	if len(missing) == 0 {
		return fmt.Sprintf("all in-service members of ASG %s already registered with ELB %s", t.ASGName, t.ELBName), nil
	}
	sort.Strings(missing)
	if err := t.Cloud.RegisterInstancesWithLoadBalancer(ctx, t.ELBName, missing...); err != nil {
		return "", fmt.Errorf("register %v with ELB %s: %w", missing, t.ELBName, err)
	}
	return fmt.Sprintf("registered %d instance(s) %s with ELB %s", len(missing), strings.Join(missing, ","), t.ELBName), nil
}

// runRetryFailedStep re-runs the blamed process step via the operation
// controller.
func runRetryFailedStep(ctx context.Context, t *Target) (string, error) {
	if t.Op == nil {
		return "", ErrNoController
	}
	if err := t.Op.RetryStep(ctx, t.StepID); err != nil {
		return "", fmt.Errorf("retry step %q: %w", t.StepID, err)
	}
	if t.StepID == "" {
		return "requested retry of the failed step", nil
	}
	return fmt.Sprintf("requested retry of step %s", t.StepID), nil
}

// runAbortOperation aborts the operation via the controller.
func runAbortOperation(ctx context.Context, t *Target) (string, error) {
	if t.Op == nil {
		return "", ErrNoController
	}
	if err := t.Op.Abort(ctx, "remediation: environmental fault confirmed"); err != nil {
		return "", fmt.Errorf("abort operation: %w", err)
	}
	return "aborted the operation", nil
}
