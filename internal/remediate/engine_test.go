package remediate

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// countingCatalog binds one stub action to the "wrong-ami" cause and
// counts executions.
func countingCatalog(t *testing.T, runs *atomic.Int32) *Catalog {
	t.Helper()
	c := NewCatalog()
	c.MustAdd(Action{
		Name:        "stub",
		Description: "stub action",
		Class:       ClassConfig,
		Causes:      []string{"wrong-ami"},
		Run: func(ctx context.Context, tg *Target) (string, error) {
			runs.Add(1)
			return "done", nil
		},
	})
	return c
}

func TestTriggerIdempotentRefire(t *testing.T) {
	var runs atomic.Int32
	eng := NewEngine(countingCatalog(t, &runs), Policy{Default: ModeAuto}, clock.Wall)
	tr := Trigger{Operation: "op-1", CauseNode: "wrong-ami", CausePath: "p:a/b"}
	first := eng.Trigger(context.Background(), tr)
	if len(first) != 1 || first[0].State != StateExecuted {
		t.Fatalf("first trigger = %+v", first)
	}
	// A re-diagnosed cause — same operation, same action, same base — must
	// not double-fire, even via a suffixed node id from another plan.
	if again := eng.Trigger(context.Background(), tr); len(again) != 0 {
		t.Fatalf("re-fire admitted %d remediations", len(again))
	}
	tr.CauseNode = "wrong-ami-elb"
	if again := eng.Trigger(context.Background(), tr); len(again) != 0 {
		t.Fatalf("suffixed re-fire admitted remediations")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("action ran %d times, want 1", got)
	}
	if rs := eng.List("op-1"); len(rs) != 1 {
		t.Fatalf("List = %d remediations, want 1", len(rs))
	}
	// A different operation with the same cause fires independently.
	tr2 := Trigger{Operation: "op-2", CauseNode: "wrong-ami"}
	if rs := eng.Trigger(context.Background(), tr2); len(rs) != 1 {
		t.Fatalf("second operation admitted %d remediations", len(rs))
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("action ran %d times across two operations, want 2", got)
	}
}

func TestApproveDoubleApprove(t *testing.T) {
	var runs atomic.Int32
	eng := NewEngine(countingCatalog(t, &runs), Policy{Default: ModeApprove}, clock.Wall)
	rs := eng.Trigger(context.Background(), Trigger{Operation: "op-1", CauseNode: "wrong-ami"})
	if len(rs) != 1 || rs[0].State != StatePending {
		t.Fatalf("trigger = %+v", rs)
	}
	if runs.Load() != 0 {
		t.Fatal("approve-mode action ran before approval")
	}
	rm, err := eng.Approve(context.Background(), rs[0].ID)
	if err != nil || rm.State != StateExecuted {
		t.Fatalf("approve = %+v, %v", rm, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("action ran %d times, want 1", runs.Load())
	}
	if _, err := eng.Approve(context.Background(), rs[0].ID); !errors.Is(err, ErrNotPending) {
		t.Fatalf("double approve err = %v, want ErrNotPending", err)
	}
	if runs.Load() != 1 {
		t.Fatalf("double approve re-ran the action (%d runs)", runs.Load())
	}
}

func TestApproveAfterOperationGC(t *testing.T) {
	var runs atomic.Int32
	eng := NewEngine(countingCatalog(t, &runs), Policy{Default: ModeApprove}, clock.Wall)
	rs := eng.Trigger(context.Background(), Trigger{Operation: "op-1", CauseNode: "wrong-ami"})
	eng.Drop("op-1")
	if _, err := eng.Approve(context.Background(), rs[0].ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("approve after GC err = %v, want ErrNotFound", err)
	}
	if runs.Load() != 0 {
		t.Fatal("GC'd remediation still executed")
	}
	if rs := eng.List("op-1"); len(rs) != 0 {
		t.Fatalf("dropped operation still lists %d remediations", len(rs))
	}
	// The idempotency key is released with the operation: a fresh session
	// reusing the id can fire again.
	if rs := eng.Trigger(context.Background(), Trigger{Operation: "op-1", CauseNode: "wrong-ami"}); len(rs) != 1 {
		t.Fatalf("post-GC re-trigger admitted %d remediations", len(rs))
	}
}

func TestUnknownRemediationNotFound(t *testing.T) {
	eng := NewEngine(nil, Policy{Default: ModeApprove}, clock.Wall)
	if _, err := eng.Approve(context.Background(), "rm-404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := eng.Get("rm-404"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get err = %v, want ErrNotFound", err)
	}
}

func TestSkippedWithoutController(t *testing.T) {
	eng := NewEngine(DefaultCatalog(), Policy{Default: ModeAuto}, clock.Wall)
	// abort-operation needs a controller; without one the outcome is
	// skipped, not failed.
	rs := eng.Trigger(context.Background(), Trigger{Operation: "op-1", CauseNode: "elb-unreachable"})
	if len(rs) != 1 {
		t.Fatalf("admitted %d remediations, want 1", len(rs))
	}
	if rs[0].State != StateSkipped || rs[0].Error != "" {
		t.Fatalf("remediation = %+v, want skipped without error", rs[0])
	}
}

// TestDryRunNeverMutatesCloud drives the real rollback/replace actions in
// dry-run mode against a real simulated cluster whose ASG has drifted to
// a rogue launch configuration, and asserts nothing in the cloud moved.
func TestDryRunNeverMutatesCloud(t *testing.T) {
	clk := clock.NewScaled(1000, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	cloud := simaws.New(clk, simaws.PaperProfile(), simaws.WithSeed(7))
	cloud.Start()
	defer cloud.Stop()
	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", 3, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Drift: a rogue LC takes over the ASG, as the *-changed faults do.
	lc, err := cloud.DescribeLaunchConfiguration(ctx, cluster.LCName)
	if err != nil {
		t.Fatal(err)
	}
	lc.Name = "rogue-lc"
	if err := cloud.CreateLaunchConfiguration(ctx, lc); err != nil {
		t.Fatal(err)
	}
	before, err := cloud.DescribeAutoScalingGroup(ctx, cluster.ASGName)
	if err != nil {
		t.Fatal(err)
	}
	if err := cloud.UpdateAutoScalingGroup(ctx, cluster.ASGName, "rogue-lc", before.Min, before.Max, before.Desired); err != nil {
		t.Fatal(err)
	}
	// Describe calls are eventually consistent; settle past the window so
	// the drift is visible, and so the post-trigger read below cannot be
	// served a stale pre-drift snapshot masquerading as a mutation.
	settle := func(want string) {
		t.Helper()
		deadline := clk.Now().Add(2 * time.Minute)
		for {
			asg, err := cloud.DescribeAutoScalingGroup(ctx, cluster.ASGName)
			if err == nil && asg.LaunchConfigName == want {
				return
			}
			if clk.Now().After(deadline) {
				t.Fatalf("ASG launch configuration never settled on %s", want)
			}
			_ = clk.Sleep(ctx, time.Second)
		}
	}
	settle("rogue-lc")

	eng := NewEngine(DefaultCatalog(), Policy{Default: ModeDryRun}, clk)
	target := Target{
		Cloud: cloud, ASGName: cluster.ASGName, ELBName: cluster.ELBName,
		NewLCName: cluster.LCName, ClusterSize: 3,
	}
	rs := eng.Trigger(ctx, Trigger{Operation: "op-1", CauseNode: "wrong-ami", Target: target})
	if len(rs) == 0 {
		t.Fatal("dry-run admitted no remediations")
	}
	for _, rm := range rs {
		if rm.State != StateDryRun {
			t.Fatalf("remediation %s state = %s, want dry-run", rm.ID, rm.State)
		}
	}
	// Let any (incorrect) mutation the dry-run might have made propagate
	// before reading the final state.
	_ = clk.Sleep(ctx, cloud.ConsistencyWindow()+time.Second)
	after, err := cloud.DescribeAutoScalingGroup(ctx, cluster.ASGName)
	if err != nil {
		t.Fatal(err)
	}
	if after.LaunchConfigName != "rogue-lc" {
		t.Fatalf("dry-run changed the ASG launch configuration to %s", after.LaunchConfigName)
	}
	beforeSet := fmt.Sprint(before.Instances)
	if got := fmt.Sprint(after.Instances); got != beforeSet {
		t.Fatalf("dry-run changed the instance set: %s -> %s", beforeSet, got)
	}
	for _, id := range after.Instances {
		inst, err := cloud.DescribeInstance(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Live() {
			t.Fatalf("dry-run terminated instance %s", id)
		}
	}
}

// TestConcurrentTriggerAndApprove races re-diagnosed triggers against
// operator approvals (run with -race): exactly one remediation must be
// admitted and the action must execute exactly once.
func TestConcurrentTriggerAndApprove(t *testing.T) {
	var runs atomic.Int32
	eng := NewEngine(countingCatalog(t, &runs), Policy{Default: ModeApprove}, clock.Wall)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng.Trigger(ctx, Trigger{Operation: "op-1", CauseNode: "wrong-ami"})
			for _, rm := range eng.List("op-1") {
				_, _ = eng.Approve(ctx, rm.ID)
			}
		}()
	}
	wg.Wait()
	if rs := eng.List("op-1"); len(rs) != 1 {
		t.Fatalf("concurrent triggers admitted %d remediations, want 1", len(rs))
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("action executed %d times under concurrency, want 1", got)
	}
}

// TestAuditTrailChainsToCause asserts the remediation.action entry cites
// the confirmed cause entry and the remediation.outcome entry chains all
// the way back to the originating log event.
func TestAuditTrailChainsToCause(t *testing.T) {
	clk := clock.NewScaled(1000, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	rec := flight.NewRecorder(clk, 0)
	op := rec.Op("op-1")
	logID := op.Record(flight.Entry{Kind: flight.KindLogEvent, Message: "ERROR: wrong ami"})
	detID := op.Record(flight.Entry{Kind: flight.KindDetection, Parents: []uint64{logID}})
	causeID := op.Record(flight.Entry{Kind: flight.KindCause, Parents: []uint64{detID}, Message: "wrong-ami"})

	var runs atomic.Int32
	eng := NewEngine(countingCatalog(t, &runs), Policy{Default: ModeAuto}, clk)
	rs := eng.Trigger(context.Background(), Trigger{
		Operation: "op-1", CauseNode: "wrong-ami", CausePath: "ft-asg-uses-ami:top/wrong-ami",
		CauseEntry: causeID, Flight: op,
	})
	if len(rs) != 1 {
		t.Fatalf("admitted %d remediations", len(rs))
	}
	rm := rs[0]
	if rm.ActionEntry == 0 || rm.OutcomeEntry == 0 {
		t.Fatalf("audit entries missing: %+v", rm)
	}
	tl := rec.Timeline("op-1")
	byID := make(map[uint64]flight.Entry)
	for _, e := range tl.Entries {
		byID[e.ID] = e
	}
	act := byID[rm.ActionEntry]
	if act.Kind != flight.KindRemediationAction || len(act.Parents) != 1 || act.Parents[0] != causeID {
		t.Fatalf("action entry = %+v, want parent %d", act, causeID)
	}
	if act.Attrs["path"] != "ft-asg-uses-ami:top/wrong-ami" {
		t.Fatalf("action entry path attr = %q", act.Attrs["path"])
	}
	out := byID[rm.OutcomeEntry]
	if out.Kind != flight.KindRemediationOutcome || len(out.Parents) != 1 || out.Parents[0] != rm.ActionEntry {
		t.Fatalf("outcome entry = %+v, want parent %d", out, rm.ActionEntry)
	}
	chain, ok := flight.ChainToLog(tl.Entries, rm.OutcomeEntry)
	if !ok {
		t.Fatal("remediation outcome does not chain to a log event")
	}
	if last := chain[len(chain)-1]; last.Kind != flight.KindLogEvent {
		t.Fatalf("chain terminal kind = %s, want log.event", last.Kind)
	}
	if len(chain) != 5 { // outcome -> action -> cause -> detection -> log
		t.Fatalf("chain length = %d, want 5", len(chain))
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"", ModeOff, true},
		{"off", ModeOff, true},
		{"dry-run", ModeDryRun, true},
		{"approve", ModeApprove, true},
		{"auto", ModeAuto, true},
		{"yolo", ModeOff, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestSuggestedPolicyHoldsEscalations(t *testing.T) {
	p := SuggestedPolicy(ModeAuto)
	if p.ModeFor(ClassConfig) != ModeAuto || p.ModeFor(ClassEscalation) != ModeApprove {
		t.Fatalf("policy = %+v", p)
	}
	if off := (Policy{}); off.Enabled() || off.ModeFor(ClassConfig) != ModeOff {
		t.Fatal("zero policy must be fully off")
	}
	if !SuggestedPolicy(ModeDryRun).Enabled() {
		t.Fatal("dry-run policy should count as enabled")
	}
}
