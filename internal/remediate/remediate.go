// Package remediate closes the diagnosis loop: where the paper (and this
// repo through the flight-recorder work) stops at a ranked, confirmed
// root cause, this package maps confirmed diagnosis-plan cause nodes to
// executable recovery actions against the simulated cloud and runs them
// under an operator policy.
//
// The design follows the recoverer-chain / self-healing-SOP shape of the
// related systems: a declarative catalog binds cause-node ids to actions
// (rollback launch configuration, re-register instances with the ELB,
// replace off-configuration instances, retry the failed step, abort the
// operation); a policy grades each action's fault class into one of three
// modes — auto (execute immediately), approve (hold for an operator),
// dry-run (record what would have run, touch nothing); idempotency keys
// guarantee a re-diagnosed cause never double-fires an action; and every
// decision is appended to the operation's flight-recorder evidence ring
// as remediation.action / remediation.outcome entries citing the
// confirmed cause's DAG path, so the audit trail chains detection →
// diagnosis → cause → action → outcome.
package remediate

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Mode is the policy decision applied to a remediation action.
type Mode string

// Policy modes. ModeOff disables remediation for a fault class entirely
// (no audit entries either); the zero Policy is all-off, so remediation
// is strictly opt-in.
const (
	ModeOff     Mode = "off"
	ModeDryRun  Mode = "dry-run"
	ModeApprove Mode = "approve"
	ModeAuto    Mode = "auto"
)

// ParseMode parses the flag/JSON form of a mode.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeOff, ModeDryRun, ModeApprove, ModeAuto:
		return Mode(s), nil
	case "":
		return ModeOff, nil
	default:
		return ModeOff, fmt.Errorf("remediate: unknown mode %q (want off, dry-run, approve or auto)", s)
	}
}

// Fault classes grading actions for the policy. Classes, not individual
// actions, carry modes: an operator reasons about "configuration
// rollbacks may run unattended, aborts need a human" rather than about
// every binding.
const (
	// ClassConfig covers configuration-drift repairs: rolling the group
	// back onto the intended launch configuration and replacing
	// instances launched off it.
	ClassConfig = "config"
	// ClassTraffic covers load-balancer membership repairs.
	ClassTraffic = "traffic"
	// ClassOperation covers operation-level recovery (retrying the
	// failed process step).
	ClassOperation = "operation"
	// ClassEscalation covers last-resort actions (aborting the
	// operation) that should usually be approved by a human.
	ClassEscalation = "escalation"
)

// Policy maps fault classes to modes.
type Policy struct {
	// Default applies to classes without an override.
	Default Mode `json:"default"`
	// ByClass overrides the default per fault class.
	ByClass map[string]Mode `json:"byClass,omitempty"`
}

// ModeFor resolves the mode for a fault class.
func (p Policy) ModeFor(class string) Mode {
	if m, ok := p.ByClass[class]; ok && m != "" {
		return m
	}
	if p.Default == "" {
		return ModeOff
	}
	return p.Default
}

// Enabled reports whether any class can fire at all.
func (p Policy) Enabled() bool {
	if p.Default != "" && p.Default != ModeOff {
		return true
	}
	for _, m := range p.ByClass {
		if m != "" && m != ModeOff {
			return true
		}
	}
	return false
}

// Action is one executable remediation bound to diagnosis-plan causes.
type Action struct {
	// Name identifies the action ("rollback-launch-config", ...).
	Name string `json:"name"`
	// Description is the operator-facing summary, also used as the
	// dry-run outcome detail.
	Description string `json:"description"`
	// Class is the fault class graded by the policy.
	Class string `json:"class"`
	// Causes are the diagnosis-plan cause-node base ids this action
	// binds to. Catalog sub-graphs shared across plans carry "-suffix"
	// variants of these ids; binding resolution is prefix-aware, exactly
	// like Diagnosis.HasCause.
	Causes []string `json:"causes"`
	// Run executes the action and returns an operator-facing detail
	// line. It must be idempotent: the engine's idempotency keys stop
	// double-fires from re-diagnosed causes, but approve-mode actions
	// can run long after the triggering diagnosis.
	Run func(ctx context.Context, t *Target) (string, error) `json:"-"`
}

// Binding is one resolved (action, cause-base) pair for a concrete
// diagnosis cause node.
type Binding struct {
	// Action is the bound action.
	Action *Action
	// Base is the catalog cause id that matched the concrete node.
	Base string
}

// Catalog is the declarative action↔cause binding set. Declaration order
// is execution order: when one confirmed cause binds several actions
// (restore the launch configuration, then replace instances launched off
// it, then retry the step), they fire in the order they were added.
type Catalog struct {
	actions []*Action
	byName  map[string]*Action
	manual  map[string]string // cause base id -> reason no action is bound
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]*Action), manual: make(map[string]string)}
}

// Add registers an action. Names must be unique and every action needs a
// class, at least one cause binding, and a Run implementation.
func (c *Catalog) Add(a Action) error {
	if a.Name == "" || a.Class == "" || len(a.Causes) == 0 || a.Run == nil {
		return fmt.Errorf("remediate: action needs name, class, causes and run (got %+v)", a.Name)
	}
	if _, dup := c.byName[a.Name]; dup {
		return fmt.Errorf("remediate: duplicate action %q", a.Name)
	}
	cp := a
	c.actions = append(c.actions, &cp)
	c.byName[a.Name] = &cp
	return nil
}

// MustAdd is Add, panicking on error (catalog construction is static).
func (c *Catalog) MustAdd(a Action) {
	if err := c.Add(a); err != nil {
		panic(err)
	}
}

// MarkManual records that a cause deliberately has no bound action: the
// reason is surfaced by lint (rule RM002 requires every rolling-upgrade
// cause to bind an action or carry a marker) and by operator tooling.
func (c *Catalog) MarkManual(causeBase, reason string) {
	c.manual[causeBase] = reason
}

// Actions returns the registered actions in declaration order.
func (c *Catalog) Actions() []*Action {
	out := make([]*Action, len(c.actions))
	copy(out, c.actions)
	return out
}

// Action returns the named action, or nil.
func (c *Catalog) Action(name string) *Action { return c.byName[name] }

// Manual returns the explicit no-action markers, sorted by cause id.
func (c *Catalog) Manual() map[string]string {
	out := make(map[string]string, len(c.manual))
	for k, v := range c.manual {
		out[k] = v
	}
	return out
}

// ManualReason returns the no-action marker covering the concrete cause
// node (prefix-aware), and whether one exists.
func (c *Catalog) ManualReason(nodeID string) (string, bool) {
	for base, reason := range c.manual {
		if Matches(nodeID, base) {
			return reason, true
		}
	}
	return "", false
}

// BindingsFor resolves the actions bound to a concrete cause node id, in
// declaration order. Matching is prefix-aware: the catalog binds base
// ids, compiled plans suffix shared-subtree causes.
func (c *Catalog) BindingsFor(nodeID string) []Binding {
	var out []Binding
	for _, a := range c.actions {
		for _, base := range a.Causes {
			if Matches(nodeID, base) {
				out = append(out, Binding{Action: a, Base: base})
				break
			}
		}
	}
	return out
}

// CauseBases returns every cause base id bound by some action, sorted.
func (c *Catalog) CauseBases() []string {
	seen := make(map[string]bool)
	for _, a := range c.actions {
		for _, base := range a.Causes {
			seen[base] = true
		}
	}
	out := make([]string, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Matches reports whether the concrete cause node id is the base id or a
// suffixed variant of it ("launch-ami-unavailable-asg1"). Lint uses the
// same predicate to resolve catalog bindings against plan causes.
func Matches(nodeID, base string) bool {
	return nodeID == base || strings.HasPrefix(nodeID, base+"-")
}

// SuggestedPolicy grades the default catalog's classes for a requested
// base mode: config, traffic and operation repairs take the base mode,
// while escalations (abort) never run unattended — under an auto base
// they are held for approval.
func SuggestedPolicy(base Mode) Policy {
	p := Policy{Default: base}
	if base == ModeAuto {
		p.ByClass = map[string]Mode{ClassEscalation: ModeApprove}
	}
	return p
}
