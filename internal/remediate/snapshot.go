package remediate

import (
	"fmt"
	"strconv"
	"strings"

	"poddiagnosis/internal/obs/flight"
)

// Snapshot transfer: federation handoff moves an operation's
// remediation ledger — including its idempotency keys — onto the
// adopting manager's engine, so a cause re-confirmed after handoff can
// never fire the same action twice.

// Export returns copies of one operation's remediation records for
// snapshot transfer. It is List under a name that spells out the
// contract: the copies are self-contained audit records (the
// unexported action/target/ring bindings do not travel and are rebound
// by Import).
func (e *Engine) Export(operation string) []Remediation {
	return e.List(operation)
}

// Import re-admits remediation records exported from another engine,
// preserving idempotency keys and audit fields. Records are rebound to
// this engine's catalog by action name, and to the given target and
// evidence ring. Semantics on arrival:
//
//   - a record whose idempotency key already exists here is skipped
//     (the local record wins — it reflects what this engine actually
//     did);
//   - executing records were interrupted mid-flight by the handoff;
//     they finish as failed (with an outcome audit entry) rather than
//     silently re-running — remediation is at-most-once across a
//     handoff, and the retained key stops a re-diagnosed cause from
//     firing the action again;
//   - pending records whose action is missing from this catalog finish
//     as skipped (there is nothing to approve into).
//
// Imported ids are kept when free so cross-member audit trails line
// up, and the engine's sequence is advanced past every kept id.
// Returns the number of records imported.
func (e *Engine) Import(recs []Remediation, target Target, fl *flight.Op) int {
	imported := 0
	var interrupted, orphaned []*Remediation
	for _, rec := range recs {
		r := rec
		r.action = e.catalog.Action(r.Action)
		r.target = target
		r.fl = fl
		e.mu.Lock()
		if _, dup := e.byKey[r.IdempotencyKey]; dup {
			e.mu.Unlock()
			mDeduped.Inc()
			continue
		}
		if _, taken := e.byID[r.ID]; taken || r.ID == "" {
			e.seq++
			r.ID = fmt.Sprintf("rm-%d", e.seq)
		} else if n := seqOf(r.ID); n > e.seq {
			e.seq = n
		}
		e.byKey[r.IdempotencyKey] = &r
		e.byID[r.ID] = &r
		e.byOp[r.Operation] = append(e.byOp[r.Operation], &r)
		e.mu.Unlock()
		imported++
		switch {
		case r.State == StateExecuting:
			interrupted = append(interrupted, &r)
		case r.State == StatePending && r.action == nil:
			orphaned = append(orphaned, &r)
		}
	}
	for _, r := range interrupted {
		e.finish(r, StateFailed, "interrupted by federation handoff", nil)
	}
	for _, r := range orphaned {
		e.finish(r, StateSkipped, "skipped: action not in adopting catalog", nil)
	}
	return imported
}

// seqOf parses the numeric suffix of an "rm-N" id (0 when malformed).
func seqOf(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "rm-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}
