package remediate

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/obs/flight"
)

var (
	mTriggered = obs.Default.CounterVec("pod_remediation_actions_total",
		"Remediation actions admitted, by terminal (or pending) state.", "state")
	mDeduped = obs.Default.Counter("pod_remediation_deduped_total",
		"Remediation triggers suppressed by an existing idempotency key.")
)

// State is a remediation's lifecycle state.
type State string

// Remediation states. Pending and executing are transient; the rest are
// terminal.
const (
	StatePending   State = "pending"
	StateExecuting State = "executing"
	StateExecuted  State = "executed"
	StateFailed    State = "failed"
	StateDryRun    State = "dry-run"
	StateSkipped   State = "skipped"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateExecuted || s == StateFailed || s == StateDryRun || s == StateSkipped
}

// Remediation is one admitted (action, confirmed-cause) pairing and its
// audit trail.
type Remediation struct {
	// ID is engine-unique ("rm-7").
	ID string `json:"id"`
	// Operation is the monitoring session the cause was confirmed for.
	Operation string `json:"operation"`
	// Action names the catalog action.
	Action string `json:"action"`
	// Class is the action's fault class; Mode the policy decision that
	// admitted it.
	Class string `json:"class"`
	Mode  Mode   `json:"mode"`
	// CauseNode / CausePath identify the confirmed cause: the concrete
	// plan node id and its plan-qualified DAG path
	// ("planID:entry/…/cause").
	CauseNode string `json:"causeNode"`
	CausePath string `json:"causePath,omitempty"`
	// IdempotencyKey dedupes re-diagnosed causes: operation | action |
	// matched cause base.
	IdempotencyKey string `json:"idempotencyKey"`
	// State, Detail and Error describe progress and outcome.
	State  State  `json:"state"`
	Detail string `json:"detail,omitempty"`
	Error  string `json:"error,omitempty"`
	// CreatedAt / ResolvedAt are simulated timestamps.
	CreatedAt  time.Time `json:"createdAt"`
	ResolvedAt time.Time `json:"resolvedAt,omitempty"`
	// ActionEntry / OutcomeEntry are the flight-recorder audit entry
	// ids (0 when the operation has no recorder ring).
	ActionEntry  uint64 `json:"actionEntry,omitempty"`
	OutcomeEntry uint64 `json:"outcomeEntry,omitempty"`

	action *Action
	target Target
	fl     *flight.Op
}

// Trigger describes one confirmed cause offered to the engine.
type Trigger struct {
	// Operation is the monitoring session id.
	Operation string
	// CauseNode is the confirmed cause's concrete node id; CausePath its
	// plan-qualified DAG path; CauseEntry the flight-recorder id of the
	// diagnosis.cause entry (0 if none).
	CauseNode  string
	CausePath  string
	CauseEntry uint64
	// StepID is the process step the detection blamed, if any.
	StepID string
	// Flight is the operation's recorder ring (nil-safe).
	Flight *flight.Op
	// Target is the environment actions run against.
	Target Target
}

// Sentinel errors for Approve.
var (
	// ErrNotFound marks an unknown or garbage-collected remediation id.
	ErrNotFound = errors.New("remediate: remediation not found")
	// ErrNotPending marks an approve of a remediation that is not
	// awaiting approval (double-approve, auto-executed, dry-run).
	ErrNotPending = errors.New("remediate: remediation not pending")
)

// Engine admits remediations for confirmed causes under a policy and
// executes them, keeping the append-only audit trail.
type Engine struct {
	catalog *Catalog
	policy  Policy
	clk     clock.Clock

	mu    sync.Mutex
	seq   uint64
	byID  map[string]*Remediation
	byKey map[string]*Remediation
	byOp  map[string][]*Remediation
}

// NewEngine builds an engine over a catalog and policy. A nil catalog
// uses DefaultCatalog; a nil clock the wall clock.
func NewEngine(cat *Catalog, policy Policy, clk clock.Clock) *Engine {
	if cat == nil {
		cat = DefaultCatalog()
	}
	if clk == nil {
		clk = clock.Wall
	}
	return &Engine{
		catalog: cat,
		policy:  policy,
		clk:     clk,
		byID:    make(map[string]*Remediation),
		byKey:   make(map[string]*Remediation),
		byOp:    make(map[string][]*Remediation),
	}
}

// Catalog returns the engine's action catalog.
func (e *Engine) Catalog() *Catalog { return e.catalog }

// Policy returns the engine's policy.
func (e *Engine) Policy() Policy { return e.policy }

// Trigger admits remediations for one confirmed cause: every bound
// action whose class mode is not off gets a remediation — executed
// immediately (auto), held (approve), or recorded-only (dry-run) — unless
// its idempotency key already fired for this operation. Returns the
// remediations admitted by THIS call (re-fires return nil).
func (e *Engine) Trigger(ctx context.Context, tr Trigger) []Remediation {
	var admitted []*Remediation
	for _, b := range e.catalog.BindingsFor(tr.CauseNode) {
		mode := e.policy.ModeFor(b.Action.Class)
		if mode == ModeOff {
			continue
		}
		key := tr.Operation + "|" + b.Action.Name + "|" + b.Base
		e.mu.Lock()
		if _, dup := e.byKey[key]; dup {
			e.mu.Unlock()
			mDeduped.Inc()
			continue
		}
		e.seq++
		r := &Remediation{
			ID:             fmt.Sprintf("rm-%d", e.seq),
			Operation:      tr.Operation,
			Action:         b.Action.Name,
			Class:          b.Action.Class,
			Mode:           mode,
			CauseNode:      tr.CauseNode,
			CausePath:      tr.CausePath,
			IdempotencyKey: key,
			State:          StatePending,
			CreatedAt:      e.clk.Now(),
			action:         b.Action,
			target:         tr.Target,
			fl:             tr.Flight,
		}
		r.target.StepID = tr.StepID
		if mode == ModeAuto {
			r.State = StateExecuting
		}
		e.byKey[key] = r
		e.byID[r.ID] = r
		e.byOp[tr.Operation] = append(e.byOp[tr.Operation], r)
		e.mu.Unlock()

		// The record is published in the maps already, so entry ids are
		// written back under the lock (a concurrent List must not observe
		// a torn write).
		actionEntry := r.fl.Record(flight.Entry{
			Kind:    flight.KindRemediationAction,
			Parents: parents(tr.CauseEntry),
			Message: fmt.Sprintf("remediation %s: %s (%s) for cause %s", r.ID, r.Action, mode, tr.CauseNode),
			Attrs: map[string]string{
				"remediation": r.ID,
				"action":      r.Action,
				"class":       r.Class,
				"mode":        string(mode),
				"cause":       tr.CauseNode,
				"path":        tr.CausePath,
			},
		})
		e.mu.Lock()
		r.ActionEntry = actionEntry
		e.mu.Unlock()
		switch mode {
		case ModeDryRun:
			e.finish(r, StateDryRun, "dry-run: "+r.action.Description, nil)
		case ModeAuto:
			e.run(ctx, r)
		default: // ModeApprove: stays pending until Approve.
			mTriggered.With(string(StatePending)).Inc()
		}
		admitted = append(admitted, r)
	}
	out := make([]Remediation, len(admitted))
	for i, r := range admitted {
		out[i] = e.snapshot(r)
	}
	return out
}

// Approve executes a pending remediation. A double approve returns
// ErrNotPending; an unknown or garbage-collected id ErrNotFound.
func (e *Engine) Approve(ctx context.Context, id string) (Remediation, error) {
	e.mu.Lock()
	r, ok := e.byID[id]
	if !ok {
		e.mu.Unlock()
		return Remediation{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.State != StatePending {
		state := r.State
		e.mu.Unlock()
		return e.snapshot(r), fmt.Errorf("%w: %s is %s", ErrNotPending, id, state)
	}
	r.State = StateExecuting
	e.mu.Unlock()
	e.run(ctx, r)
	return e.snapshot(r), nil
}

// run executes the action and records the outcome. The caller must have
// transitioned the remediation to StateExecuting, which guarantees a
// single executor.
func (e *Engine) run(ctx context.Context, r *Remediation) {
	detail, err := r.action.Run(ctx, &r.target)
	switch {
	case err == nil:
		e.finish(r, StateExecuted, detail, nil)
	case errors.Is(err, ErrNoController):
		e.finish(r, StateSkipped, "skipped: "+err.Error(), nil)
	default:
		e.finish(r, StateFailed, detail, err)
	}
}

// finish commits a terminal state and appends the remediation.outcome
// audit entry chained to the action entry.
func (e *Engine) finish(r *Remediation, state State, detail string, err error) {
	e.mu.Lock()
	r.State = state
	r.Detail = detail
	if err != nil {
		r.Error = err.Error()
	}
	r.ResolvedAt = e.clk.Now()
	actionEntry := r.ActionEntry
	e.mu.Unlock()
	mTriggered.With(string(state)).Inc()

	msg := fmt.Sprintf("remediation %s: %s %s", r.ID, r.Action, state)
	attrs := map[string]string{
		"remediation": r.ID,
		"action":      r.Action,
		"state":       string(state),
		"cause":       r.CauseNode,
		"path":        r.CausePath,
	}
	if detail != "" {
		attrs["detail"] = detail
	}
	if err != nil {
		attrs["error"] = err.Error()
	}
	outcomeEntry := r.fl.Record(flight.Entry{
		Kind:    flight.KindRemediationOutcome,
		Parents: parents(actionEntry),
		Message: msg,
		Attrs:   attrs,
	})
	e.mu.Lock()
	r.OutcomeEntry = outcomeEntry
	e.mu.Unlock()
}

// Get returns one remediation by id.
func (e *Engine) Get(id string) (Remediation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.byID[id]
	if !ok {
		return Remediation{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *r, nil
}

// List returns the remediations admitted for one operation, in admission
// order.
func (e *Engine) List(operation string) []Remediation {
	e.mu.Lock()
	defer e.mu.Unlock()
	rs := e.byOp[operation]
	out := make([]Remediation, len(rs))
	for i, r := range rs {
		out[i] = *r
	}
	return out
}

// All returns every remediation, sorted by id sequence.
func (e *Engine) All() []Remediation {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Remediation, 0, len(e.byID))
	for _, r := range e.byID {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].CreatedAt.Before(out[j].CreatedAt) || (out[i].CreatedAt.Equal(out[j].CreatedAt) && out[i].ID < out[j].ID)
	})
	return out
}

// Drop forgets an operation's remediations (manager GC). Pending
// approvals become unapprovable: ErrNotFound, matching the vanished
// operation.
func (e *Engine) Drop(operation string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range e.byOp[operation] {
		delete(e.byID, r.ID)
		delete(e.byKey, r.IdempotencyKey)
	}
	delete(e.byOp, operation)
}

// snapshot returns a locked copy for callers outside the engine.
func (e *Engine) snapshot(r *Remediation) Remediation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return *r
}

func parents(id uint64) []uint64 {
	if id == 0 {
		return nil
	}
	return []uint64{id}
}
