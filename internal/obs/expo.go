package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE comments followed by one line per
// series, families and series in lexicographic order for deterministic
// output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Expose returns the exposition as a string.
func (r *Registry) Expose() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

// write renders one family.
func (f *family) write(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for i, k := range keys {
		var values []string
		if k != "" || len(f.labels) > 0 {
			values = strings.Split(k, labelSep)
		}
		switch s := series[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(s.Value()))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(s.Value()))
		case *Histogram:
			cum := uint64(0)
			for bi, bound := range s.bounds {
				cum += s.counts[bi].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n",
					f.name, labelString(f.labels, values, "le", formatFloat(bound)), cum)
			}
			cum += s.counts[len(s.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(s.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), s.Count())
		}
	}
}

// labelString renders {k="v",...}, optionally appending one extra pair
// (used for histogram le labels). Empty label sets render as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
