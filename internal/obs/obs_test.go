package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestConcurrentCounterAndHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	cv := r.CounterVec("test_ops_by_kind_total", "ops by kind", "kind")
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	g := r.Gauge("test_depth", "depth")

	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			kind := []string{"a", "b"}[w%2]
			for i := 0; i < each; i++ {
				c.Inc()
				cv.With(kind).Add(2)
				h.Observe(0.05)
				g.Add(1)
				g.Dec()
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %v, want %d", got, workers*each)
	}
	if got := cv.With("a").Value() + cv.With("b").Value(); got != workers*each*2 {
		t.Errorf("counter vec total = %v, want %d", got, workers*each*2)
	}
	if got := h.Count(); got != workers*each {
		t.Errorf("histogram count = %d, want %d", got, workers*each)
	}
	if got, want := h.Sum(), 0.05*workers*each; got < want*0.999 || got > want*1.001 {
		t.Errorf("histogram sum = %v, want ~%v", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("pod_events_total", "Events consumed.").Add(42)
	cv := r.CounterVec("pod_calls_total", "API calls by op.", "op", "code")
	cv.With("Describe", "ok").Add(3)
	cv.With("Create", `quo"te`).Inc()
	r.Gauge("pod_queue_depth", "Queue depth.").Set(7.5)
	h := r.Histogram("pod_check_seconds", "Check latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	want := strings.Join([]string{
		`# HELP pod_calls_total API calls by op.`,
		`# TYPE pod_calls_total counter`,
		`pod_calls_total{op="Create",code="quo\"te"} 1`,
		`pod_calls_total{op="Describe",code="ok"} 3`,
		`# HELP pod_check_seconds Check latency.`,
		`# TYPE pod_check_seconds histogram`,
		`pod_check_seconds_bucket{le="0.01"} 1`,
		`pod_check_seconds_bucket{le="0.1"} 2`,
		`pod_check_seconds_bucket{le="+Inf"} 3`,
		`pod_check_seconds_sum 2.055`,
		`pod_check_seconds_count 3`,
		`# HELP pod_events_total Events consumed.`,
		`# TYPE pod_events_total counter`,
		`pod_events_total 42`,
		`# HELP pod_queue_depth Queue depth.`,
		`# TYPE pod_queue_depth gauge`,
		`pod_queue_depth 7.5`,
		``,
	}, "\n")
	if got := r.Expose(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestIdempotentDeclaration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	if a != b {
		t.Error("redeclaring a counter returned a different instrument")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting redeclaration did not panic")
		}
	}()
	r.Gauge("same_total", "help")
}

func TestSpanParentChildLinkage(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.StartSpan(context.Background(), "walk")
	root.SetAttr("instance", "task-1")
	ctx2, child := tr.StartSpan(ctx, "test")
	_, grandchild := tr.StartSpan(ctx2, "api")
	grandchild.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	w, c, g := byName["walk"], byName["test"], byName["api"]
	if w.ParentID != 0 {
		t.Errorf("root has parent %d", w.ParentID)
	}
	if c.ParentID != w.SpanID || g.ParentID != c.SpanID {
		t.Errorf("parent linkage broken: walk=%d test.parent=%d test=%d api.parent=%d",
			w.SpanID, c.ParentID, c.SpanID, g.ParentID)
	}
	if c.TraceID != w.TraceID || g.TraceID != w.TraceID {
		t.Error("children did not inherit the trace id")
	}
	if w.Attrs["instance"] != "task-1" {
		t.Errorf("attr lost: %v", w.Attrs)
	}
	if got := tr.Trace(w.TraceID); len(got) != 3 || got[0].Name != "walk" {
		t.Errorf("Trace() = %v", got)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		_, s := tr.StartSpan(context.Background(), "s")
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 16 {
		t.Fatalf("got %d spans, want 16", len(spans))
	}
	if spans[0].SpanID != 25 || spans[15].SpanID != 40 {
		t.Errorf("ring kept wrong window: first=%d last=%d", spans[0].SpanID, spans[15].SpanID)
	}
}

func TestNilSpanSafety(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x")
	s.SetAttr("k", "v") // must not panic
	s.End()
	if SpanFromContext(ctx) != nil {
		t.Error("nil tracer leaked a span into the context")
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	tr := NewTracer(16)
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.End()
	root.End()

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Errorf("metrics body: %q", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type: %q", ct)
	}

	rec = httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	var body struct {
		Spans []SpanData `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(body.Spans))
	}
}
