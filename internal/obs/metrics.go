// Package obs is the observability layer of the POD-Diagnosis
// reproduction: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms) exposed in the Prometheus text exposition
// format, and a lightweight span tracer whose completed spans land in a
// ring buffer queryable as JSON.
//
// The package is stdlib-only by design — the repo's hard constraint is no
// third-party dependencies — but the exposition format is wire-compatible
// with Prometheus scrapers, and the span model (trace id, span id, parent
// id, attributes) maps one-to-one onto OpenTelemetry semantics should a
// real exporter ever be bolted on.
//
// Like Prometheus' default registerer, obs ships a process-global Default
// registry and Default tracer; instrumented packages declare their
// instruments as package-level variables against them, so every binary
// that links a component automatically exposes its metric families.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds (seconds),
// spanning sub-millisecond hot paths to multi-second diagnosis walks.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// metricType enumerates the exposition families.
type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. It is safe for concurrent use. Creating
// the same instrument twice returns the existing one, so package-level
// instrument variables may be declared independently by any number of
// components sharing a registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family with its labelled series.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any // joined label values -> *Counter | *Gauge | *Histogram
}

// labelSep joins label values into series keys; it cannot appear in
// well-formed label values.
const labelSep = "\xff"

// family returns the named family, creating it on first use. Redeclaring
// a family with a different type or label set is a programming error and
// panics, mirroring Prometheus registration semantics.
func (r *Registry) family(name, help string, typ metricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: conflicting redeclaration of metric %q", name))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]any),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the series for the label values, creating it with mk.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = mk()
	f.series[key] = s
	return s
}

// ---- counters ----

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by v; negative deltas panic.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter cannot decrease")
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (in declaration
// order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// Counter declares (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, nil, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec declares (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, typeCounter, labels, nil)}
}

// ---- gauges ----

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments by v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// Gauge declares (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, nil, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec declares (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, typeGauge, labels, nil)}
}

// ---- histograms ----

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound with v <= bound; len(bounds) is the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// Histogram declares (or fetches) an unlabelled histogram. Nil buckets
// mean DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, typeHistogram, nil, normBuckets(buckets))
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec declares (or fetches) a labelled histogram family. Nil
// buckets mean DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, typeHistogram, labels, normBuckets(buckets))}
}

// normBuckets copies, sorts and defaults histogram bounds.
func normBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefBuckets
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	return out
}

// addFloat atomically adds v to float64 bits stored in u.
func addFloat(u *atomic.Uint64, v float64) {
	for {
		old := u.Load()
		newBits := math.Float64bits(math.Float64frombits(old) + v)
		if u.CompareAndSwap(old, newBits) {
			return
		}
	}
}
