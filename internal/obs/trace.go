package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"poddiagnosis/internal/clock"
)

// SpanData is one completed (or in-flight, when snapshotted) span.
type SpanData struct {
	// TraceID groups a tree of spans; it equals the root span's id.
	TraceID uint64 `json:"traceId"`
	// SpanID is unique per tracer.
	SpanID uint64 `json:"spanId"`
	// ParentID is the enclosing span's id; 0 for roots.
	ParentID uint64 `json:"parentId,omitempty"`
	// Name identifies the operation, e.g. "diagnosis.walk".
	Name string `json:"name"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// DurationUS is the wall-clock duration in microseconds. Spans measure
	// real compute cost; simulated-clock durations, where relevant, ride
	// along as attributes.
	DurationUS int64 `json:"durationUs"`
	// Attrs are free-form key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is a live span. End it exactly once; SetAttr after End is ignored.
type Span struct {
	t *Tracer

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Tracer creates spans and retains the most recent completed ones in a
// ring buffer. It is safe for concurrent use.
type Tracer struct {
	ids atomic.Uint64

	mu   sync.Mutex
	buf  []SpanData
	next int
	full bool
}

// NewTracer returns a tracer retaining up to capacity completed spans
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{buf: make([]SpanData, capacity)}
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// StartSpan opens a span named name as a child of the span carried by
// ctx (if any) and returns a derived context carrying the new span. A nil
// tracer returns a no-op span, so instrumentation never needs nil checks.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	id := t.ids.Add(1)
	data := SpanData{SpanID: id, TraceID: id, Name: name, Start: clock.Wall.Now()}
	if parent, ok := ctx.Value(ctxKey{}).(*Span); ok && parent != nil {
		// SpanID and TraceID are immutable after creation; no lock needed.
		data.ParentID = parent.data.SpanID
		data.TraceID = parent.data.TraceID
	}
	s := &Span{t: t, data: data}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ID returns the span's tracer-unique id (0 for a nil span). SpanID is
// immutable after creation, so no lock is needed.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.SpanID
}

// TraceID returns the id of the trace the span belongs to (0 for nil).
// TraceID is immutable after creation, so no lock is needed.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.data.TraceID
}

// SetAttr annotates the span. Safe on nil and ended spans (no-op).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
}

// End closes the span and records it into the tracer's ring buffer. Safe
// on nil spans; repeated calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.DurationUS = clock.Wall.Since(s.data.Start).Microseconds()
	data := s.data
	s.mu.Unlock()
	s.t.record(data)
}

// record appends one completed span to the ring.
func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	t.buf[t.next] = d
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the retained completed spans, oldest first.
func (t *Tracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanData(nil), t.buf[:t.next]...)
	}
	out := make([]SpanData, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Trace returns the retained spans of one trace, parents before children
// (by start time, then span id).
func (t *Tracer) Trace(traceID uint64) []SpanData {
	all := t.Spans()
	out := all[:0:0]
	for _, s := range all {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Resize replaces the ring with one of the given capacity (minimum 16),
// discarding retained spans. The id sequence keeps advancing, so spans
// in flight across a resize still record unique ids.
func (t *Tracer) Resize(capacity int) {
	if capacity < 16 {
		capacity = 16
	}
	t.mu.Lock()
	t.buf = make([]SpanData, capacity)
	t.next = 0
	t.full = false
	t.mu.Unlock()
}

// Reset discards all retained spans (the id sequence keeps advancing).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.next = 0
	t.full = false
	t.mu.Unlock()
}
