package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// TracesHandler serves the tracer's retained spans as JSON:
//
//	GET /traces              -> {"spans": [...]} oldest first
//	GET /traces?trace=ID     -> spans of one trace, parents first
//	GET /traces?op=ID        -> spans of the traces touching one operation
//	GET /traces?limit=N      -> at most the newest N spans
//
// The op filter keeps every span of every trace that contains at least
// one span whose "op" attribute equals the given process/operation id,
// so a single operation's work can be pulled without dumping the ring.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var spans []SpanData
		if idStr := req.URL.Query().Get("trace"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusBadRequest)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "invalid trace id"})
				return
			}
			spans = t.Trace(id)
		} else {
			spans = t.Spans()
		}
		if op := req.URL.Query().Get("op"); op != "" {
			traces := make(map[uint64]bool)
			for _, s := range spans {
				if s.Attrs["op"] == op {
					traces[s.TraceID] = true
				}
			}
			kept := spans[:0:0]
			for _, s := range spans {
				if traces[s.TraceID] {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		if limStr := req.URL.Query().Get("limit"); limStr != "" {
			if lim, err := strconv.Atoi(limStr); err == nil && lim >= 0 && lim < len(spans) {
				spans = spans[len(spans)-lim:]
			}
		}
		if spans == nil {
			spans = []SpanData{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"spans": spans})
	})
}
