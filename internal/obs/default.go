package obs

import "context"

// Default is the process-global metrics registry. Instrumented packages
// declare their instruments against it at init time, so any binary that
// links a component exposes that component's metric families.
var Default = NewRegistry()

// DefaultTracer is the process-global span tracer.
var DefaultTracer = NewTracer(4096)

// StartSpan opens a span on the default tracer as a child of the span
// carried by ctx, returning a derived context and the span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return DefaultTracer.StartSpan(ctx, name)
}
