// Package flight implements the causal flight recorder: a per-operation
// bounded ring of causally-linked evidence entries spanning the whole
// monitoring plane, from raw log events through conformance verdicts and
// detections to fault-tree test executions and confirmed causes.
//
// Every entry carries a recorder-unique ID plus the IDs of the entries
// that caused it, so a confirmed cause can be walked back to the exact
// log event that triggered the diagnosis. Rings are bounded per
// operation (oldest entries are overwritten, with a drop counter) and
// dropped together with session retention, so the recorder's memory is
// O(operations x capacity) regardless of run length.
package flight

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/obs"
)

// Kind classifies a timeline entry. Only the registered kinds below are
// valid; podlint rule GO005 rejects call sites that invent new strings.
type Kind string

// Registered entry kinds, in causal pipeline order.
const (
	// KindLogEvent is a raw bus event routed to an operation.
	KindLogEvent Kind = "log.event"
	// KindStreamGap marks a reorder-buffer gap that flipped the
	// operation into Degraded mode.
	KindStreamGap Kind = "stream.gap"
	// KindConformance is a conformance-check verdict for one log line.
	KindConformance Kind = "conformance.verdict"
	// KindAssertion is an on-line assertion evaluation result.
	KindAssertion Kind = "assertion.result"
	// KindDetection is an admitted detection (an error worth diagnosing).
	KindDetection Kind = "detection"
	// KindDiagnosis is one fault-tree diagnosis run.
	KindDiagnosis Kind = "diagnosis.run"
	// KindTest is one resilience-wrapped on-demand test execution.
	KindTest Kind = "diagnosis.test"
	// KindCause is a confirmed root cause committed by a diagnosis run.
	KindCause Kind = "diagnosis.cause"
	// KindRemediationAction is a remediation action admitted for a
	// confirmed cause (fired, pending approval, or dry-run); it cites
	// the cause's plan path and chains to the cause entry.
	KindRemediationAction Kind = "remediation.action"
	// KindRemediationOutcome is the terminal result of a remediation
	// action (executed, failed, dry-run, or skipped), chained to its
	// remediation.action entry.
	KindRemediationOutcome Kind = "remediation.outcome"
	// KindHandoff marks a federation handoff: the operation's session
	// state — this ring included — was restored onto another manager
	// after its previous owner died or the member ring rebalanced. Its
	// parents are the restored instances' last log-event entries, so
	// post-handoff evidence chains walk through it back to pre-handoff
	// log events.
	KindHandoff Kind = "federation.handoff"
)

// Kinds returns every registered kind, in causal pipeline order.
func Kinds() []Kind {
	return []Kind{
		KindLogEvent, KindStreamGap, KindConformance, KindAssertion,
		KindDetection, KindDiagnosis, KindTest, KindCause,
		KindRemediationAction, KindRemediationOutcome, KindHandoff,
	}
}

// KnownKind reports whether k is a registered kind.
func KnownKind(k Kind) bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// Entry is one causally-linked record in an operation's timeline.
type Entry struct {
	// ID is recorder-unique and monotonic, so within one operation the
	// ring's insertion order is also ID order.
	ID uint64 `json:"id"`
	// Parents are the IDs of the entries that caused this one. A raw
	// log event has no parents; everything else should have at least
	// one, terminating the chain at a log event or stream gap.
	Parents []uint64 `json:"parents,omitempty"`
	// Kind classifies the entry (see Kinds).
	Kind Kind `json:"kind"`
	// At is the simulated time the entry was recorded.
	At time.Time `json:"at"`
	// Seq is the bus per-stream sequence number of the underlying log
	// event, when the entry wraps one.
	Seq uint64 `json:"seq,omitempty"`
	// Cause is the bus causality ID stamped on the underlying event.
	Cause uint64 `json:"cause,omitempty"`
	// SpanID links the entry to the obs tracer span it was recorded
	// under, tying timelines and traces together.
	SpanID uint64 `json:"spanId,omitempty"`
	// Message is a one-line human-readable summary.
	Message string `json:"message,omitempty"`
	// Attrs carries structured detail (step, check, retries, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Timeline is the ordered, causally-linked evidence chain of one
// operation, as returned by Recorder.Timeline and the REST endpoint.
type Timeline struct {
	Operation string  `json:"operation"`
	Entries   []Entry `json:"entries"`
	// Dropped counts entries overwritten by the bounded ring; nonzero
	// means old parents may be missing from Entries.
	Dropped uint64 `json:"dropped,omitempty"`
}

var (
	mEntries = obs.Default.CounterVec("pod_flight_entries_total",
		"Flight-recorder entries recorded, by kind.", "kind")
	mDropped = obs.Default.Counter("pod_flight_dropped_total",
		"Flight-recorder entries overwritten by per-operation ring bounds.")
	mOps = obs.Default.Gauge("pod_flight_operations",
		"Operations currently tracked by the flight recorder.")
)

// mEntriesFor caches each registered kind's counter series: Record sits
// on the per-line ingest hot path and must not pay a labeled-vec lookup
// (and its variadic allocation) per entry.
var mEntriesFor = func() map[Kind]*obs.Counter {
	ks := Kinds()
	m := make(map[Kind]*obs.Counter, len(ks))
	for _, k := range ks {
		m[k] = mEntries.With(string(k))
	}
	return m
}()

// DefaultCapacity is the per-operation ring size used when the manager
// config leaves FlightCapacity zero.
const DefaultCapacity = 256

// minCapacity keeps rings large enough to hold at least one full
// detection->cause chain even under misconfiguration.
const minCapacity = 16

// Recorder owns the per-operation rings. All methods are safe for
// concurrent use; a nil *Recorder is a valid no-op recorder (every
// lookup returns a nil *Op, whose Record is itself a no-op), so call
// sites never branch on whether recording is enabled.
type Recorder struct {
	clk      clock.Clock
	capacity int
	ids      atomic.Uint64
	mu       sync.RWMutex
	ops      map[string]*Op
}

// NewRecorder returns a recorder stamping entry times from clk with the
// given per-operation ring capacity (0 means DefaultCapacity, floored
// at a small minimum).
func NewRecorder(clk clock.Clock, perOpCapacity int) *Recorder {
	if clk == nil {
		clk = clock.NewReal()
	}
	if perOpCapacity <= 0 {
		perOpCapacity = DefaultCapacity
	}
	if perOpCapacity < minCapacity {
		perOpCapacity = minCapacity
	}
	return &Recorder{clk: clk, capacity: perOpCapacity, ops: make(map[string]*Op)}
}

// Op returns the ring for the named operation, creating it on first
// use. A nil recorder returns nil, which is safe to record against.
func (r *Recorder) Op(operation string) *Op {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	o := r.ops[operation]
	r.mu.RUnlock()
	if o != nil {
		return o
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if o = r.ops[operation]; o == nil {
		o = &Op{rec: r, operation: operation, buf: make([]Entry, r.capacity)}
		r.ops[operation] = o
		mOps.Set(float64(len(r.ops)))
	}
	return o
}

// Drop discards the named operation's ring. Dropped rings already
// handed out keep accepting entries but are no longer queryable, so
// session GC bounds recorder memory without racing in-flight work.
func (r *Recorder) Drop(operation string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.ops, operation)
	mOps.Set(float64(len(r.ops)))
}

// Operations lists the tracked operation ids, sorted.
func (r *Recorder) Operations() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]string, 0, len(r.ops))
	for id := range r.ops {
		out = append(out, id)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Timeline snapshots one operation's entries oldest-first, optionally
// filtered to the given kinds. An unknown operation (or nil recorder)
// yields an empty timeline, never nil Entries.
func (r *Recorder) Timeline(operation string, kinds ...Kind) Timeline {
	tl := Timeline{Operation: operation, Entries: []Entry{}}
	if r == nil {
		return tl
	}
	r.mu.RLock()
	o := r.ops[operation]
	r.mu.RUnlock()
	if o == nil {
		return tl
	}
	keep := func(Kind) bool { return true }
	if len(kinds) > 0 {
		set := make(map[Kind]bool, len(kinds))
		for _, k := range kinds {
			set[k] = true
		}
		keep = func(k Kind) bool { return set[k] }
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	tl.Dropped = o.dropped
	for _, e := range o.snapshotLocked() {
		if keep(e.Kind) {
			tl.Entries = append(tl.Entries, e)
		}
	}
	return tl
}

// Op is one operation's bounded entry ring.
type Op struct {
	rec       *Recorder
	operation string

	mu      sync.Mutex
	buf     []Entry
	next    int
	full    bool
	dropped uint64
}

// Operation returns the operation id the ring belongs to ("" for nil).
func (o *Op) Operation() string {
	if o == nil {
		return ""
	}
	return o.operation
}

// Record appends an entry, assigning and returning its ID. A zero At
// is stamped from the recorder clock. Calling Record on a nil *Op is a
// no-op returning 0, so disabled recording needs no call-site checks.
//
//podlint:hotpath budget=0
func (o *Op) Record(e Entry) uint64 {
	if o == nil {
		return 0
	}
	e.ID = o.rec.ids.Add(1)
	if e.At.IsZero() {
		e.At = o.rec.clk.Now()
	}
	if c := mEntriesFor[e.Kind]; c != nil {
		c.Inc()
	} else {
		mEntries.With(string(e.Kind)).Inc()
	}
	o.mu.Lock()
	if o.full {
		o.dropped++
		mDropped.Inc()
	}
	o.buf[o.next] = e
	o.next++
	if o.next == len(o.buf) {
		o.next = 0
		o.full = true
	}
	o.mu.Unlock()
	return e.ID
}

// snapshotLocked copies the ring oldest-first; o.mu must be held.
func (o *Op) snapshotLocked() []Entry {
	if !o.full {
		return append([]Entry(nil), o.buf[:o.next]...)
	}
	out := make([]Entry, 0, len(o.buf))
	out = append(out, o.buf[o.next:]...)
	return append(out, o.buf[:o.next]...)
}

// Context propagation. Sessions hand diagnosis a background context, so
// the operation ring and the causal parent travel as context values.

type ctxKey int

const (
	opKey ctxKey = iota
	parentKey
)

// NewContext returns ctx carrying the operation ring.
func NewContext(ctx context.Context, o *Op) context.Context {
	return context.WithValue(ctx, opKey, o)
}

// FromContext returns the operation ring carried by ctx, or nil.
func FromContext(ctx context.Context) *Op {
	o, _ := ctx.Value(opKey).(*Op)
	return o
}

// WithParent returns ctx carrying id as the causal parent for entries
// recorded downstream.
func WithParent(ctx context.Context, id uint64) context.Context {
	return context.WithValue(ctx, parentKey, id)
}

// ParentFrom returns the causal parent carried by ctx (0 if none).
func ParentFrom(ctx context.Context) uint64 {
	id, _ := ctx.Value(parentKey).(uint64)
	return id
}

// ChainToLog walks parent links from the entry with id fromID and
// returns a path (from the starting entry down to the terminal one)
// ending at a log.event entry, plus whether such a chain exists. A
// chain ending at a stream.gap entry does not count: the evidence was
// lost, not linked.
func ChainToLog(entries []Entry, fromID uint64) ([]Entry, bool) {
	byID := make(map[uint64]Entry, len(entries))
	for _, e := range entries {
		byID[e.ID] = e
	}
	seen := make(map[uint64]bool)
	var walk func(id uint64) ([]Entry, bool)
	walk = func(id uint64) ([]Entry, bool) {
		e, ok := byID[id]
		if !ok || seen[id] {
			return nil, false
		}
		seen[id] = true
		if e.Kind == KindLogEvent {
			return []Entry{e}, true
		}
		for _, p := range e.Parents {
			if path, ok := walk(p); ok {
				return append([]Entry{e}, path...), true
			}
		}
		return nil, false
	}
	return walk(fromID)
}

// Render writes a human-readable timeline, one entry per line, with
// parent links, for podctl and the README quickstart.
func Render(w io.Writer, tl Timeline) {
	fmt.Fprintf(w, "%s timeline (%d entries", tl.Operation, len(tl.Entries))
	if tl.Dropped > 0 {
		fmt.Fprintf(w, ", %d dropped", tl.Dropped)
	}
	fmt.Fprintln(w, ")")
	for _, e := range tl.Entries {
		parents := ""
		if len(e.Parents) > 0 {
			refs := make([]string, len(e.Parents))
			for i, p := range e.Parents {
				refs[i] = fmt.Sprintf("#%d", p)
			}
			parents = "  <- " + strings.Join(refs, ",")
		}
		attrs := ""
		if len(e.Attrs) > 0 {
			keys := make([]string, 0, len(e.Attrs))
			for k := range e.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pairs := make([]string, len(keys))
			for i, k := range keys {
				pairs[i] = k + "=" + e.Attrs[k]
			}
			attrs = "  [" + strings.Join(pairs, " ") + "]"
		}
		fmt.Fprintf(w, "  #%-4d %s  %-19s %s%s%s\n",
			e.ID, e.At.Format("15:04:05.000"), e.Kind, e.Message, attrs, parents)
	}
}
