package flight

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
)

func testClock() clock.Clock {
	return clock.NewScaled(1000, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
}

func TestKnownKind(t *testing.T) {
	for _, k := range Kinds() {
		if !KnownKind(k) {
			t.Errorf("registered kind %q not known", k)
		}
	}
	if KnownKind(Kind("made.up")) {
		t.Error("unregistered kind accepted")
	}
}

func TestNilRecorderAndOpAreNoOps(t *testing.T) {
	var r *Recorder
	op := r.Op("op-1")
	if op != nil {
		t.Fatal("nil recorder returned non-nil op")
	}
	if id := op.Record(Entry{Kind: KindLogEvent}); id != 0 {
		t.Fatalf("nil op Record returned %d, want 0", id)
	}
	if got := op.Operation(); got != "" {
		t.Fatalf("nil op Operation returned %q", got)
	}
	r.Drop("op-1")
	if tl := r.Timeline("op-1"); tl.Entries == nil || len(tl.Entries) != 0 {
		t.Fatalf("nil recorder timeline = %#v, want empty non-nil", tl.Entries)
	}
	if r.Operations() != nil {
		t.Fatal("nil recorder listed operations")
	}
}

func TestRecordAssignsMonotonicIDsAndOrder(t *testing.T) {
	r := NewRecorder(testClock(), 32)
	op := r.Op("op-1")
	var ids []uint64
	for i := 0; i < 5; i++ {
		ids = append(ids, op.Record(Entry{Kind: KindLogEvent, Message: fmt.Sprintf("e%d", i)}))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not monotonic: %v", ids)
		}
	}
	tl := r.Timeline("op-1")
	if len(tl.Entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(tl.Entries))
	}
	for i, e := range tl.Entries {
		if e.ID != ids[i] {
			t.Fatalf("entry %d has id %d, want %d (insertion order)", i, e.ID, ids[i])
		}
		if e.At.IsZero() {
			t.Fatal("zero At not stamped from clock")
		}
	}
}

func TestRingBoundsAndDropCount(t *testing.T) {
	r := NewRecorder(testClock(), minCapacity)
	op := r.Op("op-1")
	total := minCapacity + 7
	for i := 0; i < total; i++ {
		op.Record(Entry{Kind: KindDetection})
	}
	tl := r.Timeline("op-1")
	if len(tl.Entries) != minCapacity {
		t.Fatalf("ring holds %d entries, want %d", len(tl.Entries), minCapacity)
	}
	if tl.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", tl.Dropped)
	}
	// Oldest surviving entry is the 8th recorded.
	if tl.Entries[0].ID >= tl.Entries[len(tl.Entries)-1].ID {
		t.Fatal("ring snapshot not oldest-first")
	}
}

func TestTimelineKindFilter(t *testing.T) {
	r := NewRecorder(testClock(), 32)
	op := r.Op("op-1")
	op.Record(Entry{Kind: KindLogEvent})
	op.Record(Entry{Kind: KindDetection})
	op.Record(Entry{Kind: KindCause})
	tl := r.Timeline("op-1", KindDetection, KindCause)
	if len(tl.Entries) != 2 {
		t.Fatalf("filtered timeline has %d entries, want 2", len(tl.Entries))
	}
	for _, e := range tl.Entries {
		if e.Kind == KindLogEvent {
			t.Fatal("filter kept excluded kind")
		}
	}
}

func TestDropDiscardsOperation(t *testing.T) {
	r := NewRecorder(testClock(), 32)
	op := r.Op("op-1")
	op.Record(Entry{Kind: KindLogEvent})
	r.Drop("op-1")
	if tl := r.Timeline("op-1"); len(tl.Entries) != 0 {
		t.Fatal("dropped operation still queryable")
	}
	// A ring handed out before the drop keeps accepting entries.
	if id := op.Record(Entry{Kind: KindDetection}); id == 0 {
		t.Fatal("orphaned ring rejected entry")
	}
	if got := r.Operations(); len(got) != 0 {
		t.Fatalf("operations after drop: %v", got)
	}
}

func TestContextPropagation(t *testing.T) {
	r := NewRecorder(testClock(), 32)
	op := r.Op("op-1")
	ctx := WithParent(NewContext(context.Background(), op), 42)
	if got := FromContext(ctx); got != op {
		t.Fatal("op not carried by context")
	}
	if got := ParentFrom(ctx); got != 42 {
		t.Fatalf("parent = %d, want 42", got)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("empty context yielded an op")
	}
	if got := ParentFrom(context.Background()); got != 0 {
		t.Fatalf("empty context parent = %d, want 0", got)
	}
}

func TestChainToLog(t *testing.T) {
	r := NewRecorder(testClock(), 64)
	op := r.Op("op-1")
	log := op.Record(Entry{Kind: KindLogEvent, Message: "raw line"})
	conf := op.Record(Entry{Kind: KindConformance, Parents: []uint64{log}})
	det := op.Record(Entry{Kind: KindDetection, Parents: []uint64{conf}})
	diag := op.Record(Entry{Kind: KindDiagnosis, Parents: []uint64{det}})
	test := op.Record(Entry{Kind: KindTest, Parents: []uint64{diag}})
	cause := op.Record(Entry{Kind: KindCause, Parents: []uint64{diag, test}})

	entries := r.Timeline("op-1").Entries
	path, ok := ChainToLog(entries, cause)
	if !ok {
		t.Fatal("no chain from cause to log event")
	}
	if path[0].ID != cause || path[len(path)-1].ID != log {
		t.Fatalf("chain endpoints wrong: %d..%d", path[0].ID, path[len(path)-1].ID)
	}

	// A chain that bottoms out at a stream gap is not evidence.
	gap := op.Record(Entry{Kind: KindStreamGap})
	orphan := op.Record(Entry{Kind: KindDetection, Parents: []uint64{gap}})
	if _, ok := ChainToLog(r.Timeline("op-1").Entries, orphan); ok {
		t.Fatal("chain ending at stream gap accepted")
	}

	// Cycles must terminate.
	a := op.Record(Entry{Kind: KindDetection, Parents: []uint64{9999}})
	if _, ok := ChainToLog(r.Timeline("op-1").Entries, a); ok {
		t.Fatal("dangling parent accepted")
	}
}

// TestConcurrentRecordAndGC exercises concurrent writers, readers, and
// session-retention drops under -race: the access pattern of the
// 8-concurrent-upgrade chaos soak.
func TestConcurrentRecordAndGC(t *testing.T) {
	r := NewRecorder(testClock(), minCapacity)
	const ops = 8
	var writers sync.WaitGroup
	for i := 0; i < ops; i++ {
		opID := fmt.Sprintf("op-%d", i)
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < 500; j++ {
				op := r.Op(opID)
				parent := op.Record(Entry{Kind: KindLogEvent, Seq: uint64(j)})
				op.Record(Entry{Kind: KindDetection, Parents: []uint64{parent}})
			}
		}()
	}
	done := make(chan struct{})
	var gc sync.WaitGroup
	gc.Add(1)
	go func() {
		defer gc.Done()
		for {
			for i := 0; i < ops; i++ {
				opID := fmt.Sprintf("op-%d", i)
				r.Timeline(opID, KindDetection)
				if i%3 == 0 {
					r.Drop(opID)
				}
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	writers.Wait()
	close(done)
	gc.Wait()
}

func TestRenderShowsParentsAndAttrs(t *testing.T) {
	r := NewRecorder(testClock(), 32)
	op := r.Op("op-1")
	log := op.Record(Entry{Kind: KindLogEvent, Message: "raw line", Seq: 3})
	op.Record(Entry{Kind: KindDetection, Parents: []uint64{log},
		Message: "unfit at createlc", Attrs: map[string]string{"step": "createlc", "degraded": "false"}})
	var buf bytes.Buffer
	Render(&buf, r.Timeline("op-1"))
	out := buf.String()
	for _, want := range []string{"op-1 timeline (2 entries)", "log.event", "detection",
		fmt.Sprintf("<- #%d", log), "degraded=false step=createlc"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("rendered timeline missing %q:\n%s", want, out)
		}
	}
}
