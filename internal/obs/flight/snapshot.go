package flight

// Snapshot transfer: federation handoff moves an operation's evidence
// ring between recorders. Export is Timeline (the ring is already its
// own serializable snapshot); Import rebuilds the ring on the adopting
// recorder while preserving the original entry IDs so restored parent
// links stay valid, and advances the adopting recorder's ID counter
// past every imported ID so post-handoff entries can never collide
// with (or sort before) restored ones.

// Import replaces the named operation's ring with the snapshot's
// entries. Entries beyond the ring capacity are dropped oldest-first
// and added to the drop counter, exactly as if they had been
// overwritten live. It returns the operation's ring (nil on a nil
// recorder), ready for post-handoff recording.
func (r *Recorder) Import(tl Timeline) *Op {
	if r == nil {
		return nil
	}
	o := r.Op(tl.Operation)
	entries := tl.Entries
	dropped := tl.Dropped
	var maxID uint64
	o.mu.Lock()
	if len(entries) > len(o.buf) {
		dropped += uint64(len(entries) - len(o.buf))
		entries = entries[len(entries)-len(o.buf):]
	}
	o.next = 0
	o.full = false
	for _, e := range entries {
		if e.ID > maxID {
			maxID = e.ID
		}
		o.buf[o.next] = e
		o.next++
		if o.next == len(o.buf) {
			o.next = 0
			o.full = true
		}
	}
	o.dropped = dropped
	o.mu.Unlock()
	// Ratchet the recorder-global counter monotonically: concurrent
	// imports and live Records may race the load, so retry until the
	// counter is at or past the imported maximum.
	for {
		cur := r.ids.Load()
		if cur >= maxID || r.ids.CompareAndSwap(cur, maxID) {
			return o
		}
	}
}
