package lint

import (
	"fmt"
	"sort"

	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/remediate"
)

// LintRemediation cross-validates a remediation catalog against the
// diagnosis-plan catalog whose confirmed causes trigger it. The policy
// decides which actions count as auto-mode: an auto action that binds a
// cause no plan defines is an error (RM001) — it claims unattended repair
// authority over a fault that can never be diagnosed, which is either a
// typo in the binding or a plan that was renamed out from under it.
// coverPlanIDs names the plans whose every cause must be actionable: each
// of their cause nodes either binds at least one action or carries an
// explicit MarkManual marker, or RM002 fires. A manual marker matching no
// cause in any plan is stale (RM003, warning).
func LintRemediation(cat *remediate.Catalog, policy remediate.Policy, plans *diagplan.Catalog, coverPlanIDs []string) []Finding {
	var fs []Finding
	if cat == nil || plans == nil {
		return nil
	}

	// Every concrete cause node id across the whole plan catalog.
	allCauses := make(map[string]bool)
	for _, p := range plans.All() {
		for _, n := range p.PotentialRootCauses() {
			allCauses[n.ID] = true
		}
	}
	matchesAny := func(base string) bool {
		for id := range allCauses {
			if remediate.Matches(id, base) {
				return true
			}
		}
		return false
	}

	// RM001: auto-mode action bound to a cause absent from every plan.
	for _, a := range cat.Actions() {
		if policy.ModeFor(a.Class) != remediate.ModeAuto {
			continue
		}
		for _, base := range a.Causes {
			if !matchesAny(base) {
				fs = append(fs, finding(RuleRemediateDanglingCause, remediatePos(a.Name, base),
					"auto-mode action %q binds cause %q, which no diagnosis plan defines", a.Name, base))
			}
		}
	}

	// RM002: cause in a coverage plan with neither an action binding nor a
	// manual marker. The rolling-upgrade knowledge base is the paper's
	// core scenario, so its causes may not silently fall outside the
	// remediation surface.
	cover := make(map[string]bool, len(coverPlanIDs))
	for _, id := range coverPlanIDs {
		cover[id] = true
	}
	for _, p := range plans.All() {
		if !cover[p.ID] {
			continue
		}
		for _, n := range p.PotentialRootCauses() {
			if len(cat.BindingsFor(n.ID)) > 0 {
				continue
			}
			if _, ok := cat.ManualReason(n.ID); ok {
				continue
			}
			fs = append(fs, finding(RuleRemediateUncovered, planPos(p.ID, n.ID),
				"cause %q binds no remediation action and carries no manual marker", n.ID))
		}
	}

	// RM003: manual marker whose base matches no cause anywhere — the
	// cause it once excused was renamed or removed.
	manual := cat.Manual()
	bases := make([]string, 0, len(manual))
	for base := range manual {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if !matchesAny(base) {
			fs = append(fs, finding(RuleRemediateStaleManual, remediatePos("manual", base),
				"manual marker for cause %q matches no diagnosis-plan cause", base))
		}
	}

	Sort(fs)
	return fs
}

// remediatePos renders the locus of a remediation finding.
func remediatePos(action, cause string) string {
	return fmt.Sprintf("remediate:%s/cause:%s", action, cause)
}

// BuiltinRemediation lints the shipped remediation surface: the default
// action catalog under the most permissive suggested policy (auto base —
// so RM001 covers every class that could ever run unattended) against the
// full diagnosis-plan catalog, with the compiled rolling-upgrade fault
// trees ("ft-" plans) as the coverage set. cmd/podlint runs this with the
// builtin bundles, and the regression tests pin it to zero findings.
func BuiltinRemediation() []Finding {
	plans := faulttree.FullCatalog()
	var cover []string
	for _, p := range plans.All() {
		if len(p.ID) > 3 && p.ID[:3] == "ft-" {
			cover = append(cover, p.ID)
		}
	}
	return LintRemediation(remediate.DefaultCatalog(), remediate.SuggestedPolicy(remediate.ModeAuto), plans, cover)
}
