package lint

import (
	"fmt"
	"strings"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/faulttree"
)

// treePos renders the locus of a fault-tree finding.
func treePos(treeID, nodeID string) string {
	if nodeID == "" {
		return "faulttree:" + treeID
	}
	return fmt.Sprintf("faulttree:%s/node:%s", treeID, nodeID)
}

// LintTree validates one fault tree. The registry may be nil, disabling
// FT001 (dangling diagnosis-test references). The walk is cycle-safe: a
// node reachable from itself is reported once (FT002) and not descended
// into again, so linting malformed trees terminates where Clone or
// Validate would loop forever.
func LintTree(t *faulttree.Tree, reg *assertion.Registry) []Finding {
	if t.Root == nil {
		return []Finding{finding(RuleTreeCycle, treePos(t.ID, ""), "tree has a nil root")}
	}
	l := &treeLinter{tree: t, reg: reg, onPath: make(map[*faulttree.Node]bool), ids: make(map[string]bool)}
	l.walk(t.Root, nil, nil)
	return l.fs
}

type treeLinter struct {
	tree   *faulttree.Tree
	reg    *assertion.Registry
	onPath map[*faulttree.Node]bool
	ids    map[string]bool
	fs     []Finding
}

// walk visits n with its parent and the step scope of the nearest scoped
// ancestor (nil when every ancestor is unscoped).
func (l *treeLinter) walk(n *faulttree.Node, parent *faulttree.Node, ancestorSteps []string) {
	if l.onPath[n] {
		// FT002: the node is its own ancestor; the diagnosis walk (and
		// Clone, and Validate) would recurse forever.
		l.report(RuleTreeCycle, n.ID, "node %q is reachable from itself", n.ID)
		return
	}
	l.onPath[n] = true
	defer delete(l.onPath, n)

	// FT008: node ids must be unique within the tree — diagnosis results
	// (Cause.NodeID), exclusion lists and operators' eyes all key on them.
	if l.ids[n.ID] {
		l.report(RuleTreeDuplicateNodeID, n.ID, "duplicate node id %q", n.ID)
	}
	l.ids[n.ID] = true

	// FT001: a dangling diagnosis-test reference is silently untestable —
	// the evaluator returns StatusError for unknown checks, so the fault
	// can be suspected but never confirmed or excluded.
	if n.CheckID != "" && l.reg != nil {
		if _, ok := l.reg.Lookup(n.CheckID); !ok {
			l.report(RuleTreeDanglingCheck, n.ID, "diagnosis test %q is not in the assertion registry", n.CheckID)
		}
	}

	// FT009: every diagnosis test must classify its retry safety so the
	// resilience layer knows whether throttle/timeout-class failures may
	// be retried with backoff.
	if n.CheckID != "" {
		switch n.TestClass {
		case faulttree.TestClassRetryable, faulttree.TestClassNoRetry:
		case "":
			l.report(RuleTreeNoTestClass, n.ID,
				"diagnosis test %q on node %q has no TestClass (retryable/no-retry)", n.CheckID, n.ID)
		default:
			l.report(RuleTreeNoTestClass, n.ID,
				"diagnosis test %q on node %q has unknown TestClass %q", n.CheckID, n.ID, n.TestClass)
		}
	}

	// FT007: a root cause with no diagnosis test can only ever be
	// suspected (the paper's "diagnosis cannot determine why" case);
	// legal, but worth surfacing.
	if n.RootCause && n.Leaf() && n.CheckID == "" {
		l.report(RuleTreeUntestableCause, n.ID, "root cause %q has no diagnosis test and can never be confirmed", n.ID)
	}

	// FT005: an interior gate with a single child adds a level without
	// adding structure; the root is exempt (it names the negated
	// assertion and conventionally wraps one causal sub-tree).
	if parent != nil && len(n.Children) == 1 {
		l.report(RuleTreeDegenerateGate, n.ID, "interior node %q gates a single child", n.ID)
	}

	// FT006: pruning keeps a node only when it matches the step context,
	// independently per level. A node whose scope is disjoint from an
	// ancestor's is unreachable for every non-empty step: one of the two
	// is always pruned first.
	if len(n.Steps) > 0 && len(ancestorSteps) > 0 && !intersects(n.Steps, ancestorSteps) {
		l.report(RuleTreeStepDisjoint, n.ID,
			"step scope [%s] is disjoint from ancestor scope [%s]; the node survives pruning only with an empty step context",
			strings.Join(n.Steps, " "), strings.Join(ancestorSteps, " "))
	}

	// FT003 / FT004: §III.B.4 orders sibling visits by fault probability.
	// Ties and zero priors in a multi-child group leave the order to the
	// accident of declaration, which the paper's semantics do not define.
	if len(n.Children) >= 2 {
		byProb := make(map[float64]string, len(n.Children))
		for _, c := range n.Children {
			if c.Prob == 0 {
				l.report(RuleTreeZeroSiblingProb, c.ID, "sibling %q of %q has no prior probability", c.ID, n.ID)
			}
			if prev, ok := byProb[c.Prob]; ok && c.Prob != 0 {
				l.report(RuleTreeDupSiblingProb, c.ID, "siblings %q and %q tie at probability %g", prev, c.ID, c.Prob)
				continue
			}
			byProb[c.Prob] = c.ID
		}
	}

	steps := ancestorSteps
	if len(n.Steps) > 0 {
		steps = n.Steps
	}
	for _, c := range n.Children {
		l.walk(c, n, steps)
	}
}

func (l *treeLinter) report(rule, nodeID, format string, args ...any) {
	l.fs = append(l.fs, finding(rule, treePos(l.tree.ID, nodeID), format, args...))
}

func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
