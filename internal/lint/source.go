package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// srcFile is one parsed Go source file with the context the analyzers
// need: its module-relative path, import aliases, and the //podlint:ignore
// suppressions it declares.
type srcFile struct {
	rel     string // slash-separated path relative to the module root
	path    string // path as given to the parser, for -fix rewrites
	fset    *token.FileSet
	file    *ast.File
	ignores map[int][]string // comment line -> suppressed rule ids ("" = all)
	// hotBudgets maps the line of each //podlint:hotpath annotation to its
	// declared heap-escape budget (noBudget when the annotation gives none).
	hotBudgets map[int]int
}

// LintSource parses every non-test Go file under the target directories
// (testdata, vendor and dot-directories are skipped) and runs the GO
// analyzers — the per-file passes plus the whole-tree ones (lock-ordering
// graph, hot-path manifest). root is the module root; findings are
// positioned relative to it. Suppressed findings are dropped before
// returning.
func LintSource(root string, targets []string) ([]Finding, error) {
	files, err := loadSources(root, targets)
	if err != nil {
		return nil, err
	}
	var fs []Finding
	for _, f := range files {
		fs = append(fs, analyzeFile(f)...)
	}
	fs = append(fs, lintLockOrder(files)...)
	fs = append(fs, lintHotPaths(files)...)
	Sort(fs)
	return fs, nil
}

// loadSources walks the targets and parses the Go files in scope.
func loadSources(root string, targets []string) ([]*srcFile, error) {
	if len(targets) == 0 {
		targets = []string{root}
	}
	var out []*srcFile
	seen := make(map[string]bool)
	for _, target := range targets {
		err := filepath.WalkDir(target, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if name == "testdata" || name == "vendor" || (strings.HasPrefix(name, ".") && path != target) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || seen[path] {
				return nil
			}
			seen[path] = true
			f, err := parseSource(root, path)
			if err != nil {
				return err
			}
			out = append(out, f)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walk %s: %w", target, err)
		}
	}
	return out, nil
}

// parseSource parses one file and collects its suppression comments.
func parseSource(root, path string) (*srcFile, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: parse %s: %w", path, err)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		rel = path
	}
	sf := &srcFile{rel: filepath.ToSlash(rel), path: path, fset: fset, file: file,
		ignores: make(map[int][]string), hotBudgets: make(map[int]int)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
			text = strings.TrimSpace(text)
			if rest, ok := strings.CutPrefix(text, "podlint:hotpath"); ok {
				sf.hotBudgets[fset.Position(c.Pos()).Line] = parseHotBudget(rest)
				continue
			}
			rest, ok := strings.CutPrefix(text, "podlint:ignore")
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			var rules []string
			for _, f := range strings.FieldsFunc(strings.TrimSpace(rest), func(r rune) bool { return r == ',' || r == ' ' }) {
				if _, known := ruleTable[f]; known {
					rules = append(rules, f)
				} else {
					break // first non-rule token starts the free-form reason
				}
			}
			if len(rules) == 0 {
				rules = []string{""} // no rule list: suppress everything
			}
			sf.ignores[line] = append(sf.ignores[line], rules...)
		}
	}
	return sf, nil
}

// pos renders a node's position as rel/path.go:line.
func (f *srcFile) pos(n ast.Node) string {
	p := f.fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", f.rel, p.Line)
}

// line returns a node's 1-based source line.
func (f *srcFile) line(n ast.Node) int { return f.fset.Position(n.Pos()).Line }

// suppressed reports whether the rule is ignored at the given line — by a
// trailing comment on the line itself or a comment on the line above.
func (f *srcFile) suppressed(rule string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, r := range f.ignores[l] {
			if r == "" || r == rule {
				return true
			}
		}
	}
	return false
}

// importName returns the local name under which the file imports the given
// path ("" when not imported): the alias if one is declared, the base
// package name otherwise.
func (f *srcFile) importName(importPath string) string {
	for _, imp := range f.file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != importPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// pkgCall matches a call of the form <pkg>.<fn>(...) where pkg is the
// file-local name of an imported package. It returns the matched function
// name ("" when the call does not match). Local shadowing of the package
// name is not tracked — an accepted approximation for this codebase.
func pkgCall(call *ast.CallExpr, pkgName string, fns ...string) string {
	if pkgName == "" {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName {
		return ""
	}
	for _, fn := range fns {
		if sel.Sel.Name == fn {
			return fn
		}
	}
	return ""
}

// exprString renders a (small) expression for lock-receiver identity and
// finding messages.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	default:
		return "?"
	}
}

// report appends a finding unless a //podlint:ignore comment suppresses it.
func (f *srcFile) report(fs *[]Finding, rule string, n ast.Node, format string, args ...any) {
	if f.suppressed(rule, f.line(n)) {
		return
	}
	*fs = append(*fs, finding(rule, f.pos(n), format, args...))
}

// writeFile writes content to path with the original file's permissions.
func writeFile(path string, content []byte) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, content, info.Mode().Perm())
}
