package lint

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/remediate"
)

// --- helpers -------------------------------------------------------------

func hasRule(fs []Finding, rule string) bool {
	for _, f := range fs {
		if f.Rule == rule {
			return true
		}
	}
	return false
}

func findingsFor(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func fixtureRegistry() *assertion.Registry {
	reg := assertion.NewRegistry()
	reg.Register(assertion.Check{ID: "known", Description: "fixture check"})
	return reg
}

// neverFiresPlan is a well-formed plan whose assertion no spec binds (XC003).
func neverFiresPlan() *diagplan.Plan {
	return &diagplan.Plan{
		ID: "never-fires", AssertionID: "unbound", Entry: "t",
		Nodes: []*diagplan.Node{
			{ID: "t", Kind: diagplan.KindEntry, Edges: []diagplan.Edge{
				{To: "c1", Prob: 0.6}, {To: "c2", Prob: 0.4},
			}},
			{ID: "c1", Kind: diagplan.KindCause, CheckID: "known", TestClass: diagplan.TestClassRetryable},
			{ID: "c2", Kind: diagplan.KindCause, CheckID: "known", TestClass: diagplan.TestClassRetryable},
		},
	}
}

// brokenRemediation seeds one violation for every RM rule against the
// neverFiresPlan catalog: an auto action bound to a cause no plan defines
// (RM001), the plan's causes left without bindings or markers (RM002 for
// c1; c2 gets a stale-free marker so both paths are exercised), and a
// marker naming a cause that does not exist (RM003).
func brokenRemediation() []Finding {
	cat := remediate.NewCatalog()
	cat.MustAdd(remediate.Action{
		Name: "fix-nothing", Description: "fixture", Class: remediate.ClassConfig,
		Causes: []string{"no-such-cause"},
		Run:    func(context.Context, *remediate.Target) (string, error) { return "", nil },
	})
	cat.MarkManual("c2", "fixture: operator handles c2")
	cat.MarkManual("ghost-cause", "fixture: stale marker")
	plans := diagplan.NewCatalog()
	plans.MustRegister(neverFiresPlan())
	return LintRemediation(cat, remediate.Policy{Default: remediate.ModeAuto}, plans, []string{"never-fires"})
}

// --- model rules ---------------------------------------------------------

// brokenModelDoc seeds one violation for every PM rule.
const brokenModelDoc = `{
  "id": "broken",
  "nodes": [
    {"id": "s", "kind": 1},
    {"id": "a1", "name": "A1", "kind": 2, "stepId": "step1", "patterns": ["^A1"]},
    {"id": "a2", "name": "A2", "kind": 2, "stepId": "step1", "patterns": ["^A1", "("]},
    {"id": "a3", "name": "A3", "kind": 2},
    {"id": "a4", "name": "A4", "kind": 2, "patterns": ["^A4"]},
    {"id": "a4", "name": "dup", "kind": 2},
    {"id": "e", "kind": 4}
  ],
  "edges": [
    {"from": "s", "to": "a1"},
    {"from": "a1", "to": "a2"},
    {"from": "a2", "to": "e"},
    {"from": "a1", "to": "a4"},
    {"from": "a3", "to": "e"},
    {"from": "x", "to": "e"}
  ]
}`

func TestLintModelDocSeedsEveryPMRule(t *testing.T) {
	fs := LintModelDoc("broken", []byte(brokenModelDoc))
	for _, rule := range []string{
		RuleModelUnreachable,   // a3
		RuleModelDeadEnd,       // a4
		RuleModelBadPattern,    // "(" on a2
		RuleModelDuplicateStep, // step1 on a1 and a2
		RuleModelNoPatterns,    // a3
		RuleModelShadowed,      // "^A1" on a1 and a2
		RuleModelStructure,     // duplicate id a4, edge from unknown x
	} {
		if !hasRule(fs, rule) {
			t.Errorf("expected %s in:\n%s", rule, render(fs))
		}
	}
	if got := findingsFor(fs, RuleModelStructure); len(got) != 2 {
		t.Errorf("want 2 PM007 findings (dup id + unknown edge), got %d", len(got))
	}
}

func TestLintModelDocRejectsGarbage(t *testing.T) {
	fs := LintModelDoc("junk", []byte("{nope"))
	if len(fs) != 1 || fs[0].Rule != RuleModelStructure {
		t.Fatalf("want one PM007, got %s", render(fs))
	}
}

func TestBuiltinModelsLintClean(t *testing.T) {
	for _, m := range []*process.Model{process.RollingUpgradeModel(), process.ScaleOutModel()} {
		if fs := LintModel(m); len(fs) != 0 {
			t.Errorf("model %s: unexpected findings:\n%s", m.ID(), render(fs))
		}
	}
}

// --- spec rules ----------------------------------------------------------

func TestLintSpecSeedsEveryASRule(t *testing.T) {
	// Parsed with a nil registry so the unknown check survives to lint.
	spec, err := assertspec.Parse(`
on step1 assert known
on step1 assert known
on step99 assert known
on step1 assert missing
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := LintSpec("fixture", spec, process.RollingUpgradeModel(), fixtureRegistry())
	for _, rule := range []string{RuleSpecUnknownCheck, RuleSpecUnknownStep, RuleSpecDuplicateBinding} {
		if !hasRule(fs, rule) {
			t.Errorf("expected %s in:\n%s", rule, render(fs))
		}
	}
	// The duplicate finding points back at the first occurrence's line.
	dups := findingsFor(fs, RuleSpecDuplicateBinding)
	if len(dups) != 1 || !strings.Contains(dups[0].Message, "line 2") {
		t.Errorf("AS003 should reference line 2, got %s", render(dups))
	}
}

// --- diagnosis-plan rules -------------------------------------------------

// brokenPlan seeds one violation for every DG rule.
func brokenPlan() *diagplan.Plan {
	retryable := diagplan.TestClassRetryable
	return &diagplan.Plan{
		ID: "broken", AssertionID: "known", Entry: "top",
		Nodes: []*diagplan.Node{
			{ID: "top", Kind: diagplan.KindEntry, Edges: []diagplan.Edge{
				{To: "dangling", Prob: 0.4},
				{To: "untestable", Prob: 0.3},
				{To: "zero"},             // DG004 (zero prior)
				{To: "tie-a", Prob: 0.1}, // DG003 with tie-b
				{To: "tie-b", Prob: 0.1},
				{To: "gate", Prob: 0.05},
				{To: "shared", Prob: 0.62},
				{To: "loop-a", Prob: 0.02},
			}},
			{ID: "dangling", Kind: diagplan.KindCause, CheckID: "missing"}, // DG001; no testClass → DG009
			{ID: "untestable", Kind: diagplan.KindCause},                   // DG007
			{ID: "zero", Kind: diagplan.KindCause, CheckID: "known", TestClass: retryable},
			{ID: "tie-a", Kind: diagplan.KindCause, CheckID: "known", TestClass: retryable},
			{ID: "tie-b", Kind: diagplan.KindCause, CheckID: "known", TestClass: retryable},
			{ID: "gate", Kind: diagplan.KindCollector, Steps: []string{"step1"}, Edges: []diagplan.Edge{
				{To: "off-step", Prob: 0.7},
				{To: "shared", Prob: 0.62}, // DG008: shared accumulates 1.24
			}},
			{ID: "off-step", Kind: diagplan.KindCause, CheckID: "known", TestClass: retryable,
				Steps: []string{"step9"}}, // DG006: disjoint from gate's scope
			{ID: "shared", Kind: diagplan.KindCause, CheckID: "known", TestClass: retryable},
			{ID: "loop-a", Kind: diagplan.KindCollector, Edges: []diagplan.Edge{{To: "loop-b", Prob: 1}}},
			{ID: "loop-b", Kind: diagplan.KindCollector, Edges: []diagplan.Edge{{To: "loop-a", Prob: 1}}}, // DG002
			{ID: "orphan", Kind: diagplan.KindCause, CheckID: "known", TestClass: retryable},              // DG005
			{ID: "top", Kind: diagplan.KindCause, CheckID: "known", TestClass: retryable},                 // DG010 (dup id)
		},
	}
}

func TestLintPlanSeedsEveryDGRule(t *testing.T) {
	fs := LintPlan(brokenPlan(), fixtureRegistry())
	for _, rule := range []string{
		RulePlanDanglingCheck, RulePlanCycle, RulePlanDupSiblingProb, RulePlanZeroSiblingProb,
		RulePlanUnreachable, RulePlanStepDisjoint, RulePlanUntestableCause, RulePlanFanInMass,
		RulePlanNoTestClass, RulePlanShape,
	} {
		if !hasRule(fs, rule) {
			t.Errorf("expected %s in:\n%s", rule, render(fs))
		}
	}
}

func TestLintPlanTerminatesOnCycle(t *testing.T) {
	p := &diagplan.Plan{
		ID: "cyc", AssertionID: "known", Entry: "e",
		Nodes: []*diagplan.Node{
			{ID: "e", Kind: diagplan.KindEntry, Edges: []diagplan.Edge{{To: "a", Prob: 1}}},
			{ID: "a", Kind: diagplan.KindCollector, Edges: []diagplan.Edge{{To: "b", Prob: 1}}},
			{ID: "b", Kind: diagplan.KindCollector, Edges: []diagplan.Edge{{To: "a", Prob: 1}}},
		},
	}
	fs := LintPlan(p, nil)
	if !hasRule(fs, RulePlanCycle) {
		t.Fatalf("want DG002, got %s", render(fs))
	}
}

func TestLintPlanDocRejectsGarbage(t *testing.T) {
	fs := LintPlanDoc("junk.json", []byte("{nope"))
	if len(fs) != 1 || fs[0].Rule != RulePlanShape {
		t.Fatalf("want one DG010, got %s", render(fs))
	}
}

// The embedded scenario plan documents must lint clean through the raw-doc
// path podlint uses for examples/ (registry-independent rules only).
func TestScenarioPlanDocsLintClean(t *testing.T) {
	for name, data := range diagplan.ScenarioPlanSources() {
		if fs := LintPlanDoc(name, data); len(fs) != 0 {
			t.Errorf("plan doc %s: unexpected findings:\n%s", name, render(fs))
		}
	}
}

// --- cross-artifact rules ------------------------------------------------

func TestLintBundlesSeedsEveryXCRule(t *testing.T) {
	reg := fixtureRegistry()
	spec, err := assertspec.Parse("on step1 assert known", reg)
	if err != nil {
		t.Fatal(err)
	}
	cat := diagplan.NewCatalog()
	cat.MustRegister(neverFiresPlan())
	fs := LintBundles(Bundle{
		Name:     "fixture",
		Model:    process.RollingUpgradeModel(),
		Specs:    []NamedSpec{{Name: "fixture-spec", Spec: spec}},
		Plans:    cat,
		Registry: reg,
	})
	if !hasRule(fs, RuleCoverageStepNoAssertion) { // steps beyond step1 are bare
		t.Errorf("expected XC001 in:\n%s", render(fs))
	}
	if !hasRule(fs, RuleCoverageAssertionNoTree) { // "known" is bound, no tree
		t.Errorf("expected XC002 in:\n%s", render(fs))
	}
	if !hasRule(fs, RuleCoverageTreeNeverTrigger) { // "unbound" has a tree, no binding
		t.Errorf("expected XC003 in:\n%s", render(fs))
	}
}

// TestBuiltinsLintClean is the shipped-artifact regression gate: the
// built-in models, specifications and the full fault-tree catalog must
// produce zero error-severity findings. Warnings are tolerated but pinned,
// so a new coverage gap shows up as a diff here.
func TestBuiltinsLintClean(t *testing.T) {
	bundles, err := Builtins()
	if err != nil {
		t.Fatal(err)
	}
	fs := LintBundles(bundles...)
	if n := CountErrors(fs); n != 0 {
		t.Fatalf("builtin artifacts have %d lint error(s):\n%s", n, render(fs))
	}
	for _, f := range fs {
		if f.Rule != RuleCoverageStepNoAssertion {
			t.Errorf("unexpected builtin warning: %s", f)
		}
	}
}

// --- source analyzers ----------------------------------------------------

// writeTree materializes a fixture source tree and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLintSourceSeedsEveryGORule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/clockuse.go": `package pkg

import "time"

func now() time.Time { return time.Now() }

func since(t0 time.Time) time.Duration {
	//podlint:ignore GO001 fixture: suppressed on purpose
	_ = time.Now()
	return time.Since(t0)
}
`,
		"internal/clock/real.go": `package clock

import "time"

func now() time.Time { return time.Now() }
`,
		"pkg/metrics.go": `package pkg

type registry struct{}

func (registry) Counter(name, help string) int { return 0 }

func metrics(r registry) {
	r.Counter("pod_good_total", "ok")
	r.Counter("Bad-Name", "flagged")
}
`,
		"pkg/send.go": `package pkg

import "sync"

func direct(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
	ch <- 2
}

func selects(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
	select {
	case ch <- 2:
	}
}

func fresh(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	go func() {
		ch <- 3
	}()
}
`,
		"internal/rest/handler.go": `package rest

import "context"

func handle() context.Context { return context.Background() }
`,
		"pkg/flightuse.go": `package pkg

import "poddiagnosis/internal/obs/flight"

func kinds() []any {
	return []any{
		flight.Kind("log.event"),
		flight.Kind("made.up"),
		flight.Entry{Kind: "detection"},
		flight.Entry{Kind: "also.bogus"},
		flight.Entry{Kind: flight.KindCause},
	}
}
`,
	})
	fs, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, rule := range []string{RuleSrcWallClock, RuleSrcMetricName, RuleSrcMutexChannelSend, RuleSrcContextBackground, RuleSrcFlightKind} {
		if !hasRule(fs, rule) {
			t.Errorf("expected %s in:\n%s", rule, render(fs))
		}
	}

	// GO001: the suppressed call is dropped; internal/clock is exempt;
	// time.Now in now() and time.Since in since() remain.
	go001 := findingsFor(fs, RuleSrcWallClock)
	if len(go001) != 2 {
		t.Errorf("want 2 GO001 findings, got %s", render(go001))
	}
	for _, f := range go001 {
		if strings.HasPrefix(f.Pos, "internal/clock/") {
			t.Errorf("internal/clock must be exempt from GO001: %s", f)
		}
	}

	// GO002: only the non-conforming literal.
	go002 := findingsFor(fs, RuleSrcMetricName)
	if len(go002) != 1 || !strings.Contains(go002[0].Message, "Bad-Name") {
		t.Errorf("want 1 GO002 for Bad-Name, got %s", render(go002))
	}

	// GO003: the bare send under the lock and the default-less select; the
	// post-unlock send, the select-with-default and the goroutine body are
	// all clean.
	go003 := findingsFor(fs, RuleSrcMutexChannelSend)
	if len(go003) != 2 {
		t.Errorf("want 2 GO003 findings, got %s", render(go003))
	}
	for _, f := range go003 {
		if f.Pos != "pkg/send.go:7" && f.Pos != "pkg/send.go:20" {
			t.Errorf("unexpected GO003 position %s", f.Pos)
		}
	}

	// GO004 only fires under internal/rest.
	go004 := findingsFor(fs, RuleSrcContextBackground)
	if len(go004) != 1 || !strings.HasPrefix(go004[0].Pos, "internal/rest/") {
		t.Errorf("want 1 GO004 under internal/rest, got %s", render(go004))
	}

	// GO005: the invented kinds in the conversion and the Entry literal are
	// flagged; registered literals and the named constant pass.
	go005 := findingsFor(fs, RuleSrcFlightKind)
	if len(go005) != 2 {
		t.Errorf("want 2 GO005 findings, got %s", render(go005))
	}
	for _, f := range go005 {
		if !strings.Contains(f.Message, "made.up") && !strings.Contains(f.Message, "also.bogus") {
			t.Errorf("unexpected GO005 finding %s", f)
		}
	}
}

func TestSuppressionBlanketAndTrailing(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/a.go": `package p

import "time"

func a() time.Time { return time.Now() } //podlint:ignore

func b() time.Time { return time.Now() } //podlint:ignore GO002 wrong rule, still fires
`,
	})
	fs, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	go001 := findingsFor(fs, RuleSrcWallClock)
	if len(go001) != 1 || go001[0].Pos != "p/a.go:7" {
		t.Fatalf("blanket ignore must drop line 5 only, got %s", render(go001))
	}
}

// TestRepositoryLintsClean pins the acceptance criterion: running the full
// suite over this repository reports no error-severity findings.
func TestRepositoryLintsClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("module root not found")
	}
	fs, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := CountErrors(fs); n != 0 {
		t.Fatalf("repository has %d source lint error(s):\n%s", n, render(fs))
	}
}

// --- remediation rules ---------------------------------------------------

func TestLintRemediationRules(t *testing.T) {
	fs := brokenRemediation()
	rm1 := findingsFor(fs, RuleRemediateDanglingCause)
	if len(rm1) != 1 || !strings.Contains(rm1[0].Message, "no-such-cause") {
		t.Fatalf("RM001 = %v, want one finding for no-such-cause", rm1)
	}
	rm2 := findingsFor(fs, RuleRemediateUncovered)
	if len(rm2) != 1 || !strings.Contains(rm2[0].Message, `"c1"`) {
		t.Fatalf("RM002 = %v, want exactly the unmarked cause c1", rm2)
	}
	rm3 := findingsFor(fs, RuleRemediateStaleManual)
	if len(rm3) != 1 || !strings.Contains(rm3[0].Message, "ghost-cause") {
		t.Fatalf("RM003 = %v, want one stale marker for ghost-cause", rm3)
	}
}

func TestLintRemediationApproveModeNotDangling(t *testing.T) {
	cat := remediate.NewCatalog()
	cat.MustAdd(remediate.Action{
		Name: "held", Description: "fixture", Class: remediate.ClassEscalation,
		Causes: []string{"no-such-cause"},
		Run:    func(context.Context, *remediate.Target) (string, error) { return "", nil },
	})
	plans := diagplan.NewCatalog()
	plans.MustRegister(neverFiresPlan())
	policy := remediate.Policy{Default: remediate.ModeAuto,
		ByClass: map[string]remediate.Mode{remediate.ClassEscalation: remediate.ModeApprove}}
	if fs := LintRemediation(cat, policy, plans, nil); hasRule(fs, RuleRemediateDanglingCause) {
		t.Fatalf("RM001 fired for an approve-mode action: %v", fs)
	}
}

// TestBuiltinRemediationClean pins the acceptance criterion: the shipped
// action catalog resolves cleanly against the full diagnosis-plan catalog
// — every auto-capable binding lands on a real cause and every compiled
// rolling-upgrade cause is either actionable or explicitly manual.
func TestBuiltinRemediationClean(t *testing.T) {
	if fs := BuiltinRemediation(); len(fs) != 0 {
		t.Fatalf("builtin remediation surface has %d finding(s):\n%s", len(fs), render(fs))
	}
}

// TestEveryRuleHasCoverage cross-checks the registry against the fixtures
// above: every registered rule must fire somewhere in this test file's
// fixtures, so a rule added to the table without a seeded violation fails
// here (see the comment on ruleTable).
func TestEveryRuleHasCoverage(t *testing.T) {
	var all []Finding
	all = append(all, LintModelDoc("broken", []byte(brokenModelDoc))...)

	spec, err := assertspec.Parse("on step1 assert known\non step1 assert known\non step99 assert known\non step1 assert missing", nil)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, LintSpec("fixture", spec, process.RollingUpgradeModel(), fixtureRegistry())...)

	all = append(all, LintPlan(brokenPlan(), fixtureRegistry())...)

	all = append(all, brokenRemediation()...)

	boundSpec, err := assertspec.Parse("on step1 assert known", fixtureRegistry())
	if err != nil {
		t.Fatal(err)
	}
	cat := diagplan.NewCatalog()
	cat.MustRegister(neverFiresPlan())
	all = append(all, LintBundles(Bundle{
		Name:     "fixture",
		Model:    process.RollingUpgradeModel(),
		Specs:    []NamedSpec{{Name: "s", Spec: boundSpec}},
		Plans:    cat,
		Registry: fixtureRegistry(),
	})...)

	root := writeTree(t, map[string]string{
		"pkg/all.go": `package pkg

import "time"

func now() time.Time { return time.Now() }
`,
		"pkg/metrics.go": `package pkg

type registry struct{}

func (registry) Gauge(name, help string) int { return 0 }

func metrics(r registry) { r.Gauge("Nope", "x") }
`,
		"pkg/send.go": `package pkg

import "sync"

func f(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}
`,
		"internal/rest/h.go": `package rest

import "context"

func h() context.Context { return context.TODO() }
`,
		"pkg/flight.go": `package pkg

import "poddiagnosis/internal/obs/flight"

func k() flight.Kind { return flight.Kind("nope") }
`,
	})
	srcFindings, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, srcFindings...)

	// Concurrency + hot-path rules (GO006–GO010), escape budgets (GO011)
	// and the bench ratchet (RT001–RT003) — fixtures in hotpath_test.go.
	all = append(all, hotpathFixtureFindings(t)...)
	_, escFindings := escapeFixture(t)
	all = append(all, escFindings...)
	all = append(all, ratchetFixtureFindings()...)

	fired := make(map[string]bool)
	for _, f := range all {
		fired[f.Rule] = true
	}
	for _, r := range Rules() {
		if !fired[r.ID] {
			t.Errorf("rule %s (%s) has no seeded violation in the fixtures", r.ID, r.Summary)
		}
	}
}

// --- fix -----------------------------------------------------------------

func TestFixWallClock(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/fix.go": `package p

import (
	"time"

	"poddiagnosis/internal/clock"
)

func run(clk clock.Clock) time.Duration {
	start := time.Now()
	return time.Since(start)
}

func keep() time.Time { return time.Now() }
`,
	})
	fixed, err := FixWallClock(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 || fixed[0] != "p/fix.go" {
		t.Fatalf("want [p/fix.go], got %v", fixed)
	}
	got, err := os.ReadFile(filepath.Join(root, "p", "fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(got)
	if !strings.Contains(s, "start := clk.Now()") || !strings.Contains(s, "return clk.Since(start)") {
		t.Errorf("wall-clock reads not rewritten:\n%s", s)
	}
	// keep() has no clock in scope and must stay untouched.
	if !strings.Contains(s, "func keep() time.Time { return time.Now() }") {
		t.Errorf("function without an injectable clock was modified:\n%s", s)
	}
}

func TestFixWallClockIdempotentWhenNothingToDo(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/clean.go": "package p\n\nfunc ok() {}\n",
	})
	fixed, err := FixWallClock(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 0 {
		t.Fatalf("nothing to fix, got %v", fixed)
	}
}

// render formats findings for failure messages.
func render(fs []Finding) string {
	if len(fs) == 0 {
		return "  (none)"
	}
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}
