package lint

import (
	"fmt"
	"go/ast"
	"path"
	"sort"
	"strconv"
	"strings"
)

// Hot-path proving: the ingest path (bus publish -> reorder -> pipeline ->
// session -> flight recorder) must stay allocation-lean, and "lean" must be
// enforced, not remembered. A function is a hot path when it carries a
//
//	//podlint:hotpath budget=N
//
// annotation in (or directly above) its doc comment. The budget declares
// how many heap-escape sites (compiler -gcflags=-m diagnostics) the
// function's body may contain; EscapeAnalysis (GO011) enforces it. The
// annotation alone, with no budget, opts into the construct checks (GO010,
// GO009) without pinning an escape count.
//
// hotPathManifest is the repo's authoritative list of known hot paths: the
// functions every profile of the ingest benchmark bottoms out in. Each
// listed function MUST carry the annotation — losing the annotation (say,
// in a refactor) would silently disarm the budget, so GO010 flags a
// manifest entry whose function exists unannotated.

// noBudget marks a hotpath annotation that declared no escape budget.
const noBudget = -1

// parseHotBudget parses the annotation tail: empty, or "budget=N".
// Malformed budgets read as noBudget; the manifest check reports them.
func parseHotBudget(rest string) int {
	rest = strings.TrimSpace(rest)
	if v, ok := strings.CutPrefix(rest, "budget="); ok {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 0 {
			return n
		}
	}
	return noBudget
}

// manifestEntry names one required-hot function by package directory
// (module-relative) and rendered name.
type manifestEntry struct {
	pkg string // e.g. "internal/pipeline"
	fn  string // e.g. "(*Processor).Process"
}

// hotPathManifest lists the known ingest hot paths. Adding a function here
// forces it to carry (and keep) a //podlint:hotpath annotation.
var hotPathManifest = []manifestEntry{
	{"internal/logging", "(*Bus).Publish"},
	{"internal/pipeline", "(*Processor).Process"},
	{"internal/pipeline", "(*ReorderBuffer).Offer"},
	{"internal/core", "(*Session).OnConformance"},
	{"internal/core", "(*Session).recordLogEvent"},
	{"internal/obs/flight", "(*Op).Record"},
}

// hotFunc is one annotated hot-path function.
type hotFunc struct {
	f      *srcFile
	decl   *ast.FuncDecl
	name   string // rendered, e.g. "(*Processor).Process"
	budget int    // declared escape budget, or noBudget
}

// HotFuncInfo is the serializable per-function budget row of the
// -hotpath-report table.
type HotFuncInfo struct {
	// Package is the module-relative package directory.
	Package string `json:"package"`
	// Function is the rendered function name, e.g. "(*Processor).Process".
	Function string `json:"function"`
	// Pos is the declaration position, file:line.
	Pos string `json:"pos"`
	// Budget is the declared heap-escape budget (-1: none declared).
	Budget int `json:"budget"`
	// Escapes is the measured heap-escape site count; -1 until an escape
	// analysis ran.
	Escapes int `json:"escapes"`
	// Sites lists the measured escape diagnostics, file:line: message.
	Sites []string `json:"sites,omitempty"`
}

// funcName renders a FuncDecl the way the manifest and reports name it.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + exprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// pkgDir returns the file's module-relative package directory.
func (f *srcFile) pkgDir() string { return path.Dir(f.rel) }

// hotFuncsOf resolves the //podlint:hotpath annotations of the files onto
// their function declarations. An annotation binds to a function when it
// sits inside the doc-comment block of the declaration (any line from the
// doc comment's start through the func line).
func hotFuncsOf(files []*srcFile) []*hotFunc {
	var out []*hotFunc
	for _, f := range files {
		if len(f.hotBudgets) == 0 {
			continue
		}
		for _, decl := range f.file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			from := f.line(fd)
			if fd.Doc != nil {
				from = f.fset.Position(fd.Doc.Pos()).Line
			}
			to := f.fset.Position(fd.Name.End()).Line
			for line, budget := range f.hotBudgets {
				if line >= from && line <= to {
					out = append(out, &hotFunc{f: f, decl: fd, name: funcName(fd), budget: budget})
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].f.rel != out[j].f.rel {
			return out[i].f.rel < out[j].f.rel
		}
		return out[i].f.line(out[i].decl) < out[j].f.line(out[j].decl)
	})
	return out
}

// lintHotPaths is the whole-tree hot-path pass: the manifest check plus the
// GO010 (allocation-prone constructs) and GO009 (defer in loop) checks on
// every annotated function.
func lintHotPaths(files []*srcFile) []Finding {
	hot := hotFuncsOf(files)
	var fs []Finding
	fs = append(fs, lintHotManifest(files, hot)...)
	for _, h := range hot {
		h.lintConstructs(&fs)
		h.lintDeferInLoop(&fs)
	}
	return fs
}

// lintHotManifest flags manifest functions that exist in the walked tree
// but carry no //podlint:hotpath annotation.
func lintHotManifest(files []*srcFile, hot []*hotFunc) []Finding {
	annotated := make(map[manifestEntry]bool, len(hot))
	for _, h := range hot {
		annotated[manifestEntry{h.f.pkgDir(), h.name}] = true
	}
	var fs []Finding
	for _, want := range hotPathManifest {
		if annotated[want] {
			continue
		}
		// Only flag when the function is actually in the walked tree — a
		// scoped run (podlint ./internal/obs) must not demand annotations
		// for packages it never parsed.
		for _, f := range files {
			if f.pkgDir() != want.pkg {
				continue
			}
			for _, decl := range f.file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || funcName(fd) != want.fn {
					continue
				}
				f.report(&fs, RuleSrcHotAlloc, fd.Name,
					"%s is a manifest hot path but carries no //podlint:hotpath annotation — its allocation budget is disarmed", want.fn)
			}
		}
	}
	return fs
}

// lintConstructs implements GO010 on one hot function: allocation-prone
// constructs that almost always betray a per-event heap allocation —
// fmt.Sprintf-family calls, unsized make of a map or slice, map composite
// literals, and closures capturing an iteration variable (a fresh closure
// allocation every pass of the loop). The checks are syntactic; what they
// cannot see (interface boxing through fmt's ...any, copy-on-write event
// chains) the compiler-assisted escape budget (GO011) catches.
func (h *hotFunc) lintConstructs(fs *[]Finding) {
	if h.decl.Body == nil {
		return
	}
	f := h.f
	fmtName := f.importName("fmt")
	var loops []ast.Node // enclosing loop stack
	inLoop := func() bool { return len(loops) > 0 }

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, v)
			for _, c := range childrenOfLoop(v) {
				ast.Inspect(c, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.FuncLit:
			if inLoop() && capturesLoopVar(v, loops[len(loops)-1]) {
				f.report(fs, RuleSrcHotAlloc, v,
					"%s: closure capturing a loop variable allocates every iteration — hoist it out of the loop", h.name)
			}
			return true
		case *ast.CompositeLit:
			if _, ok := v.Type.(*ast.MapType); ok {
				f.report(fs, RuleSrcHotAlloc, v,
					"%s: map literal allocates on the hot path — hoist it to a package variable or reuse a buffer", h.name)
			}
		case *ast.CallExpr:
			if fn := pkgCall(v, fmtName, "Sprintf", "Sprint", "Sprintln", "Errorf"); fn != "" {
				f.report(fs, RuleSrcHotAlloc, v,
					"%s: fmt.%s allocates (format state + boxed ...any args) on the hot path", h.name, fn)
			}
			h.checkMake(fs, v)
		}
		return true
	}
	ast.Inspect(h.decl.Body, walk)
}

// checkMake flags unsized make calls: make(map[...]) with no size hint and
// make([]T, 0) with no capacity — both grow by reallocating on the path
// that was supposed to be allocation-flat.
func (h *hotFunc) checkMake(fs *[]Finding, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) == 0 {
		return
	}
	switch call.Args[0].(type) {
	case *ast.MapType:
		if len(call.Args) == 1 {
			h.f.report(fs, RuleSrcHotAlloc, call,
				"%s: unsized make(map) on the hot path — pass a size hint", h.name)
		}
	case *ast.ArrayType:
		if len(call.Args) == 2 {
			if lit, ok := call.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
				h.f.report(fs, RuleSrcHotAlloc, call,
					"%s: make(slice, 0) with no capacity on the hot path — preallocate", h.name)
			}
		}
	}
}

// lintDeferInLoop implements GO009: a defer inside a loop of a hot-path
// function accumulates until the function returns — a lock "released" by
// such a defer is in reality held for every remaining iteration.
func (h *hotFunc) lintDeferInLoop(fs *[]Finding) {
	if h.decl.Body == nil {
		return
	}
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
			for _, c := range childrenOfLoop(v) {
				ast.Inspect(c, walk)
			}
			depth--
			return false
		case *ast.FuncLit:
			// A literal is its own defer scope: defers inside it run when
			// the literal returns, typically once per iteration — fine.
			return false
		case *ast.DeferStmt:
			if depth > 0 {
				h.f.report(fs, RuleSrcDeferInHotLoop, v,
					"%s: defer inside a loop runs only at function return — hoist it or scope the loop body into a function", h.name)
			}
		}
		return true
	}
	ast.Inspect(h.decl.Body, walk)
}

// childrenOfLoop returns a loop statement's component nodes so walkers can
// recurse with the loop pushed on their stack.
func childrenOfLoop(n ast.Node) []ast.Node {
	switch v := n.(type) {
	case *ast.ForStmt:
		out := make([]ast.Node, 0, 4)
		if v.Init != nil {
			out = append(out, v.Init)
		}
		if v.Cond != nil {
			out = append(out, v.Cond)
		}
		if v.Post != nil {
			out = append(out, v.Post)
		}
		return append(out, v.Body)
	case *ast.RangeStmt:
		return []ast.Node{v.Body}
	}
	return nil
}

// capturesLoopVar reports whether the literal references an identifier
// declared by the loop (range key/value, or a for-init := binding).
func capturesLoopVar(fl *ast.FuncLit, loop ast.Node) bool {
	vars := make(map[string]bool)
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			vars[id.Name] = true
		}
	}
	switch v := loop.(type) {
	case *ast.RangeStmt:
		addIdent(v.Key)
		addIdent(v.Value)
	case *ast.ForStmt:
		if as, ok := v.Init.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				addIdent(lhs)
			}
		}
	}
	if len(vars) == 0 {
		return false
	}
	captured := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && vars[id.Name] {
			captured = true
		}
		return !captured
	})
	return captured
}

// HotPathTable lists every annotated hot-path function under the targets,
// with budgets but no measured escapes (Escapes -1). EscapeAnalysis fills
// the measurement in.
func HotPathTable(root string, targets []string) ([]HotFuncInfo, error) {
	files, err := loadSources(root, targets)
	if err != nil {
		return nil, err
	}
	hot := hotFuncsOf(files)
	out := make([]HotFuncInfo, 0, len(hot))
	for _, h := range hot {
		out = append(out, HotFuncInfo{
			Package:  h.f.pkgDir(),
			Function: h.name,
			Pos:      fmt.Sprintf("%s:%d", h.f.rel, h.f.line(h.decl)),
			Budget:   h.budget,
			Escapes:  -1,
		})
	}
	return out, nil
}
