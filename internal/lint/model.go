package lint

import (
	"encoding/json"
	"fmt"
	"regexp"

	"poddiagnosis/internal/process"
)

// modelPos renders the locus of a model finding.
func modelPos(modelID, nodeID string) string {
	if nodeID == "" {
		return "model:" + modelID
	}
	return fmt.Sprintf("model:%s/node:%s", modelID, nodeID)
}

// LintModel applies the graph rules to a built process model. Build-time
// validation already guarantees reachability from the start and compiling
// patterns, so only the rules a valid model can still violate run here:
// dead transitions (PM002), duplicate step ids (PM004), unobservable
// activities (PM005) and shadowed patterns (PM006).
func LintModel(m *process.Model) []Finding {
	g := modelGraphFromModel(m)
	return g.lint()
}

// modelDoc mirrors the serialized form of a process model, so documents
// can be linted without (and before) building them.
type modelDoc struct {
	ID            string          `json:"id"`
	Name          string          `json:"name"`
	Nodes         []*process.Node `json:"nodes"`
	Edges         []process.Edge  `json:"edges"`
	ErrorPatterns []string        `json:"errorPatterns,omitempty"`
}

// LintModelDoc lints a raw JSON process-model document. Unlike
// process.UnmarshalModel it does not stop at the first defect: every
// violated rule is reported, including structural defects (PM007),
// non-compiling patterns (PM003) and unreachable nodes (PM001) that the
// builder would reject outright. The name labels findings when the
// document carries no id.
func LintModelDoc(name string, data []byte) []Finding {
	var doc modelDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return []Finding{finding(RuleModelStructure, modelPos(name, ""), "model document does not parse: %v", err)}
	}
	if doc.ID != "" {
		name = doc.ID
	}

	var fs []Finding
	g := &modelGraph{id: name, out: make(map[string][]string), in: make(map[string][]string)}
	seen := make(map[string]bool)
	for _, n := range doc.Nodes {
		if n == nil {
			fs = append(fs, finding(RuleModelStructure, modelPos(name, ""), "null node in document"))
			continue
		}
		if seen[n.ID] {
			fs = append(fs, finding(RuleModelStructure, modelPos(name, n.ID), "duplicate node id %q", n.ID))
			continue
		}
		seen[n.ID] = true
		g.nodes = append(g.nodes, n)
		switch n.Kind {
		case process.KindStart:
			if g.start != "" {
				fs = append(fs, finding(RuleModelStructure, modelPos(name, n.ID), "multiple start events (%q and %q)", g.start, n.ID))
			} else {
				g.start = n.ID
			}
		case process.KindEnd:
			g.ends = append(g.ends, n.ID)
		}
		for _, p := range n.Patterns {
			if _, err := regexp.Compile(p); err != nil {
				fs = append(fs, finding(RuleModelBadPattern, modelPos(name, n.ID), "pattern %q does not compile: %v", p, err))
			}
		}
	}
	if g.start == "" {
		fs = append(fs, finding(RuleModelStructure, modelPos(name, ""), "model has no start event"))
	}
	if len(g.ends) == 0 {
		fs = append(fs, finding(RuleModelStructure, modelPos(name, ""), "model has no end event"))
	}
	for _, p := range doc.ErrorPatterns {
		if _, err := regexp.Compile(p); err != nil {
			fs = append(fs, finding(RuleModelBadPattern, modelPos(name, ""), "error pattern %q does not compile: %v", p, err))
		}
	}
	for _, e := range doc.Edges {
		if !seen[e.From] {
			fs = append(fs, finding(RuleModelStructure, modelPos(name, ""), "edge from unknown node %q", e.From))
			continue
		}
		if !seen[e.To] {
			fs = append(fs, finding(RuleModelStructure, modelPos(name, ""), "edge to unknown node %q", e.To))
			continue
		}
		g.out[e.From] = append(g.out[e.From], e.To)
		g.in[e.To] = append(g.in[e.To], e.From)
	}
	return append(fs, g.lint()...)
}

// modelGraph is the common shape the model rules run over, built from
// either a live Model or a raw document.
type modelGraph struct {
	id    string
	nodes []*process.Node
	out   map[string][]string
	in    map[string][]string
	start string
	ends  []string
}

func modelGraphFromModel(m *process.Model) *modelGraph {
	g := &modelGraph{
		id:    m.ID(),
		start: m.Start(),
		ends:  m.Ends(),
		out:   make(map[string][]string),
		in:    make(map[string][]string),
	}
	for _, n := range m.Nodes() {
		g.nodes = append(g.nodes, n)
		g.out[n.ID] = m.Outgoing(n.ID)
		g.in[n.ID] = m.Incoming(n.ID)
	}
	return g
}

// lint runs the graph rules: PM001 (unreachable), PM002 (dead end), PM004
// (duplicate step), PM005 (no patterns), PM006 (shadowed pattern).
// Recurring activities float free of the main flow and are exempt from the
// reachability rules, matching the builder's semantics.
func (g *modelGraph) lint() []Finding {
	var fs []Finding

	// PM001: forward reachability from the start event.
	if g.start != "" {
		reach := g.reachable(g.start, g.out)
		for _, n := range g.nodes {
			if !reach[n.ID] && !n.Recurring {
				fs = append(fs, finding(RuleModelUnreachable, modelPos(g.id, n.ID), "node %q is unreachable from the start event", n.ID))
			}
		}
	}

	// PM002: backward reachability from the end events. A node no token
	// can leave toward completion is a dead transition: conformance
	// replay entering it can never finish the operation.
	if len(g.ends) > 0 {
		coReach := make(map[string]bool)
		for _, end := range g.ends {
			for id := range g.reachable(end, g.in) {
				coReach[id] = true
			}
		}
		for _, n := range g.nodes {
			if !coReach[n.ID] && !n.Recurring && n.Kind != process.KindEnd {
				fs = append(fs, finding(RuleModelDeadEnd, modelPos(g.id, n.ID), "node %q cannot reach any end event", n.ID))
			}
		}
	}

	// PM004: step ids must identify one activity; ActivityByStep, the
	// assertion trigger chain and fault-tree pruning all assume it.
	byStep := make(map[string]string)
	for _, n := range g.nodes {
		if n.Kind != process.KindActivity || n.StepID == "" {
			continue
		}
		if prev, ok := byStep[n.StepID]; ok {
			fs = append(fs, finding(RuleModelDuplicateStep, modelPos(g.id, n.ID), "step id %q already used by activity %q", n.StepID, prev))
			continue
		}
		byStep[n.StepID] = n.ID
	}

	// PM005 / PM006: every activity needs at least one pattern, and the
	// same pattern on two activities makes classification ambiguous
	// (longest-pattern-wins cannot break an exact tie).
	byPattern := make(map[string]string)
	for _, n := range g.nodes {
		if n.Kind != process.KindActivity {
			continue
		}
		if len(n.Patterns) == 0 {
			fs = append(fs, finding(RuleModelNoPatterns, modelPos(g.id, n.ID), "activity %q has no log patterns and can never be observed", n.ID))
		}
		for _, p := range n.Patterns {
			if prev, ok := byPattern[p]; ok && prev != n.ID {
				fs = append(fs, finding(RuleModelShadowed, modelPos(g.id, n.ID), "pattern %q also classifies to activity %q", p, prev))
				continue
			}
			byPattern[p] = n.ID
		}
	}
	return fs
}

// reachable returns the set of node ids reachable from start following the
// given adjacency (forward with g.out, backward with g.in).
func (g *modelGraph) reachable(start string, adj map[string][]string) map[string]bool {
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return seen
}
