package lint

import (
	"fmt"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Compiler-assisted allocation budgets (GO011). The AST pass (GO010) sees
// construct shapes; what it cannot see — interface boxing through ...any,
// closures the compiler fails to stack-allocate, copy-on-write value
// chains — the compiler's own escape analysis can. podlint shells out to
//
//	go build -gcflags=-m <packages>
//
// parses the "escapes to heap" / "moved to heap" diagnostics, attributes
// each site to the enclosing //podlint:hotpath function by file and line
// range, and fails any function whose site count exceeds its declared
// budget=N. The Go build cache replays compiler diagnostics on cache hits,
// so repeated runs stay cheap and deterministic.

// escapeSite is one parsed escape diagnostic.
type escapeSite struct {
	file string // module-relative path
	line int
	msg  string
}

// escapeLineRE matches one compiler diagnostic line: path:line:col: message.
var escapeLineRE = regexp.MustCompile(`^(\S+\.go):(\d+):(\d+): (.+)$`)

// parseEscapeDiagnostics extracts heap-escape sites from `go build
// -gcflags=-m` output. Only the two diagnostics that mean a heap
// allocation are kept: "escapes to heap" and "moved to heap". The
// inlining/leaking chatter (-m also reports "can inline", "leaking param")
// is dropped — parameters that leak are the caller's allocation, not this
// function's.
func parseEscapeDiagnostics(out string) []escapeSite {
	var sites []escapeSite
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if constStringEscape(msg) {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		sites = append(sites, escapeSite{file: m[1], line: n, msg: msg})
	}
	return sites
}

// constStringEscape reports whether the diagnostic is a bare string
// constant "escaping" — e.g. `"obs: counter cannot decrease" escapes to
// heap`, the boxed argument of an inlined panic path. The constant lives
// in read-only data; no per-operation allocation happens unless the panic
// fires, so these sites do not count against a budget. A concatenation
// (`"a" + x escapes to heap`) is a real allocation and is kept.
func constStringEscape(msg string) bool {
	lit, ok := strings.CutSuffix(msg, " escapes to heap")
	if !ok {
		return false
	}
	return len(lit) >= 2 && lit[0] == '"' && lit[len(lit)-1] == '"' && !strings.Contains(lit, `" + `)
}

// applyEscapes attributes escape sites to hot functions and produces the
// budget table plus GO011 findings for every function over budget. A hot
// function with no declared budget is reported in the table but never
// flagged — the annotation alone opts into the construct rules only.
func applyEscapes(hot []*hotFunc, sites []escapeSite) ([]HotFuncInfo, []Finding) {
	infos := make([]HotFuncInfo, 0, len(hot))
	var fs []Finding
	for _, h := range hot {
		from := h.f.line(h.decl)
		to := h.f.fset.Position(h.decl.End()).Line
		info := HotFuncInfo{
			Package:  h.f.pkgDir(),
			Function: h.name,
			Pos:      fmt.Sprintf("%s:%d", h.f.rel, from),
			Budget:   h.budget,
			Escapes:  0,
		}
		for _, s := range sites {
			if s.file == h.f.rel && s.line >= from && s.line <= to {
				info.Escapes++
				info.Sites = append(info.Sites, fmt.Sprintf("%s:%d: %s", s.file, s.line, s.msg))
			}
		}
		sort.Strings(info.Sites)
		if h.budget != noBudget && info.Escapes > h.budget {
			if !h.f.suppressed(RuleSrcEscapeBudget, from) {
				fs = append(fs, finding(RuleSrcEscapeBudget, info.Pos,
					"%s has %d heap-escape sites, over its declared budget=%d — e.g. %s",
					h.name, info.Escapes, h.budget, firstSite(info.Sites)))
			}
		}
		infos = append(infos, info)
	}
	Sort(fs)
	return infos, fs
}

func firstSite(sites []string) string {
	if len(sites) == 0 {
		return "(no sites)"
	}
	return sites[0]
}

// EscapeAnalysis runs the compiler-assisted budget check: parse the
// targets, resolve the hot functions, build their packages with
// -gcflags=-m and compare measured escape sites against declared budgets.
// It returns the per-function budget table (for -hotpath-report) and the
// GO011 findings. root must be the module root — the compiler prints
// module-relative paths, and the hot-function table is keyed the same way.
func EscapeAnalysis(root string, targets []string) ([]HotFuncInfo, []Finding, error) {
	files, err := loadSources(root, targets)
	if err != nil {
		return nil, nil, err
	}
	hot := hotFuncsOf(files)
	if len(hot) == 0 {
		return nil, nil, nil
	}
	pkgSet := make(map[string]bool)
	for _, h := range hot {
		pkgSet[h.f.pkgDir()] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, "./"+p)
	}
	sort.Strings(pkgs)
	out, err := runEscapeBuild(root, pkgs)
	if err != nil {
		return nil, nil, err
	}
	infos, fs := applyEscapes(hot, parseEscapeDiagnostics(out))
	return infos, fs, nil
}

// runEscapeBuild invokes the Go toolchain and returns the combined
// diagnostic output. A build failure surfaces as an error carrying the
// compiler output — podlint must not mistake "does not compile" for
// "within budget".
func runEscapeBuild(root string, pkgs []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("lint: go build -gcflags=-m failed: %w\n%s", err, out)
	}
	return string(out), nil
}
