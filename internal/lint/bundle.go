package lint

import (
	"fmt"
	"sort"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/process"
)

// NamedSpec labels an assertion specification for finding positions.
type NamedSpec struct {
	// Name labels the spec in findings, e.g. "default-spec".
	Name string
	// Spec is the parsed specification.
	Spec *assertspec.Spec
}

// Bundle is one operation's complete artifact set: the process model, the
// assertion specifications bound to it, the diagnosis-plan catalog consulted
// when those assertions fail, and the check registry everything references.
// Plans and Registry are typically shared between bundles (the deployment
// runs one diagnosis engine for all operations).
type Bundle struct {
	// Name labels the bundle in findings.
	Name string
	// Model is the operation's process model.
	Model *process.Model
	// Specs are the assertion specifications triggered from the model.
	Specs []NamedSpec
	// Plans is the diagnosis-plan catalog.
	Plans *diagplan.Catalog
	// Registry is the assertion check registry.
	Registry *assertion.Registry
}

// LintBundles cross-validates a set of operation bundles: each model, spec
// and plan individually, the per-bundle trigger chain (XC001, XC002), and —
// because diagnosis plans are shared between operations — plan
// triggerability (XC003) against the union of every bundle's
// specifications. Shared catalogs are linted once.
func LintBundles(bundles ...Bundle) []Finding {
	var fs []Finding
	seenCat := make(map[*diagplan.Catalog]bool)
	allBound := make(map[string]bool) // checks bound by any spec of any bundle

	for _, b := range bundles {
		for _, ns := range b.Specs {
			for _, bind := range ns.Spec.Bindings() {
				allBound[bind.CheckID] = true
			}
		}
	}

	for _, b := range bundles {
		if b.Model != nil {
			fs = append(fs, LintModel(b.Model)...)
		}
		bound := make(map[string]bool)
		for _, ns := range b.Specs {
			fs = append(fs, LintSpec(ns.Name, ns.Spec, b.Model, b.Registry)...)
			for _, bind := range ns.Spec.Bindings() {
				bound[bind.CheckID] = true
			}
		}

		// XC001: each process step should have at least one assertion —
		// post-step, or a timeout timer armed on the step. A bare step is
		// a gap in the paper's detection chain: only conformance checking
		// watches it.
		if b.Model != nil {
			for _, n := range b.Model.Activities() {
				if n.StepID == "" {
					continue
				}
				covered := false
				for _, ns := range b.Specs {
					if len(ns.Spec.ByStep(n.StepID)) > 0 || len(ns.Spec.TimeoutsFor(n.StepID)) > 0 {
						covered = true
						break
					}
				}
				if !covered {
					fs = append(fs, finding(RuleCoverageStepNoAssertion, modelPos(b.Model.ID(), n.ID),
						"step %s (%s) has no assertion bound", n.StepID, n.Name))
				}
			}
		}

		// XC002: every spec-bound assertion needs a diagnosis plan, or its
		// failure is detected but undiagnosable.
		if b.Plans != nil {
			for _, checkID := range sortedKeys(bound) {
				if len(b.Plans.Select(checkID)) == 0 {
					fs = append(fs, finding(RuleCoverageAssertionNoTree, fmt.Sprintf("bundle:%s/check:%s", b.Name, checkID),
						"assertion %q is bound by a specification but has no diagnosis plan", checkID))
				}
			}
		}

		if b.Plans != nil && !seenCat[b.Plans] {
			seenCat[b.Plans] = true
			for _, p := range b.Plans.All() {
				fs = append(fs, LintPlan(p, b.Registry)...)
				// XC003: a plan whose assertion no specification binds can
				// only fire through on-demand diagnosis; in the normal
				// trigger chain it is dead weight.
				if !allBound[p.AssertionID] {
					fs = append(fs, finding(RuleCoverageTreeNeverTrigger, planPos(p.ID, ""),
						"assertion %q is bound by no specification; the plan never fires from monitoring", p.AssertionID))
				}
			}
		}
	}
	Sort(fs)
	return fs
}

// Builtins returns the bundles every shipped binary deploys: the built-in
// operations over the default registry and the full diagnosis-plan catalog
// (the compiled fault-tree knowledge base plus the scenario plans).
// cmd/podlint lints these by default, and the regression tests pin them to
// zero errors.
func Builtins() ([]Bundle, error) {
	reg := assertion.DefaultRegistry()
	cat := faulttree.FullCatalog()
	soSpec, err := assertspec.Parse(process.ScaleOutSpecText, reg)
	if err != nil {
		return nil, fmt.Errorf("lint: parse scale-out spec: %w", err)
	}
	bgSpec, err := assertspec.Parse(process.BlueGreenSpecText, reg)
	if err != nil {
		return nil, fmt.Errorf("lint: parse blue/green spec: %w", err)
	}
	ssSpec, err := assertspec.Parse(process.SpotRebalanceSpecText, reg)
	if err != nil {
		return nil, fmt.Errorf("lint: parse spot-rebalance spec: %w", err)
	}
	return []Bundle{
		{
			Name:     "rolling-upgrade",
			Model:    process.RollingUpgradeModel(),
			Specs:    []NamedSpec{{Name: "default-spec", Spec: assertspec.DefaultSpec()}},
			Plans:    cat,
			Registry: reg,
		},
		{
			Name:     "scale-out",
			Model:    process.ScaleOutModel(),
			Specs:    []NamedSpec{{Name: "scale-out-spec", Spec: soSpec}},
			Plans:    cat,
			Registry: reg,
		},
		{
			Name:     "blue-green",
			Model:    process.BlueGreenModel(),
			Specs:    []NamedSpec{{Name: "blue-green-spec", Spec: bgSpec}},
			Plans:    cat,
			Registry: reg,
		},
		{
			Name:     "spot-rebalance",
			Model:    process.SpotRebalanceModel(),
			Specs:    []NamedSpec{{Name: "spot-rebalance-spec", Spec: ssSpec}},
			Plans:    cat,
			Registry: reg,
		},
	}, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
