// Package lint is the static-analysis suite guarding the correctness of
// POD-Diagnosis's operator-authored artifacts and of the Go source itself.
//
// POD-Diagnosis is only as correct as its models: a diagnosis plan with a
// dangling diagnosis-test reference, an assertion spec bound to a step the
// process model does not define, or an unreachable root cause is silently
// wrong until the exact failure that needs it. The package therefore lints
// on two fronts:
//
//   - Model linting: process models (built or raw JSON documents),
//     assertion specifications, and diagnosis-plan catalogs are validated
//     individually and cross-validated as a Bundle — the paper's §IV
//     trigger chain (process step → assertion → diagnosis plan) must be
//     closed.
//
//   - Source analyzers: go/ast passes over the repository enforce project
//     invariants — no wall-clock reads outside internal/clock, metric
//     naming, no mutex held across a blocking channel send, and no
//     context.Background on request paths under internal/rest.
//
// Every finding carries a stable rule ID, a severity, and a position
// (file:line for source findings, an artifact locus for model findings).
// Rule documentation lives in the Rules table; cmd/podlint is the CLI.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Severity grades a finding.
type Severity int

// Severities. Errors fail the build (podlint exits non-zero); warnings are
// informational (coverage gaps, degenerate-but-legal structures).
const (
	SevWarning Severity = iota + 1
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the string form.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var v string
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch v {
	case "warning":
		*s = SevWarning
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("lint: unknown severity %q", v)
	}
	return nil
}

// Finding is one lint result.
type Finding struct {
	// Rule is the stable rule ID, e.g. "GO001".
	Rule string `json:"rule"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Pos locates the finding: "path/file.go:42" for source findings, an
	// artifact locus like "model:rolling-upgrade/node:update-lc" for model
	// findings.
	Pos string `json:"pos"`
	// Message explains the defect.
	Message string `json:"message"`
}

// String renders the finding in the conventional compiler format.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s %s: %s", f.Pos, f.Severity, f.Rule, f.Message)
}

// Rule IDs. The IDs are stable across releases: suppression comments,
// CI dashboards and the documentation key off them. PM rules lint process
// models, AS rules assertion specifications, DG rules diagnosis plans
// (which replaced the retired tree-only FT rules), XC rules the
// cross-artifact trigger chain, RM rules the remediation-catalog
// bindings against the plan causes, GO rules the Go source.
const (
	RuleModelUnreachable   = "PM001"
	RuleModelDeadEnd       = "PM002"
	RuleModelBadPattern    = "PM003"
	RuleModelDuplicateStep = "PM004"
	RuleModelNoPatterns    = "PM005"
	RuleModelShadowed      = "PM006"
	RuleModelStructure     = "PM007"

	RuleSpecUnknownCheck     = "AS001"
	RuleSpecUnknownStep      = "AS002"
	RuleSpecDuplicateBinding = "AS003"

	RulePlanDanglingCheck   = "DG001"
	RulePlanCycle           = "DG002"
	RulePlanDupSiblingProb  = "DG003"
	RulePlanZeroSiblingProb = "DG004"
	RulePlanUnreachable     = "DG005"
	RulePlanStepDisjoint    = "DG006"
	RulePlanUntestableCause = "DG007"
	RulePlanFanInMass       = "DG008"
	RulePlanNoTestClass     = "DG009"
	RulePlanShape           = "DG010"

	RuleCoverageStepNoAssertion  = "XC001"
	RuleCoverageAssertionNoTree  = "XC002"
	RuleCoverageTreeNeverTrigger = "XC003"

	RuleRemediateDanglingCause = "RM001"
	RuleRemediateUncovered     = "RM002"
	RuleRemediateStaleManual   = "RM003"

	RuleSrcWallClock         = "GO001"
	RuleSrcMetricName        = "GO002"
	RuleSrcMutexChannelSend  = "GO003"
	RuleSrcContextBackground = "GO004"
	RuleSrcFlightKind        = "GO005"
	RuleSrcGoroutineLeak     = "GO006"
	RuleSrcLockOrder         = "GO007"
	RuleSrcTimerInLoop       = "GO008"
	RuleSrcDeferInHotLoop    = "GO009"
	RuleSrcHotAlloc          = "GO010"
	RuleSrcEscapeBudget      = "GO011"

	RuleRatchetNs       = "RT001"
	RuleRatchetAllocs   = "RT002"
	RuleRatchetBaseline = "RT003"
)

// RuleInfo documents one rule.
type RuleInfo struct {
	// ID is the stable rule identifier.
	ID string `json:"id"`
	// Severity is the rule's severity.
	Severity Severity `json:"severity"`
	// Front is "model" or "source".
	Front string `json:"front"`
	// Summary is a one-line description.
	Summary string `json:"summary"`
}

// ruleTable is the authoritative rule registry. Adding a rule means adding
// a row here, implementing it in the matching front, and seeding one
// violation in the completeness fixture of lint_test.go.
var ruleTable = map[string]RuleInfo{
	RuleModelUnreachable:   {RuleModelUnreachable, SevError, "model", "process node unreachable from the start event"},
	RuleModelDeadEnd:       {RuleModelDeadEnd, SevError, "model", "process node cannot reach any end event (dead transition)"},
	RuleModelBadPattern:    {RuleModelBadPattern, SevError, "model", "log-classification regexp does not compile"},
	RuleModelDuplicateStep: {RuleModelDuplicateStep, SevError, "model", "two activities share one process step id"},
	RuleModelNoPatterns:    {RuleModelNoPatterns, SevWarning, "model", "activity has no log patterns and can never be observed"},
	RuleModelShadowed:      {RuleModelShadowed, SevWarning, "model", "identical log pattern on two activities (ambiguous classification)"},
	RuleModelStructure:     {RuleModelStructure, SevError, "model", "structural defect: duplicate node id, missing start/end, or edge to unknown node"},

	RuleSpecUnknownCheck:     {RuleSpecUnknownCheck, SevError, "model", "assertion binding references a check the registry does not know"},
	RuleSpecUnknownStep:      {RuleSpecUnknownStep, SevError, "model", "assertion binding references a step the process model does not define"},
	RuleSpecDuplicateBinding: {RuleSpecDuplicateBinding, SevWarning, "model", "identical assertion binding appears twice"},

	RulePlanDanglingCheck:   {RulePlanDanglingCheck, SevError, "model", "diagnosis-plan node references an unregistered diagnosis test"},
	RulePlanCycle:           {RulePlanCycle, SevError, "model", "diagnosis plan contains a cycle (node reachable from itself)"},
	RulePlanDupSiblingProb:  {RulePlanDupSiblingProb, SevError, "model", "sibling edge probabilities tie — probability-ordered visit is underdetermined"},
	RulePlanZeroSiblingProb: {RulePlanZeroSiblingProb, SevError, "model", "edge with zero prior probability in a multi-edge group"},
	RulePlanUnreachable:     {RulePlanUnreachable, SevError, "model", "plan node unreachable from the entry (orphan — no walk ever visits it)"},
	RulePlanStepDisjoint:    {RulePlanStepDisjoint, SevWarning, "model", "edge joins disjoint step scopes — dead under any non-empty step context"},
	RulePlanUntestableCause: {RulePlanUntestableCause, SevWarning, "model", "cause carries no diagnosis test and can never be confirmed"},
	RulePlanFanInMass:       {RulePlanFanInMass, SevWarning, "model", "fan-in node's incoming prior probabilities sum past 1"},
	RulePlanNoTestClass:     {RulePlanNoTestClass, SevWarning, "model", "diagnosis test lacks a timeout/retry classification (testClass) — the resilience layer cannot tell whether retrying is safe"},
	RulePlanShape:           {RulePlanShape, SevError, "model", "structural defect: duplicate id, missing/checked entry, cause with edges, dangling or duplicate edge, unknown kind"},

	RuleCoverageStepNoAssertion:  {RuleCoverageStepNoAssertion, SevWarning, "model", "process step has no assertion bound (trigger chain gap)"},
	RuleCoverageAssertionNoTree:  {RuleCoverageAssertionNoTree, SevError, "model", "spec-bound assertion has no fault tree — its failure cannot be diagnosed"},
	RuleCoverageTreeNeverTrigger: {RuleCoverageTreeNeverTrigger, SevWarning, "model", "fault tree's assertion is bound by no specification (tree never fires)"},

	RuleRemediateDanglingCause: {RuleRemediateDanglingCause, SevError, "model", "auto-mode remediation action binds a cause no diagnosis plan defines (action can never fire)"},
	RuleRemediateUncovered:     {RuleRemediateUncovered, SevError, "model", "rolling-upgrade plan cause neither binds a remediation action nor carries an explicit manual marker"},
	RuleRemediateStaleManual:   {RuleRemediateStaleManual, SevWarning, "model", "manual-remediation marker names a cause no diagnosis plan defines"},

	RuleSrcWallClock:         {RuleSrcWallClock, SevError, "source", "time.Now/time.Since outside internal/clock — use clock.Wall or an injected clock.Clock"},
	RuleSrcMetricName:        {RuleSrcMetricName, SevError, "source", "metric name does not match ^pod_[a-z_]+$"},
	RuleSrcMutexChannelSend:  {RuleSrcMutexChannelSend, SevError, "source", "blocking channel send while a mutex is held"},
	RuleSrcContextBackground: {RuleSrcContextBackground, SevError, "source", "context.Background/TODO on a request path under internal/rest"},
	RuleSrcFlightKind:        {RuleSrcFlightKind, SevError, "source", "timeline entry kind string is not a registered flight.Kind"},
	RuleSrcGoroutineLeak:     {RuleSrcGoroutineLeak, SevError, "source", "goroutine loops on channel operations with no return/break — it can never exit and leaks"},
	RuleSrcLockOrder:         {RuleSrcLockOrder, SevError, "source", "mutex acquisition cycle: two code paths take the same locks in opposite orders (deadlock)"},
	RuleSrcTimerInLoop:       {RuleSrcTimerInLoop, SevError, "source", "timer channel created per loop iteration (time.After/clk.After in a loop) — hoist a Ticker"},
	RuleSrcDeferInHotLoop:    {RuleSrcDeferInHotLoop, SevError, "source", "defer inside a loop of a hot-path function — defers pile up until function return"},
	RuleSrcHotAlloc:          {RuleSrcHotAlloc, SevError, "source", "allocation-prone construct in a //podlint:hotpath function (fmt.Sprintf, unsized make, map literal, per-iteration closure)"},
	RuleSrcEscapeBudget:      {RuleSrcEscapeBudget, SevError, "source", "hot-path function exceeds its declared heap-escape budget (compiler -gcflags=-m diagnostics)"},

	RuleRatchetNs:       {RuleRatchetNs, SevError, "bench", "benchmark ns/op regressed past the ratchet threshold against the committed baseline"},
	RuleRatchetAllocs:   {RuleRatchetAllocs, SevError, "bench", "benchmark allocs/op regressed against the committed baseline (any growth fails)"},
	RuleRatchetBaseline: {RuleRatchetBaseline, SevWarning, "bench", "benchmark has no ratchet baseline in BENCH_*.json — its performance is unguarded"},
}

// Rules returns the rule registry sorted by ID.
func Rules() []RuleInfo {
	out := make([]RuleInfo, 0, len(ruleTable))
	for _, r := range ruleTable {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// severityOf returns the registered severity of a rule (SevError for
// unknown rules, which should not happen).
func severityOf(rule string) Severity {
	if r, ok := ruleTable[rule]; ok {
		return r.Severity
	}
	return SevError
}

// finding builds a Finding with the rule's registered severity.
func finding(rule, pos, format string, args ...any) Finding {
	return Finding{Rule: rule, Severity: severityOf(rule), Pos: pos, Message: fmt.Sprintf(format, args...)}
}

// CountErrors returns the number of error-severity findings.
func CountErrors(fs []Finding) int {
	n := 0
	for _, f := range fs {
		if f.Severity == SevError {
			n++
		}
	}
	return n
}

// Sort orders findings by position, then rule, for stable output.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Pos != fs[j].Pos {
			return fs[i].Pos < fs[j].Pos
		}
		if fs[i].Rule != fs[j].Rule {
			return fs[i].Rule < fs[j].Rule
		}
		return fs[i].Message < fs[j].Message
	})
}
