package lint

import (
	"go/ast"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"poddiagnosis/internal/obs/flight"
)

// metricMethods are the obs.Registry constructors whose first argument is
// a metric name.
var metricMethods = []string{"Counter", "CounterVec", "Gauge", "GaugeVec", "Histogram", "HistogramVec"}

// metricNameRE is the project's metric naming convention: one flat
// pod_-prefixed snake_case identifier, so every series lands in one
// namespace on the /metrics exposition.
var metricNameRE = regexp.MustCompile(`^pod_[a-z_]+$`)

// analyzeFile runs the per-file GO analyzers over one parsed file. The
// whole-tree passes (GO007 lock ordering, GO009/GO010 hot paths) run from
// LintSource once all files are parsed.
func analyzeFile(f *srcFile) []Finding {
	var fs []Finding
	f.lintWallClock(&fs)
	f.lintMetricNames(&fs)
	f.lintMutexSends(&fs)
	f.lintRestContext(&fs)
	f.lintFlightKinds(&fs)
	f.lintGoroutineLeaks(&fs)
	f.lintTimersInLoop(&fs)
	return fs
}

// lintWallClock implements GO001: no time.Now or time.Since outside
// internal/clock. Drain retention, TTL clamping and step timers all run on
// injected clocks; a stray wall-clock read silently diverges from the
// scaled simulation clock and breaks deterministic replays. Wall-clock
// measurements that are genuinely wanted go through clock.Wall.
func (f *srcFile) lintWallClock(fs *[]Finding) {
	if f.rel == "internal/clock" || strings.HasPrefix(f.rel, "internal/clock/") {
		return
	}
	timeName := f.importName("time")
	if timeName == "" {
		return
	}
	ast.Inspect(f.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := pkgCall(call, timeName, "Now", "Since"); fn != "" {
			f.report(fs, RuleSrcWallClock, call,
				"time.%s outside internal/clock — use clock.Wall or an injected clock.Clock", fn)
		}
		return true
	})
}

// lintMetricNames implements GO002: the first argument of every metric
// constructor must be a literal matching ^pod_[a-z_]+$. Non-literal names
// are not checked (none exist in this codebase; dynamic names would break
// grep-ability anyway).
func (f *srcFile) lintMetricNames(fs *[]Finding) {
	ast.Inspect(f.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		matched := false
		for _, m := range metricMethods {
			if sel.Sel.Name == m {
				matched = true
				break
			}
		}
		if !matched {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind.String() != "STRING" {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !metricNameRE.MatchString(name) {
			f.report(fs, RuleSrcMetricName, lit, "metric name %q does not match ^pod_[a-z_]+$", name)
		}
		return true
	})
}

// flightImportPath is the flight recorder package whose Kind enum GO005
// validates against.
const flightImportPath = "poddiagnosis/internal/obs/flight"

// knownFlightKinds is built from the flight package's registered enum,
// so the analyzer can never drift from the source of truth.
var knownFlightKinds = func() map[string]bool {
	out := make(map[string]bool, len(flight.Kinds()))
	for _, k := range flight.Kinds() {
		out[string(k)] = true
	}
	return out
}()

// lintFlightKinds implements GO005: every string literal used as a
// flight-recorder entry kind — a flight.Kind("...") conversion or a
// Kind: "..." field in a flight.Entry composite literal — must name a
// registered kind. An invented kind silently fragments timelines: the
// REST ?kind= filter rejects it and renderers cannot classify it.
func (f *srcFile) lintFlightKinds(fs *[]Finding) {
	flightName := f.importName(flightImportPath)
	if flightName == "" {
		return
	}
	ast.Inspect(f.file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Kind" || len(v.Args) != 1 {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != flightName {
				return true
			}
			f.checkFlightKind(fs, v.Args[0])
		case *ast.CompositeLit:
			sel, ok := v.Type.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Entry" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != flightName {
				return true
			}
			for _, el := range v.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Kind" {
					f.checkFlightKind(fs, kv.Value)
				}
			}
		}
		return true
	})
}

// checkFlightKind flags a string literal that is not a registered kind.
// Non-literal expressions (typically the named Kind constants) pass.
func (f *srcFile) checkFlightKind(fs *[]Finding, e ast.Expr) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !knownFlightKinds[name] {
		f.report(fs, RuleSrcFlightKind, lit,
			"timeline entry kind %q is not a registered flight.Kind (known: %v)", name, flight.Kinds())
	}
}

// lintRestContext implements GO004: handlers and clients under
// internal/rest must propagate the request's context; minting a fresh
// context.Background (or TODO) there detaches the work from cancellation,
// deadlines and the request's trace span.
func (f *srcFile) lintRestContext(fs *[]Finding) {
	if !strings.HasPrefix(f.rel, "internal/rest/") {
		return
	}
	ctxName := f.importName("context")
	if ctxName == "" {
		return
	}
	ast.Inspect(f.file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := pkgCall(call, ctxName, "Background", "TODO"); fn != "" {
			f.report(fs, RuleSrcContextBackground, call,
				"context.%s on a request path — propagate the caller's context", fn)
		}
		return true
	})
}

// lintMutexSends implements GO003: no blocking channel send while a mutex
// is held. A consumer that needs the same lock to drain the channel
// deadlocks the publisher (the Bus.Publish spin bug class); the accepted
// pattern is a select with a default clause, which makes bounded progress
// and can never block under the lock. The analysis is syntactic and
// lexical: Lock/RLock on a receiver expression marks it held until the
// matching Unlock/RUnlock in the same statement sequence (a deferred
// Unlock holds it for the remainder of the function), branches fork a copy
// of the held set, and function literals start a fresh scope.
func (f *srcFile) lintMutexSends(fs *[]Finding) {
	w := &lockWalker{f: f, fs: fs}
	for _, decl := range f.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		w.walkFuncBody(fd.Body)
	}
}

type lockWalker struct {
	f  *srcFile
	fs *[]Finding
}

// walkFuncBody analyzes one function body with an empty held set, then
// recurses into the function literals defined directly inside it — each a
// fresh scope, since a literal generally runs outside the locked region.
func (w *lockWalker) walkFuncBody(body *ast.BlockStmt) {
	w.stmts(body.List, map[string]bool{})
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
			return false // nested literals are found by the recursive call
		}
		return true
	})
	for _, fl := range lits {
		w.walkFuncBody(fl.Body)
	}
}

// stmts walks a statement sequence, threading the held-lock set through.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// stmt processes one statement and returns the held set after it.
// Branching statements analyze their bodies on a copy: a lock acquired on
// one conditional path is not assumed held afterwards (approximation).
// Function literals are NOT descended into here — walkFuncBody owns them.
func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if recv, op := lockOp(call); op != "" {
				held = cloneSet(held)
				if op == "lock" {
					held[recv] = true
				} else {
					delete(held, recv)
				}
			}
		}
	case *ast.SendStmt:
		w.flagSend(v, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases only at return: the lock stays held
		// for the analysis of the remaining statements, which is the
		// common pattern the rule exists for.
	case *ast.LabeledStmt:
		return w.stmt(v.Stmt, held)
	case *ast.BlockStmt:
		return w.stmts(v.List, held)
	case *ast.IfStmt:
		if v.Init != nil {
			held = w.stmt(v.Init, held)
		}
		w.stmts(v.Body.List, cloneSet(held))
		if v.Else != nil {
			w.stmt(v.Else, cloneSet(held))
		}
	case *ast.ForStmt:
		h := cloneSet(held)
		if v.Init != nil {
			h = w.stmt(v.Init, h)
		}
		w.stmts(v.Body.List, h)
	case *ast.RangeStmt:
		w.stmts(v.Body.List, cloneSet(held))
	case *ast.SwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneSet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneSet(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range v.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			// A send as a comm case of a select WITH default is
			// non-blocking — the sanctioned pattern under a lock.
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault {
				w.flagSend(send, held)
			}
			w.stmts(cc.Body, cloneSet(held))
		}
	}
	return held
}

// flagSend reports a blocking send performed while any lock is held.
func (w *lockWalker) flagSend(s *ast.SendStmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	w.f.report(w.fs, RuleSrcMutexChannelSend, s,
		"blocking send on %s while %s is locked — release the lock or use a select with default",
		exprString(s.Chan), strings.Join(names, ", "))
}

// lockOp classifies a call as a lock acquisition or release and returns
// the receiver expression's rendering.
func lockOp(call *ast.CallExpr) (recv, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return exprString(sel.X), "lock"
	case "Unlock", "RUnlock":
		return exprString(sel.X), "unlock"
	}
	return "", ""
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
