package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// Concurrency analyzers: goroutine-leak shapes (GO006), the global
// lock-ordering graph (GO007) and per-iteration timer channels (GO008).
// Like the rest of the suite these are syntactic — go/ast with no type
// information — so each rule targets a shape that is near-unambiguous in
// this codebase and documents its approximation.

// lintGoroutineLeaks implements GO006: a `go func() { ... }()` whose body
// is an unconditional `for` loop performing channel operations with no
// return or break can never exit; once its peer stops draining, the
// goroutine parks forever. The fix shape is a `select` that also watches a
// stop/ctx.Done channel and returns. Loops with a loop condition, or any
// lexical return/break inside, are assumed to terminate (approximation:
// a break targeting an inner select still counts as an exit path — false
// negatives are preferred over noise).
func (f *srcFile) lintGoroutineLeaks(fs *[]Finding) {
	ast.Inspect(f.file, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(m ast.Node) bool {
			loop, ok := m.(*ast.ForStmt)
			if !ok || loop.Cond != nil || loop.Init != nil || loop.Post != nil {
				return true
			}
			if loopHasExit(loop.Body) || !loopTouchesChannels(loop.Body) {
				return true
			}
			f.report(fs, RuleSrcGoroutineLeak, loop,
				"goroutine loops forever on channel operations with no return or break — add a stop/ctx.Done case that returns")
			return false
		})
		return true
	})
}

// loopHasExit reports whether the loop body lexically contains a return or
// break (function literals excluded: their returns do not exit the loop).
func loopHasExit(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if v.Tok.String() == "break" || v.Tok.String() == "goto" {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopTouchesChannels reports whether the loop body performs channel
// operations: a send, a unary receive, or a select.
func loopTouchesChannels(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				found = true
			}
		}
		return !found
	})
	return found
}

// lintTimersInLoop implements GO008: creating a timer channel per loop
// iteration. `time.After` (and the injected clock's `.After`) allocates a
// timer the runtime cannot collect until it fires — in a tight loop that
// is an unbounded pile of live timers; in a slow loop it is still one
// garbage timer per pass. `time.Tick` leaks its ticker outright, and a
// `NewTimer`/`NewTicker` constructed inside a loop without a `.Stop()` in
// the same body leaks likewise. internal/clock itself is exempt — it is
// the one place allowed to wrap the runtime timers.
func (f *srcFile) lintTimersInLoop(fs *[]Finding) {
	if f.rel == "internal/clock" || strings.HasPrefix(f.rel, "internal/clock/") {
		return
	}
	timeName := f.importName("time")
	var inLoop func(body *ast.BlockStmt)
	inLoop = func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				if fn := pkgCall(v, timeName, "After", "Tick"); fn != "" {
					f.report(fs, RuleSrcTimerInLoop, v,
						"time.%s in a loop creates an uncollectable timer per iteration — hoist a Ticker and defer Stop", fn)
					return true
				}
				if fn := pkgCall(v, timeName, "NewTimer", "NewTicker"); fn != "" {
					if !stoppedInBody(body, v) {
						f.report(fs, RuleSrcTimerInLoop, v,
							"time.%s in a loop with no Stop in the loop body — the timer leaks every iteration", fn)
					}
					return true
				}
				// Injected-clock variant: a receive-shaped `x.After(d)` call
				// with one argument. Method calls named After with one arg on
				// non-time receivers are overwhelmingly clock implementations
				// here; time.Time.After takes one arg too but returns bool and
				// never appears as `<-t.After(u)`.
			case *ast.UnaryExpr:
				if v.Op.String() != "<-" {
					return true
				}
				call, ok := v.X.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "After" {
					return true
				}
				f.report(fs, RuleSrcTimerInLoop, v,
					"<-%s.After(...) in a loop creates a timer channel per iteration — hoist a Ticker (clock.NewTicker) and defer Stop", exprString(sel.X))
			}
			return true
		})
	}
	ast.Inspect(f.file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt:
			inLoop(v.Body)
			walkNestedBodies(v.Body, inLoop)
			return false
		case *ast.RangeStmt:
			inLoop(v.Body)
			walkNestedBodies(v.Body, inLoop)
			return false
		}
		return true
	})
}

// walkNestedBodies re-runs the loop check on loops nested inside an already
// flagged-scope body, so each loop reports against its own body for the
// Stop() containment test.
func walkNestedBodies(body *ast.BlockStmt, fn func(*ast.BlockStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ForStmt:
			fn(v.Body)
		case *ast.RangeStmt:
			fn(v.Body)
		}
		return true
	})
}

// stoppedInBody reports whether any `.Stop()` call (direct or deferred)
// appears in the body after the given constructor call.
func stoppedInBody(body *ast.BlockStmt, after *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call == after || call.Pos() < after.Pos() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
			found = true
		}
		return !found
	})
	return found
}

// ---- GO007: lock-ordering graph --------------------------------------

// lockEdge is one observed "acquired b while holding a" ordering.
type lockEdge struct {
	from, to string
	f        *srcFile
	line     int    // line of the inner acquisition
	pos      string // position of the inner acquisition
	fn       string // function the ordering was observed in
}

// lintLockOrder implements GO007: build the global lock-acquisition graph
// across every walked file — an edge a→b for each acquisition of b at a
// program point where a is lexically held — and flag every cycle. A cycle
// means two code paths can take the same two locks in opposite orders,
// which is the textbook ABBA deadlock.
//
// Lock identity is normalized as pkgdir.Recv.fieldpath: the receiver
// identifier of a method is replaced by its type name, so (*Manager).run
// holding m.mu and (*Manager).sweep holding m.mu refer to one lock
// "internal/core.Manager.mu". Non-receiver expressions keep their
// rendering prefixed with the package dir — a per-package approximation
// that cannot confuse locks across packages.
func lintLockOrder(files []*srcFile) []Finding {
	var edges []lockEdge
	for _, f := range files {
		for _, decl := range f.file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &orderWalker{f: f, fnName: funcName(fd), recv: recvIdent(fd), edges: &edges}
			w.walkFuncBody(fd.Body)
		}
	}
	return lockCycleFindings(edges)
}

// recvIdent returns the receiver identifier name and bare type name of a
// method ("" for plain functions).
func recvIdent(fd *ast.FuncDecl) [2]string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return [2]string{}
	}
	t := exprString(fd.Recv.List[0].Type)
	return [2]string{fd.Recv.List[0].Names[0].Name, strings.TrimPrefix(t, "*")}
}

// orderWalker threads a held-lock set through one function body, emitting
// ordering edges. Same structural approximations as lockWalker: deferred
// unlocks hold to function end, branches fork a copy, function literals
// are separate scopes.
type orderWalker struct {
	f      *srcFile
	fnName string
	recv   [2]string
	edges  *[]lockEdge
}

// lockID normalizes a lock receiver expression to its global identity.
func (w *orderWalker) lockID(expr string) string {
	if w.recv[0] != "" {
		if expr == w.recv[0] {
			expr = w.recv[1]
		} else if rest, ok := strings.CutPrefix(expr, w.recv[0]+"."); ok {
			expr = w.recv[1] + "." + rest
		}
	}
	return w.f.pkgDir() + "." + expr
}

func (w *orderWalker) walkFuncBody(body *ast.BlockStmt) {
	w.stmts(body.List, map[string]bool{})
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, fl)
			return false
		}
		return true
	})
	for _, fl := range lits {
		w.walkFuncBody(fl.Body)
	}
}

func (w *orderWalker) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *orderWalker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if recv, op := lockOp(call); op != "" {
				id := w.lockID(recv)
				held = cloneSet(held)
				if op == "lock" {
					for h := range held {
						if h != id {
							*w.edges = append(*w.edges, lockEdge{from: h, to: id,
								f: w.f, line: w.f.line(call), pos: w.f.pos(call), fn: w.fnName})
						}
					}
					held[id] = true
				} else {
					delete(held, id)
				}
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock(): held until return — keep it in the set.
	case *ast.LabeledStmt:
		return w.stmt(v.Stmt, held)
	case *ast.BlockStmt:
		return w.stmts(v.List, held)
	case *ast.IfStmt:
		if v.Init != nil {
			held = w.stmt(v.Init, held)
		}
		w.stmts(v.Body.List, cloneSet(held))
		if v.Else != nil {
			w.stmt(v.Else, cloneSet(held))
		}
	case *ast.ForStmt:
		h := cloneSet(held)
		if v.Init != nil {
			h = w.stmt(v.Init, h)
		}
		w.stmts(v.Body.List, h)
	case *ast.RangeStmt:
		w.stmts(v.Body.List, cloneSet(held))
	case *ast.SwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneSet(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, cloneSet(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, cloneSet(held))
			}
		}
	}
	return held
}

// lockCycleFindings detects cycles in the ordering graph and reports one
// finding per distinct cycle (canonicalized by its sorted lock set),
// positioned at the first contributing edge.
func lockCycleFindings(edges []lockEdge) []Finding {
	succ := make(map[string]map[string]lockEdge)
	for _, e := range edges {
		if succ[e.from] == nil {
			succ[e.from] = make(map[string]lockEdge)
		}
		if _, dup := succ[e.from][e.to]; !dup {
			succ[e.from][e.to] = e
		}
	}
	// reaches reports whether `to` is reachable from `from`.
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range succ[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].pos != edges[j].pos {
			return edges[i].pos < edges[j].pos
		}
		return edges[i].to < edges[j].to
	})
	var fs []Finding
	reported := make(map[string]bool)
	for _, e := range edges {
		if e.from == e.to || !reaches(e.to, e.from) {
			continue
		}
		key := e.from + "\x00" + e.to
		if e.to < e.from {
			key = e.to + "\x00" + e.from
		}
		if reported[key] {
			continue
		}
		reported[key] = true
		if e.f.suppressed(RuleSrcLockOrder, e.line) {
			continue
		}
		fs = append(fs, finding(RuleSrcLockOrder, e.pos,
			"lock-order cycle: %s acquires %s while holding %s, but another path orders them oppositely — ABBA deadlock",
			e.fn, e.to, e.from))
	}
	return fs
}
