package lint

import (
	"go/ast"
	"os"
	"sort"
	"strings"
)

// clockImportPath is the repo's clock abstraction; FixWallClock rewrites
// wall-clock reads onto it.
const clockImportPath = "poddiagnosis/internal/clock"

// edit is one byte-range replacement in a source file.
type edit struct {
	start, end int // byte offsets into the original file
	text       string
}

// FixWallClock is the experimental auto-fix behind podlint -fix: inside any
// function that already has a clock.Clock in scope — a parameter or method
// receiver field is not inferred; only parameters named in the signature
// count — it rewrites time.Now() to <param>.Now() and time.Since(x) to
// <param>.Since(x). The rewrite is textual and deliberately conservative:
// functions without an injectable clock are untouched (those findings still
// need a human), and the fix may leave an unused "time" import behind for
// gofmt/goimports or the developer to clean up. It returns the
// module-relative paths of the files it rewrote.
func FixWallClock(root string, targets []string) ([]string, error) {
	files, err := loadSources(root, targets)
	if err != nil {
		return nil, err
	}
	var fixed []string
	for _, f := range files {
		if f.rel == "internal/clock" || strings.HasPrefix(f.rel, "internal/clock/") {
			continue
		}
		edits := f.wallClockEdits()
		if len(edits) == 0 {
			continue
		}
		src, err := os.ReadFile(f.path)
		if err != nil {
			return fixed, err
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				continue
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
		}
		if err := writeFile(f.path, src); err != nil {
			return fixed, err
		}
		fixed = append(fixed, f.rel)
	}
	sort.Strings(fixed)
	return fixed, nil
}

// wallClockEdits computes the time.Now/time.Since rewrites for one file.
func (f *srcFile) wallClockEdits() []edit {
	timeName := f.importName("time")
	clockName := f.importName(clockImportPath)
	if timeName == "" || clockName == "" {
		return nil
	}
	var edits []edit
	for _, decl := range f.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		clk := clockParam(fd, clockName)
		if clk == "" {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkgCall(call, timeName, "Now", "Since")
			if fn == "" {
				return true
			}
			if f.suppressed(RuleSrcWallClock, f.line(call)) {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			edits = append(edits, edit{
				start: f.fset.Position(sel.Pos()).Offset,
				end:   f.fset.Position(sel.End()).Offset,
				text:  clk + "." + fn,
			})
			return true
		})
	}
	return edits
}

// clockParam returns the name of the first parameter whose declared type is
// clock.Clock ("" when the function has none).
func clockParam(fd *ast.FuncDecl, clockName string) string {
	if fd.Type.Params == nil {
		return ""
	}
	for _, field := range fd.Type.Params.List {
		typ := field.Type
		if star, ok := typ.(*ast.StarExpr); ok {
			typ = star.X
		}
		sel, ok := typ.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Clock" {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != clockName {
			continue
		}
		if len(field.Names) == 0 || field.Names[0].Name == "_" {
			continue
		}
		return field.Names[0].Name
	}
	return ""
}
