package lint

import (
	"encoding/json"
	"fmt"
	"strings"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/diagplan"
)

// planPos renders the locus of a diagnosis-plan finding.
func planPos(planID, nodeID string) string {
	if nodeID == "" {
		return "plan:" + planID
	}
	return fmt.Sprintf("plan:%s/node:%s", planID, nodeID)
}

// LintPlan validates one diagnosis plan. The registry may be nil, disabling
// DG001 (dangling diagnosis-test references). Unlike diagplan.Validate —
// which stops at the first defect — the linter reports every defect it can
// find, and it accepts hand-constructed plans that Validate would reject:
// the graph walk is cycle-safe, duplicate ids keep the first occurrence,
// and dangling edges are skipped after being reported.
func LintPlan(p *diagplan.Plan, reg *assertion.Registry) []Finding {
	l := &planLinter{plan: p, reg: reg, byID: make(map[string]*diagplan.Node)}
	l.lint()
	return l.fs
}

// LintPlanDoc lints a raw JSON diagnosis-plan document. Unlike
// diagplan.Parse it is lenient on entry: a document that unmarshals at all
// is linted structurally, so authors see every defect at once rather than
// the first one Validate trips over.
func LintPlanDoc(name string, data []byte) []Finding {
	var p diagplan.Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return []Finding{finding(RulePlanShape, "plandoc:"+name, "document does not parse: %v", err)}
	}
	if p.ID == "" {
		p.ID = name
	}
	return LintPlan(&p, nil)
}

type planLinter struct {
	plan *diagplan.Plan
	reg  *assertion.Registry
	byID map[string]*diagplan.Node
	fs   []Finding
}

func (l *planLinter) report(rule, nodeID, format string, args ...any) {
	l.fs = append(l.fs, finding(rule, planPos(l.plan.ID, nodeID), format, args...))
}

func (l *planLinter) lint() {
	p := l.plan

	// DG010 (shape): duplicate node ids. The first occurrence wins so the
	// rest of the lint has a deterministic graph to walk.
	for _, n := range p.Nodes {
		if _, dup := l.byID[n.ID]; dup {
			l.report(RulePlanShape, n.ID, "duplicate node id %q", n.ID)
			continue
		}
		l.byID[n.ID] = n
	}

	// DG010: the entry must exist and be the plan's single declared entry.
	switch {
	case p.Entry == "":
		l.report(RulePlanShape, "", "plan declares no entry node")
	case l.byID[p.Entry] == nil:
		l.report(RulePlanShape, "", "entry %q is not a node of the plan", p.Entry)
	}

	for _, n := range p.Nodes {
		l.lintNode(n)
	}
	l.lintFanIn()
	l.lintCycles()
	l.lintReachability()
}

// lintNode checks one node's kind/shape binding, its diagnosis-test
// reference and its outgoing edge group.
func (l *planLinter) lintNode(n *diagplan.Node) {
	p := l.plan

	// DG010: the kind must be registered and agree with the node's shape —
	// the walk semantics derive from structure, so a mismatch means the
	// author's intent and the engine's behavior diverge.
	switch n.Kind {
	case diagplan.KindEntry:
		if n.ID != p.Entry {
			l.report(RulePlanShape, n.ID, "node %q has kind entry but the plan's entry is %q", n.ID, p.Entry)
		}
		if n.CheckID != "" {
			l.report(RulePlanShape, n.ID, "entry node %q carries a diagnosis test; the entry is always descended into", n.ID)
		}
	case diagplan.KindCause:
		if len(n.Edges) > 0 {
			l.report(RulePlanShape, n.ID, "cause %q has outgoing edges; causes are sinks", n.ID)
		}
	case diagplan.KindCollector, diagplan.KindTest:
		// Interior kinds; no extra shape constraints.
	default:
		l.report(RulePlanShape, n.ID, "unknown node kind %q", n.Kind)
	}

	// DG001: a dangling diagnosis-test reference is silently untestable —
	// the evaluator returns StatusError for unknown checks, so the fault
	// can be suspected but never confirmed or excluded.
	if n.CheckID != "" && l.reg != nil {
		if _, ok := l.reg.Lookup(n.CheckID); !ok {
			l.report(RulePlanDanglingCheck, n.ID, "diagnosis test %q is not in the assertion registry", n.CheckID)
		}
	}

	// DG009: every diagnosis test must classify its retry safety so the
	// resilience layer knows whether throttle/timeout-class failures may
	// be retried with backoff.
	if n.CheckID != "" {
		switch n.TestClass {
		case diagplan.TestClassRetryable, diagplan.TestClassNoRetry:
		case "":
			l.report(RulePlanNoTestClass, n.ID,
				"diagnosis test %q on node %q has no testClass (retryable/no-retry)", n.CheckID, n.ID)
		default:
			l.report(RulePlanNoTestClass, n.ID,
				"diagnosis test %q on node %q has unknown testClass %q", n.CheckID, n.ID, n.TestClass)
		}
	}

	// DG007: a root cause with no diagnosis test can only ever be
	// suspected (the paper's "diagnosis cannot determine why" case);
	// legal, but worth surfacing.
	if n.IsCause() && n.CheckID == "" {
		l.report(RulePlanUntestableCause, n.ID, "cause %q has no diagnosis test and can never be confirmed", n.ID)
	}

	// Edge group: dangling targets, duplicates, edges into the entry,
	// step-scope compatibility, and sibling probability order.
	seen := make(map[string]bool, len(n.Edges))
	byProb := make(map[float64]string, len(n.Edges))
	for _, e := range n.Edges {
		tgt := l.byID[e.To]
		if tgt == nil {
			l.report(RulePlanShape, n.ID, "edge from %q to unknown node %q", n.ID, e.To)
			continue
		}
		if seen[e.To] {
			l.report(RulePlanShape, n.ID, "duplicate edge from %q to %q", n.ID, e.To)
			continue
		}
		seen[e.To] = true
		if e.To == p.Entry {
			l.report(RulePlanShape, n.ID, "edge from %q into the entry %q", n.ID, e.To)
		}

		// DG006: pruning keeps a node only when it matches the step
		// context. An edge whose two endpoints carry disjoint step scopes
		// can never be traversed under a non-empty step: one endpoint is
		// always pruned away first.
		if len(n.Steps) > 0 && len(tgt.Steps) > 0 && !intersects(n.Steps, tgt.Steps) {
			l.report(RulePlanStepDisjoint, e.To,
				"edge %s -> %s joins disjoint step scopes [%s] and [%s]; it survives pruning only with an empty step context",
				n.ID, e.To, strings.Join(n.Steps, " "), strings.Join(tgt.Steps, " "))
		}

		// DG003 / DG004: §III.B.4 orders sibling visits by fault
		// probability. Ties and zero priors in a multi-edge group leave
		// the order to the accident of declaration.
		if len(n.Edges) >= 2 {
			if e.Prob == 0 {
				l.report(RulePlanZeroSiblingProb, e.To, "edge %s -> %s has no prior probability", n.ID, e.To)
			} else if prev, ok := byProb[e.Prob]; ok {
				l.report(RulePlanDupSiblingProb, e.To, "edges to %q and %q under %q tie at probability %g", prev, e.To, n.ID, e.Prob)
			} else {
				byProb[e.Prob] = e.To
			}
		}
	}
}

// lintFanIn flags fan-in nodes whose incoming priors sum past certainty.
// Per-edge priors are relative to the siblings under one parent, so the
// sum across parents exceeding 1 is not ill-formed — but it usually means
// an author copied a prior instead of conditioning it, and the walk will
// chase the shared node from every side first.
func (l *planLinter) lintFanIn() {
	inMass := make(map[string]float64)
	inCount := make(map[string]int)
	for _, n := range l.plan.Nodes {
		if l.byID[n.ID] != n {
			continue // duplicate id, already reported
		}
		for _, e := range n.Edges {
			if l.byID[e.To] == nil {
				continue
			}
			inMass[e.To] += e.Prob
			inCount[e.To]++
		}
	}
	for _, n := range l.plan.Nodes {
		if l.byID[n.ID] != n {
			continue
		}
		if inCount[n.ID] >= 2 && inMass[n.ID] > 1+1e-9 {
			l.report(RulePlanFanInMass, n.ID,
				"fan-in node %q accumulates prior probability %.2f over %d incoming edges (> 1)",
				n.ID, inMass[n.ID], inCount[n.ID])
		}
	}
}

// lintCycles runs a white/grey/black DFS over every node (not only those
// reachable from the entry) and reports each node that closes a cycle.
// The walk terminates on plans where diagplan.Validate or the diagnosis
// engine would loop forever.
func (l *planLinter) lintCycles() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(l.byID))
	reported := make(map[string]bool)
	var visit func(id string)
	visit = func(id string) {
		color[id] = grey
		for _, e := range l.byID[id].Edges {
			tgt := l.byID[e.To]
			if tgt == nil {
				continue
			}
			switch color[e.To] {
			case white:
				visit(e.To)
			case grey:
				if !reported[e.To] {
					reported[e.To] = true
					l.report(RulePlanCycle, e.To, "node %q is reachable from itself (back edge from %q)", e.To, id)
				}
			}
		}
		color[id] = black
	}
	for _, n := range l.plan.Nodes {
		if l.byID[n.ID] == n && color[n.ID] == white {
			visit(n.ID)
		}
	}
}

// lintReachability reports orphan nodes: declared in the document but not
// reachable from the entry, so no diagnosis walk ever visits them. Skipped
// when the entry itself is missing (already a DG010).
func (l *planLinter) lintReachability() {
	entry := l.byID[l.plan.Entry]
	if entry == nil {
		return
	}
	reached := map[string]bool{entry.ID: true}
	queue := []*diagplan.Node{entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			tgt := l.byID[e.To]
			if tgt == nil || reached[e.To] {
				continue
			}
			reached[e.To] = true
			queue = append(queue, tgt)
		}
	}
	for _, n := range l.plan.Nodes {
		if l.byID[n.ID] == n && !reached[n.ID] {
			l.report(RulePlanUnreachable, n.ID, "node %q is unreachable from the entry %q", n.ID, l.plan.Entry)
		}
	}
}

func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
