package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The CI performance ratchet: a benchstat-lite comparator that reads raw
// `go test -bench -benchmem` output and compares it against the committed
// baselines in BENCH_ingest.json / BENCH_diagnosis.json ("ratchet"
// section). The ratchet only tightens: ns/op may drift up to the declared
// tolerance (noise allowance), allocs/op may never grow at all — an
// allocation is a deterministic compiler/runtime fact, not a noisy
// measurement, so any increase is a real regression.
//
// With -count=N the comparator takes the best (minimum) run per benchmark:
// the minimum is the least-noise estimate of the code's cost — scheduler
// preemption and cache pollution only ever add time.

// BenchResult is one benchmark measurement parsed from `go test -bench`
// output (best-of-count when the benchmark ran multiple times).
type BenchResult struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes per operation (-benchmem); -1 when absent.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per operation (-benchmem); -1 when absent.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Runs counts how many runs were folded into this result.
	Runs int `json:"runs"`
}

// ParseBenchOutput parses raw `go test -bench` output, folding repeated
// runs of one benchmark (from -count=N) into a best-of result. Non-bench
// lines (PASS, ok, log output) are ignored.
func ParseBenchOutput(r io.Reader) ([]BenchResult, error) {
	byName := make(map[string]*BenchResult)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		res, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		prev, seen := byName[res.Name]
		if !seen {
			r := res
			r.Runs = 1
			byName[res.Name] = &r
			order = append(order, res.Name)
			continue
		}
		prev.Runs++
		if res.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = res.NsPerOp
		}
		if res.AllocsPerOp >= 0 && (prev.AllocsPerOp < 0 || res.AllocsPerOp < prev.AllocsPerOp) {
			prev.AllocsPerOp = res.AllocsPerOp
		}
		if res.BytesPerOp >= 0 && (prev.BytesPerOp < 0 || res.BytesPerOp < prev.BytesPerOp) {
			prev.BytesPerOp = res.BytesPerOp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: read bench output: %w", err)
	}
	out := make([]BenchResult, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

// parseBenchLine parses one benchmark result line of the form
//
//	BenchmarkLogPipeline-8   1000   1133000 ns/op   245760 B/op   1376 allocs/op
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := BenchResult{Name: name, BytesPerOp: -1, AllocsPerOp: -1}
	found := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
			found = true
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, found
}

// BenchBaseline is one committed per-benchmark baseline.
type BenchBaseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// RatchetBaseline is the "ratchet" section of a BENCH_*.json file.
type RatchetBaseline struct {
	// MaxNsRegressionPct is the ns/op noise tolerance in percent (default
	// 10 when the section leaves it zero).
	MaxNsRegressionPct float64 `json:"max_ns_regression_pct"`
	// Benchmarks maps benchmark name to its committed baseline.
	Benchmarks map[string]BenchBaseline `json:"benchmarks"`
}

// defaultNsTolerancePct is the ns/op regression tolerance when no baseline
// file declares one.
const defaultNsTolerancePct = 10

// LoadBaselines reads and merges the "ratchet" sections of the given JSON
// files. Files without a ratchet section contribute nothing; duplicate
// benchmark names across files are an error (the baselines would be
// ambiguous). The strictest (smallest nonzero) ns tolerance wins.
func LoadBaselines(paths []string) (RatchetBaseline, error) {
	merged := RatchetBaseline{Benchmarks: make(map[string]BenchBaseline)}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return merged, fmt.Errorf("lint: read baseline %s: %w", path, err)
		}
		var doc struct {
			Ratchet *RatchetBaseline `json:"ratchet"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return merged, fmt.Errorf("lint: parse baseline %s: %w", path, err)
		}
		if doc.Ratchet == nil {
			continue
		}
		if p := doc.Ratchet.MaxNsRegressionPct; p > 0 && (merged.MaxNsRegressionPct == 0 || p < merged.MaxNsRegressionPct) {
			merged.MaxNsRegressionPct = p
		}
		for name, b := range doc.Ratchet.Benchmarks {
			if _, dup := merged.Benchmarks[name]; dup {
				return merged, fmt.Errorf("lint: benchmark %s has baselines in more than one file", name)
			}
			merged.Benchmarks[name] = b
		}
	}
	if merged.MaxNsRegressionPct == 0 {
		merged.MaxNsRegressionPct = defaultNsTolerancePct
	}
	return merged, nil
}

// CompareRatchet compares measured results against the merged baseline:
// RT001 when ns/op regresses past the tolerance, RT002 when allocs/op
// grows at all, RT003 (warning) for a measured benchmark with no
// committed baseline. Benchmarks present only in the baseline are ignored
// — CI scopes which benchmarks it runs.
func CompareRatchet(results []BenchResult, base RatchetBaseline) []Finding {
	var fs []Finding
	sorted := append([]BenchResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, r := range sorted {
		b, ok := base.Benchmarks[r.Name]
		if !ok {
			fs = append(fs, finding(RuleRatchetBaseline, r.Name,
				"no ratchet baseline committed — add it to a BENCH_*.json ratchet section"))
			continue
		}
		if limit := b.NsPerOp * (1 + base.MaxNsRegressionPct/100); b.NsPerOp > 0 && r.NsPerOp > limit {
			fs = append(fs, finding(RuleRatchetNs,
				r.Name, "ns/op regressed %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				b.NsPerOp, r.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, base.MaxNsRegressionPct))
		}
		if b.AllocsPerOp >= 0 && r.AllocsPerOp > b.AllocsPerOp {
			fs = append(fs, finding(RuleRatchetAllocs,
				r.Name, "allocs/op regressed %d -> %d — any allocation growth on a ratcheted benchmark fails",
				b.AllocsPerOp, r.AllocsPerOp))
		}
	}
	return fs
}
