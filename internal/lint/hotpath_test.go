package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// --- fixtures shared with TestEveryRuleHasCoverage -----------------------

// hotpathFixtureFindings seeds one or more violations for each of the
// source-level concurrency and hot-path rules (GO006–GO010) and returns
// the LintSource findings over the fixture tree.
func hotpathFixtureFindings(t *testing.T) []Finding {
	t.Helper()
	root := writeTree(t, map[string]string{
		"pkg/leak.go": `package pkg

func leak(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}

func stops(ch chan int, stop chan struct{}) {
	go func() {
		for {
			select {
			case ch <- 1:
			case <-stop:
				return
			}
		}
	}()
}

func allowedLeak(ch chan int) {
	go func() {
		//podlint:ignore GO006 fixture: drained forever by design
		for {
			ch <- 1
		}
	}()
}
`,
		"pkg/locks.go": `package pkg

import "sync"

type pair struct {
	a, b sync.Mutex
}

func forward(p *pair) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func backward(p *pair) {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

func alsoForward(p *pair) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}
`,
		"pkg/timers.go": `package pkg

import "time"

type fakeClock interface {
	After(d time.Duration) <-chan time.Time
}

func waitLoop(ch chan int) {
	for {
		t := time.After(time.Second)
		select {
		case <-t:
		case <-ch:
			return
		}
	}
}

func tickLoop(n int) {
	for i := 0; i < n; i++ {
		tk := time.NewTicker(time.Second)
		<-tk.C
	}
}

func clockLoop(clk fakeClock, ch chan int) {
	for {
		select {
		case <-clk.After(time.Second):
		case <-ch:
			return
		}
	}
}

func timerStopped(n int) {
	for i := 0; i < n; i++ {
		tm := time.NewTimer(time.Second)
		<-tm.C
		tm.Stop()
	}
}

func hoisted(ch chan int) {
	tk := time.NewTicker(time.Second)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
		case <-ch:
			return
		}
	}
}

func allowedWait(done chan struct{}) {
	for {
		//podlint:ignore GO008 fixture: deliberately per-iteration
		t := time.After(time.Second)
		select {
		case <-t:
		case <-done:
			return
		}
	}
}
`,
		"pkg/hot.go": `package pkg

import (
	"fmt"
	"sync"
)

//podlint:hotpath budget=3
func hotLoop(items []string, mu *sync.Mutex) []func() string {
	var out []func() string
	for _, it := range items {
		mu.Lock()
		defer mu.Unlock()
		out = append(out, func() string { return it })
	}
	return out
}

//podlint:hotpath
func hotAllocs(k string) string {
	m := map[string]int{}
	u := make(map[string]int)
	s := make([]string, 0)
	_ = m
	_ = u
	_ = s
	return fmt.Sprintf("key=%s", k)
}

func coldAllocs(k string) string {
	m := map[string]int{}
	_ = m
	return fmt.Sprintf("key=%s", k)
}

//podlint:hotpath budget=0
func hotSuppressed(k string) string {
	//podlint:ignore GO010 fixture: interned downstream
	return fmt.Sprintf("key=%s", k)
}

//podlint:hotpath
func hotScoped(items []string, mu *sync.Mutex) {
	for range items {
		func() {
			mu.Lock()
			defer mu.Unlock()
		}()
	}
}
`,
	})
	fs, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// escapeFixture parses an annotated fixture and applies hand-built escape
// sites, exercising the GO011 budget comparison without the toolchain.
func escapeFixture(t *testing.T) ([]HotFuncInfo, []Finding) {
	t.Helper()
	root := writeTree(t, map[string]string{
		"pkg/esc.go": `package pkg

//podlint:hotpath budget=1
func build() (*int, *int) {
	a := new(int)
	b := new(int)
	return a, b
}

//podlint:hotpath
func unbudgeted() *int { return new(int) }

//podlint:hotpath budget=0
//podlint:ignore GO011 fixture: accepted overage
func tolerated() *int { return new(int) }
`,
	})
	files, err := loadSources(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	hot := hotFuncsOf(files)
	if len(hot) != 3 {
		t.Fatalf("want 3 annotated hot functions, got %d", len(hot))
	}
	sites := []escapeSite{
		{file: "pkg/esc.go", line: 5, msg: "new(int) escapes to heap"},
		{file: "pkg/esc.go", line: 6, msg: "new(int) escapes to heap"},
		{file: "pkg/esc.go", line: 11, msg: "new(int) escapes to heap"},
		{file: "pkg/esc.go", line: 15, msg: "new(int) escapes to heap"},
	}
	return applyEscapes(hot, sites)
}

// ratchetFixtureFindings seeds one violation for every RT rule through the
// comparator: a ns/op regression past tolerance, an allocs/op regression,
// and a benchmark with no committed baseline.
func ratchetFixtureFindings() []Finding {
	base := RatchetBaseline{
		MaxNsRegressionPct: 10,
		Benchmarks: map[string]BenchBaseline{
			"BenchmarkSlow":   {NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
			"BenchmarkAllocs": {NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
		},
	}
	results := []BenchResult{
		{Name: "BenchmarkSlow", NsPerOp: 1200, BytesPerOp: 100, AllocsPerOp: 10, Runs: 1},
		{Name: "BenchmarkAllocs", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 11, Runs: 1},
		{Name: "BenchmarkNew", NsPerOp: 5, BytesPerOp: -1, AllocsPerOp: -1, Runs: 1},
	}
	return CompareRatchet(results, base)
}

// --- GO006–GO010 ---------------------------------------------------------

func TestLintConcurrencyAndHotPathRules(t *testing.T) {
	fs := hotpathFixtureFindings(t)

	// GO006: only the exit-less channel loop in a goroutine; the select
	// with a return case and the suppressed loop are clean.
	go006 := findingsFor(fs, RuleSrcGoroutineLeak)
	if len(go006) != 1 || go006[0].Pos != "pkg/leak.go:5" {
		t.Errorf("want 1 GO006 at pkg/leak.go:5, got %s", render(go006))
	}

	// GO007: forward/backward order the same two locks oppositely — one
	// finding per distinct lock pair, however many paths contribute edges.
	go007 := findingsFor(fs, RuleSrcLockOrder)
	if len(go007) != 1 || !strings.Contains(go007[0].Message, "ABBA") {
		t.Errorf("want 1 GO007 cycle finding, got %s", render(go007))
	}

	// GO008: time.After per iteration, NewTicker with no Stop in the loop
	// body, and the injected-clock receive form; the Stop()ed timer, the
	// hoisted ticker and the suppressed loop are clean.
	go008 := findingsFor(fs, RuleSrcTimerInLoop)
	if len(go008) != 3 {
		t.Errorf("want 3 GO008 findings, got %s", render(go008))
	}
	for _, f := range go008 {
		if strings.Contains(f.Message, "NewTimer") {
			t.Errorf("Stop()ed NewTimer must not be flagged: %s", f)
		}
	}

	// GO009: the defer inside hotLoop's range; the literal-scoped defer in
	// hotScoped is its own defer scope and stays clean.
	go009 := findingsFor(fs, RuleSrcDeferInHotLoop)
	if len(go009) != 1 || !strings.Contains(go009[0].Message, "hotLoop") {
		t.Errorf("want 1 GO009 in hotLoop, got %s", render(go009))
	}

	// GO010: the loop-variable closure in hotLoop plus the four
	// allocation-prone constructs in hotAllocs; the identical constructs in
	// unannotated coldAllocs and the suppressed Sprintf don't fire.
	go010 := findingsFor(fs, RuleSrcHotAlloc)
	if len(go010) != 5 {
		t.Errorf("want 5 GO010 findings, got %s", render(go010))
	}
	for _, f := range go010 {
		if strings.Contains(f.Message, "coldAllocs") || strings.Contains(f.Message, "hotSuppressed") {
			t.Errorf("unannotated or suppressed function flagged: %s", f)
		}
	}
}

func TestLintLockOrderConsistentIsClean(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/locks.go": `package pkg

import "sync"

type pair struct {
	a, b sync.Mutex
}

func one(p *pair) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func two(p *pair) {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}
`,
	})
	fs, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := findingsFor(fs, RuleSrcLockOrder); len(got) != 0 {
		t.Errorf("consistent lock order flagged: %s", render(got))
	}
}

func TestLintLockOrderSuppression(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/locks.go": `package pkg

import "sync"

type pair struct {
	a, b sync.Mutex
}

func one(p *pair) {
	p.a.Lock()
	//podlint:ignore GO007 fixture: order enforced by construction
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func two(p *pair) {
	p.b.Lock()
	//podlint:ignore GO007 fixture: order enforced by construction
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
`,
	})
	fs, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := findingsFor(fs, RuleSrcLockOrder); len(got) != 0 {
		t.Errorf("suppressed lock-order cycle still reported: %s", render(got))
	}
}

func TestLintHotManifestAnnotationRequired(t *testing.T) {
	// A manifest function present in the tree without its annotation is a
	// GO010 finding; annotating it clears the finding.
	bare := `package pipeline

type Processor struct{}

func (p *Processor) Process() {}
`
	root := writeTree(t, map[string]string{"internal/pipeline/proc.go": bare})
	fs, err := LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := findingsFor(fs, RuleSrcHotAlloc)
	if len(got) != 1 || !strings.Contains(got[0].Message, "(*Processor).Process") {
		t.Fatalf("want 1 manifest GO010 for (*Processor).Process, got %s", render(got))
	}

	annotated := strings.Replace(bare, "func (p *Processor) Process()",
		"//podlint:hotpath budget=0\nfunc (p *Processor) Process()", 1)
	root = writeTree(t, map[string]string{"internal/pipeline/proc.go": annotated})
	fs, err = LintSource(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := findingsFor(fs, RuleSrcHotAlloc); len(got) != 0 {
		t.Errorf("annotated manifest function still flagged: %s", render(got))
	}
}

func TestParseHotBudget(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{
		{"", noBudget},
		{" budget=0", 0},
		{" budget=12", 12},
		{" budget=-3", noBudget},
		{" budget=lots", noBudget},
		{"budget=7", 7},
		{" nonsense", noBudget},
	} {
		if got := parseHotBudget(tc.in); got != tc.want {
			t.Errorf("parseHotBudget(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// --- GO011 ----------------------------------------------------------------

func TestApplyEscapesBudget(t *testing.T) {
	infos, fs := escapeFixture(t)

	// Only build() is over an enforced budget: unbudgeted has no budget to
	// exceed and tolerated carries a justified suppression.
	go011 := findingsFor(fs, RuleSrcEscapeBudget)
	if len(go011) != 1 || !strings.Contains(go011[0].Message, "build") {
		t.Fatalf("want 1 GO011 for build, got %s", render(fs))
	}
	if !strings.Contains(go011[0].Message, "2 heap-escape sites") || !strings.Contains(go011[0].Message, "budget=1") {
		t.Errorf("GO011 message should carry measured vs declared counts: %s", go011[0])
	}

	byName := map[string]HotFuncInfo{}
	for _, info := range infos {
		byName[info.Function] = info
	}
	if got := byName["build"].Escapes; got != 2 {
		t.Errorf("build escapes = %d, want 2", got)
	}
	if got := byName["unbudgeted"]; got.Escapes != 1 || got.Budget != noBudget {
		t.Errorf("unbudgeted = %+v, want 1 escape and no budget", got)
	}
	if got := byName["tolerated"].Escapes; got != 1 {
		t.Errorf("tolerated escapes = %d, want 1", got)
	}
}

func TestParseEscapeDiagnostics(t *testing.T) {
	out := strings.Join([]string{
		"# poddiagnosis/internal/pipeline",
		"internal/pipeline/pipeline.go:100:2: can inline (*Processor).count",
		"internal/pipeline/pipeline.go:120:14: leaking param: e",
		"internal/pipeline/pipeline.go:130:20: out.Fields escapes to heap",
		"internal/pipeline/pipeline.go:131:5: moved to heap: buf",
		`internal/pipeline/pipeline.go:140:9: "obs: counter cannot decrease" escapes to heap`,
		`internal/pipeline/pipeline.go:141:9: "prefix " + name escapes to heap`,
		"not a diagnostic line",
	}, "\n")
	sites := parseEscapeDiagnostics(out)
	if len(sites) != 3 {
		t.Fatalf("want 3 sites (escape, move, concat), got %+v", sites)
	}
	for _, s := range sites {
		if s.line == 140 {
			t.Errorf("bare constant-string escape must be filtered: %+v", s)
		}
	}
	if sites[2].line != 141 {
		t.Errorf("string concatenation is a real allocation, want line 141 kept: %+v", sites)
	}
}

func TestConstStringEscape(t *testing.T) {
	for _, tc := range []struct {
		msg  string
		want bool
	}{
		{`"obs: counter cannot decrease" escapes to heap`, true},
		{`"a" + name escapes to heap`, false},
		{`out.Fields escapes to heap`, false},
		{`moved to heap: buf`, false},
	} {
		if got := constStringEscape(tc.msg); got != tc.want {
			t.Errorf("constStringEscape(%q) = %v, want %v", tc.msg, got, tc.want)
		}
	}
}

// TestRepositoryEscapeBudgets pins the acceptance criterion: every
// annotated hot path in this repository stays within its declared
// heap-escape budget under the real compiler's escape analysis.
func TestRepositoryEscapeBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping compiler-assisted pass in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("module root not found")
	}
	infos, fs, err := EscapeAnalysis(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) < len(hotPathManifest) {
		t.Errorf("escape analysis saw %d hot functions, manifest has %d", len(infos), len(hotPathManifest))
	}
	if n := CountErrors(fs); n != 0 {
		t.Fatalf("repository has %d escape-budget violation(s):\n%s", n, render(fs))
	}
}

// --- ratchet --------------------------------------------------------------

func TestParseBenchOutput(t *testing.T) {
	out := strings.Join([]string{
		"goos: linux",
		"BenchmarkLogPipeline-8   100   450000 ns/op   26000 B/op   140 allocs/op",
		"BenchmarkLogPipeline-8   100   440000 ns/op   25042 B/op   135 allocs/op",
		"BenchmarkLogPipeline-8   100   470000 ns/op   25500 B/op   138 allocs/op",
		"BenchmarkDiagnosisTime-8   100   68000000 ns/op",
		"PASS",
		"ok  	poddiagnosis	1.2s",
	}, "\n")
	results, err := ParseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("want 2 benchmarks, got %+v", results)
	}
	lp := results[0]
	if lp.Name != "BenchmarkLogPipeline" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", lp.Name)
	}
	// Best-of-count folding: minimum per metric.
	if lp.Runs != 3 || lp.NsPerOp != 440000 || lp.AllocsPerOp != 135 || lp.BytesPerOp != 25042 {
		t.Errorf("best-of fold wrong: %+v", lp)
	}
	dt := results[1]
	if dt.AllocsPerOp != -1 || dt.BytesPerOp != -1 {
		t.Errorf("missing -benchmem columns must read as -1: %+v", dt)
	}
}

func TestCompareRatchetRules(t *testing.T) {
	fs := ratchetFixtureFindings()
	rt1 := findingsFor(fs, RuleRatchetNs)
	if len(rt1) != 1 || rt1[0].Pos != "BenchmarkSlow" {
		t.Errorf("want 1 RT001 for BenchmarkSlow, got %s", render(rt1))
	}
	rt2 := findingsFor(fs, RuleRatchetAllocs)
	if len(rt2) != 1 || rt2[0].Pos != "BenchmarkAllocs" {
		t.Errorf("want 1 RT002 for BenchmarkAllocs, got %s", render(rt2))
	}
	rt3 := findingsFor(fs, RuleRatchetBaseline)
	if len(rt3) != 1 || rt3[0].Pos != "BenchmarkNew" || rt3[0].Severity != SevWarning {
		t.Errorf("want 1 RT003 warning for BenchmarkNew, got %s", render(rt3))
	}
	// RT003 is advisory; the two regressions are the errors.
	if n := CountErrors(fs); n != 2 {
		t.Errorf("CountErrors = %d, want 2", n)
	}
}

func TestCompareRatchetWithinToleranceIsClean(t *testing.T) {
	base := RatchetBaseline{
		MaxNsRegressionPct: 10,
		Benchmarks: map[string]BenchBaseline{
			"BenchmarkSteady": {NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
		},
	}
	results := []BenchResult{
		// +9% ns is inside the tolerance; fewer allocs is an improvement.
		{Name: "BenchmarkSteady", NsPerOp: 1090, BytesPerOp: 90, AllocsPerOp: 9, Runs: 1},
	}
	if fs := CompareRatchet(results, base); len(fs) != 0 {
		t.Errorf("within-tolerance run flagged: %s", render(fs))
	}
}

// TestRatchetAgainstCommittedBaselines pins the acceptance criterion with
// the repository's real BENCH_*.json files: a run measuring exactly the
// committed numbers passes, and a synthetic allocs/op regression fails.
func TestRatchetAgainstCommittedBaselines(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	paths := []string{
		filepath.Join(root, "BENCH_ingest.json"),
		filepath.Join(root, "BENCH_diagnosis.json"),
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Skipf("baseline %s not found", p)
		}
	}
	base, err := LoadBaselines(paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BenchmarkLogPipeline", "BenchmarkDiagnosisTime"} {
		if _, ok := base.Benchmarks[name]; !ok {
			t.Fatalf("committed baselines missing %s", name)
		}
	}

	// A run reproducing the committed numbers exactly is clean.
	var atBaseline []BenchResult
	for name, b := range base.Benchmarks {
		atBaseline = append(atBaseline, BenchResult{
			Name: name, NsPerOp: b.NsPerOp, BytesPerOp: b.BytesPerOp, AllocsPerOp: b.AllocsPerOp, Runs: 1,
		})
	}
	if fs := CompareRatchet(atBaseline, base); CountErrors(fs) != 0 {
		t.Fatalf("baseline-equal run fails its own ratchet:\n%s", render(fs))
	}

	// A synthetic allocation regression on the pipeline benchmark fails.
	regressed := append([]BenchResult(nil), atBaseline...)
	for i := range regressed {
		if regressed[i].Name == "BenchmarkLogPipeline" {
			regressed[i].AllocsPerOp += 50
		}
	}
	fs := CompareRatchet(regressed, base)
	if !hasRule(fs, RuleRatchetAllocs) || CountErrors(fs) == 0 {
		t.Fatalf("synthetic allocs/op regression not caught:\n%s", render(fs))
	}
}

func TestLoadBaselinesMergeAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a := write("a.json", `{"ratchet": {"max_ns_regression_pct": 5,
		"benchmarks": {"BenchmarkA": {"ns_per_op": 10, "bytes_per_op": 1, "allocs_per_op": 1}}}}`)
	b := write("b.json", `{"ratchet":
		{"benchmarks": {"BenchmarkB": {"ns_per_op": 20, "bytes_per_op": 2, "allocs_per_op": 2}}}}`)
	noRatchet := write("c.json", `{"benchmark": "unrelated"}`)

	base, err := LoadBaselines([]string{a, b, noRatchet})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Benchmarks) != 2 {
		t.Errorf("merged benchmarks = %+v, want 2 entries", base.Benchmarks)
	}
	if base.MaxNsRegressionPct != 5 {
		t.Errorf("strictest declared tolerance must win, got %v", base.MaxNsRegressionPct)
	}

	dup := write("dup.json", `{"ratchet":
		{"benchmarks": {"BenchmarkA": {"ns_per_op": 11, "bytes_per_op": 1, "allocs_per_op": 1}}}}`)
	if _, err := LoadBaselines([]string{a, dup}); err == nil {
		t.Error("duplicate baseline across files must be an error")
	}
}
