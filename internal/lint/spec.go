package lint

import (
	"fmt"
	"sort"
	"strings"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/process"
)

// specPos renders the locus of a spec finding: the spec's name plus the
// binding's 1-based source line.
func specPos(name string, line int) string {
	if line <= 0 {
		return "spec:" + name
	}
	return fmt.Sprintf("spec:%s:%d", name, line)
}

// LintSpec validates one assertion specification against the process model
// it triggers from and the check registry it binds into. Either context may
// be nil, disabling the rules that need it: AS001 requires the registry,
// AS002 the model. AS003 (duplicate bindings) is purely intra-spec.
func LintSpec(name string, spec *assertspec.Spec, model *process.Model, reg *assertion.Registry) []Finding {
	var fs []Finding
	seen := make(map[string]int)
	for _, b := range spec.Bindings() {
		// AS001: the binding's check must exist; assertspec.Parse only
		// enforces this when handed a registry, and specs parsed early
		// (before fixture checks register) legitimately defer it.
		if reg != nil {
			if _, ok := reg.Lookup(b.CheckID); !ok {
				fs = append(fs, finding(RuleSpecUnknownCheck, specPos(name, b.Line), "unknown check %q", b.CheckID))
			}
		}
		// AS002: a binding on a step the model does not define never
		// fires — the paper's trigger chain is broken at its first link.
		if model != nil && b.StepID != "" && model.ActivityByStep(b.StepID) == nil {
			fs = append(fs, finding(RuleSpecUnknownStep, specPos(name, b.Line), "model %q defines no step %q", model.ID(), b.StepID))
		}
		// AS003: identical bindings double-evaluate the same check with
		// the same parameters on the same trigger.
		key := bindingKey(b)
		if prev, ok := seen[key]; ok {
			fs = append(fs, finding(RuleSpecDuplicateBinding, specPos(name, b.Line), "duplicate of the binding on line %d", prev))
			continue
		}
		seen[key] = b.Line
	}
	return fs
}

// bindingKey canonicalizes a binding for duplicate detection.
func bindingKey(b assertspec.Binding) string {
	keys := make([]string, 0, len(b.Params))
	for k := range b.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%s|%s|%s", b.Kind, b.StepID, b.Every, b.CheckID)
	for _, k := range keys {
		fmt.Fprintf(&sb, "|%s=%s", k, b.Params[k])
	}
	return sb.String()
}
