package faulttree

import (
	"strings"
	"testing"
	"testing/quick"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/process"
)

func TestDefaultRepositoryValidates(t *testing.T) {
	repo := DefaultRepository()
	if err := repo.Validate(assertion.DefaultRegistry()); err != nil {
		t.Fatal(err)
	}
	if len(repo.All()) != 10 {
		t.Errorf("tree count = %d", len(repo.All()))
	}
}

func TestSelectByAssertion(t *testing.T) {
	repo := DefaultRepository()
	trees := repo.Select(assertion.CheckASGVersionCount)
	if len(trees) != 1 {
		t.Fatalf("Select returned %d trees", len(trees))
	}
	if trees[0].ID != "ft-version-count" {
		t.Errorf("tree = %s", trees[0].ID)
	}
	if len(repo.Select("unknown-assertion")) != 0 {
		t.Error("unknown assertion returned trees")
	}
}

func TestInstantiateSubstitutesParams(t *testing.T) {
	tree := DefaultRepository().Select(assertion.CheckASGVersionCount)[0]
	inst := tree.Instantiate(assertion.Params{
		assertion.ParamASG: "ASG-dsn", assertion.ParamWant: "4",
		assertion.ParamVersion: "v2", assertion.ParamAMI: "ami-750c9e4f",
	})
	if !strings.Contains(inst.Root.Description, "4 instances with version v2") {
		t.Errorf("root description = %q", inst.Root.Description)
	}
	var found bool
	var walk func(n *Node)
	walk = func(n *Node) {
		if strings.Contains(n.Description, "ASG-dsn") {
			found = true
		}
		if strings.Contains(n.Description, "{asgid}") {
			t.Errorf("unsubstituted placeholder in %q", n.Description)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(inst.Root)
	if !found {
		t.Error("asg name not substituted anywhere")
	}
	// Original must be untouched.
	if !strings.Contains(tree.Root.Description, "{want}") {
		t.Error("Instantiate mutated the original tree")
	}
}

func TestInstantiateLeavesUnknownPlaceholders(t *testing.T) {
	tree := &Tree{ID: "t", AssertionID: "a", Root: &Node{ID: "r", Description: "fault in {mystery}"}}
	inst := tree.Instantiate(assertion.Params{"other": "x"})
	if inst.Root.Description != "fault in {mystery}" {
		t.Errorf("description = %q", inst.Root.Description)
	}
}

func TestPruneByStepContext(t *testing.T) {
	tree := DefaultRepository().Select(assertion.CheckASGVersionCount)[0]
	// In step2 context only the LC-creation and wrong-config sub-trees
	// survive.
	pruned := tree.Prune(process.StepUpdateLC)
	ids := childIDs(pruned.Root)
	if len(ids) != 2 {
		t.Fatalf("step2 children = %v", ids)
	}
	for _, id := range ids {
		if id != "lc-create-failed" && id != "asg-wrong-config" {
			t.Errorf("unexpected child %s in step2 context", id)
		}
	}
	// In step7 context the launch/count/elb/config sub-trees survive but
	// not LC creation.
	pruned = tree.Prune(process.StepNewReady)
	for _, id := range childIDs(pruned.Root) {
		if id == "lc-create-failed" {
			t.Error("lc-create-failed survived step7 pruning")
		}
	}
	// Unknown context keeps everything.
	if got := len(childIDs(tree.Prune("").Root)); got != len(tree.Root.Children) {
		t.Errorf("empty-step prune dropped children: %d", got)
	}
	// Original untouched.
	if len(tree.Root.Children) != 5 {
		t.Errorf("original mutated: %d children", len(tree.Root.Children))
	}
}

func childIDs(n *Node) []string {
	out := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		out = append(out, c.ID)
	}
	return out
}

func TestPotentialRootCausesOrdering(t *testing.T) {
	tree := DefaultRepository().Select(assertion.CheckASGVersionCount)[0]
	causes := tree.PotentialRootCauses()
	if len(causes) < 10 {
		t.Fatalf("only %d potential root causes", len(causes))
	}
	// Within the wrong-config sub-tree, wrong-ami (p=0.40) must be
	// visited before wrong-instance-type (p=0.10).
	idxOf := func(id string) int {
		for i, c := range causes {
			if c.ID == id {
				return i
			}
		}
		return -1
	}
	if idxOf("wrong-ami") == -1 || idxOf("wrong-instance-type") == -1 {
		t.Fatal("expected causes missing")
	}
	if idxOf("wrong-ami") > idxOf("wrong-instance-type") {
		t.Error("probability ordering not respected")
	}
}

func TestSortedChildrenStable(t *testing.T) {
	n := &Node{Children: []*Node{
		{ID: "a", Prob: 0.2}, {ID: "b", Prob: 0.5}, {ID: "c", Prob: 0.2}, {ID: "d", Prob: 0.9},
	}}
	got := SortedChildren(n)
	wantOrder := []string{"d", "b", "a", "c"}
	for i, w := range wantOrder {
		if got[i].ID != w {
			t.Fatalf("order = %v", childIDsOf(got))
		}
	}
	// Original order untouched.
	if n.Children[0].ID != "a" {
		t.Error("SortedChildren mutated input")
	}
}

func childIDsOf(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.ID
	}
	return out
}

func TestValidateRejectsBadTrees(t *testing.T) {
	reg := assertion.DefaultRegistry()
	cases := []struct {
		name string
		tree *Tree
	}{
		{"nil root", &Tree{ID: "t", AssertionID: "a"}},
		{"empty node id", &Tree{ID: "t", AssertionID: "a", Root: &Node{}}},
		{"duplicate ids", &Tree{ID: "t", AssertionID: "a", Root: &Node{
			ID: "x", Children: []*Node{{ID: "x"}},
		}}},
		{"root cause with children", &Tree{ID: "t", AssertionID: "a", Root: &Node{
			ID: "r", RootCause: true, Children: []*Node{{ID: "c"}},
		}}},
		{"unknown check", &Tree{ID: "t", AssertionID: "a", Root: &Node{
			ID: "r", CheckID: "no-such-check",
		}}},
	}
	for _, tc := range cases {
		if err := tc.tree.Validate(reg); err == nil {
			t.Errorf("%s: Validate passed", tc.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := &Node{
		ID: "a", CheckParams: assertion.Params{"k": "v"},
		Steps: []string{"step1"}, Children: []*Node{{ID: "b"}},
	}
	cp := orig.Clone()
	cp.CheckParams["k"] = "changed"
	cp.Steps[0] = "changed"
	cp.Children[0].ID = "changed"
	if orig.CheckParams["k"] != "v" || orig.Steps[0] != "step1" || orig.Children[0].ID != "b" {
		t.Fatal("Clone aliases state")
	}
}

func TestRelevantToProperty(t *testing.T) {
	// Property: a node is always relevant to the empty step; an unscoped
	// node is relevant to any step; a scoped node is relevant exactly to
	// its steps.
	f := func(steps []string, probe string) bool {
		n := &Node{ID: "x", Steps: steps}
		if !n.RelevantTo("") {
			return false
		}
		if probe == "" || len(steps) == 0 {
			return n.RelevantTo(probe)
		}
		want := false
		for _, s := range steps {
			if s == probe {
				want = true
			}
		}
		return n.RelevantTo(probe) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTerminationLeafUsesAuditTrailCheck(t *testing.T) {
	tree := DefaultRepository().Select(assertion.CheckASGInstanceCount)[0]
	var found *Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if strings.HasPrefix(n.ID, "unexpected-termination") {
			found = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	if found == nil {
		t.Fatal("unexpected-termination leaf missing")
	}
	// The fault is diagnosable only through the CloudTrail-like audit
	// trail; with the trail disabled (the default) the check is
	// inconclusive and the leaf can only be suspected, as in the paper.
	if found.CheckID != assertion.CheckNoExternalTermination {
		t.Errorf("check = %q", found.CheckID)
	}
	if !found.RootCause {
		t.Error("unexpected-termination should be a root cause")
	}
}

func TestAccountLimitCauseExists(t *testing.T) {
	// The §VI.A amendment: account-limit-reached must be diagnosable.
	tree := DefaultRepository().Select(assertion.CheckASGVersionCount)[0]
	for _, c := range tree.PotentialRootCauses() {
		if c.ID == "account-limit-reached" {
			if c.CheckID != assertion.CheckNoLimitExceeded {
				t.Error("account-limit cause has wrong check")
			}
			return
		}
	}
	t.Fatal("account-limit-reached cause missing")
}
