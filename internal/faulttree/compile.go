package faulttree

import (
	"fmt"

	"poddiagnosis/internal/diagplan"
)

// Compile lowers the fault tree into an equivalent diagnosis plan. The
// tree shape is a special case of the DAG document model: the root
// becomes the entry node, each parent/child link becomes a probability-
// weighted edge, and node ids, checks, step scopes, and test classes
// carry over unchanged. A compiled plan has no fan-in, so the plan walk
// visits it exactly like the old tree walk did.
func (t *Tree) Compile() (*diagplan.Plan, error) {
	if t.Root == nil {
		return nil, fmt.Errorf("faulttree %s: nil root", t.ID)
	}
	p := &diagplan.Plan{
		ID:          t.ID,
		AssertionID: t.AssertionID,
		Description: t.Root.Description,
		Entry:       t.Root.ID,
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		pn := &diagplan.Node{
			ID:          n.ID,
			Kind:        compiledKind(n, n == t.Root),
			Description: n.Description,
			CheckID:     n.CheckID,
			CheckParams: n.CheckParams.Clone(),
			TestClass:   n.TestClass,
			Steps:       append([]string(nil), n.Steps...),
		}
		for _, c := range n.Children {
			pn.Edges = append(pn.Edges, diagplan.Edge{To: c.ID, Prob: c.Prob})
		}
		p.Nodes = append(p.Nodes, pn)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	if err := p.Validate(nil); err != nil {
		return nil, fmt.Errorf("faulttree %s: compiled plan invalid: %w", t.ID, err)
	}
	return p, nil
}

// compiledKind maps a tree node onto the plan kind vocabulary.
func compiledKind(n *Node, isRoot bool) diagplan.Kind {
	switch {
	case isRoot:
		return diagplan.KindEntry
	case n.RootCause:
		return diagplan.KindCause
	case n.CheckID != "":
		return diagplan.KindTest
	default:
		return diagplan.KindCollector
	}
}

// Compile lowers every registered tree into a plan catalog. Plan ids
// equal tree ids, so anything keyed by tree id (flight-recorder paths,
// experiment attributions) keeps resolving.
func (r *Repository) Compile() (*diagplan.Catalog, error) {
	c := diagplan.NewCatalog()
	for _, t := range r.All() {
		p, err := t.Compile()
		if err != nil {
			return nil, err
		}
		if err := c.Register(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// DefaultCatalog compiles the rolling-upgrade fault-tree knowledge base
// (the paper's Figure 5) into a diagnosis plan catalog. This is the
// compatibility path: the diagnosis engine only walks plans, and the
// legacy trees reach it through here.
func DefaultCatalog() *diagplan.Catalog {
	c, err := DefaultRepository().Compile()
	if err != nil {
		panic(err) // the shipped catalog is a build artifact
	}
	return c
}

// FullCatalog extends DefaultCatalog with the native DAG scenario plans
// (blue/green deploy, spot rebalance). Scenario plan nodes are scoped to
// bgstepN/ssstepN contexts, so rolling-upgrade diagnoses prune them away
// and vice versa.
func FullCatalog() *diagplan.Catalog {
	c := DefaultCatalog()
	for _, p := range diagplan.ScenarioPlans() {
		c.MustRegister(p)
	}
	return c
}
