package faulttree

import (
	"testing"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/diagplan"
)

func TestCompilePreservesStructure(t *testing.T) {
	tree := versionCountTree()
	p, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != tree.ID || p.AssertionID != tree.AssertionID || p.Entry != tree.Root.ID {
		t.Fatalf("compiled header mismatch: %+v", p)
	}
	if err := p.Validate(assertion.DefaultRegistry()); err != nil {
		t.Fatalf("compiled plan invalid: %v", err)
	}

	// Same causes, same visit order.
	wantCauses := tree.PotentialRootCauses()
	gotCauses := p.PotentialRootCauses()
	if len(wantCauses) != len(gotCauses) {
		t.Fatalf("cause count: tree %d, plan %d", len(wantCauses), len(gotCauses))
	}
	for i := range wantCauses {
		if wantCauses[i].ID != gotCauses[i].ID {
			t.Fatalf("cause %d: tree %s, plan %s", i, wantCauses[i].ID, gotCauses[i].ID)
		}
		if wantCauses[i].CheckID != gotCauses[i].CheckID {
			t.Fatalf("cause %s check mismatch", wantCauses[i].ID)
		}
	}

	// Sibling visit order under the entry matches SortedChildren.
	wantKids := SortedChildren(tree.Root)
	gotKids := p.Children(p.EntryNode())
	if len(wantKids) != len(gotKids) {
		t.Fatalf("child count mismatch")
	}
	for i := range wantKids {
		if wantKids[i].ID != gotKids[i].ID {
			t.Fatalf("child %d: tree %s, plan %s", i, wantKids[i].ID, gotKids[i].ID)
		}
	}

	// Compiled kinds: root is the entry, root causes are causes, checked
	// interiors are tests.
	if p.EntryNode().Kind != diagplan.KindEntry {
		t.Fatal("root should compile to entry")
	}
	if n := p.Node("wrong-ami"); n == nil || n.Kind != diagplan.KindCause {
		t.Fatalf("wrong-ami kind = %v", n)
	}
	if n := p.Node("elb-problems"); n == nil || n.Kind != diagplan.KindTest {
		t.Fatalf("elb-problems kind = %v", n)
	}
}

func TestCompilePreservesPruning(t *testing.T) {
	tree := versionCountTree()
	p, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []string{"step2", "step5", "step8", "", "bgstep4"} {
		prunedTree := tree.Prune(step)
		prunedPlan := p.Prune(step)
		var want []string
		if prunedTree != nil {
			for _, c := range prunedTree.PotentialRootCauses() {
				want = append(want, c.ID)
			}
		}
		var got []string
		for _, c := range prunedPlan.PotentialRootCauses() {
			got = append(got, c.ID)
		}
		if len(want) != len(got) {
			t.Fatalf("step %q: tree causes %v, plan causes %v", step, want, got)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("step %q: tree causes %v, plan causes %v", step, want, got)
			}
		}
	}
}

func TestDefaultCatalogParity(t *testing.T) {
	repo := DefaultRepository()
	cat := DefaultCatalog()
	if len(cat.All()) != len(repo.All()) {
		t.Fatalf("catalog has %d plans, repository %d trees", len(cat.All()), len(repo.All()))
	}
	for _, tree := range repo.All() {
		p := cat.Get(tree.ID)
		if p == nil {
			t.Fatalf("no plan for tree %s", tree.ID)
		}
		if len(cat.Select(tree.AssertionID)) == 0 {
			t.Fatalf("Select(%s) empty", tree.AssertionID)
		}
	}
	if err := cat.Validate(assertion.DefaultRegistry()); err != nil {
		t.Fatal(err)
	}
}

func TestFullCatalogAddsScenarios(t *testing.T) {
	cat := FullCatalog()
	if err := cat.Validate(assertion.DefaultRegistry()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"plan-bluegreen", "plan-bluegreen-elb", "plan-bluegreen-lc", "plan-spot-rebalance", "ft-version-count"} {
		if cat.Get(id) == nil {
			t.Fatalf("FullCatalog missing %s", id)
		}
	}
	// Scenario plans and compiled upgrade trees select on the same
	// assertion ids but are disjoint under step pruning: in a rolling
	// upgrade context the scenario plan reduces to its bare entry.
	for _, p := range cat.Select(assertion.CheckASGVersionCount) {
		pruned := p.Prune("step3")
		causes := len(pruned.PotentialRootCauses())
		if p.ID == "plan-bluegreen" && causes != 0 {
			t.Fatalf("plan-bluegreen should prune to no causes under step3, got %d", causes)
		}
		if p.ID == "ft-version-count" && causes == 0 {
			t.Fatal("ft-version-count lost its causes under step3")
		}
	}
	// And vice versa under a blue/green step.
	for _, p := range cat.Select(assertion.CheckASGVersionCount) {
		pruned := p.Prune("bgstep4")
		causes := len(pruned.PotentialRootCauses())
		if p.ID == "plan-bluegreen" && causes == 0 {
			t.Fatal("plan-bluegreen lost its causes under bgstep4")
		}
		if p.ID == "ft-version-count" && causes != 0 {
			t.Fatalf("ft-version-count should prune to no causes under bgstep4, got %d", causes)
		}
	}
}
