package faulttree

import (
	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/process"
)

// DefaultRepository returns the fault-tree knowledge base for the rolling
// upgrade operation, reproducing the structure of the paper's Figure 5
// (with the account-limit root cause added per the §VI.A amendment). Trees
// exist for the assertions the POD engine attaches to the process:
//
//   - asg-version-count  (high-level "N instances with the new version")
//   - asg-instance-count (post-loop capacity check)
//   - elb-instance-count (registration check after step 4/7)
//   - lc-exists          (post step-2 check)
//   - instance-version   (low-level per-node double check)
//   - elb-reachable      (post step-4 check)
//   - asg-uses-*         (the four low-level configuration checks)
func DefaultRepository() *Repository {
	r := NewRepository()
	r.Register(versionCountTree())
	r.Register(instanceCountTree())
	r.Register(elbCountTree())
	r.Register(lcExistsTree())
	r.Register(instanceVersionTree())
	r.Register(elbReachableTree())
	for _, id := range []string{
		assertion.CheckASGUsesAMI, assertion.CheckASGUsesKeyPair,
		assertion.CheckASGUsesSG, assertion.CheckASGUsesType,
	} {
		r.Register(configAssertionTree(id))
	}
	return r
}

// withProb assigns a prior probability to a shared sub-tree root at its
// attachment point. The sub-tree helpers below are reused across several
// trees whose sibling orderings differ, so the sibling-ordering probability
// lives at the call site; every multi-child sibling group carries distinct,
// non-zero priors so the probability-ordered visit is fully determined
// (podlint rules FT003/FT004).
func withProb(n *Node, p float64) *Node {
	n.Prob = p
	return n
}

// configAssertionTree diagnoses a failing low-level configuration check
// (the §III.B.3 scenario-(ii) assertions): any of the four configuration
// dimensions may have been changed by a concurrent operation, so the whole
// wrong-config sub-tree is consulted.
func configAssertionTree(assertionID string) *Tree {
	return &Tree{
		ID:          "ft-" + assertionID,
		AssertionID: assertionID,
		Root: &Node{
			ID:          "config-violated",
			Description: "The ASG {asgid} configuration deviates from the expectation",
			Children:    []*Node{wrongConfigSubtree()},
		},
	}
}

// elbReachableTree diagnoses a failing ELB reachability assertion (the
// post-step-4 check).
func elbReachableTree() *Tree {
	return &Tree{
		ID:          "ft-elb-reachable",
		AssertionID: assertion.CheckELBReachable,
		Root: &Node{
			ID:          "elb-not-reachable",
			Description: "The load balancer {elbname} is not reachable",
			Children:    []*Node{elbSubtree()},
		},
	}
}

// wrongConfigSubtree is the dashed-box sub-tree of Figure 5: the ASG is
// using a wrong configuration; four potential faults tested in
// probability order (AMI changes are the most common in continuous
// deployment).
func wrongConfigSubtree() *Node {
	return &Node{
		ID:          "asg-wrong-config",
		Description: "The ASG {asgid} is using a wrong configuration",
		Steps:       []string{process.StepUpdateLC, process.StepNewReady, process.StepCompleted},
		Children: []*Node{
			{
				ID:          "wrong-sg",
				Description: "Security group of ASG {asgid} changed during upgrade",
				CheckID:     assertion.CheckASGUsesSG,
				TestClass:   TestClassRetryable,
				Prob:        0.35,
				RootCause:   true,
			},
			{
				ID:          "wrong-keypair",
				Description: "Key pair of ASG {asgid} changed during upgrade",
				CheckID:     assertion.CheckASGUsesKeyPair,
				TestClass:   TestClassRetryable,
				Prob:        0.30,
				RootCause:   true,
			},
			{
				ID:          "wrong-ami",
				Description: "AMI of ASG {asgid} changed during upgrade (concurrent independent upgrade)",
				CheckID:     assertion.CheckASGUsesAMI,
				TestClass:   TestClassRetryable,
				Prob:        0.25,
				RootCause:   true,
			},
			{
				ID:          "wrong-instance-type",
				Description: "Instance type of ASG {asgid} changed during upgrade",
				CheckID:     assertion.CheckASGUsesType,
				TestClass:   TestClassRetryable,
				Prob:        0.10,
				RootCause:   true,
			},
		},
	}
}

// launchFailedSubtree covers replacements that never start.
func launchFailedSubtree(idSuffix string) *Node {
	return &Node{
		ID:          "instance-launch-failed" + idSuffix,
		Description: "The ASG {asgid} failed to launch a replacement instance",
		CheckID:     assertion.CheckNoFailedLaunches,
		TestClass:   TestClassRetryable,
		Steps:       []string{process.StepWaitASG, process.StepNewReady, process.StepCompleted},
		Children: []*Node{
			{
				ID:          "launch-ami-unavailable" + idSuffix,
				Description: "The AMI {amiid} is unavailable",
				CheckID:     assertion.CheckAMIAvailable,
				TestClass:   TestClassRetryable,
				Prob:        0.35,
				RootCause:   true,
			},
			{
				ID:          "launch-keypair-unavailable" + idSuffix,
				Description: "The key pair {keyname} is unavailable",
				CheckID:     assertion.CheckKeyPairExists,
				TestClass:   TestClassRetryable,
				Prob:        0.22,
				RootCause:   true,
			},
			{
				ID:          "launch-sg-unavailable" + idSuffix,
				Description: "The security group {sgname} is unavailable",
				CheckID:     assertion.CheckSGExists,
				TestClass:   TestClassRetryable,
				Prob:        0.18,
				RootCause:   true,
			},
			{
				// Added after the interference incident of §VI.A: the
				// co-tenant team exhausted the shared account's limit.
				ID:          "account-limit-reached" + idSuffix,
				Description: "The account instance limit was reached by a simultaneous operation",
				CheckID:     assertion.CheckNoLimitExceeded,
				TestClass:   TestClassRetryable,
				Prob:        0.10,
				RootCause:   true,
			},
		},
	}
}

// countDroppedSubtree covers instances disappearing mid-upgrade.
func countDroppedSubtree(idSuffix string) *Node {
	return &Node{
		ID:          "instance-count-dropped" + idSuffix,
		Description: "Instances of ASG {asgid} disappeared unexpectedly",
		CheckID:     assertion.CheckASGInstanceCount,
		TestClass:   TestClassRetryable,
		Steps: []string{process.StepDeregister, process.StepTerminateOld,
			process.StepWaitASG, process.StepNewReady, process.StepCompleted},
		Children: []*Node{
			{
				ID:          "simultaneous-scale-in" + idSuffix,
				Description: "A simultaneous scale-in shrank ASG {asgid}",
				CheckID:     assertion.CheckNoScaleIn,
				TestClass:   TestClassRetryable,
				Prob:        0.30,
				RootCause:   true,
			},
			{
				// Diagnosable only through CloudTrail-style API call
				// logs: the check consults the audit trail, which is
				// disabled by default (then the fault can be suspected
				// but never confirmed — §V.B) and, when enabled, is
				// subject to delivery delay (§VII).
				ID:          "unexpected-termination" + idSuffix,
				Description: "An instance of ASG {asgid} was terminated outside the process",
				CheckID:     assertion.CheckNoExternalTermination,
				TestClass:   TestClassNoRetry,
				Prob:        0.15,
				RootCause:   true,
			},
		},
	}
}

// elbSubtree covers load balancer trouble.
func elbSubtree() *Node {
	return &Node{
		ID:          "elb-problems",
		Description: "The load balancer {elbname} is misbehaving",
		CheckID:     assertion.CheckELBInstanceCount,
		TestClass:   TestClassRetryable,
		// The step context of a conformance-derived error is the last
		// valid step, so an ELB failure during step 4 surfaces with
		// step-3 context; include it.
		Steps: []string{process.StepSortInst, process.StepDeregister,
			process.StepTerminateOld, process.StepWaitASG,
			process.StepNewReady, process.StepCompleted},
		Children: []*Node{
			{
				ID:          "elb-unreachable",
				Description: "The load balancer {elbname} is unavailable (service disruption or deleted)",
				CheckID:     assertion.CheckELBReachable,
				TestClass:   TestClassRetryable,
				Prob:        0.25,
				RootCause:   true,
			},
			{
				ID:          "instance-not-registered",
				Description: "Instance {instanceid} is not registered with {elbname}",
				CheckID:     assertion.CheckInstanceRegistered,
				TestClass:   TestClassRetryable,
				Prob:        0.15,
				RootCause:   true,
			},
		},
	}
}

// lcCreateSubtree covers launch-configuration creation failures (the
// left-most sub-tree of Figure 5, associated with step 2).
func lcCreateSubtree() *Node {
	return &Node{
		ID:          "lc-create-failed",
		Description: "Creating launch configuration {lcname} failed",
		CheckID:     assertion.CheckLCExists,
		TestClass:   TestClassRetryable,
		CheckParams: assertion.Params{assertion.ParamLC: "{lcname}"},
		Steps:       []string{process.StepUpdateLC},
		Children: []*Node{
			{
				ID:          "lc-ami-unavailable",
				Description: "The AMI {amiid} is unavailable",
				CheckID:     assertion.CheckAMIAvailable,
				TestClass:   TestClassRetryable,
				Prob:        0.40,
				RootCause:   true,
			},
			{
				ID:          "lc-keypair-unavailable",
				Description: "The key pair {keyname} is unavailable",
				CheckID:     assertion.CheckKeyPairExists,
				TestClass:   TestClassRetryable,
				Prob:        0.28,
				RootCause:   true,
			},
			{
				ID:          "lc-sg-unavailable",
				Description: "The security group {sgname} is unavailable",
				CheckID:     assertion.CheckSGExists,
				TestClass:   TestClassRetryable,
				Prob:        0.22,
				RootCause:   true,
			},
		},
	}
}

// versionCountTree is the Figure 5 tree: the failure of "assert the system
// has N instances with the new version".
func versionCountTree() *Tree {
	return &Tree{
		ID:          "ft-version-count",
		AssertionID: assertion.CheckASGVersionCount,
		Root: &Node{
			ID:          "version-count-violated",
			Description: "The system does not have {want} instances with version {version}",
			Children: []*Node{
				withProb(lcCreateSubtree(), 0.30),
				withProb(wrongConfigSubtree(), 0.25),
				withProb(launchFailedSubtree(""), 0.20),
				withProb(countDroppedSubtree(""), 0.15),
				withProb(elbSubtree(), 0.10),
			},
		},
	}
}

// instanceCountTree diagnoses a wrong live-instance count.
func instanceCountTree() *Tree {
	return &Tree{
		ID:          "ft-instance-count",
		AssertionID: assertion.CheckASGInstanceCount,
		Root: &Node{
			ID:          "instance-count-violated",
			Description: "The ASG {asgid} does not have {want} live instances",
			Children: []*Node{
				withProb(launchFailedSubtree("-ic"), 0.60),
				withProb(countDroppedSubtree("-ic"), 0.40),
			},
		},
	}
}

// elbCountTree diagnoses registration shortfalls.
func elbCountTree() *Tree {
	return &Tree{
		ID:          "ft-elb-count",
		AssertionID: assertion.CheckELBInstanceCount,
		Root: &Node{
			ID:          "elb-count-violated",
			Description: "The ELB {elbname} does not have {want} registered instances",
			Children: []*Node{
				withProb(elbSubtree(), 0.45),
				withProb(launchFailedSubtree("-elb"), 0.35),
				withProb(countDroppedSubtree("-elb"), 0.20),
			},
		},
	}
}

// lcExistsTree diagnoses a missing/incorrect launch configuration after
// step 2.
func lcExistsTree() *Tree {
	return &Tree{
		ID:          "ft-lc-exists",
		AssertionID: assertion.CheckLCExists,
		Root: &Node{
			ID:          "lc-missing",
			Description: "The launch configuration {lcname} is missing or incorrect",
			Children: []*Node{
				withProb(lcCreateSubtree(), 0.70),
				{
					ID:          "lc-changed",
					Description: "The launch configuration of ASG {asgid} was changed by a simultaneous operation",
					CheckID:     assertion.CheckASGUsesAMI,
					TestClass:   TestClassRetryable,
					Prob:        0.30,
					RootCause:   true,
				},
			},
		},
	}
}

// instanceVersionTree diagnoses a node running the wrong version.
func instanceVersionTree() *Tree {
	return &Tree{
		ID:          "ft-instance-version",
		AssertionID: assertion.CheckInstanceVersion,
		Root: &Node{
			ID:          "instance-wrong-version",
			Description: "Instance {instanceid} does not run version {version}",
			Children: []*Node{
				wrongConfigSubtree(),
			},
		},
	}
}
