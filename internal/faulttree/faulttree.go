// Package faulttree implements the paper's fault trees (§III.B.4,
// Figure 5): structured repositories of known errors and root causes, one
// tree per assertion. Nodes carry an optional diagnosis test (an on-demand
// assertion from the check library); interior nodes are intermediate
// events and leaves marked as root causes are the diagnosable faults.
//
// At diagnosis time a tree is selected by the failing assertion's id,
// instantiated with the runtime request's parameters ({var} placeholders),
// pruned by the process context (step id), and visited top-down by the
// diagnosis engine.
package faulttree

import (
	"fmt"
	"strings"

	"poddiagnosis/internal/assertion"
)

// Node is one vertex of a fault tree.
type Node struct {
	// ID identifies the node within its tree, e.g. "wrong-ami".
	ID string `json:"id"`
	// Description explains the fault or intermediate event; it may
	// contain {param} placeholders instantiated at diagnosis time.
	Description string `json:"description"`
	// CheckID names the diagnosis test (an assertion check id) that
	// confirms or excludes this fault: the fault is present when the
	// check FAILS. Empty means no test exists — structural nodes are
	// always descended into; untestable leaves can never be confirmed
	// (the paper's "diagnosis cannot determine why" case).
	CheckID string `json:"checkId,omitempty"`
	// CheckParams override or extend the request parameters for the
	// diagnosis test; values may contain {param} placeholders.
	CheckParams assertion.Params `json:"checkParams,omitempty"`
	// TestClass classifies the diagnosis test's failure handling for the
	// resilience layer: TestClassRetryable tests are retried with backoff
	// on throttle/timeout-class errors, TestClassNoRetry tests are not.
	// Required (by podlint FT009) on every node carrying a CheckID.
	TestClass string `json:"testClass,omitempty"`
	// Steps is the process context association: the step ids for which
	// this sub-tree is relevant. Empty means relevant in any context.
	Steps []string `json:"steps,omitempty"`
	// Prob is the prior fault probability used to order sibling visits
	// (§III.B.4: "the order in which potential faults are examined is
	// determined by the fault probability").
	Prob float64 `json:"prob,omitempty"`
	// RootCause marks a leaf as a diagnosable root cause.
	RootCause bool `json:"rootCause,omitempty"`
	// Children are the sub-events that can cause this event.
	Children []*Node `json:"children,omitempty"`
}

// Test classifications for Node.TestClass.
const (
	// TestClassRetryable marks a test safe to retry under backoff when it
	// fails with a throttle/timeout-class error (read-only cloud queries).
	TestClassRetryable = "retryable"
	// TestClassNoRetry marks a test that must not be retried (its answer
	// is time-sensitive or the call is not idempotent).
	TestClassNoRetry = "no-retry"
)

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	out := *n
	out.CheckParams = n.CheckParams.Clone()
	out.Steps = append([]string(nil), n.Steps...)
	out.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		out.Children[i] = c.Clone()
	}
	return &out
}

// Leaf reports whether the node has no children.
func (n *Node) Leaf() bool { return len(n.Children) == 0 }

// Path returns the "/"-joined node ids from the root of t to the node
// with the given id, or "" when the id is not in the tree. Evidence
// timelines attach it to confirmed causes so a cause records where in
// the tree it was found, not just its leaf id.
func (t *Tree) Path(nodeID string) string {
	if t == nil || t.Root == nil {
		return ""
	}
	var find func(n *Node, trail []string) string
	find = func(n *Node, trail []string) string {
		trail = append(trail, n.ID)
		if n.ID == nodeID {
			return strings.Join(trail, "/")
		}
		for _, c := range n.Children {
			if p := find(c, trail); p != "" {
				return p
			}
		}
		return ""
	}
	return find(t.Root, nil)
}

// RelevantTo reports whether the node applies in the given step context.
// An empty stepID (context unknown, e.g. purely timer-triggered
// diagnosis) keeps every node; an unscoped node is always relevant.
func (n *Node) RelevantTo(stepID string) bool {
	if stepID == "" || len(n.Steps) == 0 {
		return true
	}
	for _, s := range n.Steps {
		if s == stepID {
			return true
		}
	}
	return false
}

// Tree is a fault tree for one assertion.
type Tree struct {
	// ID identifies the tree.
	ID string `json:"id"`
	// AssertionID is the check whose failure selects this tree.
	AssertionID string `json:"assertionId"`
	// Root is the top event (the assertion's negation).
	Root *Node `json:"root"`
}

// Validate checks structural invariants: non-nil root, unique node ids,
// root causes only at leaves, and (when reg is non-nil) every CheckID
// known to the registry.
func (t *Tree) Validate(reg *assertion.Registry) error {
	if t.Root == nil {
		return fmt.Errorf("faulttree %s: nil root", t.ID)
	}
	seen := make(map[string]bool)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.ID == "" {
			return fmt.Errorf("faulttree %s: node with empty id", t.ID)
		}
		if seen[n.ID] {
			return fmt.Errorf("faulttree %s: duplicate node id %q", t.ID, n.ID)
		}
		seen[n.ID] = true
		if n.RootCause && !n.Leaf() {
			return fmt.Errorf("faulttree %s: root cause %q has children", t.ID, n.ID)
		}
		if n.CheckID != "" && reg != nil {
			if _, ok := reg.Lookup(n.CheckID); !ok {
				return fmt.Errorf("faulttree %s: node %q references unknown check %q", t.ID, n.ID, n.CheckID)
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root)
}

// Instantiate returns a deep copy with every {param} placeholder in
// descriptions and check parameters substituted from params. Unknown
// placeholders are left intact so partially-instantiated trees remain
// inspectable.
func (t *Tree) Instantiate(params assertion.Params) *Tree {
	out := &Tree{ID: t.ID, AssertionID: t.AssertionID, Root: t.Root.Clone()}
	var walk func(n *Node)
	walk = func(n *Node) {
		n.Description = substitute(n.Description, params)
		for k, v := range n.CheckParams {
			n.CheckParams[k] = substitute(v, params)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(out.Root)
	return out
}

// Prune returns a deep copy retaining only sub-trees relevant to the step
// context. The root is always kept.
func (t *Tree) Prune(stepID string) *Tree {
	out := &Tree{ID: t.ID, AssertionID: t.AssertionID, Root: t.Root.Clone()}
	var walk func(n *Node)
	walk = func(n *Node) {
		kept := n.Children[:0]
		for _, c := range n.Children {
			if c.RelevantTo(stepID) {
				walk(c)
				kept = append(kept, c)
			}
		}
		n.Children = kept
	}
	walk(out.Root)
	return out
}

// PotentialRootCauses returns all root-cause leaves of the tree, in visit
// order (sibling probability descending).
func (t *Tree) PotentialRootCauses() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.RootCause {
			out = append(out, n)
		}
		for _, c := range SortedChildren(n) {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// SortedChildren returns the children ordered by descending prior
// probability (stable for equal probabilities).
func SortedChildren(n *Node) []*Node {
	out := append([]*Node(nil), n.Children...)
	// insertion sort: child lists are tiny and stability matters.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Prob > out[j-1].Prob; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// substitute replaces {key} placeholders with values from params.
func substitute(s string, params assertion.Params) string {
	if !strings.Contains(s, "{") {
		return s
	}
	for k, v := range params {
		s = strings.ReplaceAll(s, "{"+k+"}", v)
	}
	return s
}

// Repository holds the fault trees, keyed by assertion id.
type Repository struct {
	trees map[string][]*Tree
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{trees: make(map[string][]*Tree)}
}

// Register adds a tree.
func (r *Repository) Register(t *Tree) {
	r.trees[t.AssertionID] = append(r.trees[t.AssertionID], t)
}

// Select returns the trees for the given assertion id.
func (r *Repository) Select(assertionID string) []*Tree {
	return append([]*Tree(nil), r.trees[assertionID]...)
}

// All returns every registered tree.
func (r *Repository) All() []*Tree {
	var out []*Tree
	for _, ts := range r.trees {
		out = append(out, ts...)
	}
	return out
}

// Validate validates every tree in the repository.
func (r *Repository) Validate(reg *assertion.Registry) error {
	for _, t := range r.All() {
		if err := t.Validate(reg); err != nil {
			return err
		}
	}
	return nil
}
