package federate

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("op-%d", i)
	}
	return keys
}

// TestRingJoinOrderIrrelevant: ownership must depend only on the member
// set, never on the order members joined in.
func TestRingJoinOrderIrrelevant(t *testing.T) {
	a := newRing(64)
	for _, m := range []string{"m1", "m2", "m3"} {
		a.add(m)
	}
	b := newRing(64)
	for _, m := range []string{"m3", "m1", "m2"} {
		b.add(m)
	}
	for _, k := range ringKeys(300) {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("owner of %q depends on join order: %q vs %q", k, a.owner(k), b.owner(k))
		}
	}
}

// TestRingRemovalOnlyMovesVictims: removing a member must not move any
// key owned by a survivor — the consistent-hashing contract that keeps
// failover from churning healthy members' operations.
func TestRingRemovalOnlyMovesVictims(t *testing.T) {
	r := newRing(64)
	for _, m := range []string{"m1", "m2", "m3"} {
		r.add(m)
	}
	keys := ringKeys(300)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.owner(k)
	}
	r.remove("m2")
	for _, k := range keys {
		after := r.owner(k)
		if before[k] != "m2" && after != before[k] {
			t.Errorf("key %q moved %q -> %q although its owner survived", k, before[k], after)
		}
		if after == "m2" {
			t.Errorf("key %q still owned by removed member", k)
		}
	}
}

// TestRingSequence: the preference walk yields every member exactly
// once, starting with the owner — the failover order placement relies
// on.
func TestRingSequence(t *testing.T) {
	r := newRing(64)
	members := map[string]bool{"m1": true, "m2": true, "m3": true, "m4": true}
	for m := range members {
		r.add(m)
	}
	for _, k := range ringKeys(50) {
		seq := r.sequence(k)
		if len(seq) != len(members) {
			t.Fatalf("sequence(%q) has %d members, want %d", k, len(seq), len(members))
		}
		if seq[0] != r.owner(k) {
			t.Fatalf("sequence(%q)[0] = %q, owner = %q", k, seq[0], r.owner(k))
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if !members[m] || seen[m] {
				t.Fatalf("sequence(%q) = %v is not a permutation of the member set", k, seq)
			}
			seen[m] = true
		}
	}
}

// TestRingSpread: with virtual nodes, no member of three should own a
// wildly disproportionate share of keys.
func TestRingSpread(t *testing.T) {
	r := newRing(64)
	for _, m := range []string{"m1", "m2", "m3"} {
		r.add(m)
	}
	counts := map[string]int{}
	for _, k := range ringKeys(900) {
		counts[r.owner(k)]++
	}
	for m, n := range counts {
		if n < 90 { // 10% of keys; fair share is 300
			t.Errorf("member %s owns only %d/900 keys; virtual nodes are not spreading", m, n)
		}
	}
}
