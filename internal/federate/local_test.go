package federate

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/simaws"
)

// fedRig is a two-member federation over one simulated cloud.
type fedRig struct {
	clk   *clock.Scaled
	front *Front
	m1    *LocalMember
	m2    *LocalMember
	ctx   context.Context
}

func newFedRig(t *testing.T) *fedRig {
	t.Helper()
	clk := clock.NewScaled(1200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.TickInterval = time.Second
	cloud := simaws.New(clk, profile, simaws.WithSeed(41), simaws.WithBus(bus))
	cloud.Start()
	t.Cleanup(func() { cloud.Stop(); bus.Close() })
	factory := func() (*core.Manager, error) {
		mgr, err := core.NewManager(core.ManagerConfig{
			Cloud: cloud,
			Bus:   bus,
			API: consistentapi.Config{
				MaxAttempts:    3,
				InitialBackoff: 500 * time.Millisecond,
				MaxBackoff:     4 * time.Second,
				CallTimeout:    30 * time.Second,
			},
		})
		if err != nil {
			return nil, err
		}
		mgr.Start()
		return mgr, nil
	}
	newMember := func(id string) *LocalMember {
		m, err := NewLocalMember(LocalConfig{ID: id, NewManager: factory})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.StopHeartbeats(); m.Manager().Stop() })
		return m
	}
	front := NewFront(clk, Config{LeaseTTL: 30 * time.Second})
	m1, m2 := newMember("m1"), newMember("m2")
	if err := m1.JoinFront(front); err != nil {
		t.Fatal(err)
	}
	if err := m2.JoinFront(front); err != nil {
		t.Fatal(err)
	}
	return &fedRig{clk: clk, front: front, m1: m1, m2: m2, ctx: context.Background()}
}

func (r *fedRig) byID(id string) (*LocalMember, *LocalMember) {
	if r.m1.ID() == id {
		return r.m1, r.m2
	}
	return r.m2, r.m1
}

// TestLocalMemberHandoff kills the member owning a live session and
// checks the survivor adopts it from the heartbeat-replicated snapshot
// with a federation.handoff entry on its flight ring; a later restart
// re-admits the dead member without ever leaving the operation held by
// two managers at once.
func TestLocalMemberHandoff(t *testing.T) {
	r := newFedRig(t)
	const opID = "fed-handoff-op"
	_, ownerID, err := r.front.Watch(r.ctx, WatchRequest{
		ID:          opID,
		Expect:      core.Expectation{ASGName: "fed--asg", ClusterSize: 2},
		InstanceIDs: []string{"fed-task"},
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, survivor := r.byID(ownerID)

	// Replicate state to the front, then crash the owner.
	owner.HeartbeatNow()
	survivor.HeartbeatNow()
	owner.Kill()

	deadline := 40
	for ; deadline > 0; deadline-- {
		survivor.HeartbeatNow()
		r.front.Tick(r.ctx)
		if cur, _, _ := r.front.Owner(opID); cur == survivor.ID() {
			break
		}
		if err := r.clk.Sleep(r.ctx, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if deadline == 0 {
		t.Fatalf("operation never failed over to the survivor")
	}
	if _, epoch, _ := r.front.Owner(opID); epoch != 2 {
		t.Fatalf("handoff epoch = %d, want 2", epoch)
	}

	sess := survivor.Manager().Session(opID)
	if sess == nil {
		t.Fatalf("survivor's manager does not hold the adopted session")
	}
	tl := survivor.Manager().Flight().Timeline(opID)
	if len(tl.Entries) == 0 || tl.Entries[len(tl.Entries)-1].Kind != flight.KindHandoff {
		t.Fatalf("adopted session's flight ring does not end with a federation.handoff entry")
	}

	// The dead member's manager stays readable post-mortem.
	if owner.Manager() == nil {
		t.Fatalf("killed member lost its post-mortem manager handle")
	}

	// Restart and re-join: the operation must end up held by exactly one
	// manager, whatever the ring decides.
	if err := owner.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := owner.JoinFront(r.front); err != nil {
		t.Fatal(err)
	}
	owner.HeartbeatNow()
	survivor.HeartbeatNow()
	r.front.Tick(r.ctx)
	holders := 0
	for _, m := range []*LocalMember{r.m1, r.m2} {
		if m.Manager().Session(opID) != nil {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("operation held by %d managers after rejoin, want exactly 1", holders)
	}
	curOwner, _, _ := r.front.Owner(opID)
	cur, _ := r.byID(curOwner)
	if cur.Manager().Session(opID) == nil {
		t.Fatalf("front routes %s to %s, whose manager does not hold it", opID, curOwner)
	}
}

// TestLocalMemberPartitionSplitBrain partitions the owner instead of
// killing it: the session keeps running on the stale member, but after
// the front fails it over, the healed member's first heartbeat learns
// it is stale, drops the foreign session and re-joins — leaving the
// operation monitored by exactly one current owner.
func TestLocalMemberPartitionSplitBrain(t *testing.T) {
	r := newFedRig(t)
	const opID = "fed-partition-op"
	_, ownerID, err := r.front.Watch(r.ctx, WatchRequest{
		ID:          opID,
		Expect:      core.Expectation{ASGName: "fedp--asg", ClusterSize: 2},
		InstanceIDs: []string{"fedp-task"},
	})
	if err != nil {
		t.Fatal(err)
	}
	owner, survivor := r.byID(ownerID)
	owner.HeartbeatNow()
	survivor.HeartbeatNow()
	oldEpoch := owner.Epoch()
	owner.SetPartitioned(true)

	deadline := 40
	for ; deadline > 0; deadline-- {
		owner.HeartbeatNow() // silently skipped while partitioned
		survivor.HeartbeatNow()
		r.front.Tick(r.ctx)
		if cur, _, _ := r.front.Owner(opID); cur == survivor.ID() {
			break
		}
		if err := r.clk.Sleep(r.ctx, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if deadline == 0 {
		t.Fatalf("operation never failed over away from the partitioned owner")
	}
	// Both sides hold the session right now: the partitioned member does
	// not know it lost ownership. Heal the partition; the next heartbeat
	// must fire the split-brain guard.
	if owner.Manager().Session(opID) == nil {
		t.Fatalf("partitioned member should still hold the stale session before healing")
	}
	owner.SetPartitioned(false)
	owner.HeartbeatNow()
	if owner.Epoch() <= oldEpoch {
		t.Fatalf("healed member's epoch %d did not advance past %d", owner.Epoch(), oldEpoch)
	}
	// The guard made the healed member drop the stale copy before
	// re-joining; the join's rebalance may then have handed the
	// operation back gracefully. Either way exactly one manager may
	// hold it, and it must be the one the front routes to.
	holders := 0
	for _, m := range []*LocalMember{r.m1, r.m2} {
		if m.Manager().Session(opID) != nil {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("operation held by %d managers after the partition healed, want exactly 1", holders)
	}
	curOwner, epoch, _ := r.front.Owner(opID)
	cur, _ := r.byID(curOwner)
	if cur.Manager().Session(opID) == nil {
		t.Fatalf("front routes %s to %s, whose manager does not hold it", opID, curOwner)
	}
	if epoch < 2 {
		t.Fatalf("operation epoch %d did not advance across the failover", epoch)
	}
}
