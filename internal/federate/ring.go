package federate

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// hashRing is a consistent-hash ring with virtual nodes. Each member
// contributes replicas points ("id#i" hashed); an operation id lands
// on the first point at or after its own hash, and the successor walk
// yields the failover order. Points sort by (hash, member) so ties are
// deterministic regardless of join order.
type hashRing struct {
	replicas int
	points   []ringPoint // sorted by (hash, member)
	members  map[string]bool
}

type ringPoint struct {
	hash   uint32
	member string
}

func newRing(replicas int) *hashRing {
	if replicas <= 0 {
		replicas = 64
	}
	return &hashRing{replicas: replicas, members: make(map[string]bool)}
}

func ringHash(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func (r *hashRing) add(id string) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{ringHash(id + "#" + strconv.Itoa(i)), id})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
}

func (r *hashRing) remove(id string) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

func (r *hashRing) size() int { return len(r.members) }

// owner returns the ring owner of the key ("" on an empty ring).
func (r *hashRing) owner(key string) string {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// sequence returns every member in ring order starting at the key's
// hash: the placement preference list (first entry is the owner, the
// rest the failover successors).
func (r *hashRing) sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	out := make([]string, 0, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
