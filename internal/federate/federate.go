// Package federate makes the monitoring plane itself fault-tolerant:
// multiple Manager instances (in-process members for tests and the
// demo, REST-backed members for podserve deployments) stand behind a
// routing front that consistent-hashes operation ids onto a member
// ring.
//
// Membership is lease-based. Members heartbeat the front on the
// injected clock; missed renewals move a member through healthy →
// suspect → dead. Every (re)join is stamped with a monotonically
// increasing epoch, and a renewal carrying a stale epoch — or arriving
// after the member was declared dead — is rejected and told which
// operations to drop, so a partitioned member that comes back cannot
// keep monitoring operations that were already failed over (the
// split-brain guard).
//
// Heartbeats piggyback session snapshots (core.SessionSnapshot). On
// member death the front restores each of the dead member's operations
// onto a survivor from its last replicated snapshot, so evidence
// chains, dedup maps and remediation idempotency keys survive the
// handoff; a join triggers bounded rebalancing via live export →
// restore → remove; an overloaded member (reported backlog above the
// shed threshold) is skipped at placement time — shed, not dropped.
package federate

import (
	"context"
	"time"

	"poddiagnosis/internal/core"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/obs/flight"
)

// MemberState is a member's lease state at the front.
type MemberState string

// Lease states, in order of decay.
const (
	// StateHealthy means the lease is current; the member receives new
	// placements and keeps its operations.
	StateHealthy MemberState = "healthy"
	// StateSuspect means the lease expired; the member keeps its
	// operations but receives no new placements. A renewal recovers it.
	StateSuspect MemberState = "suspect"
	// StateDead means the lease expired past the grace window; the
	// member's operations were failed over and only a re-join (with a
	// fresh epoch) readmits it.
	StateDead MemberState = "dead"
)

// WatchRequest registers one operation with the federation. The id is
// the consistent-hashing key; the rest mirrors a Manager.Watch call.
type WatchRequest struct {
	ID            string           `json:"id"`
	Expect        core.Expectation `json:"expect"`
	InstanceIDs   []string         `json:"instanceIds,omitempty"`
	MatchASG      bool             `json:"matchAsg,omitempty"`
	MatchAny      bool             `json:"matchAny,omitempty"`
	AssertionSpec string           `json:"assertionSpec,omitempty"`
	MaxDetections int              `json:"maxDetections,omitempty"`
}

// Member is one Manager instance participating in the federation. The
// front drives it through this interface only, so in-process members
// (LocalMember) and REST-backed ones (rest.FederationMember) are
// interchangeable.
type Member interface {
	ID() string
	// Watch registers a new session for the operation.
	Watch(ctx context.Context, req WatchRequest) (core.SessionSummary, error)
	// Export snapshots one session for a graceful handoff.
	Export(ctx context.Context, opID string) (*core.SessionSnapshot, error)
	// Restore adopts a session from a snapshot (the failover path).
	Restore(ctx context.Context, snap *core.SessionSnapshot) error
	// Remove deletes a session (the releasing half of a handoff).
	Remove(ctx context.Context, opID string) error
	// Operation, Detections and Timeline serve the front's proxy reads.
	Operation(ctx context.Context, opID string) (core.SessionSummary, error)
	Detections(ctx context.Context, opID string) ([]core.Detection, error)
	Timeline(ctx context.Context, opID string) (flight.Timeline, error)
}

// Renewal is the payload a member piggybacks on a lease renewal: its
// reported backlog (the shed signal) and fresh snapshots of the
// sessions it owns (the failover state).
type Renewal struct {
	Pending   int                     `json:"pending"`
	Snapshots []*core.SessionSnapshot `json:"snapshots,omitempty"`
}

// RenewResult answers a renewal.
type RenewResult struct {
	// Stale reports the split-brain guard fired: the epoch is not the
	// member's current one (or the member was declared dead). The
	// member must drop DropOps and re-join for a fresh epoch before
	// monitoring anything again.
	Stale bool `json:"stale,omitempty"`
	// DropOps lists operation ids the renewing member may still hold
	// but no longer owns.
	DropOps []string `json:"dropOps,omitempty"`
	// Expires is the renewed lease deadline (zero when stale).
	Expires time.Time `json:"expires,omitempty"`
}

// MemberInfo is the serializable view of one member's lease.
type MemberInfo struct {
	ID         string      `json:"id"`
	State      MemberState `json:"state"`
	Epoch      uint64      `json:"epoch"`
	Expires    time.Time   `json:"expires"`
	Pending    int         `json:"pending"`
	Operations int         `json:"operations"`
}

// Federation metrics (pod_fed_*).
var (
	mFedMembers = obs.Default.GaugeVec("pod_fed_members",
		"Federation members by lease state.", "state")
	mFedOps = obs.Default.Gauge("pod_fed_operations",
		"Operations routed by the federation front.")
	mFedRenewals = obs.Default.CounterVec("pod_fed_renewals_total",
		"Lease renewals by outcome (ok or stale).", "outcome")
	mFedHandoffs = obs.Default.CounterVec("pod_fed_handoffs_total",
		"Operation handoffs by reason (member-dead, rebalance).", "reason")
	mFedTransitions = obs.Default.CounterVec("pod_fed_lease_transitions_total",
		"Member lease-state transitions, by new state.", "to")
	mFedShed = obs.Default.Counter("pod_fed_placements_shed_total",
		"Placements diverted past an overloaded member by the shed threshold.")
)
