package federate

import (
	"context"
	"fmt"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/remediate"
)

// LocalConfig builds a LocalMember.
type LocalConfig struct {
	// ID is the member's federation identity.
	ID string
	// NewManager builds AND starts a fresh Manager. Called once at
	// construction and again on every Restart, so a killed member
	// rejoins with a clean substrate (its sessions live on elsewhere).
	NewManager func() (*core.Manager, error)
	// ControllerFor, when set, supplies the remediation operation
	// controller attached to sessions this member adopts (Watch or
	// Restore). Sharing one controller per operation across members is
	// what keeps operation-level remediations idempotent across a
	// handoff.
	ControllerFor func(opID string) remediate.OperationController
}

// LocalMember is an in-process federation member: one Manager plus the
// heartbeat loop that renews its lease and replicates its session
// snapshots to the front. Tests drive it deterministically with
// HeartbeatNow, Kill, Restart and SetPartitioned.
type LocalMember struct {
	id     string
	build  func() (*core.Manager, error)
	ctlFor func(opID string) remediate.OperationController

	mu          sync.Mutex
	mgr         *core.Manager
	down        bool
	partitioned bool
	front       *Front
	epoch       uint64

	stopHB   chan struct{}
	hbActive bool
	wg       sync.WaitGroup
}

// NewLocalMember builds the member and its first Manager.
func NewLocalMember(cfg LocalConfig) (*LocalMember, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("federate: LocalConfig.ID is required")
	}
	if cfg.NewManager == nil {
		return nil, fmt.Errorf("federate: LocalConfig.NewManager is required")
	}
	mgr, err := cfg.NewManager()
	if err != nil {
		return nil, err
	}
	return &LocalMember{id: cfg.ID, build: cfg.NewManager, ctlFor: cfg.ControllerFor, mgr: mgr}, nil
}

// ID implements Member.
func (l *LocalMember) ID() string { return l.id }

// Manager returns the member's current Manager (still readable after
// Kill, for post-mortem assertions on its ledgers).
func (l *LocalMember) Manager() *core.Manager {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mgr
}

// Epoch returns the member's current lease epoch.
func (l *LocalMember) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

func (l *LocalMember) manager() (*core.Manager, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return nil, fmt.Errorf("federate: member %s is down", l.id)
	}
	return l.mgr, nil
}

func (l *LocalMember) watchOptions(req WatchRequest) []core.WatchOption {
	opts := []core.WatchOption{core.WithSessionID(req.ID)}
	if len(req.InstanceIDs) > 0 {
		opts = append(opts, core.BindInstance(req.InstanceIDs...))
	}
	if req.MatchASG {
		opts = append(opts, core.MatchASGInstances())
	}
	if req.MatchAny {
		opts = append(opts, core.MatchAnyInstance())
	}
	if req.AssertionSpec != "" {
		opts = append(opts, core.WithAssertionSpec(req.AssertionSpec))
	}
	if req.MaxDetections > 0 {
		opts = append(opts, core.WithMaxDetections(req.MaxDetections))
	}
	if l.ctlFor != nil {
		opts = append(opts, core.WithRemediationController(l.ctlFor(req.ID)))
	}
	return opts
}

// Watch implements Member.
func (l *LocalMember) Watch(_ context.Context, req WatchRequest) (core.SessionSummary, error) {
	mgr, err := l.manager()
	if err != nil {
		return core.SessionSummary{}, err
	}
	s, err := mgr.Watch(req.Expect, l.watchOptions(req)...)
	if err != nil {
		return core.SessionSummary{}, err
	}
	return s.Summary(), nil
}

// Export implements Member.
func (l *LocalMember) Export(_ context.Context, opID string) (*core.SessionSnapshot, error) {
	mgr, err := l.manager()
	if err != nil {
		return nil, err
	}
	return mgr.ExportSession(opID)
}

// Restore implements Member: the adoption half of a handoff.
func (l *LocalMember) Restore(_ context.Context, snap *core.SessionSnapshot) error {
	mgr, err := l.manager()
	if err != nil {
		return err
	}
	var opts []core.WatchOption
	if l.ctlFor != nil && snap != nil {
		opts = append(opts, core.WithRemediationController(l.ctlFor(snap.ID)))
	}
	_, err = mgr.RestoreSession(snap, opts...)
	return err
}

// Remove implements Member.
func (l *LocalMember) Remove(_ context.Context, opID string) error {
	mgr, err := l.manager()
	if err != nil {
		return err
	}
	mgr.Remove(opID)
	return nil
}

// Operation implements Member.
func (l *LocalMember) Operation(_ context.Context, opID string) (core.SessionSummary, error) {
	mgr, err := l.manager()
	if err != nil {
		return core.SessionSummary{}, err
	}
	s := mgr.Session(opID)
	if s == nil {
		return core.SessionSummary{}, fmt.Errorf("federate: member %s: no operation %q", l.id, opID)
	}
	return s.Summary(), nil
}

// Detections implements Member.
func (l *LocalMember) Detections(_ context.Context, opID string) ([]core.Detection, error) {
	mgr, err := l.manager()
	if err != nil {
		return nil, err
	}
	s := mgr.Session(opID)
	if s == nil {
		return nil, fmt.Errorf("federate: member %s: no operation %q", l.id, opID)
	}
	return s.Detections(), nil
}

// Timeline implements Member.
func (l *LocalMember) Timeline(_ context.Context, opID string) (flight.Timeline, error) {
	mgr, err := l.manager()
	if err != nil {
		return flight.Timeline{}, err
	}
	return mgr.Flight().Timeline(opID), nil
}

// JoinFront joins (or re-joins) the front and records the granted
// epoch.
func (l *LocalMember) JoinFront(f *Front) error {
	epoch, err := f.Join(l)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.front = f
	l.epoch = epoch
	l.mu.Unlock()
	return nil
}

// renewal snapshots every session the member currently runs.
func (l *LocalMember) renewal() Renewal {
	mgr, err := l.manager()
	if err != nil {
		return Renewal{}
	}
	r := Renewal{Pending: mgr.QueueDepth().Depth()}
	for _, s := range mgr.Sessions() {
		if snap, err := mgr.ExportSession(s.ID()); err == nil {
			r.Snapshots = append(r.Snapshots, snap)
		}
	}
	return r
}

// HeartbeatNow renews the lease once, synchronously: the deterministic
// path tests use to force snapshot replication before a kill. A stale
// verdict makes the member drop the listed operations and re-join for
// a fresh epoch (the recovering side of the split-brain guard).
// Down or partitioned members skip silently.
func (l *LocalMember) HeartbeatNow() {
	l.mu.Lock()
	front, epoch := l.front, l.epoch
	skip := l.down || l.partitioned || front == nil
	l.mu.Unlock()
	if skip {
		return
	}
	res := front.Renew(l.id, epoch, l.renewal())
	if !res.Stale {
		return
	}
	mgr, err := l.manager()
	if err != nil {
		return
	}
	for _, opID := range res.DropOps {
		mgr.Remove(opID)
	}
	_ = l.JoinFront(front)
}

// StartHeartbeats renews the lease every interval on the manager's
// injected clock until StopHeartbeats (or Kill).
func (l *LocalMember) StartHeartbeats(every time.Duration) {
	l.mu.Lock()
	if l.hbActive || l.mgr == nil {
		l.mu.Unlock()
		return
	}
	l.hbActive = true
	l.stopHB = make(chan struct{})
	stop := l.stopHB
	clk := l.mgr.Clock()
	l.mu.Unlock()
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		ticker := clock.NewTicker(clk, every)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				l.HeartbeatNow()
			}
		}
	}()
}

// StopHeartbeats halts the heartbeat loop. Idempotent.
func (l *LocalMember) StopHeartbeats() {
	l.mu.Lock()
	if l.hbActive {
		l.hbActive = false
		close(l.stopHB)
	}
	l.mu.Unlock()
	l.wg.Wait()
}

// Kill simulates the member crashing: heartbeats stop, the Manager
// stops, and every Member call fails until Restart. The dead Manager
// stays readable via Manager() for post-mortem ledger assertions.
func (l *LocalMember) Kill() {
	l.StopHeartbeats()
	l.mu.Lock()
	mgr := l.mgr
	l.down = true
	l.mu.Unlock()
	if mgr != nil {
		mgr.Stop()
	}
}

// Restart brings a killed member back with a fresh Manager (built and
// started by the factory). The caller re-joins and restarts
// heartbeats.
func (l *LocalMember) Restart() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.down {
		return fmt.Errorf("federate: member %s is not down", l.id)
	}
	mgr, err := l.build()
	if err != nil {
		return err
	}
	l.mgr = mgr
	l.down = false
	return nil
}

// SetPartitioned toggles a network partition: the member keeps running
// but its heartbeats stop reaching the front, so its lease decays and
// its operations fail over. Healing the partition lets the next
// heartbeat discover it is stale.
func (l *LocalMember) SetPartitioned(p bool) {
	l.mu.Lock()
	l.partitioned = p
	l.mu.Unlock()
}
