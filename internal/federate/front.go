package federate

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/core"
)

// Config tunes the front's lease machine and placement.
type Config struct {
	// LeaseTTL is how long a renewal keeps a member healthy; at expiry
	// it turns suspect. Defaults to 10s (simulated time).
	LeaseTTL time.Duration
	// DeadAfter is the grace past expiry before a suspect member is
	// declared dead and failed over. Defaults to LeaseTTL.
	DeadAfter time.Duration
	// CheckInterval is the lease monitor cadence. Defaults to
	// LeaseTTL/4.
	CheckInterval time.Duration
	// VirtualNodes is the per-member point count on the hash ring.
	// Defaults to 64.
	VirtualNodes int
	// MaxRebalanceMoves bounds how many operations one join may pull
	// onto the new member. Defaults to 4.
	MaxRebalanceMoves int
	// ShedPending, when positive, makes placement skip members whose
	// last reported backlog exceeds it (overload shedding). The skipped
	// member keeps what it has; it just gets nothing new.
	ShedPending int
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = c.LeaseTTL
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = c.LeaseTTL / 4
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.MaxRebalanceMoves <= 0 {
		c.MaxRebalanceMoves = 4
	}
	return c
}

// Front is the federation's routing and membership authority: it
// consistent-hashes operations onto members, runs the lease state
// machine, replicates heartbeat-carried snapshots, and fails a dead
// member's operations over onto survivors.
type Front struct {
	clk clock.Clock
	cfg Config

	mu      sync.Mutex
	members map[string]*memberEntry
	ring    *hashRing
	ops     map[string]*opEntry
	nextOp  int
	epochs  uint64
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// memberEntry is the front's view of one member: its lease, its last
// reported backlog, and the last replicated snapshot of every
// operation it owns (the failover state — a dead member cannot be
// exported from).
type memberEntry struct {
	m       Member
	state   MemberState
	epoch   uint64
	expires time.Time
	pending int
	snaps   map[string]*core.SessionSnapshot
}

// opEntry tracks one routed operation: its current owner, its handoff
// epoch (bumped on every move, stamped into restored snapshots), and
// the original request for snapshot-less re-registration.
type opEntry struct {
	owner string
	epoch uint64
	req   WatchRequest
}

// NewFront builds a front on the given (injected) clock. Call Start to
// run the lease monitor.
func NewFront(clk clock.Clock, cfg Config) *Front {
	if clk == nil {
		clk = clock.NewReal()
	}
	cfg = cfg.withDefaults()
	return &Front{
		clk:     clk,
		cfg:     cfg,
		members: make(map[string]*memberEntry),
		ring:    newRing(cfg.VirtualNodes),
		ops:     make(map[string]*opEntry),
		stop:    make(chan struct{}),
	}
}

// Config returns the front's effective (defaulted) configuration.
func (f *Front) Config() Config { return f.cfg }

// Start runs the lease monitor until Stop.
func (f *Front) Start() {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		ticker := clock.NewTicker(f.clk, f.cfg.CheckInterval)
		defer ticker.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-ticker.C:
				f.Tick(context.Background())
			}
		}
	}()
}

// Stop halts the lease monitor. Idempotent.
func (f *Front) Stop() {
	f.mu.Lock()
	if !f.stopped {
		f.stopped = true
		close(f.stop)
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// Join admits (or re-admits) a member under a fresh, strictly
// increasing epoch, adds it to the ring, and pulls up to
// MaxRebalanceMoves operations it now owns off their current members
// via graceful export → restore → remove handoffs. Returns the epoch
// the member must renew with.
func (f *Front) Join(m Member) (uint64, error) {
	if m == nil || m.ID() == "" {
		return 0, fmt.Errorf("federate: member with empty id")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.epochs++
	epoch := f.epochs
	e := f.members[m.ID()]
	if e == nil {
		e = &memberEntry{}
		f.members[m.ID()] = e
	} else if e.state != StateDead {
		// A live member re-joining (e.g. after a stale renewal) resets
		// its lease; its old epoch is dead either way.
		mFedTransitions.With(string(StateHealthy)).Inc()
	}
	prevSnaps := e.snaps
	e.m = m
	e.epoch = epoch
	e.state = StateHealthy
	e.expires = f.clk.Now().Add(f.cfg.LeaseTTL)
	e.pending = 0
	e.snaps = make(map[string]*core.SessionSnapshot)
	f.ring.add(m.ID())
	f.rebalanceLocked(context.Background(), m.ID(), prevSnaps)
	f.gaugesLocked()
	return epoch, nil
}

// Renew extends a member's lease and stores its piggybacked snapshots.
// A renewal under a stale epoch — or from a member already declared
// dead — is refused: the split-brain guard. The refused member learns
// which operations it must drop and has to re-join for a fresh epoch.
func (f *Front) Renew(memberID string, epoch uint64, r Renewal) RenewResult {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := f.members[memberID]
	if e == nil || e.state == StateDead || e.epoch != epoch {
		mFedRenewals.With("stale").Inc()
		return RenewResult{Stale: true, DropOps: f.foreignOpsLocked(memberID)}
	}
	if e.state == StateSuspect {
		e.state = StateHealthy
		mFedTransitions.With(string(StateHealthy)).Inc()
	}
	e.expires = f.clk.Now().Add(f.cfg.LeaseTTL)
	e.pending = r.Pending
	for _, snap := range r.Snapshots {
		if snap == nil || snap.ID == "" {
			continue
		}
		// Replicate only operations this member actually owns: a stale
		// snapshot of a failed-over operation must not shadow the
		// survivor's state.
		if op := f.ops[snap.ID]; op != nil && op.owner == memberID {
			e.snaps[snap.ID] = snap
		}
	}
	mFedRenewals.With("ok").Inc()
	f.gaugesLocked()
	return RenewResult{Expires: e.expires}
}

// Watch places a new operation on the ring and registers it with the
// chosen member. An empty id is assigned ("fed-op-N"). Returns the
// session summary and the owning member's id.
func (f *Front) Watch(ctx context.Context, req WatchRequest) (core.SessionSummary, string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if req.ID == "" {
		f.nextOp++
		req.ID = fmt.Sprintf("fed-op-%d", f.nextOp)
	}
	if _, dup := f.ops[req.ID]; dup {
		return core.SessionSummary{}, "", fmt.Errorf("federate: operation %q already registered", req.ID)
	}
	owner := f.placeLocked(req.ID)
	if owner == "" {
		return core.SessionSummary{}, "", fmt.Errorf("federate: no healthy members")
	}
	sum, err := f.members[owner].m.Watch(ctx, req)
	if err != nil {
		return core.SessionSummary{}, "", fmt.Errorf("federate: member %s: %w", owner, err)
	}
	f.ops[req.ID] = &opEntry{owner: owner, epoch: 1, req: req}
	f.gaugesLocked()
	return sum, owner, nil
}

// Route resolves the member currently owning an operation.
func (f *Front) Route(opID string) (Member, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.ops[opID]
	if op == nil {
		return nil, false
	}
	e := f.members[op.owner]
	if e == nil {
		return nil, false
	}
	return e.m, true
}

// Remove unregisters an operation from the federation and deletes its
// session from the owning member.
func (f *Front) Remove(ctx context.Context, opID string) error {
	f.mu.Lock()
	op := f.ops[opID]
	if op == nil {
		f.mu.Unlock()
		return fmt.Errorf("federate: no such operation: %s", opID)
	}
	var m Member
	if e := f.members[op.owner]; e != nil {
		m = e.m
		delete(e.snaps, opID)
	}
	delete(f.ops, opID)
	f.gaugesLocked()
	f.mu.Unlock()
	if m != nil {
		return m.Remove(ctx, opID)
	}
	return nil
}

// Owner reports an operation's owning member id and handoff epoch.
func (f *Front) Owner(opID string) (string, uint64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := f.ops[opID]
	if op == nil {
		return "", 0, false
	}
	return op.owner, op.epoch, true
}

// Members lists the membership, sorted by id.
func (f *Front) Members() []MemberInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	owned := make(map[string]int, len(f.members))
	for _, op := range f.ops {
		owned[op.owner]++
	}
	out := make([]MemberInfo, 0, len(f.members))
	for id, e := range f.members {
		out = append(out, MemberInfo{
			ID: id, State: e.state, Epoch: e.epoch,
			Expires: e.expires, Pending: e.pending, Operations: owned[id],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Operations aggregates the routed operations' summaries from their
// owners, sorted by operation id. Owners that fail to answer are
// skipped.
func (f *Front) Operations(ctx context.Context) []core.SessionSummary {
	type probe struct {
		id string
		m  Member
	}
	f.mu.Lock()
	probes := make([]probe, 0, len(f.ops))
	for id, op := range f.ops {
		if e := f.members[op.owner]; e != nil {
			probes = append(probes, probe{id, e.m})
		}
	}
	f.mu.Unlock()
	sort.Slice(probes, func(i, j int) bool { return probes[i].id < probes[j].id })
	out := make([]core.SessionSummary, 0, len(probes))
	for _, p := range probes {
		if sum, err := p.m.Operation(ctx, p.id); err == nil {
			out = append(out, sum)
		}
	}
	return out
}

// Tick advances the lease state machine once: expired leases turn
// suspect, suspects past the grace window turn dead and their
// operations fail over. Start calls it on the monitor cadence; tests
// call it directly for determinism.
func (f *Front) Tick(ctx context.Context) {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.clk.Now()
	ids := make([]string, 0, len(f.members))
	for id := range f.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := f.members[id]
		if e.state == StateHealthy && !now.Before(e.expires) {
			e.state = StateSuspect
			mFedTransitions.With(string(StateSuspect)).Inc()
		}
		if e.state == StateSuspect && !now.Before(e.expires.Add(f.cfg.DeadAfter)) {
			e.state = StateDead
			mFedTransitions.With(string(StateDead)).Inc()
			f.ring.remove(id)
			f.failoverLocked(ctx, id)
		}
	}
	f.gaugesLocked()
}

// failoverLocked re-homes every operation of a dead member onto ring
// survivors, restoring each from its last replicated snapshot (or
// re-registering from the original request when none was replicated
// yet). Each move bumps the operation's handoff epoch — the stamp that
// makes the dead member's state unreinstatable.
func (f *Front) failoverLocked(ctx context.Context, deadID string) {
	dead := f.members[deadID]
	opIDs := make([]string, 0)
	for id, op := range f.ops {
		if op.owner == deadID {
			opIDs = append(opIDs, id)
		}
	}
	sort.Strings(opIDs)
	for _, opID := range opIDs {
		op := f.ops[opID]
		target := f.placeLocked(opID)
		if target == "" {
			continue // no survivors; a future join rebalances the orphan
		}
		tm := f.members[target].m
		newEpoch := op.epoch + 1
		var err error
		if snap := dead.snaps[opID]; snap != nil {
			snap.FromMember = deadID
			snap.HandoffEpoch = newEpoch
			err = tm.Restore(ctx, snap)
		} else {
			_, err = tm.Watch(ctx, op.req)
		}
		if err != nil {
			continue
		}
		op.owner = target
		op.epoch = newEpoch
		delete(dead.snaps, opID)
		mFedHandoffs.With("member-dead").Inc()
	}
}

// rebalanceLocked moves up to MaxRebalanceMoves operations whose ring
// owner became newID off their current (healthy) members, gracefully:
// live export → restore → remove. Operations orphaned on dead (or the
// re-joining member's own previous) incarnations move too, restored
// from the last replicated snapshot — prevSnaps is the joiner's
// snapshot cache from before this join, so a dead member coming back
// reclaims its own operations onto its fresh Manager.
func (f *Front) rebalanceLocked(ctx context.Context, newID string, prevSnaps map[string]*core.SessionSnapshot) {
	opIDs := make([]string, 0, len(f.ops))
	for id := range f.ops {
		opIDs = append(opIDs, id)
	}
	sort.Strings(opIDs)
	moves := 0
	newM := f.members[newID].m
	for _, opID := range opIDs {
		if moves >= f.cfg.MaxRebalanceMoves {
			break
		}
		op := f.ops[opID]
		var snap *core.SessionSnapshot
		var err error
		reclaim := op.owner == newID
		oldE := f.members[op.owner]
		orphaned := oldE == nil || oldE.state == StateDead
		switch {
		case reclaim:
			// The joiner's fresh Manager does not hold its previous
			// incarnation's sessions; re-adopt them from the snapshots
			// that incarnation replicated. A live re-join (stale-epoch
			// recovery) still owns its sessions, so Restore fails on the
			// duplicate and the operation is left untouched.
			snap = prevSnaps[opID]
		case orphaned:
			if oldE != nil {
				snap = oldE.snaps[opID]
			}
		case f.ring.owner(opID) == newID:
			snap, err = oldE.m.Export(ctx, opID)
			if err != nil {
				snap = oldE.snaps[opID]
			}
		default:
			continue
		}
		newEpoch := op.epoch + 1
		if snap != nil {
			snap.FromMember = op.owner
			snap.HandoffEpoch = newEpoch
			err = newM.Restore(ctx, snap)
		} else {
			_, err = newM.Watch(ctx, op.req)
		}
		if err != nil {
			continue
		}
		if !orphaned && !reclaim {
			_ = oldE.m.Remove(ctx, opID)
		}
		if oldE != nil {
			delete(oldE.snaps, opID)
		}
		op.owner = newID
		op.epoch = newEpoch
		moves++
		mFedHandoffs.With("rebalance").Inc()
	}
}

// placeLocked walks the ring preference sequence for a key: the first
// healthy member under the shed threshold wins; if every healthy
// member is overloaded, the first healthy one takes it anyway (shed
// diverts load, it never drops an operation).
func (f *Front) placeLocked(key string) string {
	var fallback string
	for _, id := range f.ring.sequence(key) {
		e := f.members[id]
		if e == nil || e.state != StateHealthy {
			continue
		}
		if f.cfg.ShedPending > 0 && e.pending > f.cfg.ShedPending {
			if fallback == "" {
				fallback = id
			}
			mFedShed.Inc()
			continue
		}
		return id
	}
	return fallback
}

// foreignOpsLocked lists the operations the given member does NOT own
// — the drop list handed to a stale renewer.
func (f *Front) foreignOpsLocked(memberID string) []string {
	out := make([]string, 0, len(f.ops))
	for id, op := range f.ops {
		if op.owner != memberID {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func (f *Front) gaugesLocked() {
	counts := map[MemberState]int{}
	for _, e := range f.members {
		counts[e.state]++
	}
	for _, st := range []MemberState{StateHealthy, StateSuspect, StateDead} {
		mFedMembers.With(string(st)).Set(float64(counts[st]))
	}
	mFedOps.Set(float64(len(f.ops)))
}
