package federate

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/core"
	"poddiagnosis/internal/obs/flight"
)

// manualClock is a hand-advanced clock for deterministic lease tests.
// Front tests drive Tick directly, so only Now/Since matter.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func (c *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.Now()
	return ch
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// fakeMember is an in-memory Member for front unit tests: it records
// what the front asked it to do.
type fakeMember struct {
	id string

	mu       sync.Mutex
	watched  map[string]WatchRequest
	restored map[string]*core.SessionSnapshot
	removed  []string
	exports  map[string]*core.SessionSnapshot
}

func newFakeMember(id string) *fakeMember {
	return &fakeMember{
		id:       id,
		watched:  make(map[string]WatchRequest),
		restored: make(map[string]*core.SessionSnapshot),
		exports:  make(map[string]*core.SessionSnapshot),
	}
}

func (m *fakeMember) ID() string { return m.id }

func (m *fakeMember) Watch(_ context.Context, req WatchRequest) (core.SessionSummary, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.watched[req.ID]; dup {
		return core.SessionSummary{}, fmt.Errorf("duplicate operation %q", req.ID)
	}
	m.watched[req.ID] = req
	return core.SessionSummary{ID: req.ID, State: core.SessionActive}, nil
}

func (m *fakeMember) Export(_ context.Context, opID string) (*core.SessionSnapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if snap := m.exports[opID]; snap != nil {
		return snap, nil
	}
	return nil, fmt.Errorf("no export for %q", opID)
}

func (m *fakeMember) Restore(_ context.Context, snap *core.SessionSnapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.restored[snap.ID]; dup {
		return fmt.Errorf("duplicate operation %q", snap.ID)
	}
	if _, dup := m.watched[snap.ID]; dup {
		return fmt.Errorf("duplicate operation %q", snap.ID)
	}
	m.restored[snap.ID] = snap
	return nil
}

func (m *fakeMember) Remove(_ context.Context, opID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removed = append(m.removed, opID)
	delete(m.watched, opID)
	delete(m.restored, opID)
	return nil
}

func (m *fakeMember) Operation(_ context.Context, opID string) (core.SessionSummary, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.watched[opID]; ok {
		return core.SessionSummary{ID: opID, State: core.SessionActive}, nil
	}
	if _, ok := m.restored[opID]; ok {
		return core.SessionSummary{ID: opID, State: core.SessionActive}, nil
	}
	return core.SessionSummary{}, fmt.Errorf("no operation %q", opID)
}

func (m *fakeMember) Detections(_ context.Context, opID string) ([]core.Detection, error) {
	return nil, nil
}

func (m *fakeMember) Timeline(_ context.Context, opID string) (flight.Timeline, error) {
	return flight.Timeline{Operation: opID}, nil
}

func (m *fakeMember) holds(opID string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, w := m.watched[opID]
	_, r := m.restored[opID]
	return w || r
}

func memberState(t *testing.T, f *Front, id string) MemberState {
	t.Helper()
	for _, info := range f.Members() {
		if info.ID == id {
			return info.State
		}
	}
	t.Fatalf("member %s not listed", id)
	return ""
}

// watchOwnedBy registers operations until one lands on the wanted
// member (the ring is deterministic, so this terminates fast).
func watchOwnedBy(t *testing.T, f *Front, want string) string {
	t.Helper()
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("seek-%s-%d", want, i)
		_, owner, err := f.Watch(context.Background(), WatchRequest{ID: id})
		if err != nil {
			t.Fatal(err)
		}
		if owner == want {
			return id
		}
	}
	t.Fatalf("no key landed on member %s in 200 tries", want)
	return ""
}

// TestLeaseTransitions: healthy → suspect at lease expiry, back to
// healthy on renewal, suspect → dead after the grace window.
func TestLeaseTransitions(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second})
	m1, m2 := newFakeMember("m1"), newFakeMember("m2")
	e1, err := f.Join(m1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join(m2); err != nil {
		t.Fatal(err)
	}

	clk.Advance(10 * time.Second)
	f.Tick(context.Background())
	if got := memberState(t, f, "m1"); got != StateSuspect {
		t.Fatalf("m1 after expiry: %s, want suspect", got)
	}

	if res := f.Renew("m1", e1, Renewal{}); res.Stale {
		t.Fatalf("renewal of suspect m1 with current epoch refused")
	}
	if got := memberState(t, f, "m1"); got != StateHealthy {
		t.Fatalf("m1 after renewal: %s, want healthy", got)
	}

	clk.Advance(10 * time.Second) // m1 expires again; m2 reaches expiry+grace
	f.Tick(context.Background())
	if got := memberState(t, f, "m1"); got != StateSuspect {
		t.Fatalf("m1: %s, want suspect", got)
	}
	if got := memberState(t, f, "m2"); got != StateDead {
		t.Fatalf("m2 after grace window: %s, want dead", got)
	}
}

// TestStaleEpochRejected is the split-brain guard: a member declared
// dead (e.g. it was partitioned) cannot renew under its old epoch, is
// told which operations to drop, and re-joins under a strictly newer
// epoch.
func TestStaleEpochRejected(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second})
	m1, m2 := newFakeMember("m1"), newFakeMember("m2")
	e1, _ := f.Join(m1)
	e2, _ := f.Join(m2)
	opID := watchOwnedBy(t, f, "m1")

	// m2 keeps renewing; m1 goes silent until declared dead.
	clk.Advance(10 * time.Second)
	f.Renew("m2", e2, Renewal{})
	f.Tick(context.Background())
	clk.Advance(10 * time.Second)
	f.Renew("m2", e2, Renewal{})
	f.Tick(context.Background())
	if got := memberState(t, f, "m1"); got != StateDead {
		t.Fatalf("m1: %s, want dead", got)
	}
	if owner, epoch, ok := f.Owner(opID); !ok || owner != "m2" || epoch != 2 {
		t.Fatalf("operation %s: owner=%s epoch=%d ok=%v, want failover to m2 at epoch 2", opID, owner, epoch, ok)
	}

	// The partition heals; m1's renewal under the old epoch must be
	// refused and must name the operation it no longer owns.
	res := f.Renew("m1", e1, Renewal{})
	if !res.Stale {
		t.Fatalf("dead m1 renewed under old epoch %d; split-brain guard failed", e1)
	}
	drops := map[string]bool{}
	for _, id := range res.DropOps {
		drops[id] = true
	}
	if !drops[opID] {
		t.Fatalf("DropOps %v does not list failed-over operation %s", res.DropOps, opID)
	}

	e1b, err := f.Join(m1)
	if err != nil {
		t.Fatal(err)
	}
	if e1b <= e2 {
		t.Fatalf("re-join epoch %d not newer than every prior epoch (%d, %d)", e1b, e1, e2)
	}
	if res := f.Renew("m1", e1b, Renewal{}); res.Stale {
		t.Fatalf("renewal under fresh epoch refused")
	}
}

// TestDeathFailoverRestoresSnapshot: a dead member's operation is
// restored onto a survivor from the last heartbeat-replicated
// snapshot, stamped with the source member and a bumped handoff epoch.
func TestDeathFailoverRestoresSnapshot(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second})
	m1, m2 := newFakeMember("m1"), newFakeMember("m2")
	e1, _ := f.Join(m1)
	e2, _ := f.Join(m2)
	opID := watchOwnedBy(t, f, "m1")

	snap := &core.SessionSnapshot{ID: opID, Detections: []core.Detection{{TriggerID: "keypair-changed"}}}
	f.Renew("m1", e1, Renewal{Snapshots: []*core.SessionSnapshot{snap}})

	clk.Advance(20 * time.Second)
	f.Renew("m2", e2, Renewal{})
	f.Tick(context.Background())
	f.Tick(context.Background())
	if got := memberState(t, f, "m1"); got != StateDead {
		t.Fatalf("m1: %s, want dead", got)
	}

	m2.mu.Lock()
	adopted := m2.restored[opID]
	m2.mu.Unlock()
	if adopted == nil {
		t.Fatalf("survivor did not adopt %s via Restore", opID)
	}
	if adopted.FromMember != "m1" || adopted.HandoffEpoch != 2 {
		t.Fatalf("adopted snapshot stamped from=%q epoch=%d, want m1/2", adopted.FromMember, adopted.HandoffEpoch)
	}
	if len(adopted.Detections) != 1 {
		t.Fatalf("snapshot state lost in failover: %+v", adopted)
	}
	if m, ok := f.Route(opID); !ok || m.ID() != "m2" {
		t.Fatalf("Route(%s) does not resolve to the survivor", opID)
	}
}

// TestJoinRebalanceBounded: a join pulls over only operations the new
// member now owns on the ring, gracefully (export → restore → remove),
// and never more than MaxRebalanceMoves.
func TestJoinRebalanceBounded(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second, MaxRebalanceMoves: 2})
	m1 := newFakeMember("m1")
	if _, err := f.Join(m1); err != nil {
		t.Fatal(err)
	}
	var ops []string
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("rb-op-%d", i)
		if _, _, err := f.Watch(context.Background(), WatchRequest{ID: id}); err != nil {
			t.Fatal(err)
		}
		m1.mu.Lock()
		m1.exports[id] = &core.SessionSnapshot{ID: id}
		m1.mu.Unlock()
		ops = append(ops, id)
	}

	m2 := newFakeMember("m2")
	if _, err := f.Join(m2); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, id := range ops {
		owner, _, _ := f.Owner(id)
		switch owner {
		case "m2":
			moved++
			if !m2.holds(id) {
				t.Errorf("front says m2 owns %s but m2 never adopted it", id)
			}
			if m1.holds(id) {
				t.Errorf("%s moved to m2 but was not removed from m1", id)
			}
		case "m1":
			if !m1.holds(id) {
				t.Errorf("front says m1 owns %s but m1 does not hold it", id)
			}
		default:
			t.Errorf("operation %s owned by unknown member %q", id, owner)
		}
	}
	if moved == 0 {
		t.Fatalf("join rebalanced nothing; expected up to 2 moves")
	}
	if moved > 2 {
		t.Fatalf("join moved %d operations, exceeding MaxRebalanceMoves=2", moved)
	}
}

// TestRejoinReclaimsOrphans: when every member is dead, operations
// orphan; the first re-join adopts them from the replicated snapshots.
func TestRejoinReclaimsOrphans(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second})
	m1 := newFakeMember("m1")
	e1, _ := f.Join(m1)
	_, _, err := f.Watch(context.Background(), WatchRequest{ID: "solo-op"})
	if err != nil {
		t.Fatal(err)
	}
	f.Renew("m1", e1, Renewal{Snapshots: []*core.SessionSnapshot{{ID: "solo-op"}}})

	clk.Advance(25 * time.Second)
	f.Tick(context.Background())
	if got := memberState(t, f, "m1"); got != StateDead {
		t.Fatalf("m1: %s, want dead", got)
	}

	// The crashed member restarts with an empty Manager and re-joins.
	m1b := newFakeMember("m1")
	if _, err := f.Join(m1b); err != nil {
		t.Fatal(err)
	}
	if !m1b.holds("solo-op") {
		t.Fatalf("re-joined member did not reclaim its orphaned operation from the replicated snapshot")
	}
	if owner, epoch, _ := f.Owner("solo-op"); owner != "m1" || epoch != 2 {
		t.Fatalf("solo-op owner=%s epoch=%d, want m1/2", owner, epoch)
	}
}

// TestOverloadShedding: a member reporting backlog above ShedPending is
// skipped at placement time in favour of the next ring successor, but
// still used when it is the only healthy member — shed diverts, never
// drops.
func TestOverloadShedding(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second, ShedPending: 5})
	m1, m2 := newFakeMember("m1"), newFakeMember("m2")
	e1, _ := f.Join(m1)
	e2, _ := f.Join(m2)
	f.Renew("m1", e1, Renewal{Pending: 50})
	f.Renew("m2", e2, Renewal{Pending: 0})

	for i := 0; i < 40; i++ {
		_, owner, err := f.Watch(context.Background(), WatchRequest{ID: fmt.Sprintf("shed-op-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if owner == "m1" {
			t.Fatalf("overloaded m1 received placement shed-op-%d", i)
		}
	}

	// Both overloaded: placement must still succeed (fallback).
	f.Renew("m2", e2, Renewal{Pending: 50})
	if _, owner, err := f.Watch(context.Background(), WatchRequest{ID: "shed-fallback"}); err != nil || owner == "" {
		t.Fatalf("placement with every member overloaded failed: owner=%q err=%v", owner, err)
	}
}

// TestSuspectGetsNoPlacements: new operations avoid suspect members.
func TestSuspectGetsNoPlacements(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second})
	m1, m2 := newFakeMember("m1"), newFakeMember("m2")
	_, _ = f.Join(m1)
	e2, _ := f.Join(m2)
	clk.Advance(10 * time.Second)
	f.Renew("m2", e2, Renewal{})
	f.Tick(context.Background())
	if got := memberState(t, f, "m1"); got != StateSuspect {
		t.Fatalf("m1: %s, want suspect", got)
	}
	for i := 0; i < 20; i++ {
		_, owner, err := f.Watch(context.Background(), WatchRequest{ID: fmt.Sprintf("sus-op-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if owner != "m2" {
			t.Fatalf("placement landed on %s while m1 is suspect", owner)
		}
	}
}

// TestRenewIgnoresForeignSnapshots: a renewal must not replicate
// snapshots for operations the renewing member does not own (a stale
// holder must not shadow the survivor's state).
func TestRenewIgnoresForeignSnapshots(t *testing.T) {
	clk := newManualClock()
	f := NewFront(clk, Config{LeaseTTL: 10 * time.Second})
	m1, m2 := newFakeMember("m1"), newFakeMember("m2")
	e1, _ := f.Join(m1)
	e2, _ := f.Join(m2)
	opID := watchOwnedBy(t, f, "m1")

	// m2 claims a snapshot of m1's operation; the front must drop it.
	f.Renew("m2", e2, Renewal{Snapshots: []*core.SessionSnapshot{{ID: opID, FromMember: "bogus"}}})
	// Let m1 die without ever replicating a snapshot: the failover path
	// must fall back to re-registration, not restore m2's bogus copy.
	clk.Advance(20 * time.Second)
	f.Renew("m2", e2, Renewal{})
	f.Tick(context.Background())
	f.Tick(context.Background())
	_ = e1
	m2.mu.Lock()
	_, restoredBogus := m2.restored[opID]
	_, rewatched := m2.watched[opID]
	m2.mu.Unlock()
	if restoredBogus {
		t.Fatalf("failover restored a snapshot replicated by a non-owner")
	}
	if !rewatched {
		t.Fatalf("failover without a replicated snapshot did not re-register the operation")
	}
}
