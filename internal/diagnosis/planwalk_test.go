package diagnosis

import (
	"context"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/simaws"
)

// newPlanEngine builds an engine directly over a plan catalog with
// synthetic checks. The cloud profile carries a non-zero consistency
// window so the shared cache performs cross-run reuse.
func newPlanEngine(t *testing.T, opts Options, cat *diagplan.Catalog, checks ...assertion.Check) *Engine {
	t.Helper()
	clk := clock.NewScaled(1000, time.Date(2013, 11, 19, 11, 48, 0, 0, time.UTC))
	profile := simaws.FastProfile()
	profile.StaleProb = 0.05
	profile.StaleLag = clock.Fixed(10 * time.Second)
	cloud := simaws.New(clk, profile, simaws.WithSeed(7))
	client := consistentapi.New(cloud, consistentapi.Config{MaxAttempts: 1, CallTimeout: time.Second})
	reg := assertion.NewRegistry()
	for _, c := range checks {
		reg.Register(c)
	}
	if err := cat.Validate(reg); err != nil {
		t.Fatal(err)
	}
	return NewEngine(cat, assertion.NewEvaluator(client, reg, nil), nil, opts)
}

// statusCheck returns a check answering with a fixed status.
func statusCheck(id string, status assertion.Status) assertion.Check {
	return assertion.Check{ID: id, Description: id, Eval: func(ctx context.Context, _ *consistentapi.Client, p assertion.Params) assertion.Result {
		return assertion.Result{CheckID: id, Status: status, Params: p, Message: "synthetic " + id}
	}}
}

// fanInCatalog builds a native DAG plan: entry -> branch-a (0.6), branch-b
// (0.4); shared-cause fans in under both; own-cause only under branch-b.
func fanInCatalog(t *testing.T, aCheck, bCheck string) *diagplan.Catalog {
	t.Helper()
	p := &diagplan.Plan{
		ID: "plan-fanin", AssertionID: "fanin-assert", Entry: "entry",
		Nodes: []*diagplan.Node{
			{ID: "entry", Kind: diagplan.KindEntry, Description: "violated", Edges: []diagplan.Edge{
				{To: "branch-a", Prob: 0.6}, {To: "branch-b", Prob: 0.4},
			}},
			{ID: "branch-a", Kind: diagplan.KindCollector, Description: "branch a", CheckID: aCheck,
				Edges: []diagplan.Edge{{To: "shared-cause", Prob: 0.9}}},
			{ID: "branch-b", Kind: diagplan.KindCollector, Description: "branch b", CheckID: bCheck,
				Edges: []diagplan.Edge{{To: "shared-cause", Prob: 0.6}, {To: "own-cause", Prob: 0.3}}},
			{ID: "shared-cause", Kind: diagplan.KindCause, Description: "the shared fault", CheckID: "cause-check"},
			{ID: "own-cause", Kind: diagplan.KindCause, Description: "the b-only fault", CheckID: "own-check"},
		},
	}
	cat := diagplan.NewCatalog()
	cat.MustRegister(p)
	return cat
}

// A shared fan-in cause excluded through one passing parent must stay
// reachable — and confirmable — through its other parent.
func TestFanInCauseReachableAfterParentExclusion(t *testing.T) {
	cat := fanInCatalog(t, "a-check", "b-check")
	e := newPlanEngine(t, Options{}, cat,
		statusCheck("a-check", assertion.StatusPass), // branch-a excluded
		statusCheck("b-check", assertion.StatusFail), // branch-b descends
		statusCheck("cause-check", assertion.StatusFail),
		statusCheck("own-check", assertion.StatusPass),
	)
	d := e.Diagnose(context.Background(), Request{AssertionID: "fanin-assert", Source: SourceAssertion})
	if d.Conclusion != ConclusionIdentified {
		t.Fatalf("conclusion = %s (suspected %+v)", d.Conclusion, d.Suspected)
	}
	if !d.HasCause("shared-cause") {
		t.Fatalf("causes = %+v, want shared-cause via branch-b", d.RootCauses)
	}
	// branch-a's pass excluded shared-cause; confirming it anyway through
	// branch-b is the noisy-test case the DAG tolerates.
	if d.PotentialFaults != 2 {
		t.Fatalf("potential = %d, want 2 (shared cause counted once)", d.PotentialFaults)
	}
}

// Fan-in exclusions are deduplicated: two passing parents excluding the
// same shared cause count it once, so Excluded never exceeds
// PotentialFaults.
func TestFanInExclusionCountedOnce(t *testing.T) {
	cat := fanInCatalog(t, "a-check", "b-check")
	e := newPlanEngine(t, Options{ContinueAfterConfirm: true}, cat,
		statusCheck("a-check", assertion.StatusPass),
		statusCheck("b-check", assertion.StatusPass),
		statusCheck("cause-check", assertion.StatusFail),
		statusCheck("own-check", assertion.StatusFail),
	)
	d := e.Diagnose(context.Background(), Request{AssertionID: "fanin-assert", Source: SourceAssertion})
	if d.Conclusion != ConclusionNone {
		t.Fatalf("conclusion = %s", d.Conclusion)
	}
	if d.PotentialFaults != 2 || d.Excluded != 2 {
		t.Fatalf("potential/excluded = %d/%d, want 2/2 (shared cause deduped)", d.PotentialFaults, d.Excluded)
	}
}

// A shared node is visited (and its test charged) at most once per run
// even when both parents descend into it.
func TestFanInSharedNodeVisitedOnce(t *testing.T) {
	cat := fanInCatalog(t, "a-check", "b-check")
	e := newPlanEngine(t, Options{ContinueAfterConfirm: true}, cat,
		statusCheck("a-check", assertion.StatusFail), // both branches descend
		statusCheck("b-check", assertion.StatusFail),
		statusCheck("cause-check", assertion.StatusPass),
		statusCheck("own-check", assertion.StatusPass),
	)
	d := e.Diagnose(context.Background(), Request{AssertionID: "fanin-assert", Source: SourceAssertion})
	seen := 0
	for _, res := range d.TestsRun {
		if res.CheckID == "cause-check" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("cause-check ran %d times, want 1 (claimed on first visit)", seen)
	}
}

// Satellite: a confirmed fan-in cause's flight-recorder entry cites the
// full DAG confirmation context — the entry-to-node path and every
// fan-in parent.
func TestCauseEvidenceCarriesFanInParents(t *testing.T) {
	cat := fanInCatalog(t, "a-check", "b-check")
	e := newPlanEngine(t, Options{}, cat,
		statusCheck("a-check", assertion.StatusPass),
		statusCheck("b-check", assertion.StatusFail),
		statusCheck("cause-check", assertion.StatusFail),
		statusCheck("own-check", assertion.StatusPass),
	)
	rec := flight.NewRecorder(e.clk, 256)
	op := rec.Op("test-op")
	ctx := flight.NewContext(context.Background(), op)
	d := e.Diagnose(ctx, Request{AssertionID: "fanin-assert", Source: SourceAssertion})
	if !d.HasCause("shared-cause") {
		t.Fatalf("causes = %+v", d.RootCauses)
	}
	var causeEntry *flight.Entry
	tl := rec.Timeline("test-op", flight.KindCause)
	for i := range tl.Entries {
		if tl.Entries[i].Attrs["node"] == "shared-cause" {
			causeEntry = &tl.Entries[i]
		}
	}
	if causeEntry == nil {
		t.Fatal("no diagnosis.cause entry for shared-cause")
	}
	if got := causeEntry.Attrs["path"]; got != "plan-fanin:entry/branch-a/shared-cause" {
		t.Fatalf("path attr = %q", got)
	}
	if got := causeEntry.Attrs["parents"]; got != "branch-a,branch-b" {
		t.Fatalf("parents attr = %q, want both fan-in parents", got)
	}
	if len(causeEntry.Parents) == 0 {
		t.Fatal("cause entry not chained to diagnosis/test evidence")
	}
}

// Satellite: diagnosis-test cache keys derive from the canonicalized
// check id and params only — a tree-compiled plan and an equivalent
// native plan share SharedCache entries, so a second run through the
// other plan answers every test from cache.
func TestCompiledAndNativePlansShareCacheEntries(t *testing.T) {
	params := assertion.Params{"which": "x"}
	tree := &faulttree.Tree{
		ID: "tree-shape", AssertionID: "tree-assert",
		Root: &faulttree.Node{
			ID: "tree-top", Description: "top",
			Children: []*faulttree.Node{{
				ID: "tree-fault", Description: "the fault",
				CheckID: "shared-check", CheckParams: params.Clone(),
				RootCause: true, Prob: 0.5,
			}},
		},
	}
	compiled, err := tree.Compile()
	if err != nil {
		t.Fatal(err)
	}
	native := &diagplan.Plan{
		ID: "native-shape", AssertionID: "native-assert", Entry: "native-top",
		Nodes: []*diagplan.Node{
			{ID: "native-top", Kind: diagplan.KindEntry, Description: "top",
				Edges: []diagplan.Edge{{To: "native-fault", Prob: 0.5}}},
			{ID: "native-fault", Kind: diagplan.KindCause, Description: "the fault",
				CheckID: "shared-check", CheckParams: params.Clone()},
		},
	}
	cat := diagplan.NewCatalog()
	cat.MustRegister(compiled)
	cat.MustRegister(native)
	e := newPlanEngine(t, Options{ContinueAfterConfirm: true}, cat,
		statusCheck("shared-check", assertion.StatusPass))
	if e.Cache() == nil || e.Cache().TTL() <= 0 {
		t.Fatal("test requires a shared cache with cross-run reuse")
	}

	ctx := context.Background()
	d1 := e.Diagnose(ctx, Request{AssertionID: "tree-assert", Source: SourceAssertion})
	if len(d1.TestsRun) != 1 || d1.TestsRun[0].Cached {
		t.Fatalf("first run: %+v", d1.TestsRun)
	}
	d2 := e.Diagnose(ctx, Request{AssertionID: "native-assert", Source: SourceAssertion})
	if len(d2.TestsRun) != 1 || !d2.TestsRun[0].Cached {
		t.Fatalf("second run should answer from the shared cache: %+v", d2.TestsRun)
	}
	stats := e.Cache().Stats()
	if stats.Evaluations != 1 || stats.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 evaluation + 1 hit", stats)
	}
}

// Compiled plans keep the old tree ids on the evidence path attribute.
func TestCompiledPlanEvidencePath(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	e.cloud.SetELBServiceDisruption(true)
	rec := flight.NewRecorder(e.engine.clk, 256)
	op := rec.Op("upgrade-op")
	ctx := flight.NewContext(e.ctx, op)
	d := e.engine.Diagnose(ctx, e.request("step5"))
	if !d.HasCause("elb-unreachable") {
		t.Skipf("elb-unreachable not confirmed (conclusion %s)", d.Conclusion)
	}
	tl := rec.Timeline("upgrade-op", flight.KindCause)
	found := false
	for _, en := range tl.Entries {
		if en.Attrs["node"] != "elb-unreachable" {
			continue
		}
		found = true
		path := en.Attrs["path"]
		if !strings.HasPrefix(path, "ft-") || !strings.Contains(path, ":") ||
			!strings.HasSuffix(path, "/elb-unreachable") {
			t.Fatalf("path attr = %q, want planID:entry/.../elb-unreachable", path)
		}
	}
	if !found {
		t.Fatal("no cause entry recorded")
	}
}
