// Package diagnosis implements the paper's Error Diagnosis component
// (§III.B.4): when an assertion fails, a process non-conformance is
// detected, or another monitor reports a failure, the engine selects the
// diagnosis plan(s) for the triggering assertion, instantiates their
// variables from the runtime request, prunes nodes that do not match the
// process context, and visits the remaining DAG entry-down, running
// on-demand diagnosis tests (assertion evaluations) to confirm or exclude
// potential faults. Plans generalize the paper's fault trees: collector
// nodes may feed several tester sub-graphs and shared sub-graphs fan in
// from several parents, each visited at most once per run. Test results
// are cached and reused across nodes — and, through a shared single-
// flight cache bounded by the simulated cloud's eventual-consistency
// window, across concurrent runs; sibling visits are ordered by per-edge
// prior fault probability and may proceed in parallel on a bounded worker
// pool while committing results in that same order.
package diagnosis

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/resilience"
)

// Diagnosis metrics. Walk duration is wall-clock (the Diagnosis result
// carries the simulated-clock duration the paper's §V measures).
var (
	mWalks = obs.Default.CounterVec("pod_diagnosis_walks_total",
		"Diagnosis plan runs by conclusion.", "conclusion")
	mWalkDuration = obs.Default.Histogram("pod_diagnosis_walk_seconds",
		"Wall-clock duration of one diagnosis plan run.", nil)
	mTests = obs.Default.Counter("pod_diagnosis_tests_total",
		"On-demand diagnosis tests executed.")
	mCacheHits = obs.Default.Counter("pod_diagnosis_cache_hits_total",
		"Diagnosis tests answered from the per-run result cache.")
	mCausesFound = obs.Default.Counter("pod_diagnosis_causes_found_total",
		"Confirmed root causes across all diagnosis runs.")
	mInflight = obs.Default.Gauge("pod_diagnosis_inflight",
		"Diagnosis walks currently in flight.")
	mBudgetExhausted = obs.Default.Counter("pod_diagnosis_budget_exhausted_total",
		"Diagnosis tests refused because the per-run MaxTests budget was spent.")
)

// ErrBudgetExhausted is the sentinel carried (as text, in Result.Err) by
// the StatusError results the engine synthesizes when a run's MaxTests
// budget is spent. Use IsBudgetExhausted to distinguish these from
// genuine test errors.
var ErrBudgetExhausted = errors.New("diagnosis: test budget exhausted")

// IsBudgetExhausted reports whether res is a synthetic budget-exhausted
// result rather than a genuine test error.
func IsBudgetExhausted(res assertion.Result) bool {
	return res.Status == assertion.StatusError && res.Err == ErrBudgetExhausted.Error()
}

// budgetExhaustedResult synthesizes the StatusError result returned for
// tests refused by the budget.
func budgetExhaustedResult(checkID string, params assertion.Params) assertion.Result {
	return assertion.Result{
		CheckID: checkID, Status: assertion.StatusError,
		Message: "diagnosis test budget exhausted", Params: params,
		Err: ErrBudgetExhausted.Error(),
	}
}

// ErrResultUnknown is the sentinel carried (as text, in Result.Err) by the
// StatusError results synthesized when a diagnosis test's circuit breaker
// is open: the test was not attempted, its answer is unknown, and the
// plan walk continues past it (sink → suspected, interior → descended)
// exactly like any other inconclusive test.
var ErrResultUnknown = errors.New("diagnosis: test result unknown (circuit open)")

// IsUnknown reports whether res is a synthetic breaker-open "result
// unknown" rather than a genuine test error.
func IsUnknown(res assertion.Result) bool {
	return res.Status == assertion.StatusError && res.Err == ErrResultUnknown.Error()
}

// unknownResult synthesizes the StatusError result for a short-circuited
// test.
func unknownResult(checkID string, params assertion.Params) assertion.Result {
	return assertion.Result{
		CheckID: checkID, Status: assertion.StatusError,
		Message: "diagnosis test skipped: circuit breaker open", Params: params,
		Err: ErrResultUnknown.Error(),
	}
}

// Source identifies what triggered a diagnosis.
type Source string

// Diagnosis trigger sources.
const (
	SourceAssertion   Source = "assertion"
	SourceConformance Source = "conformance"
	SourceMonitor     Source = "monitor"
	SourceTimer       Source = "timer"
)

// Request describes one diagnosis trigger.
type Request struct {
	// AssertionID is the failing assertion that selects the diagnosis
	// plans. Empty (e.g. for conformance-triggered diagnoses) means every
	// plan is consulted, relying on step-context pruning to narrow the
	// search.
	AssertionID string `json:"assertionId,omitempty"`
	// Source is the trigger kind.
	Source Source `json:"source"`
	// ProcessInstanceID is the operation task.
	ProcessInstanceID string `json:"processInstanceId,omitempty"`
	// StepID is the process-context step used for pruning. Empty for
	// purely timer-based triggers (which the paper notes produce weaker
	// diagnoses, §VI.A).
	StepID string `json:"stepId,omitempty"`
	// Params are the runtime request variables used to instantiate the
	// plans and parameterize diagnosis tests.
	Params assertion.Params `json:"params"`
	// Detail is free-form context (e.g. the failing assertion message).
	Detail string `json:"detail,omitempty"`
	// Degraded marks a trigger raised while the session's log stream was
	// known lossy (a sequence gap within the degraded hold window). The
	// resulting Diagnosis echoes the flag and discounts its confidence.
	Degraded bool `json:"degraded,omitempty"`
}

// Cause is one diagnosed root cause.
type Cause struct {
	// NodeID is the diagnosis-plan node.
	NodeID string `json:"nodeId"`
	// Description is the instantiated fault description.
	Description string `json:"description"`
	// Confirmed reports whether a diagnosis test confirmed the fault;
	// false means the fault is suspected but untestable or the test was
	// inconclusive.
	Confirmed bool `json:"confirmed"`
	// Path is the plan-qualified DAG path that reached this cause
	// ("planID:entry/…/node"), as cited by the evidence entry. Consumers
	// (remediation's audit trail) repeat it verbatim.
	Path string `json:"path,omitempty"`
	// EvidenceID is the flight-recorder entry recording this cause
	// (0 when the recorder is disabled).
	EvidenceID uint64 `json:"evidenceId,omitempty"`
}

// Conclusion classifies the outcome of a diagnosis.
type Conclusion string

// Diagnosis conclusions.
const (
	// ConclusionIdentified means at least one root cause was confirmed.
	ConclusionIdentified Conclusion = "root cause identified"
	// ConclusionSuspected means only unconfirmed suspects remain.
	ConclusionSuspected Conclusion = "possible root cause suspected"
	// ConclusionNone means every potential fault was excluded.
	ConclusionNone Conclusion = "no root cause identified"
)

// Diagnosis is the result of one engine run.
type Diagnosis struct {
	// Request echoes the trigger.
	Request Request `json:"request"`
	// RootCauses are the confirmed causes, in discovery order.
	RootCauses []Cause `json:"rootCauses"`
	// Suspected are unconfirmed candidate causes (untestable sinks under
	// confirmed errors, or inconclusive tests).
	Suspected []Cause `json:"suspected,omitempty"`
	// PotentialFaults is the number of root-cause candidates considered
	// after pruning.
	PotentialFaults int `json:"potentialFaults"`
	// Excluded is how many candidates were ruled out by passing tests.
	Excluded int `json:"excluded"`
	// TestsRun are the diagnosis test evaluations. Sequential walks
	// record them in visit order; parallel walks in execution order.
	TestsRun []assertion.Result `json:"testsRun"`
	// Conclusion classifies the outcome.
	Conclusion Conclusion `json:"conclusion"`
	// StartedAt and Duration bound the diagnosis in simulated time.
	StartedAt time.Time     `json:"startedAt"`
	Duration  time.Duration `json:"duration"`
	// Degraded echoes Request.Degraded: the triggering detection was made
	// on a known-lossy log stream.
	Degraded bool `json:"degraded,omitempty"`
	// Confidence discounts degraded diagnoses (0.5 vs the usual 1.0): a
	// gap in the stream means the trigger itself may be an artifact.
	Confidence float64 `json:"confidence"`
	// EvidenceID is the flight-recorder entry of this run's diagnosis
	// timeline record (0 when the caller carried no evidence ring in its
	// context): test executions and confirmed causes chain off it.
	EvidenceID uint64 `json:"evidenceId,omitempty"`
}

// HasCause reports whether nodeID (ignoring catalog id suffixes after the
// base name) is among the confirmed root causes.
func (d *Diagnosis) HasCause(baseID string) bool {
	for _, c := range d.RootCauses {
		if c.NodeID == baseID || strings.HasPrefix(c.NodeID, baseID+"-") {
			return true
		}
	}
	return false
}

// Options tune the engine; the zero value gives paper behaviour.
type Options struct {
	// DisablePruning skips process-context pruning (ablation A1).
	DisablePruning bool
	// ContinueAfterConfirm keeps visiting after the first confirmed root
	// cause instead of stopping like the paper's example run.
	ContinueAfterConfirm bool
	// MaxTests bounds the diagnosis tests per run. Zero means 64.
	MaxTests int
	// Workers bounds the goroutines one walk may fan out across
	// independent sibling sub-graphs. Zero or one keeps the sequential
	// paper walk. The committed Diagnosis is identical either way (see
	// walkInto); parallelism only trades speculative tests for latency.
	Workers int
	// SharedCacheTTL caps cross-run reuse of test results in the shared
	// cache. It is clamped to the simulated cloud's eventual-consistency
	// window (a cached answer must never be staler than one the cloud
	// itself might serve); zero means the full window.
	SharedCacheTTL time.Duration
	// DisableSharedCache turns off the cross-run shared cache; the
	// per-run cache always remains.
	DisableSharedCache bool
	// TestTimeout bounds each diagnosis-test attempt in clock time (the
	// deadline scales with a simulated clock). Zero means 30s.
	TestTimeout time.Duration
	// RunTimeout bounds a whole diagnosis walk in clock time. Zero means
	// unbounded.
	RunTimeout time.Duration
	// Resilience tunes the retry/breaker executor guarding every
	// diagnosis test (see package resilience).
	Resilience resilience.Options
}

// Engine runs diagnoses. It is safe for concurrent use: per-run state
// lives on the run, and the shared cross-run cache is concurrency-safe.
type Engine struct {
	cat   *diagplan.Catalog
	eval  *assertion.Evaluator
	bus   *logging.Bus // may be nil
	clk   clock.Clock
	opts  Options
	sem   chan struct{} // bounds extra walk goroutines; nil = sequential
	cache *SharedCache  // nil when disabled
	resil *resilience.Executor

	// testHookInstantiate, when set, observes every plan instantiation
	// (regression hook: each selected plan is instantiated exactly once
	// per run).
	testHookInstantiate func(planID string)
}

// NewEngine returns an Engine over the given diagnosis plan catalog and
// evaluator. Legacy fault trees reach here compiled into plans (see
// faulttree.Tree.Compile); the engine itself only walks plans.
func NewEngine(cat *diagplan.Catalog, eval *assertion.Evaluator, bus *logging.Bus, opts Options) *Engine {
	if opts.MaxTests <= 0 {
		opts.MaxTests = 64
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.TestTimeout <= 0 {
		opts.TestTimeout = 30 * time.Second
	}
	e := &Engine{cat: cat, eval: eval, bus: bus, clk: eval.Client().Clock(), opts: opts}
	e.resil = resilience.NewExecutor(e.clk, opts.Resilience)
	e.opts.Resilience = e.resil.Options()
	if opts.Workers > 1 {
		// The Diagnose goroutine itself always walks; the semaphore only
		// admits the extra fan-out goroutines. Sessions run Diagnose on
		// manager pool workers, so the walk must never block on pool
		// capacity — walkInto falls back to inline visits when full.
		e.sem = make(chan struct{}, opts.Workers-1)
	}
	if !opts.DisableSharedCache {
		window := eval.Client().Cloud().ConsistencyWindow()
		ttl := window
		if opts.SharedCacheTTL > 0 && opts.SharedCacheTTL < window {
			ttl = opts.SharedCacheTTL
		}
		e.opts.SharedCacheTTL = ttl
		e.cache = NewSharedCache(e.clk, ttl)
	}
	return e
}

// Options returns the engine's effective configuration (defaults applied,
// SharedCacheTTL clamped to the consistency window).
func (e *Engine) Options() Options { return e.opts }

// Cache returns the shared cross-run test cache, or nil when disabled.
func (e *Engine) Cache() *SharedCache { return e.cache }

// Resilience returns the retry/breaker executor guarding diagnosis tests.
func (e *Engine) Resilience() *resilience.Executor { return e.resil }

// Catalog returns the plan catalog the engine diagnoses from.
func (e *Engine) Catalog() *diagplan.Catalog { return e.cat }

// target is one (plan, node) visit unit: the walk needs the owning plan
// for edge ordering and cause enumeration.
type target struct {
	p *diagplan.Plan
	n *diagplan.Node
}

// run carries the mutable state of one diagnosis. It is shared across the
// walk goroutines of that one diagnosis: the budget is atomic, the
// per-run cache, claim set, and TestsRun are guarded by mu, and
// everything else is read-only after construction.
type run struct {
	req   Request
	diag  *Diagnosis
	latch bool // stop at first confirmation

	// op is the operation's evidence ring (nil-safe no-op when the
	// request carried none) and diagEntry the run's timeline record;
	// both are read-only after construction.
	op        *flight.Op
	diagEntry uint64
	// plans are the instantiated, pruned plans the walk visits, kept so
	// confirmed causes can cite their entry-to-node path and fan-in
	// parents.
	plans []*diagplan.Plan

	mu        sync.Mutex
	local     map[string]assertion.Result // per-run result cache; guards diag.TestsRun too
	testEntry map[string]uint64           // node id -> diagnosis.test evidence entry
	// claimed marks plan nodes (by instantiated-node pointer, so distinct
	// plans never collide) that some branch has already visited. Fan-in
	// makes a node reachable from several parents; the first visitor
	// claims it and later routes skip it, mirroring the DAG's "shared
	// sub-graph, evaluated once" semantics. A node excluded by a passing
	// parent test is NOT claimed — it stays reachable through its other
	// parents.
	claimed map[*diagplan.Node]bool

	testsLeft atomic.Int64
}

// claim marks the node visited, reporting whether this caller won the
// claim (false: another branch already visited it).
func (r *run) claim(n *diagplan.Node) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claimed[n] {
		return false
	}
	r.claimed[n] = true
	return true
}

// recordTest records one diagnosis-test evidence entry, chained to the
// run's diagnosis entry, and remembers the node's first entry as the
// parent link for a later cause record.
func (r *run) recordTest(n *diagplan.Node, status string, attrs map[string]string) {
	if r.op == nil {
		return
	}
	attrs["check"] = n.CheckID
	attrs["node"] = n.ID
	attrs["status"] = status
	id := r.op.Record(flight.Entry{
		Kind:    flight.KindTest,
		Parents: parentsOf(r.diagEntry),
		Message: fmt.Sprintf("test %s on %s: %s", n.CheckID, n.ID, status),
		Attrs:   attrs,
	})
	r.mu.Lock()
	if _, ok := r.testEntry[n.ID]; !ok {
		r.testEntry[n.ID] = id
	}
	r.mu.Unlock()
}

// parentsOf builds a parent-id list from the non-zero entry ids.
func parentsOf(ids ...uint64) []uint64 {
	var out []uint64
	for _, id := range ids {
		if id != 0 {
			out = append(out, id)
		}
	}
	return out
}

// exclusion records a passing diagnosis test that rules out the cause
// nodes reachable under a plan node. Counting and logging are deferred to
// commit so the running n/m tallies come out in deterministic merge order
// regardless of execution interleaving — and so causes shared by several
// excluded parents (fan-in) are counted once.
type exclusion struct {
	node   *diagplan.Node
	planID string
	causes []string // cause node ids under node, in visit order
	res    assertion.Result
	fresh  bool
}

// branch accumulates the outcome of one sub-graph visit. Sibling branches
// are merged back in probability order (walkInto), so the committed
// Diagnosis is identical to the sequential walk's.
type branch struct {
	causes     []Cause
	suspects   []Cause
	exclusions []exclusion
	// confirmed is set when a root cause was confirmed under this branch
	// and the stop-at-first-confirmation latch is on; it prunes later
	// siblings at merge time.
	confirmed bool
}

func (b *branch) confirm(n *diagplan.Node) {
	b.causes = append(b.causes, Cause{NodeID: n.ID, Description: n.Description, Confirmed: true})
}

func (b *branch) suspect(n *diagplan.Node) {
	b.suspects = append(b.suspects, Cause{NodeID: n.ID, Description: n.Description})
}

func (b *branch) absorb(c *branch) {
	b.causes = append(b.causes, c.causes...)
	b.suspects = append(b.suspects, c.suspects...)
	b.exclusions = append(b.exclusions, c.exclusions...)
	if c.confirmed {
		b.confirmed = true
	}
}

// Diagnose executes one diagnosis for the request.
func (e *Engine) Diagnose(ctx context.Context, req Request) *Diagnosis {
	wallStart := clock.Wall.Now()
	mInflight.Inc()
	defer mInflight.Dec()
	ctx, span := obs.StartSpan(ctx, "diagnosis.walk")
	span.SetAttr("source", string(req.Source))
	span.SetAttr("instance", req.ProcessInstanceID)
	span.SetAttr("step", req.StepID)
	if req.AssertionID != "" {
		span.SetAttr("assertion", req.AssertionID)
	}
	if e.opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = clock.ContextWithTimeout(ctx, e.clk, e.opts.RunTimeout)
		defer cancel()
	}
	started := e.clk.Now()
	d := &Diagnosis{Request: req, StartedAt: started, Degraded: req.Degraded, Confidence: 1}
	if req.Degraded {
		d.Confidence = 0.5
	}
	r := &run{
		req: req, diag: d,
		latch:     !e.opts.ContinueAfterConfirm,
		op:        flight.FromContext(ctx),
		local:     make(map[string]assertion.Result),
		testEntry: make(map[string]uint64),
		claimed:   make(map[*diagplan.Node]bool),
	}
	r.testsLeft.Store(int64(e.opts.MaxTests))
	if r.op != nil {
		// Tie the walk's spans into the operation's trace and evidence
		// chain: the span carries the operation id (the /traces?op=
		// filter), the timeline entry the span id.
		span.SetAttr("op", r.op.Operation())
	}

	// Instantiate and prune each selected plan exactly once; the same
	// instance serves both the potential-fault count and the walk.
	var entries []target
	for _, p := range e.selectPlans(req) {
		if e.testHookInstantiate != nil {
			e.testHookInstantiate(p.ID)
		}
		inst := p.Instantiate(req.Params)
		if !e.opts.DisablePruning {
			inst = inst.Prune(req.StepID)
		}
		d.PotentialFaults += len(inst.PotentialRootCauses())
		r.plans = append(r.plans, inst)
		if entry := inst.EntryNode(); entry != nil {
			entries = append(entries, target{p: inst, n: entry})
		}
	}

	if r.op != nil {
		attrs := map[string]string{
			"source": string(req.Source),
			"faults": strconv.Itoa(d.PotentialFaults),
		}
		if req.StepID != "" {
			attrs["step"] = req.StepID
		}
		if req.AssertionID != "" {
			attrs["assertion"] = req.AssertionID
		}
		d.EvidenceID = r.op.Record(flight.Entry{
			Kind:    flight.KindDiagnosis,
			At:      started,
			Parents: parentsOf(flight.ParentFrom(ctx)),
			SpanID:  span.ID(),
			Message: fmt.Sprintf("diagnosis plan walk: %d potential faults", d.PotentialFaults),
			Attrs:   attrs,
		})
		r.diagEntry = d.EvidenceID
	}

	e.log(req, "Performing on demand assertion checking: %s. %d potential faults in total...",
		req.Detail, d.PotentialFaults)

	top := &branch{}
	e.walkInto(ctx, r, top, entries)
	e.commit(r, top)

	switch {
	case len(d.RootCauses) > 0:
		d.Conclusion = ConclusionIdentified
		if len(d.RootCauses) == 1 {
			e.log(req, "One root cause is identified: %s", d.RootCauses[0].Description)
		} else {
			e.log(req, "%d root causes are identified", len(d.RootCauses))
		}
	case len(d.Suspected) > 0:
		d.Conclusion = ConclusionSuspected
		e.log(req, "Diagnosis inconclusive: %d possible root causes suspected but not confirmed", len(d.Suspected))
	default:
		d.Conclusion = ConclusionNone
		e.log(req, "No root cause identified")
	}
	d.Duration = e.clk.Since(started)
	mWalks.With(string(d.Conclusion)).Inc()
	mWalkDuration.Observe(clock.Wall.Since(wallStart).Seconds())
	mCausesFound.Add(float64(len(d.RootCauses)))
	span.SetAttr("conclusion", string(d.Conclusion))
	span.SetAttr("tests", fmt.Sprintf("%d", len(d.TestsRun)))
	span.SetAttr("simDuration", d.Duration.String())
	span.End()
	return d
}

// selectPlans picks the diagnosis plans for the request.
func (e *Engine) selectPlans(req Request) []*diagplan.Plan {
	if req.AssertionID != "" {
		return e.cat.Select(req.AssertionID)
	}
	// All() is sorted by plan id: deterministic order for reproducible
	// diagnoses.
	return e.cat.All()
}

// walkInto visits the preference-ordered targets and merges the resulting
// branches back into br IN THAT ORDER. Sequential mode (no semaphore)
// visits in order and stops at the first confirmation, exactly the
// paper's walk. Parallel mode fans siblings out across the semaphore —
// falling back to inline visits when it is full, so progress never
// depends on capacity — then discards everything merged after the first
// confirmed branch. Probability order is thus a preference in both
// modes, and the committed result is identical; parallel walks merely
// spend speculative tests (visible in TestsRun) to cut latency.
func (e *Engine) walkInto(ctx context.Context, r *run, br *branch, targets []target) {
	if br.confirmed || len(targets) == 0 {
		return
	}
	if e.sem == nil {
		for _, t := range targets {
			e.visit(ctx, r, br, t)
			if br.confirmed {
				return
			}
		}
		return
	}

	subs := make([]*branch, len(targets))
	// skipAfter is the lowest index whose branch has confirmed a root
	// cause so far; the sequential walk would never visit siblings past
	// it, so they are not even launched.
	var skipAfter atomic.Int64
	skipAfter.Store(int64(len(targets)))
	var wg sync.WaitGroup
	for i, t := range targets {
		if r.latch && int64(i) > skipAfter.Load() {
			break
		}
		sub := &branch{}
		subs[i] = sub
		visit := func(i int, t target, sub *branch) {
			e.visit(ctx, r, sub, t)
			if sub.confirmed {
				for {
					cur := skipAfter.Load()
					if int64(i) >= cur || skipAfter.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
			}
		}
		select {
		case e.sem <- struct{}{}:
			wg.Add(1)
			go func(i int, t target, sub *branch) {
				defer wg.Done()
				defer func() { <-e.sem }()
				visit(i, t, sub)
			}(i, t, sub)
		default:
			visit(i, t, sub)
		}
	}
	wg.Wait()
	for _, sub := range subs {
		if sub == nil {
			break
		}
		br.absorb(sub)
		if br.confirmed {
			return
		}
	}
}

// visit walks one (instantiated, pruned) plan node entry-down into br. A
// node already claimed by another branch — a fan-in target whose shared
// sub-graph was evaluated first through a different parent — is skipped.
func (e *Engine) visit(ctx context.Context, r *run, br *branch, t target) {
	p, n := t.p, t.n
	if !r.claim(n) {
		return
	}
	if n.CheckID != "" {
		res, fresh := e.test(ctx, r, n)
		switch res.Status {
		case assertion.StatusPass:
			// Error not present: exclude every cause reachable under this
			// node. Tallying and the n/m exclusion log are deferred to
			// commit, where fan-in shared causes are deduplicated.
			br.exclusions = append(br.exclusions, exclusion{
				node: n, planID: p.ID, causes: p.CausesUnder(n.ID), res: res, fresh: fresh,
			})
			return
		case assertion.StatusError:
			// Inconclusive: this node cannot be checked. A sink becomes a
			// suspect; an interior node is still descended into, since
			// its children's tests may be independently runnable.
			if fresh {
				e.log(r.req, "Could not verify %s: %s", n.ID, res.Err)
			}
			if n.Leaf() {
				br.suspect(n)
				return
			}
		case assertion.StatusFail:
			if fresh {
				e.log(r.req, "Failed verification of %s: %s", n.ID, res.Message)
			}
			if n.IsCause() {
				br.confirm(n)
				if r.latch {
					br.confirmed = true
				}
				return
			}
		}
	} else if n.IsCause() {
		// Untestable cause under a present error: suspected only.
		br.suspect(n)
		return
	}
	kids := p.Children(n)
	next := make([]target, len(kids))
	for i, c := range kids {
		next[i] = target{p: p, n: c}
	}
	e.walkInto(ctx, r, br, next)
}

// commit folds the merged top-level branch into the Diagnosis on the
// Diagnose goroutine: exclusions are tallied and logged in merge order —
// each (plan, cause) pair counted once even when fan-in lets several
// passing parents exclude the same shared cause — and causes and suspects
// are deduplicated: catalog sub-graphs shared across plans carry id
// suffixes, so identity is by node id or by instantiated description.
func (e *Engine) commit(r *run, br *branch) {
	d := r.diag
	excluded := make(map[string]bool)
	for _, ex := range br.exclusions {
		for _, id := range ex.causes {
			key := ex.planID + ":" + id
			if !excluded[key] {
				excluded[key] = true
				d.Excluded++
			}
		}
		if ex.fresh {
			e.log(r.req, "Verified %s: %s %d/%d faults are excluded",
				ex.node.ID, ex.res.Message, d.Excluded, d.PotentialFaults)
		}
	}
	for _, c := range br.causes {
		if !hasCause(d.RootCauses, c) {
			c.EvidenceID, c.Path = r.recordCause(c, true)
			d.RootCauses = append(d.RootCauses, c)
		}
	}
	for _, c := range br.suspects {
		if !hasCause(d.Suspected, c) {
			c.EvidenceID, c.Path = r.recordCause(c, false)
			d.Suspected = append(d.Suspected, c)
		}
	}
}

// recordCause commits one cause to the evidence timeline, chained to
// the diagnosis entry and the test execution that confirmed (or could
// not exclude) it. The entry cites the probability-preferred entry-to-
// node path and, for fan-in causes, every parent that can reach the node
// — the full DAG confirmation context. Recording happens at commit time,
// never during the walk: parallel branches merged after the first
// confirmation are discarded, and speculative causes must not leave
// evidence behind.
func (r *run) recordCause(c Cause, confirmed bool) (entryID uint64, path string) {
	for _, p := range r.plans {
		if !p.Has(c.NodeID) {
			continue
		}
		if pt := p.PathTo(c.NodeID); pt != "" {
			path = p.ID + ":" + pt
		}
		break
	}
	if r.op == nil {
		return 0, path
	}
	r.mu.Lock()
	te := r.testEntry[c.NodeID]
	r.mu.Unlock()
	attrs := map[string]string{
		"node":      c.NodeID,
		"confirmed": strconv.FormatBool(confirmed),
	}
	if path != "" {
		attrs["path"] = path
	}
	for _, p := range r.plans {
		if !p.Has(c.NodeID) {
			continue
		}
		if parents := p.Parents(c.NodeID); len(parents) > 0 {
			attrs["parents"] = strings.Join(parents, ",")
		}
		break
	}
	msg := "confirmed cause: " + c.Description
	if !confirmed {
		msg = "suspected cause: " + c.Description
	}
	entryID = r.op.Record(flight.Entry{
		Kind:    flight.KindCause,
		Parents: parentsOf(te, r.diagEntry),
		Message: msg,
		Attrs:   attrs,
	})
	return entryID, path
}

// hasCause reports whether list already carries the cause, by node id or
// instantiated description.
func hasCause(list []Cause, c Cause) bool {
	for _, x := range list {
		if x.NodeID == c.NodeID || x.Description == c.Description {
			return true
		}
	}
	return false
}

// test evaluates the node's diagnosis check, answering from the run-local
// cache, the shared cross-run cache, or a fresh evaluation. fresh reports
// whether this call ran the evaluation itself (and so drives the
// paper-format verification logging). Only fresh evaluations charge the
// run's test budget — shared-cache hits and coalesced joins are free.
//
// The cache key derives from the canonicalized check id and parameters
// only, never from the plan or node the test was reached through: a tree-
// compiled plan and a native DAG plan running the same check share cache
// entries.
func (e *Engine) test(ctx context.Context, r *run, n *diagplan.Node) (assertion.Result, bool) {
	params := r.req.Params.Merge(n.CheckParams)
	key := cacheKey(n.CheckID, params)
	r.mu.Lock()
	res, ok := r.local[key]
	r.mu.Unlock()
	if ok {
		mCacheHits.Inc()
		return res, false
	}
	if e.resil.Open(n.CheckID) {
		// Breaker open: skip before touching the budget or the shared
		// cache, so an unknown never displaces or poisons a real answer.
		r.recordTest(n, "error", map[string]string{"breaker": "open"})
		return unknownResult(n.CheckID, params), false
	}

	reserve := func() bool {
		for {
			left := r.testsLeft.Load()
			if left <= 0 {
				return false
			}
			if r.testsLeft.CompareAndSwap(left, left-1) {
				return true
			}
		}
	}
	// resOut escapes the closure so the evidence entry can carry the
	// retry/breaker annotations; it is only written when this call runs
	// the evaluation itself (outcome == OutcomeEvaluated).
	var resOut resilience.Outcome
	evalFn := func() assertion.Result {
		mTests.Inc()
		ctx, span := obs.StartSpan(ctx, "diagnosis.test")
		span.SetAttr("node", n.ID)
		span.SetAttr("check", n.CheckID)
		if r.op != nil {
			span.SetAttr("op", r.op.Operation())
		}
		e.log(r.req, "Verifying %s", strings.TrimSuffix(n.Description, "."))
		var res assertion.Result
		out := e.resil.Do(ctx, n.CheckID, func(ctx context.Context) resilience.Verdict {
			tctx, cancel := clock.ContextWithTimeout(ctx, e.clk, e.opts.TestTimeout)
			defer cancel()
			res = e.eval.Evaluate(tctx, n.CheckID, params, assertion.Trigger{
				Source:            assertion.TriggerOnDemand,
				ProcessInstanceID: r.req.ProcessInstanceID,
				StepID:            r.req.StepID,
			})
			if res.Status != assertion.StatusError {
				return resilience.VerdictOK
			}
			// A no-retry test never classifies as retryable: its answer is
			// time-sensitive (the catalog's TestClass annotation, enforced
			// by podlint DG009), so repeating the call proves nothing.
			if n.TestClass != diagplan.TestClassNoRetry && resilience.Retryable(res.Err) {
				return resilience.VerdictRetryable
			}
			return resilience.VerdictFatal
		})
		if out.ShortCircuited && out.Attempts == 0 {
			// The breaker opened between the precheck and here (a racing
			// walk tripped it): the test never ran.
			res = unknownResult(n.CheckID, params)
		}
		resOut = out
		span.SetAttr("status", res.Status.String())
		span.End()
		return res
	}

	outcome := OutcomeEvaluated
	if e.cache != nil {
		res, outcome = e.cache.Do(key, reserve, evalFn)
	} else if reserve() {
		res = evalFn()
	} else {
		outcome = OutcomeRejected
	}
	if outcome == OutcomeRejected {
		mBudgetExhausted.Inc()
		r.recordTest(n, "error", map[string]string{"budget": "exhausted"})
		// Not recorded in TestsRun and not logged: no test actually ran.
		return budgetExhaustedResult(n.CheckID, params), false
	}
	if outcome == OutcomeHit || outcome == OutcomeCoalesced {
		res.Cached = true
	}

	r.mu.Lock()
	if prior, ok := r.local[key]; ok {
		// Another goroutine of this run recorded the answer first.
		r.mu.Unlock()
		return prior, false
	}
	r.local[key] = res
	r.diag.TestsRun = append(r.diag.TestsRun, res)
	r.mu.Unlock()
	attrs := map[string]string{"cached": strconv.FormatBool(res.Cached)}
	if outcome == OutcomeEvaluated {
		for k, v := range resOut.Labels() {
			attrs[k] = v
		}
	}
	r.recordTest(n, res.Status.String(), attrs)
	return res, outcome == OutcomeEvaluated
}

// cacheKey builds an injective key from the check id and parameters:
// every field is length-prefixed, so no delimiter bytes inside ids, keys
// or values can make two distinct inputs collide.
func cacheKey(checkID string, p assertion.Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(strconv.Itoa(len(checkID)))
	b.WriteByte(':')
	b.WriteString(checkID)
	for _, k := range keys {
		v := p[k]
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte(':')
		b.WriteString(v)
	}
	return b.String()
}

// log emits a diagnosis log event in the paper's format.
func (e *Engine) log(req Request, format string, args ...any) {
	if e.bus == nil {
		return
	}
	ts := e.clk.Now()
	msg := fmt.Sprintf(format, args...)
	e.bus.Publish(logging.Event{
		Timestamp:  ts,
		Source:     "diagnosis.log",
		SourceHost: "pod-diagnosis",
		Type:       logging.TypeDiagnosis,
		Tags:       []string{"diagnosis"},
		Fields: map[string]string{
			"taskid": req.ProcessInstanceID,
			"stepid": req.StepID,
		},
		Message: fmt.Sprintf("[%s] [diagnosis] [%s] [%s] %s",
			ts.Format(logging.TimestampLayout), req.ProcessInstanceID, req.StepID, msg),
	})
}
