// Package diagnosis implements the paper's Error Diagnosis component
// (§III.B.4): when an assertion fails, a process non-conformance is
// detected, or another monitor reports a failure, the engine selects the
// fault tree(s) for the triggering assertion, instantiates their variables
// from the runtime request, prunes sub-trees that do not match the process
// context, and visits the remaining nodes top-down, running on-demand
// diagnosis tests (assertion evaluations) to confirm or exclude potential
// faults. Test results are cached and reused across nodes; sibling visits
// are ordered by prior fault probability.
package diagnosis

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
)

// Diagnosis metrics. Walk duration is wall-clock (the Diagnosis result
// carries the simulated-clock duration the paper's §V measures).
var (
	mWalks = obs.Default.CounterVec("pod_diagnosis_walks_total",
		"Fault-tree diagnosis runs by conclusion.", "conclusion")
	mWalkDuration = obs.Default.Histogram("pod_diagnosis_walk_seconds",
		"Wall-clock duration of one fault-tree diagnosis run.", nil)
	mTests = obs.Default.Counter("pod_diagnosis_tests_total",
		"On-demand diagnosis tests executed.")
	mCacheHits = obs.Default.Counter("pod_diagnosis_cache_hits_total",
		"Diagnosis tests answered from the per-run result cache.")
	mCausesFound = obs.Default.Counter("pod_diagnosis_causes_found_total",
		"Confirmed root causes across all diagnosis runs.")
)

// Source identifies what triggered a diagnosis.
type Source string

// Diagnosis trigger sources.
const (
	SourceAssertion   Source = "assertion"
	SourceConformance Source = "conformance"
	SourceMonitor     Source = "monitor"
	SourceTimer       Source = "timer"
)

// Request describes one diagnosis trigger.
type Request struct {
	// AssertionID is the failing assertion that selects the fault trees.
	// Empty (e.g. for conformance-triggered diagnoses) means every tree
	// is consulted, relying on step-context pruning to narrow the search.
	AssertionID string `json:"assertionId,omitempty"`
	// Source is the trigger kind.
	Source Source `json:"source"`
	// ProcessInstanceID is the operation task.
	ProcessInstanceID string `json:"processInstanceId,omitempty"`
	// StepID is the process-context step used for pruning. Empty for
	// purely timer-based triggers (which the paper notes produce weaker
	// diagnoses, §VI.A).
	StepID string `json:"stepId,omitempty"`
	// Params are the runtime request variables used to instantiate the
	// trees and parameterize diagnosis tests.
	Params assertion.Params `json:"params"`
	// Detail is free-form context (e.g. the failing assertion message).
	Detail string `json:"detail,omitempty"`
}

// Cause is one diagnosed root cause.
type Cause struct {
	// NodeID is the fault-tree node.
	NodeID string `json:"nodeId"`
	// Description is the instantiated fault description.
	Description string `json:"description"`
	// Confirmed reports whether a diagnosis test confirmed the fault;
	// false means the fault is suspected but untestable or the test was
	// inconclusive.
	Confirmed bool `json:"confirmed"`
}

// Conclusion classifies the outcome of a diagnosis.
type Conclusion string

// Diagnosis conclusions.
const (
	// ConclusionIdentified means at least one root cause was confirmed.
	ConclusionIdentified Conclusion = "root cause identified"
	// ConclusionSuspected means only unconfirmed suspects remain.
	ConclusionSuspected Conclusion = "possible root cause suspected"
	// ConclusionNone means every potential fault was excluded.
	ConclusionNone Conclusion = "no root cause identified"
)

// Diagnosis is the result of one engine run.
type Diagnosis struct {
	// Request echoes the trigger.
	Request Request `json:"request"`
	// RootCauses are the confirmed causes, in discovery order.
	RootCauses []Cause `json:"rootCauses"`
	// Suspected are unconfirmed candidate causes (untestable leaves under
	// confirmed errors, or inconclusive tests).
	Suspected []Cause `json:"suspected,omitempty"`
	// PotentialFaults is the number of root-cause candidates considered
	// after pruning.
	PotentialFaults int `json:"potentialFaults"`
	// Excluded is how many candidates were ruled out by passing tests.
	Excluded int `json:"excluded"`
	// TestsRun are the diagnosis test evaluations, in execution order.
	TestsRun []assertion.Result `json:"testsRun"`
	// Conclusion classifies the outcome.
	Conclusion Conclusion `json:"conclusion"`
	// StartedAt and Duration bound the diagnosis in simulated time.
	StartedAt time.Time     `json:"startedAt"`
	Duration  time.Duration `json:"duration"`
}

// HasCause reports whether nodeID (ignoring catalog id suffixes after the
// base name) is among the confirmed root causes.
func (d *Diagnosis) HasCause(baseID string) bool {
	for _, c := range d.RootCauses {
		if c.NodeID == baseID || strings.HasPrefix(c.NodeID, baseID+"-") {
			return true
		}
	}
	return false
}

// Options tune the engine; the zero value gives paper behaviour.
type Options struct {
	// DisablePruning skips process-context pruning (ablation A1).
	DisablePruning bool
	// ContinueAfterConfirm keeps visiting after the first confirmed root
	// cause instead of stopping like the paper's example run.
	ContinueAfterConfirm bool
	// MaxTests bounds the diagnosis tests per run. Zero means 64.
	MaxTests int
}

// Engine runs diagnoses. It is safe for concurrent use; test-result
// caching is per-run.
type Engine struct {
	repo *faulttree.Repository
	eval *assertion.Evaluator
	bus  *logging.Bus // may be nil
	clk  clock.Clock
	opts Options
}

// NewEngine returns an Engine over the given fault trees and evaluator.
func NewEngine(repo *faulttree.Repository, eval *assertion.Evaluator, bus *logging.Bus, opts Options) *Engine {
	if opts.MaxTests <= 0 {
		opts.MaxTests = 64
	}
	return &Engine{repo: repo, eval: eval, bus: bus, clk: eval.Client().Clock(), opts: opts}
}

// run carries the mutable state of one diagnosis.
type run struct {
	req       Request
	diag      *Diagnosis
	cache     map[string]assertion.Result
	testsLeft int
	done      bool // stop-at-first-confirmation latch
}

// Diagnose executes one diagnosis for the request.
func (e *Engine) Diagnose(ctx context.Context, req Request) *Diagnosis {
	wallStart := time.Now()
	ctx, span := obs.StartSpan(ctx, "diagnosis.walk")
	span.SetAttr("source", string(req.Source))
	span.SetAttr("instance", req.ProcessInstanceID)
	span.SetAttr("step", req.StepID)
	if req.AssertionID != "" {
		span.SetAttr("assertion", req.AssertionID)
	}
	started := e.clk.Now()
	d := &Diagnosis{Request: req, StartedAt: started}
	r := &run{req: req, diag: d, cache: make(map[string]assertion.Result), testsLeft: e.opts.MaxTests}

	trees := e.selectTrees(req)
	for _, t := range trees {
		inst := t.Instantiate(req.Params)
		if !e.opts.DisablePruning {
			inst = inst.Prune(req.StepID)
		}
		d.PotentialFaults += len(inst.PotentialRootCauses())
	}

	e.log(req, "Performing on demand assertion checking: %s. %d potential faults in total...",
		req.Detail, d.PotentialFaults)

	for _, t := range trees {
		if r.done {
			break
		}
		inst := t.Instantiate(req.Params)
		if !e.opts.DisablePruning {
			inst = inst.Prune(req.StepID)
		}
		e.visit(ctx, r, inst.Root)
	}

	switch {
	case len(d.RootCauses) > 0:
		d.Conclusion = ConclusionIdentified
		if len(d.RootCauses) == 1 {
			e.log(req, "One root cause is identified: %s", d.RootCauses[0].Description)
		} else {
			e.log(req, "%d root causes are identified", len(d.RootCauses))
		}
	case len(d.Suspected) > 0:
		d.Conclusion = ConclusionSuspected
		e.log(req, "Diagnosis inconclusive: %d possible root causes suspected but not confirmed", len(d.Suspected))
	default:
		d.Conclusion = ConclusionNone
		e.log(req, "No root cause identified")
	}
	d.Duration = e.clk.Since(started)
	mWalks.With(string(d.Conclusion)).Inc()
	mWalkDuration.Observe(time.Since(wallStart).Seconds())
	mCausesFound.Add(float64(len(d.RootCauses)))
	span.SetAttr("conclusion", string(d.Conclusion))
	span.SetAttr("tests", fmt.Sprintf("%d", len(d.TestsRun)))
	span.SetAttr("simDuration", d.Duration.String())
	span.End()
	return d
}

// selectTrees picks the fault trees for the request.
func (e *Engine) selectTrees(req Request) []*faulttree.Tree {
	if req.AssertionID != "" {
		return e.repo.Select(req.AssertionID)
	}
	trees := e.repo.All()
	// Deterministic order for reproducible diagnoses.
	sort.Slice(trees, func(i, j int) bool { return trees[i].ID < trees[j].ID })
	return trees
}

// visit walks one (instantiated, pruned) node top-down.
func (e *Engine) visit(ctx context.Context, r *run, n *faulttree.Node) {
	if r.done {
		return
	}
	if n.CheckID != "" {
		res, fresh := e.test(ctx, r, n)
		switch res.Status {
		case assertion.StatusPass:
			// Error not present: exclude this sub-tree.
			excluded := countRootCauses(n)
			r.diag.Excluded += excluded
			if fresh {
				e.log(r.req, "Verified %s: %s %d/%d faults are excluded",
					n.ID, res.Message, r.diag.Excluded, r.diag.PotentialFaults)
			}
			return
		case assertion.StatusError:
			// Inconclusive: this node cannot be checked. A leaf becomes a
			// suspect; an interior node is still descended into, since
			// its children's tests may be independently runnable.
			if fresh {
				e.log(r.req, "Could not verify %s: %s", n.ID, res.Err)
			}
			if n.Leaf() {
				r.suspect(n)
				return
			}
		case assertion.StatusFail:
			if fresh {
				e.log(r.req, "Failed verification of %s: %s", n.ID, res.Message)
			}
			if n.RootCause {
				r.confirm(n)
				if !e.opts.ContinueAfterConfirm {
					r.done = true
				}
				return
			}
		}
	} else if n.RootCause {
		// Untestable leaf under a present error: suspected only.
		r.suspect(n)
		return
	}
	for _, c := range faulttree.SortedChildren(n) {
		if r.done {
			return
		}
		e.visit(ctx, r, c)
	}
}

// test evaluates the node's diagnosis check, reusing cached results.
// fresh reports whether the evaluation actually ran now.
func (e *Engine) test(ctx context.Context, r *run, n *faulttree.Node) (assertion.Result, bool) {
	params := r.req.Params.Merge(n.CheckParams)
	key := cacheKey(n.CheckID, params)
	if res, ok := r.cache[key]; ok {
		mCacheHits.Inc()
		return res, false
	}
	if r.testsLeft <= 0 {
		return assertion.Result{
			CheckID: n.CheckID, Status: assertion.StatusError,
			Message: "diagnosis test budget exhausted", Params: params,
			Err: "diagnosis: test budget exhausted",
		}, false
	}
	r.testsLeft--
	mTests.Inc()
	ctx, span := obs.StartSpan(ctx, "diagnosis.test")
	span.SetAttr("node", n.ID)
	span.SetAttr("check", n.CheckID)
	e.log(r.req, "Verifying %s", strings.TrimSuffix(n.Description, "."))
	res := e.eval.Evaluate(ctx, n.CheckID, params, assertion.Trigger{
		Source:            assertion.TriggerOnDemand,
		ProcessInstanceID: r.req.ProcessInstanceID,
		StepID:            r.req.StepID,
	})
	span.SetAttr("status", res.Status.String())
	span.End()
	r.cache[key] = res
	r.diag.TestsRun = append(r.diag.TestsRun, res)
	return res, true
}

func (r *run) confirm(n *faulttree.Node) {
	r.diag.RootCauses = append(r.diag.RootCauses, Cause{
		NodeID: n.ID, Description: n.Description, Confirmed: true,
	})
}

func (r *run) suspect(n *faulttree.Node) {
	// Catalog sub-trees are shared across fault trees with id suffixes;
	// dedup suspects by their instantiated description.
	for _, c := range r.diag.Suspected {
		if c.NodeID == n.ID || c.Description == n.Description {
			return
		}
	}
	r.diag.Suspected = append(r.diag.Suspected, Cause{
		NodeID: n.ID, Description: n.Description,
	})
}

// countRootCauses counts root-cause leaves at or below n.
func countRootCauses(n *faulttree.Node) int {
	count := 0
	if n.RootCause {
		count++
	}
	for _, c := range n.Children {
		count += countRootCauses(c)
	}
	return count
}

// cacheKey builds a deterministic key from the check id and parameters.
func cacheKey(checkID string, p assertion.Params) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(checkID)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(p[k])
	}
	return b.String()
}

// log emits a diagnosis log event in the paper's format.
func (e *Engine) log(req Request, format string, args ...any) {
	if e.bus == nil {
		return
	}
	ts := e.clk.Now()
	msg := fmt.Sprintf(format, args...)
	e.bus.Publish(logging.Event{
		Timestamp:  ts,
		Source:     "diagnosis.log",
		SourceHost: "pod-diagnosis",
		Type:       logging.TypeDiagnosis,
		Tags:       []string{"diagnosis"},
		Fields: map[string]string{
			"taskid": req.ProcessInstanceID,
			"stepid": req.StepID,
		},
		Message: fmt.Sprintf("[%s] [diagnosis] [%s] [%s] %s",
			ts.Format(logging.TimestampLayout), req.ProcessInstanceID, req.StepID, msg),
	})
}
