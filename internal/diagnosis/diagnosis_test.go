package diagnosis

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

type diagEnv struct {
	cloud   *simaws.Cloud
	cluster *upgrade.Cluster
	engine  *Engine
	eval    *assertion.Evaluator
	bus     *logging.Bus
	sink    *logging.MemorySink
	ctx     context.Context
}

func newDiagEnv(t *testing.T, size int, opts Options) *diagEnv {
	t.Helper()
	clk := clock.NewScaled(800, time.Date(2013, 11, 19, 11, 48, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.BootTime = clock.Fixed(45 * time.Second)
	profile.TickInterval = 200 * time.Millisecond
	cloud := simaws.New(clk, profile, simaws.WithSeed(13), simaws.WithBus(bus))
	cloud.Start()
	t.Cleanup(func() { cloud.Stop(); bus.Close() })

	sink := logging.NewMemorySink()
	sub := bus.Subscribe(4096, logging.TypeFilter(logging.TypeDiagnosis))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			sink.Write(e)
		}
	}()
	t.Cleanup(func() { sub.Cancel(); <-done })

	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "dsn", size, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	client := consistentapi.New(cloud, consistentapi.Config{
		MaxAttempts:    3,
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     time.Second,
		CallTimeout:    20 * time.Second,
	})
	eval := assertion.NewEvaluator(client, assertion.DefaultRegistry(), bus)
	engine := NewEngine(faulttree.DefaultCatalog(), eval, bus, opts)
	return &diagEnv{cloud: cloud, cluster: cluster, engine: engine, eval: eval, bus: bus, sink: sink, ctx: ctx}
}

// request builds a version-count diagnosis request with full params, as the
// POD engine would after the step-7 assertion failed.
func (e *diagEnv) request(stepID string) Request {
	return Request{
		AssertionID:       assertion.CheckASGVersionCount,
		Source:            SourceAssertion,
		ProcessInstanceID: "pushing dsn--asg",
		StepID:            stepID,
		Detail:            "The ASG dsn--asg is using a correct version",
		Params: assertion.Params{
			assertion.ParamASG:          e.cluster.ASGName,
			assertion.ParamELB:          e.cluster.ELBName,
			assertion.ParamAMI:          e.cluster.ImageID,
			assertion.ParamKeyPair:      e.cluster.KeyName,
			assertion.ParamSG:           e.cluster.SGName,
			assertion.ParamInstanceType: "m1.small",
			assertion.ParamVersion:      e.cluster.Version,
			assertion.ParamWant:         "2",
			assertion.ParamLC:           e.cluster.LCName,
		},
	}
}

// waitMembers polls until the cluster ASG has exactly n in-service
// instances.
func (e *diagEnv) waitMembers(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		instances, err := e.cloud.DescribeInstances(e.ctx)
		if err == nil {
			live := 0
			for _, inst := range instances {
				if inst.ASGName == e.cluster.ASGName && inst.State == simaws.StateInService {
					live++
				}
			}
			if live == n {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("ASG never reached %d in-service instances", n)
}

func TestDiagnosesWrongAMI(t *testing.T) {
	e := newDiagEnv(t, 2, Options{})
	// Inject fault 1: a concurrent upgrade switched the ASG to another
	// AMI's launch configuration.
	wrongAMI, err := e.cloud.RegisterImage(e.ctx, "rogue", "v9", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.cloud.CreateLaunchConfiguration(e.ctx, simaws.LaunchConfig{
		Name: "rogue-lc", ImageID: wrongAMI, KeyName: e.cluster.KeyName,
		SecurityGroups: []string{e.cluster.SGName}, InstanceType: "m1.small",
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.cloud.UpdateAutoScalingGroup(e.ctx, e.cluster.ASGName, "rogue-lc", -1, -1, -1); err != nil {
		t.Fatal(err)
	}

	d := e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))
	if d.Conclusion != ConclusionIdentified {
		t.Fatalf("conclusion = %s, suspected %v, tests %d", d.Conclusion, d.Suspected, len(d.TestsRun))
	}
	if !d.HasCause("wrong-ami") {
		t.Fatalf("root causes = %+v, want wrong-ami", d.RootCauses)
	}
	if d.PotentialFaults == 0 {
		t.Errorf("potential=%d", d.PotentialFaults)
	}
	// With the paper's probability ordering, SG and key pair are checked
	// (and excluded) before the AMI fault is confirmed.
	if d.Excluded < 2 {
		t.Errorf("excluded = %d, want >= 2", d.Excluded)
	}
	if d.Duration <= 0 {
		t.Error("no duration recorded")
	}
}

func TestDiagnosesWrongKeyPair(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	_ = e.cloud.ImportKeyPair(e.ctx, "rogue-key")
	if err := e.cloud.CreateLaunchConfiguration(e.ctx, simaws.LaunchConfig{
		Name: "rogue-lc", ImageID: e.cluster.ImageID, KeyName: "rogue-key",
		SecurityGroups: []string{e.cluster.SGName}, InstanceType: "m1.small",
	}); err != nil {
		t.Fatal(err)
	}
	_ = e.cloud.UpdateAutoScalingGroup(e.ctx, e.cluster.ASGName, "rogue-lc", -1, -1, -1)
	d := e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))
	if !d.HasCause("wrong-keypair") {
		t.Fatalf("causes = %+v", d.RootCauses)
	}
}

func TestDiagnosesAMIUnavailable(t *testing.T) {
	e := newDiagEnv(t, 2, Options{})
	// Fault 5: AMI deleted mid-upgrade; replacements cannot launch.
	if err := e.cloud.DeregisterImage(e.ctx, e.cluster.ImageID); err != nil {
		t.Fatal(err)
	}
	if err := e.cloud.SetDesiredCapacity(e.ctx, e.cluster.ASGName, 3); err != nil {
		t.Fatal(err)
	}
	// Wait for a failed launch activity.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		acts, err := e.cloud.DescribeScalingActivities(e.ctx, e.cluster.ASGName)
		if err == nil {
			for _, a := range acts {
				if a.Status == simaws.ActivityFailed {
					goto ready
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
ready:
	d := e.engine.Diagnose(e.ctx, e.request(process.StepWaitASG))
	if d.Conclusion != ConclusionIdentified {
		t.Fatalf("conclusion = %s (suspected %+v)", d.Conclusion, d.Suspected)
	}
	if !d.HasCause("launch-ami-unavailable") {
		t.Fatalf("causes = %+v", d.RootCauses)
	}
}

func TestDiagnosesELBUnavailable(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	e.cloud.SetELBServiceDisruption(true)
	d := e.engine.Diagnose(e.ctx, e.request(process.StepDeregister))
	if !d.HasCause("elb-unreachable") {
		t.Fatalf("causes = %+v, suspected %+v, conclusion %s", d.RootCauses, d.Suspected, d.Conclusion)
	}
}

func TestDiagnosesScaleInInterference(t *testing.T) {
	e := newDiagEnv(t, 2, Options{})
	if err := e.cloud.SetDesiredCapacity(e.ctx, e.cluster.ASGName, 1); err != nil {
		t.Fatal(err)
	}
	e.waitMembers(t, 1)
	d := e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))
	if !d.HasCause("simultaneous-scale-in") {
		t.Fatalf("causes = %+v", d.RootCauses)
	}
}

func TestNoRootCauseWhenHealthy(t *testing.T) {
	e := newDiagEnv(t, 2, Options{})
	d := e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))
	if d.Conclusion != ConclusionNone {
		t.Fatalf("conclusion = %s, causes %+v, suspected %+v", d.Conclusion, d.RootCauses, d.Suspected)
	}
	if d.Excluded == 0 {
		t.Error("nothing excluded on healthy system")
	}
}

func TestRandomTerminationOnlySuspected(t *testing.T) {
	e := newDiagEnv(t, 2, Options{})
	// Terminate an instance outside the process (no scale-in activity).
	insts, err := e.cloud.DescribeInstances(e.ctx)
	if err != nil || len(insts) == 0 {
		t.Fatal(err)
	}
	if err := e.cloud.TerminateInstance(e.ctx, insts[0].ID); err != nil {
		t.Fatal(err)
	}
	e.waitMembers(t, 1)
	// Diagnose before the ASG replaces the victim. Count check uses
	// want=2; instance count dropped but no scale-in, no failed launch.
	req := e.request(process.StepNewReady)
	req.AssertionID = assertion.CheckASGInstanceCount
	d := e.engine.Diagnose(e.ctx, req)
	// The only live hypothesis is unexpected-termination — unconfirmable
	// without CloudTrail.
	if d.Conclusion == ConclusionIdentified {
		t.Fatalf("unexpectedly identified: %+v", d.RootCauses)
	}
	foundSuspect := false
	for _, c := range d.Suspected {
		if c.NodeID == "unexpected-termination-ic" {
			foundSuspect = true
		}
	}
	if !foundSuspect {
		t.Fatalf("suspected = %+v, want unexpected-termination-ic", d.Suspected)
	}
}

func TestTimerTriggeredDiagnosisLacksContext(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	// Purely timer-based trigger: no step id, no assertion id, sparse
	// params (§VI.A wrong-diagnosis class 1).
	d := e.engine.Diagnose(e.ctx, Request{
		Source: SourceTimer,
		Params: assertion.Params{assertion.ParamASG: e.cluster.ASGName},
	})
	// With sparse params many tests are inconclusive; the engine must not
	// fabricate a confirmed cause on a healthy system.
	if d.Conclusion == ConclusionIdentified {
		t.Fatalf("identified on healthy system: %+v", d.RootCauses)
	}
}

func TestCachingReusesTestResults(t *testing.T) {
	e := newDiagEnv(t, 1, Options{ContinueAfterConfirm: true})
	d := e.engine.Diagnose(e.ctx, e.request("")) // no pruning by step
	seen := make(map[string]int)
	for _, res := range d.TestsRun {
		key := res.CheckID
		for _, k := range []string{assertion.ParamAMI, assertion.ParamKeyPair, assertion.ParamSG, assertion.ParamInstance} {
			key += "|" + res.Params[k]
		}
		seen[key]++
	}
	for key, n := range seen {
		if n > 1 {
			t.Errorf("test %s ran %d times despite caching", key, n)
		}
	}
}

func TestStopAtFirstConfirmation(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	// Two faults: wrong AMI (via rogue LC) and ELB disruption.
	wrongAMI, _ := e.cloud.RegisterImage(e.ctx, "rogue", "v9", nil)
	_ = e.cloud.CreateLaunchConfiguration(e.ctx, simaws.LaunchConfig{
		Name: "rogue-lc", ImageID: wrongAMI, KeyName: e.cluster.KeyName,
		SecurityGroups: []string{e.cluster.SGName}, InstanceType: "m1.small",
	})
	_ = e.cloud.UpdateAutoScalingGroup(e.ctx, e.cluster.ASGName, "rogue-lc", -1, -1, -1)
	e.cloud.SetELBServiceDisruption(true)

	d := e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))
	if len(d.RootCauses) != 1 {
		t.Fatalf("causes = %+v, want exactly one (stop at first)", d.RootCauses)
	}

	e2 := newDiagEnv(t, 1, Options{ContinueAfterConfirm: true})
	_ = e2.cloud.ImportKeyPair(e2.ctx, "zz")
	wrongAMI2, _ := e2.cloud.RegisterImage(e2.ctx, "rogue2", "v9", nil)
	_ = e2.cloud.CreateLaunchConfiguration(e2.ctx, simaws.LaunchConfig{
		Name: "rogue-lc2", ImageID: wrongAMI2, KeyName: "zz",
		SecurityGroups: []string{e2.cluster.SGName}, InstanceType: "m1.large",
	})
	_ = e2.cloud.UpdateAutoScalingGroup(e2.ctx, e2.cluster.ASGName, "rogue-lc2", -1, -1, -1)
	d2 := e2.engine.Diagnose(e2.ctx, e2.request(process.StepNewReady))
	if len(d2.RootCauses) < 2 {
		t.Fatalf("ContinueAfterConfirm found %d causes: %+v", len(d2.RootCauses), d2.RootCauses)
	}
}

func TestPruningAblationRunsMoreTests(t *testing.T) {
	e := newDiagEnv(t, 1, Options{ContinueAfterConfirm: true})
	dPruned := e.engine.Diagnose(e.ctx, e.request(process.StepUpdateLC))

	eNoPrune := NewEngine(faulttree.DefaultCatalog(), e.eval, nil,
		Options{DisablePruning: true, ContinueAfterConfirm: true})
	dFull := eNoPrune.Diagnose(e.ctx, e.request(process.StepUpdateLC))

	if dFull.PotentialFaults <= dPruned.PotentialFaults {
		t.Errorf("pruning did not reduce potential faults: %d vs %d",
			dPruned.PotentialFaults, dFull.PotentialFaults)
	}
	if len(dFull.TestsRun) < len(dPruned.TestsRun) {
		t.Errorf("unpruned ran fewer tests: %d vs %d", len(dFull.TestsRun), len(dPruned.TestsRun))
	}
}

func TestDiagnosisLogsMirrorPaperFormat(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	wrongAMI, _ := e.cloud.RegisterImage(e.ctx, "rogue", "v9", nil)
	_ = e.cloud.CreateLaunchConfiguration(e.ctx, simaws.LaunchConfig{
		Name: "rogue-lc", ImageID: wrongAMI, KeyName: e.cluster.KeyName,
		SecurityGroups: []string{e.cluster.SGName}, InstanceType: "m1.small",
	})
	_ = e.cloud.UpdateAutoScalingGroup(e.ctx, e.cluster.ASGName, "rogue-lc", -1, -1, -1)
	e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))

	// Wait until the final "root cause is identified" log has been
	// delivered (bus delivery is asynchronous).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		delivered := false
		for _, ev := range e.sink.Events() {
			if contains(ev.Message, "root cause is identified") {
				delivered = true
			}
		}
		if delivered {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	var sawIntro, sawVerify, sawCause bool
	for _, ev := range e.sink.Events() {
		if ev.Type != logging.TypeDiagnosis {
			t.Errorf("non-diagnosis event on filter: %s", ev.Type)
		}
		switch {
		case contains(ev.Message, "potential faults in total"):
			sawIntro = true
		case contains(ev.Message, "Verifying"):
			sawVerify = true
		case contains(ev.Message, "root cause is identified"):
			sawCause = true
		}
	}
	if !sawIntro || !sawVerify || !sawCause {
		t.Errorf("log coverage: intro=%v verify=%v cause=%v", sawIntro, sawVerify, sawCause)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestTestBudgetBounds(t *testing.T) {
	e := newDiagEnv(t, 1, Options{MaxTests: 2, ContinueAfterConfirm: true})
	d := e.engine.Diagnose(e.ctx, e.request(""))
	if len(d.TestsRun) > 2 {
		t.Fatalf("ran %d tests with budget 2", len(d.TestsRun))
	}
}
