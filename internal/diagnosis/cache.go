package diagnosis

import (
	"sync"
	"sync/atomic"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/obs"
)

// Shared-cache metrics. The per-run cache keeps its historical
// pod_diagnosis_cache_hits_total counter; these cover the cross-run layer.
var (
	mSharedCacheHits = obs.Default.Counter("pod_diagnosis_shared_cache_hits_total",
		"Diagnosis tests answered from the cross-run shared result cache.")
	mSharedCacheEvictions = obs.Default.Counter("pod_diagnosis_shared_cache_evictions_total",
		"Shared-cache entries evicted after their consistency-window TTL elapsed.")
	mCoalesced = obs.Default.Counter("pod_diagnosis_singleflight_coalesced_total",
		"Diagnosis tests coalesced onto an identical in-flight evaluation.")
)

// Outcome classifies how SharedCache.Do answered a request.
type Outcome int

// Do outcomes.
const (
	// OutcomeEvaluated means this caller ran the evaluation itself.
	OutcomeEvaluated Outcome = iota
	// OutcomeHit means a fresh cached result was reused without evaluating.
	OutcomeHit
	// OutcomeCoalesced means the caller joined an identical in-flight
	// evaluation started by another walk and waited for its result.
	OutcomeCoalesced
	// OutcomeRejected means the reserve callback refused the evaluation
	// (the caller's test budget is exhausted); no result is available.
	OutcomeRejected
)

// sweepThreshold is the entry count above which Do opportunistically
// sweeps expired entries while it already holds the lock.
const sweepThreshold = 1024

// entry is one cached (or in-flight) evaluation. ready is closed once res
// is valid; at is stamped when the evaluation STARTS, so an entry's age
// conservatively includes the evaluation latency itself.
type entry struct {
	ready chan struct{}
	res   assertion.Result
	at    time.Time
}

// SharedCache is a cross-run diagnosis test-result cache with single-flight
// deduplication: concurrent walks asking the same (checkID, params)
// question run one evaluation, and completed answers are reused until
// their TTL elapses. The TTL is bounded by the simulated cloud's eventual-
// consistency window (see Engine), so a cached answer can never be staler
// than an answer the cloud itself might have served; with a zero TTL the
// cache still coalesces concurrent identical evaluations but performs no
// cross-time reuse. It is safe for concurrent use.
type SharedCache struct {
	clk clock.Clock
	ttl time.Duration

	mu      sync.Mutex
	entries map[string]*entry
	// lastSweep is when the last full expiry sweep ran. Lazy same-key
	// eviction alone lets one-off (check, params) keys accumulate for
	// the life of the Manager; the periodic sweep bounds that growth.
	lastSweep time.Time

	hits      atomic.Uint64
	coalesced atomic.Uint64
	evals     atomic.Uint64
	evictions atomic.Uint64
}

// NewSharedCache returns an empty cache over the given clock. Results stay
// reusable for ttl of clock time; ttl <= 0 disables cross-time reuse (the
// cache then only coalesces concurrent identical evaluations).
func NewSharedCache(clk clock.Clock, ttl time.Duration) *SharedCache {
	if ttl < 0 {
		ttl = 0
	}
	return &SharedCache{clk: clk, ttl: ttl, entries: make(map[string]*entry), lastSweep: clk.Now()}
}

// TTL returns the cache's effective time-to-live.
func (c *SharedCache) TTL() time.Duration { return c.ttl }

// Do answers the keyed evaluation: from a fresh cached result, by joining
// an identical in-flight evaluation, or by running eval itself. reserve
// (optional) is consulted once before a new evaluation starts — it is how
// callers charge their per-run test budget; returning false yields
// OutcomeRejected with a zero Result and eval is not run.
func (c *SharedCache) Do(key string, reserve func() bool, eval func() assertion.Result) (assertion.Result, Outcome) {
	c.mu.Lock()
	c.sweepLocked()
	if en, ok := c.entries[key]; ok {
		select {
		case <-en.ready:
			if c.ttl > 0 && c.clk.Since(en.at) <= c.ttl {
				c.mu.Unlock()
				c.hits.Add(1)
				mSharedCacheHits.Inc()
				return en.res, OutcomeHit
			}
			// Older than the consistency window: evict and re-evaluate.
			delete(c.entries, key)
			c.evictions.Add(1)
			mSharedCacheEvictions.Inc()
		default:
			// In flight: wait for the leader's result.
			c.mu.Unlock()
			c.coalesced.Add(1)
			mCoalesced.Inc()
			<-en.ready
			return en.res, OutcomeCoalesced
		}
	}
	if reserve != nil && !reserve() {
		c.mu.Unlock()
		return assertion.Result{}, OutcomeRejected
	}
	en := &entry{ready: make(chan struct{}), at: c.clk.Now()}
	c.entries[key] = en
	c.mu.Unlock()

	en.res = eval()
	c.evals.Add(1)
	if c.ttl <= 0 {
		// No cross-time reuse permitted: drop the entry as soon as the
		// waiters coalesced onto it can read the result.
		c.mu.Lock()
		if c.entries[key] == en {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	close(en.ready)
	return en.res, OutcomeEvaluated
}

// sweepLocked drops expired completed entries. It runs opportunistically
// from Do: always once the map grows past sweepThreshold, and otherwise
// at most once per TTL period, so a burst of one-off keys (which lazy
// same-key eviction never revisits) is reclaimed within one consistency
// window instead of accumulating for the life of the Manager. Caller
// must hold mu.
func (c *SharedCache) sweepLocked() {
	if len(c.entries) == 0 {
		return
	}
	if len(c.entries) < sweepThreshold && (c.ttl <= 0 || c.clk.Since(c.lastSweep) < c.ttl) {
		return
	}
	c.lastSweep = c.clk.Now()
	for key, en := range c.entries {
		select {
		case <-en.ready:
			if c.ttl <= 0 || c.clk.Since(en.at) > c.ttl {
				delete(c.entries, key)
				c.evictions.Add(1)
				mSharedCacheEvictions.Inc()
			}
		default:
			// In flight: keep.
		}
	}
}

// CacheStats is a point-in-time view of a SharedCache.
type CacheStats struct {
	// Size is the number of cached or in-flight entries.
	Size int `json:"size"`
	// Hits counts answers served from a fresh cached result.
	Hits uint64 `json:"hits"`
	// Coalesced counts callers that joined an in-flight evaluation.
	Coalesced uint64 `json:"coalesced"`
	// Evaluations counts evaluations actually run through the cache.
	Evaluations uint64 `json:"evaluations"`
	// Evictions counts entries dropped after their TTL elapsed.
	Evictions uint64 `json:"evictions"`
	// TTL is the effective time-to-live.
	TTL time.Duration `json:"ttl"`
}

// Stats snapshots the cache counters.
func (c *SharedCache) Stats() CacheStats {
	c.mu.Lock()
	size := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Size:        size,
		Hits:        c.hits.Load(),
		Coalesced:   c.coalesced.Load(),
		Evaluations: c.evals.Load(),
		Evictions:   c.evictions.Load(),
		TTL:         c.ttl,
	}
}
