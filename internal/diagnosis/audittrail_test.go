package diagnosis

import (
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/process"
)

// TestTerminationDiagnosisNeedsAuditTrail reproduces the paper's §V.B/§VII
// finding in all three regimes: without CloudTrail the random termination
// is only suspected; with an idealized (instant) trail it is confirmed;
// with the real product's ~15-minute delivery delay it is again only
// suspected, because the record is not yet visible when the on-demand
// diagnosis test runs.
func TestTerminationDiagnosisNeedsAuditTrail(t *testing.T) {
	run := func(t *testing.T, enableTrail bool, delay time.Duration) *Diagnosis {
		t.Helper()
		e := newDiagEnv(t, 2, Options{})
		if enableTrail {
			e.cloud.EnableAuditTrail(delay)
		}
		insts, err := e.cloud.DescribeInstances(e.ctx)
		if err != nil || len(insts) == 0 {
			t.Fatal(err)
		}
		if err := e.cloud.TerminateInstance(e.ctx, insts[0].ID); err != nil {
			t.Fatal(err)
		}
		e.waitMembers(t, 1)
		req := e.request(process.StepNewReady)
		req.AssertionID = assertion.CheckASGInstanceCount
		return e.engine.Diagnose(e.ctx, req)
	}

	t.Run("no-trail", func(t *testing.T) {
		d := run(t, false, 0)
		if d.Conclusion == ConclusionIdentified {
			t.Fatalf("identified without a trail: %+v", d.RootCauses)
		}
		if !suspectsTermination(d) {
			t.Fatalf("termination not suspected: %+v", d.Suspected)
		}
	})

	t.Run("instant-trail", func(t *testing.T) {
		d := run(t, true, 0)
		if !d.HasCause("unexpected-termination") {
			t.Fatalf("termination not confirmed with instant trail: %s %+v %+v",
				d.Conclusion, d.RootCauses, d.Suspected)
		}
	})

	t.Run("delayed-trail", func(t *testing.T) {
		// The paper measured up to 15 minutes of CloudTrail delay; the
		// diagnosis runs within seconds of the fault, so the record is
		// invisible and the cause cannot be confirmed.
		d := run(t, true, 15*time.Minute)
		if d.HasCause("unexpected-termination") {
			t.Fatal("termination confirmed despite delivery delay")
		}
	})
}

func suspectsTermination(d *Diagnosis) bool {
	for _, s := range d.Suspected {
		if len(s.NodeID) >= len("unexpected-termination") &&
			s.NodeID[:len("unexpected-termination")] == "unexpected-termination" {
			return true
		}
	}
	return false
}
