package diagnosis

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
)

// manualClock is a hand-advanced clock.Clock for deterministic TTL tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Date(2013, 11, 19, 11, 48, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.Advance(d)
	return ctx.Err()
}

func (c *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.Now().Add(d)
	return ch
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func passResult(msg string) assertion.Result {
	return assertion.Result{CheckID: "c", Status: assertion.StatusPass, Message: msg}
}

// Regression for the old '|'/'=' delimited cacheKey: these two parameter
// sets are distinct but encoded identically ("c|a=b|c=d"), so a run could
// reuse the wrong test result.
func TestCacheKeyInjective(t *testing.T) {
	a := cacheKey("c", assertion.Params{"a": "b|c=d"})
	b := cacheKey("c", assertion.Params{"a": "b", "c": "d"})
	if a == b {
		t.Fatalf("cacheKey collision: %q", a)
	}
	// Check-id/param boundary must also be unambiguous.
	if cacheKey("c|a", assertion.Params{"b": "x"}) == cacheKey("c", assertion.Params{"a|b": "x"}) {
		t.Fatal("cacheKey collision across checkID/param boundary")
	}
	if cacheKey("c", assertion.Params{"a": "b"}) != cacheKey("c", assertion.Params{"a": "b"}) {
		t.Fatal("cacheKey not deterministic")
	}
}

func TestSharedCacheCoalescesConcurrentCallers(t *testing.T) {
	clk := newManualClock()
	c := NewSharedCache(clk, time.Minute)
	var evals atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	results := make([]assertion.Result, n)
	leaderReady := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-leaderReady // ensure the leader's entry is in flight first
			}
			results[i], outcomes[i] = c.Do("k", nil, func() assertion.Result {
				close(started)
				<-release
				evals.Add(1)
				return passResult("one evaluation")
			})
		}(i)
	}
	<-started
	close(leaderReady)
	// Give the joiners a moment to reach the in-flight entry, then let the
	// leader finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := evals.Load(); got != 1 {
		t.Fatalf("eval ran %d times, want 1", got)
	}
	var evaluated, joined int
	for i := range outcomes {
		if results[i].Message != "one evaluation" {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		switch outcomes[i] {
		case OutcomeEvaluated:
			evaluated++
		case OutcomeCoalesced, OutcomeHit:
			joined++
		default:
			t.Fatalf("caller %d outcome %v", i, outcomes[i])
		}
	}
	if evaluated != 1 || joined != n-1 {
		t.Fatalf("evaluated=%d joined=%d, want 1 and %d", evaluated, joined, n-1)
	}
	st := c.Stats()
	if st.Evaluations != 1 || st.Hits+st.Coalesced != n-1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TTL freshness is inclusive at the consistency-window edge: an answer
// exactly window-old is still one the cloud itself could have served.
func TestSharedCacheTTLExpiryAtWindowEdge(t *testing.T) {
	clk := newManualClock()
	const window = 10 * time.Second
	c := NewSharedCache(clk, window)
	evals := 0
	do := func() (assertion.Result, Outcome) {
		return c.Do("k", nil, func() assertion.Result {
			evals++
			return passResult("v")
		})
	}

	if _, out := do(); out != OutcomeEvaluated {
		t.Fatalf("first call outcome %v", out)
	}
	clk.Advance(window) // exactly at the edge: still fresh
	if _, out := do(); out != OutcomeHit {
		t.Fatalf("at-edge outcome %v, want hit", out)
	}
	clk.Advance(time.Nanosecond) // past the edge: stale
	if _, out := do(); out != OutcomeEvaluated {
		t.Fatalf("past-edge outcome %v, want re-evaluation", out)
	}
	if evals != 2 {
		t.Fatalf("evals = %d, want 2", evals)
	}
	if st := c.Stats(); st.Evictions != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// With a zero TTL (no staleness permitted by the cloud) the cache must
// not reuse results across time, only coalesce concurrent callers.
func TestSharedCacheZeroTTLNeverReuses(t *testing.T) {
	clk := newManualClock()
	c := NewSharedCache(clk, 0)
	evals := 0
	for i := 0; i < 3; i++ {
		_, out := c.Do("k", nil, func() assertion.Result { evals++; return passResult("v") })
		if out != OutcomeEvaluated {
			t.Fatalf("call %d outcome %v", i, out)
		}
	}
	if evals != 3 {
		t.Fatalf("evals = %d, want 3", evals)
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("zero-TTL cache retained %d entries", st.Size)
	}
}

func TestSharedCacheReserveRejected(t *testing.T) {
	clk := newManualClock()
	c := NewSharedCache(clk, time.Minute)
	res, out := c.Do("k", func() bool { return false }, func() assertion.Result {
		t.Fatal("eval ran despite rejected reservation")
		return assertion.Result{}
	})
	if out != OutcomeRejected {
		t.Fatalf("outcome %v, want rejected", out)
	}
	if res.CheckID != "" {
		t.Fatalf("rejected call returned a result: %+v", res)
	}
	if st := c.Stats(); st.Size != 0 || st.Evaluations != 0 {
		t.Fatalf("stats after rejection = %+v", st)
	}
	// The key must not be poisoned: a funded caller evaluates normally.
	if _, out := c.Do("k", func() bool { return true }, func() assertion.Result { return passResult("v") }); out != OutcomeEvaluated {
		t.Fatalf("post-rejection outcome %v", out)
	}
}

// Regression for unbounded growth: one-off keys are never requested
// again, so lazy same-key eviction alone kept them for the life of the
// Manager. The opportunistic sweep must reclaim them within one TTL
// period even when the map never reaches sweepThreshold, and a later
// request on an unrelated key is enough to trigger it.
func TestSharedCacheSweepsOneOffKeysAfterTTL(t *testing.T) {
	clk := newManualClock()
	c := NewSharedCache(clk, time.Minute)
	for i := 0; i < 100; i++ {
		key := "one-off-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		c.Do(key, nil, func() assertion.Result { return passResult("v") })
	}
	if got := c.Stats().Size; got != 100 {
		t.Fatalf("size before TTL = %d, want 100", got)
	}
	clk.Advance(2 * time.Minute)
	c.Do("fresh", nil, func() assertion.Result { return passResult("v") })
	if got := c.Stats().Size; got != 1 {
		t.Fatalf("size after TTL sweep = %d, want 1 (only the fresh entry)", got)
	}
	if ev := c.Stats().Evictions; ev < 100 {
		t.Fatalf("evictions = %d, want >= 100", ev)
	}
}
