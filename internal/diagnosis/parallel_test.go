package diagnosis

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
)

// newSyntheticEngine builds an engine over hand-made trees and checks
// (the cloud exists only to satisfy the evaluator plumbing; synthetic
// checks never call it).
func newSyntheticEngine(t *testing.T, opts Options, trees []*faulttree.Tree, checks ...assertion.Check) *Engine {
	t.Helper()
	clk := clock.NewScaled(1000, time.Date(2013, 11, 19, 11, 48, 0, 0, time.UTC))
	cloud := simaws.New(clk, simaws.FastProfile(), simaws.WithSeed(7))
	client := consistentapi.New(cloud, consistentapi.Config{MaxAttempts: 1, CallTimeout: time.Second})
	reg := assertion.NewRegistry()
	for _, c := range checks {
		reg.Register(c)
	}
	repo := faulttree.NewRepository()
	for _, tr := range trees {
		if err := tr.Validate(reg); err != nil {
			t.Fatal(err)
		}
		repo.Register(tr)
	}
	cat, err := repo.Compile()
	if err != nil {
		t.Fatal(err)
	}
	eval := assertion.NewEvaluator(client, reg, nil)
	return NewEngine(cat, eval, nil, opts)
}

func failCheck(id string) assertion.Check {
	return assertion.Check{ID: id, Description: id, Eval: func(ctx context.Context, _ *consistentapi.Client, p assertion.Params) assertion.Result {
		return assertion.Result{CheckID: id, Status: assertion.StatusFail, Params: p, Message: "fault present"}
	}}
}

func passCheck(id string) assertion.Check {
	return assertion.Check{ID: id, Description: id, Eval: func(ctx context.Context, _ *consistentapi.Client, p assertion.Params) assertion.Result {
		return assertion.Result{CheckID: id, Status: assertion.StatusPass, Params: p, Message: "no fault"}
	}}
}

// Regression for the double-instantiation bug: Diagnose used to build and
// prune every selected tree twice (once to count potential faults, once
// to walk).
func TestTreesInstantiatedOncePerRun(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	counts := make(map[string]int)
	e.engine.testHookInstantiate = func(treeID string) { counts[treeID]++ }
	e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))
	if len(counts) == 0 {
		t.Fatal("no trees instantiated")
	}
	for id, n := range counts {
		if n != 1 {
			t.Errorf("tree %s instantiated %d times, want 1", id, n)
		}
	}
}

// Regression for the confirm-dedup bug: catalog sub-trees shared across
// fault trees (same instantiated description, suffixed node ids) used to
// yield the same confirmed root cause once per tree.
func TestConfirmDedupAcrossSharedSubtrees(t *testing.T) {
	mkTree := func(treeID, nodeSuffix string) *faulttree.Tree {
		return &faulttree.Tree{
			ID: treeID, AssertionID: "shared-assert",
			Root: &faulttree.Node{
				ID: treeID + "-top", Description: "top event",
				Children: []*faulttree.Node{{
					ID:          "shared-fault-" + nodeSuffix,
					Description: "shared catalog fault on {asg}",
					CheckID:     "always-fail",
					RootCause:   true,
				}},
			},
		}
	}
	e := newSyntheticEngine(t, Options{ContinueAfterConfirm: true},
		[]*faulttree.Tree{mkTree("t1", "a"), mkTree("t2", "b")},
		failCheck("always-fail"))
	d := e.Diagnose(context.Background(), Request{
		AssertionID: "shared-assert", Source: SourceAssertion,
		Params: assertion.Params{"asg": "demo-asg"},
	})
	if len(d.RootCauses) != 1 {
		t.Fatalf("root causes = %+v, want the shared fault exactly once", d.RootCauses)
	}
	if d.RootCauses[0].Description != "shared catalog fault on demo-asg" {
		t.Fatalf("cause = %+v", d.RootCauses[0])
	}
}

// Regression for indistinguishable budget exhaustion: synthetic
// StatusError results now carry the ErrBudgetExhausted sentinel and bump
// a dedicated counter; genuine test errors do not match.
func TestBudgetExhaustedSentinel(t *testing.T) {
	leaves := make([]*faulttree.Node, 3)
	for i := range leaves {
		leaves[i] = &faulttree.Node{
			ID:          fmt.Sprintf("leaf-%d", i),
			Description: fmt.Sprintf("fault %d", i),
			CheckID:     "always-pass",
			CheckParams: assertion.Params{"which": fmt.Sprintf("%d", i)},
			RootCause:   true,
			Prob:        float64(3 - i),
		}
	}
	tree := &faulttree.Tree{
		ID: "budget", AssertionID: "budget-assert",
		Root: &faulttree.Node{ID: "top", Description: "top", Children: leaves},
	}
	e := newSyntheticEngine(t, Options{MaxTests: 1, ContinueAfterConfirm: true},
		[]*faulttree.Tree{tree}, passCheck("always-pass"))

	before := mBudgetExhausted.Value()
	d := e.Diagnose(context.Background(), Request{AssertionID: "budget-assert", Source: SourceAssertion})
	if len(d.TestsRun) != 1 {
		t.Fatalf("TestsRun = %d, want 1 (budget)", len(d.TestsRun))
	}
	if got := mBudgetExhausted.Value() - before; got != 2 {
		t.Errorf("budget-exhausted counter advanced by %v, want 2", got)
	}
	if d.Excluded != 1 {
		t.Errorf("excluded = %d, want only the funded test's leaf", d.Excluded)
	}

	res := budgetExhaustedResult("always-pass", nil)
	if !IsBudgetExhausted(res) {
		t.Error("synthetic budget result not recognized")
	}
	genuine := assertion.Result{Status: assertion.StatusError, Err: "assertion: unknown check id"}
	if IsBudgetExhausted(genuine) {
		t.Error("genuine error misclassified as budget exhaustion")
	}
}

// The parallel walk must commit exactly the sequential walk's result —
// probability order stays a preference and the first-confirmation latch
// holds across goroutines.
func TestParallelWalkMatchesSequential(t *testing.T) {
	e := newDiagEnv(t, 1, Options{})
	wrongAMI, _ := e.cloud.RegisterImage(e.ctx, "rogue", "v9", nil)
	_ = e.cloud.CreateLaunchConfiguration(e.ctx, simaws.LaunchConfig{
		Name: "rogue-lc", ImageID: wrongAMI, KeyName: e.cluster.KeyName,
		SecurityGroups: []string{e.cluster.SGName}, InstanceType: "m1.small",
	})
	_ = e.cloud.UpdateAutoScalingGroup(e.ctx, e.cluster.ASGName, "rogue-lc", -1, -1, -1)

	seq := e.engine.Diagnose(e.ctx, e.request(process.StepNewReady))
	par := NewEngine(faulttree.DefaultCatalog(), e.eval, e.bus, Options{Workers: 8}).
		Diagnose(e.ctx, e.request(process.StepNewReady))

	if par.Conclusion != seq.Conclusion {
		t.Fatalf("conclusion: parallel %s vs sequential %s", par.Conclusion, seq.Conclusion)
	}
	if len(par.RootCauses) != len(seq.RootCauses) {
		t.Fatalf("causes: parallel %+v vs sequential %+v", par.RootCauses, seq.RootCauses)
	}
	for i := range seq.RootCauses {
		if par.RootCauses[i] != seq.RootCauses[i] {
			t.Errorf("cause %d: parallel %+v vs sequential %+v", i, par.RootCauses[i], seq.RootCauses[i])
		}
	}
	if par.Excluded != seq.Excluded {
		t.Errorf("excluded: parallel %d vs sequential %d", par.Excluded, seq.Excluded)
	}
	if par.PotentialFaults != seq.PotentialFaults {
		t.Errorf("potential: parallel %d vs sequential %d", par.PotentialFaults, seq.PotentialFaults)
	}
	// Speculation may run extra tests, never fewer than the budget allows.
	if len(par.TestsRun) < len(seq.TestsRun) {
		t.Errorf("parallel ran fewer tests (%d) than sequential (%d)", len(par.TestsRun), len(seq.TestsRun))
	}
}

// Concurrent parallel walks on one engine must be race-clean (run with
// -race) and agree on the conclusion for a fixed fault.
func TestConcurrentParallelDiagnoses(t *testing.T) {
	e := newDiagEnv(t, 1, Options{Workers: 4})
	e.cloud.SetELBServiceDisruption(true)

	const n = 6
	var wg sync.WaitGroup
	results := make([]*Diagnosis, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.engine.Diagnose(e.ctx, e.request(process.StepDeregister))
		}(i)
	}
	wg.Wait()
	for i, d := range results {
		if d == nil {
			t.Fatalf("diagnosis %d missing", i)
		}
		if !d.HasCause("elb-unreachable") {
			t.Errorf("diagnosis %d: causes %+v, want elb-unreachable", i, d.RootCauses)
		}
	}
}
