package diagnosis

import (
	"context"
	"fmt"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/simaws"
)

// benchScale compresses the simulated diagnosis-test latency; at 100x the
// 200ms-sim slow check costs 2ms of wall clock, so sequential vs parallel
// walk time differences dominate the measurement.
const benchScale = 100

// benchWorkload builds a wide multi-tree workload: trees× leaves
// root-cause candidates, each guarded by a slow passing check with
// distinct params (so no two tests share a cache key).
func benchWorkload(trees, leaves int) []*faulttree.Tree {
	out := make([]*faulttree.Tree, trees)
	for ti := 0; ti < trees; ti++ {
		children := make([]*faulttree.Node, leaves)
		for li := 0; li < leaves; li++ {
			children[li] = &faulttree.Node{
				ID:          fmt.Sprintf("t%d-leaf-%d", ti, li),
				Description: fmt.Sprintf("candidate fault %d of tree %d", li, ti),
				CheckID:     "slow-pass",
				CheckParams: assertion.Params{"which": fmt.Sprintf("t%d-l%d", ti, li)},
				RootCause:   true,
				Prob:        float64(leaves - li),
			}
		}
		out[ti] = &faulttree.Tree{
			ID: fmt.Sprintf("bench-%d", ti), AssertionID: "bench-assert",
			Root: &faulttree.Node{ID: fmt.Sprintf("bench-%d-top", ti), Description: "top", Children: children},
		}
	}
	return out
}

func newBenchEngine(b *testing.B, opts Options, profile simaws.Profile, trees []*faulttree.Tree) *Engine {
	b.Helper()
	clk := clock.NewScaled(benchScale, time.Date(2013, 11, 19, 11, 48, 0, 0, time.UTC))
	cloud := simaws.New(clk, profile, simaws.WithSeed(7))
	client := consistentapi.New(cloud, consistentapi.Config{MaxAttempts: 1, CallTimeout: time.Minute})
	reg := assertion.NewRegistry()
	reg.Register(assertion.Check{
		ID: "slow-pass", Description: "slow diagnostic check",
		Eval: func(ctx context.Context, c *consistentapi.Client, p assertion.Params) assertion.Result {
			_ = c.Clock().Sleep(ctx, 200*time.Millisecond)
			return assertion.Result{CheckID: "slow-pass", Status: assertion.StatusPass, Params: p, Message: "ok"}
		},
	})
	repo := faulttree.NewRepository()
	for _, t := range trees {
		repo.Register(t)
	}
	cat, err := repo.Compile()
	if err != nil {
		b.Fatal(err)
	}
	return NewEngine(cat, assertion.NewEvaluator(client, reg, nil), nil, opts)
}

func runDiagnoseBench(b *testing.B, opts Options, profile simaws.Profile) {
	e := newBenchEngine(b, opts, profile, benchWorkload(3, 8))
	req := Request{AssertionID: "bench-assert", Source: SourceAssertion, Params: assertion.Params{}}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := e.Diagnose(ctx, req)
		if d.Conclusion != ConclusionNone {
			b.Fatalf("unexpected conclusion %s", d.Conclusion)
		}
	}
}

// BenchmarkDiagnoseSequential is the paper's one-test-at-a-time walk over
// the wide workload; every one of the 24 slow tests runs back to back.
func BenchmarkDiagnoseSequential(b *testing.B) {
	runDiagnoseBench(b, Options{Workers: 1, DisableSharedCache: true}, simaws.FastProfile())
}

// BenchmarkDiagnoseParallel fans the same workload out across 8 walk
// goroutines; acceptance asks for >= 2x lower wall time than sequential.
func BenchmarkDiagnoseParallel(b *testing.B) {
	runDiagnoseBench(b, Options{Workers: 8, DisableSharedCache: true}, simaws.FastProfile())
}

// BenchmarkDiagnoseParallelSharedCache adds the cross-run shared cache
// under a profile whose consistency window is non-zero, so back-to-back
// runs answer most tests from cache.
func BenchmarkDiagnoseParallelSharedCache(b *testing.B) {
	profile := simaws.FastProfile()
	profile.StaleProb = 0.05
	profile.StaleLag = clock.Fixed(10 * time.Second)
	runDiagnoseBench(b, Options{Workers: 8}, profile)
}
