package experiment

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/chaos"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/obs"
)

// acceptanceChaos is the issue's acceptance regime: drop 10%, duplicate
// 5%, reorder 10%, periodic RequestLimitExceeded storms against the
// monitoring plane's API reads. Seed 0 inherits the run seed, so every
// run's chaos is reproducible.
func acceptanceChaos() *chaos.Profile {
	return &chaos.Profile{
		Name:     "acceptance",
		DropProb: 0.10, DupProb: 0.05, ReorderProb: 0.10,
		MaxDelay:      2 * time.Second,
		StormInterval: 60 * time.Second, StormDuration: 5 * time.Second,
	}
}

func chaosCfg() Config {
	cfg := fastCfg()
	cfg.Chaos = acceptanceChaos()
	return cfg
}

// sloCounts sums the time-to-diagnosis SLO histogram observations for
// the acceptance chaos label across both degraded states. Redeclaring
// the families against obs.Default returns the live series the engine
// observes into.
func sloCounts() (detection, diagnosisLat uint64) {
	det := obs.Default.HistogramVec("pod_slo_detection_latency_seconds", "", nil, "degraded", "chaos")
	diag := obs.Default.HistogramVec("pod_slo_diagnosis_latency_seconds", "", nil, "degraded", "chaos")
	for _, degraded := range []string{"false", "true"} {
		detection += det.With(degraded, "acceptance").Count()
		diagnosisLat += diag.With(degraded, "acceptance").Count()
	}
	return detection, diagnosisLat
}

// TestChaosAllFaultKindsStillDiagnosed is the chaos acceptance gate (run
// by the CI chaos smoke job with -race): with the log pipeline lossy and
// the monitoring plane's API reads stormed, every one of the paper's 8
// fault kinds must still be detected and its root cause identified —
// possibly with degraded confidence, but never wrongly with full
// confidence.
func TestChaosAllFaultKindsStillDiagnosed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance campaign is slow")
	}
	for i, kind := range faultinject.AllKinds() {
		kind := kind
		spec := RunSpec{
			ID: i, Fault: kind, ClusterSize: 2,
			Seed:        int64(100 + 7*i),
			InjectDelay: time.Second,
		}
		t.Run(kind.String(), func(t *testing.T) {
			// Same uninformative-run retry as the heal gate: a run where the
			// injected fault produced no detections at all (the flip lost its
			// scheduling race) or no sound confirmation (only
			// degraded-evidence conclusions from a starved diagnosis plane)
			// restates the box's scheduling, not the plane's ability; rerun
			// it. A genuine regression reproduces on every attempt.
			var res *RunResult
			var err error
			var detBefore, diagBefore uint64
			for attempt := 0; attempt < 3; attempt++ {
				detBefore, diagBefore = sloCounts()
				res, err = RunOne(context.Background(), spec, chaosCfg())
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Detections) > 0 && (res.FaultDiagnosed || !onlyDegradedConfirmations(res)) {
					break
				}
				t.Logf("attempt %d: no sound confirmation of the injected cause (%d detections); rerunning",
					attempt+1, len(res.Detections))
			}
			if !res.FaultDetected {
				t.Fatalf("fault undetected under chaos; detections: %+v", res.Detections)
			}
			if !res.FaultDiagnosed {
				t.Errorf("fault detected but root cause not identified under chaos; detections: %+v", res.Detections)
			}
			for _, d := range res.Detections {
				// The CI gate: chaos may degrade a diagnosis, never forge a
				// confident wrong one.
				if d.Attribution == "unattributed" && d.Conclusion == diagnosis.ConclusionIdentified && !d.Degraded {
					t.Errorf("non-degraded wrong diagnosis under chaos: %+v", d)
				}
			}
			// Evidence acceptance: every confirmed cause must chain back
			// through its timeline parents to a raw log event, even with
			// the log pipeline dropping and duplicating under it.
			if res.BrokenEvidenceChains != 0 {
				t.Errorf("%d confirmed cause(s) with broken evidence chains under chaos", res.BrokenEvidenceChains)
			}
			if res.FaultDiagnosed && res.ConfirmedCauseChains == 0 {
				t.Errorf("fault diagnosed but no confirmed-cause evidence chain reaches a log event")
			}
			// SLO acceptance: the run must have observed event->detection
			// latency, and — when a cause was confirmed — detection->cause
			// latency, under the chaos-profile label.
			detAfter, diagAfter := sloCounts()
			if detAfter <= detBefore {
				t.Errorf("pod_slo_detection_latency_seconds did not grow (before=%d after=%d)", detBefore, detAfter)
			}
			if res.FaultDiagnosed && diagAfter <= diagBefore {
				t.Errorf("pod_slo_diagnosis_latency_seconds did not grow (before=%d after=%d)", diagBefore, diagAfter)
			}
		})
	}
}

// TestChaosCleanRunNoConfidentFalsePositive runs a clean (fault-free)
// upgrade under the acceptance chaos regime: dropped log events may
// produce degraded detections, but a full-confidence identified root
// cause on a healthy operation would be the harness catching its own
// monitoring plane lying.
func TestChaosCleanRunNoConfidentFalsePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is slow")
	}
	// Starvation on an oversubscribed box can slip an assertion probe out
	// of its scheduled window into a moment where the probed condition
	// transiently and genuinely holds (a replacement mid-boot is not yet
	// registered with the ELB), which then confirms at full confidence.
	// Such a run restates the box's scheduling, not the plane's honesty;
	// retry it. A monitoring plane that actually lies on clean runs does
	// so on every attempt and still fails the gate.
	var res *RunResult
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		res, err = RunOne(context.Background(), RunSpec{ID: 90, ClusterSize: 2, Seed: 907}, chaosCfg())
		if err != nil {
			t.Fatal(err)
		}
		if res.UpgradeErr != "" {
			t.Fatalf("chaos leaked into the operation plane: %s", res.UpgradeErr)
		}
		confident := false
		for _, d := range res.Detections {
			if d.Conclusion == diagnosis.ConclusionIdentified && !d.Degraded {
				confident = true
			}
		}
		if !confident {
			break
		}
		t.Logf("attempt %d: confident diagnosis on a clean run (%d detections); rerunning", attempt+1, len(res.Detections))
	}
	for _, d := range res.Detections {
		if d.Conclusion == diagnosis.ConclusionIdentified && !d.Degraded {
			t.Errorf("non-degraded identified diagnosis on clean chaotic run: %+v", d)
		}
	}
}
