// Scenario lanes: evaluation runs for the operations beyond rolling
// upgrade. Each lane builds a Manager wired for its scenario — the
// scenario's process model, its assertion specification, and the full
// plan catalog (compiled fault trees plus the declarative scenario
// plans) — and drives the corresponding orchestrator from
// internal/upgrade while injecting the scenario's ground truth.
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"poddiagnosis/internal/core"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/upgrade"
)

// scenarioManager returns a ManagerConfig mutator selecting the
// scenario's model and spec, and widening the plan catalog to the full
// one. Step-context pruning keeps the catalogs from bleeding into each
// other: compiled rolling-upgrade trees scope their collectors to
// step2..step8, the scenario plans to bgstepN/ssstepN.
func scenarioManager(model *process.Model, specText string) func(*core.ManagerConfig) {
	return func(mc *core.ManagerConfig) {
		mc.Model = model
		mc.AssertionSpec = specText
		mc.Plans = faulttree.FullCatalog()
	}
}

// RunBlueGreenOne executes one blue/green evaluation run on a fresh
// lane: deploy the blue cluster, start a blue/green deploy to v2 with
// POD watching the green group, inject spec.Fault (and interferences)
// against the green resources, and classify the detections against the
// same ground truth as a rolling-upgrade run — the 8 fault kinds strike
// the green fleet through the identical cloud APIs.
func RunBlueGreenOne(ctx context.Context, spec RunSpec, cfg Config) (*RunResult, error) {
	l, err := newLane(cfg, spec.Seed, scenarioManager(process.BlueGreenModel(), process.BlueGreenSpecText))
	if err != nil {
		return nil, fmt.Errorf("experiment: blue/green run %d: %w", spec.ID, err)
	}
	defer l.close()
	return l.runBlueGreen(ctx, spec, "bg")
}

func (l *lane) runBlueGreen(ctx context.Context, spec RunSpec, appName string) (*RunResult, error) {
	runStart := l.clk.Now()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	cluster, err := upgrade.Deploy(ctx, l.cloud, appName, spec.ClusterSize, "v1")
	if err != nil {
		return nil, fmt.Errorf("experiment: blue/green run %d: %w", spec.ID, err)
	}
	if err := cluster.WaitReady(ctx, l.cloud, 10*time.Minute); err != nil {
		return nil, fmt.Errorf("experiment: blue/green run %d: %w", spec.ID, err)
	}
	newAMI, err := l.cloud.RegisterImage(ctx, appName+"-v2", "v2", upgrade.AppServices)
	if err != nil {
		return nil, fmt.Errorf("experiment: blue/green run %d: %w", spec.ID, err)
	}

	taskID := fmt.Sprintf("bluegreen %s run-%d", cluster.ASGName, spec.ID)
	bgSpec := upgrade.BlueGreenSpec{
		TaskID:      taskID,
		BlueASGName: cluster.ASGName,
		ELBName:     cluster.ELBName,
		NewImageID:  newAMI,
		NewVersion:  "v2",
		KeyName:     cluster.KeyName,
		SGName:      cluster.SGName,
		Size:        spec.ClusterSize,
		WaitTimeout: replacementBudget(l.profile),
	}
	green := bgSpec.GreenCluster(appName, "v2")

	sess, err := l.mgr.Watch(core.Expectation{
		ASGName:      green.ASGName,
		ELBName:      green.ELBName,
		NewImageID:   newAMI,
		NewVersion:   "v2",
		NewLCName:    green.LCName,
		KeyName:      green.KeyName,
		SGName:       green.SGName,
		InstanceType: "m1.small",
		ClusterSize:  spec.ClusterSize,
	}, core.BindInstance(taskID), core.WithSessionID(fmt.Sprintf("bg-run-%d", spec.ID)))
	if err != nil {
		return nil, fmt.Errorf("experiment: blue/green run %d: %w", spec.ID, err)
	}

	// The injectors target the GREEN resources: the configuration flips
	// rewrite the green group's launch configuration, the deletions pull
	// the resources the green fleet launches from.
	injector := faultinject.NewInjector(l.cloud, green, spec.Seed^0xfa17)
	injectDone := make(chan struct{})
	go func() {
		defer close(injectDone)
		if spec.Fault != 0 {
			delay := spec.InjectDelay
			if delay <= 0 {
				delay = time.Duration(5+rng.Intn(40)) * time.Second
			}
			_ = injector.Inject(ctx, spec.Fault, delay, green.LCName, newAMI)
		}
	}()
	interfDone := make(chan struct{})
	go func() {
		defer close(interfDone)
		for _, i := range spec.Interferences {
			delay := time.Duration(20+rng.Intn(120)) * time.Second
			_ = injector.Interfere(ctx, i, delay)
		}
	}()

	up := upgrade.NewUpgrader(l.cloud, l.bus)
	rep := up.RunBlueGreen(ctx, bgSpec)
	<-injectDone
	<-interfDone

	_ = l.clk.Sleep(ctx, 30*time.Second)
	l.mgr.Drain(ctx, 10*time.Minute)

	res := &RunResult{Spec: spec, SimDuration: l.clk.Since(runStart)}
	if rep.Err != nil {
		res.UpgradeErr = rep.Err.Error()
	}
	classify(res, sess.Detections())
	verifyEvidenceChains(res, sess.Timeline())

	l.mgr.Remove(sess.ID())
	injector.Heal()
	_ = l.cloud.DeleteAutoScalingGroup(ctx, green.ASGName)
	_ = l.cloud.DeleteAutoScalingGroup(ctx, cluster.ASGName)
	l.awaitTeardown(ctx)
	return res, nil
}

// RunSpotStormOne executes one spot-interruption evaluation run on a
// fresh lane: deploy a cluster, start a spot-rebalance watch with POD
// watching the group, reclaim spec.StormCount instances through the
// plain termination API (the "operator" audit principal), and require
// the drop to be diagnosed as unexpected-termination. The lane enables
// the cloud's audit trail — without it the no-external-termination test
// is inconclusive, exactly the paper's §V.B limitation.
func RunSpotStormOne(ctx context.Context, spec RunSpec, cfg Config) (*RunResult, error) {
	if len(spec.ExpectedCauses) == 0 {
		spec.ExpectedCauses = []string{"unexpected-termination"}
	}
	l, err := newLane(cfg, spec.Seed, scenarioManager(process.SpotRebalanceModel(), process.SpotRebalanceSpecText))
	if err != nil {
		return nil, fmt.Errorf("experiment: spot run %d: %w", spec.ID, err)
	}
	defer l.close()
	return l.runSpotStorm(ctx, spec, "spot")
}

// StormCount is carried in RunSpec metadata-free form: the storm size is
// derived from the cluster so campaigns stay a single spec type.
func stormSize(spec RunSpec) int {
	if spec.ClusterSize <= 2 {
		return 1
	}
	return spec.ClusterSize / 2
}

func (l *lane) runSpotStorm(ctx context.Context, spec RunSpec, appName string) (*RunResult, error) {
	runStart := l.clk.Now()

	// An idealized instant CloudTrail; the audit-staleness ablations live
	// in the assertion-library tests.
	l.cloud.EnableAuditTrail(0)

	cluster, err := upgrade.Deploy(ctx, l.cloud, appName, spec.ClusterSize, "v1")
	if err != nil {
		return nil, fmt.Errorf("experiment: spot run %d: %w", spec.ID, err)
	}
	if err := cluster.WaitReady(ctx, l.cloud, 10*time.Minute); err != nil {
		return nil, fmt.Errorf("experiment: spot run %d: %w", spec.ID, err)
	}

	taskID := fmt.Sprintf("spotwatch %s run-%d", cluster.ASGName, spec.ID)
	sess, err := l.mgr.Watch(core.Expectation{
		ASGName:      cluster.ASGName,
		ELBName:      cluster.ELBName,
		NewImageID:   cluster.ImageID,
		NewVersion:   cluster.Version,
		NewLCName:    cluster.LCName,
		KeyName:      cluster.KeyName,
		SGName:       cluster.SGName,
		InstanceType: "m1.small",
		ClusterSize:  spec.ClusterSize,
	}, core.BindInstance(taskID), core.WithSessionID(fmt.Sprintf("spot-run-%d", spec.ID)))
	if err != nil {
		return nil, fmt.Errorf("experiment: spot run %d: %w", spec.ID, err)
	}

	injector := faultinject.NewInjector(l.cloud, cluster, spec.Seed^0xfa17)
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		delay := spec.InjectDelay
		if delay <= 0 {
			delay = 20 * time.Second
		}
		_ = injector.Storm(ctx, stormSize(spec), delay, 15*time.Second)
	}()

	// The rebalance watch window must outlast the worst-case replacement
	// of the storm's reclaimed instances; see replacementBudget.
	window := 4 * time.Minute
	if b := replacementBudget(l.profile); b > window {
		window = b
	}
	up := upgrade.NewUpgrader(l.cloud, l.bus)
	rep := up.RunSpotRebalance(ctx, upgrade.SpotRebalanceSpec{
		TaskID:  taskID,
		ASGName: cluster.ASGName,
		ELBName: cluster.ELBName,
		Size:    spec.ClusterSize,
		Window:  window,
	})
	<-stormDone

	_ = l.clk.Sleep(ctx, 30*time.Second)
	l.mgr.Drain(ctx, 10*time.Minute)

	res := &RunResult{Spec: spec, SimDuration: l.clk.Since(runStart)}
	if rep.Err != nil {
		res.UpgradeErr = rep.Err.Error()
	}
	classify(res, sess.Detections())
	verifyEvidenceChains(res, sess.Timeline())

	l.mgr.Remove(sess.ID())
	injector.Heal()
	_ = l.cloud.DeleteAutoScalingGroup(ctx, cluster.ASGName)
	l.awaitTeardown(ctx)
	return res, nil
}

// awaitTeardown waits until every instance of the lane's cloud is dead,
// freeing the account-wide instance limit for the next run.
func (l *lane) awaitTeardown(ctx context.Context) {
	deadline := l.clk.Now().Add(teardownBudget(l.profile))
	for l.clk.Now().Before(deadline) {
		insts, err := l.cloud.DescribeInstances(ctx)
		if err != nil {
			return
		}
		live := 0
		for i := range insts {
			if insts[i].Live() {
				live++
			}
		}
		if live == 0 {
			return
		}
		if l.clk.Sleep(ctx, 5*time.Second) != nil {
			return
		}
	}
}
