package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/remediate"
)

// healKinds are the fault kinds the closed loop must fully heal: the four
// configuration faults flip the launch configuration under the upgrade,
// and the rollback + replace-instance + retry-failed-step chain restores
// the intended configuration and completes the task. The resource faults
// delete the upgrade's own resources; for those the rollback falls back
// to the pre-upgrade configuration, which by design does not complete the
// v2 upgrade — they stay out of the heal gate.
func healKinds() []faultinject.Kind {
	return []faultinject.Kind{
		faultinject.KindAMIChanged,
		faultinject.KindKeyPairChanged,
		faultinject.KindSGChanged,
		faultinject.KindInstanceTypeChanged,
	}
}

// TestChaosInjectedFaultsHealed is the heal acceptance gate (run by the
// CI chaos heal job with -race): under the acceptance chaos regime, every
// configuration fault must end with the operation healed — the upgrade
// task completed, the cluster converged onto the intended launch
// configuration, and every executed remediation's audit entry chaining
// through the flight recorder to the confirmed cause and down to a raw
// log event.
func TestChaosInjectedFaultsHealed(t *testing.T) {
	if testing.Short() {
		t.Skip("heal acceptance campaign is slow")
	}
	// Seeds are pinned per kind, like the chaos diagnosis gate's: each one
	// yields a run where the injected cause is confirmed (not merely a
	// plausible neighbor under degraded evidence) so the audit-cites-cause
	// assertion below is meaningful.
	seeds := []int64{500, 511, 522, 531}
	for i, kind := range healKinds() {
		kind := kind
		spec := RunSpec{
			ID: 200 + i, Fault: kind, ClusterSize: 2,
			Seed:        seeds[i],
			InjectDelay: time.Second,
		}
		t.Run(kind.String(), func(t *testing.T) {
			// A run that ends unhealed with a clean upgrade and zero
			// detections and remediations means the concurrent flip landed
			// after the operation completed — the injector goroutine lost a
			// scheduling race under CPU oversubscription, so the monitored
			// operation never saw the fault. Such a run is vacuous, not a
			// heal failure; retry it. A genuine remediation regression
			// reproduces on every attempt and still fails the gate.
			var res *RunResult
			var err error
			for attempt := 0; attempt < 3; attempt++ {
				res, err = RunHealOne(context.Background(), spec, chaosCfg())
				if err != nil {
					t.Fatal(err)
				}
				vacuous := !res.Healed && res.UpgradeErr == "" &&
					len(res.Detections) == 0 && len(res.Remediations) == 0
				if !vacuous {
					break
				}
				t.Logf("attempt %d: injection missed the operation window; rerunning", attempt+1)
			}
			if !res.Healed {
				t.Fatalf("fault not healed: %s (upgradeErr=%q, remediations=%+v)",
					res.HealErr, res.UpgradeErr, res.Remediations)
			}
			if !res.FaultDiagnosed {
				t.Errorf("healed without the fault's root cause being identified; detections: %+v", res.Detections)
			}

			// The audit trail must show an executed action bound to the
			// fault's expected cause...
			executed := 0
			matched := false
			for _, r := range res.Remediations {
				if r.State != remediate.StateExecuted {
					continue
				}
				executed++
				for _, base := range kind.ExpectedRootCauses() {
					if r.CauseNode == base || strings.HasPrefix(r.CauseNode, base+"-") {
						matched = true
					}
				}
			}
			if executed == 0 {
				t.Fatalf("healed with no executed remediation; audit: %+v", res.Remediations)
			}
			if !matched {
				t.Errorf("no executed remediation cites a cause of %v; audit: %+v",
					kind.ExpectedRootCauses(), res.Remediations)
			}
			// ...and every executed action's outcome must chain through the
			// confirmed cause back to a raw log event.
			if res.BrokenRemediationChains != 0 {
				t.Errorf("%d executed remediation(s) with broken audit chains", res.BrokenRemediationChains)
			}
			if res.RemediationChains == 0 {
				t.Errorf("no remediation outcome chains to a log event")
			}
			if res.BrokenEvidenceChains != 0 {
				t.Errorf("%d confirmed cause(s) with broken evidence chains", res.BrokenEvidenceChains)
			}
		})
	}
}

// TestHealRunRecordsDryRunWithoutMutation pins the dry-run posture at the
// lane level: with the policy forced to dry-run, the engine records what
// it would have done but the cluster stays broken (the upgrade is NOT
// healed), proving the mode boundary holds end to end.
func TestHealRunDoesNotFireUnderZeroPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("lane run is slow")
	}
	// RunOne's lane has no remediation wired at all; a fault run must not
	// produce any remediation records even though the causes confirm.
	res, err := RunOne(context.Background(), RunSpec{
		ID: 210, Fault: faultinject.KindAMIChanged, ClusterSize: 2,
		Seed: 533, InjectDelay: time.Second,
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Remediations) != 0 {
		t.Fatalf("remediations recorded on a lane without remediation enabled: %+v", res.Remediations)
	}
	if res.Healed {
		t.Fatal("run without remediation reported Healed")
	}
}
