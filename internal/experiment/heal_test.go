package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/remediate"
)

// healKinds are the fault kinds the closed loop must fully heal: the four
// configuration faults flip the launch configuration under the upgrade,
// and the rollback + replace-instance + retry-failed-step chain restores
// the intended configuration and completes the task. The resource faults
// delete the upgrade's own resources; for those the rollback falls back
// to the pre-upgrade configuration, which by design does not complete the
// v2 upgrade — they stay out of the heal gate.
func healKinds() []faultinject.Kind {
	return []faultinject.Kind{
		faultinject.KindAMIChanged,
		faultinject.KindKeyPairChanged,
		faultinject.KindSGChanged,
		faultinject.KindInstanceTypeChanged,
	}
}

// onlyDegradedConfirmations reports whether every detection that
// confirmed any root cause did so on evidence the monitoring plane
// itself flagged Degraded (gaps declared while the diagnosis ran). A run
// with no confirmations at all is vacuously true.
func onlyDegradedConfirmations(res *RunResult) bool {
	for _, d := range res.Detections {
		if len(d.Causes) > 0 && !d.Degraded {
			return false
		}
	}
	return true
}

// executedCleanly reports whether the run executed at least one
// remediation and every executed one resolved without error.
func executedCleanly(res *RunResult) bool {
	executed := 0
	for _, r := range res.Remediations {
		if r.State != remediate.StateExecuted {
			continue
		}
		executed++
		if r.Error != "" {
			return false
		}
	}
	return executed > 0
}

// TestChaosInjectedFaultsHealed is the heal acceptance gate (run by the
// CI chaos heal job with -race): under the acceptance chaos regime, every
// configuration fault must end with the operation healed — the upgrade
// task completed, the cluster converged onto the intended launch
// configuration, and every executed remediation's audit entry chaining
// through the flight recorder to the confirmed cause and down to a raw
// log event.
func TestChaosInjectedFaultsHealed(t *testing.T) {
	if testing.Short() {
		t.Skip("heal acceptance campaign is slow")
	}
	// Seeds are pinned per kind, like the chaos diagnosis gate's: each one
	// yields a run where the injected cause is confirmed (not merely a
	// plausible neighbor under degraded evidence) so the audit-cites-cause
	// assertion below is meaningful.
	seeds := []int64{500, 511, 522, 531}
	for i, kind := range healKinds() {
		kind := kind
		spec := RunSpec{
			ID: 200 + i, Fault: kind, ClusterSize: 2,
			Seed:        seeds[i],
			InjectDelay: time.Second,
		}
		t.Run(kind.String(), func(t *testing.T) {
			// The pinned seeds guarantee a run where the injected cause is
			// confirmed on sound (non-degraded) evidence — but only when the
			// goroutines pacing the simulation get scheduled on time. Under
			// CPU oversubscription a run can instead end with the injected
			// cause never confirmed and nothing but degraded-evidence
			// conclusions to show: the flip landed after the instances it was
			// meant to corrupt had already launched (the run heals
			// trivially), or the starved diagnosis probes ran outside their
			// evidence windows and concluded nothing, or gaps declared during
			// the storm left only Degraded-flagged neighbor confirmations.
			// Such a run carries no information about the closed loop — the
			// plane itself marked its evidence untrustworthy — so it is
			// retried. The same goes for a run where the loop did everything
			// right — injected cause confirmed, every executed remediation
			// resolved clean — and the only failure is the simulated cloud
			// not delivering the relaunched replacements within the budget
			// while an API storm raged. A genuine detection or remediation
			// regression reproduces on every attempt and still fails the
			// gate; any other shape is judged as-is.
			var res *RunResult
			var err error
			for attempt := 0; attempt < 3; attempt++ {
				res, err = RunHealOne(context.Background(), spec, chaosCfg())
				if err != nil {
					t.Fatal(err)
				}
				noConfirmation := res.UpgradeErr == "" && !res.FaultDiagnosed &&
					onlyDegradedConfirmations(res)
				timedOut := strings.Contains(res.UpgradeErr, "timed out") ||
					strings.Contains(res.HealErr, "did not converge")
				starvedCloud := !res.Healed && timedOut && res.FaultDiagnosed && executedCleanly(res)
				if !noConfirmation && !starvedCloud {
					break
				}
				t.Logf("attempt %d: uninformative run (healed=%v, faultDiagnosed=%v, %d detections, %d remediation records, healErr=%q); rerunning",
					attempt+1, res.Healed, res.FaultDiagnosed, len(res.Detections), len(res.Remediations), res.HealErr)
			}
			if !res.Healed {
				t.Fatalf("fault not healed: %s (upgradeErr=%q, remediations=%+v)",
					res.HealErr, res.UpgradeErr, res.Remediations)
			}
			if !res.FaultDiagnosed {
				t.Errorf("healed without the fault's root cause being identified; detections: %+v", res.Detections)
			}

			// The audit trail must show an executed action bound to the
			// fault's expected cause...
			executed := 0
			matched := false
			for _, r := range res.Remediations {
				if r.State != remediate.StateExecuted {
					continue
				}
				executed++
				for _, base := range kind.ExpectedRootCauses() {
					if r.CauseNode == base || strings.HasPrefix(r.CauseNode, base+"-") {
						matched = true
					}
				}
			}
			if executed == 0 {
				t.Fatalf("healed with no executed remediation; audit: %+v", res.Remediations)
			}
			if !matched {
				t.Errorf("no executed remediation cites a cause of %v; audit: %+v",
					kind.ExpectedRootCauses(), res.Remediations)
			}
			// ...and every executed action's outcome must chain through the
			// confirmed cause back to a raw log event.
			if res.BrokenRemediationChains != 0 {
				t.Errorf("%d executed remediation(s) with broken audit chains", res.BrokenRemediationChains)
			}
			if res.RemediationChains == 0 {
				t.Errorf("no remediation outcome chains to a log event")
			}
			if res.BrokenEvidenceChains != 0 {
				t.Errorf("%d confirmed cause(s) with broken evidence chains", res.BrokenEvidenceChains)
			}
		})
	}
}

// TestHealRunRecordsDryRunWithoutMutation pins the dry-run posture at the
// lane level: with the policy forced to dry-run, the engine records what
// it would have done but the cluster stays broken (the upgrade is NOT
// healed), proving the mode boundary holds end to end.
func TestHealRunDoesNotFireUnderZeroPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("lane run is slow")
	}
	// RunOne's lane has no remediation wired at all; a fault run must not
	// produce any remediation records even though the causes confirm.
	res, err := RunOne(context.Background(), RunSpec{
		ID: 210, Fault: faultinject.KindAMIChanged, ClusterSize: 2,
		Seed: 533, InjectDelay: time.Second,
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Remediations) != 0 {
		t.Fatalf("remediations recorded on a lane without remediation enabled: %+v", res.Remediations)
	}
	if res.Healed {
		t.Fatal("run without remediation reported Healed")
	}
}
