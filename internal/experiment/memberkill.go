package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"poddiagnosis/internal/chaos"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/federate"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// fedLane is the federated variant of a lane: one simulated cloud and
// log bus shared by several federated Managers behind a Front, instead
// of the single-Manager substrate. The embedded lane carries the
// clock/cloud/profile plumbing (its mgr stays nil) so the convergence,
// retry-signal and teardown helpers are shared.
type fedLane struct {
	lane
	front   *federate.Front
	members []*federate.LocalMember
	// dead marks members whose Manager was stopped by Kill and not
	// replaced by Restart, so close does not double-stop it.
	dead map[string]bool

	ctlMu sync.Mutex
	ctls  map[string]*healController
}

// controllerFor hands every member the SAME healController for a given
// operation: remediation idempotency is per-operation, so the
// controller — like the ledger the snapshot carries — must survive the
// operation moving between members.
func (fl *fedLane) controllerFor(opID string) remediate.OperationController {
	return fl.healCtl(opID)
}

func (fl *fedLane) healCtl(opID string) *healController {
	fl.ctlMu.Lock()
	defer fl.ctlMu.Unlock()
	c := fl.ctls[opID]
	if c == nil {
		c = newHealController()
		fl.ctls[opID] = c
	}
	return c
}

// newFedLane builds the shared cloud plus memberIDs federated Managers
// joined to one front. Every Manager runs the full closed loop (default
// catalog under the suggested auto policy) and, under a chaos config,
// its own lossy log tap; the cloud-level API fault injector is shared.
func newFedLane(cfg Config, seed int64, memberIDs []string) (*fedLane, error) {
	cfg = cfg.withDefaults()
	clk := clock.NewScaled(cfg.Scale, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := calibratedProfile()
	if cfg.Profile != nil {
		profile = *cfg.Profile
	}
	cloudOpts := []simaws.Option{simaws.WithSeed(seed), simaws.WithBus(bus)}
	var chaosProfile *chaos.Profile
	chaosLabel := ""
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		cp := *cfg.Chaos
		if cp.Seed == 0 {
			cp.Seed = seed
		}
		if inj := cp.FaultInjector(clk); inj != nil {
			cloudOpts = append(cloudOpts, simaws.WithFaultInjector(inj))
		}
		chaosProfile = &cp
		chaosLabel = cp.Name
	}
	cloud := simaws.New(clk, profile, cloudOpts...)
	cloud.Start()

	fl := &fedLane{
		lane: lane{cfg: cfg, clk: clk, bus: bus, cloud: cloud, profile: profile},
		// A short lease keeps the kill→suspect→dead→failover window well
		// inside the upgrade, so the adopting member does the diagnosing.
		front: federate.NewFront(clk, federate.Config{LeaseTTL: 15 * time.Second}),
		dead:  map[string]bool{},
		ctls:  map[string]*healController{},
	}
	newManager := func() (*core.Manager, error) {
		var logTap func(<-chan logging.Event) <-chan logging.Event
		if chaosProfile != nil {
			logTap = chaosProfile.LogTap(clk)
		}
		m, err := core.NewManager(core.ManagerConfig{
			Cloud:          cloud,
			Bus:            bus,
			LogTap:         logTap,
			ChaosLabel:     chaosLabel,
			FlightCapacity: 2048,
			API: consistentapi.Config{
				MaxAttempts:    3,
				InitialBackoff: 250 * time.Millisecond,
				MaxBackoff:     time.Second,
				CallTimeout:    20 * time.Second,
			},
			PeriodicInterval:   cfg.PeriodicInterval,
			StepTimeoutSlack:   cfg.StepTimeoutSlack,
			DisableConformance: cfg.DisableConformance,
			DisableAssertions:  cfg.DisableAssertions,
			Remediation:        remediate.SuggestedPolicy(remediate.ModeAuto),
			RemediationCatalog: remediate.DefaultCatalog(),
			// Like the heal lane: the run reads audit trails long after the
			// session ends, so nothing may be retired under it.
			Retention: 24 * time.Hour,
		})
		if err != nil {
			return nil, err
		}
		m.Start()
		return m, nil
	}
	for _, id := range memberIDs {
		m, err := federate.NewLocalMember(federate.LocalConfig{
			ID: id, NewManager: newManager, ControllerFor: fl.controllerFor,
		})
		if err != nil {
			fl.close()
			return nil, err
		}
		fl.members = append(fl.members, m)
		if err := m.JoinFront(fl.front); err != nil {
			fl.close()
			return nil, err
		}
	}
	return fl, nil
}

// member resolves a member by federation id.
func (fl *fedLane) member(id string) *federate.LocalMember {
	for _, m := range fl.members {
		if m.ID() == id {
			return m
		}
	}
	return nil
}

// close tears the federated lane down, skipping Managers already
// stopped by Kill.
func (fl *fedLane) close() {
	fl.front.Stop()
	for _, m := range fl.members {
		m.StopHeartbeats()
		if fl.dead[m.ID()] {
			continue
		}
		if mgr := m.Manager(); mgr != nil {
			mgr.Stop()
		}
	}
	fl.cloud.Stop()
	fl.bus.Close()
}

// kill crashes a member and marks it dead for close.
func (fl *fedLane) kill(m *federate.LocalMember) {
	m.Kill()
	fl.dead[m.ID()] = true
}

// restart brings a killed member back (fresh Manager, fresh epoch).
func (fl *fedLane) restart(m *federate.LocalMember) error {
	if err := m.Restart(); err != nil {
		return err
	}
	fl.dead[m.ID()] = false
	return m.JoinFront(fl.front)
}

// duplicateExecutions counts independent executions of the same
// remediation idempotency key for one operation across every member's
// ledger — including a killed member's post-mortem one. A record
// replicated by snapshot keeps its id and timestamps, so one execution
// seen on two ledgers collapses to a single identity; the split-brain
// failure this guards against (the old owner and the adopter both
// firing the same action) shows up as two identities under one key.
func (fl *fedLane) duplicateExecutions(opID string) int {
	type identity struct {
		id       string
		created  time.Time
		resolved time.Time
	}
	byKey := map[string]map[identity]bool{}
	for _, m := range fl.members {
		mgr := m.Manager()
		if mgr == nil {
			continue
		}
		eng := mgr.Remediator()
		if eng == nil {
			continue
		}
		for _, r := range eng.List(opID) {
			if r.State != remediate.StateExecuted {
				continue
			}
			set := byKey[r.IdempotencyKey]
			if set == nil {
				set = map[identity]bool{}
				byKey[r.IdempotencyKey] = set
			}
			set[identity{r.ID, r.CreatedAt, r.ResolvedAt}] = true
		}
	}
	dups := 0
	for _, set := range byKey {
		if len(set) > 1 {
			dups += len(set) - 1
		}
	}
	return dups
}

// RunMemberKillOne executes the federation chaos acceptance run: a
// three-member federation watches a rolling upgrade, the owning member
// is crashed mid-upgrade (after its heartbeat replicated the session
// snapshot), a fault is injected so it manifests after the failover,
// and the adopting member must diagnose AND heal it — with the
// evidence chain spanning the handoff and the remediation ledger
// firing each action at most once across the whole federation.
func RunMemberKillOne(ctx context.Context, spec RunSpec, cfg Config) (*RunResult, error) {
	fl, err := newFedLane(cfg, spec.Seed, []string{"fed-a", "fed-b", "fed-c"})
	if err != nil {
		return nil, fmt.Errorf("experiment: member-kill run %d: %w", spec.ID, err)
	}
	defer fl.close()
	return fl.runMemberKillOne(ctx, spec, "mk")
}

func (fl *fedLane) runMemberKillOne(ctx context.Context, spec RunSpec, appName string) (*RunResult, error) {
	runStart := fl.clk.Now()

	cluster, err := upgrade.Deploy(ctx, fl.cloud, appName, spec.ClusterSize, "v1")
	if err != nil {
		return nil, fmt.Errorf("experiment: member-kill run %d: %w", spec.ID, err)
	}
	if err := cluster.WaitReady(ctx, fl.cloud, 10*time.Minute); err != nil {
		return nil, fmt.Errorf("experiment: member-kill run %d: %w", spec.ID, err)
	}
	newAMI, err := fl.cloud.RegisterImage(ctx, appName+"-v2", "v2", upgrade.AppServices)
	if err != nil {
		return nil, fmt.Errorf("experiment: member-kill run %d: %w", spec.ID, err)
	}

	taskID := fmt.Sprintf("pushing %s mk-%d", cluster.ASGName, spec.ID)
	upSpec := cluster.UpgradeSpec(taskID, newAMI)
	upSpec.NewLCName = fmt.Sprintf("%s-lc-%s", cluster.ASGName, newAMI)
	upSpec.WaitTimeout = replacementBudget(fl.profile)
	upSpec.PollInterval = 5 * time.Second

	opID := fmt.Sprintf("mk-%d", spec.ID)
	_, ownerID, err := fl.front.Watch(ctx, federate.WatchRequest{
		ID: opID,
		Expect: core.Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    upSpec.NewLCName,
			OldLCName:    cluster.LCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  spec.ClusterSize,
		},
		InstanceIDs: []string{taskID},
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: member-kill run %d: %w", spec.ID, err)
	}
	for _, m := range fl.members {
		m.HeartbeatNow()
	}

	// The fault is injected to manifest AFTER the failover window (lease
	// TTL + grace past the kill), so detection, diagnosis and remediation
	// all land on the adopting member.
	injector := faultinject.NewInjector(fl.cloud, cluster, spec.Seed^0xfa17)
	injectDone := make(chan struct{})
	go func() {
		defer close(injectDone)
		if spec.Fault != 0 {
			delay := spec.InjectDelay
			if delay <= 0 {
				delay = 75 * time.Second
			}
			_ = injector.Inject(ctx, spec.Fault, delay, upSpec.NewLCName, newAMI)
		}
	}()

	up := upgrade.NewUpgrader(fl.cloud, fl.bus)
	repCh := make(chan *upgrade.Report, 1)
	go func() { repCh <- up.Run(ctx, upSpec) }()

	// Let the upgrade put the new launch configuration and its first
	// conformance events on the books, replicate the owner's state with a
	// final heartbeat, then crash it.
	_ = fl.clk.Sleep(ctx, 15*time.Second)
	victim := fl.member(ownerID)
	victim.HeartbeatNow()
	fl.kill(victim)

	// Survivors keep renewing while the front's lease machine walks the
	// dead member through suspect to dead and fails its operation over.
	adopterID := ""
	for i := 0; i < 40; i++ {
		for _, m := range fl.members {
			m.HeartbeatNow() // the dead member skips itself
		}
		fl.front.Tick(ctx)
		if owner, _, ok := fl.front.Owner(opID); ok && owner != ownerID {
			adopterID = owner
			break
		}
		if fl.clk.Sleep(ctx, 5*time.Second) != nil {
			break
		}
	}

	rep := <-repCh
	<-injectDone
	res := &RunResult{Spec: spec, KilledMember: ownerID, AdoptedBy: adopterID}

	// Same closed loop as the heal lane, driven by the shared
	// per-operation controller: when the adopter's engine signals
	// retry-failed-step, re-drive the upgrade task.
	ctl := fl.healCtl(opID)
	if adopterID != "" {
		const maxRetries = 3
		for retries := 0; retries < maxRetries; retries++ {
			stepID, ok := fl.awaitRetrySignal(ctx, ctl, replacementBudget(fl.profile))
			if !ok {
				break
			}
			_ = stepID // the task re-runs from the top; completed steps are idempotent
			rep = up.Run(ctx, upSpec)
		}
	}
	if rep != nil && rep.Err != nil {
		res.UpgradeErr = rep.Err.Error()
	}

	var convergeErr error
	if adopterID != "" {
		convergeErr = fl.awaitConverged(ctx, cluster, upSpec.NewLCName, spec.ClusterSize, replacementBudget(fl.profile))
	}
	switch {
	case adopterID == "":
		res.HealErr = "operation never failed over to a survivor"
	case rep != nil && rep.Err != nil:
		res.HealErr = "upgrade task did not complete: " + rep.Err.Error()
	case convergeErr != nil:
		res.HealErr = convergeErr.Error()
	case len(ctl.Aborts()) > 0:
		res.HealErr = fmt.Sprintf("operation aborted by remediation: %v", ctl.Aborts())
	default:
		res.Healed = true
	}

	_ = fl.clk.Sleep(ctx, 30*time.Second)
	if adopter := fl.member(adopterID); adopter != nil {
		adopter.Manager().Drain(ctx, 10*time.Minute)
		if sess := adopter.Manager().Session(opID); sess != nil {
			classify(res, sess.Detections())
			tl := sess.Timeline()
			verifyEvidenceChains(res, tl)
			for _, e := range tl.Entries {
				if e.Kind == flight.KindHandoff {
					res.Handoffs++
				}
			}
			if eng := adopter.Manager().Remediator(); eng != nil {
				res.Remediations = eng.List(opID)
			}
			verifyRemediationChains(res, tl)
		} else if res.Healed {
			res.Healed = false
			res.HealErr = "adopting member does not hold the session"
		}
	}
	res.DuplicateRemediations = fl.duplicateExecutions(opID)
	res.SimDuration = fl.clk.Since(runStart)

	_ = fl.front.Remove(ctx, opID)
	injector.Heal()
	_ = fl.cloud.DeleteAutoScalingGroup(ctx, cluster.ASGName)
	fl.awaitTeardown(ctx)
	return res, nil
}
