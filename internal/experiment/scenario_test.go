package experiment

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/faultinject"
)

func TestBlueGreenCleanRun(t *testing.T) {
	res, err := RunBlueGreenOne(context.Background(), RunSpec{ID: 0, ClusterSize: 2, Seed: 11}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.UpgradeErr != "" {
		t.Fatalf("clean blue/green failed: %s", res.UpgradeErr)
	}
	if res.FaultDetected || res.FaultDiagnosed {
		t.Error("fault flags set on clean run")
	}
	for _, d := range res.Detections {
		if d.Attribution == "fault" {
			t.Errorf("fault attribution on clean run: %+v", d)
		}
	}
}

func TestBlueGreenDiagnosesInjectedFault(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario fault runs are slow")
	}
	for i, kind := range []faultinject.Kind{faultinject.KindAMIChanged, faultinject.KindKeyPairUnavailable} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			res, err := RunBlueGreenOne(context.Background(), RunSpec{
				ID: 10 + i, Fault: kind, ClusterSize: 2,
				Seed: int64(50 + i), InjectDelay: time.Second,
			}, fastCfg())
			if err != nil {
				t.Fatal(err)
			}
			if !res.FaultDetected {
				t.Fatalf("fault undetected; detections: %+v", res.Detections)
			}
			if !res.FaultDiagnosed {
				t.Errorf("fault detected but not diagnosed; detections: %+v", res.Detections)
			}
		})
	}
}

func TestSpotStormCleanRun(t *testing.T) {
	// A storm of zero: the watch window passes with no interruptions.
	res, err := RunSpotStormOne(context.Background(), RunSpec{
		ID: 20, ClusterSize: 2, Seed: 21,
		// InjectDelay beyond the watch window keeps the lane clean; the
		// storm fires into an already-draining cloud.
		InjectDelay: time.Hour,
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.UpgradeErr != "" {
		t.Fatalf("clean watch failed: %s", res.UpgradeErr)
	}
	if res.FaultDiagnosed {
		t.Errorf("termination diagnosed with no storm: %+v", res.Detections)
	}
}

func TestSpotStormDiagnosedAsExternalTermination(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario fault runs are slow")
	}
	// A run with zero detections means the storm lost its scheduling race
	// under CPU oversubscription and reclaimed instances outside the watch
	// window — the monitored operation never saw it. Vacuous, not a
	// detection failure; retry it. A genuine detection regression
	// reproduces on every attempt and still fails the gate.
	var res *RunResult
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		res, err = RunSpotStormOne(context.Background(), RunSpec{
			ID: 21, ClusterSize: 3, Seed: 23, InjectDelay: 15 * time.Second,
		}, fastCfg())
		if err != nil {
			t.Fatal(err)
		}
		if res.UpgradeErr != "" || len(res.Detections) > 0 {
			break
		}
		t.Logf("attempt %d: storm missed the watch window; rerunning", attempt+1)
	}
	if res.UpgradeErr != "" {
		t.Fatalf("watch failed to recover: %s", res.UpgradeErr)
	}
	if !res.FaultDetected {
		t.Fatalf("storm undetected; detections: %+v", res.Detections)
	}
	if !res.FaultDiagnosed {
		t.Errorf("storm not diagnosed as unexpected-termination; detections: %+v", res.Detections)
	}
	if res.BrokenEvidenceChains != 0 {
		t.Errorf("%d broken evidence chains", res.BrokenEvidenceChains)
	}
}
