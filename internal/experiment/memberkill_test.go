package experiment

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/core"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/federate"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/upgrade"
)

// TestChaosMemberKill is the federation chaos acceptance gate (run by
// the CI federation chaos job with -race): the member owning the
// operation is crashed mid-rolling-upgrade, the injected fault
// manifests after the failover, and the adopting member must diagnose
// AND heal it — with a federation.handoff entry on the adopted
// timeline, every confirmed cause and executed remediation chaining
// back to a raw log event across the handoff, and zero duplicate
// remediation executions anywhere in the federation.
//
// Degraded confirmations are accepted here, deliberately: the restore
// path holds an adopted session in degraded sampling until the adopter
// has seen enough of the log stream to trust it, so a post-handoff
// diagnosis is EXPECTED to carry the degraded flag. Retrying on
// degraded-only evidence (as the single-manager gates do) would retry
// exactly the behavior under test.
func TestChaosMemberKill(t *testing.T) {
	if testing.Short() {
		t.Skip("member-kill chaos acceptance run is slow")
	}
	spec := RunSpec{
		ID: 300, Fault: faultinject.KindKeyPairChanged, ClusterSize: 2,
		Seed:        611,
		InjectDelay: 75 * time.Second,
	}
	// Same bounded uninformative-run retry as the other chaos gates: a
	// run that carries no information about the handoff loop — the
	// fault's cause never confirmed anywhere and nothing executed (the
	// flip lost its scheduling race), or the loop did everything right
	// and only the starved simulated cloud missed the convergence budget
	// — restates the box's scheduling and is rerun. A genuine federation
	// regression (no failover, a lost ledger, a duplicate execution)
	// reproduces on every attempt and still fails the gate.
	var res *RunResult
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		res, err = RunMemberKillOne(context.Background(), spec, chaosCfg())
		if err != nil {
			t.Fatal(err)
		}
		noConfirmation := !res.FaultDiagnosed && len(res.Remediations) == 0
		timedOut := strings.Contains(res.UpgradeErr, "timed out") ||
			strings.Contains(res.HealErr, "did not converge")
		starvedCloud := !res.Healed && timedOut && res.FaultDiagnosed && executedCleanly(res)
		if res.AdoptedBy != "" && !noConfirmation && !starvedCloud {
			break
		}
		t.Logf("attempt %d: uninformative run (adoptedBy=%q, healed=%v, faultDiagnosed=%v, %d detections, %d remediation records, healErr=%q); rerunning",
			attempt+1, res.AdoptedBy, res.Healed, res.FaultDiagnosed, len(res.Detections), len(res.Remediations), res.HealErr)
	}

	if res.AdoptedBy == "" {
		t.Fatalf("operation never failed over: healErr=%q", res.HealErr)
	}
	if res.AdoptedBy == res.KilledMember {
		t.Fatalf("operation adopted by the killed member %q", res.AdoptedBy)
	}
	if !res.Healed {
		t.Fatalf("fault not healed by adopting member %s: %s (upgradeErr=%q, remediations=%+v)",
			res.AdoptedBy, res.HealErr, res.UpgradeErr, res.Remediations)
	}
	if !res.FaultDiagnosed {
		t.Errorf("healed without the fault's root cause being identified; detections: %+v", res.Detections)
	}
	if res.Handoffs == 0 {
		t.Errorf("adopted timeline carries no federation.handoff entry")
	}

	// Evidence acceptance across the handoff: the confirmed cause's chain
	// must walk through the imported (pre-kill) entries down to a raw log
	// event, and so must every executed remediation's outcome.
	if res.BrokenEvidenceChains != 0 {
		t.Errorf("%d confirmed cause(s) with broken evidence chains across the handoff", res.BrokenEvidenceChains)
	}
	if res.FaultDiagnosed && res.ConfirmedCauseChains == 0 {
		t.Errorf("fault diagnosed but no confirmed-cause evidence chain reaches a log event")
	}
	executed := 0
	for _, r := range res.Remediations {
		if r.State == remediate.StateExecuted {
			executed++
		}
	}
	if executed == 0 {
		t.Fatalf("healed with no executed remediation; audit: %+v", res.Remediations)
	}
	if res.BrokenRemediationChains != 0 {
		t.Errorf("%d executed remediation(s) with broken audit chains", res.BrokenRemediationChains)
	}
	if res.RemediationChains == 0 {
		t.Errorf("no remediation outcome chains to a log event")
	}
	if res.DuplicateRemediations != 0 {
		t.Errorf("%d duplicate remediation execution(s) across the federation (idempotency keys must hold across handoff)",
			res.DuplicateRemediations)
	}
}

// TestFederationSoakConcurrentUpgrades is the -race soak: four
// concurrent rolling upgrades spread over a three-member federation
// with live heartbeats and the front's lease monitor running; one
// member is killed mid-run and later rejoined. Afterward every
// operation must have exactly one holder (the routed owner), no
// detection recorded before the kill may be lost, and no remediation
// idempotency key may have fired twice.
func TestFederationSoakConcurrentUpgrades(t *testing.T) {
	if testing.Short() {
		t.Skip("federation soak is slow")
	}
	fl, err := newFedLane(fastCfg(), 777, []string{"sk-a", "sk-b", "sk-c"})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.close()
	ctx := context.Background()
	for _, m := range fl.members {
		m.StartHeartbeats(5 * time.Second)
	}
	fl.front.Start()

	const nOps = 4
	faults := []faultinject.Kind{0, faultinject.KindKeyPairChanged, 0, faultinject.KindAMIChanged}
	opIDs := make([]string, nOps)
	upSpecs := make([]upgrade.Spec, nOps)
	injectors := make([]*faultinject.Injector, nOps)
	var injectWG sync.WaitGroup
	for i := 0; i < nOps; i++ {
		app := []string{"ska", "skb", "skc", "skd"}[i]
		cluster, err := upgrade.Deploy(ctx, fl.cloud, app, 2, "v1")
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.WaitReady(ctx, fl.cloud, 10*time.Minute); err != nil {
			t.Fatal(err)
		}
		newAMI, err := fl.cloud.RegisterImage(ctx, app+"-v2", "v2", upgrade.AppServices)
		if err != nil {
			t.Fatal(err)
		}
		taskID := "pushing " + cluster.ASGName + " soak"
		upSpecs[i] = cluster.UpgradeSpec(taskID, newAMI)
		upSpecs[i].NewLCName = cluster.ASGName + "-lc-" + newAMI
		upSpecs[i].WaitTimeout = replacementBudget(fl.profile)
		upSpecs[i].PollInterval = 5 * time.Second
		opIDs[i] = "soak-op-" + app
		if _, _, err := fl.front.Watch(ctx, federate.WatchRequest{
			ID: opIDs[i],
			Expect: core.Expectation{
				ASGName:      cluster.ASGName,
				ELBName:      cluster.ELBName,
				NewImageID:   newAMI,
				NewVersion:   "v2",
				NewLCName:    upSpecs[i].NewLCName,
				OldLCName:    cluster.LCName,
				KeyName:      cluster.KeyName,
				SGName:       cluster.SGName,
				InstanceType: "m1.small",
				ClusterSize:  2,
			},
			InstanceIDs: []string{taskID},
		}); err != nil {
			t.Fatal(err)
		}
		injectors[i] = faultinject.NewInjector(fl.cloud, cluster, 777+int64(i))
		if faults[i] != 0 {
			injectWG.Add(1)
			go func(i int) {
				defer injectWG.Done()
				_ = injectors[i].Inject(ctx, faults[i], 40*time.Second, upSpecs[i].NewLCName, newAMI)
			}(i)
		}
	}

	up := upgrade.NewUpgrader(fl.cloud, fl.bus)
	var upWG sync.WaitGroup
	for i := 0; i < nOps; i++ {
		upWG.Add(1)
		go func(i int) {
			defer upWG.Done()
			_ = up.Run(ctx, upSpecs[i])
		}(i)
	}

	// Mid-run: count what the victim holds, replicate exactly that state
	// with a last heartbeat, and crash it.
	_ = fl.clk.Sleep(ctx, 20*time.Second)
	victim := fl.members[0]
	preKill := map[string]int{}
	if mgr := victim.Manager(); mgr != nil {
		for _, s := range mgr.Sessions() {
			preKill[s.ID()] = len(s.Detections())
		}
	}
	victim.HeartbeatNow()
	fl.kill(victim)

	// Wait for every operation the victim held to fail over (the running
	// lease monitor and survivor heartbeats do the work).
	for i := 0; i < 80; i++ {
		moved := true
		for opID := range preKill {
			if owner, _, ok := fl.front.Owner(opID); ok && owner == victim.ID() {
				moved = false
			}
		}
		if moved {
			break
		}
		if fl.clk.Sleep(ctx, 5*time.Second) != nil {
			t.Fatal(ctx.Err())
		}
	}
	for opID := range preKill {
		if owner, _, ok := fl.front.Owner(opID); ok && owner == victim.ID() {
			t.Fatalf("operation %s never failed over off the killed member", opID)
		}
	}

	// Rejoin the victim with a fresh Manager and epoch; the join's
	// bounded rebalance may legitimately move operations back onto it.
	if err := fl.restart(victim); err != nil {
		t.Fatal(err)
	}
	victim.StartHeartbeats(5 * time.Second)

	upWG.Wait()
	injectWG.Wait()
	_ = fl.clk.Sleep(ctx, 30*time.Second)
	for _, m := range fl.members {
		if mgr := m.Manager(); mgr != nil && !fl.dead[m.ID()] {
			mgr.Drain(ctx, 10*time.Minute)
		}
	}

	for _, opID := range opIDs {
		owner, _, ok := fl.front.Owner(opID)
		if !ok {
			t.Fatalf("operation %s lost its route", opID)
		}
		holders := 0
		ownerHolds := false
		detections := -1
		for _, m := range fl.members {
			mgr := m.Manager()
			if mgr == nil {
				continue
			}
			s := mgr.Session(opID)
			if s == nil {
				continue
			}
			holders++
			if m.ID() == owner {
				ownerHolds = true
				detections = len(s.Detections())
			}
		}
		if holders != 1 {
			t.Errorf("operation %s held by %d managers, want exactly 1", opID, holders)
		}
		if !ownerHolds {
			t.Errorf("operation %s: routed owner %s does not hold the session", opID, owner)
		}
		if n, hadIt := preKill[opID]; hadIt && detections >= 0 && detections < n {
			t.Errorf("operation %s lost detections across the handoff: %d before kill, %d after", opID, n, detections)
		}
		if d := fl.duplicateExecutions(opID); d != 0 {
			t.Errorf("operation %s: %d duplicate remediation execution(s)", opID, d)
		}
	}
}
