package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/faultinject"
)

// fastCfg trades fidelity for speed in unit tests.
func fastCfg() Config {
	return Config{
		RunsPerFault:     1,
		Scale:            250,
		Seed:             42,
		Parallelism:      2,
		InterferenceProb: -1, // none
	}
}

func TestRunOneCleanRun(t *testing.T) {
	res, err := RunOne(context.Background(), RunSpec{ID: 0, ClusterSize: 2, Seed: 7}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.UpgradeErr != "" {
		t.Fatalf("clean upgrade failed: %s", res.UpgradeErr)
	}
	if res.FaultDetected || res.FaultDiagnosed {
		t.Error("fault flags set on clean run")
	}
	for _, d := range res.Detections {
		if d.Attribution == "fault" {
			t.Errorf("fault attribution on clean run: %+v", d)
		}
	}
}

func TestRunOneDetectsConfigurationFault(t *testing.T) {
	res, err := RunOne(context.Background(), RunSpec{
		ID: 1, Fault: faultinject.KindAMIChanged, ClusterSize: 4, Seed: 11,
		InjectDelay: time.Second,
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FaultDetected {
		t.Fatalf("AMI-changed fault undetected; detections: %+v", res.Detections)
	}
	if !res.FaultDiagnosed {
		t.Errorf("AMI-changed fault detected but not diagnosed; detections: %+v", res.Detections)
	}
	if res.ConformanceFirst {
		t.Error("configuration fault detected by conformance first (log output should be unchanged)")
	}
}

func TestRunOneDetectsResourceFault(t *testing.T) {
	// Pin the injection right after the launch configuration appears so
	// the fault always strikes mid-upgrade regardless of scheduler noise.
	res, err := RunOne(context.Background(), RunSpec{
		ID: 2, Fault: faultinject.KindAMIUnavailable, ClusterSize: 2, Seed: 13,
		InjectDelay: time.Second,
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FaultDetected {
		t.Fatalf("AMI-unavailable fault undetected; detections: %+v", res.Detections)
	}
	// Whether the upgrade itself aborts depends on where the random
	// injection point lands relative to the last replacement; detection
	// is the invariant.
}

func TestRunOneDetectsELBFault(t *testing.T) {
	res, err := RunOne(context.Background(), RunSpec{
		ID: 3, Fault: faultinject.KindELBUnavailable, ClusterSize: 2, Seed: 17,
		InjectDelay: time.Second,
	}, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FaultDetected {
		t.Fatalf("ELB fault undetected; detections: %+v", res.Detections)
	}
	if !res.FaultDiagnosed {
		t.Errorf("ELB fault not diagnosed; detections: %+v", res.Detections)
	}
}

func TestSpecsShape(t *testing.T) {
	cfg := Config{RunsPerFault: 20, Seed: 1, InterferenceProb: 0.25}
	specs := Specs(cfg)
	if len(specs) != 160 {
		t.Fatalf("spec count = %d", len(specs))
	}
	perFault := make(map[faultinject.Kind]int)
	sizes := map[int]int{}
	withInterf := 0
	for _, s := range specs {
		perFault[s.Fault]++
		sizes[s.ClusterSize]++
		if len(s.Interferences) > 0 {
			withInterf++
		}
	}
	for _, k := range faultinject.AllKinds() {
		if perFault[k] != 20 {
			t.Errorf("fault %s has %d runs", k, perFault[k])
		}
	}
	if sizes[4] != 128 || sizes[20] != 32 {
		t.Errorf("cluster sizes = %v", sizes)
	}
	if withInterf == 0 {
		t.Error("no runs with interferences")
	}
	// Deterministic for the same seed.
	specs2 := Specs(cfg)
	for i := range specs {
		if specs[i].Seed != specs2[i].Seed || len(specs[i].Interferences) != len(specs2[i].Interferences) {
			t.Fatal("Specs not deterministic")
		}
	}
}

func TestMetricsFormulas(t *testing.T) {
	m := Metrics{TP: 206, FP: 18, FN: 0, Correct: 200}
	if p := m.Precision(); p < 0.91 || p > 0.93 {
		t.Errorf("precision = %f", p)
	}
	if r := m.Recall(); r != 1.0 {
		t.Errorf("recall = %f", r)
	}
	if a := m.Accuracy(); a < 0.89 || a > 0.90 {
		t.Errorf("accuracy = %f", a)
	}
	var zero Metrics
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.Accuracy() != 0 {
		t.Error("zero metrics not zero")
	}
}

func TestAggregateAndRender(t *testing.T) {
	results := []*RunResult{
		{
			Spec:          RunSpec{ID: 0, Fault: faultinject.KindAMIChanged, ClusterSize: 4},
			FaultDetected: true, FaultDiagnosed: true,
			Detections: []DetectionSummary{{
				Source: "assertion", TriggerID: "asg-uses-ami",
				Attribution: "fault", DiagnosisTime: 2300 * time.Millisecond,
			}},
		},
		{
			Spec: RunSpec{ID: 1, Fault: faultinject.KindELBUnavailable, ClusterSize: 4,
				Interferences: []faultinject.Interference{faultinject.InterferenceScaleIn}},
			FaultDetected: true, FaultDiagnosed: false,
			ConformanceFirst: true, InterferencesDetected: 1,
			FalsePositives: 1, FalsePositivesDiagnosedNoCause: 1,
			Detections: []DetectionSummary{{
				Source: "conformance", TriggerID: "conformance:error",
				Attribution: "fault", DiagnosisTime: 4200 * time.Millisecond,
			}},
		},
	}
	rep := Aggregate(results, time.Second)
	if rep.Overall.TP != 3 { // 2 faults + 1 interference
		t.Errorf("TP = %d", rep.Overall.TP)
	}
	if rep.Overall.FP != 1 || rep.Overall.FN != 0 {
		t.Errorf("FP=%d FN=%d", rep.Overall.FP, rep.Overall.FN)
	}
	if rep.Overall.Correct != 3 { // ami diag + interference + FP no-cause
		t.Errorf("Correct = %d", rep.Overall.Correct)
	}
	ts := rep.Times()
	if ts.Count != 2 || ts.Min != 2300*time.Millisecond || ts.Max != 4200*time.Millisecond {
		t.Errorf("times = %+v", ts)
	}
	hist := rep.Histogram(time.Second)
	if len(hist) != 5 || hist[2] != 1 || hist[4] != 1 {
		t.Errorf("hist = %v", hist)
	}
	out := rep.RenderAll()
	for _, want := range []string{"Table I", "Figure 6", "Figure 7", "Conformance coverage", "Precision of Detection"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if rep.ConformanceFirstByFault[faultinject.KindELBUnavailable] != 1 {
		t.Error("conformance-first not counted")
	}
}

func TestMiniCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("mini campaign is slow")
	}
	// Two fault types, one run each: exercises the parallel runner
	// end-to-end.
	specs := []RunSpec{
		{ID: 0, Fault: faultinject.KindKeyPairChanged, ClusterSize: 2, Seed: 19},
		{ID: 1, Fault: faultinject.KindSGUnavailable, ClusterSize: 2, Seed: 23},
	}
	rep, err := RunSpecs(context.Background(), specs, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.TP+rep.Overall.FN != 2 {
		t.Errorf("fault accounting: %+v", rep.Overall)
	}
	if rep.Overall.Recall() < 0.5 {
		t.Errorf("recall = %f; runs: %+v %+v", rep.Overall.Recall(), rep.Runs[0], rep.Runs[1])
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	rep := &Report{}
	if rep.Histogram(time.Second) != nil {
		t.Error("empty histogram not nil")
	}
	if rep.Times().Count != 0 {
		t.Error("empty times not zero")
	}
	rep.DiagnosisTimes = []time.Duration{time.Second}
	if rep.Histogram(0) != nil {
		t.Error("zero width accepted")
	}
}
