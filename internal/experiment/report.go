package experiment

import (
	"fmt"
	"strings"
	"time"

	"poddiagnosis/internal/faultinject"
)

// RenderTable1 prints the paper's headline metrics (Table I quantities).
func (r *Report) RenderTable1() string {
	var b strings.Builder
	m := r.Overall
	fmt.Fprintf(&b, "Table I — evaluation metrics (paper: precision 91.95%%, recall 100%%, accuracy ~96.5-97.1%%)\n")
	fmt.Fprintf(&b, "  detections: TP=%d FP=%d FN=%d correct=%d\n", m.TP, m.FP, m.FN, m.Correct)
	fmt.Fprintf(&b, "  interferences: injected=%d detected=%d (paper: 46 detected)\n",
		r.InterferencesInjected, r.InterferencesDetected)
	fmt.Fprintf(&b, "  Precision of Detection        : %6.2f%%\n", 100*m.Precision())
	fmt.Fprintf(&b, "  Recall of Detection           : %6.2f%%\n", 100*m.Recall())
	fmt.Fprintf(&b, "  Accuracy Rate of Diagnosis    : %6.2f%%\n", 100*m.Accuracy())
	return b.String()
}

// RenderFigure6 prints the diagnosis-time distribution as an ASCII
// histogram plus the shape statistics.
func (r *Report) RenderFigure6() string {
	var b strings.Builder
	ts := r.Times()
	fmt.Fprintf(&b, "Figure 6 — distribution of error diagnosis time (%d diagnoses)\n", ts.Count)
	fmt.Fprintf(&b, "  paper: min 1.29s, avg 2.30s, 95%% within 3.83s, max 10.44s\n")
	fmt.Fprintf(&b, "  ours : min %.2fs, avg %.2fs, p95 %.2fs, max %.2fs\n",
		ts.Min.Seconds(), ts.Mean.Seconds(), ts.P95.Seconds(), ts.Max.Seconds())
	hist := r.Histogram(time.Second)
	peak := 0
	for _, c := range hist {
		if c > peak {
			peak = c
		}
	}
	for i, c := range hist {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", c*50/peak)
		}
		fmt.Fprintf(&b, "  %2d-%2ds | %4d %s\n", i, i+1, c, bar)
	}
	return b.String()
}

// RenderFigure7 prints precision/recall/accuracy per fault type.
func (r *Report) RenderFigure7() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — precision/recall of detection and accuracy rate of diagnosis by fault type\n")
	fmt.Fprintf(&b, "  %-24s %10s %10s %10s %6s\n", "fault", "precision", "recall", "accuracy", "runs")
	for _, kind := range faultinject.AllKinds() {
		m, ok := r.PerFault[kind]
		if !ok {
			continue
		}
		runs := 0
		for _, run := range r.Runs {
			if run.Spec.Fault == kind {
				runs++
			}
		}
		fmt.Fprintf(&b, "  %-24s %9.2f%% %9.2f%% %9.2f%% %6d\n",
			kind.String(), 100*m.Precision(), 100*m.Recall(), 100*m.Accuracy(), runs)
	}
	return b.String()
}

// RenderConformance prints the §V.D conformance-coverage observation:
// which runs produced erroneous traces before assertion checking.
func (r *Report) RenderConformance() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Conformance coverage (§V.D — paper: configuration faults 0, resource faults 20 of 80 runs)\n")
	confDetectable, confFirst := 0, 0
	for _, kind := range faultinject.AllKinds() {
		n := r.ConformanceFirstByFault[kind]
		runs := 0
		for _, run := range r.Runs {
			if run.Spec.Fault == kind {
				runs++
			}
		}
		fmt.Fprintf(&b, "  %-24s conformance-first %2d / %2d runs\n", kind.String(), n, runs)
		if !kind.ConfigurationFault() {
			confDetectable += runs
			confFirst += n
		}
	}
	fmt.Fprintf(&b, "  resource faults total: %d of %d runs detected by conformance first\n", confFirst, confDetectable)
	return b.String()
}

// RenderAll concatenates every report section.
func (r *Report) RenderAll() string {
	return r.RenderTable1() + "\n" + r.RenderFigure6() + "\n" + r.RenderFigure7() + "\n" + r.RenderConformance()
}
