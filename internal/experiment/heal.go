package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"poddiagnosis/internal/core"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// healController is the lane's remediate.OperationController: the
// retry-failed-step action signals it, and the lane answers by re-driving
// the upgrade task once the environment fault has been repaired. Aborts
// are only recorded — under the suggested auto policy the abort action is
// held for approval, so a recorded abort in a heal run is itself a
// finding.
type healController struct {
	retry chan string

	mu     sync.Mutex
	aborts []string
}

func newHealController() *healController {
	// One slot per distinct confirmed cause base is plenty; extra signals
	// coalesce (the lane re-runs the task once per drain).
	return &healController{retry: make(chan string, 16)}
}

// RetryStep implements remediate.OperationController.
func (h *healController) RetryStep(ctx context.Context, stepID string) error {
	select {
	case h.retry <- stepID:
	default: // a retry is already queued; one re-run covers both
	}
	return nil
}

// Abort implements remediate.OperationController.
func (h *healController) Abort(ctx context.Context, reason string) error {
	h.mu.Lock()
	h.aborts = append(h.aborts, reason)
	h.mu.Unlock()
	return nil
}

// Aborts returns the recorded abort requests.
func (h *healController) Aborts() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.aborts...)
}

// RunHealOne executes one closed-loop evaluation run: deploy, upgrade,
// inject the fault — and let the remediation engine repair it. The lane
// runs the manager with the default action catalog under the suggested
// auto policy (config/traffic/operation repairs unattended, escalations
// held), attaches itself as the operation controller, and when the
// retry-failed-step action fires, re-runs the upgrade task. The run is
// Healed when the task ends successfully and the cluster converges onto
// the intended launch configuration; the remediation audit trail and its
// flight-recorder chains are returned on the result for the acceptance
// gate.
func RunHealOne(ctx context.Context, spec RunSpec, cfg Config) (*RunResult, error) {
	l, err := newLane(cfg, spec.Seed, func(mc *core.ManagerConfig) {
		mc.Remediation = remediate.SuggestedPolicy(remediate.ModeAuto)
		mc.RemediationCatalog = remediate.DefaultCatalog()
		// A healed run outlives the default retention: the first (wrong)
		// task completion ends the session, and the retry + convergence
		// wait can run long past the sweep — which would retire the
		// flight ring and drop the remediation audit before the run reads
		// them. Sessions are removed explicitly at the end of the run.
		mc.Retention = 24 * time.Hour
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: heal run %d: %w", spec.ID, err)
	}
	defer l.close()
	return l.runHealOne(ctx, spec, "pm")
}

// runHealOne is runOne's closed-loop variant. The structural differences:
// the session carries the pre-upgrade launch configuration (the rollback
// action's fallback) and the lane's controller; after the first upgrade
// attempt the lane waits for a retry signal and re-drives the task; and
// the result carries the heal verdict plus the remediation audit trail.
func (l *lane) runHealOne(ctx context.Context, spec RunSpec, appName string) (*RunResult, error) {
	runStart := l.clk.Now()

	cluster, err := upgrade.Deploy(ctx, l.cloud, appName, spec.ClusterSize, "v1")
	if err != nil {
		return nil, fmt.Errorf("experiment: heal run %d: %w", spec.ID, err)
	}
	if err := cluster.WaitReady(ctx, l.cloud, 10*time.Minute); err != nil {
		return nil, fmt.Errorf("experiment: heal run %d: %w", spec.ID, err)
	}
	newAMI, err := l.cloud.RegisterImage(ctx, appName+"-v2", "v2", upgrade.AppServices)
	if err != nil {
		return nil, fmt.Errorf("experiment: heal run %d: %w", spec.ID, err)
	}

	taskID := fmt.Sprintf("pushing %s heal-%d", cluster.ASGName, spec.ID)
	upSpec := cluster.UpgradeSpec(taskID, newAMI)
	upSpec.NewLCName = fmt.Sprintf("%s-lc-%s", cluster.ASGName, newAMI)
	upSpec.WaitTimeout = replacementBudget(l.profile)
	upSpec.PollInterval = 5 * time.Second

	ctl := newHealController()
	sess, err := l.mgr.Watch(core.Expectation{
		ASGName:      cluster.ASGName,
		ELBName:      cluster.ELBName,
		NewImageID:   newAMI,
		NewVersion:   "v2",
		NewLCName:    upSpec.NewLCName,
		OldLCName:    cluster.LCName,
		KeyName:      cluster.KeyName,
		SGName:       cluster.SGName,
		InstanceType: "m1.small",
		ClusterSize:  spec.ClusterSize,
	}, core.BindInstance(taskID), core.WithSessionID(fmt.Sprintf("heal-%d", spec.ID)),
		core.WithRemediationController(ctl))
	if err != nil {
		return nil, fmt.Errorf("experiment: heal run %d: %w", spec.ID, err)
	}

	injector := faultinject.NewInjector(l.cloud, cluster, spec.Seed^0xfa17)
	injectDone := make(chan struct{})
	go func() {
		defer close(injectDone)
		if spec.Fault != 0 {
			delay := spec.InjectDelay
			if delay <= 0 {
				delay = time.Second
			}
			_ = injector.Inject(ctx, spec.Fault, delay, upSpec.NewLCName, newAMI)
		}
	}()

	up := upgrade.NewUpgrader(l.cloud, l.bus)
	rep := up.Run(ctx, upSpec)
	<-injectDone

	// The diagnosis→remediation chain runs asynchronously off the log
	// stream and the step timers; give it one replacement budget to
	// confirm the cause and signal a retry, then re-drive the task. More
	// signals can arrive while the re-run executes (a second plan
	// confirming a suffixed cause variant); each drain coalesces them.
	const maxRetries = 3
	retries := 0
	for retries < maxRetries {
		stepID, ok := l.awaitRetrySignal(ctx, ctl, replacementBudget(l.profile))
		if !ok {
			break
		}
		retries++
		_ = stepID // the upgrade task re-runs from the top; completed steps are idempotent
		rep = up.Run(ctx, upSpec)
	}

	res := &RunResult{Spec: spec, SimDuration: l.clk.Since(runStart)}
	if rep.Err != nil {
		res.UpgradeErr = rep.Err.Error()
	}

	convergeErr := l.awaitConverged(ctx, cluster, upSpec.NewLCName, spec.ClusterSize, replacementBudget(l.profile))
	switch {
	case rep.Err != nil:
		res.HealErr = "upgrade task did not complete: " + rep.Err.Error()
	case convergeErr != nil:
		res.HealErr = convergeErr.Error()
	case len(ctl.Aborts()) > 0:
		res.HealErr = fmt.Sprintf("operation aborted by remediation: %v", ctl.Aborts())
	default:
		res.Healed = true
	}

	_ = l.clk.Sleep(ctx, 30*time.Second)
	l.mgr.Drain(ctx, 10*time.Minute)

	classify(res, sess.Detections())
	tl := sess.Timeline()
	verifyEvidenceChains(res, tl)
	if eng := l.mgr.Remediator(); eng != nil {
		res.Remediations = eng.List(sess.ID())
	}
	verifyRemediationChains(res, tl)

	l.mgr.Remove(sess.ID())
	injector.Heal()
	_ = l.cloud.DeleteAutoScalingGroup(ctx, cluster.ASGName)
	l.awaitTeardown(ctx)
	return res, nil
}

// awaitRetrySignal waits (in simulated time) for the remediation engine's
// retry-failed-step signal, returning false when none arrives within the
// budget.
func (l *lane) awaitRetrySignal(ctx context.Context, ctl *healController, budget time.Duration) (string, bool) {
	deadline := l.clk.Now().Add(budget)
	for {
		select {
		case stepID := <-ctl.retry:
			return stepID, true
		default:
		}
		if l.clk.Now().After(deadline) || ctx.Err() != nil {
			return "", false
		}
		_ = l.clk.Sleep(ctx, time.Second)
	}
}

// awaitConverged polls until the cluster is in the intended end state of
// the upgrade: the ASG points at the intended launch configuration, every
// live member was launched from it, the group is at full strength, and
// every in-service member is registered and InService with the ELB.
func (l *lane) awaitConverged(ctx context.Context, cluster *upgrade.Cluster, lcName string, size int, budget time.Duration) error {
	deadline := l.clk.Now().Add(budget)
	var lastErr error
	for {
		ok, err := l.converged(ctx, cluster, lcName, size)
		if err == nil && ok {
			return nil
		}
		lastErr = err
		if l.clk.Now().After(deadline) || ctx.Err() != nil {
			if lastErr != nil {
				return fmt.Errorf("cluster did not converge onto %s within %v: %w", lcName, budget, lastErr)
			}
			return fmt.Errorf("cluster did not converge onto %s within %v", lcName, budget)
		}
		if serr := l.clk.Sleep(ctx, 2*time.Second); serr != nil {
			return serr
		}
	}
}

func (l *lane) converged(ctx context.Context, cluster *upgrade.Cluster, lcName string, size int) (bool, error) {
	asg, err := l.cloud.DescribeAutoScalingGroup(ctx, cluster.ASGName)
	if err != nil {
		return false, err
	}
	if asg.LaunchConfigName != lcName {
		return false, nil
	}
	health, err := l.cloud.DescribeInstanceHealth(ctx, cluster.ELBName)
	if err != nil {
		return false, err
	}
	registered := make(map[string]string, len(health))
	for _, h := range health {
		registered[h.InstanceID] = h.State
	}
	inService := 0
	for _, id := range asg.Instances {
		inst, err := l.cloud.DescribeInstance(ctx, id)
		if err != nil {
			if simaws.IsNotFound(err) {
				continue
			}
			return false, err
		}
		if !inst.Live() {
			continue
		}
		if inst.LaunchConfigName != lcName {
			return false, nil
		}
		if inst.State != simaws.StateInService {
			return false, nil
		}
		if registered[id] != "InService" {
			return false, nil
		}
		inService++
	}
	return inService == size, nil
}

// verifyRemediationChains walks every executed remediation's outcome
// entry back through its flight-recorder parents: outcome → action →
// confirmed cause → detection → raw log event. A remediation that
// executed but cannot show that chain is unaccountable, and the heal
// acceptance gate requires zero of those.
func verifyRemediationChains(res *RunResult, tl flight.Timeline) {
	for _, r := range res.Remediations {
		if r.State != remediate.StateExecuted || r.OutcomeEntry == 0 {
			continue
		}
		if _, ok := flight.ChainToLog(tl.Entries, r.OutcomeEntry); ok {
			res.RemediationChains++
		} else {
			res.BrokenRemediationChains++
		}
	}
}
