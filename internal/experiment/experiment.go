// Package experiment implements the paper's evaluation (§V): fault
// injection campaigns over rolling upgrades on the simulated cloud, with
// the POD engine watching. It reproduces:
//
//   - Table I / headline metrics: precision and recall of detection and
//     the accuracy rate of diagnosis, with the paper's formulas;
//   - Figure 6: the distribution of error diagnosis time;
//   - Figure 7: precision/recall/accuracy grouped by fault type;
//   - the conformance-coverage observation of §V.D (resource faults
//     sometimes produce erroneous traces before assertion checking;
//     configuration faults never do).
package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"poddiagnosis/internal/chaos"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// Config tunes a campaign. The zero value is filled with paper defaults.
type Config struct {
	// RunsPerFault is the number of runs per fault type (paper: 20).
	RunsPerFault int
	// Scale is the simulated-clock speed-up factor.
	Scale float64
	// Seed makes the campaign reproducible.
	Seed int64
	// Parallelism bounds concurrently executing runs.
	Parallelism int
	// InterferenceProb is the per-run probability of each simultaneous
	// operation being injected alongside the fault.
	InterferenceProb float64
	// StepTimeoutSlack scales step means into timer deadlines (the paper
	// sets timeouts at the 95th percentile).
	StepTimeoutSlack float64
	// PeriodicInterval is the periodic assertion cadence.
	PeriodicInterval time.Duration
	// DisableConformance / DisableAssertions run the detection ablations.
	DisableConformance bool
	DisableAssertions  bool
	// Profile overrides the cloud profile (defaults to a calibrated
	// variant of the paper profile).
	Profile *simaws.Profile
	// Chaos, when set and enabled, turns the lane into a chaos lane: the
	// profile's log tap is wired in front of the manager's reorder buffer
	// and its fault injector onto the cloud's API plane.
	Chaos *chaos.Profile
}

func (c Config) withDefaults() Config {
	if c.RunsPerFault <= 0 {
		c.RunsPerFault = 20
	}
	if c.Scale <= 0 {
		// Keep the speed-up moderate: at high scale, goroutine wake-up
		// latency (~1ms wall) is multiplied into seconds of simulated
		// time and distorts the Figure 6 measurements.
		c.Scale = 120
	}
	if c.Parallelism <= 0 {
		// Runs are sleep-dominated, but keep the default conservative:
		// CPU saturation distorts the scaled clock.
		c.Parallelism = 2
	}
	if c.InterferenceProb < 0 {
		c.InterferenceProb = 0
	} else if c.InterferenceProb == 0 {
		c.InterferenceProb = 0.25
	}
	if c.StepTimeoutSlack <= 0 {
		// Timer deadline at roughly the 95th percentile of the
		// wait-for-new-instance step (boot ~N(90s,20s) + overhead):
		// tight enough to reproduce the paper's timeout-induced false
		// positives at a single-digit rate.
		c.StepTimeoutSlack = 1.45
	}
	if c.PeriodicInterval <= 0 {
		c.PeriodicInterval = time.Minute
	}
	return c
}

// calibratedProfile is the per-run cloud profile: paper-like API latency
// and boot times, mild eventual consistency, an account limit the
// co-tenant pressure interference can exhaust.
func calibratedProfile() simaws.Profile {
	p := simaws.PaperProfile()
	p.RatePerSecond = 0 // throttling is exercised by dedicated tests
	return p
}

// RunSpec describes one evaluation run.
type RunSpec struct {
	// ID is the run index within the campaign.
	ID int `json:"id"`
	// Fault is the injected fault (zero for a clean run).
	Fault faultinject.Kind `json:"fault"`
	// ClusterSize is the deployed instance count (4 or 20).
	ClusterSize int `json:"clusterSize"`
	// Interferences are the simultaneous operations injected.
	Interferences []faultinject.Interference `json:"interferences,omitempty"`
	// Seed drives all per-run randomness.
	Seed int64 `json:"seed"`
	// InjectDelay pins the fault-injection time (anchored to the new
	// launch configuration appearing). Zero draws a random delay, as in
	// the paper's "random point of time during rolling upgrade".
	InjectDelay time.Duration `json:"injectDelay,omitempty"`
	// ExpectedCauses lists extra root-cause node ids that count as a
	// correct diagnosis of the run's ground truth. Scenario runs whose
	// injected anomaly is not one of the 8 fault kinds (the spot
	// interruption storm) set this instead of Fault.
	ExpectedCauses []string `json:"expectedCauses,omitempty"`
}

// DetectionSummary condenses one detection for reporting.
type DetectionSummary struct {
	// Source, TriggerID and StepID echo the detection.
	Source    diagnosis.Source `json:"source"`
	TriggerID string           `json:"triggerId"`
	StepID    string           `json:"stepId,omitempty"`
	// Attribution classifies the detection against the run's ground
	// truth: "fault", "interference:<kind>", or "unattributed".
	Attribution string `json:"attribution"`
	// Conclusion is the diagnosis conclusion.
	Conclusion diagnosis.Conclusion `json:"conclusion"`
	// Causes are the confirmed root-cause node ids.
	Causes []string `json:"causes,omitempty"`
	// DiagnosisTime is the diagnosis duration in simulated time.
	DiagnosisTime time.Duration `json:"diagnosisTime"`
	// Degraded marks a detection made while the session's log stream had
	// known losses (its confidence is discounted).
	Degraded bool `json:"degraded,omitempty"`
}

// RunResult is the outcome of one run.
type RunResult struct {
	// Spec echoes the run spec.
	Spec RunSpec `json:"spec"`
	// UpgradeErr records how the upgrade task ended ("" = success).
	UpgradeErr string `json:"upgradeErr,omitempty"`
	// Detections summarizes every recorded detection.
	Detections []DetectionSummary `json:"detections"`
	// FaultDetected reports whether the injected fault was detected.
	FaultDetected bool `json:"faultDetected"`
	// FaultDiagnosed reports whether some diagnosis identified the
	// fault's root cause.
	FaultDiagnosed bool `json:"faultDiagnosed"`
	// ConformanceFirst reports whether the first detection came from
	// conformance checking (before any assertion failure).
	ConformanceFirst bool `json:"conformanceFirst"`
	// InterferencesDetected counts distinct injected interferences that
	// were detected and attributed.
	InterferencesDetected int `json:"interferencesDetected"`
	// FalsePositives counts unattributable detection events.
	FalsePositives int `json:"falsePositives"`
	// FalsePositivesDiagnosedNoCause counts false positives whose
	// diagnosis correctly concluded "no root cause identified".
	FalsePositivesDiagnosedNoCause int `json:"falsePositivesNoCause"`
	// ConfirmedCauseChains counts confirmed-cause timeline entries whose
	// evidence chain walks all the way back to a raw log event.
	ConfirmedCauseChains int `json:"confirmedCauseChains,omitempty"`
	// BrokenEvidenceChains counts confirmed-cause timeline entries whose
	// chain does NOT reach a log event (dangling or overwritten
	// evidence); the chaos acceptance gate requires zero.
	BrokenEvidenceChains int `json:"brokenEvidenceChains,omitempty"`
	// SimDuration is the simulated length of the run.
	SimDuration time.Duration `json:"simDuration"`

	// Healed reports that a heal-lane run ended with the upgrade task
	// completed and the cluster converged onto the intended launch
	// configuration after closed-loop remediation (RunHealOne only).
	Healed bool `json:"healed,omitempty"`
	// HealErr explains a failed heal (empty when Healed).
	HealErr string `json:"healErr,omitempty"`
	// Remediations is the remediation audit trail of a heal-lane run.
	Remediations []remediate.Remediation `json:"remediations,omitempty"`
	// RemediationChains counts executed remediations whose outcome entry
	// chains through the flight recorder back to a raw log event;
	// BrokenRemediationChains counts those that do not.
	RemediationChains       int `json:"remediationChains,omitempty"`
	BrokenRemediationChains int `json:"brokenRemediationChains,omitempty"`

	// KilledMember / AdoptedBy record a member-kill run's federation
	// verdict: the member that crashed mid-upgrade and the survivor the
	// front handed the operation to (RunMemberKillOne only).
	KilledMember string `json:"killedMember,omitempty"`
	AdoptedBy    string `json:"adoptedBy,omitempty"`
	// Handoffs counts federation.handoff entries on the adopted
	// session's timeline.
	Handoffs int `json:"handoffs,omitempty"`
	// DuplicateRemediations counts distinct executions of the same
	// remediation idempotency key across every member's ledger. A
	// snapshot-replicated copy of one execution is not a duplicate; two
	// independent firings of the same key are. Must be zero.
	DuplicateRemediations int `json:"duplicateRemediations,omitempty"`
}

// lane is one execution slot of a campaign: a simulated cloud with a
// single POD Manager that is reused across the lane's sequential runs —
// each run registers its own monitoring session instead of rebuilding the
// whole engine stack (the paper's shared-services deployment, §IV).
type lane struct {
	cfg     Config
	clk     *clock.Scaled
	bus     *logging.Bus
	cloud   *simaws.Cloud
	mgr     *core.Manager
	profile simaws.Profile
}

// replacementBudget derives the orchestrator's wait deadline from the
// lane's cloud profile instead of a fixed constant. Under the scaled
// clock, simulated time is a pure function of wall time, so every
// simulated deadline is effectively a wall deadline: at acceptance scale
// a fixed 5-minute budget left under 300ms of wall slack over the
// worst-case terminate+boot path, and a GC pause or a scheduler stall on
// an oversubscribed CPU turned into a spurious ErrTimeout. Three
// worst-case replacement cycles (terminate, boot, consistency window,
// reconciler tick) keep the deadline meaningful for real hangs while
// making the tolerable stall a multiple of the worst-case path.
func replacementBudget(p simaws.Profile) time.Duration {
	per := p.TerminateTime.Max + p.BootTime.Max + p.ConsistencyWindow() + p.TickInterval
	if budget := 3 * per; budget > 5*time.Minute {
		return budget
	}
	return 5 * time.Minute
}

// teardownBudget bounds the post-run wait for every instance to die,
// derived from the profile's terminate-time parameters like
// replacementBudget.
func teardownBudget(p simaws.Profile) time.Duration {
	per := p.TerminateTime.Max + p.ConsistencyWindow() + p.TickInterval
	if budget := 3 * per; budget > 5*time.Minute {
		return budget
	}
	return 5 * time.Minute
}

// newLane builds the lane's cloud and Manager. seed drives the cloud's
// randomness. mutate hooks, when given, adjust the ManagerConfig before
// the Manager is built — scenario lanes use them to swap in their own
// process model, assertion specification and plan catalog.
func newLane(cfg Config, seed int64, mutate ...func(*core.ManagerConfig)) (*lane, error) {
	cfg = cfg.withDefaults()
	clk := clock.NewScaled(cfg.Scale, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := calibratedProfile()
	if cfg.Profile != nil {
		profile = *cfg.Profile
	}
	cloudOpts := []simaws.Option{simaws.WithSeed(seed), simaws.WithBus(bus)}
	var logTap func(<-chan logging.Event) <-chan logging.Event
	chaosLabel := ""
	if cfg.Chaos != nil && cfg.Chaos.Enabled() {
		cp := *cfg.Chaos
		if cp.Seed == 0 {
			cp.Seed = seed
		}
		if inj := cp.FaultInjector(clk); inj != nil {
			cloudOpts = append(cloudOpts, simaws.WithFaultInjector(inj))
		}
		logTap = cp.LogTap(clk)
		chaosLabel = cp.Name
	}
	cloud := simaws.New(clk, profile, cloudOpts...)
	cloud.Start()
	mgrCfg := core.ManagerConfig{
		Cloud:      cloud,
		Bus:        bus,
		LogTap:     logTap,
		ChaosLabel: chaosLabel,
		// Evaluation runs verify end-to-end evidence chains, so the
		// per-operation ring must hold a whole run: a chaos-duplicated
		// upgrade stays well under this, and rings are retired with the
		// run's session.
		FlightCapacity: 2048,
		API: consistentapi.Config{
			// Stale reads are masked by resampling (staleness is an 8%
			// per-read event), so a short budget suffices; a tight budget
			// also keeps failing diagnosis tests — which always burn the
			// full budget — within the paper's seconds-scale envelope.
			MaxAttempts:    3,
			InitialBackoff: 250 * time.Millisecond,
			MaxBackoff:     time.Second,
			CallTimeout:    20 * time.Second,
		},
		PeriodicInterval:   cfg.PeriodicInterval,
		StepTimeoutSlack:   cfg.StepTimeoutSlack,
		DisableConformance: cfg.DisableConformance,
		DisableAssertions:  cfg.DisableAssertions,
	}
	for _, m := range mutate {
		m(&mgrCfg)
	}
	mgr, err := core.NewManager(mgrCfg)
	if err != nil {
		cloud.Stop()
		bus.Close()
		return nil, err
	}
	mgr.Start()
	return &lane{cfg: cfg, clk: clk, bus: bus, cloud: cloud, mgr: mgr, profile: profile}, nil
}

// close tears the lane down.
func (l *lane) close() {
	l.mgr.Stop()
	l.cloud.Stop()
	l.bus.Close()
}

// runOne executes one evaluation run on the lane: deploy a cluster named
// appName, register a session, upgrade, inject, drain, classify, then
// tear the cluster down so the account limit is free for the next run.
func (l *lane) runOne(ctx context.Context, spec RunSpec, appName string) (*RunResult, error) {
	runStart := l.clk.Now()
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	cluster, err := upgrade.Deploy(ctx, l.cloud, appName, spec.ClusterSize, "v1")
	if err != nil {
		return nil, fmt.Errorf("experiment: run %d: %w", spec.ID, err)
	}
	if err := cluster.WaitReady(ctx, l.cloud, 10*time.Minute); err != nil {
		return nil, fmt.Errorf("experiment: run %d: %w", spec.ID, err)
	}
	newAMI, err := l.cloud.RegisterImage(ctx, appName+"-v2", "v2", upgrade.AppServices)
	if err != nil {
		return nil, fmt.Errorf("experiment: run %d: %w", spec.ID, err)
	}

	taskID := fmt.Sprintf("pushing %s run-%d", cluster.ASGName, spec.ID)
	upSpec := cluster.UpgradeSpec(taskID, newAMI)
	upSpec.NewLCName = fmt.Sprintf("%s-lc-%s", cluster.ASGName, newAMI)
	upSpec.WaitTimeout = replacementBudget(l.profile)
	upSpec.PollInterval = 5 * time.Second

	sess, err := l.mgr.Watch(core.Expectation{
		ASGName:      cluster.ASGName,
		ELBName:      cluster.ELBName,
		NewImageID:   newAMI,
		NewVersion:   "v2",
		NewLCName:    upSpec.NewLCName,
		KeyName:      cluster.KeyName,
		SGName:       cluster.SGName,
		InstanceType: "m1.small",
		ClusterSize:  spec.ClusterSize,
	}, core.BindInstance(taskID), core.WithSessionID(fmt.Sprintf("run-%d", spec.ID)))
	if err != nil {
		return nil, fmt.Errorf("experiment: run %d: %w", spec.ID, err)
	}

	// Inject the fault at a random point during the upgrade (anchored to
	// the creation of the new launch configuration) and the interferences
	// at independent random times.
	injector := faultinject.NewInjector(l.cloud, cluster, spec.Seed^0xfa17)
	injectDone := make(chan struct{})
	go func() {
		defer close(injectDone)
		if spec.Fault != 0 {
			delay := spec.InjectDelay
			if delay <= 0 {
				delay = time.Duration(10+rng.Intn(80)) * time.Second
			}
			_ = injector.Inject(ctx, spec.Fault, delay, upSpec.NewLCName, newAMI)
		}
	}()
	interfDone := make(chan struct{})
	go func() {
		defer close(interfDone)
		for _, i := range spec.Interferences {
			delay := time.Duration(20+rng.Intn(120)) * time.Second
			_ = injector.Interfere(ctx, i, delay)
		}
	}()

	up := upgrade.NewUpgrader(l.cloud, l.bus)
	rep := up.Run(ctx, upSpec)
	<-injectDone
	<-interfDone

	// Grace period: let timer-driven evaluations and in-flight diagnoses
	// finish, then wait (in simulated time) for the manager to go quiet.
	_ = l.clk.Sleep(ctx, 30*time.Second)
	l.mgr.Drain(ctx, 10*time.Minute)

	res := &RunResult{Spec: spec, SimDuration: l.clk.Since(runStart)}
	if rep.Err != nil {
		res.UpgradeErr = rep.Err.Error()
	}
	classify(res, sess.Detections())
	verifyEvidenceChains(res, sess.Timeline())

	// Retire the session and the cluster: heal injected faults, delete the
	// ASG and wait for its instances to die so the account-wide instance
	// limit is available to the lane's next run.
	l.mgr.Remove(sess.ID())
	injector.Heal()
	_ = l.cloud.DeleteAutoScalingGroup(ctx, cluster.ASGName)
	l.awaitTeardown(ctx)
	return res, nil
}

// RunOne executes a single evaluation run on a fresh, seeded lane: deploy,
// upgrade, inject, watch, classify. Campaigns use RunSpecs, which reuses
// one Manager per lane across runs.
func RunOne(ctx context.Context, spec RunSpec, cfg Config) (*RunResult, error) {
	l, err := newLane(cfg, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiment: run %d: %w", spec.ID, err)
	}
	defer l.close()
	return l.runOne(ctx, spec, "pm")
}

// verifyEvidenceChains walks every confirmed-cause entry of the run's
// flight-recorder timeline back through its parents, counting chains
// that bottom out at a raw log event versus broken ones. Must run
// before the session is removed — removal retires the timeline ring.
func verifyEvidenceChains(res *RunResult, tl flight.Timeline) {
	for _, e := range tl.Entries {
		if e.Kind != flight.KindCause || e.Attrs["confirmed"] != "true" {
			continue
		}
		if _, ok := flight.ChainToLog(tl.Entries, e.ID); ok {
			res.ConfirmedCauseChains++
		} else {
			res.BrokenEvidenceChains++
		}
	}
}

// classify attributes each detection to the run's ground truth and fills
// the run-level verdicts.
func classify(res *RunResult, dets []core.Detection) {
	interfSeen := make(map[faultinject.Interference]bool)
	for _, d := range dets {
		sum := DetectionSummary{
			Source:    d.Source,
			TriggerID: d.TriggerID,
			StepID:    d.StepID,
			Degraded:  d.Degraded,
		}
		if d.Diagnosis != nil {
			sum.Conclusion = d.Diagnosis.Conclusion
			sum.DiagnosisTime = d.Diagnosis.Duration
			for _, c := range d.Diagnosis.RootCauses {
				sum.Causes = append(sum.Causes, c.NodeID)
			}
		}
		sum.Attribution = attribute(d, res.Spec)
		if strings.HasPrefix(sum.Attribution, "interference:") {
			for _, i := range res.Spec.Interferences {
				if sum.Attribution == "interference:"+i.String() && !interfSeen[i] {
					interfSeen[i] = true
					res.InterferencesDetected++
				}
			}
		}
		res.Detections = append(res.Detections, sum)
	}
	if len(res.Detections) > 0 && res.Detections[0].Source == diagnosis.SourceConformance {
		res.ConformanceFirst = true
	}

	var faultEvents, unattributed int
	var unattributedNoCause int
	for _, s := range res.Detections {
		switch {
		case s.Attribution == "fault":
			faultEvents++
		case s.Attribution == "unattributed":
			unattributed++
			if s.Conclusion == diagnosis.ConclusionNone || s.Conclusion == diagnosis.ConclusionSuspected {
				unattributedNoCause++
			}
		}
	}
	res.FaultDiagnosed = faultEvents > 0
	if res.Spec.Fault != 0 || len(res.Spec.ExpectedCauses) > 0 {
		res.FaultDetected = faultEvents > 0 || unattributed > 0
		if faultEvents == 0 && unattributed > 0 {
			// One unattributed event stands in as the fault's (wrongly
			// diagnosed) detection; the rest are false positives.
			unattributed--
			if unattributedNoCause > 0 {
				unattributedNoCause--
			}
		}
	}
	res.FalsePositives = unattributed
	res.FalsePositivesDiagnosedNoCause = unattributedNoCause
}

// attribute classifies one detection against the injected ground truth.
func attribute(d core.Detection, spec RunSpec) string {
	if d.Diagnosis == nil {
		return "unattributed"
	}
	for _, i := range spec.Interferences {
		switch i {
		case faultinject.InterferenceScaleIn:
			if d.Diagnosis.HasCause("simultaneous-scale-in") {
				return "interference:" + i.String()
			}
		case faultinject.InterferenceAccountPressure:
			if d.Diagnosis.HasCause("account-limit-reached") {
				return "interference:" + i.String()
			}
		case faultinject.InterferenceRandomTermination:
			if d.Diagnosis.HasCause("unexpected-termination") {
				return "interference:" + i.String()
			}
			for _, s := range d.Diagnosis.Suspected {
				if strings.HasPrefix(s.NodeID, "unexpected-termination") {
					return "interference:" + i.String()
				}
			}
		}
	}
	if spec.Fault != 0 {
		for _, base := range spec.Fault.ExpectedRootCauses() {
			if d.Diagnosis.HasCause(base) {
				return "fault"
			}
		}
	}
	for _, base := range spec.ExpectedCauses {
		if d.Diagnosis.HasCause(base) {
			return "fault"
		}
		for _, s := range d.Diagnosis.Suspected {
			if strings.HasPrefix(s.NodeID, base) {
				return "fault"
			}
		}
	}
	return "unattributed"
}
