package experiment

import (
	"testing"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/core"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faultinject"
)

func detWith(causes []string, suspected []string, conclusion diagnosis.Conclusion) core.Detection {
	d := &diagnosis.Diagnosis{Conclusion: conclusion}
	for _, c := range causes {
		d.RootCauses = append(d.RootCauses, diagnosis.Cause{NodeID: c, Confirmed: true})
	}
	for _, s := range suspected {
		d.Suspected = append(d.Suspected, diagnosis.Cause{NodeID: s})
	}
	return core.Detection{Source: diagnosis.SourceAssertion, TriggerID: assertion.CheckASGVersionCount, Diagnosis: d}
}

func TestAttributeFaultSignatures(t *testing.T) {
	cases := []struct {
		fault  faultinject.Kind
		causes []string
		want   string
	}{
		{faultinject.KindAMIChanged, []string{"wrong-ami"}, "fault"},
		{faultinject.KindAMIUnavailable, []string{"launch-ami-unavailable"}, "fault"},
		{faultinject.KindAMIUnavailable, []string{"launch-ami-unavailable-ic"}, "fault"}, // suffixed catalog id
		{faultinject.KindELBUnavailable, []string{"elb-unreachable"}, "fault"},
		{faultinject.KindKeyPairChanged, []string{"wrong-ami"}, "unattributed"}, // wrong cause
		{faultinject.KindSGChanged, nil, "unattributed"},
	}
	for _, tc := range cases {
		spec := RunSpec{Fault: tc.fault}
		got := attribute(detWith(tc.causes, nil, diagnosis.ConclusionIdentified), spec)
		if got != tc.want {
			t.Errorf("fault %s causes %v: attribution = %q, want %q", tc.fault, tc.causes, got, tc.want)
		}
	}
}

func TestAttributeInterferenceSignatures(t *testing.T) {
	spec := RunSpec{
		Fault: faultinject.KindAMIChanged,
		Interferences: []faultinject.Interference{
			faultinject.InterferenceScaleIn,
			faultinject.InterferenceAccountPressure,
			faultinject.InterferenceRandomTermination,
		},
	}
	if got := attribute(detWith([]string{"simultaneous-scale-in"}, nil, diagnosis.ConclusionIdentified), spec); got != "interference:scale-in" {
		t.Errorf("scale-in attribution = %q", got)
	}
	if got := attribute(detWith([]string{"account-limit-reached-ic"}, nil, diagnosis.ConclusionIdentified), spec); got != "interference:account-pressure" {
		t.Errorf("account attribution = %q", got)
	}
	if got := attribute(detWith(nil, []string{"unexpected-termination-elb"}, diagnosis.ConclusionSuspected), spec); got != "interference:random-termination" {
		t.Errorf("termination attribution = %q", got)
	}
	// Interference signature takes precedence over fault signature.
	if got := attribute(detWith([]string{"simultaneous-scale-in", "wrong-ami"}, nil, diagnosis.ConclusionIdentified), spec); got != "interference:scale-in" {
		t.Errorf("precedence = %q", got)
	}
	// Uninjected interference signatures do not attribute.
	lonely := RunSpec{Fault: faultinject.KindAMIChanged}
	if got := attribute(detWith([]string{"simultaneous-scale-in"}, nil, diagnosis.ConclusionIdentified), lonely); got != "unattributed" {
		t.Errorf("uninjected scale-in = %q", got)
	}
}

func TestAttributeNilDiagnosis(t *testing.T) {
	det := core.Detection{}
	if got := attribute(det, RunSpec{Fault: faultinject.KindAMIChanged}); got != "unattributed" {
		t.Errorf("nil diagnosis = %q", got)
	}
}

func TestClassifyRunVerdicts(t *testing.T) {
	// Faulted run: one fault event, one FP with a correct "no cause"
	// verdict, one detected interference.
	spec := RunSpec{
		Fault:         faultinject.KindKeyPairChanged,
		Interferences: []faultinject.Interference{faultinject.InterferenceScaleIn},
	}
	dets := []core.Detection{
		{Source: diagnosis.SourceConformance, TriggerID: "conformance:error",
			Diagnosis: &diagnosis.Diagnosis{Conclusion: diagnosis.ConclusionNone}},
		detWith([]string{"wrong-keypair"}, nil, diagnosis.ConclusionIdentified),
		detWith([]string{"simultaneous-scale-in-ic"}, nil, diagnosis.ConclusionIdentified),
	}
	res := &RunResult{Spec: spec}
	classify(res, dets)
	if !res.FaultDetected || !res.FaultDiagnosed {
		t.Errorf("fault verdicts: detected=%v diagnosed=%v", res.FaultDetected, res.FaultDiagnosed)
	}
	if res.InterferencesDetected != 1 {
		t.Errorf("interferences = %d", res.InterferencesDetected)
	}
	if res.FalsePositives != 1 || res.FalsePositivesDiagnosedNoCause != 1 {
		t.Errorf("FPs = %d/%d", res.FalsePositives, res.FalsePositivesDiagnosedNoCause)
	}
	if !res.ConformanceFirst {
		t.Error("conformance-first not recognized")
	}
}

func TestClassifyUnattributedStandsInForFault(t *testing.T) {
	// A faulted run with only a no-cause detection: the detection stands
	// in for the fault (detected but wrongly diagnosed), not an FP.
	spec := RunSpec{Fault: faultinject.KindAMIUnavailable}
	dets := []core.Detection{
		{Source: diagnosis.SourceTimer, TriggerID: assertion.CheckASGVersionCount,
			Diagnosis: &diagnosis.Diagnosis{Conclusion: diagnosis.ConclusionNone}},
	}
	res := &RunResult{Spec: spec}
	classify(res, dets)
	if !res.FaultDetected {
		t.Error("fault not counted as detected")
	}
	if res.FaultDiagnosed {
		t.Error("fault wrongly counted as diagnosed")
	}
	if res.FalsePositives != 0 {
		t.Errorf("FPs = %d, want 0", res.FalsePositives)
	}
}

func TestClassifyCleanRunAllFPs(t *testing.T) {
	spec := RunSpec{} // no fault
	dets := []core.Detection{
		{Source: diagnosis.SourceTimer, TriggerID: assertion.CheckASGInstanceCount,
			Diagnosis: &diagnosis.Diagnosis{Conclusion: diagnosis.ConclusionNone}},
		{Source: diagnosis.SourceTimer, TriggerID: assertion.CheckASGVersionCount,
			Diagnosis: &diagnosis.Diagnosis{Conclusion: diagnosis.ConclusionIdentified,
				RootCauses: []diagnosis.Cause{{NodeID: "wrong-ami"}}}},
	}
	res := &RunResult{Spec: spec}
	classify(res, dets)
	if res.FaultDetected {
		t.Error("fault detected on clean run")
	}
	if res.FalsePositives != 2 {
		t.Errorf("FPs = %d, want 2", res.FalsePositives)
	}
	if res.FalsePositivesDiagnosedNoCause != 1 {
		t.Errorf("correct FPs = %d, want 1", res.FalsePositivesDiagnosedNoCause)
	}
}
