package experiment

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faultinject"
)

// bgChaosKinds is the representative fault set for the blue/green chaos
// gate: one configuration flip the green fleet boots from (wrong AMI →
// version-count mismatch at the join step) and the three resource
// deletions that strand the green launches entirely (diagnosed off the
// join-step timer). The remaining flips (key pair, security group,
// instance type) corrupt green launches without changing the version the
// spec asserts on, so the blue/green spec deliberately leaves them to
// the conformance/timeout layer rather than pretending coverage.
func bgChaosKinds() []faultinject.Kind {
	return []faultinject.Kind{
		faultinject.KindAMIChanged,
		faultinject.KindAMIUnavailable,
		faultinject.KindKeyPairUnavailable,
		faultinject.KindSGUnavailable,
	}
}

// TestChaosBlueGreenFaultsStillDiagnosed extends the chaos acceptance
// gate to the blue/green scenario: with the log pipeline lossy and API
// reads stormed, faults injected against the green resources must still
// be detected and identified through the declarative scenario plans,
// with unbroken cause→log evidence chains and growing SLO histograms.
func TestChaosBlueGreenFaultsStillDiagnosed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance campaign is slow")
	}
	for i, kind := range bgChaosKinds() {
		kind := kind
		spec := RunSpec{
			ID: 300 + i, Fault: kind, ClusterSize: 2,
			Seed:        int64(300 + 11*i),
			InjectDelay: time.Second,
		}
		t.Run(kind.String(), func(t *testing.T) {
			// Same uninformative-run retry as the acceptance gates: zero
			// detections or nothing but degraded-evidence conclusions means
			// the box's scheduling starved the run of meaning; rerun it. A
			// genuine regression reproduces on every attempt.
			var res *RunResult
			var err error
			var detBefore, diagBefore uint64
			for attempt := 0; attempt < 3; attempt++ {
				detBefore, diagBefore = sloCounts()
				res, err = RunBlueGreenOne(context.Background(), spec, chaosCfg())
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Detections) > 0 && (res.FaultDiagnosed || !onlyDegradedConfirmations(res)) {
					break
				}
				t.Logf("attempt %d: no sound confirmation of the injected cause (%d detections); rerunning",
					attempt+1, len(res.Detections))
			}
			if !res.FaultDetected {
				t.Fatalf("fault undetected under chaos; detections: %+v", res.Detections)
			}
			if !res.FaultDiagnosed {
				t.Errorf("fault detected but root cause not identified under chaos; detections: %+v", res.Detections)
			}
			for _, d := range res.Detections {
				if d.Attribution == "unattributed" && d.Conclusion == diagnosis.ConclusionIdentified && !d.Degraded {
					t.Errorf("non-degraded wrong diagnosis under chaos: %+v", d)
				}
			}
			if res.BrokenEvidenceChains != 0 {
				t.Errorf("%d confirmed cause(s) with broken evidence chains under chaos", res.BrokenEvidenceChains)
			}
			if res.FaultDiagnosed && res.ConfirmedCauseChains == 0 {
				t.Errorf("fault diagnosed but no confirmed-cause evidence chain reaches a log event")
			}
			detAfter, diagAfter := sloCounts()
			if detAfter <= detBefore {
				t.Errorf("pod_slo_detection_latency_seconds did not grow (before=%d after=%d)", detBefore, detAfter)
			}
			if res.FaultDiagnosed && diagAfter <= diagBefore {
				t.Errorf("pod_slo_diagnosis_latency_seconds did not grow (before=%d after=%d)", diagBefore, diagAfter)
			}
		})
	}
}

// TestChaosSpotStormStillDiagnosed runs the spot-interruption storm under
// the acceptance chaos regime: the capacity drop must still be pinned on
// the external terminations through the audit trail, not degraded into a
// confident wrong cause by the lossy pipeline.
func TestChaosSpotStormStillDiagnosed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos acceptance campaign is slow")
	}
	// Same uninformative-run retry as the acceptance gates: a storm that
	// reclaimed its instances outside the watch window leaves nothing to
	// diagnose; rerun it. A genuine regression reproduces on every attempt.
	var res *RunResult
	var err error
	var detBefore, diagBefore uint64
	for attempt := 0; attempt < 3; attempt++ {
		detBefore, diagBefore = sloCounts()
		res, err = RunSpotStormOne(context.Background(), RunSpec{
			ID: 320, ClusterSize: 3, Seed: 331, InjectDelay: 15 * time.Second,
		}, chaosCfg())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Detections) > 0 && (res.FaultDiagnosed || !onlyDegradedConfirmations(res)) {
			break
		}
		t.Logf("attempt %d: no sound confirmation of the storm (%d detections); rerunning",
			attempt+1, len(res.Detections))
	}
	if !res.FaultDetected {
		t.Fatalf("storm undetected under chaos; detections: %+v", res.Detections)
	}
	if !res.FaultDiagnosed {
		t.Errorf("storm not diagnosed as unexpected-termination under chaos; detections: %+v", res.Detections)
	}
	for _, d := range res.Detections {
		if d.Attribution == "unattributed" && d.Conclusion == diagnosis.ConclusionIdentified && !d.Degraded {
			t.Errorf("non-degraded wrong diagnosis under chaos: %+v", d)
		}
	}
	if res.BrokenEvidenceChains != 0 {
		t.Errorf("%d confirmed cause(s) with broken evidence chains under chaos", res.BrokenEvidenceChains)
	}
	detAfter, diagAfter := sloCounts()
	if detAfter <= detBefore {
		t.Errorf("pod_slo_detection_latency_seconds did not grow (before=%d after=%d)", detBefore, detAfter)
	}
	if res.FaultDiagnosed && diagAfter <= diagBefore {
		t.Errorf("pod_slo_diagnosis_latency_seconds did not grow (before=%d after=%d)", diagBefore, diagAfter)
	}
}
