package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/faultinject"
)

// Metrics are the Table I quantities.
type Metrics struct {
	// TP, FP and FN are detection counts (true positives include both
	// attributed fault detections and detected interferences, as in the
	// paper's 160 + 46 accounting).
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`
	// Correct counts correctly diagnosed detections (for false positives
	// the correct diagnosis is "no root cause identified").
	Correct int `json:"correct"`
}

// Precision is TP / (TP + FP).
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall is TP / (TP + FN).
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// Accuracy is Correct / (TP + FP) — the paper's accuracy rate of
// diagnosis.
func (m Metrics) Accuracy() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.TP+m.FP)
}

// add folds a run into the metrics.
func (m *Metrics) add(r *RunResult) {
	if r.Spec.Fault != 0 {
		if r.FaultDetected {
			m.TP++
			if r.FaultDiagnosed {
				m.Correct++
			}
		} else {
			m.FN++
		}
	}
	m.TP += r.InterferencesDetected
	m.Correct += r.InterferencesDetected
	m.FP += r.FalsePositives
	m.Correct += r.FalsePositivesDiagnosedNoCause
}

// Report aggregates a campaign.
type Report struct {
	// Runs are the individual results in spec order.
	Runs []*RunResult `json:"runs"`
	// Overall are the Table I metrics across all runs.
	Overall Metrics `json:"overall"`
	// PerFault groups the metrics by fault type (Figure 7).
	PerFault map[faultinject.Kind]Metrics `json:"perFault"`
	// DiagnosisTimes are all diagnosis durations (Figure 6), sorted.
	DiagnosisTimes []time.Duration `json:"diagnosisTimes"`
	// ConformanceFirstByFault counts runs whose first detection came
	// from conformance checking, per fault (§V.D: 20 of the 80 runs of
	// resource faults).
	ConformanceFirstByFault map[faultinject.Kind]int `json:"conformanceFirstByFault"`
	// InterferencesInjected and InterferencesDetected total the
	// simultaneous-operation ground truth and detections.
	InterferencesInjected int `json:"interferencesInjected"`
	InterferencesDetected int `json:"interferencesDetected"`
	// WallDuration is how long the campaign took in real time.
	WallDuration time.Duration `json:"wallDuration"`
}

// Specs enumerates the campaign's runs: RunsPerFault runs for each of the
// 8 fault types; every fifth run uses the 20-instance cluster, the rest
// the 4-instance cluster; interferences are mixed in per
// InterferenceProb.
func Specs(cfg Config) []RunSpec {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var specs []RunSpec
	id := 0
	for _, kind := range faultinject.AllKinds() {
		for i := 0; i < cfg.RunsPerFault; i++ {
			size := 4
			if i%5 == 4 {
				size = 20
			}
			spec := RunSpec{
				ID:          id,
				Fault:       kind,
				ClusterSize: size,
				Seed:        cfg.Seed + int64(id)*7919,
			}
			for _, interf := range []faultinject.Interference{
				faultinject.InterferenceScaleIn,
				faultinject.InterferenceRandomTermination,
				faultinject.InterferenceAccountPressure,
			} {
				if rng.Float64() < cfg.InterferenceProb {
					spec.Interferences = append(spec.Interferences, interf)
				}
			}
			specs = append(specs, spec)
			id++
		}
	}
	return specs
}

// Run executes the full campaign with bounded parallelism.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	specs := Specs(cfg)
	return RunSpecs(ctx, specs, cfg)
}

// RunSpecs executes the given runs with bounded parallelism and
// aggregates the report. Each parallel lane owns one simulated cloud and
// one POD Manager that is reused across the lane's sequential runs; every
// run deploys a uniquely named cluster and registers its own monitoring
// session, so the campaign exercises the shared-services deployment
// instead of rebuilding the engine stack per run.
func RunSpecs(ctx context.Context, specs []RunSpec, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	started := clock.Wall.Now()
	results := make([]*RunResult, len(specs))
	errs := make([]error, len(specs))
	lanes := cfg.Parallelism
	if lanes > len(specs) {
		lanes = len(specs)
	}
	type job struct {
		i    int
		spec RunSpec
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < lanes; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := newLane(cfg, cfg.Seed+int64(w+1)*104729)
			if err != nil {
				for j := range jobs {
					errs[j.i] = err
				}
				return
			}
			defer l.close()
			for j := range jobs {
				results[j.i], errs[j.i] = l.runOne(ctx, j.spec, fmt.Sprintf("pm%d", j.spec.ID))
			}
		}()
	}
	for i, spec := range specs {
		jobs <- job{i, spec}
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: run %d failed: %w", specs[i].ID, err)
		}
	}
	return Aggregate(results, clock.Wall.Since(started)), nil
}

// Aggregate folds run results into a Report.
func Aggregate(results []*RunResult, wall time.Duration) *Report {
	rep := &Report{
		Runs:                    results,
		PerFault:                make(map[faultinject.Kind]Metrics),
		ConformanceFirstByFault: make(map[faultinject.Kind]int),
		WallDuration:            wall,
	}
	for _, r := range results {
		rep.Overall.add(r)
		pf := rep.PerFault[r.Spec.Fault]
		pf.add(r)
		rep.PerFault[r.Spec.Fault] = pf
		if r.ConformanceFirst {
			rep.ConformanceFirstByFault[r.Spec.Fault]++
		}
		rep.InterferencesInjected += len(r.Spec.Interferences)
		rep.InterferencesDetected += r.InterferencesDetected
		for _, d := range r.Detections {
			if d.DiagnosisTime > 0 {
				rep.DiagnosisTimes = append(rep.DiagnosisTimes, d.DiagnosisTime)
			}
		}
	}
	sort.Slice(rep.DiagnosisTimes, func(i, j int) bool {
		return rep.DiagnosisTimes[i] < rep.DiagnosisTimes[j]
	})
	return rep
}

// TimeStats summarizes the diagnosis-time distribution of Figure 6.
type TimeStats struct {
	// Count is the number of diagnoses.
	Count int `json:"count"`
	// Min, Mean, P95 and Max are the distribution's shape parameters the
	// paper reports (1.29 s, 2.30 s, 3.83 s, 10.44 s).
	Min  time.Duration `json:"min"`
	Mean time.Duration `json:"mean"`
	P95  time.Duration `json:"p95"`
	Max  time.Duration `json:"max"`
}

// Times computes the distribution statistics.
func (r *Report) Times() TimeStats {
	ts := TimeStats{Count: len(r.DiagnosisTimes)}
	if ts.Count == 0 {
		return ts
	}
	var sum time.Duration
	for _, d := range r.DiagnosisTimes {
		sum += d
	}
	ts.Min = r.DiagnosisTimes[0]
	ts.Max = r.DiagnosisTimes[ts.Count-1]
	ts.Mean = sum / time.Duration(ts.Count)
	idx := int(0.95 * float64(ts.Count-1))
	ts.P95 = r.DiagnosisTimes[idx]
	return ts
}

// Histogram buckets the diagnosis times with the given width, returning
// counts per bucket starting at zero.
func (r *Report) Histogram(width time.Duration) []int {
	if width <= 0 || len(r.DiagnosisTimes) == 0 {
		return nil
	}
	maxBucket := int(r.DiagnosisTimes[len(r.DiagnosisTimes)-1] / width)
	counts := make([]int, maxBucket+1)
	for _, d := range r.DiagnosisTimes {
		counts[int(d/width)]++
	}
	return counts
}
