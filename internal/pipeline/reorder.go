package pipeline

import (
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
)

// Reorder-buffer metrics: how much repair the lossy shipping fabric needed.
// The labelled dispositions are resolved once — CounterVec.With allocates
// per call, which the per-event Offer path cannot afford.
var (
	mReorder = obs.Default.CounterVec("pod_reorder_events_total",
		"Sequenced events through the reorder/dedup buffer by disposition.", "disposition")
	mReorderUnseq     = mReorder.With("unsequenced")
	mReorderInOrder   = mReorder.With("in_order")
	mReorderDuplicate = mReorder.With("duplicate")
	mReorderHeld      = mReorder.With("held")
	mReorderGaps      = obs.Default.Counter("pod_reorder_gaps_total",
		"Sequence gaps declared after the watermark expired or the window overflowed.")
	mReorderPending = obs.Default.Gauge("pod_reorder_pending",
		"Out-of-order events currently held by reorder buffers.")
)

// ReorderOptions tune a ReorderBuffer.
type ReorderOptions struct {
	// Window is how long (clock time) an out-of-order event may wait for
	// its predecessors before the watermark declares them lost. Defaults
	// to 3s.
	Window time.Duration
	// MaxPending bounds the held events per source; past it the oldest
	// run is force-flushed (declaring a gap) regardless of the watermark.
	// Defaults to 256.
	MaxPending int
	// Schedule, when set, arms a one-shot timer driving the watermark: the
	// buffer schedules a Flush whenever it holds out-of-order events, so
	// gaps are declared even if no further event ever arrives. It must
	// return a cancel function (assertion.TimerSet.After fits). When nil
	// the owner is responsible for calling Flush.
	Schedule func(d time.Duration, f func()) func()
}

// Delivery is one event released by a ReorderBuffer, in per-source
// sequence order.
type Delivery struct {
	Event logging.Event
	// GapBefore is true when one or more events sequenced immediately
	// before this one were declared lost — the consumer is looking at a
	// hole in the stream and should degrade accordingly.
	GapBefore bool
	// Held is true when the event arrived out of order and waited in the
	// buffer before release — the stream was repaired, not pristine.
	Held bool
}

// ReorderBuffer repairs a lossy event stream in front of the conformance
// checker: events carrying bus sequence numbers (Event.Seq) are delivered
// to the callback in per-source order exactly once — duplicates are
// discarded, out-of-order events are held in a bounded window, and
// missing events are declared lost once the clock-driven watermark
// expires, at which point delivery resumes past the gap with
// Delivery.GapBefore set.
//
// Sources are keyed by (Source, SourceHost, Type), matching the bus
// stamping granularity. Events without a sequence number pass through
// unexamined. The deliver callback runs under the buffer's lock — every
// delivery is totally ordered — and must not call back into the buffer.
type ReorderBuffer struct {
	clk     clock.Clock
	opts    ReorderOptions
	deliver func(Delivery)

	mu          sync.Mutex
	sources     map[sourceKey]*reorderSource
	flushCancel func()
	gaps        uint64
	duplicates  uint64
}

type reorderSource struct {
	next    uint64 // next expected sequence number; 0 = first event decides
	pending map[uint64]heldEvent
}

type heldEvent struct {
	ev logging.Event
	at time.Time // clock arrival time, for the watermark
}

// NewReorderBuffer returns a buffer delivering repaired streams to the
// callback.
func NewReorderBuffer(clk clock.Clock, opts ReorderOptions, deliver func(Delivery)) *ReorderBuffer {
	if opts.Window <= 0 {
		opts.Window = 3 * time.Second
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 256
	}
	return &ReorderBuffer{
		clk:     clk,
		opts:    opts,
		deliver: deliver,
		sources: make(map[sourceKey]*reorderSource),
	}
}

// sourceKey identifies one sequenced stream. A struct key hashes the three
// components directly — the string concatenation it replaces allocated a
// fresh key per offered event.
type sourceKey struct {
	src, host, typ string
}

func keyOf(e logging.Event) sourceKey {
	return sourceKey{src: e.Source, host: e.SourceHost, typ: e.Type}
}

// Offer feeds one event into the buffer. In-order events (and unsequenced
// ones) are delivered synchronously; duplicates are dropped; out-of-order
// events are held until their predecessors arrive, the watermark expires,
// or the window overflows.
//
// Budget note: both admitted sites are the per-source state created on
// the first event of a new stream, not per-event work.
//
//podlint:hotpath budget=2
func (b *ReorderBuffer) Offer(ev logging.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ev.Seq == 0 {
		mReorderUnseq.Inc()
		b.deliver(Delivery{Event: ev})
		return
	}
	key := keyOf(ev)
	src, ok := b.sources[key]
	if !ok {
		src = &reorderSource{pending: make(map[uint64]heldEvent, 8)}
		b.sources[key] = src
	}
	switch {
	case ev.Seq == src.next || (src.next == 0 && ev.Seq == 1):
		// The expected next event arrived (bus streams start at 1, which
		// also sets the baseline). Deliver and drain any consecutive held
		// successors.
		mReorderInOrder.Inc()
		src.next = ev.Seq + 1
		b.deliver(Delivery{Event: ev})
		b.drain(src, false)
	case src.next != 0 && ev.Seq < src.next:
		// Already delivered (or declared lost): a duplicate.
		b.duplicates++
		mReorderDuplicate.Inc()
	default:
		// Out of order — including a stream whose first observed event is
		// not seq 1: earlier events may still be in flight, so it is held
		// rather than taken as the baseline.
		if _, dup := src.pending[ev.Seq]; dup {
			b.duplicates++
			mReorderDuplicate.Inc()
			return
		}
		mReorderHeld.Inc()
		mReorderPending.Inc()
		src.pending[ev.Seq] = heldEvent{ev: ev, at: b.clk.Now()}
		for len(src.pending) > b.opts.MaxPending {
			b.forceOldest(src)
		}
		b.armFlush()
	}
	b.flushExpired(b.clk.Now())
}

// drain delivers consecutive held successors of src.next. gapFirst marks
// the first delivery as following a declared gap.
func (b *ReorderBuffer) drain(src *reorderSource, gapFirst bool) {
	for {
		held, ok := src.pending[src.next]
		if !ok {
			return
		}
		delete(src.pending, src.next)
		mReorderPending.Dec()
		src.next++
		b.deliver(Delivery{Event: held.ev, GapBefore: gapFirst, Held: true})
		gapFirst = false
	}
}

// forceOldest declares a gap up to the lowest held sequence number —
// called when the per-source window overflows.
func (b *ReorderBuffer) forceOldest(src *reorderSource) {
	low := uint64(0)
	for seq := range src.pending {
		if low == 0 || seq < low {
			low = seq
		}
	}
	if low == 0 {
		return
	}
	b.gaps++
	mReorderGaps.Inc()
	src.next = low
	b.drain(src, true)
}

// Flush applies the watermark now: held events whose wait exceeded the
// window are released, declaring the missing predecessors lost.
func (b *ReorderBuffer) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushExpired(b.clk.Now())
	b.armFlush()
}

// Close force-releases every held event (declaring gaps) — the stream is
// over and nothing more is coming to fill the holes.
func (b *ReorderBuffer) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.flushCancel != nil {
		b.flushCancel()
		b.flushCancel = nil
	}
	for _, src := range b.sources {
		for len(src.pending) > 0 {
			b.forceOldest(src)
		}
	}
}

// flushExpired releases expired runs. Called with the lock held.
func (b *ReorderBuffer) flushExpired(now time.Time) {
	for _, src := range b.sources {
		for len(src.pending) > 0 {
			low := uint64(0)
			for seq := range src.pending {
				if low == 0 || seq < low {
					low = seq
				}
			}
			held := src.pending[low]
			if now.Sub(held.at) < b.opts.Window {
				break
			}
			b.gaps++
			mReorderGaps.Inc()
			src.next = low
			b.drain(src, true)
		}
	}
}

// armFlush schedules the next watermark flush when events are held and a
// scheduler was configured. Called with the lock held.
func (b *ReorderBuffer) armFlush() {
	if b.opts.Schedule == nil {
		return
	}
	if b.pendingLocked() == 0 {
		if b.flushCancel != nil {
			b.flushCancel()
			b.flushCancel = nil
		}
		return
	}
	if b.flushCancel != nil {
		return // a flush is already on its way
	}
	b.flushCancel = b.opts.Schedule(b.opts.Window, func() {
		b.mu.Lock()
		b.flushCancel = nil
		b.mu.Unlock()
		b.Flush()
	})
}

func (b *ReorderBuffer) pendingLocked() int {
	n := 0
	for _, src := range b.sources {
		n += len(src.pending)
	}
	return n
}

// Pending returns the number of held out-of-order events.
func (b *ReorderBuffer) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pendingLocked()
}

// Stats reports the buffer's repair counters.
type ReorderStats struct {
	// Pending is the number of currently held out-of-order events.
	Pending int `json:"pending"`
	// Gaps is how many sequence gaps were declared.
	Gaps uint64 `json:"gaps"`
	// Duplicates is how many duplicate events were discarded.
	Duplicates uint64 `json:"duplicates"`
}

// Stats snapshots the buffer.
func (b *ReorderBuffer) Stats() ReorderStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return ReorderStats{Pending: b.pendingLocked(), Gaps: b.gaps, Duplicates: b.duplicates}
}
