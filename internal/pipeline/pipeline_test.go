package pipeline

import (
	"fmt"
	"testing"
	"time"

	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
)

func opEvent(taskID, body string) logging.Event {
	ts := time.Date(2013, 10, 24, 11, 41, 48, 312e6, time.UTC)
	return logging.Event{
		Timestamp: ts,
		Source:    "asgard.log",
		Type:      logging.TypeOperation,
		Fields:    map[string]string{"taskid": taskID},
		Message:   logging.FormatOperationLine(ts, taskID, body),
	}
}

func TestProcessAnnotatesActivity(t *testing.T) {
	model := process.RollingUpgradeModel()
	store := logging.NewMemorySink()
	p := New(model, store, Triggers{})
	ev := opEvent("task-1", "Instance pm on i-7df34041 is ready for use. 4 of 4 instance relaunches done.")
	out, forwarded := p.Process(ev)
	if !forwarded {
		t.Fatal("important line not forwarded")
	}
	if !out.HasTag(process.NodeNewReady) || !out.HasTag(process.StepNewReady) {
		t.Errorf("tags = %v", out.Tags)
	}
	if out.Field("stepid") != process.StepNewReady {
		t.Errorf("stepid = %q", out.Field("stepid"))
	}
	if out.Field("instanceid") != "i-7df34041" {
		t.Errorf("instanceid = %q", out.Field("instanceid"))
	}
	if out.Field("num") != "4" || out.Field("total") != "4" {
		t.Errorf("progress fields = %v", out.Fields)
	}
	if out.Field("processinstanceid") != "task-1" {
		t.Errorf("processinstanceid = %q", out.Field("processinstanceid"))
	}
	if store.Len() != 1 {
		t.Errorf("store has %d events", store.Len())
	}
	// Original event untouched.
	if ev.HasTag(process.NodeNewReady) {
		t.Error("Process mutated input event")
	}
}

func TestProcessExtractsAMIAndGroup(t *testing.T) {
	p := New(process.RollingUpgradeModel(), nil, Triggers{})
	out, _ := p.Process(opEvent("t", "Starting rolling upgrade of group pm--asg to image ami-750c9e4f"))
	if out.Field("amiid") != "ami-750c9e4f" {
		t.Errorf("amiid = %q", out.Field("amiid"))
	}
	if out.Field("asgid") != "pm--asg" {
		t.Errorf("asgid = %q", out.Field("asgid"))
	}
}

func TestNoiseFilterDropsIrrelevantLines(t *testing.T) {
	p := New(process.RollingUpgradeModel(), nil, Triggers{})
	ev := logging.Event{Type: logging.TypeOperation, Message: "random chatter from another tool"}
	if _, forwarded := p.Process(ev); forwarded {
		t.Fatal("noise forwarded")
	}
	// Non-operation events are dropped outright.
	if _, forwarded := p.Process(logging.Event{Type: logging.TypeCloud, Message: "Sorted 4 instances for replacement"}); forwarded {
		t.Fatal("cloud event processed as operation log")
	}
	s := p.Snapshot()
	if s.Dropped != 2 || s.Seen != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUnclassifiedLineWithTaskIDStillTriggersConformance(t *testing.T) {
	var conf []string
	p := New(process.RollingUpgradeModel(), nil, Triggers{
		Conformance: func(id, line string, ev logging.Event) { conf = append(conf, line) },
	})
	_, forwarded := p.Process(opEvent("t", "some novel line the model does not know"))
	if forwarded {
		t.Error("unknown non-error line forwarded as important")
	}
	if len(conf) != 1 {
		t.Fatalf("conformance calls = %d", len(conf))
	}
}

func TestErrorLineTriggersAndForwards(t *testing.T) {
	var errs []string
	p := New(process.RollingUpgradeModel(), logging.NewMemorySink(), Triggers{
		ErrorLine: func(id, line string, ev logging.Event) { errs = append(errs, line) },
	})
	out, forwarded := p.Process(opEvent("t", "ERROR: deregistering instance i-1 from ELB elb: LoadBalancerNotFound"))
	if !forwarded {
		t.Fatal("error line not forwarded")
	}
	if !out.HasTag("error") {
		t.Errorf("tags = %v", out.Tags)
	}
	if len(errs) != 1 {
		t.Fatalf("error callbacks = %d", len(errs))
	}
	if p.Snapshot().Errors != 1 {
		t.Errorf("stats = %+v", p.Snapshot())
	}
}

func TestProcessStartAndEndFireOnce(t *testing.T) {
	var starts, ends []string
	p := New(process.RollingUpgradeModel(), nil, Triggers{
		ProcessStart: func(id string, ev logging.Event) { starts = append(starts, id) },
		ProcessEnd:   func(id string, ev logging.Event) { ends = append(ends, id) },
	})
	p.Process(opEvent("t", "Starting rolling upgrade of group g to image ami-1"))
	p.Process(opEvent("t", "Created launch configuration lc with image ami-1"))
	p.Process(opEvent("t", "Sorted 2 instances for replacement"))
	p.Process(opEvent("t", "Rolling upgrade task completed"))
	if len(starts) != 1 || starts[0] != "t" {
		t.Errorf("starts = %v", starts)
	}
	if len(ends) != 1 {
		t.Errorf("ends = %v", ends)
	}
	// A second instance gets its own start.
	p.Process(opEvent("u", "Starting rolling upgrade of group g to image ami-2"))
	if len(starts) != 2 {
		t.Errorf("starts after second instance = %v", starts)
	}
}

func TestStepEventCallbackReceivesNode(t *testing.T) {
	var steps []string
	p := New(process.RollingUpgradeModel(), nil, Triggers{
		StepEvent: func(id string, n *process.Node, ev logging.Event) { steps = append(steps, n.StepID) },
	})
	lines := []string{
		"Starting rolling upgrade of group g to image ami-1",
		"Created launch configuration lc with image ami-1",
		"Sorted 1 instances for replacement",
		"Removed and deregistered instance i-1 from ELB elb",
	}
	for _, l := range lines {
		p.Process(opEvent("t", l))
	}
	want := []string{process.StepStartTask, process.StepUpdateLC, process.StepSortInst, process.StepDeregister}
	if len(steps) != len(want) {
		t.Fatalf("steps = %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %s, want %s", i, steps[i], want[i])
		}
	}
}

func TestStartStopConsumesSubscription(t *testing.T) {
	bus := logging.NewBus()
	defer bus.Close()
	store := logging.NewMemorySink()
	p := New(process.RollingUpgradeModel(), store, Triggers{})
	sub := bus.Subscribe(256, nil)
	p.Start(sub)
	for i := 0; i < 5; i++ {
		bus.Publish(opEvent("t", fmt.Sprintf("Status: %d of 5 instances replaced", i)))
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && store.Len() < 5 {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if store.Len() != 5 {
		t.Fatalf("forwarded %d of 5", store.Len())
	}
}

func TestBodyOf(t *testing.T) {
	ev := opEvent("t", "Sorted 3 instances for replacement")
	if BodyOf(ev) != "Sorted 3 instances for replacement" {
		t.Errorf("BodyOf = %q", BodyOf(ev))
	}
	plain := logging.Event{Message: "  raw line  "}
	if BodyOf(plain) != "raw line" {
		t.Errorf("BodyOf plain = %q", BodyOf(plain))
	}
}
