// Package pipeline implements the local log processor of Figure 3: a
// pipeline of noise filter, log annotator (process context + extracted
// fields), timer setter hooks, and triggers for conformance checking and
// assertion evaluation, forwarding "important" lines to the central log
// storage.
//
// The processor is deliberately mechanical: it classifies each raw
// operation log line against the process model, attaches process context
// (process instance id, activity, step id), extracts well-known fields
// (instance id, AMI id, relaunch progress), and invokes the configured
// trigger callbacks. Policy — which assertions to evaluate, what timers to
// set — lives in the POD engine (internal/core).
package pipeline

import (
	"regexp"
	"strings"
	"sync"
	"sync/atomic"

	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/process"
)

// Local-log-processor metrics, mirroring the Stats counters. The labelled
// children are resolved once at init: CounterVec.With costs a lock and a
// variadic allocation per call, which the per-event path cannot afford.
var (
	mEvents = obs.Default.CounterVec("pod_pipeline_events_total",
		"Events through the local log processor by disposition.", "disposition")
	mEvSeen      = mEvents.With("seen")
	mEvDropped   = mEvents.With("dropped")
	mEvAnnotated = mEvents.With("annotated")
	mEvError     = mEvents.With("error")
	mEvForwarded = mEvents.With("forwarded")
)

// Triggers are the callbacks a Processor invokes as it annotates events.
// Any callback may be nil. Callbacks run on the processor goroutine; keep
// them fast and non-blocking (hand heavy work to other goroutines).
type Triggers struct {
	// Conformance receives every relevant line for token replay.
	Conformance func(instanceID, line string, ev logging.Event)
	// StepEvent fires for every line classified to an activity.
	StepEvent func(instanceID string, node *process.Node, ev logging.Event)
	// ErrorLine fires for lines matching known-error patterns.
	ErrorLine func(instanceID, line string, ev logging.Event)
	// ProcessStart fires on the first activity of an instance (starts
	// the periodic timer, §III.B.1).
	ProcessStart func(instanceID string, ev logging.Event)
	// ProcessEnd fires on the final activity (stops the periodic timer).
	ProcessEnd func(instanceID string, ev logging.Event)
}

// Handler receives the annotated events of one process instance. It is the
// per-operation counterpart of Triggers: a routed Processor resolves the
// handler per event, so one processor can feed many concurrently monitored
// operations. Methods run on the processor goroutine; keep them fast and
// non-blocking (hand heavy work to other goroutines).
type Handler interface {
	// OnConformance receives every relevant line for token replay.
	OnConformance(instanceID, line string, ev logging.Event)
	// OnStepEvent fires for every line classified to an activity.
	OnStepEvent(instanceID string, node *process.Node, ev logging.Event)
	// OnErrorLine fires for lines matching known-error patterns.
	OnErrorLine(instanceID, line string, ev logging.Event)
	// OnProcessStart fires on the first activity of an instance.
	OnProcessStart(instanceID string, ev logging.Event)
	// OnProcessEnd fires on the final activity. It is delivered after the
	// final event's OnConformance/OnStepEvent so post-completion
	// assertions still run before the handler tears its timers down.
	OnProcessEnd(instanceID string, ev logging.Event)
}

// Router resolves the handler for a process instance. It is consulted once
// per annotated event (the event carries extracted fields such as "asgid",
// which routers may use to adopt unknown instances). Returning nil drops
// the event's triggers; the event is still forwarded to central storage.
type Router func(instanceID string, ev logging.Event) Handler

// triggersHandler adapts the legacy Triggers callback set to Handler.
type triggersHandler struct{ t Triggers }

func (h triggersHandler) OnConformance(id, line string, ev logging.Event) {
	if h.t.Conformance != nil {
		h.t.Conformance(id, line, ev)
	}
}

func (h triggersHandler) OnStepEvent(id string, node *process.Node, ev logging.Event) {
	if h.t.StepEvent != nil {
		h.t.StepEvent(id, node, ev)
	}
}

func (h triggersHandler) OnErrorLine(id, line string, ev logging.Event) {
	if h.t.ErrorLine != nil {
		h.t.ErrorLine(id, line, ev)
	}
}

func (h triggersHandler) OnProcessStart(id string, ev logging.Event) {
	if h.t.ProcessStart != nil {
		h.t.ProcessStart(id, ev)
	}
}

func (h triggersHandler) OnProcessEnd(id string, ev logging.Event) {
	if h.t.ProcessEnd != nil {
		h.t.ProcessEnd(id, ev)
	}
}

// Processor is the local log processor agent.
type Processor struct {
	model  *process.Model
	store  logging.Sink // central log storage; may be nil
	route  Router       // nil means the static handler below
	static Handler      // legacy Triggers adapter; may be nil

	mu      sync.Mutex
	started map[string]bool
	stats   statCounters

	stop chan struct{}
	wg   sync.WaitGroup
}

// Stats counts processor activity.
type Stats struct {
	// Seen is the number of raw events observed.
	Seen int
	// Dropped is the number filtered out as noise.
	Dropped int
	// Annotated is the number of lines classified to an activity.
	Annotated int
	// Errors is the number of known-error lines.
	Errors int
	// Forwarded is the number of events sent to central storage.
	Forwarded int
}

// statCounters is the lock-free internal form of Stats: the per-event path
// bumps atomics instead of taking the processor mutex twice per event.
type statCounters struct {
	seen, dropped, annotated, errors, forwarded atomic.Int64
}

func (c *statCounters) snapshot() Stats {
	return Stats{
		Seen:      int(c.seen.Load()),
		Dropped:   int(c.dropped.Load()),
		Annotated: int(c.annotated.Load()),
		Errors:    int(c.errors.Load()),
		Forwarded: int(c.forwarded.Load()),
	}
}

// New returns a Processor for the given model, forwarding important lines
// to store and invoking triggers.
func New(model *process.Model, store logging.Sink, triggers Triggers) *Processor {
	return &Processor{
		model:   model,
		store:   store,
		static:  triggersHandler{triggers},
		started: make(map[string]bool),
		stop:    make(chan struct{}),
	}
}

// NewRouted returns a Processor that resolves the handler for each event
// through router instead of a fixed callback set. Events whose instance is
// not claimed by any handler still count in Stats and flow to central
// storage, so an unmonitored operation's logs remain queryable.
func NewRouted(model *process.Model, store logging.Sink, router Router) *Processor {
	return &Processor{
		model:   model,
		store:   store,
		route:   router,
		started: make(map[string]bool),
		stop:    make(chan struct{}),
	}
}

// Start consumes events from the subscription until Stop is called or the
// subscription closes.
func (p *Processor) Start(sub *logging.Subscription) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.stop:
				return
			case ev, ok := <-sub.C:
				if !ok {
					return
				}
				p.Process(ev)
			}
		}
	}()
}

// Stop halts the processing goroutine. Safe to call once after Start.
func (p *Processor) Stop() {
	close(p.stop)
	p.wg.Wait()
}

// Stats returns a snapshot of the processing counters.
func (p *Processor) Snapshot() Stats {
	return p.stats.snapshot()
}

// Field-extraction patterns applied to every annotated line.
var (
	reInstanceID = regexp.MustCompile(`\b(i-[0-9a-f]+)\b`)
	reAMIID      = regexp.MustCompile(`\b(ami-[0-9a-zA-Z-]+)\b`)
	reProgress   = regexp.MustCompile(`\b(\d+) of (\d+) instances?\b`)
	reSorted     = regexp.MustCompile(`Sorted (\d+) instances`)
	reGroup      = regexp.MustCompile(`group (\S+)`)
)

// fieldPatterns are the single-capture extractions applied per annotated
// line, hoisted so Process allocates no per-call pattern table.
var fieldPatterns = []struct {
	field string
	re    *regexp.Regexp
}{
	{"instanceid", reInstanceID},
	{"amiid", reAMIID},
	{"asgid", reGroup},
}

// Process runs one event through the pipeline, returning the annotated
// event and whether it was forwarded to central storage.
//
// Budget note: 2 sites are the Clone's tag/field copies (the one
// per-event copy the pipeline pays); the other 7 are the statically
// inlined lazy-map make of SetField at each call site, of which at most
// one executes per event.
//
//podlint:hotpath budget=9
func (p *Processor) Process(ev logging.Event) (logging.Event, bool) {
	p.stats.seen.Add(1)
	mEvSeen.Inc()

	// Only operation-node logs flow through the local processor.
	if ev.Type != logging.TypeOperation {
		p.stats.dropped.Add(1)
		mEvDropped.Inc()
		return ev, false
	}

	// The raw @message is an Asgard-style line; the body is what the
	// model's patterns match.
	body := ev.Message
	if _, _, parsed, ok := logging.ParseOperationLine(ev.Message); ok {
		body = parsed
	}

	instanceID := ev.Field("taskid")
	node, classified := p.model.Classify(body)
	isError := p.model.IsErrorLine(body)

	// Noise filter: drop lines that neither classify, nor err, nor carry
	// a known process instance.
	if !classified && !isError && instanceID == "" {
		p.stats.dropped.Add(1)
		mEvDropped.Inc()
		return ev, false
	}

	// Log annotator: process context tags and extracted fields. One Clone
	// buys a private copy; every annotation after it mutates in place —
	// the WithTag/WithField chain this replaces re-cloned the whole event
	// (tags slice + fields map) per annotation.
	out := ev.Clone()
	if instanceID != "" {
		out.SetField("processinstanceid", instanceID)
	}
	if classified {
		out.AddTag(node.ID)
		if node.StepID != "" {
			out.AddTag(node.StepID)
			out.SetField("stepid", node.StepID)
		}
		out.SetField("activity", node.Name)
	}
	if isError {
		out.AddTag("error")
	}
	for _, fp := range fieldPatterns {
		if m := fp.re.FindStringSubmatch(body); m != nil {
			out.SetField(fp.field, m[1])
		}
	}
	if m := reProgress.FindStringSubmatch(body); m != nil {
		out.SetField("num", m[1])
		out.SetField("total", m[2])
	}
	if m := reSorted.FindStringSubmatch(body); m != nil {
		out.SetField("total", m[1])
	}

	// Resolve the handler: the static Triggers adapter, or the router
	// consulted after annotation so it can see extracted fields (asgid,
	// amiid, ...) when deciding whether to adopt an unknown instance.
	var h Handler
	if p.route != nil {
		if instanceID != "" {
			h = p.route(instanceID, out)
		}
	} else {
		h = p.static
	}

	// Timer setter hook: first activity of the process.
	isEnd := false
	if classified && instanceID != "" {
		isEnd = node.Final || node.ID == process.NodeCompleted
		p.mu.Lock()
		first := !p.started[instanceID]
		if first {
			p.started[instanceID] = true
		}
		p.mu.Unlock()
		if first && h != nil {
			h.OnProcessStart(instanceID, out)
		}
	}

	// Triggers: conformance for every relevant line; step events and
	// error lines for the engine.
	if h != nil && instanceID != "" {
		h.OnConformance(instanceID, body, out)
	}
	if classified {
		p.stats.annotated.Add(1)
		mEvAnnotated.Inc()
		if h != nil && instanceID != "" {
			h.OnStepEvent(instanceID, node, out)
		}
	}
	if isError {
		p.stats.errors.Add(1)
		mEvError.Inc()
		if h != nil {
			h.OnErrorLine(instanceID, body, out)
		}
	}

	// The process-end hook fires after the final event's own triggers so
	// post-completion assertions are scheduled before the handler tears
	// its timers down.
	if isEnd && h != nil {
		h.OnProcessEnd(instanceID, out)
	}

	// Forward "important" lines — classified activities and errors — to
	// central storage.
	important := classified || isError
	if important && p.store != nil {
		p.store.Write(out)
		p.stats.forwarded.Add(1)
		mEvForwarded.Inc()
	}
	return out, important
}

// BodyOf extracts the message body of an operation event (without the
// timestamp/task prefix).
func BodyOf(ev logging.Event) string {
	if _, _, body, ok := logging.ParseOperationLine(ev.Message); ok {
		return body
	}
	return strings.TrimSpace(ev.Message)
}
