package pipeline

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/logging"
)

// manualClock is a hand-advanced clock for deterministic watermark tests.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error {
	c.Advance(d)
	return ctx.Err()
}

func (c *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.Now().Add(d)
	return ch
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func seqEvent(source, host string, seq uint64) logging.Event {
	return logging.Event{Source: source, SourceHost: host, Type: logging.TypeOperation, Seq: seq}
}

// collector records deliveries per source key.
type collector struct {
	order []Delivery
}

func (c *collector) deliver(d Delivery) { c.order = append(c.order, d) }

// TestReorderPropertyPermutations is the property test: for many seeded
// random permutations of several interleaved sequenced streams, with
// duplicates injected, every event is delivered exactly once, in
// per-source sequence order, with no gaps declared — as long as the
// window never overflows and the watermark never fires.
func TestReorderPropertyPermutations(t *testing.T) {
	const perSource = 120
	sources := []struct{ src, host string }{
		{"asgard.log", "ops-a"},
		{"asgard.log", "ops-b"},
		{"cloudwatch.log", "ops-a"},
	}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var events []logging.Event
		for _, s := range sources {
			for i := 1; i <= perSource; i++ {
				events = append(events, seqEvent(s.src, s.host, uint64(i)))
			}
		}
		rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
		// Duplicate ~10% of the stream at random positions.
		for i := 0; i < len(events); i += 10 {
			events = append(events, events[rng.Intn(len(events))])
		}

		clk := newManualClock()
		col := &collector{}
		b := NewReorderBuffer(clk, ReorderOptions{MaxPending: 3 * perSource}, col.deliver)
		for _, ev := range events {
			b.Offer(ev)
		}

		next := map[string]uint64{}
		for _, d := range col.order {
			if d.GapBefore {
				t.Fatalf("seed %d: spurious gap before %v", seed, d.Event)
			}
			key := d.Event.Source + "|" + d.Event.SourceHost + "|" + d.Event.Type
			if want := next[key] + 1; d.Event.Seq != want {
				t.Fatalf("seed %d: %s delivered seq %d, want %d", seed, key, d.Event.Seq, want)
			}
			next[key]++
		}
		for key, n := range next {
			if n != perSource {
				t.Fatalf("seed %d: %s delivered %d events, want %d", seed, key, n, perSource)
			}
		}
		st := b.Stats()
		if st.Pending != 0 || st.Gaps != 0 {
			t.Fatalf("seed %d: stats = %+v", seed, st)
		}
		if st.Duplicates == 0 {
			t.Fatalf("seed %d: no duplicates observed despite injection", seed)
		}
	}
}

// TestReorderWatermarkDeclaresGap drops one event and checks the watermark
// releases the successors with GapBefore set once the window expires, and
// that the late-arriving original is then discarded as a duplicate.
func TestReorderWatermarkDeclaresGap(t *testing.T) {
	clk := newManualClock()
	col := &collector{}
	b := NewReorderBuffer(clk, ReorderOptions{Window: 3 * time.Second}, col.deliver)

	b.Offer(seqEvent("asgard.log", "h", 1))
	b.Offer(seqEvent("asgard.log", "h", 3)) // 2 is lost
	b.Offer(seqEvent("asgard.log", "h", 4))
	if len(col.order) != 1 {
		t.Fatalf("deliveries before watermark = %d, want 1", len(col.order))
	}

	clk.Advance(2 * time.Second)
	b.Flush()
	if len(col.order) != 1 {
		t.Fatalf("watermark fired before window: %d deliveries", len(col.order))
	}

	clk.Advance(2 * time.Second)
	b.Flush()
	if len(col.order) != 3 {
		t.Fatalf("deliveries after watermark = %d, want 3", len(col.order))
	}
	if !col.order[1].GapBefore {
		t.Error("first post-gap delivery not marked GapBefore")
	}
	if col.order[2].GapBefore {
		t.Error("second post-gap delivery wrongly marked GapBefore")
	}

	// The lost event finally arrives: it must not be re-delivered.
	b.Offer(seqEvent("asgard.log", "h", 2))
	if len(col.order) != 3 {
		t.Fatalf("late event re-delivered: %d deliveries", len(col.order))
	}
	st := b.Stats()
	if st.Gaps != 1 || st.Duplicates != 1 {
		t.Errorf("stats = %+v, want 1 gap and 1 duplicate", st)
	}
}

// TestReorderOverflowForcesOldest checks the MaxPending bound: overflow
// force-flushes the oldest held run, declaring a gap, without waiting for
// the watermark.
func TestReorderOverflowForcesOldest(t *testing.T) {
	clk := newManualClock()
	col := &collector{}
	b := NewReorderBuffer(clk, ReorderOptions{Window: time.Hour, MaxPending: 3}, col.deliver)

	b.Offer(seqEvent("asgard.log", "h", 1))
	for seq := uint64(3); seq <= 7; seq++ { // 2 is missing; 5 held > MaxPending 3
		b.Offer(seqEvent("asgard.log", "h", seq))
	}
	if len(col.order) != 6 {
		t.Fatalf("deliveries = %d, want 6 (1 + forced 3..7)", len(col.order))
	}
	if !col.order[1].GapBefore {
		t.Error("forced delivery not marked GapBefore")
	}
	if b.Stats().Gaps != 1 {
		t.Errorf("gaps = %d, want 1", b.Stats().Gaps)
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d after force flush", b.Pending())
	}
}

// TestReorderCloseDrainsHeld checks Close releases everything still held,
// declaring gaps, so no event is silently lost at shutdown.
func TestReorderCloseDrainsHeld(t *testing.T) {
	clk := newManualClock()
	col := &collector{}
	b := NewReorderBuffer(clk, ReorderOptions{Window: time.Hour}, col.deliver)

	b.Offer(seqEvent("asgard.log", "h", 1))
	b.Offer(seqEvent("asgard.log", "h", 5))
	b.Offer(seqEvent("asgard.log", "h", 7))
	b.Close()
	if len(col.order) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(col.order))
	}
	if !col.order[1].GapBefore || !col.order[2].GapBefore {
		t.Error("forced closing deliveries not marked GapBefore")
	}
	if b.Pending() != 0 {
		t.Errorf("pending = %d after Close", b.Pending())
	}
}

// TestReorderUnsequencedPassThrough checks events that never crossed a bus
// (Seq 0) are delivered synchronously and unexamined.
func TestReorderUnsequencedPassThrough(t *testing.T) {
	clk := newManualClock()
	col := &collector{}
	b := NewReorderBuffer(clk, ReorderOptions{}, col.deliver)
	for i := 0; i < 5; i++ {
		b.Offer(logging.Event{Source: "raw.log", Message: "x"})
	}
	if len(col.order) != 5 {
		t.Fatalf("deliveries = %d, want 5", len(col.order))
	}
	if st := b.Stats(); st.Pending != 0 || st.Gaps != 0 || st.Duplicates != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestReorderScheduleArmsWatermark checks the Schedule hook drives the
// watermark without any further traffic.
func TestReorderScheduleArmsWatermark(t *testing.T) {
	clk := newManualClock()
	col := &collector{}
	var scheduled []func()
	b := NewReorderBuffer(clk, ReorderOptions{
		Window: 3 * time.Second,
		Schedule: func(d time.Duration, f func()) func() {
			scheduled = append(scheduled, f)
			return func() {}
		},
	}, col.deliver)

	b.Offer(seqEvent("asgard.log", "h", 2)) // first observed is not 1: held
	if len(scheduled) != 1 {
		t.Fatalf("scheduled flushes = %d, want 1", len(scheduled))
	}
	clk.Advance(4 * time.Second)
	scheduled[0]() // the timer fires
	if len(col.order) != 1 || !col.order[0].GapBefore {
		t.Fatalf("timer flush deliveries = %+v", col.order)
	}
}

// FuzzReorderBuffer feeds arbitrary byte-derived sequences of events and
// checks the buffer's core invariants: per-source deliveries are strictly
// increasing in sequence number, nothing is delivered twice, and Close
// leaves nothing pending.
func FuzzReorderBuffer(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{5, 4, 3, 2, 1, 1, 2, 3})
	f.Add([]byte{0, 0, 7, 7, 200, 1, 3, 2, 128, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		clk := newManualClock()
		delivered := map[string]uint64{} // key -> last delivered seq
		b := NewReorderBuffer(clk, ReorderOptions{Window: 5 * time.Second, MaxPending: 8},
			func(d Delivery) {
				if d.Event.Seq == 0 {
					return
				}
				key := d.Event.Source + "|" + d.Event.SourceHost + "|" + d.Event.Type
				if last, ok := delivered[key]; ok && d.Event.Seq <= last {
					t.Fatalf("%s: delivered seq %d after %d", key, d.Event.Seq, last)
				}
				delivered[key] = d.Event.Seq
			})
		for i, c := range data {
			src := "s" + string(rune('A'+int(c)%2))
			seq := uint64(c>>1)%24 + 1
			b.Offer(seqEvent(src, "h", seq))
			if i%7 == 6 {
				clk.Advance(2 * time.Second)
				b.Flush()
			}
		}
		b.Close()
		if b.Pending() != 0 {
			t.Fatalf("pending = %d after Close", b.Pending())
		}
	})
}
