package chaos

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
)

// manualClock is a hand-advanced clock; Sleep advances it.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *manualClock) Sleep(ctx context.Context, d time.Duration) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	c.Advance(d)
	return nil
}

func (c *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- c.Now().Add(d)
	return ch
}

func (c *manualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func TestByName(t *testing.T) {
	for _, name := range []string{"light", "lossy", "storm", "full"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, p, ok)
		}
		if !p.Enabled() {
			t.Errorf("profile %q not enabled", name)
		}
	}
	for _, name := range []string{"", "off", "none"} {
		p, ok := ByName(name)
		if !ok || p.Enabled() {
			t.Errorf("ByName(%q) = %+v, %v; want disabled profile", name, p, ok)
		}
	}
	if _, ok := ByName("hurricane"); ok {
		t.Error("unknown profile accepted")
	}
	names := Names()
	if len(names) != 5 {
		t.Errorf("Names() = %v", names)
	}
}

func TestLogTapNilWhenNotTapping(t *testing.T) {
	p := Profile{StormInterval: 30 * time.Second, StormDuration: 5 * time.Second}
	if p.LogTap(clock.NewReal()) != nil {
		t.Error("API-only profile returned a log tap")
	}
	if (Profile{}).LogTap(clock.NewReal()) != nil {
		t.Error("zero profile returned a log tap")
	}
}

// tapRun pushes n events through the profile's tap and returns everything
// that came out. The scaled clock makes held-event flushing fast.
func tapRun(t *testing.T, p Profile, n int) []logging.Event {
	t.Helper()
	clk := clock.NewScaled(1000, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	tap := p.LogTap(clk)
	if tap == nil {
		t.Fatal("profile did not produce a tap")
	}
	in := make(chan logging.Event, n)
	out := tap(in)
	for i := 0; i < n; i++ {
		in <- logging.Event{Seq: uint64(i + 1), Source: "asgard.log", Type: logging.TypeOperation}
	}
	close(in)
	var got []logging.Event
	for ev := range out {
		got = append(got, ev)
	}
	return got
}

func TestLogTapDropsEverything(t *testing.T) {
	got := tapRun(t, Profile{DropProb: 1}, 50)
	if len(got) != 0 {
		t.Fatalf("events through a DropProb=1 tap = %d", len(got))
	}
}

func TestLogTapDuplicatesEverything(t *testing.T) {
	got := tapRun(t, Profile{DupProb: 1}, 50)
	if len(got) != 100 {
		t.Fatalf("events through a DupProb=1 tap = %d, want 100", len(got))
	}
}

func TestLogTapReorderConservesEvents(t *testing.T) {
	got := tapRun(t, Profile{ReorderProb: 1, MaxDelay: 200 * time.Millisecond}, 80)
	if len(got) != 80 {
		t.Fatalf("events through a reorder tap = %d, want 80", len(got))
	}
	seen := make(map[uint64]bool)
	for _, ev := range got {
		if seen[ev.Seq] {
			t.Fatalf("seq %d delivered twice", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestLogTapMixedProfileConserves(t *testing.T) {
	// Drop+dup+reorder: delivered = passed + 2*duplicated + released; the
	// invariant testable from outside is no event invented from thin air
	// and determinism for a fixed seed.
	a := tapRun(t, Profile{DropProb: 0.1, DupProb: 0.05, ReorderProb: 0.1, MaxDelay: 100 * time.Millisecond, Seed: 7}, 200)
	b := tapRun(t, Profile{DropProb: 0.1, DupProb: 0.05, ReorderProb: 0.1, MaxDelay: 100 * time.Millisecond, Seed: 7}, 200)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d events", len(a), len(b))
	}
	if len(a) == 0 || len(a) > 2*200 {
		t.Fatalf("delivered %d of 200", len(a))
	}
}

func TestFaultInjectorNilWhenNoAPIFaults(t *testing.T) {
	if (Profile{DropProb: 1}).FaultInjector(newManualClock()) != nil {
		t.Error("log-only profile produced an API fault injector")
	}
}

func TestFaultInjectorStormPhase(t *testing.T) {
	clk := newManualClock()
	p := Profile{StormInterval: 30 * time.Second, StormDuration: 5 * time.Second}
	inj := p.FaultInjector(clk)
	mctx := simaws.WithPlane(context.Background(), simaws.PlaneMonitoring)

	// Phase 0: in storm.
	err := inj(mctx, "DescribeAutoScalingGroup")
	var apiErr *simaws.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != simaws.ErrCodeRequestLimitExceeded {
		t.Fatalf("storm error = %v", err)
	}
	// Phase 10s: storm over.
	clk.Advance(10 * time.Second)
	if err := inj(mctx, "DescribeAutoScalingGroup"); err != nil {
		t.Fatalf("error outside storm: %v", err)
	}
	// Phase 31s: next interval's storm.
	clk.Advance(21 * time.Second)
	if err := inj(mctx, "DescribeAutoScalingGroup"); !errors.As(err, &apiErr) {
		t.Fatalf("no storm error in second interval: %v", err)
	}
}

func TestFaultInjectorScopedToMonitoringPlane(t *testing.T) {
	clk := newManualClock()
	p := Profile{StormInterval: 30 * time.Second, StormDuration: 30 * time.Second}
	inj := p.FaultInjector(clk)
	// Untagged (operation-plane) calls pass even during a permanent storm.
	if err := inj(context.Background(), "TerminateInstance"); err != nil {
		t.Fatalf("operation-plane call stormed: %v", err)
	}
	if err := inj(simaws.WithPlane(context.Background(), simaws.PlaneMonitoring), "DescribeELB"); err == nil {
		t.Fatal("monitoring-plane call not stormed")
	}
	// FaultScope "all" storms everything.
	p.FaultScope = "all"
	if err := p.FaultInjector(clk)(context.Background(), "TerminateInstance"); err == nil {
		t.Fatal("FaultScope=all spared an operation-plane call")
	}
}

func TestFaultInjectorLatencySpike(t *testing.T) {
	clk := newManualClock()
	p := Profile{LatencyProb: 1, LatencySpike: 2 * time.Second}
	inj := p.FaultInjector(clk)
	mctx := simaws.WithPlane(context.Background(), simaws.PlaneMonitoring)
	before := clk.Now()
	if err := inj(mctx, "DescribeInstances"); err != nil {
		t.Fatalf("spike returned error: %v", err)
	}
	if got := clk.Now().Sub(before); got != 2*time.Second {
		t.Fatalf("spike slept %v, want 2s", got)
	}
	// The spike honours the context.
	ctx, cancel := context.WithCancel(mctx)
	cancel()
	if err := inj(ctx, "DescribeInstances"); err == nil {
		t.Fatal("cancelled spike returned nil")
	}
}
