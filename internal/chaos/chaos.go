// Package chaos is the self-chaos harness: it attacks POD-Diagnosis's own
// monitoring plane with the failure modes the paper's threat model implies
// but never injects — a lossy log shipping fabric (dropped, duplicated,
// reordered and delayed events between the agents and the local log
// processor) and a hostile cloud API plane (RequestLimitExceeded storms
// and latency spikes against the diagnoser's on-demand tests). A profile
// is wired in at two boundaries: LogTap decorates the pipeline
// subscription channel, FaultInjector decorates simaws API calls.
//
// All randomness is seeded, so a chaotic run is exactly reproducible.
package chaos

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/simaws"
)

// Chaos metrics: what the harness actually did to the plane.
var (
	mLogEvents = obs.Default.CounterVec("pod_chaos_log_events_total",
		"Log events manipulated by the chaos tap, by action.", "action")
	mAPIFaults = obs.Default.CounterVec("pod_chaos_api_faults_total",
		"API faults injected by the chaos harness, by kind.", "kind")
)

// Profile describes one chaos regime. The zero value injects nothing.
type Profile struct {
	// Name identifies the profile in flags and experiment configs.
	Name string `json:"name"`

	// DropProb / DupProb / ReorderProb are per-event probabilities on the
	// log tap: drop the event, deliver it twice, or hold it for a random
	// delay up to MaxDelay (letting later events overtake it).
	DropProb    float64 `json:"dropProb"`
	DupProb     float64 `json:"dupProb"`
	ReorderProb float64 `json:"reorderProb"`
	// MaxDelay bounds the reorder hold, in clock time. Defaults to 2s
	// when ReorderProb is set.
	MaxDelay time.Duration `json:"maxDelay,omitempty"`

	// StormInterval / StormDuration shape periodic API error bursts: for
	// StormDuration out of every StormInterval, every API call fails with
	// RequestLimitExceeded.
	StormInterval time.Duration `json:"stormInterval,omitempty"`
	StormDuration time.Duration `json:"stormDuration,omitempty"`
	// LatencyProb injects a LatencySpike sleep into that fraction of API
	// calls outside storms.
	LatencyProb  float64       `json:"latencyProb,omitempty"`
	LatencySpike time.Duration `json:"latencySpike,omitempty"`
	// FaultScope limits the API-plane attacks (storms and latency spikes)
	// by calling plane. The default "" storms only calls tagged
	// simaws.PlaneMonitoring — the harness attacks POD's own consistent-API
	// reads, not the operation under diagnosis. "all" storms every call.
	FaultScope string `json:"faultScope,omitempty"`

	// Seed fixes the harness's randomness. Zero means 1.
	Seed int64 `json:"seed,omitempty"`
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.ReorderProb > 0 ||
		(p.StormInterval > 0 && p.StormDuration > 0) || p.LatencyProb > 0
}

// TapsLogs reports whether the profile manipulates the log stream.
func (p Profile) TapsLogs() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.ReorderProb > 0
}

// FaultsAPI reports whether the profile attacks the API plane.
func (p Profile) FaultsAPI() bool {
	return (p.StormInterval > 0 && p.StormDuration > 0) || p.LatencyProb > 0
}

// Named chaos profiles, selectable with podserve -chaos-profile and
// experiment configs. "full" is the acceptance regime: drop 10%,
// duplicate 5%, reorder 10%, plus periodic RequestLimitExceeded storms.
var profiles = []Profile{
	{
		Name:     "light",
		DropProb: 0.02, DupProb: 0.01, ReorderProb: 0.05,
		MaxDelay: time.Second,
	},
	{
		Name:     "lossy",
		DropProb: 0.10, DupProb: 0.05, ReorderProb: 0.10,
		MaxDelay: 2 * time.Second,
	},
	{
		Name:          "storm",
		StormInterval: 30 * time.Second, StormDuration: 5 * time.Second,
		LatencyProb: 0.10, LatencySpike: 2 * time.Second,
	},
	{
		Name:     "full",
		DropProb: 0.10, DupProb: 0.05, ReorderProb: 0.10,
		MaxDelay:      2 * time.Second,
		StormInterval: 30 * time.Second, StormDuration: 5 * time.Second,
		LatencyProb: 0.05, LatencySpike: 2 * time.Second,
	},
}

// ByName returns the named profile. Empty and "off" yield a disabled
// profile; unknown names report ok == false.
func ByName(name string) (Profile, bool) {
	if name == "" || name == "off" || name == "none" {
		return Profile{Name: "off"}, true
	}
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the selectable profile names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles)+1)
	out = append(out, "off")
	for _, p := range profiles {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}

func (p Profile) withDefaults() Profile {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.ReorderProb > 0 && p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.LatencyProb > 0 && p.LatencySpike <= 0 {
		p.LatencySpike = 2 * time.Second
	}
	return p
}

// LogTap returns a channel decorator imposing the profile's drop,
// duplicate and reorder behaviour on a log event stream. Reordered events
// are held and flushed in delay order by a goroutine ticking on the
// clock; when the input channel closes, held events are flushed and the
// output closes. A profile that does not tap logs returns nil.
func (p Profile) LogTap(clk clock.Clock) func(<-chan logging.Event) <-chan logging.Event {
	p = p.withDefaults()
	if !p.TapsLogs() {
		return nil
	}
	return func(in <-chan logging.Event) <-chan logging.Event {
		out := make(chan logging.Event, cap(in)+16)
		go runTap(clk, p, in, out)
		return out
	}
}

// held is one delayed (reordered) event.
type held struct {
	ev  logging.Event
	due time.Time
}

// runTap drains in, applying chaos, until it closes; then flushes and
// closes out. Held events are released when their due time passes —
// checked on every arrival and on a clock tick so delivery does not
// depend on traffic.
func runTap(clk clock.Clock, p Profile, in <-chan logging.Event, out chan<- logging.Event) {
	rng := rand.New(rand.NewSource(p.Seed))
	var pending []held
	flushDue := func(now time.Time) {
		kept := pending[:0]
		for _, h := range pending {
			if !h.due.After(now) {
				mLogEvents.With("released").Inc()
				out <- h.ev
			} else {
				kept = append(kept, h)
			}
		}
		pending = kept
	}
	tick := clock.NewTicker(clk, 100*time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case ev, ok := <-in:
			if !ok {
				// Input closed: release everything still held, in due order.
				sort.Slice(pending, func(i, j int) bool { return pending[i].due.Before(pending[j].due) })
				for _, h := range pending {
					mLogEvents.With("released").Inc()
					out <- h.ev
				}
				close(out)
				return
			}
			switch {
			case rng.Float64() < p.DropProb:
				mLogEvents.With("dropped").Inc()
			case rng.Float64() < p.DupProb:
				mLogEvents.With("duplicated").Inc()
				out <- ev
				out <- ev
			case rng.Float64() < p.ReorderProb:
				mLogEvents.With("delayed").Inc()
				delay := time.Duration(rng.Float64() * float64(p.MaxDelay))
				pending = append(pending, held{ev: ev, due: clk.Now().Add(delay)})
			default:
				mLogEvents.With("passed").Inc()
				out <- ev
			}
			flushDue(clk.Now())
		case <-tick.C:
			flushDue(clk.Now())
		}
	}
}

// FaultInjector returns a simaws.FaultInjector imposing the profile's API
// storms and latency spikes, or nil when the profile does not attack the
// API plane. Storm phase is measured from the first call, on the clock.
func (p Profile) FaultInjector(clk clock.Clock) simaws.FaultInjector {
	p = p.withDefaults()
	if !p.FaultsAPI() {
		return nil
	}
	var (
		mu    sync.Mutex
		rng   = rand.New(rand.NewSource(p.Seed + 1))
		epoch time.Time
	)
	return func(ctx context.Context, op string) error {
		if p.FaultScope != "all" && simaws.PlaneFrom(ctx) != simaws.PlaneMonitoring {
			return nil
		}
		now := clk.Now()
		mu.Lock()
		if epoch.IsZero() {
			epoch = now
		}
		inStorm := p.StormInterval > 0 && p.StormDuration > 0 &&
			now.Sub(epoch)%p.StormInterval < p.StormDuration
		spike := !inStorm && p.LatencyProb > 0 && rng.Float64() < p.LatencyProb
		mu.Unlock()
		if inStorm {
			mAPIFaults.With("throttle").Inc()
			return &simaws.APIError{
				Op: op, Code: simaws.ErrCodeRequestLimitExceeded,
				Message: "request limit exceeded for account (chaos storm)",
			}
		}
		if spike {
			mAPIFaults.With("latency").Inc()
			if err := clk.Sleep(ctx, p.LatencySpike); err != nil {
				return err
			}
		}
		return nil
	}
}
