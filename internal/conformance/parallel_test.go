package conformance

import (
	"testing"
	"time"

	"poddiagnosis/internal/process"
)

// parallelModel builds: start → prepare → AND-fork → {branch-a, branch-b}
// → AND-join → finish → end. The two branch activities may occur in either
// order, but finish requires both.
func parallelModel(t *testing.T) *process.Model {
	t.Helper()
	b := process.NewBuilder("parallel", "Parallel Operation")
	b.Start("start")
	b.End("end")
	b.ANDGateway("fork")
	b.ANDGateway("join")
	b.Activity("prepare", process.WithPatterns(`preparing deployment`))
	b.Activity("branch-a", process.WithPatterns(`updating region A`))
	b.Activity("branch-b", process.WithPatterns(`updating region B`))
	b.Activity("finish", process.WithPatterns(`deployment finished`))
	b.Chain("start", "prepare", "fork")
	b.Flow("fork", "branch-a")
	b.Flow("fork", "branch-b")
	b.Flow("branch-a", "join")
	b.Flow("branch-b", "join")
	b.Chain("join", "finish", "end")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParallelBranchesFitInEitherOrder(t *testing.T) {
	m := parallelModel(t)
	now := time.Now()
	orders := [][]string{
		{"preparing deployment", "updating region A", "updating region B", "deployment finished"},
		{"preparing deployment", "updating region B", "updating region A", "deployment finished"},
	}
	for i, trace := range orders {
		c := NewChecker(m)
		for j, line := range trace {
			res := c.Check("t", line, now)
			if res.Verdict != VerdictFit {
				t.Fatalf("order %d line %d (%q): verdict = %s", i, j, line, res.Verdict)
			}
			wantCompleted := j == len(trace)-1
			if res.Completed != wantCompleted {
				t.Errorf("order %d line %d: completed = %v, want %v", i, j, res.Completed, wantCompleted)
			}
		}
	}
}

func TestANDJoinRequiresBothBranches(t *testing.T) {
	m := parallelModel(t)
	c := NewChecker(m)
	now := time.Now()
	c.Check("t", "preparing deployment", now)
	c.Check("t", "updating region A", now)
	// Skipping branch B: finish must be unfit.
	res := c.Check("t", "deployment finished", now)
	if res.Verdict != VerdictUnfit {
		t.Fatalf("finish with one branch = %s, want unfit", res.Verdict)
	}
	if res.Context == nil || res.Context.Direction != DirectionForward {
		t.Errorf("context = %+v", res.Context)
	}
	// After the missing branch arrives, finish fits.
	if res := c.Check("t", "updating region B", now); res.Verdict != VerdictFit {
		t.Fatalf("branch B after unfit finish = %s", res.Verdict)
	}
	if res := c.Check("t", "deployment finished", now); res.Verdict != VerdictFit {
		t.Fatalf("finish after both branches = %s", res.Verdict)
	}
	if !c.Completed("t") {
		t.Error("not completed")
	}
}

func TestParallelBranchCannotRepeat(t *testing.T) {
	m := parallelModel(t)
	c := NewChecker(m)
	now := time.Now()
	c.Check("t", "preparing deployment", now)
	c.Check("t", "updating region A", now)
	res := c.Check("t", "updating region A", now)
	if res.Verdict != VerdictUnfit {
		t.Fatalf("repeated branch = %s, want unfit", res.Verdict)
	}
}

func TestParallelForkBeforePrepareUnfit(t *testing.T) {
	m := parallelModel(t)
	c := NewChecker(m)
	res := c.Check("t", "updating region A", time.Now())
	if res.Verdict != VerdictUnfit {
		t.Fatalf("branch before prepare = %s", res.Verdict)
	}
	found := false
	for _, s := range res.Context.Skipped {
		if s == "prepare" {
			found = true
		}
	}
	if !found {
		t.Errorf("skipped = %v, want prepare", res.Context.Skipped)
	}
}

// nestedParallelModel exercises a parallel block inside a loop.
func TestParallelInsideLoop(t *testing.T) {
	b := process.NewBuilder("par-loop", "")
	b.Start("start")
	b.End("end")
	b.Gateway("loop-entry")
	b.Gateway("loop-exit")
	b.ANDGateway("fork")
	b.ANDGateway("join")
	b.Activity("begin", process.WithPatterns(`begin`))
	b.Activity("left", process.WithPatterns(`left`))
	b.Activity("right", process.WithPatterns(`right`))
	b.Activity("done", process.WithPatterns(`done`))
	b.Chain("start", "begin", "loop-entry", "fork")
	b.Flow("fork", "left")
	b.Flow("fork", "right")
	b.Flow("left", "join")
	b.Flow("right", "join")
	b.Flow("join", "loop-exit")
	b.Flow("loop-exit", "loop-entry")
	b.Flow("loop-exit", "done")
	b.Flow("done", "end")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := NewChecker(m)
	now := time.Now()
	trace := []string{"begin", "right", "left", "left", "right", "done"}
	for i, line := range trace {
		if res := c.Check("t", line, now); res.Verdict != VerdictFit {
			t.Fatalf("line %d (%q) = %s", i, line, res.Verdict)
		}
	}
	if !c.Completed("t") {
		t.Error("not completed after two loop iterations")
	}
}

func TestMarkingPlacesReadable(t *testing.T) {
	m := parallelModel(t)
	c := NewChecker(m)
	now := time.Now()
	c.Check("t", "preparing deployment", now)
	res := c.Check("t", "deployment finished", now) // unfit
	if res.Context == nil || len(res.Context.Marking) == 0 {
		t.Fatal("no marking in context")
	}
	for _, p := range res.Context.Marking {
		if p == "" {
			t.Error("empty place")
		}
	}
}
