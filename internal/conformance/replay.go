package conformance

import (
	"sort"
	"strings"

	"poddiagnosis/internal/process"
)

// Token replay over an edge marking, adapted from Petri-net token replay
// to BPMN semantics ([3] ch. 7.2):
//
//   - places are the model's sequence flows plus one virtual output place
//     per activity (so an activity with several outgoing flows defers the
//     branch choice until a later event resolves it);
//   - an activity fires by consuming a token from one incoming flow and
//     producing a token on its output place;
//   - exclusive (XOR) gateways and activity output places move a single
//     token silently; parallel (AND) gateways consume a token from every
//     incoming flow and produce one on every outgoing flow;
//   - an event is *activated* when some marking reachable through silent
//     moves has a token on one of its activity's incoming flows.
//
// The silent-closure search is bounded; models within reason (dozens of
// nodes, a handful of concurrent branches) stay far below the cap.

// place identifiers: real sequence flows are "from\x1fto", virtual output
// places are "\x1eA".
const (
	edgeSep    = "\x1f"
	outPrefix  = "\x1e"
	closureCap = 512
)

func edgePlace(from, to string) string { return from + edgeSep + to }
func outPlace(activity string) string  { return outPrefix + activity }

// displayPlace renders a place for error contexts.
func displayPlace(p string) string {
	if strings.HasPrefix(p, outPrefix) {
		return strings.TrimPrefix(p, outPrefix)
	}
	return strings.ReplaceAll(p, edgeSep, "->")
}

// marking is a multiset of places.
type marking map[string]int

func (m marking) clone() marking {
	out := make(marking, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (m marking) inc(p string) { m[p]++ }

func (m marking) dec(p string) {
	if m[p] <= 1 {
		delete(m, p)
	} else {
		m[p]--
	}
}

// key returns a canonical serialization for visited-set deduplication.
func (m marking) key() string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(':')
		b.WriteByte(byte('0' + m[k]%10))
		b.WriteByte(';')
	}
	return b.String()
}

// places lists the marked places for error contexts.
func (m marking) places() []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, displayPlace(p))
	}
	sort.Strings(out)
	return out
}

// replayer executes token replay over one model.
type replayer struct {
	model *process.Model
}

// initialMarking places one token on the start event's output.
func (r *replayer) initialMarking() marking {
	m := marking{}
	m.inc(outPlace(r.model.Start()))
	return m
}

// silentSuccessors returns every marking reachable from m by one silent
// move.
func (r *replayer) silentSuccessors(m marking) []marking {
	var out []marking
	for p, n := range m {
		if n <= 0 {
			continue
		}
		// Virtual output place of an activity or event: route the token
		// to one outgoing flow (deferred exclusive choice).
		if strings.HasPrefix(p, outPrefix) {
			from := strings.TrimPrefix(p, outPrefix)
			for _, to := range r.model.Outgoing(from) {
				next := m.clone()
				next.dec(p)
				next.inc(edgePlace(from, to))
				out = append(out, next)
			}
			continue
		}
		// Token sitting on a flow into a gateway.
		parts := strings.SplitN(p, edgeSep, 2)
		if len(parts) != 2 {
			continue
		}
		node := r.model.Node(parts[1])
		if node == nil {
			continue
		}
		switch node.Kind {
		case process.KindGateway:
			// XOR: consume this token, produce on one outgoing flow.
			for _, to := range r.model.Outgoing(node.ID) {
				next := m.clone()
				next.dec(p)
				next.inc(edgePlace(node.ID, to))
				out = append(out, next)
			}
		case process.KindANDGateway:
			// AND join/fork: fires only with a token on every incoming
			// flow; handled once per gateway (when p is its first
			// incoming flow in iteration order, to avoid duplicates).
			if !r.isFirstMarkedIncoming(m, node.ID, p) {
				continue
			}
			next := m.clone()
			ok := true
			for _, in := range r.model.Incoming(node.ID) {
				e := edgePlace(in, node.ID)
				if next[e] <= 0 {
					ok = false
					break
				}
				next.dec(e)
			}
			if !ok {
				continue
			}
			for _, to := range r.model.Outgoing(node.ID) {
				next.inc(edgePlace(node.ID, to))
			}
			out = append(out, next)
		}
	}
	return out
}

// isFirstMarkedIncoming reports whether p is the lexicographically first
// marked incoming flow of the gateway, so the AND firing is generated once.
func (r *replayer) isFirstMarkedIncoming(m marking, gateway, p string) bool {
	var marked []string
	for _, in := range r.model.Incoming(gateway) {
		e := edgePlace(in, gateway)
		if m[e] > 0 {
			marked = append(marked, e)
		}
	}
	sort.Strings(marked)
	return len(marked) > 0 && marked[0] == p
}

// closure enumerates markings reachable via silent moves, including m
// itself, bounded by closureCap.
func (r *replayer) closure(m marking) []marking {
	seen := map[string]bool{m.key(): true}
	queue := []marking{m}
	out := []marking{m}
	for len(queue) > 0 && len(out) < closureCap {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range r.silentSuccessors(cur) {
			k := next.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, next)
			queue = append(queue, next)
		}
	}
	return out
}

// fireActivity attempts to fire the activity from m (through silent
// moves). It returns the successor marking and whether the activity was
// activated.
func (r *replayer) fireActivity(m marking, activityID string) (marking, bool) {
	for _, reached := range r.closure(m) {
		for _, in := range r.model.Incoming(activityID) {
			e := edgePlace(in, activityID)
			if reached[e] > 0 {
				next := reached.clone()
				next.dec(e)
				next.inc(outPlace(activityID))
				return next, true
			}
		}
	}
	return nil, false
}

// canComplete reports whether a token can reach an end event through
// silent moves.
func (r *replayer) canComplete(m marking) bool {
	ends := make(map[string]bool)
	for _, e := range r.model.Ends() {
		ends[e] = true
	}
	for _, reached := range r.closure(m) {
		for p, n := range reached {
			if n <= 0 || strings.HasPrefix(p, outPrefix) {
				continue
			}
			parts := strings.SplitN(p, edgeSep, 2)
			if len(parts) == 2 && ends[parts[1]] {
				return true
			}
		}
	}
	return false
}

// inProgress reports whether the activity's output place is marked (the
// token is still "at" the activity — used for multi-line steps).
func (r *replayer) inProgress(m marking, activityID string) bool {
	return m[outPlace(activityID)] > 0
}
