package conformance

import (
	"fmt"
	"testing"
	"time"

	"poddiagnosis/internal/process"
)

func upgradeChecker() *Checker {
	return NewChecker(process.RollingUpgradeModel())
}

// happyTrace returns the log lines of a clean upgrade replacing n
// instances.
func happyTrace(n int) []string {
	lines := []string{
		"Starting rolling upgrade of group pm--asg to image ami-new",
		"Created launch configuration pm-lc-v2 with image ami-new",
		"Updated group pm--asg to launch configuration pm-lc-v2",
		fmt.Sprintf("Sorted %d instances for replacement", n),
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("i-%04d", i)
		lines = append(lines,
			fmt.Sprintf("Removed and deregistered instance %s from ELB pm-elb", id),
			fmt.Sprintf("Terminating old instance %s", id),
			"Waiting for group pm--asg to start a new instance",
			fmt.Sprintf("Instance pm on i-new%04d is ready for use. %d of %d instance relaunches done.", i, i+1, n),
		)
	}
	return append(lines, "Rolling upgrade task completed")
}

func TestHappyPathAllFit(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	for i, line := range happyTrace(4) {
		res := c.Check("task-1", line, now)
		if res.Verdict != VerdictFit {
			t.Fatalf("line %d %q verdict = %s (ctx %+v)", i, line, res.Verdict, res.Context)
		}
	}
	if !c.Completed("task-1") {
		t.Fatal("instance not completed after full trace")
	}
}

func TestLoopRunsManyIterations(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	for i, line := range happyTrace(20) {
		if res := c.Check("t", line, now); res.Verdict != VerdictFit {
			t.Fatalf("line %d verdict = %s", i, res.Verdict)
		}
	}
}

func TestStatusInfoFitsAnywhere(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	trace := happyTrace(2)
	for i, line := range trace {
		if res := c.Check("t", line, now); res.Verdict != VerdictFit {
			t.Fatalf("line %d: %s", i, res.Verdict)
		}
		// Interleave a recurring status line after every event.
		if res := c.Check("t", "Status: 1 of 2 instances replaced", now); res.Verdict != VerdictFit {
			t.Fatalf("status after line %d: %s", i, res.Verdict)
		}
	}
}

func TestSkippedActivityIsUnfitForward(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	c.Check("t", "Starting rolling upgrade of group g to image ami-1", now)
	c.Check("t", "Created launch configuration lc with image ami-1", now)
	c.Check("t", "Sorted 4 instances for replacement", now)
	// Skip deregister: jump straight to terminate.
	res := c.Check("t", "Terminating old instance i-1", now)
	if res.Verdict != VerdictUnfit {
		t.Fatalf("verdict = %s, want unfit", res.Verdict)
	}
	if res.Context == nil {
		t.Fatal("no error context")
	}
	if res.Context.Direction != DirectionForward {
		t.Errorf("direction = %s, want forward", res.Context.Direction)
	}
	found := false
	for _, s := range res.Context.Skipped {
		if s == process.NodeDeregister {
			found = true
		}
	}
	if !found {
		t.Errorf("skipped = %v, want to include %s", res.Context.Skipped, process.NodeDeregister)
	}
	if res.Context.LastValidActivity != process.NodeSortInst {
		t.Errorf("lastValid = %s", res.Context.LastValidActivity)
	}
}

func TestUndoneActivityIsUnfitBackward(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	for _, line := range happyTrace(2)[:6] { // through first terminate
		c.Check("t", line, now)
	}
	// Replay an earlier activity: update launch configuration again.
	res := c.Check("t", "Updated group g to launch configuration lc-old", now)
	if res.Verdict != VerdictUnfit {
		t.Fatalf("verdict = %s, want unfit", res.Verdict)
	}
	if res.Context.Direction != DirectionBackward {
		t.Errorf("direction = %s, want backward", res.Context.Direction)
	}
}

func TestKnownErrorLine(t *testing.T) {
	c := upgradeChecker()
	res := c.Check("t", "ERROR: AmazonServiceException launching instance", time.Now())
	if res.Verdict != VerdictError {
		t.Fatalf("verdict = %s, want error", res.Verdict)
	}
	if res.Context == nil {
		t.Fatal("error verdict without context")
	}
	if !res.Verdict.IsAnomalous() {
		t.Error("error not anomalous")
	}
}

func TestUnknownLineUnclassified(t *testing.T) {
	c := upgradeChecker()
	res := c.Check("t", "totally novel log line from nowhere", time.Now())
	if res.Verdict != VerdictUnclassified {
		t.Fatalf("verdict = %s", res.Verdict)
	}
	if res.Verdict.Tag() != "conformance:unclassified" {
		t.Errorf("tag = %s", res.Verdict.Tag())
	}
}

func TestFitIsNotAnomalous(t *testing.T) {
	if VerdictFit.IsAnomalous() {
		t.Error("fit is anomalous")
	}
	for _, v := range []Verdict{VerdictUnfit, VerdictError, VerdictUnclassified} {
		if !v.IsAnomalous() {
			t.Errorf("%s not anomalous", v)
		}
	}
}

func TestInstancesAreIndependent(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	// Instance A advances; instance B starts fresh.
	for _, line := range happyTrace(1) {
		if res := c.Check("A", line, now); res.Verdict != VerdictFit {
			t.Fatalf("A: %s", res.Verdict)
		}
	}
	res := c.Check("B", "Starting rolling upgrade of group g to image ami-2", now)
	if res.Verdict != VerdictFit {
		t.Fatalf("B first line: %s", res.Verdict)
	}
	if c.Completed("B") {
		t.Error("B completed prematurely")
	}
	if !c.Completed("A") {
		t.Error("A should be completed")
	}
	ids := c.InstanceIDs()
	if len(ids) != 2 {
		t.Errorf("InstanceIDs = %v", ids)
	}
}

func TestResetForgetsInstance(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	for _, line := range happyTrace(1) {
		c.Check("t", line, now)
	}
	c.Reset("t")
	if c.Completed("t") {
		t.Error("completed after reset")
	}
	// A fresh start line must fit again.
	if res := c.Check("t", "Starting rolling upgrade of group g to image ami-1", now); res.Verdict != VerdictFit {
		t.Fatalf("restart verdict = %s", res.Verdict)
	}
}

func TestFirstEventOutOfOrder(t *testing.T) {
	c := upgradeChecker()
	// Very first event is mid-process: unfit with skipped hypothesis and
	// no last-valid activity.
	res := c.Check("t", "Terminating old instance i-1", time.Now())
	if res.Verdict != VerdictUnfit {
		t.Fatalf("verdict = %s", res.Verdict)
	}
	if res.Context.LastValidActivity != "" {
		t.Errorf("lastValid = %q, want empty", res.Context.LastValidActivity)
	}
	if res.Context.Direction != DirectionForward {
		t.Errorf("direction = %s", res.Context.Direction)
	}
	if len(res.Context.Skipped) == 0 {
		t.Error("no skipped hypothesis")
	}
}

func TestCompletionOnlyAtEnd(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	trace := happyTrace(2)
	for i, line := range trace {
		res := c.Check("t", line, now)
		wantCompleted := i == len(trace)-1
		if res.Completed != wantCompleted {
			t.Errorf("line %d completed = %v, want %v", i, res.Completed, wantCompleted)
		}
	}
}

func TestRepeatTerminateWithinLoopIsUnfit(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	for _, line := range happyTrace(2)[:6] { // ... first terminate done
		c.Check("t", line, now)
	}
	// Terminate again without passing wait/ready/deregister.
	res := c.Check("t", "Terminating old instance i-2", now)
	if res.Verdict != VerdictUnfit {
		t.Fatalf("duplicate terminate verdict = %s", res.Verdict)
	}
}

func TestStepIDsSurfaceInResults(t *testing.T) {
	c := upgradeChecker()
	res := c.Check("t", "Starting rolling upgrade of group g to image ami-1", time.Now())
	if res.StepID != process.StepStartTask {
		t.Errorf("step = %q", res.StepID)
	}
	if res.ActivityName != "Start rolling upgrade task" {
		t.Errorf("name = %q", res.ActivityName)
	}
}

func TestStatsAndFitness(t *testing.T) {
	c := upgradeChecker()
	now := time.Now()
	for _, line := range happyTrace(2) {
		c.Check("t", line, now)
	}
	st := c.StatsFor("t")
	if st.Events != len(happyTrace(2)) || st.Fit != st.Events || !st.Completed {
		t.Fatalf("stats = %+v", st)
	}
	if st.Fitness() != 1.0 {
		t.Errorf("fitness = %f", st.Fitness())
	}
	// An anomalous line lowers fitness.
	c.Check("t", "totally unknown line", now)
	st = c.StatsFor("t")
	if st.Fitness() >= 1.0 {
		t.Errorf("fitness after anomaly = %f", st.Fitness())
	}
	// Unknown instance: empty stats, fitness 1 by convention.
	if got := c.StatsFor("ghost"); got.Events != 0 || got.Fitness() != 1.0 {
		t.Errorf("ghost stats = %+v fitness %f", got, got.Fitness())
	}
}
