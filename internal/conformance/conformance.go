// Package conformance implements online conformance checking of log events
// against a process model, following the token-replay technique the paper
// adapts from Petri nets to BPMN semantics (§III.B.2).
//
// For each process instance the checker maintains a marking (token
// positions). Each incoming log line is classified against the model's
// activity patterns and replayed:
//
//   - fit: the activity was activated in the current marking,
//   - unfit: a known activity executed out of turn (skipped or undone
//     work),
//   - error: the line matches a known-error pattern,
//   - unclassified: a completely unknown line (treated as a detected
//     error, like the paper).
//
// Unfit, error and unclassified results carry an ErrorContext — the last
// valid state, the last successfully executed activity, and the
// hypothesized skipped or undone activities — which the diagnosis engine
// uses to prune fault trees.
package conformance

import (
	"sort"
	"strings"
	"sync"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/process"
)

// Conformance metrics. Check latency is wall-clock: token replay is pure
// compute, and this histogram is the baseline for optimizing it.
var (
	mChecks = obs.Default.CounterVec("pod_conformance_checks_total",
		"Log lines replayed against the process model, by verdict.", "verdict")
	mNonConforming = obs.Default.Counter("pod_conformance_nonconforming_total",
		"Replayed lines with an anomalous verdict (unfit, error, unclassified).")
	mCheckLatency = obs.Default.Histogram("pod_conformance_check_seconds",
		"Wall-clock token-replay latency per log line.", nil)
	mResyncs = obs.Default.Counter("pod_conformance_resyncs_total",
		"Degraded-mode resynchronizations: forward deviations absorbed by fast-forwarding the marking after a detected log gap.")
)

// Verdict classifies one replayed log line.
type Verdict string

// Verdicts, matching the paper's conformance tags.
const (
	VerdictFit          Verdict = "fit"
	VerdictUnfit        Verdict = "unfit"
	VerdictError        Verdict = "error"
	VerdictUnclassified Verdict = "unclassified"
)

// Tag returns the log annotation for the verdict, e.g. "conformance:fit".
func (v Verdict) Tag() string { return "conformance:" + string(v) }

// IsAnomalous reports whether the verdict indicates a detected error.
func (v Verdict) IsAnomalous() bool { return v != VerdictFit }

// Direction describes how an unfit activity deviates from the model.
type Direction string

// Deviation directions.
const (
	// DirectionForward means activities were skipped (the process jumped
	// ahead).
	DirectionForward Direction = "forward"
	// DirectionBackward means completed activities were undone (the
	// process moved backwards).
	DirectionBackward Direction = "backward"
	// DirectionNone applies to error/unclassified lines.
	DirectionNone Direction = "none"
)

// ErrorContext captures where a non-conforming event left the process.
type ErrorContext struct {
	// LastValidActivity is the id of the last activity that replayed fit.
	LastValidActivity string `json:"lastValidActivity"`
	// LastValidStep is its step id.
	LastValidStep string `json:"lastValidStep"`
	// Marking is the token position (node ids) before the offending
	// event.
	Marking []string `json:"marking"`
	// Skipped lists hypothesized skipped activities (forward deviation)
	// or undone activities (backward deviation).
	Skipped []string `json:"skipped,omitempty"`
	// Direction is the deviation direction for unfit events.
	Direction Direction `json:"direction"`
}

// Result is the outcome of replaying one log line.
type Result struct {
	// Verdict is the conformance classification.
	Verdict Verdict `json:"verdict"`
	// ActivityID is the matched activity ("" for error/unclassified).
	ActivityID string `json:"activityId,omitempty"`
	// ActivityName is its display name.
	ActivityName string `json:"activityName,omitempty"`
	// StepID is the matched activity's process-context step.
	StepID string `json:"stepId,omitempty"`
	// InstanceID is the process instance the line belongs to.
	InstanceID string `json:"instanceId"`
	// Completed reports whether the instance has reached an end state.
	Completed bool `json:"completed"`
	// Resynced reports that the line replayed fit only because the replay
	// fast-forwarded over activities presumed lost in the log stream
	// (degraded-mode resynchronization; see CheckLossy).
	Resynced bool `json:"resynced,omitempty"`
	// Context is set for anomalous verdicts.
	Context *ErrorContext `json:"context,omitempty"`
}

// Summary renders the result as a one-line human-readable verdict for
// evidence timelines, e.g. "unfit at createlc (create launch config)".
func (r Result) Summary() string {
	s := string(r.Verdict)
	if r.StepID != "" {
		s += " at " + r.StepID
	}
	if r.ActivityName != "" {
		s += " (" + r.ActivityName + ")"
	}
	if r.Resynced {
		s += " [resynced]"
	}
	return s
}

// Checker replays log lines for any number of process instances of one
// model. It is safe for concurrent use.
type Checker struct {
	model *process.Model

	mu        sync.Mutex
	instances map[string]*instanceState
}

// instanceState is the replay state of one process instance.
type instanceState struct {
	m         marking
	lastValid *process.Node
	completed bool
	fired     map[string]int // activity id -> times fired
	lastAt    time.Time
	events    int // lines replayed
	fit       int // lines that replayed fit
}

// NewChecker returns a Checker for the given model.
func NewChecker(model *process.Model) *Checker {
	return &Checker{model: model, instances: make(map[string]*instanceState)}
}

// Model returns the model being checked against.
func (c *Checker) Model() *process.Model { return c.model }

// InstanceIDs returns the known process instance ids.
func (c *Checker) InstanceIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.instances))
	for id := range c.instances {
		out = append(out, id)
	}
	return out
}

// Completed reports whether the given instance has reached an end state.
func (c *Checker) Completed(instanceID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.instances[instanceID]
	return ok && st.completed
}

// Check replays one log line for the given process instance, creating the
// instance on first sight.
func (c *Checker) Check(instanceID, line string, at time.Time) Result {
	return c.check(instanceID, line, at, false)
}

// CheckLossy is Check for streams known to be lossy: when resyncOK is
// true and the line would replay unfit with a forward deviation — exactly
// the signature of activities whose log lines were lost in shipping — the
// replay resynchronizes by fast-forwarding the marking over the skipped
// activities instead of flagging a spurious non-conformance. The result
// carries Resynced so callers can discount it. Backward deviations,
// error lines and unclassified lines keep their normal verdicts: event
// loss cannot explain them.
func (c *Checker) CheckLossy(instanceID, line string, at time.Time, resyncOK bool) Result {
	return c.check(instanceID, line, at, resyncOK)
}

func (c *Checker) check(instanceID, line string, at time.Time, resyncOK bool) Result {
	started := clock.Wall.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.instances[instanceID]
	if !ok {
		st = &instanceState{
			m:     (&replayer{model: c.model}).initialMarking(),
			fired: make(map[string]int),
		}
		c.instances[instanceID] = st
	}
	st.lastAt = at
	st.events++
	rp := &replayer{model: c.model}

	res := Result{InstanceID: instanceID}
	defer func() {
		if res.Verdict == VerdictFit {
			st.fit++
		}
		mChecks.With(string(res.Verdict)).Inc()
		if res.Verdict.IsAnomalous() {
			mNonConforming.Inc()
		}
		mCheckLatency.Observe(clock.Wall.Since(started).Seconds())
	}()

	// Known-error lines trump classification.
	if c.model.IsErrorLine(line) {
		res.Verdict = VerdictError
		res.Context = c.errorContext(st, nil)
		return res
	}

	node, ok := c.model.Classify(line)
	if !ok {
		res.Verdict = VerdictUnclassified
		res.Context = c.errorContext(st, nil)
		return res
	}
	res.ActivityID = node.ID
	res.ActivityName = node.Name
	res.StepID = node.StepID

	if node.Recurring {
		// Periodic activities replay as fit while the instance is live.
		res.Verdict = VerdictFit
		res.Completed = st.completed
		return res
	}

	if node.MultiLine && rp.inProgress(st.m, node.ID) {
		// Another log line of the activity the token already occupies:
		// the step is in progress (steps may log start, progress and
		// end lines), so the event fits without moving the token.
		st.lastValid = node
		res.Verdict = VerdictFit
		res.Completed = st.completed
		return res
	}

	if next, ok := rp.fireActivity(st.m, node.ID); ok {
		st.m = next
		st.lastValid = node
		st.fired[node.ID]++
		st.completed = rp.canComplete(st.m)
		res.Verdict = VerdictFit
		res.Completed = st.completed
		return res
	}

	if resyncOK {
		if next, skipped, ok := c.fastForward(rp, st, node); ok {
			st.m = next
			st.lastValid = node
			for _, id := range skipped {
				st.fired[id]++
			}
			st.fired[node.ID]++
			st.completed = rp.canComplete(st.m)
			res.Verdict = VerdictFit
			res.Resynced = true
			res.Completed = st.completed
			mResyncs.Inc()
			return res
		}
	}

	res.Verdict = VerdictUnfit
	res.Context = c.errorContext(st, node)
	return res
}

// fastForward attempts to replay the activities on a path from the
// current marking to the unfit node — the ones whose log lines were
// presumably lost — and then the node itself. It returns the advanced
// marking and the skipped activity ids, or ok=false when no forward path
// explains the deviation (leaving the unfit verdict to stand).
func (c *Checker) fastForward(rp *replayer, st *instanceState, node *process.Node) (marking, []string, bool) {
	for _, anchor := range c.markingAnchors(st) {
		skipped, ok := c.activitiesOnPath(anchor, node.ID)
		if !ok {
			continue
		}
		m := st.m
		replayable := true
		for _, act := range skipped {
			next, fired := rp.fireActivity(m, act)
			if !fired {
				replayable = false
				break
			}
			m = next
		}
		if !replayable {
			continue
		}
		next, fired := rp.fireActivity(m, node.ID)
		if !fired {
			continue
		}
		return next, skipped, true
	}
	return nil, nil, false
}

// errorContext snapshots the instance state and, when an unfit activity is
// given, hypothesizes the skipped or undone activities.
func (c *Checker) errorContext(st *instanceState, unfit *process.Node) *ErrorContext {
	ctx := &ErrorContext{Direction: DirectionNone}
	if st.lastValid != nil {
		ctx.LastValidActivity = st.lastValid.ID
		ctx.LastValidStep = st.lastValid.StepID
	}
	ctx.Marking = st.m.places()
	if unfit == nil {
		return ctx
	}
	// The skipped/undone hypothesis works on the node graph: anchor the
	// search at the nodes the marked places touch.
	anchors := c.markingAnchors(st)
	// Forward deviation: activities on a path from the marking to the
	// unfit activity were skipped.
	for _, anchor := range anchors {
		if skipped, ok := c.activitiesOnPath(anchor, unfit.ID); ok {
			ctx.Direction = DirectionForward
			ctx.Skipped = skipped
			return ctx
		}
	}
	// Backward deviation: the unfit activity precedes the marking; the
	// activities between it and the marking would have been undone.
	for _, anchor := range anchors {
		if undone, ok := c.activitiesOnPath(unfit.ID, anchor); ok {
			ctx.Direction = DirectionBackward
			ctx.Skipped = undone
			return ctx
		}
	}
	return ctx
}

// markingAnchors maps the marked places to node ids for hypothesis
// search: an activity output place anchors at the activity, a flow place
// anchors at its source node.
func (c *Checker) markingAnchors(st *instanceState) []string {
	seen := make(map[string]bool)
	var out []string
	for p := range st.m {
		var node string
		if strings.HasPrefix(p, outPrefix) {
			node = strings.TrimPrefix(p, outPrefix)
		} else if parts := strings.SplitN(p, edgeSep, 2); len(parts) == 2 {
			node = parts[0]
		}
		if node != "" && !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	sort.Strings(out)
	return out
}

// activitiesOnPath finds a shortest path src→dst (both exclusive) through
// any node kinds and returns the activities along it.
func (c *Checker) activitiesOnPath(src, dst string) ([]string, bool) {
	type hop struct {
		id   string
		prev *hop
	}
	seen := map[string]bool{src: true}
	queue := []*hop{{id: src}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range c.model.Outgoing(cur.id) {
			if seen[next] {
				continue
			}
			h := &hop{id: next, prev: cur}
			if next == dst {
				var acts []string
				for p := cur; p != nil && p.id != src; p = p.prev {
					if n := c.model.Node(p.id); n != nil && n.Kind == process.KindActivity {
						acts = append([]string{p.id}, acts...)
					}
				}
				return acts, true
			}
			seen[next] = true
			queue = append(queue, h)
		}
	}
	return nil, false
}

// Stats summarizes one instance's replay.
type Stats struct {
	// Events is the number of lines replayed.
	Events int `json:"events"`
	// Fit is the number of lines that replayed fit.
	Fit int `json:"fit"`
	// Completed reports whether the instance reached an end state.
	Completed bool `json:"completed"`
}

// Fitness is the fraction of events that replayed fit — the degree to
// which the log and the model fit (§III.B.2). It is 1 for an empty
// instance.
func (s Stats) Fitness() float64 {
	if s.Events == 0 {
		return 1
	}
	return float64(s.Fit) / float64(s.Events)
}

// StatsFor returns the replay statistics of the given instance.
func (c *Checker) StatsFor(instanceID string) Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.instances[instanceID]
	if !ok {
		return Stats{}
	}
	return Stats{Events: st.events, Fit: st.fit, Completed: st.completed}
}

// Reset forgets the given process instance.
func (c *Checker) Reset(instanceID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.instances, instanceID)
}
