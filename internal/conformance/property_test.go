package conformance

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"poddiagnosis/internal/process"
)

// TestHappyTraceAlwaysFitsProperty: for any cluster size, the clean trace
// replays fully fit and completes.
func TestHappyTraceAlwaysFitsProperty(t *testing.T) {
	model := process.RollingUpgradeModel()
	f := func(nRaw uint8) bool {
		n := int(nRaw%30) + 1
		c := NewChecker(model)
		now := time.Now()
		for _, line := range happyTrace(n) {
			if res := c.Check("t", line, now); res.Verdict != VerdictFit {
				return false
			}
		}
		return c.Completed("t")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedInstancesProperty: two instances replaying interleaved
// traces never contaminate each other's state.
func TestInterleavedInstancesProperty(t *testing.T) {
	model := process.RollingUpgradeModel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewChecker(model)
		a, b := happyTrace(2), happyTrace(3)
		ai, bi := 0, 0
		now := time.Now()
		for ai < len(a) || bi < len(b) {
			pickA := bi >= len(b) || (ai < len(a) && rng.Intn(2) == 0)
			if pickA {
				if res := c.Check("A", a[ai], now); res.Verdict != VerdictFit {
					return false
				}
				ai++
			} else {
				if res := c.Check("B", b[bi], now); res.Verdict != VerdictFit {
					return false
				}
				bi++
			}
		}
		return c.Completed("A") && c.Completed("B")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestShuffledTraceDetectedProperty: shuffling a trace's replacement loop
// (beyond a rotation that happens to be valid) is detected as anomalous at
// least once, and replay never panics on arbitrary orderings.
func TestShuffledTraceDetectedProperty(t *testing.T) {
	model := process.RollingUpgradeModel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := happyTrace(3)
		shuffled := append([]string(nil), trace...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		identical := true
		for i := range trace {
			if trace[i] != shuffled[i] {
				identical = false
			}
		}
		if identical {
			return true
		}
		c := NewChecker(model)
		now := time.Now()
		anomalies := 0
		for _, line := range shuffled {
			if res := c.Check("t", line, now); res.Verdict.IsAnomalous() {
				anomalies++
			}
		}
		return anomalies > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerDeterminism: the same trace produces the same verdicts.
func TestCheckerDeterminism(t *testing.T) {
	model := process.RollingUpgradeModel()
	trace := append(happyTrace(2), "garbage line", "Terminating old instance i-99")
	replay := func() []Verdict {
		c := NewChecker(model)
		now := time.Now()
		var out []Verdict
		for _, line := range trace {
			out = append(out, c.Check("t", line, now).Verdict)
		}
		return out
	}
	a, b := replay(), replay()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}
