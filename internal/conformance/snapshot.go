package conformance

import (
	"sort"
	"time"
)

// InstanceSnapshot is the portable replay state of one process
// instance: everything the checker needs to resume token replay on
// another manager mid-operation. The marking serializes place ids
// directly (sequence-flow and virtual-output place encodings are
// stable properties of the model, not of the checker instance); the
// last valid activity is carried by node id and re-resolved against
// the adopting checker's model on import.
type InstanceSnapshot struct {
	InstanceID string         `json:"instanceId"`
	Marking    map[string]int `json:"marking,omitempty"`
	LastValid  string         `json:"lastValid,omitempty"`
	Completed  bool           `json:"completed,omitempty"`
	Fired      map[string]int `json:"fired,omitempty"`
	LastAt     time.Time      `json:"lastAt,omitempty"`
	Events     int            `json:"events,omitempty"`
	Fit        int            `json:"fit,omitempty"`
}

// Export snapshots every instance's replay state, sorted by instance
// id for deterministic round-trips.
func (c *Checker) Export() []InstanceSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]InstanceSnapshot, 0, len(c.instances))
	for id, st := range c.instances {
		snap := InstanceSnapshot{
			InstanceID: id,
			Marking:    make(map[string]int, len(st.m)),
			Completed:  st.completed,
			Fired:      make(map[string]int, len(st.fired)),
			LastAt:     st.lastAt,
			Events:     st.events,
			Fit:        st.fit,
		}
		for p, n := range st.m {
			snap.Marking[p] = n
		}
		for a, n := range st.fired {
			snap.Fired[a] = n
		}
		if st.lastValid != nil {
			snap.LastValid = st.lastValid.ID
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InstanceID < out[j].InstanceID })
	return out
}

// Import installs exported replay states, replacing any same-named
// instances. Unknown last-valid node ids (a model mismatch between the
// exporting and importing managers) degrade to a nil last-valid
// activity rather than failing the restore: the next fit line
// re-anchors it.
func (c *Checker) Import(snaps []InstanceSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, snap := range snaps {
		st := &instanceState{
			m:         make(marking, len(snap.Marking)),
			completed: snap.Completed,
			fired:     make(map[string]int, len(snap.Fired)),
			lastAt:    snap.LastAt,
			events:    snap.Events,
			fit:       snap.Fit,
		}
		for p, n := range snap.Marking {
			st.m[p] = n
		}
		for a, n := range snap.Fired {
			st.fired[a] = n
		}
		if snap.LastValid != "" {
			st.lastValid = c.model.Node(snap.LastValid)
		}
		if len(st.m) == 0 {
			st.m = (&replayer{model: c.model}).initialMarking()
		}
		c.instances[snap.InstanceID] = st
	}
}
