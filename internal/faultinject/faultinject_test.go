package faultinject

import (
	"context"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

type injEnv struct {
	cloud   *simaws.Cloud
	cluster *upgrade.Cluster
	inj     *Injector
	ctx     context.Context
}

func newInjEnv(t *testing.T, n int) *injEnv {
	t.Helper()
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	profile := simaws.FastProfile()
	profile.BootTime = clock.Fixed(time.Second)
	profile.TickInterval = 200 * time.Millisecond
	cloud := simaws.New(clk, profile, simaws.WithSeed(31))
	cloud.Start()
	t.Cleanup(cloud.Stop)
	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", n, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	return &injEnv{cloud: cloud, cluster: cluster, inj: NewInjector(cloud, cluster, 99), ctx: ctx}
}

func (e *injEnv) currentLC(t *testing.T) simaws.LaunchConfig {
	t.Helper()
	asg, err := e.cloud.DescribeAutoScalingGroup(e.ctx, e.cluster.ASGName)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := e.cloud.DescribeLaunchConfiguration(e.ctx, asg.LaunchConfigName)
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

func TestConfigurationFaultsFlipOneDimension(t *testing.T) {
	cases := []struct {
		kind  Kind
		check func(t *testing.T, before, after simaws.LaunchConfig)
	}{
		{KindAMIChanged, func(t *testing.T, b, a simaws.LaunchConfig) {
			if a.ImageID == b.ImageID {
				t.Error("AMI unchanged")
			}
			if a.KeyName != b.KeyName || a.InstanceType != b.InstanceType {
				t.Error("other dimensions changed")
			}
		}},
		{KindKeyPairChanged, func(t *testing.T, b, a simaws.LaunchConfig) {
			if a.KeyName == b.KeyName {
				t.Error("key unchanged")
			}
			if a.ImageID != b.ImageID {
				t.Error("AMI changed")
			}
		}},
		{KindSGChanged, func(t *testing.T, b, a simaws.LaunchConfig) {
			if len(a.SecurityGroups) == len(b.SecurityGroups) && a.SecurityGroups[0] == b.SecurityGroups[0] {
				t.Error("SG unchanged")
			}
		}},
		{KindInstanceTypeChanged, func(t *testing.T, b, a simaws.LaunchConfig) {
			if a.InstanceType == b.InstanceType {
				t.Error("type unchanged")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			e := newInjEnv(t, 1)
			before := e.currentLC(t)
			if err := e.inj.Inject(e.ctx, tc.kind, 0, "", ""); err != nil {
				t.Fatal(err)
			}
			after := e.currentLC(t)
			tc.check(t, before, after)
			if !tc.kind.ConfigurationFault() {
				t.Error("kind should be a configuration fault")
			}
		})
	}
}

func TestResourceUnavailableFaults(t *testing.T) {
	e := newInjEnv(t, 1)
	if err := e.inj.Inject(e.ctx, KindAMIUnavailable, 0, "", e.cluster.ImageID); err != nil {
		t.Fatal(err)
	}
	img, err := e.cloud.DescribeImage(e.ctx, e.cluster.ImageID)
	if err != nil || img.Available {
		t.Errorf("AMI still available: %v %v", img.Available, err)
	}

	e2 := newInjEnv(t, 1)
	if err := e2.inj.Inject(e2.ctx, KindKeyPairUnavailable, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.cloud.DescribeKeyPair(e2.ctx, e2.cluster.KeyName); !simaws.IsNotFound(err) {
		t.Errorf("key pair still there: %v", err)
	}

	e3 := newInjEnv(t, 1)
	if err := e3.inj.Inject(e3.ctx, KindSGUnavailable, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := e3.cloud.DescribeSecurityGroup(e3.ctx, e3.cluster.SGName); !simaws.IsNotFound(err) {
		t.Errorf("SG still there: %v", err)
	}
}

func TestELBUnavailableAndHeal(t *testing.T) {
	e := newInjEnv(t, 1)
	if err := e.inj.Inject(e.ctx, KindELBUnavailable, 0, "", ""); err != nil {
		t.Fatal(err)
	}
	if !e.cloud.ELBServiceDisrupted() {
		t.Fatal("ELB not disrupted")
	}
	e.inj.Heal()
	if e.cloud.ELBServiceDisrupted() {
		t.Fatal("Heal did not clear disruption")
	}
}

func TestWaitThenWaitsForLC(t *testing.T) {
	e := newInjEnv(t, 1)
	done := make(chan error, 1)
	go func() {
		done <- e.inj.Inject(e.ctx, KindAMIUnavailable, 0, "upcoming-lc", e.cluster.ImageID)
	}()
	// The injector should wait for the LC; create it shortly after.
	time.Sleep(10 * time.Millisecond)
	if err := e.cloud.CreateLaunchConfiguration(e.ctx, simaws.LaunchConfig{
		Name: "upcoming-lc", ImageID: e.cluster.ImageID, KeyName: e.cluster.KeyName,
		SecurityGroups: []string{e.cluster.SGName}, InstanceType: "m1.small",
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injector never finished")
	}
	img, _ := e.cloud.DescribeImage(e.ctx, e.cluster.ImageID)
	if img.Available {
		t.Error("AMI still available after injection")
	}
}

func TestInterferenceScaleIn(t *testing.T) {
	e := newInjEnv(t, 3)
	if err := e.inj.Interfere(e.ctx, InterferenceScaleIn, 0); err != nil {
		t.Fatal(err)
	}
	asg, _ := e.cloud.DescribeAutoScalingGroup(e.ctx, e.cluster.ASGName)
	if asg.Desired != 2 {
		t.Fatalf("desired = %d", asg.Desired)
	}
}

func TestInterferenceRandomTermination(t *testing.T) {
	e := newInjEnv(t, 2)
	if err := e.inj.Interfere(e.ctx, InterferenceRandomTermination, 0); err != nil {
		t.Fatal(err)
	}
	instances, _ := e.cloud.DescribeInstances(e.ctx)
	terminating := 0
	for _, inst := range instances {
		if inst.State == simaws.StateTerminating || inst.State == simaws.StateTerminated {
			terminating++
		}
	}
	if terminating == 0 {
		t.Fatal("nothing terminated")
	}
}

func TestInterferenceAccountPressure(t *testing.T) {
	e := newInjEnv(t, 1)
	if err := e.inj.Interfere(e.ctx, InterferenceAccountPressure, 0); err != nil {
		t.Fatal(err)
	}
	if e.cloud.ExternalUsage() == 0 {
		t.Fatal("no external usage set")
	}
	e.inj.Heal()
	if e.cloud.ExternalUsage() != 0 {
		t.Fatal("Heal did not clear usage")
	}
}

func TestKindMetadata(t *testing.T) {
	if len(AllKinds()) != 8 {
		t.Fatalf("AllKinds = %d", len(AllKinds()))
	}
	for _, k := range AllKinds() {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
		if len(k.ExpectedRootCauses()) == 0 {
			t.Errorf("kind %s has no expected root causes", k)
		}
	}
	if Kind(99).String() != "unknown" || Kind(99).ExpectedRootCauses() != nil {
		t.Error("unknown kind metadata wrong")
	}
	conf := 0
	for _, k := range AllKinds() {
		if k.ConfigurationFault() {
			conf++
		}
	}
	if conf != 4 {
		t.Errorf("configuration faults = %d, want 4", conf)
	}
	for _, i := range []Interference{InterferenceScaleIn, InterferenceRandomTermination, InterferenceAccountPressure} {
		if i.String() == "unknown" {
			t.Errorf("interference %d has no name", i)
		}
	}
}

func TestInjectUnknownKind(t *testing.T) {
	e := newInjEnv(t, 1)
	if err := e.inj.Inject(e.ctx, Kind(99), 0, "", ""); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := e.inj.Interfere(e.ctx, Interference(99), 0); err == nil {
		t.Fatal("unknown interference accepted")
	}
}
