// Package faultinject implements the fault injectors of the paper's
// evaluation (§V.C): the 8 representative fault types injected into
// rolling upgrades, plus the interference operations (legitimate
// simultaneous scale-in, random instance termination, co-tenant account
// pressure) used to confound detection.
//
// Each injector acts only through the public cloud API — exactly like the
// concurrent operators and infrastructure events it models.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// Kind enumerates the 8 injected fault types of §V.C.
type Kind int

// Fault kinds, numbered as in the paper.
const (
	// KindAMIChanged is fault 1: AMI changed during upgrade (concurrent
	// independent upgrade causing mixed versions).
	KindAMIChanged Kind = iota + 1
	// KindKeyPairChanged is fault 2: key pair management fault.
	KindKeyPairChanged
	// KindSGChanged is fault 3: security group configuration fault.
	KindSGChanged
	// KindInstanceTypeChanged is fault 4: instance type changed during
	// upgrade.
	KindInstanceTypeChanged
	// KindAMIUnavailable is fault 5: AMI is unavailable during upgrade.
	KindAMIUnavailable
	// KindKeyPairUnavailable is fault 6: key pair unavailable.
	KindKeyPairUnavailable
	// KindSGUnavailable is fault 7: security group unavailable.
	KindSGUnavailable
	// KindELBUnavailable is fault 8: ELB is unavailable during upgrade.
	KindELBUnavailable
)

// AllKinds lists every fault kind in paper order.
func AllKinds() []Kind {
	return []Kind{
		KindAMIChanged, KindKeyPairChanged, KindSGChanged, KindInstanceTypeChanged,
		KindAMIUnavailable, KindKeyPairUnavailable, KindSGUnavailable, KindELBUnavailable,
	}
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAMIChanged:
		return "ami-changed"
	case KindKeyPairChanged:
		return "keypair-changed"
	case KindSGChanged:
		return "sg-changed"
	case KindInstanceTypeChanged:
		return "instance-type-changed"
	case KindAMIUnavailable:
		return "ami-unavailable"
	case KindKeyPairUnavailable:
		return "keypair-unavailable"
	case KindSGUnavailable:
		return "sg-unavailable"
	case KindELBUnavailable:
		return "elb-unavailable"
	default:
		return "unknown"
	}
}

// ConfigurationFault reports whether the kind is one of the four
// configuration faults (1-4), which the paper notes are not detectable by
// conformance checking because the log output is unchanged.
func (k Kind) ConfigurationFault() bool {
	return k >= KindAMIChanged && k <= KindInstanceTypeChanged
}

// ExpectedRootCauses maps the fault kind to the fault-tree node base ids
// that constitute a correct diagnosis.
func (k Kind) ExpectedRootCauses() []string {
	switch k {
	// The changed-kind faults act by flipping the new launch configuration
	// (flipLaunchConfig), so a diagnosis of "launch configuration changed"
	// is as correct as the attribute-level wrong-* causes: which one fires
	// depends on whether the assertion runs before or after the ASG has
	// launched from the flipped configuration.
	case KindAMIChanged:
		return []string{"wrong-ami", "lc-changed"}
	case KindKeyPairChanged:
		return []string{"wrong-keypair", "lc-changed"}
	case KindSGChanged:
		return []string{"wrong-sg", "lc-changed"}
	case KindInstanceTypeChanged:
		return []string{"wrong-instance-type", "lc-changed"}
	case KindAMIUnavailable:
		return []string{"launch-ami-unavailable", "lc-ami-unavailable", "wrong-ami"}
	case KindKeyPairUnavailable:
		return []string{"launch-keypair-unavailable", "lc-keypair-unavailable", "wrong-keypair"}
	case KindSGUnavailable:
		return []string{"launch-sg-unavailable", "lc-sg-unavailable", "wrong-sg"}
	case KindELBUnavailable:
		return []string{"elb-unreachable"}
	default:
		return nil
	}
}

// Injector injects one fault into a running upgrade of a cluster.
type Injector struct {
	cloud   *simaws.Cloud
	cluster *upgrade.Cluster
	clk     clock.Clock
	rng     *rand.Rand
}

// NewInjector returns an Injector for the cluster.
func NewInjector(cloud *simaws.Cloud, cluster *upgrade.Cluster, seed int64) *Injector {
	return &Injector{
		cloud:   cloud,
		cluster: cluster,
		clk:     cloud.Clock(),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Inject applies the fault after delay (simulated time). newLCName is the
// launch configuration the upgrade under test creates; newAMI is the
// target image. Inject blocks until the fault is applied or ctx is done.
func (inj *Injector) Inject(ctx context.Context, kind Kind, delay time.Duration, newLCName, newAMI string) error {
	if err := inj.clk.Sleep(ctx, delay); err != nil {
		return err
	}
	switch kind {
	// Configuration flips wait for the upgrade's own launch configuration
	// so the concurrent change strikes mid-upgrade (after step 2), as in
	// the paper's scenario of independent teams racing on the same group.
	case KindAMIChanged:
		return inj.waitThen(ctx, newLCName, func() error { return inj.flipLaunchConfig(ctx, "ami") })
	case KindKeyPairChanged:
		return inj.waitThen(ctx, newLCName, func() error { return inj.flipLaunchConfig(ctx, "key") })
	case KindSGChanged:
		return inj.waitThen(ctx, newLCName, func() error { return inj.flipLaunchConfig(ctx, "sg") })
	case KindInstanceTypeChanged:
		return inj.waitThen(ctx, newLCName, func() error { return inj.flipLaunchConfig(ctx, "type") })
	case KindAMIUnavailable:
		return inj.waitThen(ctx, newLCName, func() error {
			return inj.cloud.DeregisterImage(ctx, newAMI)
		})
	case KindKeyPairUnavailable:
		return inj.waitThen(ctx, newLCName, func() error {
			return inj.cloud.DeleteKeyPair(ctx, inj.cluster.KeyName)
		})
	case KindSGUnavailable:
		return inj.waitThen(ctx, newLCName, func() error {
			return inj.cloud.DeleteSecurityGroup(ctx, inj.cluster.SGName)
		})
	case KindELBUnavailable:
		inj.cloud.SetELBServiceDisruption(true)
		return nil
	default:
		return fmt.Errorf("faultinject: unknown kind %d", kind)
	}
}

// Heal reverts persistent fault state so the next run starts clean. Only
// the ELB disruption persists beyond a cluster teardown.
func (inj *Injector) Heal() {
	inj.cloud.SetELBServiceDisruption(false)
	inj.cloud.SetExternalUsage(0)
}

// flipLaunchConfig simulates a concurrent independent team switching the
// ASG to a launch configuration that differs in one dimension. The group
// may not exist yet when the flip fires — blue/green deploys create the
// launch configuration first and the group moments later — so the
// describe polls briefly for the group to appear.
func (inj *Injector) flipLaunchConfig(ctx context.Context, dim string) error {
	asg, err := inj.cloud.DescribeAutoScalingGroup(ctx, inj.cluster.ASGName)
	for deadline := inj.clk.Now().Add(2 * time.Minute); err != nil && simaws.IsNotFound(err) && inj.clk.Now().Before(deadline); {
		if serr := inj.clk.Sleep(ctx, time.Second); serr != nil {
			return serr
		}
		asg, err = inj.cloud.DescribeAutoScalingGroup(ctx, inj.cluster.ASGName)
	}
	if err != nil {
		return fmt.Errorf("faultinject: %w", err)
	}
	cur, err := inj.cloud.DescribeLaunchConfiguration(ctx, asg.LaunchConfigName)
	if err != nil {
		return fmt.Errorf("faultinject: %w", err)
	}
	rogue := cur
	rogue.Name = fmt.Sprintf("rogue-%s-%04x", dim, inj.rng.Intn(1<<16))
	switch dim {
	case "ami":
		ami, err := inj.cloud.RegisterImage(ctx, "rogue-release", fmt.Sprintf("v%d", 90+inj.rng.Intn(9)), upgrade.AppServices)
		if err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		rogue.ImageID = ami
	case "key":
		key := fmt.Sprintf("rogue-key-%04x", inj.rng.Intn(1<<16))
		if err := inj.cloud.ImportKeyPair(ctx, key); err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		rogue.KeyName = key
	case "sg":
		sg := fmt.Sprintf("rogue-sg-%04x", inj.rng.Intn(1<<16))
		if _, err := inj.cloud.CreateSecurityGroup(ctx, sg, []int{22}); err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		rogue.SecurityGroups = []string{sg}
	case "type":
		rogue.InstanceType = "m1.large"
	}
	if err := inj.cloud.CreateLaunchConfiguration(ctx, rogue); err != nil {
		return fmt.Errorf("faultinject: %w", err)
	}
	if err := inj.cloud.UpdateAutoScalingGroup(ctx, inj.cluster.ASGName, rogue.Name, -1, -1, -1); err != nil {
		return fmt.Errorf("faultinject: %w", err)
	}
	return nil
}

// waitThen waits until the upgrade's new launch configuration exists (so
// resource deletion strikes mid-upgrade, not before LC validation), then
// applies f. If the LC never appears within 2 minutes of simulated time,
// f is applied anyway.
func (inj *Injector) waitThen(ctx context.Context, newLCName string, f func() error) error {
	deadline := inj.clk.Now().Add(2 * time.Minute)
	for newLCName != "" && inj.clk.Now().Before(deadline) {
		if _, err := inj.cloud.DescribeLaunchConfiguration(ctx, newLCName); err == nil {
			break
		}
		if err := inj.clk.Sleep(ctx, time.Second); err != nil {
			return err
		}
	}
	return f()
}

// Storm models a spot-capacity interruption storm: after delay, count
// in-service instances of the cluster's group are reclaimed, interval
// apart. The terminations go through the plain TerminateInstance API —
// the "operator" principal in the audit trail — so the
// no-external-termination diagnosis test attributes them, exactly like
// the paper's termination interference (§V.B). Storm is the ground truth
// of the spot-rebalance scenario, not one of the 8 fault kinds.
func (inj *Injector) Storm(ctx context.Context, count int, delay, interval time.Duration) error {
	if err := inj.clk.Sleep(ctx, delay); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		if i > 0 {
			if err := inj.clk.Sleep(ctx, interval); err != nil {
				return err
			}
		}
		// The reclamation service is external to the application's account:
		// it rides out throttling instead of giving up.
		instances, err := inj.cloud.DescribeInstances(ctx)
		for err != nil && simaws.IsRetryable(err) {
			if serr := inj.clk.Sleep(ctx, time.Second); serr != nil {
				return serr
			}
			instances, err = inj.cloud.DescribeInstances(ctx)
		}
		if err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		var candidates []string
		for _, inst := range instances {
			if inst.ASGName == inj.cluster.ASGName && inst.State == simaws.StateInService {
				candidates = append(candidates, inst.ID)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		victim := candidates[inj.rng.Intn(len(candidates))]
		err = inj.cloud.TerminateInstance(ctx, victim)
		for err != nil && simaws.IsRetryable(err) {
			if serr := inj.clk.Sleep(ctx, time.Second); serr != nil {
				return serr
			}
			err = inj.cloud.TerminateInstance(ctx, victim)
		}
		if err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
	}
	return nil
}

// Interference is a legitimate simultaneous operation used to confound
// detection (§V.B).
type Interference int

// Interference kinds.
const (
	// InterferenceScaleIn shrinks the ASG by one instance.
	InterferenceScaleIn Interference = iota + 1
	// InterferenceRandomTermination terminates a random in-service
	// instance outside the process.
	InterferenceRandomTermination
	// InterferenceAccountPressure has the co-tenant team consume account
	// instance capacity.
	InterferenceAccountPressure
)

// String implements fmt.Stringer.
func (i Interference) String() string {
	switch i {
	case InterferenceScaleIn:
		return "scale-in"
	case InterferenceRandomTermination:
		return "random-termination"
	case InterferenceAccountPressure:
		return "account-pressure"
	default:
		return "unknown"
	}
}

// Interfere applies the interference after delay of simulated time.
func (inj *Injector) Interfere(ctx context.Context, kind Interference, delay time.Duration) error {
	if err := inj.clk.Sleep(ctx, delay); err != nil {
		return err
	}
	switch kind {
	case InterferenceScaleIn:
		asg, err := inj.cloud.DescribeAutoScalingGroup(ctx, inj.cluster.ASGName)
		if err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		want := asg.Desired - 1
		if want < asg.Min {
			want = asg.Min
		}
		if err := inj.cloud.SetDesiredCapacity(ctx, inj.cluster.ASGName, want); err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		return nil
	case InterferenceRandomTermination:
		instances, err := inj.cloud.DescribeInstances(ctx)
		if err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		var candidates []string
		for _, inst := range instances {
			if inst.ASGName == inj.cluster.ASGName && inst.State == simaws.StateInService {
				candidates = append(candidates, inst.ID)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
		victim := candidates[inj.rng.Intn(len(candidates))]
		if err := inj.cloud.TerminateInstance(ctx, victim); err != nil {
			return fmt.Errorf("faultinject: %w", err)
		}
		return nil
	case InterferenceAccountPressure:
		inj.cloud.SetExternalUsage(25 + inj.rng.Intn(10))
		return nil
	default:
		return fmt.Errorf("faultinject: unknown interference %d", kind)
	}
}
