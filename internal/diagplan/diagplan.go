// Package diagplan implements declarative diagnosis plans: directed
// acyclic graphs of diagnosis nodes that generalize the paper's fault
// trees (§III.B.4, Figure 5) into the adjacency-list style of kubediag's
// OperationSet. A plan is a JSON document of nodes and probability-
// weighted edges; collector nodes can feed several tester sub-graphs,
// shared sub-graphs are expressed once and referenced by many parents
// (fan-in), and cycles are rejected at load time.
//
// At diagnosis time a plan is selected by the failing assertion's id,
// instantiated with the runtime request's parameters ({var}
// placeholders), pruned by the process context (step id), and visited
// entry-down by the diagnosis engine in per-edge probability order.
package diagplan

import (
	"fmt"
	"sort"
	"strings"

	"poddiagnosis/internal/assertion"
)

// Kind classifies a plan node for validation and rendering. The walk
// semantics derive from structure (check present, outgoing edges, cause
// or not); the kind states the author's intent so lint can flag
// mismatches.
type Kind string

// Node kinds.
const (
	// KindEntry is the plan's top event (the failing assertion's
	// negation). It carries no check and is always descended into.
	KindEntry Kind = "entry"
	// KindCollector gathers shared context: a passing check excludes
	// everything downstream of it, a failing or inconclusive one descends.
	// Collectors are the shareable interior nodes several testers fan out
	// of (and several parents fan into).
	KindCollector Kind = "collector"
	// KindTest is an intermediate diagnosis test with the same walk
	// semantics as a collector; the separate kind documents nodes that
	// verify one specific condition rather than collect context.
	KindTest Kind = "test"
	// KindCause is a diagnosable root cause: a sink node whose failing
	// check confirms the fault.
	KindCause Kind = "cause"
)

// knownKind reports whether k is a registered node kind.
func knownKind(k Kind) bool {
	switch k {
	case KindEntry, KindCollector, KindTest, KindCause:
		return true
	}
	return false
}

// Test classifications for Node.TestClass.
const (
	// TestClassRetryable marks a test safe to retry under backoff when it
	// fails with a throttle/timeout-class error (read-only cloud queries).
	TestClassRetryable = "retryable"
	// TestClassNoRetry marks a test that must not be retried (its answer
	// is time-sensitive or the call is not idempotent).
	TestClassNoRetry = "no-retry"
)

// Edge is one directed edge of a plan.
type Edge struct {
	// To is the target node id.
	To string `json:"to"`
	// Prob is the prior fault probability of the target relative to its
	// siblings under this parent (§III.B.4: visit order is determined by
	// the fault probability). Fan-in targets may carry a different prior
	// per incoming edge.
	Prob float64 `json:"prob,omitempty"`
}

// Node is one vertex of a diagnosis plan.
type Node struct {
	// ID identifies the node within its plan, e.g. "wrong-ami".
	ID string `json:"id"`
	// Kind classifies the node (entry, collector, test, cause).
	Kind Kind `json:"kind"`
	// Description explains the fault or intermediate event; it may
	// contain {param} placeholders instantiated at diagnosis time.
	Description string `json:"description,omitempty"`
	// CheckID names the diagnosis test (an assertion check id) that
	// confirms or excludes this node: the fault is present when the check
	// FAILS. Empty means no test exists — uncheckable interior nodes are
	// always descended into; uncheckable causes can never be confirmed
	// (the paper's "diagnosis cannot determine why" case).
	CheckID string `json:"checkId,omitempty"`
	// CheckParams override or extend the request parameters for the
	// diagnosis test; values may contain {param} placeholders.
	CheckParams assertion.Params `json:"checkParams,omitempty"`
	// TestClass classifies the diagnosis test's failure handling for the
	// resilience layer: TestClassRetryable tests are retried with backoff
	// on throttle/timeout-class errors, TestClassNoRetry tests are not.
	// Required (by podlint DG009) on every node carrying a CheckID.
	TestClass string `json:"testClass,omitempty"`
	// Steps is the process context association: the step ids for which
	// this node is relevant. Empty means relevant in any context.
	Steps []string `json:"steps,omitempty"`
	// Edges are the sub-events that can cause this event.
	Edges []Edge `json:"edges,omitempty"`
}

// Clone deep-copies the node.
func (n *Node) Clone() *Node {
	out := *n
	out.CheckParams = n.CheckParams.Clone()
	out.Steps = append([]string(nil), n.Steps...)
	out.Edges = append([]Edge(nil), n.Edges...)
	return &out
}

// IsCause reports whether the node is a diagnosable root cause.
func (n *Node) IsCause() bool { return n.Kind == KindCause }

// Leaf reports whether the node has no outgoing edges.
func (n *Node) Leaf() bool { return len(n.Edges) == 0 }

// RelevantTo reports whether the node applies in the given step context.
// An empty stepID (context unknown, e.g. purely timer-triggered
// diagnosis) keeps every node; an unscoped node is always relevant.
func (n *Node) RelevantTo(stepID string) bool {
	if stepID == "" || len(n.Steps) == 0 {
		return true
	}
	for _, s := range n.Steps {
		if s == stepID {
			return true
		}
	}
	return false
}

// Plan is a diagnosis DAG for one assertion.
type Plan struct {
	// ID identifies the plan.
	ID string `json:"id"`
	// AssertionID is the check whose failure selects this plan.
	AssertionID string `json:"assertionId,omitempty"`
	// Description summarizes the plan for catalogs and renderings.
	Description string `json:"description,omitempty"`
	// Entry is the id of the entry node the walk starts from.
	Entry string `json:"entry"`
	// Nodes is the adjacency-list document body.
	Nodes []*Node `json:"nodes"`

	index map[string]*Node // built by reindex; nil until then
}

// reindex (re)builds the id index. It reports duplicate or empty ids.
func (p *Plan) reindex() error {
	idx := make(map[string]*Node, len(p.Nodes))
	for _, n := range p.Nodes {
		if n == nil {
			return fmt.Errorf("diagplan %s: nil node", p.ID)
		}
		if n.ID == "" {
			return fmt.Errorf("diagplan %s: node with empty id", p.ID)
		}
		if _, dup := idx[n.ID]; dup {
			return fmt.Errorf("diagplan %s: duplicate node id %q", p.ID, n.ID)
		}
		idx[n.ID] = n
	}
	p.index = idx
	return nil
}

// Node returns the node with the given id, or nil.
func (p *Plan) Node(id string) *Node {
	if p.index == nil {
		if p.reindex() != nil {
			return nil
		}
	}
	return p.index[id]
}

// Has reports whether the plan contains a node with the given id.
func (p *Plan) Has(id string) bool { return p.Node(id) != nil }

// EntryNode returns the entry node, or nil for an invalid plan.
func (p *Plan) EntryNode() *Node { return p.Node(p.Entry) }

// Validate checks structural invariants: a resolvable entry without a
// check or incoming edges, unique node ids, edges resolving to known
// nodes (no duplicate targets per parent), causes as sinks, known kinds,
// acyclicity, and (when reg is non-nil) every CheckID known to the
// registry.
func (p *Plan) Validate(reg *assertion.Registry) error {
	if p.ID == "" {
		return fmt.Errorf("diagplan: plan with empty id")
	}
	if err := p.reindex(); err != nil {
		return err
	}
	entry := p.index[p.Entry]
	if p.Entry == "" || entry == nil {
		return fmt.Errorf("diagplan %s: entry %q is not a node", p.ID, p.Entry)
	}
	if entry.CheckID != "" {
		return fmt.Errorf("diagplan %s: entry %q carries a check (%s) — the failing assertion already fired", p.ID, p.Entry, entry.CheckID)
	}
	for _, n := range p.Nodes {
		if !knownKind(n.Kind) {
			return fmt.Errorf("diagplan %s: node %q has unknown kind %q", p.ID, n.ID, n.Kind)
		}
		if n.IsCause() && !n.Leaf() {
			return fmt.Errorf("diagplan %s: cause %q has outgoing edges", p.ID, n.ID)
		}
		seen := make(map[string]bool, len(n.Edges))
		for _, e := range n.Edges {
			t := p.index[e.To]
			if t == nil {
				return fmt.Errorf("diagplan %s: node %q has an edge to unknown node %q", p.ID, n.ID, e.To)
			}
			if seen[e.To] {
				return fmt.Errorf("diagplan %s: node %q has duplicate edges to %q", p.ID, n.ID, e.To)
			}
			seen[e.To] = true
			if t.ID == p.Entry {
				return fmt.Errorf("diagplan %s: node %q has an edge into the entry %q", p.ID, n.ID, e.To)
			}
		}
		if n.CheckID != "" && reg != nil {
			if _, ok := reg.Lookup(n.CheckID); !ok {
				return fmt.Errorf("diagplan %s: node %q references unknown check %q", p.ID, n.ID, n.CheckID)
			}
		}
	}
	if cyc := p.findCycle(); len(cyc) > 0 {
		return fmt.Errorf("diagplan %s: cycle %s", p.ID, strings.Join(cyc, " -> "))
	}
	return nil
}

// findCycle returns one cycle as a node-id path (closing node repeated),
// or nil when the plan is acyclic. It scans every node, not just those
// reachable from the entry, so orphan sub-graphs cannot smuggle cycles.
func (p *Plan) findCycle() []string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(p.Nodes))
	var path []string
	var dfs func(n *Node) []string
	dfs = func(n *Node) []string {
		color[n.ID] = grey
		path = append(path, n.ID)
		for _, e := range n.Edges {
			t := p.index[e.To]
			switch color[t.ID] {
			case grey:
				// Close the cycle at its first occurrence on the path.
				for i, id := range path {
					if id == t.ID {
						return append(append([]string(nil), path[i:]...), t.ID)
					}
				}
			case white:
				if cyc := dfs(t); cyc != nil {
					return cyc
				}
			}
		}
		color[n.ID] = black
		path = path[:len(path)-1]
		return nil
	}
	for _, n := range p.Nodes {
		if color[n.ID] == white {
			path = path[:0]
			if cyc := dfs(n); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	out := &Plan{ID: p.ID, AssertionID: p.AssertionID, Description: p.Description, Entry: p.Entry}
	out.Nodes = make([]*Node, len(p.Nodes))
	for i, n := range p.Nodes {
		out.Nodes[i] = n.Clone()
	}
	return out
}

// Children returns the node's edge targets ordered by descending edge
// probability (stable for ties, preserving document order).
func (p *Plan) Children(n *Node) []*Node {
	edges := sortedEdges(n.Edges)
	out := make([]*Node, 0, len(edges))
	for _, e := range edges {
		if t := p.Node(e.To); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// sortedEdges orders edges by descending probability; insertion sort keeps
// ties stable and edge lists are tiny.
func sortedEdges(edges []Edge) []Edge {
	out := append([]Edge(nil), edges...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Prob > out[j-1].Prob; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Parents returns the ids of every node with an edge into nodeID, sorted.
// Fan-in causes cite all of them on the evidence timeline.
func (p *Plan) Parents(nodeID string) []string {
	var out []string
	for _, n := range p.Nodes {
		for _, e := range n.Edges {
			if e.To == nodeID {
				out = append(out, n.ID)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// PathTo returns one canonical entry-to-node path as "/"-joined ids — the
// probability-preferred route a sequential walk would take — or "" when
// the node is unreachable from the entry. Fan-in nodes have several
// routes; Parents lists the others.
func (p *Plan) PathTo(nodeID string) string {
	entry := p.EntryNode()
	if entry == nil {
		return ""
	}
	visited := make(map[string]bool)
	var find func(n *Node, trail []string) string
	find = func(n *Node, trail []string) string {
		if visited[n.ID] {
			return ""
		}
		visited[n.ID] = true
		trail = append(trail, n.ID)
		if n.ID == nodeID {
			return strings.Join(trail, "/")
		}
		for _, c := range p.Children(n) {
			if path := find(c, trail); path != "" {
				return path
			}
		}
		return ""
	}
	return find(entry, nil)
}

// Instantiate returns a deep copy with every {param} placeholder in
// descriptions and check parameters substituted from params. Unknown
// placeholders are left intact so partially-instantiated plans remain
// inspectable.
func (p *Plan) Instantiate(params assertion.Params) *Plan {
	out := p.Clone()
	for _, n := range out.Nodes {
		n.Description = substitute(n.Description, params)
		for k, v := range n.CheckParams {
			n.CheckParams[k] = substitute(v, params)
		}
	}
	return out
}

// Prune returns a deep copy retaining only the nodes reachable from the
// entry through step-relevant targets. The entry is always kept. Unlike
// the old tree pruning, a shared node stays alive as long as ANY relevant
// parent still reaches it.
func (p *Plan) Prune(stepID string) *Plan {
	src := p.Clone()
	keep := map[string]bool{src.Entry: true}
	queue := []string{src.Entry}
	for len(queue) > 0 {
		n := src.Node(queue[0])
		queue = queue[1:]
		if n == nil {
			continue
		}
		for _, e := range n.Edges {
			t := src.Node(e.To)
			if t == nil || !t.RelevantTo(stepID) || keep[t.ID] {
				continue
			}
			keep[t.ID] = true
			queue = append(queue, t.ID)
		}
	}
	out := &Plan{ID: src.ID, AssertionID: src.AssertionID, Description: src.Description, Entry: src.Entry}
	for _, n := range src.Nodes {
		if !keep[n.ID] {
			continue
		}
		kept := n.Edges[:0]
		for _, e := range n.Edges {
			if keep[e.To] {
				kept = append(kept, e)
			}
		}
		n.Edges = kept
		out.Nodes = append(out.Nodes, n)
	}
	return out
}

// PotentialRootCauses returns the distinct cause nodes reachable from the
// entry, in visit order (probability-ordered depth-first, each shared
// node counted once).
func (p *Plan) PotentialRootCauses() []*Node {
	entry := p.EntryNode()
	if entry == nil {
		return nil
	}
	var out []*Node
	visited := make(map[string]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if visited[n.ID] {
			return
		}
		visited[n.ID] = true
		if n.IsCause() {
			out = append(out, n)
		}
		for _, c := range p.Children(n) {
			walk(c)
		}
	}
	walk(entry)
	return out
}

// CausesUnder returns the ids of the distinct cause nodes reachable from
// (and including) nodeID, in visit order. A passing diagnosis test on the
// node excludes exactly these faults.
func (p *Plan) CausesUnder(nodeID string) []string {
	start := p.Node(nodeID)
	if start == nil {
		return nil
	}
	var out []string
	visited := make(map[string]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if visited[n.ID] {
			return
		}
		visited[n.ID] = true
		if n.IsCause() {
			out = append(out, n.ID)
		}
		for _, c := range p.Children(n) {
			walk(c)
		}
	}
	walk(start)
	return out
}

// substitute replaces {key} placeholders with values from params.
func substitute(s string, params assertion.Params) string {
	if !strings.Contains(s, "{") {
		return s
	}
	for k, v := range params {
		s = strings.ReplaceAll(s, "{"+k+"}", v)
	}
	return s
}
