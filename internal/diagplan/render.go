package diagplan

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Parse loads one plan document from JSON and validates its structure
// (check ids are not resolvable here; pass the result through
// Validate(registry) for that). Unknown fields are rejected so typos in
// hand-authored documents surface instead of silently dropping edges.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("diagplan: parse: %w", err)
	}
	// Trailing garbage after the document is an authoring error too.
	if dec.More() {
		return nil, fmt.Errorf("diagplan: parse: trailing data after plan document")
	}
	if err := p.Validate(nil); err != nil {
		return nil, err
	}
	return &p, nil
}

// Render serializes the plan to its canonical JSON form: nodes sorted by
// id, edges by descending probability then target id, two-space indent,
// trailing newline. Rendering a parsed document and re-parsing the output
// is byte-stable (the golden round-trip property plan tests rely on).
func (p *Plan) Render() ([]byte, error) {
	c := p.Clone()
	sort.Slice(c.Nodes, func(i, j int) bool { return c.Nodes[i].ID < c.Nodes[j].ID })
	for _, n := range c.Nodes {
		sort.SliceStable(n.Edges, func(i, j int) bool {
			if n.Edges[i].Prob != n.Edges[j].Prob {
				return n.Edges[i].Prob > n.Edges[j].Prob
			}
			return n.Edges[i].To < n.Edges[j].To
		})
	}
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("diagplan %s: render: %w", p.ID, err)
	}
	return append(out, '\n'), nil
}

// DOT renders the plan as a Graphviz digraph: entries as doubleoctagons,
// collectors as folders, tests as boxes, causes as filled ellipses, edge
// labels carrying the prior probabilities.
func (p *Plan) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.ID)
	b.WriteString("  rankdir=TB;\n")
	nodes := append([]*Node(nil), p.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		shape := "box"
		attrs := ""
		switch n.Kind {
		case KindEntry:
			shape = "doubleoctagon"
		case KindCollector:
			shape = "folder"
		case KindCause:
			shape = "ellipse"
			attrs = ", style=filled, fillcolor=lightpink"
		}
		label := n.ID
		if n.CheckID != "" {
			label += "\\n[" + n.CheckID + "]"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=%q%s];\n", n.ID, shape, label, attrs)
	}
	for _, n := range nodes {
		for _, e := range sortedEdges(n.Edges) {
			if e.Prob > 0 {
				fmt.Fprintf(&b, "  %q -> %q [label=\"%.2f\"];\n", n.ID, e.To, e.Prob)
			} else {
				fmt.Fprintf(&b, "  %q -> %q;\n", n.ID, e.To)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
