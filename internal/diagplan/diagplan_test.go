package diagplan

import (
	"bytes"
	"strings"
	"testing"

	"poddiagnosis/internal/assertion"
)

// small hand-built plan with a fan-in: entry -> a, b; a -> cause-x; b -> cause-x, cause-y.
func fanInPlan(t testing.TB) *Plan {
	t.Helper()
	p := &Plan{
		ID:          "plan-test",
		AssertionID: "asg-instance-count",
		Description: "test plan",
		Entry:       "entry",
		Nodes: []*Node{
			{ID: "entry", Kind: KindEntry, Description: "violated", Edges: []Edge{
				{To: "a", Prob: 0.6}, {To: "b", Prob: 0.4},
			}},
			{ID: "a", Kind: KindCollector, Description: "branch a", CheckID: "asg-instance-count",
				Steps: []string{"step1"}, Edges: []Edge{{To: "cause-x", Prob: 0.9}}},
			{ID: "b", Kind: KindCollector, Description: "branch b", CheckID: "no-failed-launches",
				Steps: []string{"step1", "step2"}, Edges: []Edge{
					{To: "cause-x", Prob: 0.5}, {To: "cause-y", Prob: 0.3},
				}},
			{ID: "cause-x", Kind: KindCause, Description: "cause x on {asgid}", CheckID: "ami-available"},
			{ID: "cause-y", Kind: KindCause, Description: "cause y", CheckID: "sg-exists"},
		},
	}
	if err := p.Validate(nil); err != nil {
		t.Fatalf("fan-in plan invalid: %v", err)
	}
	return p
}

func TestValidateRejectsCycles(t *testing.T) {
	p := fanInPlan(t)
	// Introduce a back-edge cause-x -> a, turning the DAG into a cycle.
	n := p.Node("cause-x")
	n.Kind = KindCollector
	n.Edges = []Edge{{To: "a", Prob: 0.5}}
	err := p.Validate(nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *Plan)
		want string
	}{
		{"missing entry", func(p *Plan) { p.Entry = "nope" }, "entry"},
		{"entry with check", func(p *Plan) { p.Node("entry").CheckID = "asg-instance-count" }, "entry"},
		{"edge into entry", func(p *Plan) {
			p.Node("a").Edges = append(p.Node("a").Edges, Edge{To: "entry", Prob: 0.1})
		}, "entry"},
		{"unknown kind", func(p *Plan) { p.Node("a").Kind = "widget" }, "kind"},
		{"cause with edges", func(p *Plan) {
			p.Node("cause-y").Edges = []Edge{{To: "cause-x", Prob: 0.2}}
		}, "cause"},
		{"dangling edge", func(p *Plan) { p.Node("b").Edges[0].To = "ghost" }, "ghost"},
		{"duplicate edge", func(p *Plan) {
			p.Node("a").Edges = append(p.Node("a").Edges, Edge{To: "cause-x", Prob: 0.1})
		}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := fanInPlan(t)
			tc.mut(p)
			err := p.Validate(nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error mentioning %q, got %v", tc.want, err)
			}
		})
	}
}

func TestValidateUnknownCheck(t *testing.T) {
	p := fanInPlan(t)
	p.Node("a").CheckID = "no-such-check"
	if err := p.Validate(assertion.DefaultRegistry()); err == nil {
		t.Fatal("expected unknown check error")
	}
}

func TestParentsAndCausesUnder(t *testing.T) {
	p := fanInPlan(t)
	got := p.Parents("cause-x")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Parents(cause-x) = %v, want [a b]", got)
	}
	causes := p.CausesUnder("b")
	if len(causes) != 2 || causes[0] != "cause-x" || causes[1] != "cause-y" {
		t.Fatalf("CausesUnder(b) = %v", causes)
	}
	all := p.PotentialRootCauses()
	if len(all) != 2 {
		t.Fatalf("PotentialRootCauses = %v, want 2 unique causes", all)
	}
}

func TestPathToPrefersProbability(t *testing.T) {
	p := fanInPlan(t)
	// cause-x is reachable via a (0.6*0.9) and b (0.4*0.5); the preferred
	// path walks highest-probability edges first.
	if got := p.PathTo("cause-x"); got != "entry/a/cause-x" {
		t.Fatalf("PathTo(cause-x) = %q", got)
	}
	if got := p.PathTo("cause-y"); got != "entry/b/cause-y" {
		t.Fatalf("PathTo(cause-y) = %q", got)
	}
}

func TestPruneKeepsSharedReachable(t *testing.T) {
	p := fanInPlan(t)
	pruned := p.Prune("step2")
	// Only branch b is relevant to step2; a is dropped, but cause-x stays
	// reachable through b.
	if pruned.Has("a") {
		t.Fatal("a should be pruned for step2")
	}
	for _, id := range []string{"entry", "b", "cause-x", "cause-y"} {
		if !pruned.Has(id) {
			t.Fatalf("%s should survive prune", id)
		}
	}
	if err := pruned.Validate(nil); err != nil {
		t.Fatalf("pruned plan invalid: %v", err)
	}
	// Original untouched.
	if !p.Has("a") {
		t.Fatal("prune mutated the original plan")
	}
}

func TestPruneEmptyStepKeepsAll(t *testing.T) {
	p := fanInPlan(t)
	pruned := p.Prune("")
	if len(pruned.Nodes) != len(p.Nodes) {
		t.Fatalf("empty step prune dropped nodes: %d != %d", len(pruned.Nodes), len(p.Nodes))
	}
}

func TestInstantiate(t *testing.T) {
	p := fanInPlan(t)
	inst := p.Instantiate(assertion.Params{"asgid": "asg-1"})
	if got := inst.Node("cause-x").Description; got != "cause x on asg-1" {
		t.Fatalf("Instantiate description = %q", got)
	}
	if p.Node("cause-x").Description != "cause x on {asgid}" {
		t.Fatal("Instantiate mutated the original")
	}
}

func TestChildrenOrderedByProbability(t *testing.T) {
	p := fanInPlan(t)
	kids := p.Children(p.Node("entry"))
	if len(kids) != 2 || kids[0].ID != "a" || kids[1].ID != "b" {
		t.Fatalf("Children(entry) order wrong: %+v", kids)
	}
}

// Satellite 3: shipped plan documents round-trip byte-stable through
// load -> validate -> render -> reload.
func TestGoldenRoundTrip(t *testing.T) {
	reg := assertion.DefaultRegistry()
	for name, data := range ScenarioPlanSources() {
		t.Run(name, func(t *testing.T) {
			p, err := Parse(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if err := p.Validate(reg); err != nil {
				t.Fatalf("validate: %v", err)
			}
			out, err := p.Render()
			if err != nil {
				t.Fatalf("render: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("shipped %s is not canonical; run it through Render", name)
			}
			p2, err := Parse(out)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			out2, err := p2.Render()
			if err != nil {
				t.Fatalf("re-render: %v", err)
			}
			if !bytes.Equal(out, out2) {
				t.Fatal("render is not a fixed point")
			}
		})
	}
}

func TestScenarioPlansLoad(t *testing.T) {
	plans := ScenarioPlans()
	if len(plans) != 4 {
		t.Fatalf("expected 4 scenario plans, got %d", len(plans))
	}
	want := []string{"plan-bluegreen", "plan-bluegreen-elb", "plan-bluegreen-lc", "plan-spot-rebalance"}
	for i, p := range plans {
		if p.ID != want[i] {
			t.Fatalf("plan %d = %s, want %s", i, p.ID, want[i])
		}
	}
	// The blue/green and spot plans share collector sub-graphs: the same
	// launch-failure causes appear under multiple plans and, inside
	// plan-bluegreen, under multiple parents (fan-in).
	bg := plans[0]
	if got := bg.Parents("launch-ami-unavailable"); len(got) < 2 {
		t.Fatalf("launch-ami-unavailable should have fan-in parents, got %v", got)
	}
	spot := plans[3]
	if got := spot.Parents("account-limit-reached"); len(got) != 2 {
		t.Fatalf("spot account-limit-reached parents = %v", got)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	for _, p := range ScenarioPlans() {
		c.MustRegister(p)
	}
	if err := c.Register(ScenarioPlans()[0]); err == nil {
		t.Fatal("duplicate plan id should be rejected")
	}
	if got := len(c.Select("asg-version-count")); got != 1 {
		t.Fatalf("Select(asg-version-count) = %d plans", got)
	}
	if got := len(c.All()); got != 4 {
		t.Fatalf("All() = %d", got)
	}
	if err := c.Validate(assertion.DefaultRegistry()); err != nil {
		t.Fatalf("catalog validate: %v", err)
	}
}

func TestDOTRender(t *testing.T) {
	dot := fanInPlan(t).DOT()
	for _, want := range []string{"digraph", "doubleoctagon", "cause-x", "0.90"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
