package diagplan

import (
	"embed"
	"fmt"
	"sort"
)

// scenarioFS embeds the shipped scenario plan documents. Shipping them as
// JSON (not Go builders) keeps the production load path identical to the
// operator-authored one: parse, validate, walk.
//
//go:embed plans/*.json
var scenarioFS embed.FS

// ScenarioPlans parses the embedded scenario plan documents — the
// diagnosis DAGs of the blue/green deploy and spot-rebalance scenarios —
// sorted by plan id. The documents are validated at parse time; a broken
// shipped plan is a build defect, so errors panic.
func ScenarioPlans() []*Plan {
	entries, err := scenarioFS.ReadDir("plans")
	if err != nil {
		panic(fmt.Sprintf("diagplan: embedded plans: %v", err))
	}
	var out []*Plan
	for _, e := range entries {
		data, err := scenarioFS.ReadFile("plans/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("diagplan: embedded plan %s: %v", e.Name(), err))
		}
		p, err := Parse(data)
		if err != nil {
			panic(fmt.Sprintf("diagplan: embedded plan %s: %v", e.Name(), err))
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ScenarioPlanSources returns the raw embedded scenario documents keyed
// by file name — the golden round-trip tests and podlint's self-check
// read them.
func ScenarioPlanSources() map[string][]byte {
	entries, err := scenarioFS.ReadDir("plans")
	if err != nil {
		panic(fmt.Sprintf("diagplan: embedded plans: %v", err))
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := scenarioFS.ReadFile("plans/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("diagplan: embedded plan %s: %v", e.Name(), err))
		}
		out[e.Name()] = data
	}
	return out
}
