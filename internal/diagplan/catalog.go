package diagplan

import (
	"fmt"
	"sort"

	"poddiagnosis/internal/assertion"
)

// Catalog holds diagnosis plans, keyed by plan id and by assertion id —
// the plan-shaped successor of the fault-tree Repository. Several plans
// may serve one assertion; the diagnosis engine consults them all.
type Catalog struct {
	byID        map[string]*Plan
	byAssertion map[string][]*Plan
	order       []*Plan // registration order, for stable All() before sorting
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		byID:        make(map[string]*Plan),
		byAssertion: make(map[string][]*Plan),
	}
}

// Register adds a plan. Plan ids are the catalog key and must be unique.
func (c *Catalog) Register(p *Plan) error {
	if p == nil || p.ID == "" {
		return fmt.Errorf("diagplan: cannot register a plan without an id")
	}
	if _, dup := c.byID[p.ID]; dup {
		return fmt.Errorf("diagplan: duplicate plan id %q", p.ID)
	}
	c.byID[p.ID] = p
	c.byAssertion[p.AssertionID] = append(c.byAssertion[p.AssertionID], p)
	c.order = append(c.order, p)
	return nil
}

// MustRegister registers a plan and panics on error; built-in catalogs
// use it because a failure there is a programming bug.
func (c *Catalog) MustRegister(p *Plan) {
	if err := c.Register(p); err != nil {
		panic(err)
	}
}

// Get returns the plan with the given id, or nil.
func (c *Catalog) Get(id string) *Plan { return c.byID[id] }

// Select returns the plans for the given assertion id.
func (c *Catalog) Select(assertionID string) []*Plan {
	return append([]*Plan(nil), c.byAssertion[assertionID]...)
}

// All returns every registered plan, sorted by plan id for deterministic
// unscoped diagnoses.
func (c *Catalog) All() []*Plan {
	out := append([]*Plan(nil), c.order...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Validate validates every plan in the catalog against the registry.
func (c *Catalog) Validate(reg *assertion.Registry) error {
	for _, p := range c.All() {
		if err := p.Validate(reg); err != nil {
			return err
		}
	}
	return nil
}
