package diagplan

import "testing"

// Satellite 3: malformed, truncated, or cyclic plan documents must never
// panic the loader — Parse either returns a valid plan or an error.
func FuzzParse(f *testing.F) {
	for _, src := range ScenarioPlanSources() {
		f.Add(src)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"p","entry":"e","nodes":[]}`))
	f.Add([]byte(`{"id":"p","entry":"a","nodes":[{"id":"a","kind":"entry","edges":[{"to":"b","prob":1}]},{"id":"b","kind":"collector","edges":[{"to":"a","prob":1}]}]}`))
	f.Add([]byte(`{"id":"p","entry":"a","nodes":[{"id":"a","kind":"entry"},{"id":"a","kind":"cause"}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// A successfully parsed plan must be safe to exercise.
		if err := p.Validate(nil); err != nil {
			t.Fatalf("Parse returned plan failing Validate: %v", err)
		}
		_, _ = p.Render()
		_ = p.DOT()
		for _, n := range p.Nodes {
			_ = p.Children(n)
			_ = p.Parents(n.ID)
			_ = p.PathTo(n.ID)
			_ = p.CausesUnder(n.ID)
		}
		_ = p.PotentialRootCauses()
		_ = p.Prune("step1")
		_ = p.Instantiate(nil)
	})
}
