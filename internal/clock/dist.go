package clock

import (
	"math/rand"
	"time"
)

// Dist describes a clamped normal distribution over durations. It is used
// to model cloud API latencies, instance boot times, and step durations.
// The zero value always samples to zero.
type Dist struct {
	// Mean is the centre of the distribution.
	Mean time.Duration
	// StdDev is the standard deviation.
	StdDev time.Duration
	// Min and Max clamp every sample. Max of zero means no upper clamp.
	Min time.Duration
	Max time.Duration
}

// Fixed returns a degenerate distribution that always samples to d.
func Fixed(d time.Duration) Dist { return Dist{Mean: d, Min: d, Max: d} }

// Around returns a distribution centred on mean with a standard deviation
// of mean/4, clamped to [mean/2, mean*2]. It is the common shape for
// simulated latencies.
func Around(mean time.Duration) Dist {
	return Dist{Mean: mean, StdDev: mean / 4, Min: mean / 2, Max: mean * 2}
}

// Sample draws a duration using rng. A nil rng uses the package-level
// rand source.
func (d Dist) Sample(rng *rand.Rand) time.Duration {
	var n float64
	if rng != nil {
		n = rng.NormFloat64()
	} else {
		n = rand.NormFloat64()
	}
	v := time.Duration(float64(d.Mean) + n*float64(d.StdDev))
	if v < d.Min {
		v = d.Min
	}
	if d.Max > 0 && v > d.Max {
		v = d.Max
	}
	if v < 0 {
		v = 0
	}
	return v
}

// IsZero reports whether the distribution is the zero value.
func (d Dist) IsZero() bool {
	return d.Mean == 0 && d.StdDev == 0 && d.Min == 0 && d.Max == 0
}
