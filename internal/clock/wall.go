package clock

// Wall is the process-wide wall clock used for real-cost measurements that
// must not follow a scaled simulation clock: latency histograms, span
// durations, and campaign wall times. Routing these reads through the clock
// package (instead of calling time.Now directly) keeps every time source in
// the repository swappable and lets podlint's wall-clock analyzer (rule
// GO001) enforce the discipline mechanically. Tests may swap it to a Scaled
// clock to make wall measurements deterministic; production code must treat
// it as read-only.
var Wall Clock = Real{}
