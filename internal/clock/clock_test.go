package clock

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := NewReal()
	a := c.Now()
	time.Sleep(2 * time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("real clock did not advance")
	}
}

func TestRealSleepHonoursContext(t *testing.T) {
	c := NewReal()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestRealSleepZeroCancelled(t *testing.T) {
	c := NewReal()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep(0) with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestScaledPanicsOnNonPositiveScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewScaled(0) did not panic")
		}
	}()
	NewScaled(0, time.Now())
}

func TestScaledNowStartsAtEpoch(t *testing.T) {
	epoch := time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC)
	c := NewScaled(100, epoch)
	now := c.Now()
	if now.Before(epoch) {
		t.Fatalf("Now() = %v before epoch %v", now, epoch)
	}
	if now.Sub(epoch) > time.Second {
		t.Fatalf("Now() drifted %v from epoch immediately after construction", now.Sub(epoch))
	}
}

func TestScaledTimeRunsFaster(t *testing.T) {
	epoch := time.Unix(0, 0)
	c := NewScaled(1000, epoch)
	start := c.Now()
	time.Sleep(5 * time.Millisecond)
	elapsed := c.Since(start)
	// 5ms wall at 1000x should be roughly 5s of simulated time. Allow a
	// generous window for scheduler noise.
	if elapsed < 3*time.Second {
		t.Fatalf("scaled clock advanced only %v in 5ms wall at 1000x", elapsed)
	}
}

func TestScaledSleepCompressesWallTime(t *testing.T) {
	c := NewScaled(1000, time.Unix(0, 0))
	wallStart := time.Now()
	if err := c.Sleep(context.Background(), 2*time.Second); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	wall := time.Since(wallStart)
	if wall > 500*time.Millisecond {
		t.Fatalf("Sleep(2s sim) at 1000x took %v wall time", wall)
	}
}

func TestScaledAfterDelivers(t *testing.T) {
	c := NewScaled(1000, time.Unix(0, 0))
	select {
	case <-c.After(time.Second):
	case <-time.After(2 * time.Second):
		t.Fatal("After(1s sim) at 1000x did not fire within 2s wall")
	}
}

func TestScaledSleepCancelled(t *testing.T) {
	c := NewScaled(1, time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if err := c.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
}

func TestTickerTicksAndStops(t *testing.T) {
	c := NewScaled(1000, time.Unix(0, 0))
	tk := NewTicker(c, time.Second) // 1ms wall
	defer tk.Stop()
	for i := 0; i < 3; i++ {
		select {
		case <-tk.C:
		case <-time.After(time.Second):
			t.Fatalf("tick %d did not arrive", i)
		}
	}
}

func TestDistFixed(t *testing.T) {
	d := Fixed(42 * time.Millisecond)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if got := d.Sample(rng); got != 42*time.Millisecond {
			t.Fatalf("Fixed sample = %v", got)
		}
	}
}

func TestDistZeroSamplesZero(t *testing.T) {
	var d Dist
	if !d.IsZero() {
		t.Fatal("zero Dist not IsZero")
	}
	if got := d.Sample(nil); got != 0 {
		t.Fatalf("zero Dist sample = %v", got)
	}
}

func TestDistClamping(t *testing.T) {
	d := Dist{Mean: 100 * time.Millisecond, StdDev: time.Hour,
		Min: 90 * time.Millisecond, Max: 110 * time.Millisecond}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < d.Min || v > d.Max {
			t.Fatalf("sample %v outside clamp [%v,%v]", v, d.Min, d.Max)
		}
	}
}

func TestDistAroundProperties(t *testing.T) {
	// Property: for any positive mean, Around samples stay within
	// [mean/2, mean*2] and are never negative.
	f := func(ms uint16) bool {
		mean := time.Duration(int64(ms)+1) * time.Millisecond
		d := Around(mean)
		rng := rand.New(rand.NewSource(int64(ms)))
		for i := 0; i < 50; i++ {
			v := d.Sample(rng)
			if v < mean/2 || v > mean*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistSampleMeanConverges(t *testing.T) {
	d := Dist{Mean: 100 * time.Millisecond, StdDev: 10 * time.Millisecond}
	rng := rand.New(rand.NewSource(99))
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		sum += d.Sample(rng)
	}
	avg := sum / n
	if avg < 95*time.Millisecond || avg > 105*time.Millisecond {
		t.Fatalf("sample mean %v far from 100ms", avg)
	}
}
