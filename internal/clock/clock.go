// Package clock provides an abstraction over time so that the entire
// POD-Diagnosis stack — the simulated cloud, the upgrade orchestrator, the
// log pipeline, timers for assertion evaluation, and the diagnosis engine —
// can run either against the real wall clock or against a scaled clock.
//
// The scaled clock is the key to reproducing the paper's evaluation offline:
// a rolling upgrade of a 20-instance cluster takes tens of minutes of
// simulated time, but with a scale factor of, say, 100, it executes in
// seconds of wall time while every observed duration (diagnosis time, API
// latency, step duration) is still reported in simulated units that are
// directly comparable to the paper's Figure 6.
package clock

import (
	"context"
	"sync"
	"time"
)

// Clock is the time source used throughout the repository. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current (possibly simulated) time.
	Now() time.Time
	// Sleep blocks for d of clock time or until ctx is done, returning
	// ctx.Err() in the latter case.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel that delivers the clock time after d has
	// elapsed. The channel has capacity one and is never closed.
	After(d time.Duration) <-chan time.Time
	// Since returns the clock time elapsed since t.
	Since(t time.Time) time.Duration
}

// Real is a Clock backed directly by the time package.
type Real struct{}

var _ Clock = Real{}

// NewReal returns a Clock that uses the real wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(ctx context.Context, d time.Duration) error {
	return sleepWall(ctx, d)
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Scaled is a Clock whose time advances scale times faster than the wall
// clock. A duration d of scaled time corresponds to d/scale of wall time.
// The zero value is not usable; construct with NewScaled.
type Scaled struct {
	scale     float64
	wallEpoch time.Time
	simEpoch  time.Time

	mu sync.Mutex // guards nothing mutable today; reserved for pause support
}

var _ Clock = (*Scaled)(nil)

// NewScaled returns a Clock running scale times faster than real time.
// Simulated time starts at simEpoch. A scale of 1 behaves like the real
// clock but with a controlled epoch; scale must be positive.
func NewScaled(scale float64, simEpoch time.Time) *Scaled {
	if scale <= 0 {
		panic("clock: scale must be positive")
	}
	return &Scaled{
		scale:     scale,
		wallEpoch: time.Now(),
		simEpoch:  simEpoch,
	}
}

// Scale returns the speed-up factor of the clock.
func (c *Scaled) Scale() float64 { return c.scale }

// Now implements Clock.
func (c *Scaled) Now() time.Time {
	wall := time.Since(c.wallEpoch)
	return c.simEpoch.Add(time.Duration(float64(wall) * c.scale))
}

// Sleep implements Clock. It blocks for d of simulated time, i.e. d/scale
// of wall time.
func (c *Scaled) Sleep(ctx context.Context, d time.Duration) error {
	return sleepWall(ctx, c.toWall(d))
}

// After implements Clock. The delivered value is the simulated time at
// expiry.
func (c *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	timer := time.AfterFunc(c.toWall(d), func() {
		ch <- c.Now()
	})
	_ = timer
	return ch
}

// Since implements Clock.
func (c *Scaled) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *Scaled) toWall(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	wall := time.Duration(float64(d) / c.scale)
	if wall <= 0 {
		wall = time.Nanosecond
	}
	return wall
}

func sleepWall(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		// Still honour cancellation to keep semantics uniform.
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return nil
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
