package clock

import (
	"context"
	"time"
)

// ContextWithTimeout derives a context that is cancelled after d of clock
// time. Unlike context.WithTimeout — which counts wall time — the deadline
// follows the (possibly scaled) clock, so simulated-time budgets translate
// correctly at any scale factor. A non-positive d yields a plain
// cancellable context with no deadline. The returned CancelFunc must be
// called to release the watcher goroutine.
func ContextWithTimeout(parent context.Context, clk Clock, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	if d <= 0 {
		return ctx, cancel
	}
	go func() {
		select {
		case <-clk.After(d):
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
