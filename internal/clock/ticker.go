package clock

import "time"

// Ticker delivers ticks of clock time at a fixed period. It mirrors
// time.Ticker but is produced by a Clock so that scaled clocks tick
// proportionally faster in wall time.
type Ticker struct {
	// C delivers the clock time of each tick.
	C <-chan time.Time

	inner *time.Ticker
	done  chan struct{}
}

// NewTicker returns a Ticker firing every d of clock time.
func NewTicker(c Clock, d time.Duration) *Ticker {
	wall := d
	if s, ok := c.(*Scaled); ok {
		wall = s.toWall(d)
	}
	if wall <= 0 {
		wall = time.Nanosecond
	}
	inner := time.NewTicker(wall)
	out := make(chan time.Time, 1)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-inner.C:
				select {
				case out <- c.Now():
				default: // drop tick if receiver is slow, like time.Ticker
				}
			}
		}
	}()
	return &Ticker{C: out, inner: inner, done: done}
}

// Stop turns off the ticker. No more ticks will be delivered. Stop is
// idempotent only in the sense that it must be called exactly once; callers
// own the ticker lifecycle.
func (t *Ticker) Stop() {
	t.inner.Stop()
	close(t.done)
}
