package assertion

import (
	"context"
	"fmt"
	"sync"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs"
)

// Assertion metrics. The latency histogram is wall-clock so it reflects
// the real cost paid on the evaluation path (the Result's Duration field
// carries the simulated-clock duration).
var (
	mEvaluations = obs.Default.CounterVec("pod_assertion_evaluations_total",
		"Assertion evaluations by check id and outcome status.", "check", "status")
	mEvalLatency = obs.Default.Histogram("pod_assertion_eval_seconds",
		"Wall-clock assertion evaluation latency.", nil)
)

// TriggerSource identifies what initiated an assertion evaluation.
type TriggerSource string

// Trigger sources (§III.B.3, Figure 4).
const (
	TriggerLog      TriggerSource = "log"       // local log processor
	TriggerTimer    TriggerSource = "timer"     // one-off or periodic timer
	TriggerOnDemand TriggerSource = "on-demand" // diagnosis tests and operators
)

// Trigger carries the process context of an evaluation request.
type Trigger struct {
	// Source is what initiated the evaluation.
	Source TriggerSource `json:"source"`
	// ProcessInstanceID is the operation task the evaluation belongs to
	// (may be empty for purely timer-based evaluations — a known source
	// of weaker diagnoses, §VI.A).
	ProcessInstanceID string `json:"processInstanceId,omitempty"`
	// StepID is the process step the evaluation is attached to.
	StepID string `json:"stepId,omitempty"`
}

// Evaluator runs checks from a registry through the consistent API layer,
// publishing each result as an assertion log event and retaining history.
// It is safe for concurrent use — parallel fault-tree walks evaluate
// diagnosis tests on it simultaneously: the registry locks internally,
// history is guarded by mu, and the client and bus are concurrency-safe.
type Evaluator struct {
	client   *consistentapi.Client
	registry *Registry
	bus      *logging.Bus // may be nil
	host     string

	mu      sync.Mutex
	history []Result
}

// NewEvaluator returns an Evaluator. The bus may be nil.
func NewEvaluator(client *consistentapi.Client, registry *Registry, bus *logging.Bus) *Evaluator {
	return &Evaluator{client: client, registry: registry, bus: bus, host: "pod-assertion"}
}

// Registry returns the evaluator's check registry.
func (e *Evaluator) Registry() *Registry { return e.registry }

// Client returns the consistent API client used for evaluations.
func (e *Evaluator) Client() *consistentapi.Client { return e.client }

// Evaluate runs the check with the given id and parameters, stamping,
// logging and recording the result. Unknown check ids yield StatusError.
func (e *Evaluator) Evaluate(ctx context.Context, checkID string, p Params, trig Trigger) Result {
	wallStart := clock.Wall.Now()
	ctx, span := obs.StartSpan(ctx, "assertion.evaluate")
	span.SetAttr("check", checkID)
	span.SetAttr("trigger", string(trig.Source))
	clk := e.client.Clock()
	started := clk.Now()
	var res Result
	check, ok := e.registry.Lookup(checkID)
	if !ok {
		res = Result{
			CheckID: checkID, Status: StatusError, Params: p,
			Message: "unknown check", Err: fmt.Sprintf("assertion: unknown check id %q", checkID),
		}
	} else {
		res = check.Eval(ctx, e.client, p)
	}
	res.EvaluatedAt = started
	res.Duration = clk.Since(started)
	mEvaluations.With(res.CheckID, res.Status.String()).Inc()
	mEvalLatency.Observe(clock.Wall.Since(wallStart).Seconds())
	span.SetAttr("status", res.Status.String())
	span.SetAttr("simDuration", res.Duration.String())
	span.End()

	e.mu.Lock()
	e.history = append(e.history, res)
	e.mu.Unlock()

	e.publish(res, trig)
	return res
}

// History returns a copy of all recorded results.
func (e *Evaluator) History() []Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Result, len(e.history))
	copy(out, e.history)
	return out
}

// publish emits the result in the paper's assertion log format.
func (e *Evaluator) publish(res Result, trig Trigger) {
	if e.bus == nil {
		return
	}
	fields := map[string]string{
		"checkid": res.CheckID,
		"status":  res.Status.String(),
		"trigger": string(trig.Source),
	}
	if trig.ProcessInstanceID != "" {
		fields["taskid"] = trig.ProcessInstanceID
	}
	if trig.StepID != "" {
		fields["steppostcon"] = trig.StepID
	}
	tags := []string{"assertion"}
	if trig.StepID != "" {
		tags = append(tags, trig.StepID)
	}
	msg := fmt.Sprintf("[%s] [assertion] [Task:%s] [Step:%s] %s",
		res.EvaluatedAt.Format(logging.TimestampLayout),
		trig.ProcessInstanceID, trig.StepID, res.Message)
	e.bus.Publish(logging.Event{
		Timestamp:  res.EvaluatedAt,
		Source:     "assertion-evaluation.log",
		SourceHost: e.host,
		Type:       logging.TypeAssertion,
		Tags:       tags,
		Fields:     fields,
		Message:    msg,
	})
}
