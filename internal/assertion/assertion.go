// Package assertion implements the paper's assertion framework (§III.B.3):
// a library of pre-defined checks over cloud resources, a registry keyed by
// check id, an evaluator that runs checks through the consistent AWS API
// layer and records results as log events, and timers for assertion
// evaluations that are not triggered by log lines.
//
// Assertions come in two flavours: high-level checks over the whole system
// ("the system has N instances with the new version") and low-level checks
// over a specific node ("instance i-x runs version v2"). Checks are
// parameterized at evaluation time so fault trees can instantiate them
// with runtime request variables.
package assertion

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"poddiagnosis/internal/consistentapi"
)

// Status is the outcome of one assertion evaluation.
type Status int

// Evaluation outcomes.
const (
	// StatusPass means the asserted condition holds.
	StatusPass Status = iota + 1
	// StatusFail means the asserted condition is violated.
	StatusFail
	// StatusError means the evaluation could not complete (e.g. the API
	// timed out); per the paper such evaluations are "regarded as
	// failed", but diagnosis distinguishes inconclusive from violated.
	StatusError
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusPass:
		return "pass"
	case StatusFail:
		return "fail"
	case StatusError:
		return "error"
	default:
		return "unknown"
	}
}

// Params carries the runtime parameters of one evaluation (asg name,
// expected AMI, instance count, ...). Values are strings so they can be
// templated into fault trees and serialized trivially.
type Params map[string]string

// Standard parameter keys.
const (
	ParamASG          = "asgid"
	ParamELB          = "elbname"
	ParamAMI          = "amiid"
	ParamKeyPair      = "keyname"
	ParamSG           = "sgname"
	ParamInstanceType = "instancetype"
	ParamVersion      = "version"
	ParamWant         = "want"
	ParamInstance     = "instanceid"
	ParamLC           = "lcname"
	ParamWindow       = "window" // activity look-back window, duration string
)

// Clone returns a copy of the params.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Merge returns a copy of p with overrides applied.
func (p Params) Merge(overrides Params) Params {
	out := p.Clone()
	for k, v := range overrides {
		out[k] = v
	}
	return out
}

// Int parses the named parameter as an integer.
func (p Params) Int(key string) (int, error) {
	v, ok := p[key]
	if !ok {
		return 0, fmt.Errorf("assertion: missing parameter %q", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("assertion: parameter %q: %w", key, err)
	}
	return n, nil
}

// Str returns the named parameter, or an error when absent.
func (p Params) Str(key string) (string, error) {
	v, ok := p[key]
	if !ok || v == "" {
		return "", fmt.Errorf("assertion: missing parameter %q", key)
	}
	return v, nil
}

// Result records one assertion evaluation.
type Result struct {
	// CheckID identifies the check that ran.
	CheckID string `json:"checkId"`
	// Status is the outcome.
	Status Status `json:"status"`
	// Message is a human-readable explanation in the paper's log style,
	// e.g. "ASG pm--asg has 4 instances."
	Message string `json:"message"`
	// Params echoes the evaluation parameters.
	Params Params `json:"params"`
	// EvaluatedAt is the (simulated) evaluation time.
	EvaluatedAt time.Time `json:"evaluatedAt"`
	// Duration is how long the evaluation took, in simulated time.
	Duration time.Duration `json:"duration"`
	// Err carries the error text for StatusError results.
	Err string `json:"err,omitempty"`
	// Cached reports that the result was reused from a shared cache
	// rather than evaluated for this consumer.
	Cached bool `json:"cached,omitempty"`
}

// Passed reports whether the assertion held.
func (r Result) Passed() bool { return r.Status == StatusPass }

// Failed reports whether the assertion was violated (not merely
// inconclusive).
func (r Result) Failed() bool { return r.Status == StatusFail }

// Check is a named, parameterized assertion.
type Check struct {
	// ID is the registry key, e.g. "asg-version-count".
	ID string
	// Description documents the check; {param} placeholders are
	// substituted when describing an instantiated evaluation.
	Description string
	// HighLevel distinguishes whole-system checks from per-node checks.
	HighLevel bool
	// Eval performs the evaluation.
	Eval func(ctx context.Context, client *consistentapi.Client, p Params) Result
}

// pass builds a passing result.
func pass(checkID string, p Params, format string, args ...any) Result {
	return Result{CheckID: checkID, Status: StatusPass, Params: p, Message: fmt.Sprintf(format, args...)}
}

// fail builds a failing result.
func fail(checkID string, p Params, format string, args ...any) Result {
	return Result{CheckID: checkID, Status: StatusFail, Params: p, Message: fmt.Sprintf(format, args...)}
}

// evalErr builds an inconclusive result.
func evalErr(checkID string, p Params, err error) Result {
	return Result{
		CheckID: checkID, Status: StatusError, Params: p,
		Message: "evaluation could not complete", Err: err.Error(),
	}
}

// Registry maps check ids to checks. It is safe for concurrent use:
// parallel diagnosis walks look checks up while late registrations (e.g.
// test fixtures) may still be adding them.
type Registry struct {
	mu     sync.RWMutex
	checks map[string]Check
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{checks: make(map[string]Check)} }

// Register adds a check, replacing any previous one with the same id.
func (r *Registry) Register(c Check) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checks[c.ID] = c
}

// Lookup returns the check with the given id.
func (r *Registry) Lookup(id string) (Check, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.checks[id]
	return c, ok
}

// IDs returns all registered check ids.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.checks))
	for id := range r.checks {
		out = append(out, id)
	}
	return out
}
