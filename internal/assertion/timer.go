package assertion

import (
	"sync"
	"time"

	"poddiagnosis/internal/clock"
)

// TimerSet schedules one-off and periodic assertion triggers against a
// clock (§III.B.3: a one-off timer checks an assertion at a specific time
// point, e.g. when a step emits no completion log line; a periodic timer
// checks an assertion every so often while the operation runs, and can be
// re-aligned when the expected periodic log event arrives).
//
// StopAll cancels every outstanding timer and waits for in-flight
// callbacks; after StopAll the set rejects new timers.
type TimerSet struct {
	clk clock.Clock

	mu      sync.Mutex
	nextID  int
	cancels map[int]chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// NewTimerSet returns an empty timer set.
func NewTimerSet(clk clock.Clock) *TimerSet {
	return &TimerSet{clk: clk, cancels: make(map[int]chan struct{})}
}

// After schedules f once after d of clock time. The returned cancel
// function stops the timer if it has not fired; it is safe to call
// multiple times.
func (t *TimerSet) After(d time.Duration, f func()) (cancel func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return func() {}
	}
	id := t.nextID
	t.nextID++
	ch := make(chan struct{})
	t.cancels[id] = ch
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		select {
		case <-ch:
			return
		case <-t.clk.After(d):
		}
		// Deregister before running so StopAll does not double-close.
		if !t.deregister(id) {
			return
		}
		f()
	}()
	return func() { t.cancelID(id) }
}

// Every schedules f repeatedly with period d until cancelled. Reset the
// alignment by cancelling and re-registering (the log processor does this
// when the periodic log event arrives early).
func (t *TimerSet) Every(d time.Duration, f func()) (cancel func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return func() {}
	}
	id := t.nextID
	t.nextID++
	ch := make(chan struct{})
	t.cancels[id] = ch
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		ticker := clock.NewTicker(t.clk, d)
		defer ticker.Stop()
		for {
			select {
			case <-ch:
				return
			case <-ticker.C:
				f()
			}
		}
	}()
	return func() { t.cancelID(id) }
}

// cancelID cancels a single timer.
func (t *TimerSet) cancelID(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ch, ok := t.cancels[id]; ok {
		delete(t.cancels, id)
		close(ch)
	}
}

// deregister removes a fired one-off timer, reporting whether it was still
// registered (false means it lost a race with cancellation).
func (t *TimerSet) deregister(id int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.cancels[id]; !ok {
		return false
	}
	delete(t.cancels, id)
	return true
}

// StopAll cancels all timers and waits for callbacks to finish. The set
// cannot be reused afterwards.
func (t *TimerSet) StopAll() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		t.wg.Wait()
		return
	}
	t.stopped = true
	for id, ch := range t.cancels {
		delete(t.cancels, id)
		close(ch)
	}
	t.mu.Unlock()
	t.wg.Wait()
}

// Pending returns the number of scheduled, unfired timers.
func (t *TimerSet) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cancels)
}
