package assertion

import (
	"context"
	"fmt"
	"strings"
	"time"

	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/simaws"
)

// Check ids of the pre-defined assertion library. One fault tree exists
// per (failing) assertion, keyed by these ids.
const (
	CheckASGInstanceCount      = "asg-instance-count"
	CheckASGVersionCount       = "asg-version-count"
	CheckASGUsesAMI            = "asg-uses-ami"
	CheckASGUsesKeyPair        = "asg-uses-keypair"
	CheckASGUsesSG             = "asg-uses-sg"
	CheckASGUsesType           = "asg-uses-instance-type"
	CheckAMIAvailable          = "ami-available"
	CheckKeyPairExists         = "keypair-exists"
	CheckSGExists              = "sg-exists"
	CheckLCExists              = "lc-exists"
	CheckELBReachable          = "elb-reachable"
	CheckELBInstanceCount      = "elb-instance-count"
	CheckInstanceRegistered    = "instance-registered"
	CheckInstanceVersion       = "instance-version"
	CheckInstanceHealthy       = "instance-healthy"
	CheckNoFailedLaunches      = "no-failed-launches"
	CheckNoLimitExceeded       = "no-limit-exceeded"
	CheckNoScaleIn             = "no-scale-in"
	CheckNoExternalTermination = "no-external-termination"
)

// DefaultRegistry returns a registry pre-populated with the assertion
// library: the pre-defined cloud-resource checks operators use directly
// (§III.B.3) plus the diagnosis tests the fault trees reference.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	for _, c := range libraryChecks() {
		r.Register(c)
	}
	return r
}

// asgLCWhere resolves the launch configuration an ASG currently uses,
// retrying through eventual consistency while the expectation want is
// unmet (the paper's read-after-write masking, §IV). It returns the last
// observed configuration and whether the expectation held.
func asgLCWhere(ctx context.Context, client *consistentapi.Client, asgName string, want func(simaws.LaunchConfig) bool) (simaws.LaunchConfig, bool, error) {
	fetch := func(ctx context.Context) (simaws.LaunchConfig, error) {
		asg, err := client.Cloud().DescribeAutoScalingGroup(ctx, asgName)
		if err != nil {
			return simaws.LaunchConfig{}, err
		}
		return client.Cloud().DescribeLaunchConfiguration(ctx, asg.LaunchConfigName)
	}
	return consistentapi.Eventually(ctx, client, fetch, want)
}

// configCheck implements one asg-uses-* check: the launch configuration in
// effect must satisfy match; mismatches are retried through the consistent
// API layer before being reported as violations.
func configCheck(ctx context.Context, client *consistentapi.Client, p Params, checkID string,
	match func(simaws.LaunchConfig) bool, passMsg, failMsg func(simaws.LaunchConfig) string) Result {
	asgName, err := p.Str(ParamASG)
	if err != nil {
		return evalErr(checkID, p, err)
	}
	lc, ok, err := asgLCWhere(ctx, client, asgName, match)
	if ok {
		return pass(checkID, p, "%s", passMsg(lc))
	}
	if err != nil && lc.Name == "" {
		return evalErr(checkID, p, err)
	}
	return fail(checkID, p, "%s", failMsg(lc))
}

// activityWindow parses the look-back window parameter, defaulting to 5
// minutes.
func activityWindow(p Params) time.Duration {
	if v, ok := p[ParamWindow]; ok {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return 5 * time.Minute
}

func libraryChecks() []Check {
	return []Check{
		noExternalTerminationCheck(),
		{
			ID:          CheckASGInstanceCount,
			Description: "the ASG {asgid} has {want} live instances",
			HighLevel:   true,
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				asgName, err := p.Str(ParamASG)
				if err != nil {
					return evalErr(CheckASGInstanceCount, p, err)
				}
				want, err := p.Int(ParamWant)
				if err != nil {
					return evalErr(CheckASGInstanceCount, p, err)
				}
				count := func(instances []simaws.Instance) int {
					n := 0
					for _, inst := range instances {
						if inst.ASGName == asgName && inst.State == simaws.StateInService {
							n++
						}
					}
					return n
				}
				instances, ok, err := client.DescribeInstances(ctx, func(list []simaws.Instance) bool {
					return count(list) >= want
				})
				if err != nil && instances == nil {
					return evalErr(CheckASGInstanceCount, p, err)
				}
				if ok {
					return pass(CheckASGInstanceCount, p, "ASG %s has %d instances.", asgName, want)
				}
				return fail(CheckASGInstanceCount, p, "ASG %s has %d instances, want %d.", asgName, count(instances), want)
			},
		},
		{
			ID:          CheckASGVersionCount,
			Description: "the system has {want} instances with version {version}",
			HighLevel:   true,
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				asgName, err := p.Str(ParamASG)
				if err != nil {
					return evalErr(CheckASGVersionCount, p, err)
				}
				version, err := p.Str(ParamVersion)
				if err != nil {
					return evalErr(CheckASGVersionCount, p, err)
				}
				want, err := p.Int(ParamWant)
				if err != nil {
					return evalErr(CheckASGVersionCount, p, err)
				}
				count := func(instances []simaws.Instance) int {
					n := 0
					for _, inst := range instances {
						if inst.ASGName == asgName && inst.State == simaws.StateInService && inst.Version == version {
							n++
						}
					}
					return n
				}
				instances, ok, err := client.DescribeInstances(ctx, func(list []simaws.Instance) bool {
					return count(list) >= want
				})
				if err != nil && instances == nil {
					return evalErr(CheckASGVersionCount, p, err)
				}
				if ok {
					return pass(CheckASGVersionCount, p, "ASG %s has %d instances with version %s.", asgName, want, version)
				}
				return fail(CheckASGVersionCount, p, "ASG %s has %d instances with version %s, want %d.",
					asgName, count(instances), version, want)
			},
		},
		{
			ID:          CheckASGUsesAMI,
			Description: "the ASG {asgid} is using a correct AMI {amiid}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				ami, err := p.Str(ParamAMI)
				if err != nil {
					return evalErr(CheckASGUsesAMI, p, err)
				}
				asgName := p[ParamASG]
				return configCheck(ctx, client, p, CheckASGUsesAMI,
					func(lc simaws.LaunchConfig) bool { return lc.ImageID == ami },
					func(simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a correct AMI.", asgName)
					},
					func(lc simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a wrong AMI (%s, want %s).", asgName, lc.ImageID, ami)
					})
			},
		},
		{
			ID:          CheckASGUsesKeyPair,
			Description: "the ASG {asgid} is using a correct key pair {keyname}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				key, err := p.Str(ParamKeyPair)
				if err != nil {
					return evalErr(CheckASGUsesKeyPair, p, err)
				}
				asgName := p[ParamASG]
				return configCheck(ctx, client, p, CheckASGUsesKeyPair,
					func(lc simaws.LaunchConfig) bool { return lc.KeyName == key },
					func(simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a correct key pair.", asgName)
					},
					func(lc simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a wrong key pair (%s, want %s).", asgName, lc.KeyName, key)
					})
			},
		},
		{
			ID:          CheckASGUsesSG,
			Description: "the ASG {asgid} is using a correct security group {sgname}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				sg, err := p.Str(ParamSG)
				if err != nil {
					return evalErr(CheckASGUsesSG, p, err)
				}
				asgName := p[ParamASG]
				hasSG := func(lc simaws.LaunchConfig) bool {
					for _, g := range lc.SecurityGroups {
						if g == sg {
							return true
						}
					}
					return false
				}
				return configCheck(ctx, client, p, CheckASGUsesSG, hasSG,
					func(simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a correct security group.", asgName)
					},
					func(lc simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a wrong security group (%v, want %s).", asgName, lc.SecurityGroups, sg)
					})
			},
		},
		{
			ID:          CheckASGUsesType,
			Description: "the ASG {asgid} is using a correct instance type {instancetype}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				typ, err := p.Str(ParamInstanceType)
				if err != nil {
					return evalErr(CheckASGUsesType, p, err)
				}
				asgName := p[ParamASG]
				return configCheck(ctx, client, p, CheckASGUsesType,
					func(lc simaws.LaunchConfig) bool { return lc.InstanceType == typ },
					func(simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a correct instance type.", asgName)
					},
					func(lc simaws.LaunchConfig) string {
						return fmt.Sprintf("The ASG %s is using a wrong instance type (%s, want %s).", asgName, lc.InstanceType, typ)
					})
			},
		},
		{
			ID:          CheckAMIAvailable,
			Description: "the AMI {amiid} is available",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				ami, err := p.Str(ParamAMI)
				if err != nil {
					return evalErr(CheckAMIAvailable, p, err)
				}
				img, _, err := client.DescribeImage(ctx, ami, nil)
				if simaws.IsNotFound(err) {
					return fail(CheckAMIAvailable, p, "The AMI %s does not exist.", ami)
				}
				if err != nil {
					return evalErr(CheckAMIAvailable, p, err)
				}
				if img.Available {
					return pass(CheckAMIAvailable, p, "The AMI %s is available.", ami)
				}
				return fail(CheckAMIAvailable, p, "The AMI %s is deregistered.", ami)
			},
		},
		{
			ID:          CheckKeyPairExists,
			Description: "the key pair {keyname} exists",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				key, err := p.Str(ParamKeyPair)
				if err != nil {
					return evalErr(CheckKeyPairExists, p, err)
				}
				_, _, err = client.DescribeKeyPair(ctx, key)
				if simaws.IsNotFound(err) {
					return fail(CheckKeyPairExists, p, "The key pair %s does not exist.", key)
				}
				if err != nil {
					return evalErr(CheckKeyPairExists, p, err)
				}
				return pass(CheckKeyPairExists, p, "The key pair %s exists.", key)
			},
		},
		{
			ID:          CheckSGExists,
			Description: "the security group {sgname} exists",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				sg, err := p.Str(ParamSG)
				if err != nil {
					return evalErr(CheckSGExists, p, err)
				}
				_, _, err = client.DescribeSecurityGroup(ctx, sg)
				if simaws.IsNotFound(err) {
					return fail(CheckSGExists, p, "The security group %s does not exist.", sg)
				}
				if err != nil {
					return evalErr(CheckSGExists, p, err)
				}
				return pass(CheckSGExists, p, "The security group %s exists.", sg)
			},
		},
		{
			ID:          CheckLCExists,
			Description: "the launch configuration {lcname} exists",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				lcName, err := p.Str(ParamLC)
				if err != nil {
					return evalErr(CheckLCExists, p, err)
				}
				lc, _, err := client.DescribeLaunchConfig(ctx, lcName, nil)
				if simaws.IsNotFound(err) {
					return fail(CheckLCExists, p, "The launch configuration %s does not exist.", lcName)
				}
				if err != nil {
					return evalErr(CheckLCExists, p, err)
				}
				if want, ok := p[ParamAMI]; ok && want != "" && lc.ImageID != want {
					return fail(CheckLCExists, p, "The launch configuration %s uses AMI %s, want %s.", lcName, lc.ImageID, want)
				}
				return pass(CheckLCExists, p, "The launch configuration %s exists.", lcName)
			},
		},
		{
			ID:          CheckELBReachable,
			Description: "the load balancer {elbname} is reachable",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				elb, err := p.Str(ParamELB)
				if err != nil {
					return evalErr(CheckELBReachable, p, err)
				}
				_, _, err = client.DescribeELB(ctx, elb, nil)
				if simaws.IsNotFound(err) {
					return fail(CheckELBReachable, p, "The load balancer %s does not exist.", elb)
				}
				if simaws.ErrorCode(err) == simaws.ErrCodeServiceUnavailable {
					return fail(CheckELBReachable, p, "The ELB service is unavailable.")
				}
				if err != nil {
					return evalErr(CheckELBReachable, p, err)
				}
				return pass(CheckELBReachable, p, "The load balancer %s is reachable.", elb)
			},
		},
		{
			ID:          CheckELBInstanceCount,
			Description: "the load balancer {elbname} has {want} in-service instances",
			HighLevel:   true,
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				elbName, err := p.Str(ParamELB)
				if err != nil {
					return evalErr(CheckELBInstanceCount, p, err)
				}
				want, err := p.Int(ParamWant)
				if err != nil {
					return evalErr(CheckELBInstanceCount, p, err)
				}
				elb, ok, err := client.DescribeELB(ctx, elbName, func(lb simaws.LoadBalancer) bool {
					return len(lb.Instances) >= want
				})
				if simaws.IsNotFound(err) || simaws.ErrorCode(err) == simaws.ErrCodeServiceUnavailable {
					// A missing or disrupted ELB definitively violates the
					// registration expectation.
					return fail(CheckELBInstanceCount, p, "The load balancer %s is unavailable: %v", elbName, err)
				}
				if err != nil && elb.Name == "" {
					return evalErr(CheckELBInstanceCount, p, err)
				}
				if ok {
					return pass(CheckELBInstanceCount, p, "ELB %s has %d registered instances.", elbName, want)
				}
				return fail(CheckELBInstanceCount, p, "ELB %s has %d registered instances, want %d.", elbName, len(elb.Instances), want)
			},
		},
		{
			ID:          CheckInstanceRegistered,
			Description: "instance {instanceid} is registered with {elbname}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				elbName, err := p.Str(ParamELB)
				if err != nil {
					return evalErr(CheckInstanceRegistered, p, err)
				}
				id, err := p.Str(ParamInstance)
				if err != nil {
					return evalErr(CheckInstanceRegistered, p, err)
				}
				elb, ok, err := client.DescribeELB(ctx, elbName, func(lb simaws.LoadBalancer) bool {
					for _, reg := range lb.Instances {
						if reg == id {
							return true
						}
					}
					return false
				})
				if err != nil && elb.Name == "" {
					return evalErr(CheckInstanceRegistered, p, err)
				}
				if ok {
					return pass(CheckInstanceRegistered, p, "Instance %s is registered with ELB %s.", id, elbName)
				}
				return fail(CheckInstanceRegistered, p, "Instance %s is not registered with ELB %s.", id, elbName)
			},
		},
		{
			ID:          CheckInstanceVersion,
			Description: "instance {instanceid} runs version {version}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				id, err := p.Str(ParamInstance)
				if err != nil {
					return evalErr(CheckInstanceVersion, p, err)
				}
				version, err := p.Str(ParamVersion)
				if err != nil {
					return evalErr(CheckInstanceVersion, p, err)
				}
				inst, _, err := client.DescribeInstance(ctx, id, nil)
				if simaws.IsNotFound(err) {
					return fail(CheckInstanceVersion, p, "Instance %s does not exist.", id)
				}
				if err != nil {
					return evalErr(CheckInstanceVersion, p, err)
				}
				if inst.Version == version {
					return pass(CheckInstanceVersion, p, "Instance %s runs version %s.", id, version)
				}
				return fail(CheckInstanceVersion, p, "Instance %s runs version %s, want %s.", id, inst.Version, version)
			},
		},
		{
			ID:          CheckInstanceHealthy,
			Description: "instance {instanceid} is in service",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				id, err := p.Str(ParamInstance)
				if err != nil {
					return evalErr(CheckInstanceHealthy, p, err)
				}
				inst, ok, err := client.DescribeInstance(ctx, id, func(i simaws.Instance) bool {
					return i.State == simaws.StateInService
				})
				if simaws.IsNotFound(err) {
					return fail(CheckInstanceHealthy, p, "Instance %s does not exist.", id)
				}
				if err != nil && inst.ID == "" {
					return evalErr(CheckInstanceHealthy, p, err)
				}
				if ok {
					return pass(CheckInstanceHealthy, p, "Instance %s is in service.", id)
				}
				return fail(CheckInstanceHealthy, p, "Instance %s is in state %s.", id, inst.State)
			},
		},
		{
			ID:          CheckNoFailedLaunches,
			Description: "the ASG {asgid} has no recent failed launch activities",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				return activityCheck(ctx, client, p, CheckNoFailedLaunches,
					func(a simaws.Activity) bool { return a.Status == simaws.ActivityFailed },
					"failed launch activity")
			},
		},
		{
			ID:          CheckNoLimitExceeded,
			Description: "the account instance limit was not reached for ASG {asgid}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				return activityCheck(ctx, client, p, CheckNoLimitExceeded,
					func(a simaws.Activity) bool {
						return a.Status == simaws.ActivityFailed &&
							strings.Contains(a.StatusMessage, simaws.ErrCodeInstanceLimitExceeded)
					},
					"instance-limit-exceeded activity")
			},
		},
		{
			ID:          CheckNoScaleIn,
			Description: "no simultaneous scale-in happened on ASG {asgid}",
			Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
				return activityCheck(ctx, client, p, CheckNoScaleIn,
					func(a simaws.Activity) bool {
						return strings.Contains(a.Description, "Setting desired capacity")
					},
					"desired-capacity change")
			},
		},
	}
}

// noExternalTerminationCheck consults the CloudTrail-like audit trail for
// operator-initiated instance terminations within the window. Without the
// trail enabled the check is inconclusive — exactly the paper's situation
// ("we were able to diagnose when the root cause was ASG scale-in, but not
// when the root cause was termination of instances", §V.B); with the trail
// enabled but slowly delivered, recent terminations are invisible and the
// check wrongly passes (§VII's CloudTrail staleness).
func noExternalTerminationCheck() Check {
	return Check{
		ID:          CheckNoExternalTermination,
		Description: "no instance of ASG {asgid} was terminated outside the process",
		Eval: func(ctx context.Context, client *consistentapi.Client, p Params) Result {
			records, err := client.Cloud().LookupAuditEvents(ctx, "TerminateInstances")
			if err != nil {
				return evalErr(CheckNoExternalTermination, p, err)
			}
			cutoff := client.Clock().Now().Add(-activityWindow(p))
			for _, r := range records {
				if r.At.Before(cutoff) {
					continue
				}
				if r.Principal == "operator" {
					return fail(CheckNoExternalTermination, p,
						"Instance %s was terminated outside the process at %s.",
						r.Resource, r.At.Format("15:04:05"))
				}
			}
			return pass(CheckNoExternalTermination, p, "No external instance termination in the audit trail.")
		},
	}
}

// activityCheck scans recent scaling activities; the check fails when any
// activity within the window matches bad.
func activityCheck(ctx context.Context, client *consistentapi.Client, p Params, checkID string,
	bad func(simaws.Activity) bool, what string) Result {
	asgName, err := p.Str(ParamASG)
	if err != nil {
		return evalErr(checkID, p, err)
	}
	acts, _, err := client.DescribeScalingActivities(ctx, asgName, nil)
	if err != nil {
		return evalErr(checkID, p, err)
	}
	cutoff := client.Clock().Now().Add(-activityWindow(p))
	for _, a := range acts {
		if a.StartTime.Before(cutoff) {
			continue
		}
		if bad(a) {
			return fail(checkID, p, "ASG %s has a recent %s: %s %s", asgName, what, a.Description, a.StatusMessage)
		}
	}
	return pass(checkID, p, "ASG %s has no recent %s.", asgName, what)
}
