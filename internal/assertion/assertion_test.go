package assertion

import (
	"context"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// testEnv provisions a cloud with a deployed cluster and an evaluator.
type testEnv struct {
	cloud   *simaws.Cloud
	client  *consistentapi.Client
	eval    *Evaluator
	cluster *upgrade.Cluster
	bus     *logging.Bus
	sink    *logging.MemorySink
	ctx     context.Context
}

func newTestEnv(t *testing.T, size int) *testEnv {
	t.Helper()
	clk := clock.NewScaled(800, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.BootTime = clock.Fixed(time.Second)
	profile.TickInterval = 200 * time.Millisecond
	cloud := simaws.New(clk, profile, simaws.WithSeed(5), simaws.WithBus(bus))
	cloud.Start()
	t.Cleanup(func() { cloud.Stop(); bus.Close() })

	sink := logging.NewMemorySink()
	sub := bus.Subscribe(1024, logging.TypeFilter(logging.TypeAssertion))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range sub.C {
			sink.Write(e)
		}
	}()
	t.Cleanup(func() { sub.Cancel(); <-done })

	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", size, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	client := consistentapi.New(cloud, consistentapi.Config{
		MaxAttempts:    4,
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     time.Second,
		CallTimeout:    20 * time.Second,
	})
	return &testEnv{
		cloud: cloud, client: client,
		eval:    NewEvaluator(client, DefaultRegistry(), bus),
		cluster: cluster, bus: bus, sink: sink, ctx: ctx,
	}
}

func (e *testEnv) params(extra Params) Params {
	base := Params{
		ParamASG:     e.cluster.ASGName,
		ParamELB:     e.cluster.ELBName,
		ParamAMI:     e.cluster.ImageID,
		ParamKeyPair: e.cluster.KeyName,
		ParamSG:      e.cluster.SGName,
		ParamVersion: e.cluster.Version,
	}
	return base.Merge(extra)
}

func TestInstanceCountPassAndFail(t *testing.T) {
	e := newTestEnv(t, 3)
	res := e.eval.Evaluate(e.ctx, CheckASGInstanceCount, e.params(Params{ParamWant: "3"}), Trigger{Source: TriggerLog})
	if !res.Passed() {
		t.Fatalf("count=3 failed: %s / %s", res.Message, res.Err)
	}
	res = e.eval.Evaluate(e.ctx, CheckASGInstanceCount, e.params(Params{ParamWant: "5"}), Trigger{Source: TriggerLog})
	if !res.Failed() {
		t.Fatalf("count=5 did not fail: %v %s", res.Status, res.Message)
	}
}

func TestVersionCount(t *testing.T) {
	e := newTestEnv(t, 2)
	res := e.eval.Evaluate(e.ctx, CheckASGVersionCount, e.params(Params{ParamWant: "2"}), Trigger{})
	if !res.Passed() {
		t.Fatalf("v1 count failed: %s", res.Message)
	}
	res = e.eval.Evaluate(e.ctx, CheckASGVersionCount,
		e.params(Params{ParamWant: "1", ParamVersion: "v2"}), Trigger{})
	if !res.Failed() {
		t.Fatalf("v2 count passed: %s", res.Message)
	}
}

func TestConfigurationChecks(t *testing.T) {
	e := newTestEnv(t, 1)
	for _, id := range []string{CheckASGUsesAMI, CheckASGUsesKeyPair, CheckASGUsesSG} {
		if res := e.eval.Evaluate(e.ctx, id, e.params(nil), Trigger{}); !res.Passed() {
			t.Errorf("%s: %v %s %s", id, res.Status, res.Message, res.Err)
		}
	}
	res := e.eval.Evaluate(e.ctx, CheckASGUsesType, e.params(Params{ParamInstanceType: "m1.small"}), Trigger{})
	if !res.Passed() {
		t.Errorf("instance type: %s", res.Message)
	}
	// Wrong expectations must fail.
	res = e.eval.Evaluate(e.ctx, CheckASGUsesAMI, e.params(Params{ParamAMI: "ami-wrong"}), Trigger{})
	if !res.Failed() {
		t.Errorf("wrong AMI passed")
	}
	res = e.eval.Evaluate(e.ctx, CheckASGUsesKeyPair, e.params(Params{ParamKeyPair: "other"}), Trigger{})
	if !res.Failed() {
		t.Errorf("wrong key pair passed")
	}
	res = e.eval.Evaluate(e.ctx, CheckASGUsesSG, e.params(Params{ParamSG: "other"}), Trigger{})
	if !res.Failed() {
		t.Errorf("wrong SG passed")
	}
	res = e.eval.Evaluate(e.ctx, CheckASGUsesType, e.params(Params{ParamInstanceType: "m1.large"}), Trigger{})
	if !res.Failed() {
		t.Errorf("wrong type passed")
	}
}

func TestResourceExistenceChecks(t *testing.T) {
	e := newTestEnv(t, 1)
	checks := map[string]Params{
		CheckAMIAvailable:  e.params(nil),
		CheckKeyPairExists: e.params(nil),
		CheckSGExists:      e.params(nil),
		CheckELBReachable:  e.params(nil),
		CheckLCExists:      e.params(Params{ParamLC: e.cluster.LCName}),
	}
	for id, p := range checks {
		if res := e.eval.Evaluate(e.ctx, id, p, Trigger{}); !res.Passed() {
			t.Errorf("%s: %v %s %s", id, res.Status, res.Message, res.Err)
		}
	}
	// Delete resources and watch them fail.
	if err := e.cloud.DeregisterImage(e.ctx, e.cluster.ImageID); err != nil {
		t.Fatal(err)
	}
	if res := e.eval.Evaluate(e.ctx, CheckAMIAvailable, e.params(nil), Trigger{}); !res.Failed() {
		t.Errorf("deregistered AMI passed: %v", res.Status)
	}
	if err := e.cloud.DeleteKeyPair(e.ctx, e.cluster.KeyName); err != nil {
		t.Fatal(err)
	}
	if res := e.eval.Evaluate(e.ctx, CheckKeyPairExists, e.params(nil), Trigger{}); !res.Failed() {
		t.Errorf("deleted key pair passed: %v", res.Status)
	}
}

func TestELBChecks(t *testing.T) {
	e := newTestEnv(t, 2)
	res := e.eval.Evaluate(e.ctx, CheckELBInstanceCount, e.params(Params{ParamWant: "2"}), Trigger{})
	if !res.Passed() {
		t.Fatalf("elb count: %s %s", res.Message, res.Err)
	}
	// A registered instance.
	elb, _, err := e.client.DescribeELB(e.ctx, e.cluster.ELBName, nil)
	if err != nil || len(elb.Instances) == 0 {
		t.Fatalf("describe elb: %v", err)
	}
	res = e.eval.Evaluate(e.ctx, CheckInstanceRegistered,
		e.params(Params{ParamInstance: elb.Instances[0]}), Trigger{})
	if !res.Passed() {
		t.Fatalf("registered check: %s", res.Message)
	}
	res = e.eval.Evaluate(e.ctx, CheckInstanceRegistered,
		e.params(Params{ParamInstance: "i-ghost"}), Trigger{})
	if !res.Failed() {
		t.Fatalf("ghost registered: %v", res.Status)
	}
	// ELB disruption: reachability fails (not error — it is a definitive
	// service-down signal).
	e.cloud.SetELBServiceDisruption(true)
	res = e.eval.Evaluate(e.ctx, CheckELBReachable, e.params(nil), Trigger{})
	if !res.Failed() {
		t.Fatalf("disrupted ELB check = %v (%s)", res.Status, res.Err)
	}
}

func TestInstanceChecks(t *testing.T) {
	e := newTestEnv(t, 1)
	insts, _, err := e.client.DescribeInstances(e.ctx, nil)
	if err != nil || len(insts) == 0 {
		t.Fatal(err)
	}
	id := insts[0].ID
	res := e.eval.Evaluate(e.ctx, CheckInstanceVersion,
		e.params(Params{ParamInstance: id}), Trigger{})
	if !res.Passed() {
		t.Fatalf("version check: %s", res.Message)
	}
	res = e.eval.Evaluate(e.ctx, CheckInstanceHealthy,
		e.params(Params{ParamInstance: id}), Trigger{})
	if !res.Passed() {
		t.Fatalf("healthy check: %s", res.Message)
	}
	res = e.eval.Evaluate(e.ctx, CheckInstanceVersion,
		e.params(Params{ParamInstance: id, ParamVersion: "v9"}), Trigger{})
	if !res.Failed() {
		t.Fatalf("wrong version passed")
	}
}

func TestActivityChecks(t *testing.T) {
	e := newTestEnv(t, 2)
	p := e.params(Params{ParamWindow: "10m"})
	if res := e.eval.Evaluate(e.ctx, CheckNoFailedLaunches, p, Trigger{}); !res.Passed() {
		t.Fatalf("clean group has failed launches: %s", res.Message)
	}
	if res := e.eval.Evaluate(e.ctx, CheckNoScaleIn, p, Trigger{}); !res.Passed() {
		t.Fatalf("clean group has scale-in: %s", res.Message)
	}
	// Trigger a scale-in.
	if err := e.cloud.SetDesiredCapacity(e.ctx, e.cluster.ASGName, 1); err != nil {
		t.Fatal(err)
	}
	if res := e.eval.Evaluate(e.ctx, CheckNoScaleIn, p, Trigger{}); !res.Failed() {
		t.Fatalf("scale-in not detected: %v %s", res.Status, res.Message)
	}
	// Wait for the scale-in to take effect before raising desired again,
	// otherwise the two capacity changes cancel within one tick.
	shrunk := time.Now().Add(5 * time.Second)
	for time.Now().Before(shrunk) {
		asg, _, err := e.client.DescribeASG(e.ctx, e.cluster.ASGName, nil)
		if err == nil && len(asg.Instances) == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Break the AMI and force a replacement failure for the launch check.
	if err := e.cloud.DeregisterImage(e.ctx, e.cluster.ImageID); err != nil {
		t.Fatal(err)
	}
	if err := e.cloud.SetDesiredCapacity(e.ctx, e.cluster.ASGName, 2); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	detected := false
	for time.Now().Before(deadline) {
		if res := e.eval.Evaluate(e.ctx, CheckNoFailedLaunches, p, Trigger{}); res.Failed() {
			detected = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !detected {
		t.Fatal("failed launches never detected")
	}
}

func TestUnknownCheckAndMissingParams(t *testing.T) {
	e := newTestEnv(t, 1)
	res := e.eval.Evaluate(e.ctx, "no-such-check", nil, Trigger{})
	if res.Status != StatusError {
		t.Fatalf("unknown check status = %v", res.Status)
	}
	res = e.eval.Evaluate(e.ctx, CheckASGInstanceCount, Params{}, Trigger{})
	if res.Status != StatusError {
		t.Fatalf("missing params status = %v", res.Status)
	}
	res = e.eval.Evaluate(e.ctx, CheckASGInstanceCount,
		Params{ParamASG: "g", ParamWant: "abc"}, Trigger{})
	if res.Status != StatusError {
		t.Fatalf("bad int status = %v", res.Status)
	}
}

func TestEvaluatorPublishesAndRecords(t *testing.T) {
	e := newTestEnv(t, 1)
	trig := Trigger{Source: TriggerLog, ProcessInstanceID: "pushing pm--asg", StepID: "step4"}
	e.eval.Evaluate(e.ctx, CheckASGInstanceCount, e.params(Params{ParamWant: "1"}), trig)
	if len(e.eval.History()) != 1 {
		t.Fatalf("history = %d", len(e.eval.History()))
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && e.sink.Len() == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	events := e.sink.Events()
	if len(events) == 0 {
		t.Fatal("no assertion event published")
	}
	ev := events[0]
	if ev.Type != logging.TypeAssertion {
		t.Errorf("type = %s", ev.Type)
	}
	if ev.Field("taskid") != "pushing pm--asg" || ev.Field("steppostcon") != "step4" {
		t.Errorf("fields = %v", ev.Fields)
	}
	if !ev.HasTag("step4") {
		t.Errorf("tags = %v", ev.Tags)
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{"a": "1"}
	q := p.Merge(Params{"b": "2"})
	if _, ok := p["b"]; ok {
		t.Error("Merge mutated receiver")
	}
	if q["a"] != "1" || q["b"] != "2" {
		t.Errorf("Merge result %v", q)
	}
	if n, err := q.Int("a"); err != nil || n != 1 {
		t.Errorf("Int = %d, %v", n, err)
	}
	if _, err := q.Int("missing"); err == nil {
		t.Error("Int(missing) no error")
	}
	if _, err := q.Str("missing"); err == nil {
		t.Error("Str(missing) no error")
	}
	if s := Status(99).String(); s != "unknown" {
		t.Errorf("Status(99) = %s", s)
	}
	for st, want := range map[Status]string{StatusPass: "pass", StatusFail: "fail", StatusError: "error"} {
		if st.String() != want {
			t.Errorf("%v = %s", st, st.String())
		}
	}
}

func TestTimerSetAfterFiresOnce(t *testing.T) {
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	ts := NewTimerSet(clk)
	defer ts.StopAll()
	var n atomic.Int32
	ts.After(time.Second, func() { n.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && n.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if n.Load() != 1 {
		t.Fatalf("fired %d times", n.Load())
	}
	if ts.Pending() != 0 {
		t.Fatalf("pending = %d after fire", ts.Pending())
	}
}

func TestTimerSetCancelPreventsFire(t *testing.T) {
	clk := clock.NewScaled(10, time.Unix(0, 0))
	ts := NewTimerSet(clk)
	defer ts.StopAll()
	var n atomic.Int32
	cancel := ts.After(time.Hour, func() { n.Add(1) })
	cancel()
	cancel() // idempotent
	if ts.Pending() != 0 {
		t.Fatalf("pending = %d", ts.Pending())
	}
	if n.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerSetEveryRepeats(t *testing.T) {
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	ts := NewTimerSet(clk)
	var n atomic.Int32
	cancel := ts.Every(500*time.Millisecond, func() { n.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && n.Load() < 3 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if n.Load() < 3 {
		t.Fatalf("ticked %d times", n.Load())
	}
	ts.StopAll()
}

func TestTimerSetStopAllRejectsNew(t *testing.T) {
	clk := clock.NewScaled(1000, time.Unix(0, 0))
	ts := NewTimerSet(clk)
	ts.StopAll()
	var n atomic.Int32
	ts.After(time.Millisecond, func() { n.Add(1) })
	ts.Every(time.Millisecond, func() { n.Add(1) })
	time.Sleep(10 * time.Millisecond)
	if n.Load() != 0 {
		t.Fatal("timer fired after StopAll")
	}
}

func TestHighLevelFlagOnLibrary(t *testing.T) {
	r := DefaultRegistry()
	for _, id := range []string{CheckASGInstanceCount, CheckASGVersionCount, CheckELBInstanceCount} {
		c, ok := r.Lookup(id)
		if !ok || !c.HighLevel {
			t.Errorf("%s not high-level", id)
		}
	}
	c, _ := r.Lookup(CheckInstanceVersion)
	if c.HighLevel {
		t.Error("instance-version marked high-level")
	}
	if len(r.IDs()) < 15 {
		t.Errorf("library too small: %d checks", len(r.IDs()))
	}
	_ = strconv.Itoa(0) // keep strconv imported via test usage symmetry
}
