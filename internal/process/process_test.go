package process

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestBuilderBuildsLinearModel(t *testing.T) {
	b := NewBuilder("m", "Model")
	b.Start("s")
	b.Activity("a", WithName("A"), WithStep("step1"), WithPatterns(`alpha \d+`))
	b.Activity("b", WithName("B"), WithStep("step2"), WithPatterns(`beta`))
	b.End("e")
	b.Chain("s", "a", "b", "e")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Start() != "s" {
		t.Errorf("Start = %q", m.Start())
	}
	if len(m.Ends()) != 1 || m.Ends()[0] != "e" {
		t.Errorf("Ends = %v", m.Ends())
	}
	if got := m.Outgoing("a"); len(got) != 1 || got[0] != "b" {
		t.Errorf("Outgoing(a) = %v", got)
	}
	if got := m.Incoming("b"); len(got) != 1 || got[0] != "a" {
		t.Errorf("Incoming(b) = %v", got)
	}
	if len(m.Activities()) != 2 {
		t.Errorf("Activities = %d", len(m.Activities()))
	}
	if n := m.ActivityByStep("step2"); n == nil || n.ID != "b" {
		t.Errorf("ActivityByStep(step2) = %v", n)
	}
}

func TestBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Model, error)
		want  string
	}{
		{"no start", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Activity("a")
			b.End("e")
			b.Flow("a", "e")
			return b.Build()
		}, "no start node"},
		{"no end", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Start("s")
			b.Activity("a")
			b.Flow("s", "a")
			return b.Build()
		}, "no end node"},
		{"two starts", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Start("s1")
			b.Start("s2")
			b.End("e")
			b.Flow("s1", "e")
			b.Flow("s2", "e")
			return b.Build()
		}, "multiple start nodes"},
		{"duplicate id", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Start("s")
			b.Activity("s")
			b.End("e")
			b.Flow("s", "e")
			return b.Build()
		}, "duplicate node id"},
		{"edge to unknown", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Start("s")
			b.End("e")
			b.Flow("s", "e")
			b.Flow("s", "ghost")
			return b.Build()
		}, "unknown node"},
		{"unreachable", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Start("s")
			b.Activity("a")
			b.End("e")
			b.Flow("s", "e")
			return b.Build()
		}, "unreachable"},
		{"bad pattern", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Start("s")
			b.Activity("a", WithPatterns(`([`))
			b.End("e")
			b.Chain("s", "a", "e")
			return b.Build()
		}, "pattern"},
		{"empty model id", func() (*Model, error) {
			b := NewBuilder("", "")
			b.Start("s")
			b.End("e")
			b.Flow("s", "e")
			return b.Build()
		}, "model id"},
		{"bad error pattern", func() (*Model, error) {
			b := NewBuilder("m", "")
			b.Start("s")
			b.End("e")
			b.Flow("s", "e")
			b.Errors(`([`)
			return b.Build()
		}, "error pattern"},
	}
	for _, tc := range cases {
		_, err := tc.build()
		if err == nil {
			t.Errorf("%s: Build succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestClassifyPrefersMostSpecific(t *testing.T) {
	b := NewBuilder("m", "")
	b.Start("s")
	b.Activity("generic", WithPatterns(`Instance \S+`))
	b.Activity("specific", WithPatterns(`Instance \S+ is ready for use`))
	b.End("e")
	b.Chain("s", "generic", "specific", "e")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, ok := m.Classify("Instance i-123 is ready for use")
	if !ok || n.ID != "specific" {
		t.Fatalf("Classify = %v, %v", n, ok)
	}
	n, ok = m.Classify("Instance i-123 stopped")
	if !ok || n.ID != "generic" {
		t.Fatalf("Classify generic = %v, %v", n, ok)
	}
	if _, ok := m.Classify("nothing matches this"); ok {
		t.Fatal("Classify matched noise")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := RollingUpgradeModel()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != m.ID() || back.Name() != m.Name() {
		t.Error("id/name lost in round trip")
	}
	if len(back.Nodes()) != len(m.Nodes()) {
		t.Errorf("nodes: got %d, want %d", len(back.Nodes()), len(m.Nodes()))
	}
	if len(back.ErrorPatterns()) != len(m.ErrorPatterns()) {
		t.Error("error patterns lost")
	}
	// Classification must survive the round trip.
	line := "Instance pm on i-7df34041 is ready for use. 4 of 4 instance relaunches done."
	n1, ok1 := m.Classify(line)
	n2, ok2 := back.Classify(line)
	if !ok1 || !ok2 || n1.ID != n2.ID {
		t.Fatalf("classification diverged: %v/%v vs %v/%v", n1, ok1, n2, ok2)
	}
}

func TestUnmarshalModelRejectsBadJSON(t *testing.T) {
	if _, err := UnmarshalModel([]byte(`{"id": }`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := UnmarshalModel([]byte(`{"id":"x","nodes":[],"edges":[]}`)); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestRollingUpgradeModelShape(t *testing.T) {
	m := RollingUpgradeModel()
	if m.ID() != RollingUpgradeModelID {
		t.Errorf("ID = %q", m.ID())
	}
	// 9 activities, 2 gateways, start, end.
	if got := len(m.Nodes()); got != 13 {
		t.Errorf("node count = %d, want 13", got)
	}
	steps := []string{StepStartTask, StepUpdateLC, StepSortInst, StepDeregister,
		StepTerminateOld, StepWaitASG, StepNewReady, StepCompleted}
	for _, s := range steps {
		if m.ActivityByStep(s) == nil {
			t.Errorf("no activity for %s", s)
		}
	}
	status := m.Node(NodeStatusInfo)
	if status == nil || !status.Recurring {
		t.Error("status-info missing or not recurring")
	}
	// The loop: g-loop-exit must branch back to g-loop-entry and forward
	// to completion.
	out := m.Outgoing("g-loop-exit")
	if len(out) != 2 {
		t.Fatalf("loop-exit out-degree = %d", len(out))
	}
}

func TestRollingUpgradeClassification(t *testing.T) {
	m := RollingUpgradeModel()
	cases := []struct {
		line string
		node string
	}{
		{"Starting rolling upgrade of group pm--asg to image ami-750c9e4f", NodeStartTask},
		{"Created launch configuration pm-lc-v2 with image ami-750c9e4f", NodeUpdateLC},
		{"Updated group pm--asg to launch configuration pm-lc-v2", NodeUpdateLC},
		{"Sorted 4 instances for replacement", NodeSortInst},
		{"Removed and deregistered instance i-7df34041 from ELB pm-elb", NodeDeregister},
		{"Terminating old instance i-7df34041", NodeTerminateOld},
		{"Waiting for group pm--asg to start a new instance", NodeWaitASG},
		{"Instance pm on i-7df34041 is ready for use. 4 of 4 instance relaunches done.", NodeNewReady},
		{"Rolling upgrade task completed", NodeCompleted},
		{"Status: 2 of 4 instances replaced", NodeStatusInfo},
	}
	for _, tc := range cases {
		n, ok := m.Classify(tc.line)
		if !ok {
			t.Errorf("line %q unclassified", tc.line)
			continue
		}
		if n.ID != tc.node {
			t.Errorf("line %q classified as %s, want %s", tc.line, n.ID, tc.node)
		}
	}
}

func TestRollingUpgradeErrorPatterns(t *testing.T) {
	m := RollingUpgradeModel()
	errLines := []string{
		"ERROR: something broke",
		"com.netflix.asgard.Task Exception in step",
		"launch failed with code 42",
		"request timed out after 30s",
		"operation timeout exceeded",
	}
	for _, l := range errLines {
		if !m.IsErrorLine(l) {
			t.Errorf("IsErrorLine(%q) = false", l)
		}
	}
	if m.IsErrorLine("Instance pm on i-1 is ready for use. 1 of 4 instance relaunches done.") {
		t.Error("healthy line flagged as error")
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := map[NodeKind]string{
		KindStart: "start", KindActivity: "activity",
		KindGateway: "gateway", KindEnd: "end", NodeKind(0): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestMeanDurationsPresent(t *testing.T) {
	m := RollingUpgradeModel()
	for _, id := range []string{NodeWaitASG, NodeTerminateOld, NodeDeregister} {
		if m.Node(id).MeanDuration <= 0 {
			t.Errorf("%s has no mean duration", id)
		}
	}
	if m.Node(NodeWaitASG).MeanDuration < 30*time.Second {
		t.Error("wait-asg mean duration implausibly small")
	}
}

func TestDOTExport(t *testing.T) {
	m := RollingUpgradeModel()
	dot := m.DOT()
	for _, want := range []string{
		"digraph \"rolling-upgrade\"",
		"shape=circle", "shape=doublecircle", "shape=diamond", "shape=box",
		"\"g-loop-exit\" -> \"g-loop-entry\"",
		"[step7]",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	// Recurring activities render dashed.
	if !strings.Contains(dot, "rounded,dashed") {
		t.Error("recurring activity not dashed")
	}
}

func TestANDGatewayBuilderAndDOT(t *testing.T) {
	b := NewBuilder("p", "")
	b.Start("s")
	b.End("e")
	b.ANDGateway("fork")
	b.ANDGateway("join")
	b.Activity("a", WithPatterns(`a`))
	b.Activity("b", WithPatterns(`b`))
	b.Chain("s", "fork")
	b.Flow("fork", "a")
	b.Flow("fork", "b")
	b.Flow("a", "join")
	b.Flow("b", "join")
	b.Chain("join", "e")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Node("fork").Kind != KindANDGateway {
		t.Errorf("fork kind = %v", m.Node("fork").Kind)
	}
	if KindANDGateway.String() != "and-gateway" {
		t.Errorf("String = %q", KindANDGateway.String())
	}
	dot := m.DOT()
	if !strings.Contains(dot, `label="+"`) {
		t.Error("AND gateway not rendered as +")
	}
	// JSON round trip preserves the kind.
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node("join").Kind != KindANDGateway {
		t.Error("AND kind lost in round trip")
	}
}

func TestScaleOutModelClassification(t *testing.T) {
	m := ScaleOutModel()
	cases := []struct {
		line string
		node string
	}{
		{"Starting scale-out of group pm--asg from 3 to 6 instances", NodeSOStart},
		{"Requested desired capacity 6 for group pm--asg", NodeSORequest},
		{"Waiting for group pm--asg to reach 6 in-service instances", NodeSOWait},
		{"Instance i-1 joined group pm--asg. 4 of 6 instances in service.", NodeSOJoined},
		{"Scale-out of group pm--asg completed", NodeSOComplete},
		{"Scale-out status: 4 of 6 instances in service", NodeSOStatus},
	}
	for _, tc := range cases {
		n, ok := m.Classify(tc.line)
		if !ok || n.ID != tc.node {
			t.Errorf("line %q -> %v (want %s)", tc.line, n, tc.node)
		}
	}
}
