package process

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the DOT golden files")

// dotEdgeRE matches one rendered edge line: "from" -> "to";
var dotEdgeRE = regexp.MustCompile(`^\s*"([^"]+)" -> "([^"]+)";$`)

// dotNodeRE matches one rendered node line: "id" [attrs];
var dotNodeRE = regexp.MustCompile(`^\s*"([^"]+)" \[`)

// TestDOTGolden pins the exact DOT rendering of both built-in models. The
// export is deliberately deterministic (nodes and edges sorted by id), so
// any drift — reordering, quoting, label format — shows up as a diff
// against testdata/<model-id>.dot. Regenerate with: go test ./internal/process -run TestDOTGolden -update
func TestDOTGolden(t *testing.T) {
	for _, m := range []*Model{RollingUpgradeModel(), ScaleOutModel()} {
		t.Run(m.ID(), func(t *testing.T) {
			got := m.DOT()
			golden := filepath.Join("testdata", m.ID()+".dot")
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("DOT output drifted from %s:\n%s", golden, diffLines(string(want), got))
			}
		})
	}
}

// TestDOTWellFormed checks the structural invariants a renderer relies on:
// balanced braces, every node declared exactly once, and every edge
// referencing declared nodes.
func TestDOTWellFormed(t *testing.T) {
	for _, m := range []*Model{RollingUpgradeModel(), ScaleOutModel()} {
		t.Run(m.ID(), func(t *testing.T) {
			dot := m.DOT()
			if open, close := strings.Count(dot, "{"), strings.Count(dot, "}"); open != close {
				t.Errorf("unbalanced braces: %d open, %d close", open, close)
			}
			if !strings.HasPrefix(dot, fmt.Sprintf("digraph %q {", m.ID())) {
				t.Errorf("missing digraph header in:\n%s", dot)
			}

			declared := make(map[string]bool)
			var edges [][2]string
			for _, line := range strings.Split(dot, "\n") {
				if mm := dotEdgeRE.FindStringSubmatch(line); mm != nil {
					edges = append(edges, [2]string{mm[1], mm[2]})
					continue
				}
				if mm := dotNodeRE.FindStringSubmatch(line); mm != nil {
					if declared[mm[1]] {
						t.Errorf("node %q declared twice", mm[1])
					}
					declared[mm[1]] = true
				}
			}
			if len(declared) != len(m.Nodes()) {
				t.Errorf("declared %d nodes, model has %d", len(declared), len(m.Nodes()))
			}
			if len(edges) == 0 {
				t.Fatal("no edges rendered")
			}
			for _, e := range edges {
				if !declared[e[0]] || !declared[e[1]] {
					t.Errorf("edge %q -> %q references an undeclared node", e[0], e[1])
				}
			}
			// Every model edge must be rendered, and nothing else.
			want := 0
			for _, n := range m.Nodes() {
				want += len(m.Outgoing(n.ID))
			}
			if len(edges) != want {
				t.Errorf("rendered %d edges, model has %d", len(edges), want)
			}
		})
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&sb, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
		}
	}
	return sb.String()
}
