package process

import (
	"errors"
	"fmt"
	"regexp"
	"time"
)

// Builder assembles a Model. Errors are accumulated and reported by Build,
// so call sites can chain declarations without per-call checks.
type Builder struct {
	id    string
	name  string
	nodes map[string]*Node
	order []string
	edges []Edge
	errs  []error
	errPs []string
}

// NewBuilder starts a model with the given id and display name.
func NewBuilder(id, name string) *Builder {
	return &Builder{id: id, name: name, nodes: make(map[string]*Node)}
}

// NodeOption customizes a node added via the Builder.
type NodeOption func(*Node)

// WithName sets the human-readable name (defaults to the id).
func WithName(name string) NodeOption {
	return func(n *Node) { n.Name = name }
}

// WithStep sets the process-context step id.
func WithStep(stepID string) NodeOption {
	return func(n *Node) { n.StepID = stepID }
}

// WithPatterns sets the log-line regular expressions of an activity.
func WithPatterns(patterns ...string) NodeOption {
	return func(n *Node) { n.Patterns = append([]string(nil), patterns...) }
}

// WithMeanDuration records the historical mean duration of the step.
func WithMeanDuration(d time.Duration) NodeOption {
	return func(n *Node) { n.MeanDuration = d }
}

// WithMultiLine marks an activity that logs start/progress/end lines, so
// consecutive lines of the same activity replay as fit.
func WithMultiLine() NodeOption {
	return func(n *Node) { n.MultiLine = true }
}

// WithFinal marks the activity whose occurrence ends the operation.
func WithFinal() NodeOption {
	return func(n *Node) { n.Final = true }
}

// WithRecurring marks an activity as legitimately occurring at any time
// while the process instance is active.
func WithRecurring() NodeOption {
	return func(n *Node) { n.Recurring = true }
}

// Start adds the start event node and returns its id.
func (b *Builder) Start(id string) string { return b.node(id, KindStart) }

// End adds an end event node and returns its id.
func (b *Builder) End(id string) string { return b.node(id, KindEnd) }

// Gateway adds an exclusive (XOR) gateway and returns its id.
func (b *Builder) Gateway(id string) string { return b.node(id, KindGateway) }

// ANDGateway adds a parallel (AND) gateway — a fork when it has several
// outgoing flows, a join when it has several incoming — and returns its id.
func (b *Builder) ANDGateway(id string) string { return b.node(id, KindANDGateway) }

// Activity adds an activity node and returns its id.
func (b *Builder) Activity(id string, opts ...NodeOption) string {
	nodeID := b.node(id, KindActivity)
	if n, ok := b.nodes[id]; ok {
		for _, opt := range opts {
			opt(n)
		}
	}
	return nodeID
}

// Flow adds a sequence flow between two previously added nodes.
func (b *Builder) Flow(from, to string) *Builder {
	b.edges = append(b.edges, Edge{From: from, To: to})
	return b
}

// Chain adds flows linking each consecutive pair of node ids.
func (b *Builder) Chain(ids ...string) *Builder {
	for i := 0; i+1 < len(ids); i++ {
		b.Flow(ids[i], ids[i+1])
	}
	return b
}

// Errors registers model-level known-error patterns.
func (b *Builder) Errors(patterns ...string) *Builder {
	b.errPs = append(b.errPs, patterns...)
	return b
}

func (b *Builder) node(id string, kind NodeKind) string {
	if id == "" {
		b.errs = append(b.errs, errors.New("node id must not be empty"))
		return id
	}
	if _, ok := b.nodes[id]; ok {
		b.errs = append(b.errs, fmt.Errorf("duplicate node id %q", id))
		return id
	}
	b.nodes[id] = &Node{ID: id, Name: id, Kind: kind}
	b.order = append(b.order, id)
	return id
}

// addNode inserts a fully specified node (used when deserializing).
func (b *Builder) addNode(n *Node) {
	if n == nil {
		b.errs = append(b.errs, errors.New("nil node"))
		return
	}
	if _, ok := b.nodes[n.ID]; ok {
		b.errs = append(b.errs, fmt.Errorf("duplicate node id %q", n.ID))
		return
	}
	cp := *n
	cp.Patterns = append([]string(nil), n.Patterns...)
	b.nodes[n.ID] = &cp
	b.order = append(b.order, n.ID)
}

// Build validates the model and compiles its patterns. The model must have
// exactly one start node, at least one end node, edges referencing known
// nodes, every node reachable from the start, and valid regular
// expressions.
func (b *Builder) Build() (*Model, error) {
	errs := append([]error(nil), b.errs...)
	m := &Model{
		id:    b.id,
		name:  b.name,
		nodes: make(map[string]*Node, len(b.nodes)),
		out:   make(map[string][]string),
		in:    make(map[string][]string),
	}
	if b.id == "" {
		errs = append(errs, errors.New("model id must not be empty"))
	}
	for _, id := range b.order {
		n := b.nodes[id]
		m.nodes[id] = n
		switch n.Kind {
		case KindStart:
			if m.start != "" {
				errs = append(errs, fmt.Errorf("multiple start nodes: %q and %q", m.start, id))
			}
			m.start = id
		case KindEnd:
			m.ends = append(m.ends, id)
		}
		for _, p := range n.Patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				errs = append(errs, fmt.Errorf("activity %q pattern %q: %w", id, p, err))
				continue
			}
			n.compiled = append(n.compiled, re)
		}
	}
	if m.start == "" {
		errs = append(errs, errors.New("model has no start node"))
	}
	if len(m.ends) == 0 {
		errs = append(errs, errors.New("model has no end node"))
	}
	for _, e := range b.edges {
		if _, ok := m.nodes[e.From]; !ok {
			errs = append(errs, fmt.Errorf("edge from unknown node %q", e.From))
			continue
		}
		if _, ok := m.nodes[e.To]; !ok {
			errs = append(errs, fmt.Errorf("edge to unknown node %q", e.To))
			continue
		}
		m.out[e.From] = append(m.out[e.From], e.To)
		m.in[e.To] = append(m.in[e.To], e.From)
	}
	for _, p := range b.errPs {
		re, err := regexp.Compile(p)
		if err != nil {
			errs = append(errs, fmt.Errorf("error pattern %q: %w", p, err))
			continue
		}
		m.errorPatterns = append(m.errorPatterns, re)
		m.errorSources = append(m.errorSources, p)
	}
	if m.start != "" {
		if unreachable := m.unreachableFrom(m.start); len(unreachable) > 0 {
			errs = append(errs, fmt.Errorf("nodes unreachable from start: %v", unreachable))
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("process: invalid model %q: %w", b.id, errors.Join(errs...))
	}
	return m, nil
}

// unreachableFrom returns node ids not reachable from the given node,
// ignoring recurring activities (which float free of the main flow).
func (m *Model) unreachableFrom(start string) []string {
	seen := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range m.out[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	var missing []string
	for _, id := range m.sortedNodeIDs() {
		if !seen[id] && !m.nodes[id].Recurring {
			missing = append(missing, id)
		}
	}
	return missing
}
