package process

import "time"

// Canonical node and step ids of the scale-out process model. Scale-out is
// the second sporadic operation shipped with the library, demonstrating
// the paper's generality claim (§III.C: "the approach is generalizable to
// other operations"): a new process model, an assertion specification, and
// the existing fault trees are all it takes to put a different operation
// under POD-Diagnosis.
const (
	ScaleOutModelID = "scale-out"

	NodeSOStart    = "so-start-task"  // sostep1: Start scale-out task
	NodeSORequest  = "so-request"     // sostep2: Request new desired capacity
	NodeSOWait     = "so-wait"        // sostep3: Wait for instances to join
	NodeSOJoined   = "so-joined"      // sostep4: Instance joined and in service
	NodeSOComplete = "so-completed"   // sostep5: Scale-out completed
	NodeSOStatus   = "so-status-info" // recurring status line

	StepSOStart    = "sostep1"
	StepSORequest  = "sostep2"
	StepSOWait     = "sostep3"
	StepSOJoined   = "sostep4"
	StepSOComplete = "sostep5"
)

// ScaleOutModel returns the process model of an ASG scale-out: request the
// new capacity, then loop waiting for each new instance to come in service
// and register, and complete.
func ScaleOutModel() *Model {
	b := NewBuilder(ScaleOutModelID, "Scale-Out (ASG)")
	b.Start("start")
	b.End("end")
	b.Gateway("g-so-entry")
	b.Gateway("g-so-exit")

	b.Activity(NodeSOStart,
		WithName("Start scale-out task"),
		WithStep(StepSOStart),
		WithPatterns(`Starting scale-out of group \S+ from \d+ to \d+ instances`),
		WithMeanDuration(2*time.Second),
	)
	b.Activity(NodeSORequest,
		WithName("Request new desired capacity"),
		WithStep(StepSORequest),
		WithPatterns(`Requested desired capacity \d+ for group \S+`),
		WithMeanDuration(3*time.Second),
	)
	b.Activity(NodeSOWait,
		WithName("Wait for a new instance to join"),
		WithStep(StepSOWait),
		WithPatterns(`Waiting for group \S+ to reach \d+ in-service instances`),
		WithMeanDuration(100*time.Second),
	)
	b.Activity(NodeSOJoined,
		WithName("New instance in service and registered"),
		WithStep(StepSOJoined),
		WithPatterns(`Instance \S+ joined group \S+\. \d+ of \d+ instances in service\.`),
		WithMeanDuration(10*time.Second),
	)
	b.Activity(NodeSOComplete,
		WithName("Scale-out completed"),
		WithStep(StepSOComplete),
		WithPatterns(`Scale-out of group \S+ completed`),
		WithFinal(),
	)
	b.Activity(NodeSOStatus,
		WithName("Status info"),
		WithPatterns(`Scale-out status: \d+ of \d+ instances in service`),
		WithRecurring(),
	)

	b.Chain("start", NodeSOStart, NodeSORequest, "g-so-entry", NodeSOWait, NodeSOJoined, "g-so-exit")
	b.Flow("g-so-exit", "g-so-entry")
	b.Flow("g-so-exit", NodeSOComplete)
	b.Flow(NodeSOComplete, "end")

	b.Errors(
		`(?i)\berror\b`,
		`(?i)\bexception\b`,
		`(?i)\bfail(ed|ure)\b`,
		`(?i)\btimed? ?out\b`,
	)

	m, err := b.Build()
	if err != nil {
		panic("process: canonical scale-out model invalid: " + err.Error())
	}
	return m
}

// ScaleOutSpecText is the assertion specification for the scale-out
// operation: capacity checks after the request and on completion, a
// periodic reachability check, and a stall timer on the waiting step.
const ScaleOutSpecText = `
on sostep4 assert asg-instance-count want={progress}
on sostep5 assert asg-instance-count want={n}
on sostep5 assert elb-instance-count want={n}
every 60s assert elb-reachable
after sostep3 timeout assert asg-instance-count want={next}
`
