package process

import "time"

// Canonical node ids and step ids of the rolling-upgrade process model
// (paper Figure 2). The upgrade orchestrator emits log lines matching the
// patterns below; assertion triggers and fault trees key off the step ids.
const (
	RollingUpgradeModelID = "rolling-upgrade"

	NodeStartTask    = "start-task"     // step1: Start rolling upgrade task
	NodeUpdateLC     = "update-lc"      // step2: Update launch configuration
	NodeSortInst     = "sort-instances" // step3: Sort instances
	NodeDeregister   = "deregister-old" // step4: Remove and deregister old instance from ELB
	NodeTerminateOld = "terminate-old"  // step5: Terminate old instance
	NodeWaitASG      = "wait-asg"       // step6: Wait for ASG to start new instance
	NodeNewReady     = "new-ready"      // step7: New instance ready and registered with ELB
	NodeCompleted    = "task-completed" // step8: Rolling upgrade task completed
	NodeStatusInfo   = "status-info"    // recurring: Status info

	StepStartTask    = "step1"
	StepUpdateLC     = "step2"
	StepSortInst     = "step3"
	StepDeregister   = "step4"
	StepTerminateOld = "step5"
	StepWaitASG      = "step6"
	StepNewReady     = "step7"
	StepCompleted    = "step8"
)

// RollingUpgradeModel returns the process model of Figure 2: a linear
// prefix (start task, update launch configuration, sort instances), a
// replacement loop (deregister, terminate, wait for ASG, new instance
// ready) executed once per old instance, and a completion activity. The
// recurring "Status info" activity may appear at any point. Mean durations
// reflect the historical timing profile used to set timer timeouts.
func RollingUpgradeModel() *Model {
	b := NewBuilder(RollingUpgradeModelID, "Rolling Upgrade (Asgard)")
	start := b.Start("start")
	end := b.End("end")
	loopEntry := b.Gateway("g-loop-entry")
	loopExit := b.Gateway("g-loop-exit")

	b.Activity(NodeStartTask,
		WithName("Start rolling upgrade task"),
		WithStep(StepStartTask),
		WithPatterns(`Starting rolling upgrade of group \S+ to image \S+`),
		WithMeanDuration(2*time.Second),
	)
	b.Activity(NodeUpdateLC,
		WithName("Update launch configuration"),
		WithStep(StepUpdateLC),
		WithPatterns(
			`Created launch configuration \S+ with image \S+`,
			`Updated group \S+ to launch configuration \S+`,
		),
		WithMultiLine(),
		WithMeanDuration(4*time.Second),
	)
	b.Activity(NodeSortInst,
		WithName("Sort instances"),
		WithStep(StepSortInst),
		WithPatterns(`Sorted \d+ instances for replacement`),
		WithMeanDuration(2*time.Second),
	)
	b.Activity(NodeDeregister,
		WithName("Remove and deregister old instance from ELB"),
		WithStep(StepDeregister),
		WithPatterns(`Removed and deregistered instance \S+ from ELB \S+`),
		WithMeanDuration(5*time.Second),
	)
	b.Activity(NodeTerminateOld,
		WithName("Terminate old instance"),
		WithStep(StepTerminateOld),
		WithPatterns(`Terminating old instance \S+`),
		WithMeanDuration(25*time.Second),
	)
	b.Activity(NodeWaitASG,
		WithName("Wait for ASG to start new instance"),
		WithStep(StepWaitASG),
		WithPatterns(`Waiting for group \S+ to start a new instance`),
		WithMeanDuration(100*time.Second),
	)
	b.Activity(NodeNewReady,
		WithName("New instance ready and registered with ELB"),
		WithStep(StepNewReady),
		WithPatterns(`Instance \S+ on \S+ is ready for use\. \d+ of \d+ instance relaunches done\.`),
		WithMeanDuration(10*time.Second),
	)
	b.Activity(NodeCompleted,
		WithName("Rolling upgrade task completed"),
		WithStep(StepCompleted),
		WithPatterns(`Rolling upgrade task completed`),
		WithFinal(),
	)
	b.Activity(NodeStatusInfo,
		WithName("Status info"),
		WithPatterns(`Status: \d+ of \d+ instances replaced`),
		WithRecurring(),
	)

	b.Chain("start", NodeStartTask, NodeUpdateLC, NodeSortInst, "g-loop-entry", NodeDeregister,
		NodeTerminateOld, NodeWaitASG, NodeNewReady, "g-loop-exit")
	b.Flow(loopExit, loopEntry) // next old instance
	b.Flow(loopExit, NodeCompleted)
	b.Flow(NodeCompleted, end)
	_ = start
	_ = end
	_ = loopEntry

	b.Errors(
		`(?i)\berror\b`,
		`(?i)\bexception\b`,
		`(?i)\bfail(ed|ure)\b`,
		`(?i)\btimed? ?out\b`,
	)

	m, err := b.Build()
	if err != nil {
		// The canonical model is static; failure to build is a programming
		// error caught by the test suite.
		panic("process: canonical rolling upgrade model invalid: " + err.Error())
	}
	return m
}
