package process

import "time"

// Canonical node and step ids of the spot-rebalance process model. The
// operation watches a group running on interruptible (spot) capacity:
// whenever the provider reclaims instances, the group must replace them
// and restore full capacity before the watch window closes. Its diagnosis
// knowledge is the declarative plan document plan-spot-rebalance, which
// references the ssstepN ids below.
const (
	SpotRebalanceModelID = "spot-rebalance"

	NodeSSStart       = "ss-start-task"  // ssstep1: Start the rebalance watch
	NodeSSInterrupted = "ss-interrupted" // ssstep2: Interruption noticed, waiting
	NodeSSJoined      = "ss-joined"      // ssstep3: Replacement in service
	NodeSSRestored    = "ss-restored"    // ssstep4: Capacity restored
	NodeSSComplete    = "ss-completed"   // ssstep5: Watch completed
	NodeSSStatus      = "ss-status-info" // recurring status line

	StepSSStart       = "ssstep1"
	StepSSInterrupted = "ssstep2"
	StepSSJoined      = "ssstep3"
	StepSSRestored    = "ssstep4"
	StepSSComplete    = "ssstep5"
)

// SpotRebalanceModel returns the process model of a spot-capacity
// rebalance watch: after the start, the interruption loop (notice missing
// capacity, wait for the replacement to join) repeats zero or more times
// — the bypass flow keeps an interruption-free watch conformant — then
// capacity is declared restored and the watch completes.
func SpotRebalanceModel() *Model {
	b := NewBuilder(SpotRebalanceModelID, "Spot Rebalance")
	b.Start("start")
	b.End("end")
	b.Gateway("g-ss-pre")
	b.Gateway("g-ss-entry")
	b.Gateway("g-ss-exit")
	b.Gateway("g-ss-post")

	b.Activity(NodeSSStart,
		WithName("Start spot rebalance watch"),
		WithStep(StepSSStart),
		WithPatterns(`Starting spot rebalance watch of group \S+ with \d+ instances`),
		WithMeanDuration(2*time.Second),
	)
	b.Activity(NodeSSInterrupted,
		WithName("Interruption noticed, waiting for replacement"),
		WithStep(StepSSInterrupted),
		WithPatterns(`Waiting for group \S+ to replace \d+ interrupted instances?`),
		WithMeanDuration(110*time.Second),
	)
	b.Activity(NodeSSJoined,
		WithName("Replacement instance in service"),
		WithStep(StepSSJoined),
		WithPatterns(`Replacement \S+ joined group \S+\. \d+ of \d+ instances in service\.`),
		WithMeanDuration(10*time.Second),
	)
	b.Activity(NodeSSRestored,
		WithName("Capacity restored"),
		WithStep(StepSSRestored),
		WithPatterns(`Capacity of group \S+ restored to \d+ instances`),
		WithMeanDuration(5*time.Second),
	)
	b.Activity(NodeSSComplete,
		WithName("Spot rebalance watch completed"),
		WithStep(StepSSComplete),
		WithPatterns(`Spot rebalance of group \S+ completed`),
		WithFinal(),
	)
	b.Activity(NodeSSStatus,
		WithName("Status info"),
		WithPatterns(`Spot rebalance status: \d+ of \d+ instances in service`),
		WithRecurring(),
	)

	b.Chain("start", NodeSSStart, "g-ss-pre")
	b.Flow("g-ss-pre", "g-ss-entry")
	b.Flow("g-ss-pre", "g-ss-post") // interruption-free watch
	b.Chain("g-ss-entry", NodeSSInterrupted, NodeSSJoined, "g-ss-exit")
	b.Flow("g-ss-exit", "g-ss-entry") // next interruption
	b.Flow("g-ss-exit", "g-ss-post")
	b.Chain("g-ss-post", NodeSSRestored, NodeSSComplete, "end")

	b.Errors(
		`(?i)\berror\b`,
		`(?i)\bexception\b`,
		`(?i)\bfail(ed|ure)\b`,
		`(?i)\btimed? ?out\b`,
	)

	m, err := b.Build()
	if err != nil {
		panic("process: canonical spot-rebalance model invalid: " + err.Error())
	}
	return m
}

// SpotRebalanceSpecText is the assertion specification for the
// spot-rebalance watch. The capacity assertion on ssstep2 is the
// detection workhorse: the moment the process notices missing capacity
// the group really is short, the assertion fails, and the diagnosis
// distinguishes WHY (operator termination, simultaneous scale-in,
// account limit) via plan-spot-rebalance. The window parameter widens
// the audit/activity lookback of the downstream diagnosis tests past
// the whole watch: an interruption early in the window must still be
// attributable when a late assertion walks the plan.
const SpotRebalanceSpecText = `
on ssstep2 assert asg-instance-count want={n} window=15m
on ssstep3 assert asg-instance-count want={progress} window=15m
on ssstep4 assert asg-instance-count want={n} window=15m
on ssstep5 assert asg-instance-count want={n} window=15m
on ssstep5 assert elb-instance-count want={n}
every 60s assert elb-reachable
after ssstep2 timeout assert asg-instance-count want={n} window=15m
`
