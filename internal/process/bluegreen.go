package process

import "time"

// Canonical node and step ids of the blue/green deploy process model.
// Blue/green is the third sporadic operation in the library: instead of
// replacing instances in place (rolling upgrade), a complete green fleet
// is launched next to the blue one, traffic is shifted at the load
// balancer, and the blue group is retired. Its diagnosis knowledge lives
// in the declarative plan documents plan-bluegreen, plan-bluegreen-lc and
// plan-bluegreen-elb, which reference the bgstepN ids below.
const (
	BlueGreenModelID = "blue-green"

	NodeBGStart       = "bg-start-task"   // bgstep1: Start blue/green deploy
	NodeBGCreateLC    = "bg-create-lc"    // bgstep2: Create green launch configuration
	NodeBGCreateGroup = "bg-create-group" // bgstep3: Create green group, launch fleet
	NodeBGJoined      = "bg-green-joined" // bgstep4: Green instance in service
	NodeBGCutover     = "bg-cutover"      // bgstep5: Shift load balancer to green
	NodeBGRetire      = "bg-retire-blue"  // bgstep6: Retire the blue group
	NodeBGComplete    = "bg-completed"    // bgstep7: Deploy completed
	NodeBGStatus      = "bg-status-info"  // recurring status line

	StepBGStart       = "bgstep1"
	StepBGCreateLC    = "bgstep2"
	StepBGCreateGroup = "bgstep3"
	StepBGJoined      = "bgstep4"
	StepBGCutover     = "bgstep5"
	StepBGRetire      = "bgstep6"
	StepBGComplete    = "bgstep7"
)

// BlueGreenModel returns the process model of a blue/green deploy: create
// the green launch configuration and group, wait for every green instance
// to come in service (the whole fleet boots in parallel, so the joins
// loop), shift the load balancer to the green set, retire the blue group,
// and complete.
func BlueGreenModel() *Model {
	b := NewBuilder(BlueGreenModelID, "Blue/Green Deploy")
	b.Start("start")
	b.End("end")
	b.Gateway("g-bg-entry")
	b.Gateway("g-bg-exit")

	b.Activity(NodeBGStart,
		WithName("Start blue/green deploy"),
		WithStep(StepBGStart),
		WithPatterns(`Starting blue/green deploy of group \S+ to version \S+`),
		WithMeanDuration(2*time.Second),
	)
	b.Activity(NodeBGCreateLC,
		WithName("Create green launch configuration"),
		WithStep(StepBGCreateLC),
		WithPatterns(`Created green launch configuration \S+`),
		WithMeanDuration(5*time.Second),
	)
	// The mean covers the green fleet's parallel boot up to the first
	// join, so the bgstep3 timer deadline has the paper's 95th-percentile
	// semantics for "green group created but nothing ever came up".
	b.Activity(NodeBGCreateGroup,
		WithName("Create green group and launch the fleet"),
		WithStep(StepBGCreateGroup),
		WithPatterns(`Created green group \S+ behind \S+`),
		WithMeanDuration(110*time.Second),
	)
	b.Activity(NodeBGJoined,
		WithName("Green instance in service"),
		WithStep(StepBGJoined),
		WithPatterns(`Instance \S+ joined green group \S+\. \d+ of \d+ instances in service\.`),
		WithMeanDuration(40*time.Second),
	)
	b.Activity(NodeBGCutover,
		WithName("Shift load balancer to green"),
		WithStep(StepBGCutover),
		WithPatterns(`Shifted load balancer \S+ to green group \S+\. \d+ of \d+ instances registered\.`),
		WithMeanDuration(20*time.Second),
	)
	b.Activity(NodeBGRetire,
		WithName("Retire the blue group"),
		WithStep(StepBGRetire),
		WithPatterns(`Retired blue group \S+`),
		WithMeanDuration(15*time.Second),
	)
	b.Activity(NodeBGComplete,
		WithName("Blue/green deploy completed"),
		WithStep(StepBGComplete),
		WithPatterns(`Blue/green deploy of group \S+ completed`),
		WithFinal(),
	)
	b.Activity(NodeBGStatus,
		WithName("Status info"),
		WithPatterns(`Blue/green status: \d+ of \d+ green instances in service`),
		WithRecurring(),
	)

	b.Chain("start", NodeBGStart, NodeBGCreateLC, NodeBGCreateGroup, "g-bg-entry", NodeBGJoined, "g-bg-exit")
	b.Flow("g-bg-exit", "g-bg-entry")
	b.Flow("g-bg-exit", NodeBGCutover)
	b.Chain(NodeBGCutover, NodeBGRetire, NodeBGComplete, "end")

	b.Errors(
		`(?i)\berror\b`,
		`(?i)\bexception\b`,
		`(?i)\bfail(ed|ure)\b`,
		`(?i)\btimed? ?out\b`,
	)

	m, err := b.Build()
	if err != nil {
		panic("process: canonical blue/green model invalid: " + err.Error())
	}
	return m
}

// BlueGreenSpecText is the assertion specification for the blue/green
// deploy: the green launch configuration must exist after bgstep2, the
// green group must hold {progress} new-version instances after each join,
// the shared load balancer must serve exactly the green set after the
// cutover, and the completed deploy must pass the four low-level
// configuration checks. Timers cover the silent-stall windows of the
// green fleet launch.
const BlueGreenSpecText = `
on bgstep2 assert lc-exists
on bgstep4 assert asg-version-count want={progress}
on bgstep5 assert elb-instance-count want={n}
on bgstep6 assert asg-version-count want={n}
on bgstep7 assert asg-version-count want={n}
on bgstep7 assert asg-instance-count want={n}
every 60s assert elb-reachable
after bgstep3 timeout assert asg-version-count want={next}
after bgstep4 timeout assert asg-version-count want={next}
`
