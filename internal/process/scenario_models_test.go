package process

import "testing"

// The blue/green and spot-rebalance models must expose the exact step ids
// the shipped diagnosis plan documents reference (bgstep2..bgstep7,
// ssstep2..ssstep4): step-context pruning silently empties a plan whose
// scopes drift from the model.
func TestBlueGreenModelShape(t *testing.T) {
	m := BlueGreenModel()
	if m.ID() != BlueGreenModelID {
		t.Errorf("id = %s", m.ID())
	}
	final := m.Node(NodeBGComplete)
	if final == nil || !final.Final {
		t.Error("completion activity not marked final")
	}
	for _, step := range []string{
		StepBGStart, StepBGCreateLC, StepBGCreateGroup, StepBGJoined,
		StepBGCutover, StepBGRetire, StepBGComplete,
	} {
		if m.ActivityByStep(step) == nil {
			t.Errorf("no activity for step %s", step)
		}
	}
	if BlueGreenSpecText == "" {
		t.Fatal("no spec text")
	}
}

func TestSpotRebalanceModelShape(t *testing.T) {
	m := SpotRebalanceModel()
	if m.ID() != SpotRebalanceModelID {
		t.Errorf("id = %s", m.ID())
	}
	final := m.Node(NodeSSComplete)
	if final == nil || !final.Final {
		t.Error("completion activity not marked final")
	}
	for _, step := range []string{
		StepSSStart, StepSSInterrupted, StepSSJoined, StepSSRestored, StepSSComplete,
	} {
		if m.ActivityByStep(step) == nil {
			t.Errorf("no activity for step %s", step)
		}
	}
	if SpotRebalanceSpecText == "" {
		t.Fatal("no spec text")
	}
}

// The scenario vocabularies must not leak into each other or into the
// rolling-upgrade model: classification routes lines to sessions, and an
// ambiguous line would attach one scenario's progress to another's walk.
func TestScenarioModelVocabulariesDisjoint(t *testing.T) {
	lines := map[string]string{
		"blue-green":     "Instance i-1 joined green group g. 1 of 2 instances in service.",
		"spot-rebalance": "Replacement i-2 joined group g. 2 of 2 instances in service.",
		"scale-out":      "Instance i-3 joined group g. 1 of 2 instances in service.",
	}
	models := map[string]*Model{
		"blue-green":     BlueGreenModel(),
		"spot-rebalance": SpotRebalanceModel(),
		"scale-out":      ScaleOutModel(),
	}
	for owner, line := range lines {
		for id, m := range models {
			_, found := m.Classify(line)
			if found != (id == owner) {
				t.Errorf("model %s classifies %q: %v", id, line, found)
			}
		}
	}
}
