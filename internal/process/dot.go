package process

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DOT renders the model in Graphviz dot format, so discovered and
// hand-built models (e.g. Figure 2) can be visualized side by side.
// Activities are boxes annotated with their step id and historical mean
// duration; gateways are diamonds; start/end events are circles.
func (m *Model) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", m.id)
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [fontname=\"Helvetica\", fontsize=11];\n")
	for _, n := range m.Nodes() {
		switch n.Kind {
		case KindStart:
			fmt.Fprintf(&b, "  %q [shape=circle, label=\"\", width=0.25, style=filled, fillcolor=black];\n", n.ID)
		case KindEnd:
			fmt.Fprintf(&b, "  %q [shape=doublecircle, label=\"\", width=0.2, style=filled, fillcolor=black];\n", n.ID)
		case KindGateway:
			fmt.Fprintf(&b, "  %q [shape=diamond, label=\"X\", width=0.4, height=0.4];\n", n.ID)
		case KindANDGateway:
			fmt.Fprintf(&b, "  %q [shape=diamond, label=\"+\", width=0.4, height=0.4];\n", n.ID)
		case KindActivity:
			label := n.Name
			if n.StepID != "" {
				label += "\\n[" + n.StepID + "]"
			}
			if n.MeanDuration > 0 {
				label += fmt.Sprintf("\\n~%s", n.MeanDuration.Round(time.Second))
			}
			style := "rounded"
			if n.Recurring {
				style = "rounded,dashed"
			}
			fmt.Fprintf(&b, "  %q [shape=box, style=%q, label=%q];\n", n.ID, style, label)
		}
	}
	ids := m.sortedNodeIDs()
	for _, from := range ids {
		tos := append([]string(nil), m.out[from]...)
		sort.Strings(tos)
		for _, to := range tos {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
