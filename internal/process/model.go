// Package process defines the process models at the heart of
// POD-Diagnosis: directed graphs of activities, XOR gateways and start/end
// events (a pragmatic subset of BPMN, per the paper §III.B.2), each
// activity carrying the regular expressions that map raw log lines onto it
// plus its process-context metadata (step id, historical duration).
//
// Models are built offline — by hand with Builder, or discovered from logs
// by the mining package — and consumed online by conformance checking and
// the assertion trigger machinery.
package process

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"time"
)

// NodeKind distinguishes the node types of a model.
type NodeKind int

// Node kinds.
const (
	KindStart NodeKind = iota + 1
	KindActivity
	KindGateway // exclusive (XOR) gateway
	KindEnd
	KindANDGateway // parallel (AND) gateway: fork/join
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindActivity:
		return "activity"
	case KindGateway:
		return "gateway"
	case KindEnd:
		return "end"
	case KindANDGateway:
		return "and-gateway"
	default:
		return "unknown"
	}
}

// Node is one vertex of a process model.
type Node struct {
	// ID uniquely identifies the node within its model.
	ID string `json:"id"`
	// Name is the human-readable activity name, e.g. "Update launch
	// configuration".
	Name string `json:"name"`
	// Kind is the node type.
	Kind NodeKind `json:"kind"`
	// StepID is the process-context step label, e.g. "step2". Empty for
	// non-activities.
	StepID string `json:"stepId,omitempty"`
	// Patterns are the regular expressions whose match assigns a log
	// line to this activity (the paper's transformation rules, §III.A).
	Patterns []string `json:"patterns,omitempty"`
	// MeanDuration is the historical mean time from this activity to the
	// next (Figure 2 "time data"); used to derive timer timeouts.
	MeanDuration time.Duration `json:"meanDuration,omitempty"`
	// MultiLine marks activities that log several lines (start, progress,
	// end); repeats while the token occupies the activity replay as fit.
	MultiLine bool `json:"multiLine,omitempty"`
	// Final marks the activity whose log line ends the operation (used by
	// the log pipeline to stop the process's timers).
	Final bool `json:"final,omitempty"`
	// Recurring marks activities that may legitimately occur at any time
	// while the instance is active (e.g. periodic "Status info" lines);
	// they replay as fit without consuming a token.
	Recurring bool `json:"recurring,omitempty"`

	compiled []*regexp.Regexp
}

// Edge is a directed sequence flow between two nodes.
type Edge struct {
	// From and To are node ids.
	From string `json:"from"`
	To   string `json:"to"`
}

// Model is a validated process model.
type Model struct {
	id    string
	name  string
	nodes map[string]*Node
	out   map[string][]string
	in    map[string][]string
	start string
	ends  []string
	// errorPatterns classify lines as known errors ([conformance:error]).
	errorPatterns []*regexp.Regexp
	errorSources  []string
}

// ID returns the model id.
func (m *Model) ID() string { return m.id }

// Name returns the model name.
func (m *Model) Name() string { return m.name }

// Node returns the node with the given id, or nil.
func (m *Model) Node(id string) *Node { return m.nodes[id] }

// Start returns the id of the start node.
func (m *Model) Start() string { return m.start }

// Ends returns the ids of the end nodes.
func (m *Model) Ends() []string { return append([]string(nil), m.ends...) }

// Outgoing returns the successor node ids of id.
func (m *Model) Outgoing(id string) []string {
	return append([]string(nil), m.out[id]...)
}

// Incoming returns the predecessor node ids of id.
func (m *Model) Incoming(id string) []string {
	return append([]string(nil), m.in[id]...)
}

// Nodes returns all nodes sorted by id.
func (m *Model) Nodes() []*Node {
	out := make([]*Node, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Activities returns all activity nodes sorted by id.
func (m *Model) Activities() []*Node {
	var out []*Node
	for _, n := range m.Nodes() {
		if n.Kind == KindActivity {
			out = append(out, n)
		}
	}
	return out
}

// ActivityByStep returns the activity with the given step id, or nil.
func (m *Model) ActivityByStep(stepID string) *Node {
	for _, n := range m.nodes {
		if n.Kind == KindActivity && n.StepID == stepID {
			return n
		}
	}
	return nil
}

// Classify maps a raw log line to the activity whose pattern matches.
// It returns the activity node and true, or nil and false when no pattern
// matches. When several activities match, the one with the longest
// matching pattern wins (most specific rule).
func (m *Model) Classify(line string) (*Node, bool) {
	var best *Node
	bestLen := -1
	for _, id := range m.sortedNodeIDs() {
		n := m.nodes[id]
		for _, re := range n.compiled {
			if re.MatchString(line) && len(re.String()) > bestLen {
				best, bestLen = n, len(re.String())
			}
		}
	}
	return best, best != nil
}

// IsErrorLine reports whether the line matches a known-error pattern.
func (m *Model) IsErrorLine(line string) bool {
	for _, re := range m.errorPatterns {
		if re.MatchString(line) {
			return true
		}
	}
	return false
}

// ErrorPatterns returns the model's known-error pattern sources.
func (m *Model) ErrorPatterns() []string {
	return append([]string(nil), m.errorSources...)
}

func (m *Model) sortedNodeIDs() []string {
	ids := make([]string, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// modelJSON is the serialized form of a Model.
type modelJSON struct {
	ID            string   `json:"id"`
	Name          string   `json:"name"`
	Nodes         []*Node  `json:"nodes"`
	Edges         []Edge   `json:"edges"`
	ErrorPatterns []string `json:"errorPatterns,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m *Model) MarshalJSON() ([]byte, error) {
	doc := modelJSON{ID: m.id, Name: m.name, Nodes: m.Nodes(), ErrorPatterns: m.errorSources}
	for _, from := range m.sortedNodeIDs() {
		for _, to := range m.out[from] {
			doc.Edges = append(doc.Edges, Edge{From: from, To: to})
		}
	}
	return json.Marshal(doc)
}

// UnmarshalModel parses a model from its JSON form, revalidating it.
func UnmarshalModel(data []byte) (*Model, error) {
	var doc modelJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("process: unmarshal model: %w", err)
	}
	b := NewBuilder(doc.ID, doc.Name)
	for _, n := range doc.Nodes {
		b.addNode(n)
	}
	for _, e := range doc.Edges {
		b.Flow(e.From, e.To)
	}
	b.Errors(doc.ErrorPatterns...)
	return b.Build()
}
