package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/logstore"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/pipeline"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/simaws"
)

// Manager metrics: multi-tenant counterparts of the engine metrics.
var (
	mWorkers = obs.Default.Gauge("pod_engine_workers",
		"Size of the shared assertion/diagnosis worker pool.")
	mSessions = obs.Default.GaugeVec("pod_manager_sessions",
		"Monitoring sessions by lifecycle state.", "state")
	mShardPending = obs.Default.GaugeVec("pod_manager_shard_pending",
		"Queued plus in-flight work items by process-instance shard.", "shard")
	mOpDetections = obs.Default.CounterVec("pod_manager_detections_total",
		"Recorded detections by operation (session id).", "operation")
	mRouted = obs.Default.CounterVec("pod_manager_routed_total",
		"Annotated events routed to sessions by outcome.", "outcome")
	mDrainStranded = obs.Default.Counter("pod_manager_drain_stranded_total",
		"Backlog items (buffered events plus queued and in-flight work) still outstanding when a Drain timed out.")
)

// numShards is the number of process-instance shards the manager routes
// across. Sharding bounds lock contention between concurrently monitored
// operations and gives the backlog gauges a stable label set.
const numShards = 16

// ManagerConfig assembles a Manager: the substrate shared by every
// monitoring session. Per-operation knobs (expectation, assertion spec,
// timer cadence) live on Watch options instead.
type ManagerConfig struct {
	// Cloud is the simulated AWS account.
	Cloud *simaws.Cloud
	// Bus carries log events between components.
	Bus *logging.Bus
	// Model is the operation's process model. Defaults to the rolling
	// upgrade model of Figure 2.
	Model *process.Model
	// Registry is the assertion library. Defaults to the built-in one.
	Registry *assertion.Registry
	// Plans is the diagnosis plan catalog the engine walks. Takes
	// precedence over Trees. Defaults to compiling Trees (or, when both
	// are nil, to the built-in compiled rolling-upgrade catalog).
	Plans *diagplan.Catalog
	// Trees is the legacy fault-tree knowledge base; when Plans is nil it
	// is compiled into the plan catalog the engine walks.
	Trees *faulttree.Repository
	// API tunes the consistent API layer.
	API consistentapi.Config
	// AssertionSpec is the default assertion specification for sessions
	// that don't override it. Empty means assertspec.DefaultSpecText.
	AssertionSpec string
	// PeriodicInterval is the default cadence of the periodic capacity
	// assertion (§III.B.3). Defaults to 60s.
	PeriodicInterval time.Duration
	// StepTimeoutSlack scales historical step durations into one-off
	// timer deadlines. Defaults to 1.6.
	StepTimeoutSlack float64
	// DisableConformance turns off conformance checking (ablation A2).
	DisableConformance bool
	// DisableAssertions turns off assertion triggering (ablation A2).
	DisableAssertions bool
	// Diagnosis tunes the diagnosis engine.
	Diagnosis diagnosis.Options
	// MaxDetections caps recorded detections per session. Zero means 64.
	MaxDetections int
	// Workers sizes the shared worker pool for assertion evaluations and
	// diagnoses. Defaults to runtime.GOMAXPROCS(0), minimum 2.
	Workers int
	// Retention is how long (simulated time) an ended session stays
	// queryable before garbage collection. Defaults to 10 minutes.
	Retention time.Duration
	// OnUnknownInstance, when set, is consulted for process instance ids
	// no session claims. Returning a non-nil Expectation lazily registers
	// a session bound to that instance; returning nil drops the event's
	// triggers (it still reaches central storage).
	OnUnknownInstance func(instanceID string, ev logging.Event) *Expectation
	// ReorderWindow is how long the lossy-pipeline reorder buffer holds an
	// out-of-order operation event for its predecessors before declaring
	// them lost. Defaults to 3s.
	ReorderWindow time.Duration
	// ReorderMaxPending bounds held events per source stream. Defaults to
	// 256.
	ReorderMaxPending int
	// DegradedHold is how long (simulated time) sessions stay in degraded
	// mode after a sequence gap is declared. Defaults to 30s.
	DegradedHold time.Duration
	// LogTap, when set, decorates the operation-log subscription channel
	// before the reorder buffer — the chaos harness's injection point
	// (chaos.Profile.LogTap). The decorator must close its output after
	// the input closes.
	LogTap func(<-chan logging.Event) <-chan logging.Event
	// FlightCapacity bounds the causal flight recorder's per-operation
	// evidence ring. Zero means flight.DefaultCapacity.
	FlightCapacity int
	// DisableFlight turns off the causal flight recorder; timelines come
	// back empty and detections carry no evidence ids.
	DisableFlight bool
	// ChaosLabel names the active chaos profile on the pod_slo_* latency
	// histograms, so chaos-run latencies are distinguishable from clean
	// ones. Empty means "none".
	ChaosLabel string
	// Remediation is the closed-loop remediation policy. The zero value
	// (all classes off) disables remediation entirely, so existing
	// deployments are unaffected unless they opt in.
	Remediation remediate.Policy
	// RemediationCatalog overrides the action↔cause catalog. Nil means
	// remediate.DefaultCatalog when Remediation is enabled.
	RemediationCatalog *remediate.Catalog
}

// Manager owns the shared POD-Diagnosis substrate — bus subscriptions, the
// local log processor, central log storage, the consistent API client, the
// assertion evaluator, the diagnosis engine, the timer wheel and one
// worker pool — and routes annotated events to per-operation Sessions
// sharded by process-instance id. It is the multi-tenant refactor of the
// original single-operation Engine (§IV deploys conformance, assertion and
// diagnosis as shared services that many operation instances post into).
type Manager struct {
	cfg         ManagerConfig
	defaultSpec *assertspec.Spec
	clk         clock.Clock
	checker     *conformance.Checker // service checker for the REST surface
	evaluator   *assertion.Evaluator
	diag        *diagnosis.Engine
	processor   *pipeline.Processor
	store       *logstore.Store
	central     *logstore.CentralProcessor
	timers      *assertion.TimerSet
	flight      *flight.Recorder  // nil when DisableFlight
	rem         *remediate.Engine // nil unless cfg.Remediation is enabled
	workers     int

	opSub      *logging.Subscription
	centralSub *logging.Subscription
	reorder    *pipeline.ReorderBuffer
	pipeWG     sync.WaitGroup // the reorder consume goroutine

	shards [numShards]shard

	mu       sync.Mutex
	sessions map[string]*Session
	order    []*Session // insertion order, for adoption scans and listings
	nextID   int

	pending atomic.Int64 // queued + in-flight work items across all sessions

	work   sync.WaitGroup
	gc     sync.WaitGroup
	workCh chan func()
	stop   chan struct{}
}

// shard maps process instance ids to their owning session and tracks the
// shard's share of the work backlog.
type shard struct {
	mu       sync.RWMutex
	owner    map[string]*Session
	pending  atomic.Int64
	depthVec *obs.Gauge
}

// shardOf hashes a process instance id onto a shard index.
func shardOf(instanceID string) int {
	h := fnv.New32a()
	h.Write([]byte(instanceID))
	return int(h.Sum32() % numShards)
}

// NewManager validates the config and builds the shared substrate. Call
// Start to begin processing, Watch to register operations, and Stop to
// shut down.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Cloud == nil || cfg.Bus == nil {
		return nil, fmt.Errorf("core: Cloud and Bus are required")
	}
	if cfg.Model == nil {
		cfg.Model = process.RollingUpgradeModel()
	}
	if cfg.Registry == nil {
		cfg.Registry = assertion.DefaultRegistry()
	}
	if cfg.Plans == nil {
		if cfg.Trees != nil {
			cat, err := cfg.Trees.Compile()
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			cfg.Plans = cat
		} else {
			cfg.Plans = faulttree.DefaultCatalog()
		}
	}
	if cfg.PeriodicInterval <= 0 {
		cfg.PeriodicInterval = time.Minute
	}
	if cfg.StepTimeoutSlack <= 0 {
		cfg.StepTimeoutSlack = 1.6
	}
	if cfg.MaxDetections <= 0 {
		cfg.MaxDetections = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 10 * time.Minute
	}
	if cfg.ReorderWindow <= 0 {
		cfg.ReorderWindow = 3 * time.Second
	}
	if cfg.ReorderMaxPending <= 0 {
		cfg.ReorderMaxPending = 256
	}
	if cfg.DegradedHold <= 0 {
		cfg.DegradedHold = 30 * time.Second
	}
	if cfg.ChaosLabel == "" {
		cfg.ChaosLabel = "none"
	}
	if cfg.Diagnosis.Workers <= 0 {
		// Diagnosis plan walks fan out to the same width as the manager
		// pool unless explicitly tuned. The diagnosis engine bounds its own
		// goroutines separately, so walks running ON pool workers cannot
		// deadlock against pool capacity.
		cfg.Diagnosis.Workers = cfg.Workers
	}
	if err := cfg.Plans.Validate(cfg.Registry); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	specText := cfg.AssertionSpec
	if specText == "" {
		specText = assertspec.DefaultSpecText
	}
	spec, err := assertspec.Parse(specText, cfg.Registry)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	client := consistentapi.New(cfg.Cloud, cfg.API)
	queueCap := 64 * cfg.Workers
	if queueCap < 256 {
		queueCap = 256
	}
	m := &Manager{
		cfg:         cfg,
		defaultSpec: spec,
		clk:         cfg.Cloud.Clock(),
		checker:     conformance.NewChecker(cfg.Model),
		evaluator:   assertion.NewEvaluator(client, cfg.Registry, cfg.Bus),
		store:       logstore.NewStore(),
		timers:      assertion.NewTimerSet(cfg.Cloud.Clock()),
		workers:     cfg.Workers,
		sessions:    make(map[string]*Session),
		workCh:      make(chan func(), queueCap),
		stop:        make(chan struct{}),
	}
	if !cfg.DisableFlight {
		m.flight = flight.NewRecorder(m.clk, cfg.FlightCapacity)
	}
	if cfg.Remediation.Enabled() {
		m.rem = remediate.NewEngine(cfg.RemediationCatalog, cfg.Remediation, m.clk)
	}
	for i := range m.shards {
		m.shards[i].owner = make(map[string]*Session)
		m.shards[i].depthVec = mShardPending.With(strconv.Itoa(i))
	}
	m.diag = diagnosis.NewEngine(cfg.Plans, m.evaluator, cfg.Bus, cfg.Diagnosis)
	m.processor = pipeline.NewRouted(cfg.Model, m.store, m.route)
	m.central = logstore.NewCentralProcessor(m.store, nil)
	// The reorder/dedup buffer repairs the lossy shipping fabric in front
	// of the local log processor: duplicates are discarded, out-of-order
	// events wait for their predecessors, and declared gaps push every
	// active session into degraded mode before processing resumes.
	m.reorder = pipeline.NewReorderBuffer(m.clk, pipeline.ReorderOptions{
		Window:     cfg.ReorderWindow,
		MaxPending: cfg.ReorderMaxPending,
		Schedule:   func(d time.Duration, f func()) func() { return m.timers.After(d, f) },
	}, func(d pipeline.Delivery) {
		if d.GapBefore {
			m.notifyGap()
		}
		// Make stream repair visible to evidence timelines: a held event
		// waited out of order; gap-before means its predecessors were
		// declared lost. The annotation rides as an event field so it
		// survives the trip through the processor to the sessions.
		if d.GapBefore {
			d.Event = d.Event.WithField("reorder", "gap-before")
		} else if d.Held {
			d.Event = d.Event.WithField("reorder", "held")
		}
		m.processor.Process(d.Event)
	})
	return m, nil
}

// notifyGap pushes every active session into degraded mode: a declared
// sequence gap on the shared shipping fabric may have swallowed any
// session's events, so none can trust the absence of a log line until the
// hold expires.
func (m *Manager) notifyGap() {
	now := m.clk.Now()
	m.mu.Lock()
	sessions := make([]*Session, len(m.order))
	copy(sessions, m.order)
	m.mu.Unlock()
	for _, s := range sessions {
		if !s.ended() {
			s.noteGap(now)
			if id := m.flight.Op(s.id).Record(flight.Entry{
				Kind: flight.KindStreamGap, At: now,
				Message: "sequence gap on the shipping fabric; degraded hold armed",
			}); id != 0 {
				s.setLastGap(id)
			}
		}
	}
}

// Start begins consuming log events, routing them to sessions, and runs
// the worker pool plus the session garbage collector.
func (m *Manager) Start() {
	m.opSub = m.cfg.Bus.SubscribeNamed("pipeline", 4096, logging.TypeFilter(logging.TypeOperation))
	m.centralSub = m.cfg.Bus.SubscribeNamed("central", 4096, logging.TypeFilter(
		logging.TypeCloud, logging.TypeAssertion, logging.TypeConformance, logging.TypeDiagnosis))
	// Operation events reach the processor through the reorder buffer
	// (optionally behind the chaos tap), not a direct pipeline loop: the
	// consume goroutine ends when the subscription channel closes.
	ch := (<-chan logging.Event)(m.opSub.C)
	if m.cfg.LogTap != nil {
		ch = m.cfg.LogTap(ch)
	}
	m.pipeWG.Add(1)
	go func() {
		defer m.pipeWG.Done()
		for ev := range ch {
			m.reorder.Offer(ev)
		}
		// Stream over: release anything still held so late conformance
		// verdicts are not silently lost.
		m.reorder.Close()
	}()
	m.central.Start(m.centralSub)
	mWorkers.Set(float64(m.workers))
	// Shared worker pool for assertion evaluations and diagnoses so
	// pipeline callbacks never block on cloud API latency.
	for i := 0; i < m.workers; i++ {
		m.work.Add(1)
		go func() {
			defer m.work.Done()
			for {
				select {
				case <-m.stop:
					return
				case f := <-m.workCh:
					f()
				}
			}
		}()
	}
	// Session GC: sweep ended sessions past the retention window. One
	// ticker for the loop's lifetime — clk.After per iteration left the
	// previous timer live (uncollectable until it fired) every pass.
	m.gc.Add(1)
	go func() {
		defer m.gc.Done()
		interval := m.cfg.Retention / 4
		if interval <= 0 {
			interval = time.Minute
		}
		ticker := clock.NewTicker(m.clk, interval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.sweep()
			}
		}
	}()
}

// Stop shuts down the manager: timers, pipeline, workers, GC. Pending
// queued work is discarded; in-flight work completes.
func (m *Manager) Stop() {
	m.timers.StopAll()
	// Close the operation stream first and wait for the reorder consume
	// goroutine to drain it into the processor before stopping anything
	// downstream.
	m.opSub.Cancel()
	m.pipeWG.Wait()
	m.processor.Stop()
	m.central.Stop()
	m.centralSub.Cancel()
	close(m.stop)
	m.work.Wait()
	m.gc.Wait()
}

// WatchOption customizes a session at registration time.
type WatchOption func(*watchOptions)

type watchOptions struct {
	id               string
	bind             []string
	matchASG         bool
	matchAny         bool
	specText         string
	periodicInterval time.Duration
	stepSlack        float64
	maxDetections    int
	remCtl           remediate.OperationController
}

// WithSessionID names the session; default ids are op-1, op-2, ...
func WithSessionID(id string) WatchOption { return func(o *watchOptions) { o.id = id } }

// BindInstance pre-binds process instance ids (e.g. the upgrade task id)
// to the session. A session with only explicit bindings auto-ends once
// every bound instance's process completes.
func BindInstance(ids ...string) WatchOption {
	return func(o *watchOptions) { o.bind = append(o.bind, ids...) }
}

// MatchASGInstances adopts unknown process instances whose annotated
// events reference the session's ASG (extracted "asgid" field, or the
// instance id embedding the ASG name).
func MatchASGInstances() WatchOption { return func(o *watchOptions) { o.matchASG = true } }

// MatchAnyInstance adopts every unclaimed process instance. This is the
// single-operation compatibility mode used by NewEngine.
func MatchAnyInstance() WatchOption { return func(o *watchOptions) { o.matchAny = true } }

// WithAssertionSpec overrides the manager's default assertion spec for
// this session.
func WithAssertionSpec(text string) WatchOption {
	return func(o *watchOptions) { o.specText = text }
}

// WithPeriodicInterval overrides the periodic assertion cadence for this
// session.
func WithPeriodicInterval(d time.Duration) WatchOption {
	return func(o *watchOptions) { o.periodicInterval = d }
}

// WithStepTimeoutSlack overrides the step-timer slack for this session.
func WithStepTimeoutSlack(slack float64) WatchOption {
	return func(o *watchOptions) { o.stepSlack = slack }
}

// WithMaxDetections overrides the per-session detection cap.
func WithMaxDetections(n int) WatchOption {
	return func(o *watchOptions) { o.maxDetections = n }
}

// WithRemediationController attaches the controller remediation uses to
// steer the operation itself (retry the failed step, abort). Sessions
// without one still run environment-level actions; operation-level ones
// are recorded as skipped.
func WithRemediationController(rc remediate.OperationController) WatchOption {
	return func(o *watchOptions) { o.remCtl = rc }
}

// Watch registers a new monitoring session for one operation and returns
// its handle. The expectation is validated and normalized (MinInService
// defaults to ClusterSize-1).
func (m *Manager) Watch(x Expectation, opts ...WatchOption) (*Session, error) {
	if x.ASGName == "" || x.ClusterSize <= 0 {
		return nil, fmt.Errorf("core: Expect.ASGName and Expect.ClusterSize are required")
	}
	if x.MinInService <= 0 {
		x.MinInService = x.ClusterSize - 1
		if x.MinInService < 1 {
			x.MinInService = 1
		}
	}
	var o watchOptions
	for _, opt := range opts {
		opt(&o)
	}
	spec := m.defaultSpec
	if o.specText != "" {
		parsed, err := assertspec.Parse(o.specText, m.cfg.Registry)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		spec = parsed
	}
	if o.periodicInterval <= 0 {
		o.periodicInterval = m.cfg.PeriodicInterval
	}
	if o.stepSlack <= 0 {
		o.stepSlack = m.cfg.StepTimeoutSlack
	}
	if o.maxDetections <= 0 {
		o.maxDetections = m.cfg.MaxDetections
	}

	s := &Session{
		mgr:              m,
		expect:           x,
		spec:             spec,
		specText:         o.specText,
		checker:          conformance.NewChecker(m.cfg.Model),
		periodicInterval: o.periodicInterval,
		stepSlack:        o.stepSlack,
		maxDetections:    o.maxDetections,
		remCtl:           o.remCtl,
		matchAny:         o.matchAny,
		matchASG:         o.matchASG,
		state:            SessionActive,
		bound:            make(map[string]bool),
		instances:        make(map[string]bool),
		completed:        make(map[string]bool),
		seen:             make(map[string]int),
		identified:       make(map[string]bool),
		progress:         make(map[string]int),
		total:            make(map[string]int),
		stepCancel:       make(map[string]func()),
		perioCancel:      make(map[string]func()),
		lastEntry:        make(map[string]uint64),
	}

	m.mu.Lock()
	if o.id == "" {
		m.nextID++
		o.id = fmt.Sprintf("op-%d", m.nextID)
	}
	if _, dup := m.sessions[o.id]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("core: session %q already exists", o.id)
	}
	s.id = o.id
	// The evidence ring is created before the session becomes routable,
	// so pipeline handlers never observe a half-wired session.
	s.flight = m.flight.Op(s.id)
	m.sessions[s.id] = s
	m.order = append(m.order, s)
	m.mu.Unlock()

	for _, id := range o.bind {
		m.bind(id, s, true)
	}
	mSessions.With(string(SessionActive)).Inc()
	return s, nil
}

// Session returns the session with the given id, or nil.
func (m *Manager) Session(id string) *Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions[id]
}

// Sessions lists all sessions in registration order.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, len(m.order))
	copy(out, m.order)
	return out
}

// Remove ends the session (if still active) and deletes it immediately,
// without waiting for the retention sweep. It reports whether the session
// existed.
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	s.End()
	m.drop([]*Session{s})
	return true
}

// bind maps an instance id to its owning session.
func (m *Manager) bind(instanceID string, s *Session, explicit bool) {
	sh := &m.shards[shardOf(instanceID)]
	sh.mu.Lock()
	sh.owner[instanceID] = s
	sh.mu.Unlock()
	s.adopt(instanceID, explicit)
}

// route resolves the session for an annotated event; it is the pipeline's
// Router. Unknown instances are offered to active matching sessions, then
// to the lazy-registration callback, and otherwise dropped (their lines
// still reach central storage).
func (m *Manager) route(instanceID string, ev logging.Event) pipeline.Handler {
	sh := &m.shards[shardOf(instanceID)]
	sh.mu.RLock()
	s := sh.owner[instanceID]
	sh.mu.RUnlock()
	if s != nil {
		if s.ended() {
			mRouted.With("ended").Inc()
			return nil
		}
		mRouted.With("session").Inc()
		return s
	}

	// Adoption scan: the first event of an unknown instance may carry the
	// extracted "asgid" field; task ids also embed the ASG name.
	m.mu.Lock()
	for _, cand := range m.order {
		if cand.ended() {
			continue
		}
		if cand.matchAny ||
			(cand.matchASG && (ev.Field("asgid") == cand.expect.ASGName ||
				strings.Contains(instanceID, cand.expect.ASGName))) {
			s = cand
			break
		}
	}
	m.mu.Unlock()
	if s != nil {
		m.bind(instanceID, s, false)
		mRouted.With("adopted").Inc()
		return s
	}

	// Lazy registration: ask the callback (outside m.mu — it may Watch).
	if m.cfg.OnUnknownInstance != nil {
		if x := m.cfg.OnUnknownInstance(instanceID, ev); x != nil {
			reg, err := m.Watch(*x, BindInstance(instanceID))
			if err == nil {
				mRouted.With("registered").Inc()
				return reg
			}
		}
	}
	mRouted.With("dropped").Inc()
	return nil
}

// submit queues background work for an instance's shard, dropping it if
// the manager is stopping or the queue is full (detection bursts beyond
// the cap carry no new information). dropped is called when the work is
// discarded instead of run.
func (m *Manager) submit(instanceID string, f func(), dropped func()) {
	sh := &m.shards[shardOf(instanceID)]
	m.pending.Add(1)
	sh.depthVec.Set(float64(sh.pending.Add(1)))
	done := func() {
		m.pending.Add(-1)
		sh.depthVec.Set(float64(sh.pending.Add(-1)))
	}
	wrapped := func() {
		defer done()
		f()
	}
	select {
	case <-m.stop:
		done()
		dropped()
		mWorkDropped.Inc()
	case m.workCh <- wrapped:
	default:
		done()
		dropped()
		mWorkDropped.Inc()
	}
}

// sessionEnded updates the lifecycle gauges when a session ends.
func (m *Manager) sessionEnded() {
	mSessions.With(string(SessionActive)).Add(-1)
	mSessions.With(string(SessionEnded)).Inc()
}

// sweep garbage-collects sessions that ended before the retention window.
func (m *Manager) sweep() {
	cutoff := m.clk.Now().Add(-m.cfg.Retention)
	var expired []*Session
	m.mu.Lock()
	for _, s := range m.order {
		s.mu.Lock()
		gone := s.state == SessionEnded && s.endedAt.Before(cutoff)
		s.mu.Unlock()
		if gone {
			expired = append(expired, s)
		}
	}
	m.mu.Unlock()
	if len(expired) > 0 {
		m.drop(expired)
	}
}

// drop removes sessions from the registry and the instance shards.
func (m *Manager) drop(victims []*Session) {
	dead := make(map[*Session]bool, len(victims))
	for _, s := range victims {
		dead[s] = true
	}
	m.mu.Lock()
	kept := m.order[:0]
	for _, s := range m.order {
		if dead[s] {
			delete(m.sessions, s.id)
			mSessions.With(string(SessionEnded)).Add(-1)
			continue
		}
		kept = append(kept, s)
	}
	m.order = kept
	m.mu.Unlock()
	for _, s := range victims {
		// Evidence rings and remediation records share session retention:
		// GC'd together. Pending approvals for dropped operations become
		// not-found, matching the vanished session.
		m.flight.Drop(s.id)
		if m.rem != nil {
			m.rem.Drop(s.id)
		}
	}
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, s := range sh.owner {
			if dead[s] {
				delete(sh.owner, id)
			}
		}
		sh.mu.Unlock()
	}
}

// Drain waits until the log subscriptions and the worker pool have been
// quiescent — no buffered events, no queued or in-flight work — for a few
// consecutive polls, or until the (simulated-clock) timeout elapses or ctx
// is cancelled. It reports whether quiescence was reached. Harnesses use
// it to collect straggling evaluations and diagnoses after an operation
// ends. Callers that need to know WHAT was left behind use
// DrainStranded.
func (m *Manager) Drain(ctx context.Context, timeout time.Duration) bool {
	ok, _ := m.DrainStranded(ctx, timeout)
	return ok
}

// DrainStranded is Drain returning the stranded backlog alongside the
// verdict: on timeout the second return is the queue snapshot at the
// moment the drain gave up (its Depth is also added to
// pod_manager_drain_stranded_total), so callers report exactly what
// was abandoned instead of proceeding on a silent false. A successful
// drain returns a zero-backlog snapshot.
func (m *Manager) DrainStranded(ctx context.Context, timeout time.Duration) (bool, ManagerQueue) {
	if m.drainQuiesced(ctx, timeout) {
		return true, ManagerQueue{}
	}
	q := m.QueueDepth()
	mDrainStranded.Add(float64(q.Depth()))
	return false, q
}

// drainQuiesced polls for quiescence until the timeout.
func (m *Manager) drainQuiesced(ctx context.Context, timeout time.Duration) bool {
	deadline := m.clk.Now().Add(timeout)
	poll := timeout / 200
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	quiet := 0
	for m.clk.Now().Before(deadline) {
		if len(m.opSub.C) == 0 && len(m.centralSub.C) == 0 &&
			m.reorder.Pending() == 0 &&
			len(m.workCh) == 0 && m.pending.Load() == 0 {
			quiet++
			if quiet >= 3 {
				return true
			}
		} else {
			quiet = 0
		}
		if err := m.clk.Sleep(ctx, poll); err != nil {
			return false
		}
	}
	return false
}

// Store returns the central log storage.
func (m *Manager) Store() *logstore.Store { return m.store }

// Evaluator returns the shared assertion evaluator.
func (m *Manager) Evaluator() *assertion.Evaluator { return m.evaluator }

// Checker returns the manager's service conformance checker — the one the
// REST POST /conformance/check surface replays into. Sessions keep their
// own private checkers.
func (m *Manager) Checker() *conformance.Checker { return m.checker }

// Diagnoser returns the shared diagnosis engine.
func (m *Manager) Diagnoser() *diagnosis.Engine { return m.diag }

// ReorderStats snapshots the lossy-pipeline repair counters.
func (m *Manager) ReorderStats() pipeline.ReorderStats { return m.reorder.Stats() }

// Flight returns the causal flight recorder (nil when disabled).
func (m *Manager) Flight() *flight.Recorder { return m.flight }

// Remediator returns the closed-loop remediation engine, or nil when the
// manager's remediation policy is disabled.
func (m *Manager) Remediator() *remediate.Engine { return m.rem }

// Clock returns the manager's (simulated) clock.
func (m *Manager) Clock() clock.Clock { return m.clk }

// ManagerQueue reports the manager's backlog: shared worker queue, the two
// log subscriptions, and the per-session pending work.
type ManagerQueue struct {
	// Work is the number of queued work items on the shared pool.
	Work int `json:"work"`
	// OpEvents is the operation-log subscription backlog.
	OpEvents int `json:"opEvents"`
	// CentralEvents is the central-merge subscription backlog.
	CentralEvents int `json:"centralEvents"`
	// Sessions maps session id to its queued + in-flight work items.
	Sessions map[string]int `json:"sessions,omitempty"`
}

// Depth is the total backlog. Per-session pending counts already include
// the queued items on the shared pool, so Work is informational and not
// double-counted.
func (q ManagerQueue) Depth() int {
	d := q.OpEvents + q.CentralEvents
	for _, n := range q.Sessions {
		d += n
	}
	if q.Work > d {
		d = q.Work
	}
	return d
}

// QueueDepth snapshots the manager's backlog.
func (m *Manager) QueueDepth() ManagerQueue {
	q := ManagerQueue{
		Work:          len(m.workCh),
		OpEvents:      len(m.opSub.C),
		CentralEvents: len(m.centralSub.C),
		Sessions:      make(map[string]int),
	}
	m.mu.Lock()
	order := make([]*Session, len(m.order))
	copy(order, m.order)
	m.mu.Unlock()
	for _, s := range order {
		q.Sessions[s.id] = s.Pending()
	}
	return q
}

// publishConformance logs the verdict to the bus (merged into central
// storage like the paper's conformance service results).
func (m *Manager) publishConformance(instanceID string, res conformance.Result, ev logging.Event) {
	m.cfg.Bus.Publish(logging.Event{
		Timestamp:  ev.Timestamp,
		Source:     "conformance.log",
		SourceHost: "pod-conformance",
		Type:       logging.TypeConformance,
		Tags:       []string{res.Verdict.Tag()},
		Fields: map[string]string{
			"taskid":  instanceID,
			"stepid":  res.StepID,
			"verdict": string(res.Verdict),
		},
		Message: fmt.Sprintf("[conformance] [%s] [%s] verdict=%s activity=%s",
			instanceID, res.StepID, res.Verdict, res.ActivityID),
	})
}
