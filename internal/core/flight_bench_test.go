package core

import (
	"fmt"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
)

// ingestTrace is the per-line ingest workload: the bodies of one clean
// 4-instance rolling upgrade, the same shape the bus delivers.
func ingestTrace() []string {
	lines := []string{
		"Starting rolling upgrade of group pm--asg to image ami-new",
		"Created launch configuration pm--asg-lc-ami-new with image ami-new",
		"Updated group pm--asg to launch configuration pm--asg-lc-ami-new",
		"Sorted 4 instances for replacement",
	}
	for i := 0; i < 4; i++ {
		lines = append(lines,
			fmt.Sprintf("Removed and deregistered instance i-%04d from ELB pm-elb", i),
			fmt.Sprintf("Terminating old instance i-%04d", i),
			"Waiting for group pm--asg to start a new instance",
			fmt.Sprintf("Instance pm on i-9%03d is ready for use. %d of 4 instance relaunches done.", i, i+1),
		)
	}
	return append(lines, "Rolling upgrade task completed")
}

// benchIngest measures the per-line session ingest hot path — evidence
// recording plus conformance token replay — with the flight recorder on
// or off. Assertions are disabled so no cloud calls ride along: the
// benchmark isolates exactly the code the recorder adds to.
func benchIngest(b *testing.B, disableFlight bool) {
	b.Helper()
	clk := clock.NewScaled(1000, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	cloud := simaws.New(clk, simaws.FastProfile(), simaws.WithSeed(1), simaws.WithBus(bus))
	cloud.Start()
	mgr, err := NewManager(ManagerConfig{
		Cloud: cloud, Bus: bus,
		DisableAssertions: true,
		DisableFlight:     disableFlight,
	})
	if err != nil {
		b.Fatal(err)
	}
	mgr.Start()
	b.Cleanup(func() { mgr.Stop(); cloud.Stop(); bus.Close() })
	sess, err := mgr.Watch(Expectation{ASGName: "pm--asg", ClusterSize: 4}, BindInstance("t"))
	if err != nil {
		b.Fatal(err)
	}

	lines := ingestTrace()
	evs := make([]logging.Event, len(lines))
	now := clk.Now()
	for i, l := range lines {
		evs[i] = logging.Event{
			Timestamp: now, Type: logging.TypeOperation,
			Message: l, Seq: uint64(i + 1), CauseID: uint64(i + 1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, line := range lines {
			sess.OnConformance("t", line, evs[j])
		}
	}
	b.ReportMetric(float64(len(lines)), "events/op")
}

// BenchmarkIngestFlightRecorder compares the session ingest hot path
// with the causal flight recorder enabled versus disabled; the recorder
// must stay within a few percent of the disabled path (BENCH_ingest.json
// pins the baseline, CI runs the smoke variant).
func BenchmarkIngestFlightRecorder(b *testing.B) {
	b.Run("recorder=on", func(b *testing.B) { benchIngest(b, false) })
	b.Run("recorder=off", func(b *testing.B) { benchIngest(b, true) })
}
