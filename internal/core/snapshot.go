package core

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/obs/flight"
	"poddiagnosis/internal/remediate"
)

// SessionSnapshot is the portable state of one monitoring session:
// everything a federation handoff must carry so the adopting manager
// resumes the operation where the dying one left it — expectation,
// process position (conformance replay state), detections and their
// dedup/settlement maps, degraded state, the remediation ledger with
// its idempotency keys, and the flight-recorder evidence ring.
//
// TestSnapshotCoversSessionFields enforces completeness by reflection:
// adding a Session field without carrying it here (or explicitly
// excusing it) fails the build's tests, so handoff cannot silently
// lose state.
type SessionSnapshot struct {
	ID     string      `json:"id"`
	Expect Expectation `json:"expect"`
	// SpecText is the session's assertion-spec override; empty means
	// the adopting manager's default spec.
	SpecText         string        `json:"specText,omitempty"`
	PeriodicInterval time.Duration `json:"periodicInterval,omitempty"`
	StepSlack        float64       `json:"stepSlack,omitempty"`
	MaxDetections    int           `json:"maxDetections,omitempty"`
	MatchAny         bool          `json:"matchAny,omitempty"`
	MatchASG         bool          `json:"matchAsg,omitempty"`

	State   SessionState `json:"state"`
	EndedAt time.Time    `json:"endedAt,omitempty"`
	// Bound are the explicitly bound instance ids; Instances every
	// instance routed to the session; Completed the instances whose
	// process reached an end state.
	Completed  []string          `json:"completed,omitempty"`
	Bound      []string          `json:"bound,omitempty"`
	Instances  []string          `json:"instances,omitempty"`
	Detections []Detection       `json:"detections,omitempty"`
	Seen       map[string]int    `json:"seen,omitempty"`
	Identified []string          `json:"identified,omitempty"`
	Progress   map[string]int    `json:"progress,omitempty"`
	Total      map[string]int    `json:"total,omitempty"`
	LastEntry  map[string]uint64 `json:"lastEntry,omitempty"`
	FlightGap  uint64            `json:"flightGap,omitempty"`
	// DegradedUntil is the degraded-hold deadline; restore extends it
	// past the handoff itself (the handoff is a known loss window).
	DegradedUntil time.Time `json:"degradedUntil,omitempty"`

	// Conformance is the per-instance token-replay state; Flight the
	// evidence ring; Remediations the audit ledger with idempotency
	// keys.
	Conformance  []conformance.InstanceSnapshot `json:"conformance,omitempty"`
	Flight       flight.Timeline                `json:"flight"`
	Remediations []remediate.Remediation        `json:"remediations,omitempty"`

	// TakenAt is the simulated time the snapshot was exported.
	TakenAt time.Time `json:"takenAt"`
	// FromMember / HandoffEpoch are stamped by the federation front
	// before a restore; they parameterize the handoff evidence entry
	// and the split-brain guard.
	FromMember   string `json:"fromMember,omitempty"`
	HandoffEpoch uint64 `json:"handoffEpoch,omitempty"`
}

// ExportSession snapshots the named session for handoff. The session
// keeps running; the snapshot is a consistent copy of each subsystem's
// state at export time.
func (m *Manager) ExportSession(id string) (*SessionSnapshot, error) {
	m.mu.Lock()
	s := m.sessions[id]
	m.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("core: session %q not found", id)
	}
	return s.snapshot(), nil
}

// snapshot exports the session's full state.
func (s *Session) snapshot() *SessionSnapshot {
	snap := &SessionSnapshot{
		ID:               s.id,
		Expect:           s.expect,
		SpecText:         s.specText,
		PeriodicInterval: s.periodicInterval,
		StepSlack:        s.stepSlack,
		MaxDetections:    s.maxDetections,
		MatchAny:         s.matchAny,
		MatchASG:         s.matchASG,
		TakenAt:          s.mgr.clk.Now(),
	}
	s.mu.Lock()
	snap.State = s.state
	snap.EndedAt = s.endedAt
	snap.Bound = sortedKeys(s.bound)
	snap.Instances = sortedKeys(s.instances)
	snap.Completed = sortedKeys(s.completed)
	snap.Identified = sortedKeys(s.identified)
	snap.Detections = append([]Detection(nil), s.detections...)
	snap.Seen = copyIntMap(s.seen)
	snap.Progress = copyIntMap(s.progress)
	snap.Total = copyIntMap(s.total)
	if len(s.lastEntry) > 0 {
		snap.LastEntry = make(map[string]uint64, len(s.lastEntry))
		for k, v := range s.lastEntry {
			snap.LastEntry[k] = v
		}
	}
	snap.FlightGap = s.flightGap
	snap.DegradedUntil = s.degradedUntil
	s.mu.Unlock()
	snap.Conformance = s.checker.Export()
	snap.Flight = s.mgr.flight.Timeline(s.id)
	if s.mgr.rem != nil {
		snap.Remediations = s.mgr.rem.Export(s.id)
	}
	return snap
}

// RestoreSession registers a session rebuilt from a snapshot — the
// adopting half of a federation handoff. The evidence ring is imported
// first and a federation.handoff entry is recorded whose parents are
// the restored instances' last log events, so post-handoff evidence
// chains walk through the handoff back to pre-handoff log lines.
// Active sessions re-enter a degraded hold (the handoff is a known
// loss window: lines between the last snapshot and the restore were
// never routed here) and re-arm their periodic capacity timers; step
// timers re-arm on the next step event. Only the
// WithRemediationController option is honored — everything else a
// Watch option could set travels in the snapshot.
func (m *Manager) RestoreSession(snap *SessionSnapshot, opts ...WatchOption) (*Session, error) {
	if snap == nil || snap.ID == "" {
		return nil, fmt.Errorf("core: nil or unnamed session snapshot")
	}
	x := snap.Expect
	if x.ASGName == "" || x.ClusterSize <= 0 {
		return nil, fmt.Errorf("core: snapshot %q: Expect.ASGName and Expect.ClusterSize are required", snap.ID)
	}
	if x.MinInService <= 0 {
		x.MinInService = x.ClusterSize - 1
		if x.MinInService < 1 {
			x.MinInService = 1
		}
	}
	var o watchOptions
	for _, opt := range opts {
		opt(&o)
	}
	spec := m.defaultSpec
	if snap.SpecText != "" {
		parsed, err := assertspec.Parse(snap.SpecText, m.cfg.Registry)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot %q: %w", snap.ID, err)
		}
		spec = parsed
	}
	state := snap.State
	if state == "" {
		state = SessionActive
	}

	s := &Session{
		id:               snap.ID,
		mgr:              m,
		expect:           x,
		spec:             spec,
		specText:         snap.SpecText,
		checker:          conformance.NewChecker(m.cfg.Model),
		periodicInterval: defaultDur(snap.PeriodicInterval, m.cfg.PeriodicInterval),
		stepSlack:        defaultFloat(snap.StepSlack, m.cfg.StepTimeoutSlack),
		maxDetections:    defaultInt(snap.MaxDetections, m.cfg.MaxDetections),
		remCtl:           o.remCtl,
		matchAny:         snap.MatchAny,
		matchASG:         snap.MatchASG,
		state:            state,
		endedAt:          snap.EndedAt,
		bound:            setOf(snap.Bound),
		instances:        setOf(snap.Instances),
		completed:        setOf(snap.Completed),
		detections:       append([]Detection(nil), snap.Detections...),
		seen:             copyIntMap(snap.Seen),
		identified:       setOf(snap.Identified),
		progress:         copyIntMap(snap.Progress),
		total:            copyIntMap(snap.Total),
		stepCancel:       make(map[string]func()),
		perioCancel:      make(map[string]func()),
		lastEntry:        make(map[string]uint64, len(snap.LastEntry)),
		flightGap:        snap.FlightGap,
		degradedUntil:    snap.DegradedUntil,
	}
	if s.seen == nil {
		s.seen = make(map[string]int)
	}
	if s.progress == nil {
		s.progress = make(map[string]int)
	}
	if s.total == nil {
		s.total = make(map[string]int)
	}
	for k, v := range snap.LastEntry {
		s.lastEntry[k] = v
	}
	s.checker.Import(snap.Conformance)

	// Rebuild the evidence ring before the session becomes routable and
	// anchor the handoff in it: parents are the restored instances'
	// last log events, so chains span the handoff.
	s.flight = m.flight.Import(flight.Timeline{
		Operation: snap.ID,
		Entries:   snap.Flight.Entries,
		Dropped:   snap.Flight.Dropped,
	})
	handoffID := s.flight.Record(flight.Entry{
		Kind:    flight.KindHandoff,
		Parents: handoffParents(snap.LastEntry),
		Message: fmt.Sprintf("session %s restored from snapshot (%d detections, %d instances)",
			snap.ID, len(snap.Detections), len(snap.Instances)),
		Attrs: handoffAttrs(snap),
	})
	if state == SessionActive {
		// The handoff is a known loss window: lines published between the
		// snapshot and the restore never reached this manager. Distrust
		// the stream's completeness for a hold, and let degraded
		// detections cite the handoff entry as their gap evidence.
		hold := m.clk.Now().Add(m.cfg.DegradedHold)
		if hold.After(s.degradedUntil) {
			s.degradedUntil = hold
		}
		if handoffID != 0 {
			s.flightGap = handoffID
		}
	}

	m.mu.Lock()
	if _, dup := m.sessions[s.id]; dup {
		m.mu.Unlock()
		m.flight.Drop(s.id)
		return nil, fmt.Errorf("core: session %q already exists", s.id)
	}
	m.sessions[s.id] = s
	m.order = append(m.order, s)
	m.mu.Unlock()

	for _, id := range snap.Instances {
		m.bind(id, s, s.bound[id])
	}
	if m.rem != nil && len(snap.Remediations) > 0 {
		m.rem.Import(snap.Remediations, remediate.Target{
			Cloud:       m.cfg.Cloud,
			ASGName:     x.ASGName,
			ELBName:     x.ELBName,
			NewLCName:   x.NewLCName,
			OldLCName:   x.OldLCName,
			ClusterSize: x.ClusterSize,
			Op:          s.remCtl,
		}, s.flight)
	}
	if state == SessionActive {
		// Re-arm the periodic capacity assertion for every instance still
		// mid-process; one-off step timers re-arm on the next step line.
		for _, id := range snap.Instances {
			if !s.completed[id] {
				s.OnProcessStart(id, logging.Event{})
			}
		}
		mSessions.With(string(SessionActive)).Inc()
	} else {
		mSessions.With(string(SessionEnded)).Inc()
	}
	return s, nil
}

// handoffParents collects the restored last-entry ids, sorted for a
// deterministic evidence entry.
func handoffParents(lastEntry map[string]uint64) []uint64 {
	if len(lastEntry) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(lastEntry))
	for _, id := range lastEntry {
		if id != 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func handoffAttrs(snap *SessionSnapshot) map[string]string {
	attrs := map[string]string{
		"detections": strconv.Itoa(len(snap.Detections)),
		"instances":  strconv.Itoa(len(snap.Instances)),
	}
	if snap.FromMember != "" {
		attrs["from"] = snap.FromMember
	}
	if snap.HandoffEpoch > 0 {
		attrs["epoch"] = strconv.FormatUint(snap.HandoffEpoch, 10)
	}
	return attrs
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func setOf(keys []string) map[string]bool {
	out := make(map[string]bool, len(keys))
	for _, k := range keys {
		out[k] = true
	}
	return out
}

func copyIntMap(in map[string]int) map[string]int {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func defaultDur(v, def time.Duration) time.Duration {
	if v > 0 {
		return v
	}
	return def
}

func defaultFloat(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

func defaultInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}
