package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// Race-detector coverage for the tentpole: many concurrent Diagnose calls
// through one Manager's engine, with parallel walks fanning out inside
// each call and the shared cross-run cache deduplicating identical tests.
// The cloud profile permits stale reads, so the cache TTL (bounded by the
// consistency window) is non-zero and cross-run reuse actually happens.
func TestConcurrentDiagnosesShareTestCache(t *testing.T) {
	clk := clock.NewScaled(1200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.TickInterval = time.Second
	profile.StaleProb = 0.05
	profile.StaleLag = clock.Fixed(5 * time.Second)
	cloud := simaws.New(clk, profile, simaws.WithSeed(44), simaws.WithBus(bus))
	cloud.Start()
	mgr, err := NewManager(ManagerConfig{
		Cloud: cloud,
		Bus:   bus,
		API: consistentapi.Config{
			MaxAttempts:    3,
			InitialBackoff: 500 * time.Millisecond,
			MaxBackoff:     4 * time.Second,
			CallTimeout:    30 * time.Second,
		},
		Workers:   8,
		Diagnosis: diagnosis.Options{Workers: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	t.Cleanup(func() { mgr.Stop(); cloud.Stop(); bus.Close() })

	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "cc", 2, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 5*time.Minute); err != nil {
		t.Fatal(err)
	}

	eng := mgr.Diagnoser()
	if got := eng.Options().Workers; got != 8 {
		t.Fatalf("diagnosis workers = %d, want 8", got)
	}
	cache := eng.Cache()
	if cache == nil {
		t.Fatal("shared cache disabled by default")
	}
	if cache.TTL() <= 0 {
		t.Fatalf("cache TTL = %v, want > 0 under a stale-read profile", cache.TTL())
	}

	req := diagnosis.Request{
		AssertionID:       assertion.CheckASGVersionCount,
		Source:            diagnosis.SourceAssertion,
		ProcessInstanceID: "pushing " + cluster.ASGName,
		StepID:            process.StepNewReady,
		Params: assertion.Params{
			assertion.ParamASG:          cluster.ASGName,
			assertion.ParamELB:          cluster.ELBName,
			assertion.ParamAMI:          cluster.ImageID,
			assertion.ParamKeyPair:      cluster.KeyName,
			assertion.ParamSG:           cluster.SGName,
			assertion.ParamInstanceType: "m1.small",
			assertion.ParamVersion:      cluster.Version,
			assertion.ParamWant:         "2",
			assertion.ParamLC:           cluster.LCName,
		},
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]*diagnosis.Diagnosis, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = eng.Diagnose(ctx, req)
		}(i)
	}
	wg.Wait()

	for i, d := range results {
		if d == nil {
			t.Fatalf("diagnosis %d missing", i)
		}
		// Healthy cluster: every run must agree nothing is wrong.
		if d.Conclusion == diagnosis.ConclusionIdentified {
			t.Errorf("diagnosis %d fabricated a cause: %+v", i, d.RootCauses)
		}
	}
	st := cache.Stats()
	if st.Hits+st.Coalesced == 0 {
		t.Errorf("identical concurrent runs shared nothing: stats %+v", st)
	}
	if st.Evaluations == 0 {
		t.Errorf("no evaluations flowed through the shared cache: stats %+v", st)
	}
}
