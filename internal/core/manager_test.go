package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faultinject"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// multiRig is one simulated cloud with a single Manager watching many
// concurrently upgrading clusters.
type multiRig struct {
	clk   *clock.Scaled
	bus   *logging.Bus
	cloud *simaws.Cloud
	mgr   *Manager
	ctx   context.Context
}

func newMultiRig(t *testing.T, mutate func(*ManagerConfig)) *multiRig {
	t.Helper()
	clk := clock.NewScaled(1200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.TickInterval = time.Second
	cloud := simaws.New(clk, profile, simaws.WithSeed(33), simaws.WithBus(bus))
	cloud.Start()
	cfg := ManagerConfig{
		Cloud: cloud,
		Bus:   bus,
		API: consistentapi.Config{
			MaxAttempts:    3,
			InitialBackoff: 500 * time.Millisecond,
			MaxBackoff:     4 * time.Second,
			CallTimeout:    30 * time.Second,
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	mgr, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr.Start()
	t.Cleanup(func() { mgr.Stop(); cloud.Stop(); bus.Close() })
	return &multiRig{clk: clk, bus: bus, cloud: cloud, mgr: mgr, ctx: context.Background()}
}

// op is one cluster under rolling upgrade with its monitoring session.
type op struct {
	cluster *upgrade.Cluster
	sess    *Session
	taskID  string
	spec    upgrade.Spec
	newAMI  string
}

// addOp deploys a v1 cluster named app, registers a v2 AMI and a session
// bound to the upcoming upgrade task.
func (r *multiRig) addOp(t *testing.T, app string, size int) *op {
	t.Helper()
	cluster, err := upgrade.Deploy(r.ctx, r.cloud, app, size, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(r.ctx, r.cloud, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	newAMI, err := r.cloud.RegisterImage(r.ctx, app+"-v2", "v2", upgrade.AppServices)
	if err != nil {
		t.Fatal(err)
	}
	taskID := "pushing " + cluster.ASGName
	spec := cluster.UpgradeSpec(taskID, newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI
	spec.WaitTimeout = 5 * time.Minute
	spec.PollInterval = 5 * time.Second
	sess, err := r.mgr.Watch(Expectation{
		ASGName:      cluster.ASGName,
		ELBName:      cluster.ELBName,
		NewImageID:   newAMI,
		NewVersion:   "v2",
		NewLCName:    spec.NewLCName,
		KeyName:      cluster.KeyName,
		SGName:       cluster.SGName,
		InstanceType: "m1.small",
		ClusterSize:  size,
	}, BindInstance(taskID), WithSessionID(app))
	if err != nil {
		t.Fatal(err)
	}
	return &op{cluster: cluster, sess: sess, taskID: taskID, spec: spec, newAMI: newAMI}
}

// runAll executes every op's upgrade concurrently and drains the manager.
func (r *multiRig) runAll(t *testing.T, ops []*op) {
	t.Helper()
	var wg sync.WaitGroup
	for _, o := range ops {
		o := o
		wg.Add(1)
		go func() {
			defer wg.Done()
			upgrade.NewUpgrader(r.cloud, r.bus).Run(r.ctx, o.spec)
		}()
	}
	wg.Wait()
	// A generous simulated budget: Drain returns as soon as the manager
	// goes quiet, but under -race on an oversubscribed box the backlog
	// can legitimately need several simulated minutes to empty.
	if ok, stranded := r.mgr.DrainStranded(r.ctx, 10*time.Minute); !ok {
		t.Logf("manager did not fully drain; %d backlog items stranded (continuing with snapshot): %+v",
			stranded.Depth(), stranded)
	}
}

func sessionHasCause(dets []Detection, base string) bool {
	for _, d := range dets {
		if d.Diagnosis != nil && d.Diagnosis.HasCause(base) {
			return true
		}
	}
	return false
}

// TestTwoOverlappingFaultedUpgrades runs two rolling upgrades with
// different injected faults under one Manager and checks that each
// session records only its own operation's detections (no dedup or
// detection bleed across sessions).
func TestTwoOverlappingFaultedUpgrades(t *testing.T) {
	r := newMultiRig(t, nil)
	alpha := r.addOp(t, "alpha", 3)
	beta := r.addOp(t, "beta", 3)

	// alpha: fault 2 (key pair changed mid-upgrade); beta: fault 1 (AMI
	// changed by a concurrent rogue team). Both are cluster-scoped.
	injA := faultinject.NewInjector(r.cloud, alpha.cluster, 7)
	defer injA.Heal()
	injB := faultinject.NewInjector(r.cloud, beta.cluster, 11)
	defer injB.Heal()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = injA.Inject(r.ctx, faultinject.KindKeyPairChanged, 10*time.Second, alpha.spec.NewLCName, alpha.newAMI)
	}()
	go func() {
		defer wg.Done()
		_ = injB.Inject(r.ctx, faultinject.KindAMIChanged, 10*time.Second, beta.spec.NewLCName, beta.newAMI)
	}()
	r.runAll(t, []*op{alpha, beta})
	wg.Wait()
	r.mgr.Drain(r.ctx, 2*time.Minute)

	detsA := alpha.sess.Detections()
	detsB := beta.sess.Detections()
	if len(detsA) == 0 {
		t.Fatal("alpha (key pair fault) produced no detections")
	}
	if len(detsB) == 0 {
		t.Fatal("beta (AMI fault) produced no detections")
	}
	for _, d := range detsA {
		if d.InstanceID != alpha.taskID {
			t.Errorf("alpha detection references foreign instance %q", d.InstanceID)
		}
		if d.Operation != alpha.sess.ID() {
			t.Errorf("alpha detection labelled %q, want %q", d.Operation, alpha.sess.ID())
		}
	}
	for _, d := range detsB {
		if d.InstanceID != beta.taskID {
			t.Errorf("beta detection references foreign instance %q", d.InstanceID)
		}
		if d.Operation != beta.sess.ID() {
			t.Errorf("beta detection labelled %q, want %q", d.Operation, beta.sess.ID())
		}
	}
	if !sessionHasCause(detsA, "wrong-keypair") {
		for _, d := range detsA {
			t.Logf("alpha: %s %s -> %v", d.Source, d.TriggerID, d.Diagnosis)
		}
		t.Error("alpha did not diagnose wrong-keypair")
	}
	if !sessionHasCause(detsB, "wrong-ami") {
		for _, d := range detsB {
			t.Logf("beta: %s %s -> %v", d.Source, d.TriggerID, d.Diagnosis)
		}
		t.Error("beta did not diagnose wrong-ami")
	}
	// Cross-bleed: alpha's fault must not surface in beta and vice versa.
	if sessionHasCause(detsB, "wrong-keypair") {
		t.Error("beta diagnosed alpha's key pair fault")
	}
	if sessionHasCause(detsA, "wrong-ami") {
		t.Error("alpha diagnosed beta's AMI fault")
	}
}

// TestManagerMonitorsEightConcurrentUpgrades drives 8 clean rolling
// upgrades through one Manager at once: every session must replay its own
// operation to completion, auto-end, and record no cross-operation or
// falsely identified detections.
func TestManagerMonitorsEightConcurrentUpgrades(t *testing.T) {
	r := newMultiRig(t, nil)
	const n = 8
	ops := make([]*op, 0, n)
	for i := 0; i < n; i++ {
		ops = append(ops, r.addOp(t, fmt.Sprintf("app%d", i), 2))
	}
	r.runAll(t, ops)

	for _, o := range ops {
		if !o.sess.Checker().Completed(o.taskID) {
			t.Errorf("%s: conformance did not see completion", o.sess.ID())
		}
		for _, d := range o.sess.Detections() {
			if d.InstanceID != o.taskID {
				t.Errorf("%s: detection references foreign instance %q", o.sess.ID(), d.InstanceID)
			}
			if d.Diagnosis == nil || d.Diagnosis.Conclusion == diagnosis.ConclusionIdentified {
				t.Errorf("%s: unexpected detection on clean run: %+v", o.sess.ID(), d)
			}
		}
		// The sessions' private conformance contexts replay exactly one
		// instance each.
		if ids := o.sess.Checker().InstanceIDs(); len(ids) != 1 || ids[0] != o.taskID {
			t.Errorf("%s: checker instances = %v", o.sess.ID(), ids)
		}
	}
	// Bind-only sessions auto-end when their bound task completes.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ended := 0
		for _, o := range ops {
			if o.sess.State() == SessionEnded {
				ended++
			}
		}
		if ended == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, o := range ops {
		if o.sess.State() != SessionEnded {
			t.Errorf("%s: state = %s, want ended", o.sess.ID(), o.sess.State())
		}
	}
	// The manager still lists all sessions (retention window not elapsed).
	if got := len(r.mgr.Sessions()); got != n {
		t.Errorf("sessions = %d, want %d", got, n)
	}
	q := r.mgr.QueueDepth()
	if len(q.Sessions) != n {
		t.Errorf("queue depth sessions = %d, want %d", len(q.Sessions), n)
	}
}

// TestSessionLifecycleAndGC covers explicit removal and the retention
// sweep.
func TestSessionLifecycleAndGC(t *testing.T) {
	r := newMultiRig(t, func(c *ManagerConfig) { c.Retention = 30 * time.Second })
	s1, err := r.mgr.Watch(Expectation{ASGName: "g1--asg", ClusterSize: 2}, BindInstance("t1"))
	if err != nil {
		t.Fatal(err)
	}
	if s1.State() != SessionActive {
		t.Fatalf("state = %s", s1.State())
	}
	s2, err := r.mgr.Watch(Expectation{ASGName: "g2--asg", ClusterSize: 2}, BindInstance("t2"))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate ids are rejected.
	if _, err := r.mgr.Watch(Expectation{ASGName: "g3--asg", ClusterSize: 2}, WithSessionID(s2.ID())); err == nil {
		t.Fatal("duplicate session id accepted")
	}
	// Explicit removal is immediate.
	if !r.mgr.Remove(s2.ID()) {
		t.Fatal("Remove returned false")
	}
	if r.mgr.Session(s2.ID()) != nil {
		t.Fatal("removed session still listed")
	}
	if r.mgr.Remove(s2.ID()) {
		t.Fatal("second Remove returned true")
	}
	// Ended sessions are swept after the retention window (30s simulated
	// = 25ms wall at this scale; the GC ticks every Retention/4).
	s1.End()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && r.mgr.Session(s1.ID()) != nil {
		time.Sleep(5 * time.Millisecond)
	}
	if r.mgr.Session(s1.ID()) != nil {
		t.Fatal("ended session not garbage collected after retention window")
	}
}

// TestRetentionSweepTickerRepeats pins the GC loop's timer discipline: the
// retention sweep must keep firing interval after interval. The loop runs
// on one clock.NewTicker for its lifetime — the clk.After-per-iteration
// shape it replaced left a dead timer live every pass, and a regression to
// a one-shot timer would collect the first ended session but never the
// second.
func TestRetentionSweepTickerRepeats(t *testing.T) {
	r := newMultiRig(t, func(c *ManagerConfig) { c.Retention = 30 * time.Second })
	for i := 1; i <= 2; i++ {
		s, err := r.mgr.Watch(Expectation{ASGName: fmt.Sprintf("g%d--asg", i), ClusterSize: 2},
			BindInstance(fmt.Sprintf("t%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		s.End()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && r.mgr.Session(s.ID()) != nil {
			time.Sleep(5 * time.Millisecond)
		}
		if r.mgr.Session(s.ID()) != nil {
			t.Fatalf("sweep %d never collected the ended session — the GC ticker stopped firing", i)
		}
	}
}

// TestLazyRegistrationCallback exercises OnUnknownInstance: an unclaimed
// process instance triggers session creation bound to that instance.
func TestLazyRegistrationCallback(t *testing.T) {
	r := newMultiRig(t, func(c *ManagerConfig) {
		c.OnUnknownInstance = func(instanceID string, ev logging.Event) *Expectation {
			return &Expectation{ASGName: "lazy--asg", ClusterSize: 2}
		}
	})
	now := r.clk.Now()
	r.bus.Publish(logging.Event{
		Timestamp: now,
		Source:    "asgard.log",
		Type:      logging.TypeOperation,
		Fields:    map[string]string{"taskid": "lazy-task"},
		Message:   logging.FormatOperationLine(now, "lazy-task", "Starting rolling upgrade of group lazy--asg to image ami-x"),
	})
	deadline := time.Now().Add(2 * time.Second)
	var found *Session
	for time.Now().Before(deadline) && found == nil {
		for _, s := range r.mgr.Sessions() {
			for _, id := range s.Instances() {
				if id == "lazy-task" {
					found = s
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if found == nil {
		t.Fatal("unknown instance did not register a session")
	}
	if found.Expect().ASGName != "lazy--asg" {
		t.Errorf("expectation = %+v", found.Expect())
	}
	if found.Expect().MinInService != 1 {
		t.Errorf("MinInService = %d, want normalized 1", found.Expect().MinInService)
	}
}
