// Package core implements the POD-Diagnosis engine — the paper's primary
// contribution (Figure 1): it wires the local log processor to conformance
// checking, post-step and timer-driven assertion evaluation, and fault-tree
// error diagnosis, all keyed by process context (process instance id, step
// id, step outcomes) carried on annotated log events.
//
// The package is split into two layers. A Manager owns the shared
// substrate — bus subscriptions, central log storage, the consistent API
// client, the assertion evaluator, the diagnosis engine and one worker
// pool — and routes annotated events to per-operation Sessions sharded by
// process-instance id. Engine remains as a thin single-session
// compatibility wrapper (one Manager, one Session adopting every
// instance).
//
// The engine is non-intrusive: it only consumes the operation node's log
// events from the bus and queries the cloud through the consistent API
// layer. It never touches the upgrade tool.
package core

import (
	"context"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/diagplan"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/logstore"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/remediate"
	"poddiagnosis/internal/simaws"
)

// Engine metrics: what the paper's §V counts (detections and their
// triggers), plus the operational signals needed to size the worker pool.
var (
	mDetections = obs.Default.CounterVec("pod_engine_detections_total",
		"Recorded detections by trigger source.", "source")
	mTimerFires = obs.Default.CounterVec("pod_engine_timer_fires_total",
		"Assertion timer fires by kind (step = one-off deadline, periodic).", "kind")
	mWorkDropped = obs.Default.Counter("pod_engine_work_dropped_total",
		"Background work items discarded because the queue was full or the manager was stopping.")
)

// sloBuckets cover simulated-time latencies from sub-second detections
// to multi-minute timer-driven diagnoses (DefBuckets stop at 10s).
var sloBuckets = []float64{.05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Time-to-diagnosis SLO instruments (simulated seconds). Degraded-mode
// and chaos-profile runs are labeled so discounted-confidence paths stay
// distinguishable from clean ones.
var (
	mSLODetection = obs.Default.HistogramVec("pod_slo_detection_latency_seconds",
		"Latency from the originating event (log line or timer fire) to the admitted detection.",
		sloBuckets, "degraded", "chaos")
	mSLODiagnosis = obs.Default.HistogramVec("pod_slo_diagnosis_latency_seconds",
		"Latency from an admitted detection to its diagnosis confirming a root cause.",
		sloBuckets, "degraded", "chaos")
)

// Expectation declares the desired end state of the operation being
// watched; it parameterizes assertions and fault-tree instantiation.
type Expectation struct {
	// ASGName, ELBName identify the cluster under upgrade.
	ASGName string `json:"asgName"`
	ELBName string `json:"elbName,omitempty"`
	// NewImageID and NewVersion describe the target release.
	NewImageID string `json:"newImageId,omitempty"`
	NewVersion string `json:"newVersion,omitempty"`
	// NewLCName is the launch configuration the upgrade creates.
	NewLCName string `json:"newLcName,omitempty"`
	// OldLCName is the pre-upgrade launch configuration — the rollback
	// target when remediation finds the intended one unlaunchable.
	OldLCName string `json:"oldLcName,omitempty"`
	// KeyName, SGName and InstanceType are the expected (unchanged)
	// launch settings.
	KeyName      string `json:"keyName,omitempty"`
	SGName       string `json:"sgName,omitempty"`
	InstanceType string `json:"instanceType,omitempty"`
	// ClusterSize is N, the desired instance count.
	ClusterSize int `json:"clusterSize"`
	// MinInService is N' — the minimum capacity that must stay in
	// service during the upgrade. Defaults to ClusterSize-1.
	MinInService int `json:"minInService,omitempty"`
}

// params renders the expectation as assertion parameters.
func (x Expectation) params() assertion.Params {
	return assertion.Params{
		assertion.ParamASG:          x.ASGName,
		assertion.ParamELB:          x.ELBName,
		assertion.ParamAMI:          x.NewImageID,
		assertion.ParamVersion:      x.NewVersion,
		assertion.ParamLC:           x.NewLCName,
		assertion.ParamKeyPair:      x.KeyName,
		assertion.ParamSG:           x.SGName,
		assertion.ParamInstanceType: x.InstanceType,
	}
}

// Config assembles an Engine: a Manager watching a single operation.
type Config struct {
	// Cloud is the simulated AWS account.
	Cloud *simaws.Cloud
	// Bus carries log events between components.
	Bus *logging.Bus
	// Model is the operation's process model. Defaults to the rolling
	// upgrade model of Figure 2.
	Model *process.Model
	// Registry is the assertion library. Defaults to the built-in one.
	Registry *assertion.Registry
	// Plans is the diagnosis plan catalog. Takes precedence over Trees;
	// defaults to compiling Trees (or the built-in compiled catalog).
	Plans *diagplan.Catalog
	// Trees is the legacy fault-tree knowledge base, compiled into plans
	// when Plans is nil.
	Trees *faulttree.Repository
	// API tunes the consistent API layer.
	API consistentapi.Config
	// Expect is the desired end state of the watched operation.
	Expect Expectation
	// AssertionSpec is the assertion specification (see the assertspec
	// package). Empty means assertspec.DefaultSpecText, which reproduces
	// the paper's experiment setup.
	AssertionSpec string
	// PeriodicInterval is the cadence of the periodic capacity assertion
	// started/stopped with the process (§III.B.3). Defaults to 60s.
	PeriodicInterval time.Duration
	// StepTimeoutSlack scales historical step durations into one-off
	// timer deadlines. Defaults to 1.6 (the p95-ish margin the paper
	// derives from timing profiles).
	StepTimeoutSlack float64
	// DisableConformance turns off conformance checking (ablation A2).
	DisableConformance bool
	// DisableAssertions turns off assertion triggering (ablation A2).
	DisableAssertions bool
	// Diagnosis tunes the diagnosis engine.
	Diagnosis diagnosis.Options
	// MaxDetections caps recorded detections per session. Zero means 64.
	MaxDetections int
	// Workers sizes the shared worker pool. Defaults to
	// runtime.GOMAXPROCS(0), minimum 2.
	Workers int
	// Remediation is the closed-loop remediation policy (zero = off).
	Remediation remediate.Policy
	// RemediationCatalog overrides the action↔cause catalog.
	RemediationCatalog *remediate.Catalog
	// RemediationController steers the operation during remediation
	// (retry step, abort); optional.
	RemediationController remediate.OperationController
}

// Detection is one detected anomaly with its diagnosis.
type Detection struct {
	// At is the detection time.
	At time.Time `json:"at"`
	// Source is what detected the anomaly.
	Source diagnosis.Source `json:"source"`
	// TriggerID is the failing assertion's check id, or the conformance
	// verdict for conformance detections.
	TriggerID string `json:"triggerId"`
	// StepID is the process context.
	StepID string `json:"stepId,omitempty"`
	// InstanceID is the process instance.
	InstanceID string `json:"instanceId"`
	// Operation is the id of the session that recorded the detection.
	Operation string `json:"operation,omitempty"`
	// Message describes the anomaly.
	Message string `json:"message"`
	// Diagnosis is the root-cause analysis result.
	Diagnosis *diagnosis.Diagnosis `json:"diagnosis,omitempty"`
	// Degraded marks a detection made while the session's log stream was
	// known lossy (a sequence gap within the degraded hold window):
	// the anomaly may be an artifact of the loss, not the operation.
	Degraded bool `json:"degraded,omitempty"`
	// Confidence is 1.0 for detections on an intact stream, discounted to
	// 0.5 while degraded.
	Confidence float64 `json:"confidence"`
	// EvidenceID is the flight-recorder timeline entry of this detection
	// (0 when the recorder is disabled): the anchor tying the detection
	// into the operation's causal evidence chain.
	EvidenceID uint64 `json:"evidenceId,omitempty"`
}

// Engine is the single-operation compatibility wrapper: one Manager with
// one Session that adopts every process instance on the bus.
type Engine struct {
	cfg  Config
	mgr  *Manager
	sess *Session
}

// NewEngine validates the config and builds a one-session deployment.
// Call Start to begin processing and Stop to shut down.
func NewEngine(cfg Config) (*Engine, error) {
	mgr, err := NewManager(ManagerConfig{
		Cloud:              cfg.Cloud,
		Bus:                cfg.Bus,
		Model:              cfg.Model,
		Registry:           cfg.Registry,
		Plans:              cfg.Plans,
		Trees:              cfg.Trees,
		API:                cfg.API,
		AssertionSpec:      cfg.AssertionSpec,
		PeriodicInterval:   cfg.PeriodicInterval,
		StepTimeoutSlack:   cfg.StepTimeoutSlack,
		DisableConformance: cfg.DisableConformance,
		DisableAssertions:  cfg.DisableAssertions,
		Diagnosis:          cfg.Diagnosis,
		MaxDetections:      cfg.MaxDetections,
		Workers:            cfg.Workers,
		Remediation:        cfg.Remediation,
		RemediationCatalog: cfg.RemediationCatalog,
	})
	if err != nil {
		return nil, err
	}
	watchOpts := []WatchOption{MatchAnyInstance()}
	if cfg.RemediationController != nil {
		watchOpts = append(watchOpts, WithRemediationController(cfg.RemediationController))
	}
	sess, err := mgr.Watch(cfg.Expect, watchOpts...)
	if err != nil {
		return nil, err
	}
	// Reflect the manager's applied defaults back into the wrapper config.
	cfg.Expect = sess.Expect()
	cfg.PeriodicInterval = mgr.cfg.PeriodicInterval
	cfg.StepTimeoutSlack = mgr.cfg.StepTimeoutSlack
	cfg.MaxDetections = mgr.cfg.MaxDetections
	cfg.Workers = mgr.cfg.Workers
	return &Engine{cfg: cfg, mgr: mgr, sess: sess}, nil
}

// Start begins consuming log events and evaluating triggers.
func (e *Engine) Start() { e.mgr.Start() }

// Stop shuts down the underlying manager: timers, pipeline, workers.
// Pending queued work is discarded; in-flight work completes.
func (e *Engine) Stop() { e.mgr.Stop() }

// Drain waits until the log subscriptions and the work queue have been
// quiescent for a few consecutive polls of the injected clock, or until
// the (simulated-time) timeout elapses or ctx is cancelled. It reports
// whether quiescence was reached.
func (e *Engine) Drain(ctx context.Context, timeout time.Duration) bool {
	return e.mgr.Drain(ctx, timeout)
}

// Manager returns the underlying manager.
func (e *Engine) Manager() *Manager { return e.mgr }

// Session returns the engine's single monitoring session.
func (e *Engine) Session() *Session { return e.sess }

// Store returns the central log storage.
func (e *Engine) Store() *logstore.Store { return e.mgr.Store() }

// Evaluator returns the assertion evaluator (exposed for on-demand use).
func (e *Engine) Evaluator() *assertion.Evaluator { return e.mgr.Evaluator() }

// Checker returns the session's conformance checker.
func (e *Engine) Checker() *conformance.Checker { return e.sess.Checker() }

// Diagnoser returns the diagnosis engine (exposed for on-demand use,
// e.g. the POST /diagnosis REST endpoint).
func (e *Engine) Diagnoser() *diagnosis.Engine { return e.mgr.Diagnoser() }

// Detections returns a copy of all recorded detections.
func (e *Engine) Detections() []Detection { return e.sess.Detections() }

// Queue reports the engine's current backlog: queued background work and
// pending events on the two log subscriptions. Zero across the board
// means the engine is drained; serving surfaces (GET /readyz) report it.
type Queue struct {
	// Work is the number of queued assertion evaluations and diagnoses.
	Work int `json:"work"`
	// OpEvents is the operation-log subscription backlog.
	OpEvents int `json:"opEvents"`
	// CentralEvents is the central-merge subscription backlog.
	CentralEvents int `json:"centralEvents"`
}

// Depth is the total backlog.
func (q Queue) Depth() int { return q.Work + q.OpEvents + q.CentralEvents }

// QueueDepth snapshots the engine's backlog. Safe to call only between
// Start and Stop.
func (e *Engine) QueueDepth() Queue {
	mq := e.mgr.QueueDepth()
	work := mq.Work
	if p := e.sess.Pending(); p > work {
		work = p
	}
	return Queue{
		Work:          work,
		OpEvents:      mq.OpEvents,
		CentralEvents: mq.CentralEvents,
	}
}
