// Package core implements the POD-Diagnosis engine — the paper's primary
// contribution (Figure 1): it wires the local log processor to conformance
// checking, post-step and timer-driven assertion evaluation, and fault-tree
// error diagnosis, all keyed by process context (process instance id, step
// id, step outcomes) carried on annotated log events.
//
// The engine is non-intrusive: it only consumes the operation node's log
// events from the bus and queries the cloud through the consistent API
// layer. It never touches the upgrade tool.
package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/assertspec"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/conformance"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/faulttree"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/logstore"
	"poddiagnosis/internal/obs"
	"poddiagnosis/internal/pipeline"
	"poddiagnosis/internal/process"
	"poddiagnosis/internal/simaws"
)

// Engine metrics: what the paper's §V counts (detections and their
// triggers), plus the operational signals needed to size the worker pool.
var (
	mDetections = obs.Default.CounterVec("pod_engine_detections_total",
		"Recorded detections by trigger source.", "source")
	mTimerFires = obs.Default.CounterVec("pod_engine_timer_fires_total",
		"Assertion timer fires by kind (step = one-off deadline, periodic).", "kind")
	mWorkDropped = obs.Default.Counter("pod_engine_work_dropped_total",
		"Background work items discarded because the queue was full or the engine was stopping.")
)

// Expectation declares the desired end state of the operation being
// watched; it parameterizes assertions and fault-tree instantiation.
type Expectation struct {
	// ASGName, ELBName identify the cluster under upgrade.
	ASGName string
	ELBName string
	// NewImageID and NewVersion describe the target release.
	NewImageID string
	NewVersion string
	// NewLCName is the launch configuration the upgrade creates.
	NewLCName string
	// KeyName, SGName and InstanceType are the expected (unchanged)
	// launch settings.
	KeyName      string
	SGName       string
	InstanceType string
	// ClusterSize is N, the desired instance count.
	ClusterSize int
	// MinInService is N' — the minimum capacity that must stay in
	// service during the upgrade. Defaults to ClusterSize-1.
	MinInService int
}

// params renders the expectation as assertion parameters.
func (x Expectation) params() assertion.Params {
	return assertion.Params{
		assertion.ParamASG:          x.ASGName,
		assertion.ParamELB:          x.ELBName,
		assertion.ParamAMI:          x.NewImageID,
		assertion.ParamVersion:      x.NewVersion,
		assertion.ParamLC:           x.NewLCName,
		assertion.ParamKeyPair:      x.KeyName,
		assertion.ParamSG:           x.SGName,
		assertion.ParamInstanceType: x.InstanceType,
	}
}

// Config assembles an Engine.
type Config struct {
	// Cloud is the simulated AWS account.
	Cloud *simaws.Cloud
	// Bus carries log events between components.
	Bus *logging.Bus
	// Model is the operation's process model. Defaults to the rolling
	// upgrade model of Figure 2.
	Model *process.Model
	// Registry is the assertion library. Defaults to the built-in one.
	Registry *assertion.Registry
	// Trees is the fault-tree knowledge base. Defaults to the built-in
	// catalog.
	Trees *faulttree.Repository
	// API tunes the consistent API layer.
	API consistentapi.Config
	// Expect is the desired end state of the watched operation.
	Expect Expectation
	// AssertionSpec is the assertion specification (see the assertspec
	// package). Empty means assertspec.DefaultSpecText, which reproduces
	// the paper's experiment setup.
	AssertionSpec string
	// PeriodicInterval is the cadence of the periodic capacity assertion
	// started/stopped with the process (§III.B.3). Defaults to 60s.
	PeriodicInterval time.Duration
	// StepTimeoutSlack scales historical step durations into one-off
	// timer deadlines. Defaults to 1.6 (the p95-ish margin the paper
	// derives from timing profiles).
	StepTimeoutSlack float64
	// DisableConformance turns off conformance checking (ablation A2).
	DisableConformance bool
	// DisableAssertions turns off assertion triggering (ablation A2).
	DisableAssertions bool
	// Diagnosis tunes the diagnosis engine.
	Diagnosis diagnosis.Options
	// MaxDetections caps recorded detections per engine. Zero means 64.
	MaxDetections int
}

// Detection is one detected anomaly with its diagnosis.
type Detection struct {
	// At is the detection time.
	At time.Time `json:"at"`
	// Source is what detected the anomaly.
	Source diagnosis.Source `json:"source"`
	// TriggerID is the failing assertion's check id, or the conformance
	// verdict for conformance detections.
	TriggerID string `json:"triggerId"`
	// StepID is the process context.
	StepID string `json:"stepId,omitempty"`
	// InstanceID is the process instance.
	InstanceID string `json:"instanceId"`
	// Message describes the anomaly.
	Message string `json:"message"`
	// Diagnosis is the root-cause analysis result.
	Diagnosis *diagnosis.Diagnosis `json:"diagnosis,omitempty"`
}

// Engine is a running POD-Diagnosis deployment for one operation.
type Engine struct {
	cfg       Config
	spec      *assertspec.Spec
	clk       clock.Clock
	checker   *conformance.Checker
	evaluator *assertion.Evaluator
	diag      *diagnosis.Engine
	processor *pipeline.Processor
	store     *logstore.Store
	central   *logstore.CentralProcessor
	timers    *assertion.TimerSet

	opSub      *logging.Subscription
	centralSub *logging.Subscription

	mu          sync.Mutex
	detections  []Detection
	seen        map[string]int  // diagnosis attempts per dedup key
	identified  map[string]bool // keys whose diagnosis already identified a cause
	progress    map[string]int  // instance -> relaunches done
	total       map[string]int  // instance -> total relaunches
	stepCancel  map[string]func()
	perioCancel map[string]func()

	work   sync.WaitGroup
	workCh chan func()
	stop   chan struct{}
}

// NewEngine validates the config and builds an engine. Call Start to begin
// processing and Stop to shut down.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Cloud == nil || cfg.Bus == nil {
		return nil, fmt.Errorf("core: Cloud and Bus are required")
	}
	if cfg.Expect.ASGName == "" || cfg.Expect.ClusterSize <= 0 {
		return nil, fmt.Errorf("core: Expect.ASGName and Expect.ClusterSize are required")
	}
	if cfg.Model == nil {
		cfg.Model = process.RollingUpgradeModel()
	}
	if cfg.Registry == nil {
		cfg.Registry = assertion.DefaultRegistry()
	}
	if cfg.Trees == nil {
		cfg.Trees = faulttree.DefaultRepository()
	}
	if cfg.PeriodicInterval <= 0 {
		cfg.PeriodicInterval = time.Minute
	}
	if cfg.StepTimeoutSlack <= 0 {
		cfg.StepTimeoutSlack = 1.6
	}
	if cfg.MaxDetections <= 0 {
		cfg.MaxDetections = 64
	}
	if cfg.Expect.MinInService <= 0 {
		cfg.Expect.MinInService = cfg.Expect.ClusterSize - 1
		if cfg.Expect.MinInService < 1 {
			cfg.Expect.MinInService = 1
		}
	}
	if err := cfg.Trees.Validate(cfg.Registry); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	specText := cfg.AssertionSpec
	if specText == "" {
		specText = assertspec.DefaultSpecText
	}
	spec, err := assertspec.Parse(specText, cfg.Registry)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	client := consistentapi.New(cfg.Cloud, cfg.API)
	e := &Engine{
		cfg:         cfg,
		spec:        spec,
		clk:         cfg.Cloud.Clock(),
		checker:     conformance.NewChecker(cfg.Model),
		evaluator:   assertion.NewEvaluator(client, cfg.Registry, cfg.Bus),
		store:       logstore.NewStore(),
		timers:      assertion.NewTimerSet(cfg.Cloud.Clock()),
		seen:        make(map[string]int),
		identified:  make(map[string]bool),
		progress:    make(map[string]int),
		total:       make(map[string]int),
		stepCancel:  make(map[string]func()),
		perioCancel: make(map[string]func()),
		workCh:      make(chan func(), 64),
		stop:        make(chan struct{}),
	}
	e.diag = diagnosis.NewEngine(cfg.Trees, e.evaluator, cfg.Bus, cfg.Diagnosis)
	e.processor = pipeline.New(cfg.Model, e.store, pipeline.Triggers{
		Conformance:  e.onConformance,
		StepEvent:    e.onStepEvent,
		ProcessStart: e.onProcessStart,
		ProcessEnd:   e.onProcessEnd,
	})
	e.central = logstore.NewCentralProcessor(e.store, nil)
	return e, nil
}

// Start begins consuming log events and evaluating triggers.
func (e *Engine) Start() {
	e.opSub = e.cfg.Bus.Subscribe(4096, logging.TypeFilter(logging.TypeOperation))
	e.centralSub = e.cfg.Bus.Subscribe(4096, logging.TypeFilter(
		logging.TypeCloud, logging.TypeAssertion, logging.TypeConformance, logging.TypeDiagnosis))
	e.processor.Start(e.opSub)
	e.central.Start(e.centralSub)
	// Worker pool for assertion evaluations and diagnoses so pipeline
	// callbacks never block on cloud API latency.
	for i := 0; i < 4; i++ {
		e.work.Add(1)
		go func() {
			defer e.work.Done()
			for {
				select {
				case <-e.stop:
					return
				case f := <-e.workCh:
					f()
				}
			}
		}()
	}
}

// Stop shuts down the engine: timers, pipeline, workers. Pending queued
// work is discarded; in-flight work completes.
func (e *Engine) Stop() {
	e.timers.StopAll()
	e.processor.Stop()
	e.central.Stop()
	e.opSub.Cancel()
	e.centralSub.Cancel()
	close(e.stop)
	e.work.Wait()
}

// Drain waits until the log subscriptions and the work queue have been
// quiescent for a few consecutive polls, or the timeout elapses; it is
// used by harnesses to collect straggling evaluations and diagnoses after
// an operation ends.
func (e *Engine) Drain(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	quiet := 0
	for time.Now().Before(deadline) {
		if len(e.opSub.C) == 0 && len(e.centralSub.C) == 0 && len(e.workCh) == 0 {
			quiet++
			if quiet >= 3 {
				return
			}
		} else {
			quiet = 0
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Store returns the central log storage.
func (e *Engine) Store() *logstore.Store { return e.store }

// Evaluator returns the assertion evaluator (exposed for on-demand use).
func (e *Engine) Evaluator() *assertion.Evaluator { return e.evaluator }

// Checker returns the conformance checker.
func (e *Engine) Checker() *conformance.Checker { return e.checker }

// Diagnoser returns the diagnosis engine (exposed for on-demand use,
// e.g. the POST /diagnosis REST endpoint).
func (e *Engine) Diagnoser() *diagnosis.Engine { return e.diag }

// Detections returns a copy of all recorded detections.
func (e *Engine) Detections() []Detection {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Detection, len(e.detections))
	copy(out, e.detections)
	return out
}

// submit queues background work, dropping it if the engine is stopping or
// the queue is full (detection bursts beyond the cap carry no new
// information).
func (e *Engine) submit(f func()) {
	select {
	case <-e.stop:
		mWorkDropped.Inc()
	case e.workCh <- f:
	default:
		mWorkDropped.Inc()
	}
}

// Queue reports the engine's current backlog: queued background work and
// pending events on the two log subscriptions. Zero across the board
// means the engine is drained; serving surfaces (GET /readyz) report it.
type Queue struct {
	// Work is the number of queued assertion evaluations and diagnoses.
	Work int `json:"work"`
	// OpEvents is the operation-log subscription backlog.
	OpEvents int `json:"opEvents"`
	// CentralEvents is the central-merge subscription backlog.
	CentralEvents int `json:"centralEvents"`
}

// Depth is the total backlog.
func (q Queue) Depth() int { return q.Work + q.OpEvents + q.CentralEvents }

// QueueDepth snapshots the engine's backlog. Safe to call only between
// Start and Stop.
func (e *Engine) QueueDepth() Queue {
	return Queue{
		Work:          len(e.workCh),
		OpEvents:      len(e.opSub.C),
		CentralEvents: len(e.centralSub.C),
	}
}

// baseParams assembles the expectation parameters plus per-event context.
func (e *Engine) baseParams(ev logging.Event) assertion.Params {
	p := e.cfg.Expect.params()
	if id := ev.Field("instanceid"); id != "" {
		p[assertion.ParamInstance] = id
	}
	return p
}

// ---- pipeline trigger callbacks ----

// onConformance replays the line and reacts to anomalies.
func (e *Engine) onConformance(instanceID, line string, ev logging.Event) {
	if e.cfg.DisableConformance {
		return
	}
	res := e.checker.Check(instanceID, line, ev.Timestamp)
	e.publishConformance(instanceID, res, ev)
	if !res.Verdict.IsAnomalous() {
		return
	}
	stepID := res.StepID
	if stepID == "" && res.Context != nil {
		stepID = res.Context.LastValidStep
	}
	key := "conf|" + instanceID + "|" + string(res.Verdict) + "|" + stepID
	if !e.shouldDiagnose(key) {
		return
	}
	params := e.baseParams(ev)
	detail := fmt.Sprintf("conformance %s on line %q", res.Verdict, line)
	e.submit(func() {
		d := e.diag.Diagnose(context.Background(), diagnosis.Request{
			Source:            diagnosis.SourceConformance,
			ProcessInstanceID: instanceID,
			StepID:            stepID,
			Params:            params,
			Detail:            detail,
		})
		e.record(Detection{
			At:         ev.Timestamp,
			Source:     diagnosis.SourceConformance,
			TriggerID:  res.Verdict.Tag(),
			StepID:     stepID,
			InstanceID: instanceID,
			Message:    detail,
			Diagnosis:  d,
		})
	})
}

// publishConformance logs the verdict to the bus (merged into central
// storage like the paper's conformance service results).
func (e *Engine) publishConformance(instanceID string, res conformance.Result, ev logging.Event) {
	e.cfg.Bus.Publish(logging.Event{
		Timestamp:  ev.Timestamp,
		Source:     "conformance.log",
		SourceHost: "pod-conformance",
		Type:       logging.TypeConformance,
		Tags:       []string{res.Verdict.Tag()},
		Fields: map[string]string{
			"taskid":  instanceID,
			"stepid":  res.StepID,
			"verdict": string(res.Verdict),
		},
		Message: fmt.Sprintf("[conformance] [%s] [%s] verdict=%s activity=%s",
			instanceID, res.StepID, res.Verdict, res.ActivityID),
	})
}

// binding is one resolved assertion evaluation to run.
type binding struct {
	checkID string
	params  assertion.Params
}

// vars assembles the specification variables available at this point of
// the process: cluster-level targets plus the event's extracted context.
func (e *Engine) vars(instanceID string, ev logging.Event) map[string]string {
	e.mu.Lock()
	progress := e.progress[instanceID]
	total, hasTotal := e.total[instanceID]
	e.mu.Unlock()
	next := progress + 1
	if hasTotal && next > total {
		next = total
	}
	v := map[string]string{
		"n":        strconv.Itoa(e.cfg.Expect.ClusterSize),
		"min":      strconv.Itoa(e.cfg.Expect.MinInService),
		"progress": strconv.Itoa(progress),
		"next":     strconv.Itoa(next),
	}
	if id := ev.Field("instanceid"); id != "" {
		v["instanceid"] = id
	}
	return v
}

// stepBindings resolves the specification's post-step assertions for the
// given step. Bindings whose variables cannot be resolved from the event
// (e.g. instance-version without an instance id) are skipped.
func (e *Engine) stepBindings(instanceID string, node *process.Node, ev logging.Event) []binding {
	specBindings := e.spec.ByStep(node.StepID)
	if len(specBindings) == 0 {
		return nil
	}
	base := e.baseParams(ev)
	vars := e.vars(instanceID, ev)
	out := make([]binding, 0, len(specBindings))
	for _, sb := range specBindings {
		params, ok := sb.Resolve(base, vars)
		if !ok {
			continue
		}
		out = append(out, binding{sb.CheckID, params})
	}
	return out
}

// onStepEvent updates progress, resets the one-off step timer and
// evaluates post-step assertions.
func (e *Engine) onStepEvent(instanceID string, node *process.Node, ev logging.Event) {
	// Track operation progress from any line the annotator extracted
	// "k of n" counters from (relaunches done, instances in service, ...).
	if n, err := strconv.Atoi(ev.Field("num")); err == nil {
		e.mu.Lock()
		e.progress[instanceID] = n
		e.mu.Unlock()
	}
	if n, err := strconv.Atoi(ev.Field("total")); err == nil {
		e.mu.Lock()
		e.total[instanceID] = n
		e.mu.Unlock()
	}

	e.resetStepTimer(instanceID, node)

	if e.cfg.DisableAssertions {
		return
	}
	trig := assertion.Trigger{
		Source:            assertion.TriggerLog,
		ProcessInstanceID: instanceID,
		StepID:            node.StepID,
	}
	for _, b := range e.stepBindings(instanceID, node, ev) {
		b := b
		e.submit(func() { e.evaluateAndMaybeDiagnose(b.checkID, b.params, trig) })
	}
}

// evaluateAndMaybeDiagnose runs one assertion; a non-pass result is a
// detection and triggers diagnosis.
func (e *Engine) evaluateAndMaybeDiagnose(checkID string, p assertion.Params, trig assertion.Trigger) {
	res := e.evaluator.Evaluate(context.Background(), checkID, p, trig)
	if res.Passed() {
		return
	}
	key := "assert|" + trig.ProcessInstanceID + "|" + checkID + "|" + trig.StepID
	if !e.shouldDiagnose(key) {
		return
	}
	src := diagnosis.SourceAssertion
	if trig.Source == assertion.TriggerTimer {
		src = diagnosis.SourceTimer
	}
	d := e.diag.Diagnose(context.Background(), diagnosis.Request{
		AssertionID:       checkID,
		Source:            src,
		ProcessInstanceID: trig.ProcessInstanceID,
		StepID:            trig.StepID,
		Params:            p,
		Detail:            res.Message,
	})
	e.record(Detection{
		At:         res.EvaluatedAt,
		Source:     src,
		TriggerID:  checkID,
		StepID:     trig.StepID,
		InstanceID: trig.ProcessInstanceID,
		Message:    res.Message,
		Diagnosis:  d,
	})
}

// resetStepTimer cancels the previous one-off timer for the instance and
// arms a new one sized from the step's historical duration: if the next
// step's log line does not arrive in time, the high-level version-count
// assertion is evaluated with the next expected progress (a purely
// timer-based trigger, which carries no instance id — §VI.A).
func (e *Engine) resetStepTimer(instanceID string, node *process.Node) {
	e.mu.Lock()
	if cancel, ok := e.stepCancel[instanceID]; ok {
		cancel()
		delete(e.stepCancel, instanceID)
	}
	if node.ID == process.NodeCompleted {
		e.mu.Unlock()
		return
	}
	mean := node.MeanDuration
	if mean <= 0 {
		mean = 30 * time.Second
	}
	deadline := time.Duration(float64(mean) * e.cfg.StepTimeoutSlack)
	e.mu.Unlock()

	if e.cfg.DisableAssertions {
		return
	}
	timeouts := e.spec.TimeoutsFor(node.StepID)
	if len(timeouts) == 0 {
		return
	}
	base := e.cfg.Expect.params()
	vars := e.vars(instanceID, logging.Event{})
	trig := assertion.Trigger{
		Source:            assertion.TriggerTimer,
		ProcessInstanceID: instanceID,
		// No step id: the timer fires between steps (weak context).
	}
	cancels := make([]func(), 0, len(timeouts))
	for _, tb := range timeouts {
		params, ok := tb.Resolve(base, vars)
		if !ok {
			continue
		}
		checkID := tb.CheckID
		cancels = append(cancels, e.timers.After(deadline, func() {
			mTimerFires.With("step").Inc()
			e.submit(func() {
				e.evaluateAndMaybeDiagnose(checkID, params, trig)
			})
		}))
	}
	if len(cancels) == 0 {
		return
	}
	e.mu.Lock()
	e.stepCancel[instanceID] = func() {
		for _, c := range cancels {
			c()
		}
	}
	e.mu.Unlock()
}

// onProcessStart arms the periodic capacity assertion (§III.B.1: "the
// timer setter uses the log line indicating the start of the operation
// process to start the periodic timer").
func (e *Engine) onProcessStart(instanceID string, ev logging.Event) {
	if e.cfg.DisableAssertions {
		return
	}
	base := e.cfg.Expect.params()
	vars := e.vars(instanceID, ev)
	trig := assertion.Trigger{
		Source:            assertion.TriggerTimer,
		ProcessInstanceID: instanceID,
	}
	cancels := make([]func(), 0, 1)
	for _, pb := range e.spec.Periodic() {
		params, ok := pb.Resolve(base, vars)
		if !ok {
			continue
		}
		interval := pb.Every
		if e.cfg.PeriodicInterval > 0 {
			// The engine-level interval overrides the spec's default, so
			// experiments can tune the cadence without editing the spec.
			interval = e.cfg.PeriodicInterval
		}
		checkID := pb.CheckID
		cancels = append(cancels, e.timers.Every(interval, func() {
			mTimerFires.With("periodic").Inc()
			e.submit(func() {
				e.evaluateAndMaybeDiagnose(checkID, params, trig)
			})
		}))
	}
	if len(cancels) == 0 {
		return
	}
	e.mu.Lock()
	if old, ok := e.perioCancel[instanceID]; ok {
		old()
	}
	e.perioCancel[instanceID] = func() {
		for _, c := range cancels {
			c()
		}
	}
	e.mu.Unlock()
}

// onProcessEnd stops the instance's timers.
func (e *Engine) onProcessEnd(instanceID string, ev logging.Event) {
	e.mu.Lock()
	if cancel, ok := e.perioCancel[instanceID]; ok {
		cancel()
		delete(e.perioCancel, instanceID)
	}
	if cancel, ok := e.stepCancel[instanceID]; ok {
		cancel()
		delete(e.stepCancel, instanceID)
	}
	e.mu.Unlock()
}

// ---- bookkeeping ----

func (e *Engine) progressOf(instanceID string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.progress[instanceID]
}

// shouldDiagnose dedups diagnosis triggers and enforces the detection cap.
// A trigger key is retried up to three times while its diagnoses remain
// inconclusive — matching the paper's observation that repeated failures
// re-enter diagnosis — but once a root cause is identified the key is
// settled.
func (e *Engine) shouldDiagnose(key string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.identified[key] || e.seen[key] >= 3 {
		return false
	}
	if len(e.detections) >= e.cfg.MaxDetections {
		return false
	}
	e.seen[key]++
	return true
}

// record appends a detection and settles its dedup key when the diagnosis
// identified a root cause.
func (e *Engine) record(d Detection) {
	mDetections.With(string(d.Source)).Inc()
	e.mu.Lock()
	defer e.mu.Unlock()
	if d.Diagnosis != nil && d.Diagnosis.Conclusion == diagnosis.ConclusionIdentified {
		e.identified["assert|"+d.InstanceID+"|"+d.TriggerID+"|"+d.StepID] = true
		e.identified["conf|"+d.InstanceID+"|"+d.TriggerID+"|"+d.StepID] = true
	}
	if len(e.detections) >= e.cfg.MaxDetections {
		return
	}
	e.detections = append(e.detections, d)
}
