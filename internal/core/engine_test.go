package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"poddiagnosis/internal/assertion"
	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/consistentapi"
	"poddiagnosis/internal/diagnosis"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// rig is a full POD deployment over a simulated cloud with one cluster.
type rig struct {
	cloud   *simaws.Cloud
	bus     *logging.Bus
	cluster *upgrade.Cluster
	engine  *Engine
	up      *upgrade.Upgrader
	newAMI  string
	spec    upgrade.Spec
	ctx     context.Context
}

// newRig deploys a size-n v1 cluster, registers a v2 AMI and builds (but
// does not start) an engine watching the upcoming upgrade task.
func newRig(t *testing.T, n int, mutate func(*Config)) *rig {
	t.Helper()
	clk := clock.NewScaled(1200, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
	bus := logging.NewBus()
	profile := simaws.FastProfile()
	profile.BootTime = clock.Dist{Mean: 60 * time.Second, StdDev: 10 * time.Second, Min: 40 * time.Second, Max: 110 * time.Second}
	profile.TerminateTime = clock.Fixed(10 * time.Second)
	profile.TickInterval = time.Second
	cloud := simaws.New(clk, profile, simaws.WithSeed(21), simaws.WithBus(bus))
	cloud.Start()
	t.Cleanup(func() { cloud.Stop(); bus.Close() })

	ctx := context.Background()
	cluster, err := upgrade.Deploy(ctx, cloud, "pm", n, "v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitReady(ctx, cloud, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	newAMI, err := cloud.RegisterImage(ctx, "pm-v2", "v2", upgrade.AppServices)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.UpgradeSpec("pushing pm--asg", newAMI)
	spec.NewLCName = cluster.ASGName + "-lc-" + newAMI
	spec.WaitTimeout = 5 * time.Minute
	spec.PollInterval = 5 * time.Second

	cfg := Config{
		Cloud: cloud,
		Bus:   bus,
		API: consistentapi.Config{
			MaxAttempts:    3,
			InitialBackoff: 500 * time.Millisecond,
			MaxBackoff:     4 * time.Second,
			CallTimeout:    30 * time.Second,
		},
		Expect: Expectation{
			ASGName:      cluster.ASGName,
			ELBName:      cluster.ELBName,
			NewImageID:   newAMI,
			NewVersion:   "v2",
			NewLCName:    spec.NewLCName,
			KeyName:      cluster.KeyName,
			SGName:       cluster.SGName,
			InstanceType: "m1.small",
			ClusterSize:  n,
		},
		PeriodicInterval: 45 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	engine, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{
		cloud: cloud, bus: bus, cluster: cluster, engine: engine,
		up: upgrade.NewUpgrader(cloud, bus), newAMI: newAMI, spec: spec, ctx: ctx,
	}
}

// runUpgrade executes the upgrade with the engine watching, then drains
// outstanding work.
func (r *rig) runUpgrade(t *testing.T) *upgrade.Report {
	t.Helper()
	r.engine.Start()
	rep := r.up.Run(r.ctx, r.spec)
	r.engine.Drain(r.ctx, 2*time.Minute)
	r.engine.Stop()
	return rep
}

func hasCause(dets []Detection, base string) bool {
	for _, d := range dets {
		if d.Diagnosis != nil && d.Diagnosis.HasCause(base) {
			return true
		}
	}
	return false
}

func TestCleanUpgradeNoDetections(t *testing.T) {
	r := newRig(t, 3, nil)
	rep := r.runUpgrade(t)
	if rep.Err != nil {
		t.Fatalf("upgrade failed: %v", rep.Err)
	}
	dets := r.engine.Detections()
	for _, d := range dets {
		// Tolerate only timer-based transients that diagnosed to "no
		// root cause" (the paper's FP class); anything else is a bug.
		if d.Diagnosis == nil || d.Diagnosis.Conclusion == diagnosis.ConclusionIdentified {
			t.Errorf("unexpected detection on clean run: %+v", d)
		}
	}
	if !r.engine.Checker().Completed("pushing pm--asg") {
		t.Error("conformance did not see completion")
	}
}

func TestDetectsAndDiagnosesAMIChangedDuringUpgrade(t *testing.T) {
	r := newRig(t, 3, nil)
	// Concurrent independent upgrade: once our LC exists, a rogue team
	// flips the ASG to a different LC.
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if _, err := r.cloud.DescribeLaunchConfiguration(r.ctx, r.spec.NewLCName); err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
		rogueAMI, _ := r.cloud.RegisterImage(r.ctx, "rogue", "v3", nil)
		_ = r.cloud.CreateLaunchConfiguration(r.ctx, simaws.LaunchConfig{
			Name: "rogue-lc", ImageID: rogueAMI, KeyName: r.cluster.KeyName,
			SecurityGroups: []string{r.cluster.SGName}, InstanceType: "m1.small",
		})
		_ = r.cloud.UpdateAutoScalingGroup(r.ctx, r.cluster.ASGName, "rogue-lc", -1, -1, -1)
	}()
	r.runUpgrade(t)
	dets := r.engine.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections for mixed-version fault")
	}
	if !hasCause(dets, "wrong-ami") {
		for _, d := range dets {
			t.Logf("detection: %s %s -> %v", d.Source, d.TriggerID, d.Diagnosis.Conclusion)
		}
		t.Fatal("wrong-ami not diagnosed")
	}
}

func TestDetectsAMIUnavailableDuringUpgrade(t *testing.T) {
	r := newRig(t, 2, nil)
	r.spec.WaitTimeout = 3 * time.Minute
	go func() {
		// Delete the new AMI after the LC was created: launches fail.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if _, err := r.cloud.DescribeLaunchConfiguration(r.ctx, r.spec.NewLCName); err == nil {
				break
			}
			time.Sleep(time.Millisecond)
		}
		_ = r.cloud.DeregisterImage(r.ctx, r.newAMI)
	}()
	rep := r.runUpgrade(t)
	if rep.Err == nil {
		t.Fatal("upgrade succeeded with unavailable AMI")
	}
	dets := r.engine.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	if !hasCause(dets, "launch-ami-unavailable") && !hasCause(dets, "lc-ami-unavailable") {
		for _, d := range dets {
			t.Logf("detection: %s %s step=%s -> %s", d.Source, d.TriggerID, d.StepID, d.Diagnosis.Conclusion)
		}
		t.Fatal("AMI unavailability not diagnosed")
	}
}

func TestDetectsELBUnavailableViaConformance(t *testing.T) {
	r := newRig(t, 2, nil)
	go func() {
		// Disrupt the ELB service once the upgrade starts terminating.
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			insts, err := r.cloud.DescribeInstances(r.ctx)
			if err == nil {
				for _, i := range insts {
					if i.State == simaws.StateTerminating || i.State == simaws.StateTerminated {
						r.cloud.SetELBServiceDisruption(true)
						return
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	rep := r.runUpgrade(t)
	_ = rep
	dets := r.engine.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections during ELB disruption")
	}
	var sawConformanceOrTimer bool
	for _, d := range dets {
		if d.Source == diagnosis.SourceConformance || d.Source == diagnosis.SourceTimer || d.Source == diagnosis.SourceAssertion {
			sawConformanceOrTimer = true
		}
	}
	if !sawConformanceOrTimer {
		t.Fatal("no POD-originated detection")
	}
	if !hasCause(dets, "elb-unreachable") {
		for _, d := range dets {
			t.Logf("detection: %s %s -> %s %v", d.Source, d.TriggerID, d.Diagnosis.Conclusion, d.Diagnosis.RootCauses)
		}
		t.Fatal("elb-unreachable not diagnosed")
	}
}

func TestScaleInInterferenceDetected(t *testing.T) {
	r := newRig(t, 4, nil)
	go func() {
		// Legitimate simultaneous operation: scale the group in by two
		// mid-upgrade.
		time.Sleep(30 * time.Millisecond)
		_ = r.cloud.SetDesiredCapacity(r.ctx, r.cluster.ASGName, 2)
	}()
	r.runUpgrade(t)
	dets := r.engine.Detections()
	if !hasCause(dets, "simultaneous-scale-in") {
		for _, d := range dets {
			if d.Diagnosis != nil {
				t.Logf("detection: %s %s -> %s %v", d.Source, d.TriggerID, d.Diagnosis.Conclusion, d.Diagnosis.RootCauses)
			}
		}
		t.Skip("scale-in window not hit on this run (timing dependent)")
	}
}

func TestConformanceDisabledAblation(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.DisableConformance = true })
	r.runUpgrade(t)
	for _, d := range r.engine.Detections() {
		if d.Source == diagnosis.SourceConformance {
			t.Fatalf("conformance detection with conformance disabled: %+v", d)
		}
	}
	if len(r.engine.Checker().InstanceIDs()) != 0 {
		t.Error("checker saw instances despite being disabled")
	}
}

func TestAssertionsDisabledAblation(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.DisableAssertions = true })
	r.runUpgrade(t)
	if len(r.engine.Evaluator().History()) != 0 {
		t.Fatal("assertions evaluated despite being disabled")
	}
}

func TestEngineValidatesConfig(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	bus := logging.NewBus()
	defer bus.Close()
	clk := clock.NewScaled(100, time.Unix(0, 0))
	cloud := simaws.New(clk, simaws.FastProfile())
	if _, err := NewEngine(Config{Cloud: cloud, Bus: bus}); err == nil {
		t.Fatal("missing expectation accepted")
	}
	eng, err := NewEngine(Config{
		Cloud:  cloud,
		Bus:    bus,
		Expect: Expectation{ASGName: "g", ClusterSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.cfg.Expect.MinInService != 3 {
		t.Errorf("MinInService default = %d", eng.cfg.Expect.MinInService)
	}
	if eng.cfg.PeriodicInterval <= 0 || eng.cfg.StepTimeoutSlack <= 0 {
		t.Error("defaults not applied")
	}
}

func TestCentralStoreMergesAllSources(t *testing.T) {
	r := newRig(t, 2, nil)
	r.runUpgrade(t)
	store := r.engine.Store()
	types := map[string]bool{}
	for _, e := range store.All() {
		types[e.Type] = true
	}
	for _, want := range []string{logging.TypeOperation, logging.TypeConformance, logging.TypeAssertion, logging.TypeCloud} {
		if !types[want] {
			t.Errorf("central store missing %s events (have %v)", want, types)
		}
	}
	ids := store.InstanceIDs()
	found := false
	for _, id := range ids {
		if strings.Contains(id, "pm--asg") {
			found = true
		}
	}
	if !found {
		t.Errorf("instance ids = %v", ids)
	}
}

func TestExpectationParams(t *testing.T) {
	x := Expectation{
		ASGName: "g", ELBName: "e", NewImageID: "ami-1", NewVersion: "v2",
		NewLCName: "lc", KeyName: "k", SGName: "s", InstanceType: "t", ClusterSize: 4,
	}
	p := x.params()
	if p[assertion.ParamASG] != "g" || p[assertion.ParamAMI] != "ami-1" || p[assertion.ParamLC] != "lc" {
		t.Errorf("params = %v", p)
	}
}
