package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"poddiagnosis/internal/clock"
	"poddiagnosis/internal/logging"
	"poddiagnosis/internal/simaws"
	"poddiagnosis/internal/upgrade"
)

// benchConcurrentOps drives n clean rolling upgrades through one Manager
// and reports wall time per upgrade set.
func benchConcurrentOps(b *testing.B, n int) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		clk := clock.NewScaled(2000, time.Date(2013, 11, 19, 11, 0, 0, 0, time.UTC))
		bus := logging.NewBus()
		profile := simaws.FastProfile()
		profile.TickInterval = time.Second
		cloud := simaws.New(clk, profile, simaws.WithSeed(int64(100+i)), simaws.WithBus(bus))
		cloud.Start()
		mgr, err := NewManager(ManagerConfig{Cloud: cloud, Bus: bus})
		if err != nil {
			b.Fatal(err)
		}
		mgr.Start()

		specs := make([]upgrade.Spec, 0, n)
		for j := 0; j < n; j++ {
			app := fmt.Sprintf("bench%d", j)
			cluster, err := upgrade.Deploy(ctx, cloud, app, 2, "v1")
			if err != nil {
				b.Fatal(err)
			}
			if err := cluster.WaitReady(ctx, cloud, 5*time.Minute); err != nil {
				b.Fatal(err)
			}
			newAMI, err := cloud.RegisterImage(ctx, app+"-v2", "v2", upgrade.AppServices)
			if err != nil {
				b.Fatal(err)
			}
			spec := cluster.UpgradeSpec("pushing "+cluster.ASGName, newAMI)
			spec.NewLCName = cluster.ASGName + "-lc-" + newAMI
			spec.WaitTimeout = 5 * time.Minute
			spec.PollInterval = 5 * time.Second
			if _, err := mgr.Watch(Expectation{
				ASGName:      cluster.ASGName,
				ELBName:      cluster.ELBName,
				NewImageID:   newAMI,
				NewVersion:   "v2",
				NewLCName:    spec.NewLCName,
				KeyName:      cluster.KeyName,
				SGName:       cluster.SGName,
				InstanceType: "m1.small",
				ClusterSize:  2,
			}, BindInstance(spec.TaskID), WithSessionID(app)); err != nil {
				b.Fatal(err)
			}
			specs = append(specs, spec)
		}

		b.StartTimer()
		var wg sync.WaitGroup
		for _, spec := range specs {
			spec := spec
			wg.Add(1)
			go func() {
				defer wg.Done()
				upgrade.NewUpgrader(cloud, bus).Run(ctx, spec)
			}()
		}
		wg.Wait()
		mgr.Drain(ctx, 2*time.Minute)
		b.StopTimer()

		mgr.Stop()
		cloud.Stop()
		bus.Close()
	}
}

// BenchmarkManagerConcurrentOps compares one Manager watching a single
// rolling upgrade against the same Manager watching 8 at once.
func BenchmarkManagerConcurrentOps(b *testing.B) {
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("ops=%d", n), func(b *testing.B) {
			benchConcurrentOps(b, n)
		})
	}
}
